file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_fused.dir/bench_fig06_fused.cpp.o"
  "CMakeFiles/bench_fig06_fused.dir/bench_fig06_fused.cpp.o.d"
  "bench_fig06_fused"
  "bench_fig06_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
