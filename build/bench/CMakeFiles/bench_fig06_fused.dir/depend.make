# Empty dependencies file for bench_fig06_fused.
# This may be replaced when dependencies are built.
