# Empty dependencies file for bench_fig09_r2t_scaling.
# This may be replaced when dependencies are built.
