# Empty dependencies file for bench_fig05_fulllength.
# This may be replaced when dependencies are built.
