file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_fulllength.dir/bench_fig05_fulllength.cpp.o"
  "CMakeFiles/bench_fig05_fulllength.dir/bench_fig05_fulllength.cpp.o.d"
  "bench_fig05_fulllength"
  "bench_fig05_fulllength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fulllength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
