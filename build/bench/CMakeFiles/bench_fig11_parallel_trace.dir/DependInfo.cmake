
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_parallel_trace.cpp" "bench/CMakeFiles/bench_fig11_parallel_trace.dir/bench_fig11_parallel_trace.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_parallel_trace.dir/bench_fig11_parallel_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/trinity_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/trinity_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/trinity_align.dir/DependInfo.cmake"
  "/root/repo/build/src/inchworm/CMakeFiles/trinity_inchworm.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/trinity_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trinity_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fasplit/CMakeFiles/trinity_fasplit.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/trinity_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/trinity_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  "/root/repo/build/src/butterfly/CMakeFiles/trinity_butterfly.dir/DependInfo.cmake"
  "/root/repo/build/src/checkpoint/CMakeFiles/trinity_checkpoint.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
