# Empty compiler generated dependencies file for bench_fig11_parallel_trace.
# This may be replaced when dependencies are built.
