# Empty dependencies file for bench_fig10_bowtie_scaling.
# This may be replaced when dependencies are built.
