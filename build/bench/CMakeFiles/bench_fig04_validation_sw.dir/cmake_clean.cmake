file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_validation_sw.dir/bench_fig04_validation_sw.cpp.o"
  "CMakeFiles/bench_fig04_validation_sw.dir/bench_fig04_validation_sw.cpp.o.d"
  "bench_fig04_validation_sw"
  "bench_fig04_validation_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_validation_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
