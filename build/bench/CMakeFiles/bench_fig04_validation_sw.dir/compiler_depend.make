# Empty compiler generated dependencies file for bench_fig04_validation_sw.
# This may be replaced when dependencies are built.
