# Empty compiler generated dependencies file for bench_fig02_baseline_trace.
# This may be replaced when dependencies are built.
