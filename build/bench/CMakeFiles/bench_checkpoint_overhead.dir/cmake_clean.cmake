file(REMOVE_RECURSE
  "CMakeFiles/bench_checkpoint_overhead.dir/bench_checkpoint_overhead.cpp.o"
  "CMakeFiles/bench_checkpoint_overhead.dir/bench_checkpoint_overhead.cpp.o.d"
  "bench_checkpoint_overhead"
  "bench_checkpoint_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checkpoint_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
