# Empty dependencies file for bench_checkpoint_overhead.
# This may be replaced when dependencies are built.
