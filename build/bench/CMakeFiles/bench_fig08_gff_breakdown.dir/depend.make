# Empty dependencies file for bench_fig08_gff_breakdown.
# This may be replaced when dependencies are built.
