# Empty compiler generated dependencies file for bench_fig07_gff_scaling.
# This may be replaced when dependencies are built.
