# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_smoke "/root/repo/build/examples/quickstart" "--genes" "8" "--ranks" "2")
set_tests_properties(example_quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scaling_smoke "/root/repo/build/examples/scaling_study" "--genes" "10" "--coverage" "8" "--ranks" "1,2")
set_tests_properties(example_scaling_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_validate_smoke "/root/repo/build/examples/validate_runs" "--runs" "2" "--genes" "8" "--ranks" "2")
set_tests_properties(example_validate_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_smoke "/root/repo/build/examples/explore_components" "--genes" "8" "--top" "5")
set_tests_properties(example_explore_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stages_smoke "sh" "-c" "cd /tmp &&            /root/repo/build/examples/trinity_stages jellyfish /tmp/trinity_quickstart/reads.fa --out /tmp/ts_kmers.bin --k 15 &&            /root/repo/build/examples/trinity_stages inchworm /tmp/ts_kmers.bin --out /tmp/ts_inchworm.fa --k 15 &&            /root/repo/build/examples/trinity_stages chrysalis /tmp/ts_inchworm.fa /tmp/trinity_quickstart/reads.fa --out-dir /tmp/ts_chrysalis --nprocs 2 --k 15 &&            /root/repo/build/examples/trinity_stages butterfly /tmp/ts_inchworm.fa /tmp/ts_chrysalis /tmp/trinity_quickstart/reads.fa --out /tmp/ts_Trinity.fa --k 15 &&            test -s /tmp/ts_Trinity.fa")
set_tests_properties(example_stages_smoke PROPERTIES  DEPENDS "example_quickstart_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_assemble_smoke "sh" "-c" "/root/repo/build/examples/assemble_fasta /tmp/trinity_quickstart/reads.fa                         --out /tmp/trinity_assemble_smoke.fa --ranks 2                         --gff-distribution dynamic --r2t-output collective")
set_tests_properties(example_assemble_smoke PROPERTIES  DEPENDS "example_quickstart_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_fault_smoke "/root/repo/build/examples/quickstart" "--genes" "8" "--ranks" "2" "--work-dir" "/tmp/trinity_quickstart_fault" "--fault-rank" "1" "--fault-stage" "chrysalis.graph_from_fasta" "--max-attempts" "3")
set_tests_properties(example_quickstart_fault_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_resume_smoke "sh" "-c" "/root/repo/build/examples/quickstart --genes 8 --ranks 2 --resume                         | grep -q 'resumed from checkpoint'")
set_tests_properties(example_quickstart_resume_smoke PROPERTIES  DEPENDS "example_quickstart_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stages_fault_smoke "sh" "-c" "/root/repo/build/examples/trinity_stages chrysalis /tmp/ts_inchworm.fa            /tmp/trinity_quickstart/reads.fa --out-dir /tmp/ts_chrysalis_fault --nprocs 2 --k 15            --fault-rank 1 --max-attempts 3 &&            /root/repo/build/examples/trinity_stages chrysalis /tmp/ts_inchworm.fa            /tmp/trinity_quickstart/reads.fa --out-dir /tmp/ts_chrysalis_fault --nprocs 2 --k 15            --resume | grep -q 'checkpoint valid'")
set_tests_properties(example_stages_fault_smoke PROPERTIES  DEPENDS "example_stages_smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;42;add_test;/root/repo/examples/CMakeLists.txt;0;")
