file(REMOVE_RECURSE
  "CMakeFiles/validate_runs.dir/validate_runs.cpp.o"
  "CMakeFiles/validate_runs.dir/validate_runs.cpp.o.d"
  "validate_runs"
  "validate_runs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_runs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
