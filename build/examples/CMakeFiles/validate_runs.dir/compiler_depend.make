# Empty compiler generated dependencies file for validate_runs.
# This may be replaced when dependencies are built.
