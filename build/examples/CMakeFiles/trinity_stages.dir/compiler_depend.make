# Empty compiler generated dependencies file for trinity_stages.
# This may be replaced when dependencies are built.
