file(REMOVE_RECURSE
  "CMakeFiles/trinity_stages.dir/trinity_stages.cpp.o"
  "CMakeFiles/trinity_stages.dir/trinity_stages.cpp.o.d"
  "trinity_stages"
  "trinity_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
