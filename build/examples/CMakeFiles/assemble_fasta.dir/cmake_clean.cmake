file(REMOVE_RECURSE
  "CMakeFiles/assemble_fasta.dir/assemble_fasta.cpp.o"
  "CMakeFiles/assemble_fasta.dir/assemble_fasta.cpp.o.d"
  "assemble_fasta"
  "assemble_fasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assemble_fasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
