# Empty compiler generated dependencies file for assemble_fasta.
# This may be replaced when dependencies are built.
