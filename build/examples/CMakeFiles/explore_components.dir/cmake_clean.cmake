file(REMOVE_RECURSE
  "CMakeFiles/explore_components.dir/explore_components.cpp.o"
  "CMakeFiles/explore_components.dir/explore_components.cpp.o.d"
  "explore_components"
  "explore_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
