# Empty compiler generated dependencies file for explore_components.
# This may be replaced when dependencies are built.
