# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/simpi_test[1]_include.cmake")
include("/root/repo/build/tests/seq_test[1]_include.cmake")
include("/root/repo/build/tests/kmer_test[1]_include.cmake")
include("/root/repo/build/tests/inchworm_test[1]_include.cmake")
include("/root/repo/build/tests/fasplit_test[1]_include.cmake")
include("/root/repo/build/tests/sw_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis_components_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis_gff_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis_r2t_test[1]_include.cmake")
include("/root/repo/build/tests/debruijn_test[1]_include.cmake")
include("/root/repo/build/tests/scaffold_test[1]_include.cmake")
include("/root/repo/build/tests/butterfly_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/simpi_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/packed_sequence_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/disk_counter_test[1]_include.cmake")
include("/root/repo/build/tests/components_io_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/align_paired_test[1]_include.cmake")
include("/root/repo/build/tests/assembly_stats_test[1]_include.cmake")
