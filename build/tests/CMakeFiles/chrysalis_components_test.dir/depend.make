# Empty dependencies file for chrysalis_components_test.
# This may be replaced when dependencies are built.
