file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_components_test.dir/chrysalis_components_test.cpp.o"
  "CMakeFiles/chrysalis_components_test.dir/chrysalis_components_test.cpp.o.d"
  "chrysalis_components_test"
  "chrysalis_components_test.pdb"
  "chrysalis_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
