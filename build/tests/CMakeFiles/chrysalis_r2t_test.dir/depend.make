# Empty dependencies file for chrysalis_r2t_test.
# This may be replaced when dependencies are built.
