# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for chrysalis_r2t_test.
