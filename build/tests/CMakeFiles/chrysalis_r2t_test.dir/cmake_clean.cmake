file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_r2t_test.dir/chrysalis_r2t_test.cpp.o"
  "CMakeFiles/chrysalis_r2t_test.dir/chrysalis_r2t_test.cpp.o.d"
  "chrysalis_r2t_test"
  "chrysalis_r2t_test.pdb"
  "chrysalis_r2t_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_r2t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
