file(REMOVE_RECURSE
  "CMakeFiles/scaffold_test.dir/scaffold_test.cpp.o"
  "CMakeFiles/scaffold_test.dir/scaffold_test.cpp.o.d"
  "scaffold_test"
  "scaffold_test.pdb"
  "scaffold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaffold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
