# Empty compiler generated dependencies file for scaffold_test.
# This may be replaced when dependencies are built.
