file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_extensions_test.dir/chrysalis_extensions_test.cpp.o"
  "CMakeFiles/chrysalis_extensions_test.dir/chrysalis_extensions_test.cpp.o.d"
  "chrysalis_extensions_test"
  "chrysalis_extensions_test.pdb"
  "chrysalis_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
