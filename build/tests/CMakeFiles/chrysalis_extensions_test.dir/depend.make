# Empty dependencies file for chrysalis_extensions_test.
# This may be replaced when dependencies are built.
