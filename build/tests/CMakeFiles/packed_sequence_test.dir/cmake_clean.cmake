file(REMOVE_RECURSE
  "CMakeFiles/packed_sequence_test.dir/packed_sequence_test.cpp.o"
  "CMakeFiles/packed_sequence_test.dir/packed_sequence_test.cpp.o.d"
  "packed_sequence_test"
  "packed_sequence_test.pdb"
  "packed_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
