# Empty dependencies file for packed_sequence_test.
# This may be replaced when dependencies are built.
