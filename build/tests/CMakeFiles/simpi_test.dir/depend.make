# Empty dependencies file for simpi_test.
# This may be replaced when dependencies are built.
