file(REMOVE_RECURSE
  "CMakeFiles/simpi_test.dir/simpi_test.cpp.o"
  "CMakeFiles/simpi_test.dir/simpi_test.cpp.o.d"
  "simpi_test"
  "simpi_test.pdb"
  "simpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
