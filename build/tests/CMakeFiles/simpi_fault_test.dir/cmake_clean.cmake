file(REMOVE_RECURSE
  "CMakeFiles/simpi_fault_test.dir/simpi_fault_test.cpp.o"
  "CMakeFiles/simpi_fault_test.dir/simpi_fault_test.cpp.o.d"
  "simpi_fault_test"
  "simpi_fault_test.pdb"
  "simpi_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpi_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
