# Empty dependencies file for simpi_fault_test.
# This may be replaced when dependencies are built.
