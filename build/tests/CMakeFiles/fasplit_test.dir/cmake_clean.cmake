file(REMOVE_RECURSE
  "CMakeFiles/fasplit_test.dir/fasplit_test.cpp.o"
  "CMakeFiles/fasplit_test.dir/fasplit_test.cpp.o.d"
  "fasplit_test"
  "fasplit_test.pdb"
  "fasplit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasplit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
