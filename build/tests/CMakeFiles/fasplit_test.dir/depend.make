# Empty dependencies file for fasplit_test.
# This may be replaced when dependencies are built.
