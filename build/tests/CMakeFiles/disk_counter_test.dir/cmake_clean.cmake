file(REMOVE_RECURSE
  "CMakeFiles/disk_counter_test.dir/disk_counter_test.cpp.o"
  "CMakeFiles/disk_counter_test.dir/disk_counter_test.cpp.o.d"
  "disk_counter_test"
  "disk_counter_test.pdb"
  "disk_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
