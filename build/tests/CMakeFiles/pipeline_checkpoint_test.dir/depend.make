# Empty dependencies file for pipeline_checkpoint_test.
# This may be replaced when dependencies are built.
