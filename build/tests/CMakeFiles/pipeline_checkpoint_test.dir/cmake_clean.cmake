file(REMOVE_RECURSE
  "CMakeFiles/pipeline_checkpoint_test.dir/pipeline_checkpoint_test.cpp.o"
  "CMakeFiles/pipeline_checkpoint_test.dir/pipeline_checkpoint_test.cpp.o.d"
  "pipeline_checkpoint_test"
  "pipeline_checkpoint_test.pdb"
  "pipeline_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
