# Empty compiler generated dependencies file for align_paired_test.
# This may be replaced when dependencies are built.
