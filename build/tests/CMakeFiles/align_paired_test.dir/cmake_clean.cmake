file(REMOVE_RECURSE
  "CMakeFiles/align_paired_test.dir/align_paired_test.cpp.o"
  "CMakeFiles/align_paired_test.dir/align_paired_test.cpp.o.d"
  "align_paired_test"
  "align_paired_test.pdb"
  "align_paired_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_paired_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
