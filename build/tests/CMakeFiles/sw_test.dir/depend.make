# Empty dependencies file for sw_test.
# This may be replaced when dependencies are built.
