file(REMOVE_RECURSE
  "CMakeFiles/sw_test.dir/sw_test.cpp.o"
  "CMakeFiles/sw_test.dir/sw_test.cpp.o.d"
  "sw_test"
  "sw_test.pdb"
  "sw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
