file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_distribution_test.dir/chrysalis_distribution_test.cpp.o"
  "CMakeFiles/chrysalis_distribution_test.dir/chrysalis_distribution_test.cpp.o.d"
  "chrysalis_distribution_test"
  "chrysalis_distribution_test.pdb"
  "chrysalis_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
