# Empty dependencies file for chrysalis_distribution_test.
# This may be replaced when dependencies are built.
