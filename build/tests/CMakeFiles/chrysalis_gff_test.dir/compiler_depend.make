# Empty compiler generated dependencies file for chrysalis_gff_test.
# This may be replaced when dependencies are built.
