file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_gff_test.dir/chrysalis_gff_test.cpp.o"
  "CMakeFiles/chrysalis_gff_test.dir/chrysalis_gff_test.cpp.o.d"
  "chrysalis_gff_test"
  "chrysalis_gff_test.pdb"
  "chrysalis_gff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_gff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
