file(REMOVE_RECURSE
  "CMakeFiles/simpi_extensions_test.dir/simpi_extensions_test.cpp.o"
  "CMakeFiles/simpi_extensions_test.dir/simpi_extensions_test.cpp.o.d"
  "simpi_extensions_test"
  "simpi_extensions_test.pdb"
  "simpi_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simpi_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
