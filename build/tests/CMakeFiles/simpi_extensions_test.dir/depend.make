# Empty dependencies file for simpi_extensions_test.
# This may be replaced when dependencies are built.
