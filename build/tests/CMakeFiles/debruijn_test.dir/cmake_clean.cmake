file(REMOVE_RECURSE
  "CMakeFiles/debruijn_test.dir/debruijn_test.cpp.o"
  "CMakeFiles/debruijn_test.dir/debruijn_test.cpp.o.d"
  "debruijn_test"
  "debruijn_test.pdb"
  "debruijn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debruijn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
