# Empty compiler generated dependencies file for debruijn_test.
# This may be replaced when dependencies are built.
