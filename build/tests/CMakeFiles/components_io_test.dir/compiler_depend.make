# Empty compiler generated dependencies file for components_io_test.
# This may be replaced when dependencies are built.
