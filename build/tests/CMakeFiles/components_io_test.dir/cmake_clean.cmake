file(REMOVE_RECURSE
  "CMakeFiles/components_io_test.dir/components_io_test.cpp.o"
  "CMakeFiles/components_io_test.dir/components_io_test.cpp.o.d"
  "components_io_test"
  "components_io_test.pdb"
  "components_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/components_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
