# Empty compiler generated dependencies file for assembly_stats_test.
# This may be replaced when dependencies are built.
