file(REMOVE_RECURSE
  "CMakeFiles/assembly_stats_test.dir/assembly_stats_test.cpp.o"
  "CMakeFiles/assembly_stats_test.dir/assembly_stats_test.cpp.o.d"
  "assembly_stats_test"
  "assembly_stats_test.pdb"
  "assembly_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembly_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
