# Empty dependencies file for inchworm_test.
# This may be replaced when dependencies are built.
