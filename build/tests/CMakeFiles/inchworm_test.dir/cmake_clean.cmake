file(REMOVE_RECURSE
  "CMakeFiles/inchworm_test.dir/inchworm_test.cpp.o"
  "CMakeFiles/inchworm_test.dir/inchworm_test.cpp.o.d"
  "inchworm_test"
  "inchworm_test.pdb"
  "inchworm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inchworm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
