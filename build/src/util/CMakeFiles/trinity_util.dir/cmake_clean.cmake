file(REMOVE_RECURSE
  "CMakeFiles/trinity_util.dir/cli.cpp.o"
  "CMakeFiles/trinity_util.dir/cli.cpp.o.d"
  "CMakeFiles/trinity_util.dir/hash.cpp.o"
  "CMakeFiles/trinity_util.dir/hash.cpp.o.d"
  "CMakeFiles/trinity_util.dir/log.cpp.o"
  "CMakeFiles/trinity_util.dir/log.cpp.o.d"
  "CMakeFiles/trinity_util.dir/resource_trace.cpp.o"
  "CMakeFiles/trinity_util.dir/resource_trace.cpp.o.d"
  "CMakeFiles/trinity_util.dir/rng.cpp.o"
  "CMakeFiles/trinity_util.dir/rng.cpp.o.d"
  "CMakeFiles/trinity_util.dir/rss.cpp.o"
  "CMakeFiles/trinity_util.dir/rss.cpp.o.d"
  "CMakeFiles/trinity_util.dir/stats.cpp.o"
  "CMakeFiles/trinity_util.dir/stats.cpp.o.d"
  "CMakeFiles/trinity_util.dir/timer.cpp.o"
  "CMakeFiles/trinity_util.dir/timer.cpp.o.d"
  "libtrinity_util.a"
  "libtrinity_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
