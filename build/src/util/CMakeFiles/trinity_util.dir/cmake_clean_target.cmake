file(REMOVE_RECURSE
  "libtrinity_util.a"
)
