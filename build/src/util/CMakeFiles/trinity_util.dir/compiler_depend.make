# Empty compiler generated dependencies file for trinity_util.
# This may be replaced when dependencies are built.
