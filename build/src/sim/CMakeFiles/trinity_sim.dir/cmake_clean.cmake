file(REMOVE_RECURSE
  "CMakeFiles/trinity_sim.dir/transcriptome.cpp.o"
  "CMakeFiles/trinity_sim.dir/transcriptome.cpp.o.d"
  "libtrinity_sim.a"
  "libtrinity_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
