# Empty compiler generated dependencies file for trinity_sim.
# This may be replaced when dependencies are built.
