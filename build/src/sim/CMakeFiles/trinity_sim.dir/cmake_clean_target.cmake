file(REMOVE_RECURSE
  "libtrinity_sim.a"
)
