file(REMOVE_RECURSE
  "libtrinity_pipeline.a"
)
