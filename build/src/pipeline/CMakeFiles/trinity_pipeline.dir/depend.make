# Empty dependencies file for trinity_pipeline.
# This may be replaced when dependencies are built.
