file(REMOVE_RECURSE
  "CMakeFiles/trinity_pipeline.dir/trinity_pipeline.cpp.o"
  "CMakeFiles/trinity_pipeline.dir/trinity_pipeline.cpp.o.d"
  "libtrinity_pipeline.a"
  "libtrinity_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
