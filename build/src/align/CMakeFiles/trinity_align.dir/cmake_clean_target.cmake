file(REMOVE_RECURSE
  "libtrinity_align.a"
)
