# Empty compiler generated dependencies file for trinity_align.
# This may be replaced when dependencies are built.
