file(REMOVE_RECURSE
  "CMakeFiles/trinity_align.dir/aligner.cpp.o"
  "CMakeFiles/trinity_align.dir/aligner.cpp.o.d"
  "CMakeFiles/trinity_align.dir/mpi_bowtie.cpp.o"
  "CMakeFiles/trinity_align.dir/mpi_bowtie.cpp.o.d"
  "CMakeFiles/trinity_align.dir/paired.cpp.o"
  "CMakeFiles/trinity_align.dir/paired.cpp.o.d"
  "CMakeFiles/trinity_align.dir/sam_io.cpp.o"
  "CMakeFiles/trinity_align.dir/sam_io.cpp.o.d"
  "libtrinity_align.a"
  "libtrinity_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
