# Empty dependencies file for trinity_seq.
# This may be replaced when dependencies are built.
