
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/dna.cpp" "src/seq/CMakeFiles/trinity_seq.dir/dna.cpp.o" "gcc" "src/seq/CMakeFiles/trinity_seq.dir/dna.cpp.o.d"
  "/root/repo/src/seq/fasta.cpp" "src/seq/CMakeFiles/trinity_seq.dir/fasta.cpp.o" "gcc" "src/seq/CMakeFiles/trinity_seq.dir/fasta.cpp.o.d"
  "/root/repo/src/seq/kmer.cpp" "src/seq/CMakeFiles/trinity_seq.dir/kmer.cpp.o" "gcc" "src/seq/CMakeFiles/trinity_seq.dir/kmer.cpp.o.d"
  "/root/repo/src/seq/packed_sequence.cpp" "src/seq/CMakeFiles/trinity_seq.dir/packed_sequence.cpp.o" "gcc" "src/seq/CMakeFiles/trinity_seq.dir/packed_sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
