file(REMOVE_RECURSE
  "CMakeFiles/trinity_seq.dir/dna.cpp.o"
  "CMakeFiles/trinity_seq.dir/dna.cpp.o.d"
  "CMakeFiles/trinity_seq.dir/fasta.cpp.o"
  "CMakeFiles/trinity_seq.dir/fasta.cpp.o.d"
  "CMakeFiles/trinity_seq.dir/kmer.cpp.o"
  "CMakeFiles/trinity_seq.dir/kmer.cpp.o.d"
  "CMakeFiles/trinity_seq.dir/packed_sequence.cpp.o"
  "CMakeFiles/trinity_seq.dir/packed_sequence.cpp.o.d"
  "libtrinity_seq.a"
  "libtrinity_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
