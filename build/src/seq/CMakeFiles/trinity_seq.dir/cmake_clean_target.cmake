file(REMOVE_RECURSE
  "libtrinity_seq.a"
)
