
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validate/assembly_stats.cpp" "src/validate/CMakeFiles/trinity_validate.dir/assembly_stats.cpp.o" "gcc" "src/validate/CMakeFiles/trinity_validate.dir/assembly_stats.cpp.o.d"
  "/root/repo/src/validate/report.cpp" "src/validate/CMakeFiles/trinity_validate.dir/report.cpp.o" "gcc" "src/validate/CMakeFiles/trinity_validate.dir/report.cpp.o.d"
  "/root/repo/src/validate/validate.cpp" "src/validate/CMakeFiles/trinity_validate.dir/validate.cpp.o" "gcc" "src/validate/CMakeFiles/trinity_validate.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sw/CMakeFiles/trinity_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/trinity_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
