# Empty compiler generated dependencies file for trinity_validate.
# This may be replaced when dependencies are built.
