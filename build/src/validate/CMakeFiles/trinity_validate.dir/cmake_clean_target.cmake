file(REMOVE_RECURSE
  "libtrinity_validate.a"
)
