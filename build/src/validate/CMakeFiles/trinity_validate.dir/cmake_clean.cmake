file(REMOVE_RECURSE
  "CMakeFiles/trinity_validate.dir/assembly_stats.cpp.o"
  "CMakeFiles/trinity_validate.dir/assembly_stats.cpp.o.d"
  "CMakeFiles/trinity_validate.dir/report.cpp.o"
  "CMakeFiles/trinity_validate.dir/report.cpp.o.d"
  "CMakeFiles/trinity_validate.dir/validate.cpp.o"
  "CMakeFiles/trinity_validate.dir/validate.cpp.o.d"
  "libtrinity_validate.a"
  "libtrinity_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
