file(REMOVE_RECURSE
  "CMakeFiles/trinity_simpi.dir/context.cpp.o"
  "CMakeFiles/trinity_simpi.dir/context.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/cost_model.cpp.o"
  "CMakeFiles/trinity_simpi.dir/cost_model.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/fault.cpp.o"
  "CMakeFiles/trinity_simpi.dir/fault.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/file_io.cpp.o"
  "CMakeFiles/trinity_simpi.dir/file_io.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/mailbox.cpp.o"
  "CMakeFiles/trinity_simpi.dir/mailbox.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/nonblocking.cpp.o"
  "CMakeFiles/trinity_simpi.dir/nonblocking.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/pack.cpp.o"
  "CMakeFiles/trinity_simpi.dir/pack.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/rma.cpp.o"
  "CMakeFiles/trinity_simpi.dir/rma.cpp.o.d"
  "CMakeFiles/trinity_simpi.dir/subcomm.cpp.o"
  "CMakeFiles/trinity_simpi.dir/subcomm.cpp.o.d"
  "libtrinity_simpi.a"
  "libtrinity_simpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_simpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
