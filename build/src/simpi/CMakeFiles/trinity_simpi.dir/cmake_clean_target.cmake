file(REMOVE_RECURSE
  "libtrinity_simpi.a"
)
