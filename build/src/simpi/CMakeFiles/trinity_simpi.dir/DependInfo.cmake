
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simpi/context.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/context.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/context.cpp.o.d"
  "/root/repo/src/simpi/cost_model.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/cost_model.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/cost_model.cpp.o.d"
  "/root/repo/src/simpi/fault.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/fault.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/fault.cpp.o.d"
  "/root/repo/src/simpi/file_io.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/file_io.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/file_io.cpp.o.d"
  "/root/repo/src/simpi/mailbox.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/mailbox.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/mailbox.cpp.o.d"
  "/root/repo/src/simpi/nonblocking.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/nonblocking.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/nonblocking.cpp.o.d"
  "/root/repo/src/simpi/pack.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/pack.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/pack.cpp.o.d"
  "/root/repo/src/simpi/rma.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/rma.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/rma.cpp.o.d"
  "/root/repo/src/simpi/subcomm.cpp" "src/simpi/CMakeFiles/trinity_simpi.dir/subcomm.cpp.o" "gcc" "src/simpi/CMakeFiles/trinity_simpi.dir/subcomm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
