# Empty compiler generated dependencies file for trinity_simpi.
# This may be replaced when dependencies are built.
