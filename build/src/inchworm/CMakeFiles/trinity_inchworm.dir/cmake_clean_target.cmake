file(REMOVE_RECURSE
  "libtrinity_inchworm.a"
)
