
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inchworm/inchworm.cpp" "src/inchworm/CMakeFiles/trinity_inchworm.dir/inchworm.cpp.o" "gcc" "src/inchworm/CMakeFiles/trinity_inchworm.dir/inchworm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kmer/CMakeFiles/trinity_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/trinity_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
