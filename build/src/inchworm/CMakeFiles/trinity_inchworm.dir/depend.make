# Empty dependencies file for trinity_inchworm.
# This may be replaced when dependencies are built.
