file(REMOVE_RECURSE
  "CMakeFiles/trinity_inchworm.dir/inchworm.cpp.o"
  "CMakeFiles/trinity_inchworm.dir/inchworm.cpp.o.d"
  "libtrinity_inchworm.a"
  "libtrinity_inchworm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_inchworm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
