# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("checkpoint")
subdirs("simpi")
subdirs("seq")
subdirs("kmer")
subdirs("inchworm")
subdirs("fasplit")
subdirs("sw")
subdirs("align")
subdirs("chrysalis")
subdirs("butterfly")
subdirs("sim")
subdirs("validate")
subdirs("pipeline")
