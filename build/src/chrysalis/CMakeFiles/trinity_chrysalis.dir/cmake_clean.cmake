file(REMOVE_RECURSE
  "CMakeFiles/trinity_chrysalis.dir/components.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/components.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/components_io.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/components_io.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/debruijn.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/debruijn.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/distribution.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/distribution.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/graph_from_fasta.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/graph_from_fasta.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/reads_to_transcripts.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/reads_to_transcripts.cpp.o.d"
  "CMakeFiles/trinity_chrysalis.dir/scaffold.cpp.o"
  "CMakeFiles/trinity_chrysalis.dir/scaffold.cpp.o.d"
  "libtrinity_chrysalis.a"
  "libtrinity_chrysalis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_chrysalis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
