# Empty compiler generated dependencies file for trinity_chrysalis.
# This may be replaced when dependencies are built.
