file(REMOVE_RECURSE
  "libtrinity_chrysalis.a"
)
