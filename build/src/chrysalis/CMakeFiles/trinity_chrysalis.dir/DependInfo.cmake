
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chrysalis/components.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/components.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/components.cpp.o.d"
  "/root/repo/src/chrysalis/components_io.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/components_io.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/components_io.cpp.o.d"
  "/root/repo/src/chrysalis/debruijn.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/debruijn.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/debruijn.cpp.o.d"
  "/root/repo/src/chrysalis/distribution.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/distribution.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/distribution.cpp.o.d"
  "/root/repo/src/chrysalis/graph_from_fasta.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/graph_from_fasta.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/graph_from_fasta.cpp.o.d"
  "/root/repo/src/chrysalis/reads_to_transcripts.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/reads_to_transcripts.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/reads_to_transcripts.cpp.o.d"
  "/root/repo/src/chrysalis/scaffold.cpp" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/scaffold.cpp.o" "gcc" "src/chrysalis/CMakeFiles/trinity_chrysalis.dir/scaffold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/trinity_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/kmer/CMakeFiles/trinity_kmer.dir/DependInfo.cmake"
  "/root/repo/build/src/simpi/CMakeFiles/trinity_simpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
