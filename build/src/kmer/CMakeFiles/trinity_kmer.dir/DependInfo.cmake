
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kmer/counter.cpp" "src/kmer/CMakeFiles/trinity_kmer.dir/counter.cpp.o" "gcc" "src/kmer/CMakeFiles/trinity_kmer.dir/counter.cpp.o.d"
  "/root/repo/src/kmer/disk_counter.cpp" "src/kmer/CMakeFiles/trinity_kmer.dir/disk_counter.cpp.o" "gcc" "src/kmer/CMakeFiles/trinity_kmer.dir/disk_counter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/trinity_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
