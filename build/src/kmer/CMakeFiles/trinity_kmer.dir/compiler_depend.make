# Empty compiler generated dependencies file for trinity_kmer.
# This may be replaced when dependencies are built.
