file(REMOVE_RECURSE
  "libtrinity_kmer.a"
)
