file(REMOVE_RECURSE
  "CMakeFiles/trinity_kmer.dir/counter.cpp.o"
  "CMakeFiles/trinity_kmer.dir/counter.cpp.o.d"
  "CMakeFiles/trinity_kmer.dir/disk_counter.cpp.o"
  "CMakeFiles/trinity_kmer.dir/disk_counter.cpp.o.d"
  "libtrinity_kmer.a"
  "libtrinity_kmer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_kmer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
