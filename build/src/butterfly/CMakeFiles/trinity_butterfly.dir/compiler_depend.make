# Empty compiler generated dependencies file for trinity_butterfly.
# This may be replaced when dependencies are built.
