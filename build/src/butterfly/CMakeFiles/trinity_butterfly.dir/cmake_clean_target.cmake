file(REMOVE_RECURSE
  "libtrinity_butterfly.a"
)
