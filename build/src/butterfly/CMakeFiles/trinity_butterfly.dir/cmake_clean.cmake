file(REMOVE_RECURSE
  "CMakeFiles/trinity_butterfly.dir/butterfly.cpp.o"
  "CMakeFiles/trinity_butterfly.dir/butterfly.cpp.o.d"
  "libtrinity_butterfly.a"
  "libtrinity_butterfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_butterfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
