
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checkpoint/fingerprint.cpp" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/fingerprint.cpp.o" "gcc" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/fingerprint.cpp.o.d"
  "/root/repo/src/checkpoint/manifest.cpp" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/manifest.cpp.o" "gcc" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/manifest.cpp.o.d"
  "/root/repo/src/checkpoint/retry.cpp" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/retry.cpp.o" "gcc" "src/checkpoint/CMakeFiles/trinity_checkpoint.dir/retry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/trinity_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
