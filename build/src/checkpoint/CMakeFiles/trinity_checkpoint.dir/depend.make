# Empty dependencies file for trinity_checkpoint.
# This may be replaced when dependencies are built.
