file(REMOVE_RECURSE
  "libtrinity_checkpoint.a"
)
