file(REMOVE_RECURSE
  "CMakeFiles/trinity_checkpoint.dir/fingerprint.cpp.o"
  "CMakeFiles/trinity_checkpoint.dir/fingerprint.cpp.o.d"
  "CMakeFiles/trinity_checkpoint.dir/manifest.cpp.o"
  "CMakeFiles/trinity_checkpoint.dir/manifest.cpp.o.d"
  "CMakeFiles/trinity_checkpoint.dir/retry.cpp.o"
  "CMakeFiles/trinity_checkpoint.dir/retry.cpp.o.d"
  "libtrinity_checkpoint.a"
  "libtrinity_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
