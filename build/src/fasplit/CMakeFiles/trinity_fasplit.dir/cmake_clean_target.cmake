file(REMOVE_RECURSE
  "libtrinity_fasplit.a"
)
