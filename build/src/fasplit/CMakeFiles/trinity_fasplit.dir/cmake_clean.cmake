file(REMOVE_RECURSE
  "CMakeFiles/trinity_fasplit.dir/fasplit.cpp.o"
  "CMakeFiles/trinity_fasplit.dir/fasplit.cpp.o.d"
  "libtrinity_fasplit.a"
  "libtrinity_fasplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_fasplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
