# Empty dependencies file for trinity_fasplit.
# This may be replaced when dependencies are built.
