file(REMOVE_RECURSE
  "CMakeFiles/trinity_sw.dir/smith_waterman.cpp.o"
  "CMakeFiles/trinity_sw.dir/smith_waterman.cpp.o.d"
  "libtrinity_sw.a"
  "libtrinity_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trinity_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
