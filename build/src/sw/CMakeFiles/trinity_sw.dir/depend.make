# Empty dependencies file for trinity_sw.
# This may be replaced when dependencies are built.
