file(REMOVE_RECURSE
  "libtrinity_sw.a"
)
