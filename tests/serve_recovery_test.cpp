// Crash-safety for the serve layer: the durable job journal (append,
// replay, torn-tail tolerance, injected storage faults), and restart
// recovery — a server rebuilt over a journal prefix re-admits queued and
// in-flight jobs, resumes their checkpoint manifests byte-identically
// with zero duplicated stage work, keeps terminal ids registered
// (quarantine rejection survives restarts), and degrades to journal-less
// serving when the journal device itself fails.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "io/io_file.hpp"
#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace trinity::serve {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Simulated reads written to disk once, shared by every test job.
const std::string& shared_reads_path() {
  static const std::string path = [] {
    auto p = sim::preset("tiny");
    p.reads.coverage = 25.0;
    p.reads.expression_sigma = 0.7;
    const auto data = sim::simulate_dataset(p);
    static TempDir dir("serve_rec_reads");  // outlives every test in the binary
    const std::string reads = dir.file("reads.fa");
    seq::write_fasta(reads, data.reads.reads);
    return reads;
  }();
  return path;
}

/// Byte-reproducible job options (single OpenMP thread, no RSS sampler).
pipeline::PipelineOptions job_options(int nranks = 2) {
  pipeline::PipelineOptions o;
  o.k = 15;
  o.nranks = nranks;
  o.omp_threads = 1;
  o.model_threads_per_rank = 4;
  o.trace_sample_interval_ms = 0;
  return o;
}

JobSpec make_spec(const std::string& tenant, const std::string& job_id) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.job_id = job_id;
  spec.reads_path = shared_reads_path();
  spec.options = job_options();
  return spec;
}

JobStatus status_of(const JobServer& server, const std::string& job_id) {
  for (const auto& job : server.jobs()) {
    if (job.job_id == job_id) return job;
  }
  ADD_FAILURE() << "no job " << job_id;
  return {};
}

JournalEvent event(const std::string& type, const std::string& job_id,
                   const std::string& tenant, std::int64_t seq, int attempts = 0,
                   const std::string& detail = {}) {
  JournalEvent ev;
  ev.event = type;
  ev.job_id = job_id;
  ev.tenant = tenant;
  ev.seq = seq;
  ev.attempts = attempts;
  ev.detail = detail;
  return ev;
}

int count_events(const std::string& journal_path, const std::string& type,
                 const std::string& job_id) {
  int n = 0;
  for (const JournalEvent& ev : JobJournal::replay(journal_path).events) {
    if (ev.event == type && ev.job_id == job_id) ++n;
  }
  return n;
}

bool contains(const std::vector<std::string>& haystack, const std::string& needle) {
  for (const auto& s : haystack) {
    if (s == needle) return true;
  }
  return false;
}

std::vector<std::string> string_list(const util::Json& report, const std::string& key) {
  std::vector<std::string> out;
  for (const util::Json& item : report.at(key).items()) out.push_back(item.as_string());
  return out;
}

// --- journal format ---------------------------------------------------------------

TEST(Journal, EventRoundTripsThroughLine) {
  JournalEvent ev = event("quarantine", "j7", "alice", 42, 3, "transient: EIO");
  ev.preemptions = 2;
  const JournalEvent back = JournalEvent::from_line(ev.to_line());
  EXPECT_EQ(back.event, "quarantine");
  EXPECT_EQ(back.job_id, "j7");
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.seq, 42);
  EXPECT_EQ(back.attempts, 3);
  EXPECT_EQ(back.preemptions, 2);
  EXPECT_EQ(back.detail, "transient: EIO");
  EXPECT_TRUE(back.spec.is_null());
}

TEST(Journal, SubmitEventCarriesReplayableSpecPayload) {
  JournalEvent ev = event("submit", "j1", "t", 1);
  ev.spec = job_spec_to_json(make_spec("t", "j1"));
  const JournalEvent back = JournalEvent::from_line(ev.to_line());
  ASSERT_FALSE(back.spec.is_null());
  const JobSpec spec = parse_job_spec_text(back.spec.dump(), "<test>");
  EXPECT_EQ(spec.tenant, "t");
  EXPECT_EQ(spec.job_id, "j1");
  EXPECT_EQ(spec.reads_path, shared_reads_path());
  EXPECT_EQ(spec.options.k, 15);
}

TEST(Journal, MalformedLineIsTypedError) {
  EXPECT_THROW((void)JournalEvent::from_line("not json"), std::runtime_error);
  EXPECT_THROW((void)JournalEvent::from_line(R"({"job_id": "x"})"), std::runtime_error);
}

// --- replay -----------------------------------------------------------------------

TEST(Journal, ReplayOfMissingFileIsEmpty) {
  const JournalReplay replay = JobJournal::replay("/nonexistent/journal.jsonl");
  EXPECT_TRUE(replay.events.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_EQ(replay.dropped_lines, 0);
}

TEST(Journal, ReplayDropsTornTailAndTruncateHeals) {
  const TempDir dir("journal_torn");
  const std::string path = dir.file("journal.jsonl");
  {
    JobJournal journal(path);
    journal.append(event("submit", "j1", "t", 1));
    journal.append(event("dispatch", "j1", "t", 1, 1));
    journal.append(event("complete", "j1", "t", 1, 1));
  }
  const auto clean_bytes = std::filesystem::file_size(path);
  {
    // A crash mid-append leaves a torn half-line with no newline.
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << R"({"event": "requ)";
  }

  const JournalReplay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.events.size(), 3u);
  EXPECT_EQ(replay.dropped_lines, 1);
  EXPECT_EQ(replay.valid_bytes, clean_bytes);

  JobJournal::truncate_to(path, replay.valid_bytes);
  const JournalReplay healed = JobJournal::replay(path);
  EXPECT_EQ(healed.events.size(), 3u);
  EXPECT_EQ(healed.dropped_lines, 0);

  // Appends after healing start on a clean line.
  JobJournal journal(path);
  journal.append(event("recover", "j1", "t", 1, 1));
  EXPECT_EQ(JobJournal::replay(path).events.size(), 4u);
}

TEST(Journal, ReplaySkipsMidFileGarbage) {
  const TempDir dir("journal_garbage");
  const std::string path = dir.file("journal.jsonl");
  {
    JobJournal journal(path);
    journal.append(event("submit", "j1", "t", 1));
  }
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "#### corrupted by a stray writer ####\n";
  }
  {
    JobJournal journal(path);
    journal.append(event("dispatch", "j1", "t", 1, 1));
  }
  const JournalReplay replay = JobJournal::replay(path);
  EXPECT_EQ(replay.events.size(), 2u);
  EXPECT_EQ(replay.dropped_lines, 1);
  // The last line parses cleanly, so the whole file is "valid prefix".
  EXPECT_EQ(replay.valid_bytes, std::filesystem::file_size(path));
}

TEST(Journal, ReplayNeverThrowsAtAnyCrashOffset) {
  // Kill-at-every-byte over the journal: a crash can truncate the file at
  // any offset, and replay must absorb every one of them.
  const TempDir dir("journal_prefix");
  const std::string path = dir.file("journal.jsonl");
  {
    JobJournal journal(path);
    journal.append(event("submit", "j1", "t", 1));
    journal.append(event("dispatch", "j1", "t", 1, 1));
    journal.append(event("complete", "j1", "t", 1, 1));
  }
  const std::string bytes = slurp(path);
  std::size_t last_events = 0;
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string prefix_path = dir.file("prefix.jsonl");
    {
      std::ofstream out(prefix_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    JournalReplay replay;
    ASSERT_NO_THROW(replay = JobJournal::replay(prefix_path)) << "cut at " << cut;
    EXPECT_LE(replay.valid_bytes, cut);
    EXPECT_GE(replay.events.size(), last_events)
        << "recovered events went backwards at cut " << cut;
    last_events = replay.events.size();
  }
  EXPECT_EQ(last_events, 3u);
}

// --- injected storage faults against the journal itself ---------------------------

TEST(Journal, AppendFaultMatrix) {
  struct Case {
    const char* kind;
    bool transient;
    std::size_t recovered_events;  // after: ok, faulted, ok appends
    int dropped;
  };
  // enospc/eio fail before any bytes land: the faulted event is lost and
  // later appends are clean. A short write leaves a torn half-line that
  // the next append extends, so the two records fuse into one bad line.
  const Case cases[] = {
      {"enospc", false, 2, 0},
      {"eio", true, 2, 0},
      {"short_write", true, 1, 1},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.kind);
    const TempDir dir("journal_fault");
    const std::string path = dir.file("journal.jsonl");
    JobJournal journal(path);
    journal.append(event("submit", "j1", "t", 1));
    {
      io::ScopedFaultInjection guard(
          io::IoFaultPlan::parse(std::string("write:*journal.jsonl:1:") + c.kind));
      try {
        journal.append(event("dispatch", "j1", "t", 1, 1));
        FAIL() << "expected io::IoError";
      } catch (const io::IoError& e) {
        EXPECT_EQ(e.transient(), c.transient);
      }
      journal.append(event("complete", "j1", "t", 1, 1));
    }
    const JournalReplay replay = JobJournal::replay(path);
    EXPECT_EQ(replay.events.size(), c.recovered_events);
    EXPECT_EQ(replay.dropped_lines, c.dropped);
    // Healing the torn prefix leaves a journal later appends extend cleanly.
    JobJournal::truncate_to(path, replay.valid_bytes);
    JobJournal healed(path);
    healed.append(event("recover", "j1", "t", 1, 1));
    EXPECT_EQ(JobJournal::replay(path).events.size(), c.recovered_events + 1);
  }
}

TEST(Journal, FsyncFaultLosesNoBytes) {
  // The write landed before the fsync failed: the event is durable, the
  // caller just cannot prove it yet. Replay sees every line.
  const TempDir dir("journal_fsync");
  const std::string path = dir.file("journal.jsonl");
  JobJournal journal(path);
  journal.append(event("submit", "j1", "t", 1));
  {
    io::ScopedFaultInjection guard(
        io::IoFaultPlan::parse("fsync:*journal.jsonl:1:eio"));
    EXPECT_THROW(journal.append(event("dispatch", "j1", "t", 1, 1)), io::IoError);
  }
  journal.append(event("complete", "j1", "t", 1, 1));
  EXPECT_EQ(JobJournal::replay(path).events.size(), 3u);
}

// --- server lifecycle journaling --------------------------------------------------

TEST(ServeRecovery, ServerJournalsEveryTransition) {
  const TempDir root("serve_journal");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  {
    JobServer server(options);
    ASSERT_TRUE(server.submit(make_spec("t", "j1")).accepted());
    server.drain();
    EXPECT_EQ(status_of(server, "j1").state, JobState::kCompleted);
  }

  const JournalReplay replay = JobJournal::replay(root.str() + "/journal.jsonl");
  ASSERT_EQ(replay.events.size(), 3u);
  EXPECT_EQ(replay.events[0].event, "submit");
  ASSERT_FALSE(replay.events[0].spec.is_null());
  EXPECT_EQ(replay.events[1].event, "dispatch");
  EXPECT_EQ(replay.events[1].attempts, 1);  // tentative: this dispatch's budget
  EXPECT_EQ(replay.events[2].event, "complete");
  EXPECT_EQ(replay.events[2].attempts, 1);

  // The submit payload is the full re-admittable spec document.
  const JobSpec spec =
      parse_job_spec_text(replay.events[0].spec.dump(), "<journal>");
  EXPECT_EQ(spec.job_id, "j1");
  EXPECT_EQ(spec.tenant, "t");
}

TEST(ServeRecovery, RejectsAreJournaledButNeverReplayed) {
  const TempDir root("serve_rej_journal");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  {
    JobServer server(options);
    JobSpec bad = make_spec("t", "wide");
    bad.options.nranks = 64;  // permanent reject: pool has 4
    EXPECT_EQ(server.submit(std::move(bad)).code, AdmitCode::kPoolTooSmall);
  }
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "reject", "wide"), 1);

  // A restart does not resurrect the rejected job.
  JobServer server(options);
  server.drain();
  EXPECT_TRUE(server.jobs().empty());
}

// --- restart recovery -------------------------------------------------------------

/// Baseline transcripts for make_spec jobs, from an uninterrupted server.
const std::string& baseline_transcripts() {
  static const std::string baseline = [] {
    static TempDir root("serve_rec_ctl");
    ServerOptions options;
    options.total_ranks = 4;
    options.root_dir = root.str();
    JobServer server(options);
    EXPECT_TRUE(server.submit(make_spec("t", "ctl")).accepted());
    server.drain();
    return slurp(root.str() + "/t/ctl/Trinity.fa");
  }();
  return baseline;
}

TEST(ServeRecovery, ResumesJobKilledMidChrysalisByteIdentical) {
  const std::string baseline = baseline_transcripts();
  ASSERT_FALSE(baseline.empty());

  // Crash simulation: run the job's pipeline directly in its server work
  // dir until an unrecovered rank fault aborts it mid-Chrysalis — exactly
  // the on-disk state a kill -9 leaves: a checkpoint manifest covering the
  // committed stages, no transcripts.
  const TempDir root("serve_rec_resume");
  const std::string work_dir = root.str() + "/t/j1";
  std::filesystem::create_directories(work_dir);
  pipeline::PipelineOptions crashed = job_options();
  crashed.work_dir = work_dir;
  crashed.checkpoint = true;
  crashed.fault.rank = 1;
  crashed.fault.after_virtual_seconds = 0.0;
  crashed.fault_stage = "chrysalis.graph_from_fasta";
  crashed.retry.max_attempts = 1;  // the fault escapes: the "crash"
  EXPECT_THROW((void)pipeline::run_pipeline_from_file(shared_reads_path(), crashed),
               simpi::RankFaultError);
  ASSERT_TRUE(
      std::filesystem::exists(work_dir + "/" + pipeline::kManifestFileName));
  ASSERT_FALSE(std::filesystem::exists(work_dir + "/Trinity.fa"));

  // The journal the dead server left behind: the job was submitted and
  // mid-dispatch (attempt 1) when the process died.
  {
    JobJournal journal(root.str() + "/journal.jsonl");
    JournalEvent submit = event("submit", "j1", "t", 1);
    submit.spec = job_spec_to_json(make_spec("t", "j1"));
    journal.append(submit);
    journal.append(event("dispatch", "j1", "t", 1, 1));
  }

  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);
  server.drain();

  const JobStatus status = status_of(server, "j1");
  EXPECT_EQ(status.state, JobState::kCompleted);
  EXPECT_TRUE(status.recovered);
  EXPECT_EQ(status.attempts, 2);  // crashed attempt 1 + the recovered run
  EXPECT_EQ(status.dispatches, 1);

  // Byte-identical to an uninterrupted run, with the pre-crash stages
  // resumed from their checkpoints rather than re-executed.
  EXPECT_EQ(slurp(work_dir + "/Trinity.fa"), baseline);
  const util::Json report =
      util::Json::parse(slurp(work_dir + "/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("attempts").as_int(), 2);
  EXPECT_EQ(report.at("outcome").as_string(), "completed");
  EXPECT_TRUE(report.at("recovered").as_bool());
  const auto resumed = string_list(report, "stages_resumed");
  const auto executed = string_list(report, "stages_executed");
  for (const char* stage : {"write_input", "jellyfish", "inchworm"}) {
    EXPECT_TRUE(contains(resumed, stage)) << stage << " was not resumed";
    EXPECT_FALSE(contains(executed, stage)) << stage << " was duplicated";
  }
  EXPECT_TRUE(contains(executed, "butterfly"));

  // Recovery is visible in the ledger and journaled exactly once.
  EXPECT_EQ(server.accounting().account("t").jobs_recovered, 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "recover", "j1"), 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "complete", "j1"), 1);
}

TEST(ServeRecovery, RestartAtEveryJournalPrefixIsByteIdenticalWithoutRework) {
  const std::string baseline = baseline_transcripts();
  ASSERT_FALSE(baseline.empty());

  // One complete server session: journal = submit, dispatch, complete.
  const TempDir origin("serve_rec_origin");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = origin.str();
  {
    JobServer server(options);
    ASSERT_TRUE(server.submit(make_spec("t", "j1")).accepted());
    server.drain();
  }
  const std::string journal_bytes = slurp(origin.str() + "/journal.jsonl");
  std::vector<std::size_t> line_ends;
  for (std::size_t i = 0; i < journal_bytes.size(); ++i) {
    if (journal_bytes[i] == '\n') line_ends.push_back(i + 1);
  }
  ASSERT_EQ(line_ends.size(), 3u);

  // Kill-at-every-transition: restart a server over a copy of the root
  // whose journal stops after the Nth event. Every prefix must converge to
  // the same bytes, with the completed stages never re-executed.
  for (std::size_t keep = 1; keep <= line_ends.size(); ++keep) {
    SCOPED_TRACE("journal truncated after event " + std::to_string(keep));
    const TempDir copy("serve_rec_prefix");
    std::filesystem::copy(origin.str(), copy.str(),
                          std::filesystem::copy_options::recursive);
    std::filesystem::resize_file(copy.str() + "/journal.jsonl", line_ends[keep - 1]);

    ServerOptions restart = options;
    restart.root_dir = copy.str();
    JobServer server(restart);
    server.drain();

    const JobStatus status = status_of(server, "j1");
    EXPECT_EQ(status.state, JobState::kCompleted);
    EXPECT_EQ(slurp(copy.str() + "/t/j1/Trinity.fa"), baseline);
    EXPECT_EQ(count_events(copy.str() + "/journal.jsonl", "complete", "j1"), 1)
        << "terminal event duplicated";
    if (keep == 3) {
      // The complete line survived: the job is historical, never re-run.
      EXPECT_EQ(status.dispatches, 0);
      EXPECT_FALSE(status.recovered);
    } else {
      // Submit (and maybe dispatch) survived: the job is re-admitted and
      // its single recovered dispatch resumes every committed stage.
      EXPECT_TRUE(status.recovered);
      EXPECT_EQ(status.dispatches, 1);
      const util::Json report = util::Json::parse(
          slurp(copy.str() + "/t/j1/" + pipeline::kReportFileName));
      EXPECT_TRUE(string_list(report, "stages_executed").empty())
          << "a completed stage was re-executed";
      EXPECT_FALSE(string_list(report, "stages_resumed").empty());
    }
  }
}

TEST(ServeRecovery, QuarantineOutlivesRestart) {
  const TempDir root("serve_rec_quar");
  {
    JobJournal journal(root.str() + "/journal.jsonl");
    JournalEvent submit = event("submit", "poison", "t", 1);
    submit.spec = job_spec_to_json(make_spec("t", "poison"));
    journal.append(submit);
    journal.append(event("dispatch", "poison", "t", 1, 3));
    journal.append(event("quarantine", "poison", "t", 1, 3, "transient: injected EIO"));
  }
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);
  server.drain();

  const JobStatus status = status_of(server, "poison");
  EXPECT_EQ(status.state, JobState::kQuarantined);
  EXPECT_EQ(status.outcome, JobOutcome::kQuarantined);
  EXPECT_EQ(status.dispatches, 0);  // history, not re-run

  const AdmitResult again = server.submit(make_spec("t", "poison"));
  EXPECT_EQ(again.code, AdmitCode::kInvalidSpec);
  EXPECT_NE(again.detail.find("quarantined"), std::string::npos);
}

TEST(ServeRecovery, CrashLoopingJobIsQuarantinedAtRecovery) {
  // The journal shows the job's third dispatch with no terminal line: the
  // job has crashed the server (or been crashed) every time it ran. With a
  // budget of 3 it must not be re-admitted a fourth time.
  const TempDir root("serve_rec_loop");
  {
    JobJournal journal(root.str() + "/journal.jsonl");
    JournalEvent submit = event("submit", "looper", "t", 1);
    submit.spec = job_spec_to_json(make_spec("t", "looper"));
    journal.append(submit);
    journal.append(event("dispatch", "looper", "t", 1, 3));
  }
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);
  server.drain();

  const JobStatus status = status_of(server, "looper");
  EXPECT_EQ(status.state, JobState::kQuarantined);
  EXPECT_NE(status.error.find("attempt budget exhausted"), std::string::npos);
  EXPECT_EQ(status.dispatches, 0);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "quarantine", "looper"), 1);

  // The quarantine wrote a terminal report, so `trinity_report --aggregate`
  // sees the poison job from artifacts alone.
  const util::Json report = util::Json::parse(
      slurp(root.str() + "/t/looper/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("outcome").as_string(), "quarantined");
  EXPECT_EQ(report.at("attempts").as_int(), 3);
}

TEST(ServeRecovery, UnreplayableSpecRegistersAsFailedNotSilentlyNew) {
  const TempDir root("serve_rec_bad_spec");
  {
    JobJournal journal(root.str() + "/journal.jsonl");
    JournalEvent submit = event("submit", "drifted", "t", 1);
    submit.spec = util::Json::object();
    submit.spec.set("no-such-key", true);  // schema drift: rejected by parse
    journal.append(submit);
  }
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);
  server.drain();

  const JobStatus status = status_of(server, "drifted");
  EXPECT_EQ(status.state, JobState::kFailed);
  EXPECT_NE(status.error.find("unreplayable journal spec"), std::string::npos);

  // The id stays taken: resubmitting cannot silently reuse the dirty dir.
  EXPECT_EQ(server.submit(make_spec("t", "drifted")).code, AdmitCode::kInvalidSpec);
}

TEST(ServeRecovery, PermanentJournalFaultDegradesButServesOn) {
  // ENOSPC on the very first journal append (the submit WAL record):
  // durability is lost, availability is not — the job still runs.
  const TempDir root("serve_rec_degraded");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);

  io::ScopedFaultInjection guard(
      io::IoFaultPlan::parse("write:*journal.jsonl:1:enospc"));
  ASSERT_TRUE(server.submit(make_spec("t", "j1")).accepted());
  server.drain();

  EXPECT_EQ(status_of(server, "j1").state, JobState::kCompleted);
  // Degraded: no transition after the failed append reached the journal.
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "complete", "j1"), 0);
}

TEST(ServeRecovery, JournalOffMatchesPriorBehavior) {
  const TempDir root("serve_rec_nojournal");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  options.journal = false;
  JobServer server(options);
  ASSERT_TRUE(server.submit(make_spec("t", "j1")).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "j1").state, JobState::kCompleted);
  EXPECT_FALSE(std::filesystem::exists(root.str() + "/journal.jsonl"));
}

}  // namespace
}  // namespace trinity::serve
