// Tests for the Bowtie substitute: placement correctness, mismatch budget,
// strand handling, SAM output, and the distributed split-targets driver
// against the serial oracle.

#include <gtest/gtest.h>

#include <fstream>

#include "align/aligner.hpp"
#include "align/mpi_bowtie.hpp"
#include "seq/dna.hpp"
#include "seq/fasta.hpp"
#include "simpi/context.hpp"
#include "test_helpers.hpp"

namespace trinity::align {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

std::vector<seq::Sequence> make_contigs(std::size_t n, std::size_t len, std::uint64_t seed) {
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({"contig" + std::to_string(i), random_dna(len, seed + i)});
  }
  return out;
}

TEST(AlignerTest, ExactReadPlacedAtTruePosition) {
  const auto contigs = make_contigs(5, 500, 100);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);

  const seq::Sequence read{"r", contigs[2].bases.substr(137, 80)};
  const auto rec = aligner.align_read(read);
  ASSERT_TRUE(rec.aligned());
  EXPECT_EQ(rec.target_name, "contig2");
  EXPECT_EQ(rec.pos, 137u);
  EXPECT_EQ(rec.mismatches, 0);
  EXPECT_FALSE(rec.reverse_strand);
}

TEST(AlignerTest, ReverseStrandReadDetected) {
  const auto contigs = make_contigs(3, 400, 200);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);

  const seq::Sequence read{"r",
                           seq::reverse_complement(contigs[1].bases.substr(50, 70))};
  const auto rec = aligner.align_read(read);
  ASSERT_TRUE(rec.aligned());
  EXPECT_EQ(rec.target_name, "contig1");
  EXPECT_EQ(rec.pos, 50u);
  EXPECT_TRUE(rec.reverse_strand);
  EXPECT_EQ(rec.mismatches, 0);
}

TEST(AlignerTest, MismatchesWithinBudgetCounted) {
  const auto contigs = make_contigs(1, 300, 300);
  AlignerOptions options;
  options.max_mismatches = 2;
  const ContigIndex index(contigs, options);
  const SeedExtendAligner aligner(index);

  std::string bases = contigs[0].bases.substr(100, 80);
  bases[40] = bases[40] == 'A' ? 'C' : 'A';  // middle; seeds at ends stay exact
  const auto rec = aligner.align_read({"r", bases});
  ASSERT_TRUE(rec.aligned());
  EXPECT_EQ(rec.mismatches, 1);
  EXPECT_EQ(rec.pos, 100u);
}

TEST(AlignerTest, OverBudgetReadIsUnaligned) {
  const auto contigs = make_contigs(1, 300, 400);
  AlignerOptions options;
  options.max_mismatches = 1;
  const ContigIndex index(contigs, options);
  const SeedExtendAligner aligner(index);

  std::string bases = contigs[0].bases.substr(50, 90);
  // Three spread-out mismatches exceed the budget.
  for (const std::size_t p : {25u, 45u, 65u}) {
    bases[p] = bases[p] == 'A' ? 'C' : 'A';
  }
  const auto rec = aligner.align_read({"r", bases});
  EXPECT_FALSE(rec.aligned());
}

TEST(AlignerTest, ForeignReadIsUnaligned) {
  const auto contigs = make_contigs(4, 400, 500);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);
  const auto rec = aligner.align_read({"alien", random_dna(80, 999999)});
  EXPECT_FALSE(rec.aligned());
}

TEST(AlignerTest, ReadShorterThanSeedIsUnaligned) {
  const auto contigs = make_contigs(1, 200, 600);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);
  EXPECT_FALSE(aligner.align_read({"tiny", "ACGT"}).aligned());
}

TEST(AlignerTest, AlignAllPreservesOrder) {
  const auto contigs = make_contigs(3, 500, 700);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);

  std::vector<seq::Sequence> reads;
  for (int i = 0; i < 50; ++i) {
    const auto c = static_cast<std::size_t>(i % 3);
    reads.push_back({"r" + std::to_string(i), contigs[c].bases.substr(
                                                  static_cast<std::size_t>(i) * 5, 60)});
  }
  const auto records = aligner.align_all(reads);
  ASSERT_EQ(records.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(records[i].read_name, reads[i].name);
    ASSERT_TRUE(records[i].aligned());
    EXPECT_EQ(records[i].target_name, "contig" + std::to_string(i % 3));
  }
}

TEST(AlignerTest, HyperRepetitiveSeedsSuppressed) {
  // A poly-A contig makes one seed with hundreds of hits; the index must
  // suppress it rather than explode.
  std::vector<seq::Sequence> contigs{{"polyA", std::string(500, 'A')}};
  AlignerOptions options;
  options.max_hits_per_seed = 10;
  const ContigIndex index(contigs, options);
  const seq::KmerCodec codec(options.seed_length);
  const auto code = codec.encode(std::string(16, 'A'));
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(index.lookup(*code), nullptr);
}

TEST(SamTest, WriteContainsHeaderAndRecords) {
  const TempDir dir("sam");
  const auto contigs = make_contigs(2, 300, 800);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);
  std::vector<seq::Sequence> reads{{"good", contigs[0].bases.substr(10, 60)},
                                   {"bad", random_dna(60, 54321)}};
  const auto records = aligner.align_all(reads);
  write_sam(dir.file("out.sam"), records, contigs);

  std::ifstream in(dir.file("out.sam"));
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("@HD"), std::string::npos);
  EXPECT_NE(text.find("@SQ\tSN:contig0\tLN:300"), std::string::npos);
  EXPECT_NE(text.find("good\t0\tcontig0\t11\t"), std::string::npos);  // 1-based pos
  EXPECT_NE(text.find("bad\t4\t*"), std::string::npos);               // unmapped flag
}

TEST(SamTest, MergeDropsPartHeaders) {
  const TempDir dir("merge");
  const auto contigs = make_contigs(1, 200, 900);
  std::vector<SamRecord> recs(1);
  recs[0].read_name = "r0";
  recs[0].target_id = 0;
  recs[0].target_name = "contig0";
  recs[0].read_length = 50;
  write_sam(dir.file("a.sam"), recs, contigs);
  recs[0].read_name = "r1";
  write_sam(dir.file("b.sam"), recs, contigs);

  merge_sam_files({dir.file("a.sam"), dir.file("b.sam")}, dir.file("m.sam"), contigs);
  std::ifstream in(dir.file("m.sam"));
  std::string line;
  int headers = 0;
  int records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '@') {
      ++headers;
    } else {
      ++records;
    }
  }
  EXPECT_EQ(headers, 2);  // @HD + one @SQ, once
  EXPECT_EQ(records, 2);
}

// --- distributed driver ------------------------------------------------------------

class DistributedBowtie : public ::testing::TestWithParam<int> {};

TEST_P(DistributedBowtie, MatchesSerialBestHits) {
  const int nranks = GetParam();
  const auto contigs = make_contigs(12, 400, 1000);
  std::vector<seq::Sequence> reads;
  util::Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const auto c = rng.uniform_below(contigs.size());
    const auto pos = rng.uniform_below(contigs[c].bases.size() - 80);
    reads.push_back({"r" + std::to_string(i), contigs[c].bases.substr(pos, 80)});
  }
  // A few unalignable reads exercise the unmapped path.
  reads.push_back({"alien1", random_dna(80, 777)});
  reads.push_back({"alien2", random_dna(80, 778)});

  const AlignerOptions options;
  const ContigIndex index(contigs, options);
  const SeedExtendAligner serial(index);
  const auto expected = serial.align_all(reads);

  std::vector<SamRecord> distributed;
  DistributedBowtieTiming timing;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    auto result = distributed_bowtie(ctx, contigs, reads, options);
    if (ctx.rank() == 0) {
      distributed = std::move(result.records);
      timing = result.timing;
    }
  });

  ASSERT_EQ(distributed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(distributed[i].aligned(), expected[i].aligned()) << "read " << i;
    if (!expected[i].aligned()) continue;
    // Placement must be at least as good as the serial best (same
    // mismatches; position may tie-break differently only at equal cost).
    EXPECT_EQ(distributed[i].mismatches, expected[i].mismatches) << "read " << i;
    EXPECT_EQ(distributed[i].target_name, expected[i].target_name) << "read " << i;
    EXPECT_EQ(distributed[i].pos, expected[i].pos) << "read " << i;
  }
  EXPECT_GE(timing.align_seconds_max, timing.align_seconds_min);
  EXPECT_GE(timing.total_seconds(), timing.align_seconds_max);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistributedBowtie, ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace trinity::align
