// Tests for simpi rank fault injection: a FaultPlan kills its victim rank
// mid-collective, every surviving rank observes AbortedError instead of
// deadlocking, run() reports the RankFaultError as the root cause, and the
// shared fire budget makes a transient fault fire exactly once across
// re-launches.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "simpi/context.hpp"

namespace trinity::simpi {
namespace {

constexpr int kRanks = 4;
constexpr int kVictim = 2;

FaultPlan kill_at(FaultOp op, int at_entry = 1, int rank = kVictim) {
  FaultPlan plan;
  plan.rank = rank;
  plan.op = op;
  plan.at_entry = at_entry;
  return plan;
}

// Runs `body` on kRanks ranks with `plan` injected; asserts the world
// aborts with RankFaultError as root cause and that every non-victim rank
// observed AbortedError from its blocked call (i.e. nobody deadlocked and
// nobody sailed through).
void expect_world_dies(const FaultPlan& plan, const std::function<void(Context&)>& body) {
  std::atomic<int> survivors_aborted{0};
  std::atomic<int> victim_faulted{0};
  EXPECT_THROW(
      run(kRanks,
          [&](Context& ctx) {
            try {
              body(ctx);
            } catch (const RankFaultError&) {
              victim_faulted.fetch_add(1);
              throw;  // the victim's root cause must reach run()
            } catch (const AbortedError&) {
              survivors_aborted.fetch_add(1);
              // Swallowed: survivors report the abort and exit cleanly.
            }
          },
          {}, plan),
      RankFaultError);
  EXPECT_EQ(victim_faulted.load(), 1);
  EXPECT_EQ(survivors_aborted.load(), kRanks - 1);
}

// --- one kill per collective -----------------------------------------------------

TEST(SimpiFault, KillInsideBarrier) {
  expect_world_dies(kill_at(FaultOp::kBarrier), [](Context& ctx) {
    ctx.barrier();
    ctx.barrier();  // survivors of entry 1 block here until the abort
  });
}

TEST(SimpiFault, KillInsideBcast) {
  expect_world_dies(kill_at(FaultOp::kBcast), [](Context& ctx) {
    std::vector<int> data(8, ctx.rank());
    ctx.bcast(data, 0);
    ctx.barrier();
  });
}

TEST(SimpiFault, KillInsideGatherv) {
  expect_world_dies(kill_at(FaultOp::kGatherv), [](Context& ctx) {
    const std::vector<int> local(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    (void)ctx.gatherv(local, 0);
    ctx.barrier();
  });
}

TEST(SimpiFault, KillInsideAllgatherv) {
  expect_world_dies(kill_at(FaultOp::kAllgatherv), [](Context& ctx) {
    const std::vector<int> local(4, ctx.rank());
    (void)ctx.allgatherv(local);
    ctx.barrier();
  });
}

TEST(SimpiFault, KillInsideAlltoallv) {
  expect_world_dies(kill_at(FaultOp::kAlltoallv), [](Context& ctx) {
    std::vector<std::vector<int>> parts(static_cast<std::size_t>(ctx.size()));
    for (auto& p : parts) p.assign(3, ctx.rank());
    (void)ctx.alltoallv(parts);
    ctx.barrier();
  });
}

TEST(SimpiFault, KillInsideReduce) {
  expect_world_dies(kill_at(FaultOp::kReduce), [](Context& ctx) {
    (void)ctx.allreduce_sum(ctx.rank());
    ctx.barrier();
  });
}

// --- trigger selection -----------------------------------------------------------

TEST(SimpiFault, EntryCountPicksTheNthCall) {
  // Entries 1 and 2 succeed; the fault fires on the victim's 3rd barrier.
  std::atomic<int> completed_barriers{0};
  EXPECT_THROW(run(kRanks,
                   [&](Context& ctx) {
                     try {
                       ctx.barrier();
                       ctx.barrier();
                       completed_barriers.fetch_add(1);
                       ctx.barrier();
                     } catch (const AbortedError&) {
                     }
                   },
                   {}, kill_at(FaultOp::kBarrier, 3)),
               RankFaultError);
  EXPECT_EQ(completed_barriers.load(), kRanks);
}

TEST(SimpiFault, LayeredCollectivesAdvanceInnerCounters) {
  // allgatherv is built on gatherv + bcast, so a gatherv-triggered fault
  // fires inside an allgatherv call too.
  expect_world_dies(kill_at(FaultOp::kGatherv), [](Context& ctx) {
    const std::vector<int> local(1, ctx.rank());
    (void)ctx.allgatherv(local);
    ctx.barrier();
  });
}

TEST(SimpiFault, VirtualTimeTriggerFiresOnNextCall) {
  FaultPlan plan;
  plan.rank = kVictim;
  plan.after_virtual_seconds = 0.0;  // no op trigger; time alone trips it
  expect_world_dies(plan, [](Context& ctx) {
    ctx.barrier();
    ctx.barrier();
  });
}

TEST(SimpiFault, DisabledPlanIsInert) {
  FaultPlan plan;  // rank = -1
  const auto results = run(kRanks, [](Context& ctx) { ctx.barrier(); }, {}, plan);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kRanks));
}

TEST(SimpiFault, NonVictimRanksNeverFire) {
  // A plan aimed at a rank that does not exist in this world never fires.
  const auto results =
      run(2, [](Context& ctx) { ctx.barrier(); }, {}, kill_at(FaultOp::kBarrier, 1, 3));
  EXPECT_EQ(results.size(), 2u);
}

// --- transient-fault budget ------------------------------------------------------

TEST(SimpiFault, ArmedPlanFiresOnceAcrossRelaunches) {
  FaultPlan plan = kill_at(FaultOp::kBarrier);
  plan.arm();  // retry-driver posture: one budget across launches
  const auto body = [](Context& ctx) { ctx.barrier(); };
  EXPECT_THROW(run(kRanks, body, {}, plan), RankFaultError);
  // Same plan object re-launched: budget exhausted, the world completes.
  const auto results = run(kRanks, body, {}, plan);
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kRanks));
}

TEST(SimpiFault, UnarmedPlanGetsFreshBudgetPerWorld) {
  const FaultPlan plan = kill_at(FaultOp::kBarrier);  // never armed by us
  const auto body = [](Context& ctx) { ctx.barrier(); };
  EXPECT_THROW(run(kRanks, body, {}, plan), RankFaultError);
  EXPECT_THROW(run(kRanks, body, {}, plan), RankFaultError);  // fires again
}

TEST(SimpiFault, MaxFiresModelsPersistentFaults) {
  FaultPlan plan = kill_at(FaultOp::kBarrier);
  plan.max_fires = 2;
  plan.arm();
  const auto body = [](Context& ctx) { ctx.barrier(); };
  EXPECT_THROW(run(kRanks, body, {}, plan), RankFaultError);
  EXPECT_THROW(run(kRanks, body, {}, plan), RankFaultError);
  EXPECT_EQ(run(kRanks, body, {}, plan).size(), static_cast<std::size_t>(kRanks));
}

// --- p2p fault points ------------------------------------------------------------

TEST(SimpiFault, KillInsideSend) {
  std::atomic<int> aborted{0};
  EXPECT_THROW(run(2,
                   [&](Context& ctx) {
                     try {
                       if (ctx.rank() == 1) {
                         ctx.send_value<int>(0, 0, 7);
                       } else {
                         (void)ctx.recv_value<int>(1, 0);
                       }
                     } catch (const AbortedError&) {
                       aborted.fetch_add(1);
                     }
                   },
                   {}, kill_at(FaultOp::kSend, 1, 1)),
               RankFaultError);
  EXPECT_EQ(aborted.load(), 1);
}

// --- CLI parsing -----------------------------------------------------------------

TEST(SimpiFault, OpNamesRoundTrip) {
  for (const FaultOp op : {FaultOp::kBarrier, FaultOp::kBcast, FaultOp::kGatherv,
                           FaultOp::kAllgatherv, FaultOp::kAlltoallv, FaultOp::kReduce,
                           FaultOp::kSend, FaultOp::kRecv}) {
    EXPECT_EQ(fault_op_from_string(to_string(op)), op);
  }
  EXPECT_THROW((void)fault_op_from_string("warp-core-breach"), std::invalid_argument);
  EXPECT_THROW((void)fault_op_from_string("none"), std::invalid_argument);
}

}  // namespace
}  // namespace trinity::simpi
