// Tests for the checkpoint subsystem: manifest JSON-line round-trips,
// tolerant loading of damaged manifests, atomic commits, stage validation
// against on-disk artifacts, the options fingerprint builder, and the
// retry/backoff policy.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "checkpoint/fingerprint.hpp"
#include "checkpoint/manifest.hpp"
#include "checkpoint/retry.hpp"
#include "test_helpers.hpp"
#include "util/hash.hpp"

namespace trinity::checkpoint {
namespace {

using testing::TempDir;

StageRecord sample_record() {
  StageRecord r;
  r.stage = "chrysalis.bowtie";
  r.fingerprint = 0xdeadbeefcafef00dULL;
  r.complete = true;
  r.attempt = 2;
  r.wall_seconds = 1.25;
  r.checkpoint_seconds = 0.03125;
  r.inputs.push_back({"inchworm.fa", 123, 0x1111222233334444ULL});
  r.inputs.push_back({"reads.fa", 456, 0x5555666677778888ULL});
  r.outputs.push_back({"bowtie.sam", 789, 0x9999aaaabbbbccccULL});
  return r;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

// --- JSON line round-trip --------------------------------------------------------

TEST(ManifestJson, RecordRoundTrips) {
  const StageRecord r = sample_record();
  const auto parsed = parse_json_line(to_json_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stage, r.stage);
  EXPECT_EQ(parsed->fingerprint, r.fingerprint);
  EXPECT_EQ(parsed->complete, r.complete);
  EXPECT_EQ(parsed->attempt, r.attempt);
  EXPECT_DOUBLE_EQ(parsed->wall_seconds, r.wall_seconds);
  EXPECT_DOUBLE_EQ(parsed->checkpoint_seconds, r.checkpoint_seconds);
  EXPECT_EQ(parsed->inputs, r.inputs);
  EXPECT_EQ(parsed->outputs, r.outputs);
}

TEST(ManifestJson, HashesSurviveAsFullSixtyFourBit) {
  // Hashes near 2^64 - 1 cannot survive a double round-trip; the format
  // must carry them as strings.
  StageRecord r;
  r.stage = "jellyfish";
  r.fingerprint = 0xffffffffffffffffULL;
  r.outputs.push_back({"kmers.bin", 1, 0xfffffffffffffffeULL});
  const auto parsed = parse_json_line(to_json_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fingerprint, 0xffffffffffffffffULL);
  EXPECT_EQ(parsed->outputs.at(0).hash, 0xfffffffffffffffeULL);
}

TEST(ManifestJson, EscapesSpecialCharactersInPaths) {
  StageRecord r;
  r.stage = "weird \"stage\"\n\t\\name";
  r.fingerprint = 7;
  r.inputs.push_back({"dir\\file \"x\".fa", 2, 3});
  const auto parsed = parse_json_line(to_json_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stage, r.stage);
  EXPECT_EQ(parsed->inputs.at(0).path, r.inputs.at(0).path);
}

TEST(ManifestJson, TraceFieldIsOptionalAndRoundTrips) {
  // With a trace, the field round-trips.
  StageRecord r = sample_record();
  r.trace = "run_report.json";
  const auto parsed = parse_json_line(to_json_line(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace, "run_report.json");

  // Without one, the key is omitted entirely — the line matches what the
  // pre-trace format wrote, so old manifests keep parsing byte-identically.
  r.trace.clear();
  const std::string line = to_json_line(r);
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);
  const auto bare = parse_json_line(line);
  ASSERT_TRUE(bare.has_value());
  EXPECT_TRUE(bare->trace.empty());
}

TEST(ManifestJson, RejectsMalformedLines) {
  const std::string good = to_json_line(sample_record());
  // Truncations at every prefix length must fail, never crash.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(parse_json_line(good.substr(0, len)).has_value())
        << "prefix of length " << len << " parsed";
  }
  EXPECT_FALSE(parse_json_line(good + "garbage").has_value());
  EXPECT_FALSE(parse_json_line("not json at all").has_value());
  EXPECT_FALSE(parse_json_line("{}").has_value());  // missing required fields
  EXPECT_FALSE(parse_json_line("{\"stage\":\"x\"}").has_value());  // no fingerprint
}

// --- RunManifest load/commit -----------------------------------------------------

TEST(RunManifest, LoadOfMissingFileIsEmpty) {
  TempDir dir("manifest_missing");
  const auto m = RunManifest::load(dir.file("absent.jsonl"));
  EXPECT_TRUE(m.records().empty());
  EXPECT_EQ(m.dropped_lines(), 0u);
}

TEST(RunManifest, CommitThenLoadRoundTrips) {
  TempDir dir("manifest_roundtrip");
  RunManifest m(dir.file("run_manifest.jsonl"));
  StageRecord first = sample_record();
  StageRecord second;
  second.stage = "inchworm";
  second.fingerprint = first.fingerprint;
  second.complete = true;
  m.upsert(first);
  m.upsert(second);
  m.commit();

  const auto loaded = RunManifest::load(m.path());
  ASSERT_EQ(loaded.records().size(), 2u);
  EXPECT_EQ(loaded.records()[0].stage, "chrysalis.bowtie");
  EXPECT_EQ(loaded.records()[1].stage, "inchworm");
  EXPECT_EQ(loaded.dropped_lines(), 0u);
  // No leftover temporary from the atomic rename.
  EXPECT_FALSE(std::filesystem::exists(m.path() + ".tmp"));
}

TEST(RunManifest, UpsertReplacesInPlace) {
  RunManifest m("unused");
  StageRecord r = sample_record();
  m.upsert(r);
  r.attempt = 5;
  m.upsert(r);
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_EQ(m.records()[0].attempt, 5);
  ASSERT_NE(m.find("chrysalis.bowtie"), nullptr);
  EXPECT_EQ(m.find("chrysalis.bowtie")->attempt, 5);
  EXPECT_EQ(m.find("nope"), nullptr);
}

TEST(RunManifest, TruncatedLineIsDroppedOthersSurvive) {
  TempDir dir("manifest_truncated");
  const std::string path = dir.file("run_manifest.jsonl");
  const std::string good = to_json_line(sample_record());
  // A crash mid-append leaves a final line cut off mid-object.
  write_file(path, good + "\n" + good.substr(0, good.size() / 2));
  const auto m = RunManifest::load(path);
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_EQ(m.dropped_lines(), 1u);
}

TEST(RunManifest, CommitIntoUnwritableDirectoryThrows) {
  RunManifest m("/nonexistent_dir_zzz/run_manifest.jsonl");
  m.upsert(sample_record());
  EXPECT_THROW(m.commit(), std::runtime_error);
}

// --- capture + validate ----------------------------------------------------------

TEST(ValidateStage, ValidRecordPasses) {
  TempDir dir("validate_ok");
  write_file(dir.file("a.fa"), ">r0\nACGT\n");
  write_file(dir.file("b.sam"), "@HD\n");
  StageRecord r;
  r.stage = "s";
  r.fingerprint = 42;
  r.complete = true;
  r.inputs.push_back(capture_artifact(dir.str(), "a.fa"));
  r.outputs.push_back(capture_artifact(dir.str(), "b.sam"));
  EXPECT_EQ(validate_stage(r, dir.str(), 42), StageCheck::kValid);
}

TEST(ValidateStage, ReportsEveryFailureReason) {
  TempDir dir("validate_fail");
  write_file(dir.file("a.fa"), ">r0\nACGT\n");
  StageRecord r;
  r.stage = "s";
  r.fingerprint = 42;
  r.complete = true;
  r.outputs.push_back(capture_artifact(dir.str(), "a.fa"));

  EXPECT_EQ(validate_stage(r, dir.str(), 43), StageCheck::kFingerprintMismatch);

  StageRecord incomplete = r;
  incomplete.complete = false;
  EXPECT_EQ(validate_stage(incomplete, dir.str(), 42), StageCheck::kIncomplete);

  // Same size, different bytes: only the hash catches it.
  write_file(dir.file("a.fa"), ">r0\nACGA\n");
  EXPECT_EQ(validate_stage(r, dir.str(), 42), StageCheck::kArtifactModified);

  std::filesystem::remove(dir.file("a.fa"));
  EXPECT_EQ(validate_stage(r, dir.str(), 42), StageCheck::kArtifactMissing);
}

TEST(ValidateStage, CaptureOfMissingFileThrows) {
  TempDir dir("capture_missing");
  EXPECT_THROW((void)capture_artifact(dir.str(), "ghost.fa"), std::runtime_error);
}

TEST(ValidateStage, CaptureMatchesFnvOfContents) {
  TempDir dir("capture_hash");
  const std::string content = "some stage artifact bytes";
  write_file(dir.file("x"), content);
  const ArtifactRecord a = capture_artifact(dir.str(), "x");
  EXPECT_EQ(a.bytes, content.size());
  EXPECT_EQ(a.hash, util::fnv1a(content));
}

// --- fingerprint -----------------------------------------------------------------

TEST(Fingerprint, SensitiveToNameValueAndOrder) {
  const auto base = FingerprintBuilder().add("k", std::int64_t{25}).add("seed", true).digest();
  EXPECT_EQ(FingerprintBuilder().add("k", std::int64_t{25}).add("seed", true).digest(), base);
  EXPECT_NE(FingerprintBuilder().add("k", std::int64_t{26}).add("seed", true).digest(), base);
  EXPECT_NE(FingerprintBuilder().add("q", std::int64_t{25}).add("seed", true).digest(), base);
  EXPECT_NE(FingerprintBuilder().add("seed", true).add("k", std::int64_t{25}).digest(), base);
  EXPECT_NE(FingerprintBuilder().add("k", std::int64_t{25}).add("seed", false).digest(), base);
}

TEST(Fingerprint, DoubleUsesBitPattern) {
  const auto a = FingerprintBuilder().add("x", 0.1).digest();
  const auto b = FingerprintBuilder().add("x", 0.1 + 1e-18).digest();  // same double
  const auto c = FingerprintBuilder().add("x", 0.2).digest();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// --- retry policy ----------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff_seconds = 1.0;
  p.backoff_multiplier = 4.0;
  p.max_backoff_seconds = 10.0;
  EXPECT_DOUBLE_EQ(p.backoff_for(1), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(2), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(3), 10.0);  // 16 capped
}

TEST(RetryPolicy, DefaultBackoffIsZero) {
  RetryPolicy p;
  EXPECT_DOUBLE_EQ(p.backoff_for(1), 0.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(10), 0.0);
}

// --- hashing utility -------------------------------------------------------------

TEST(Fnv1a, KnownVectorsAndStreaming) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(util::fnv1a(std::string_view{""}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(util::fnv1a(std::string_view{"a"}), 0xaf63dc4c8601ec8cULL);
  // Streaming in pieces equals hashing the whole.
  auto state = util::kFnvOffsetBasis;
  state = util::fnv1a_append(state, "foo", 3);
  state = util::fnv1a_append(state, "bar", 3);
  EXPECT_EQ(state, util::fnv1a(std::string_view{"foobar"}));
}

TEST(Fnv1a, FileHashMatchesInMemory) {
  TempDir dir("fnv_file");
  // Larger than the streaming buffer so multiple reads are exercised.
  std::string content;
  for (int i = 0; i < 10000; ++i) content += "block " + std::to_string(i) + "\n";
  write_file(dir.file("big"), content);
  EXPECT_EQ(util::fnv1a_file(dir.file("big")), util::fnv1a(content));
  EXPECT_THROW((void)util::fnv1a_file(dir.file("ghost")), std::runtime_error);
}

}  // namespace
}  // namespace trinity::checkpoint
