// trinity::Config — the unified flag/JSON parsing path (pipeline/config.hpp).
//
// Pins the API-redesign contract: CLI and JSON land in the same validated
// values, to_json()/from_json round-trips, every pipeline_options()
// validation error is a typed ConfigError naming the field, unknown
// flags/keys are rejected rather than silently defaulted, and the
// deprecated spellings (--nprocs, --model-threads, --trace-file) keep
// working while announcing themselves.

#include "pipeline/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace trinity {
namespace {

/// Runs parse_cli over a brace-list of tokens (argv[0] is synthesized).
Config parse(Config cfg, const std::vector<std::string>& args) {
  std::vector<const char*> argv{"test-binary"};
  for (const auto& a : args) argv.push_back(a.c_str());
  cfg.parse_cli(static_cast<int>(argv.size()), argv.data());
  return cfg;
}

Config pipeline_cfg() {
  Config cfg("config-test", "test");
  cfg.with_pipeline();
  return cfg;
}

/// EXPECT that evaluating `expr` throws ConfigError for `field`.
#define EXPECT_CONFIG_ERROR(expr, expected_field)            \
  try {                                                      \
    (void)(expr);                                            \
    FAIL() << "expected ConfigError for " << expected_field; \
  } catch (const ConfigError& e) {                           \
    EXPECT_EQ(e.field(), expected_field);                    \
    EXPECT_FALSE(e.reason().empty());                        \
  }

TEST(ConfigCli, TypedValuesPositionalsAndInlineForm) {
  Config cfg("t", "t");
  cfg.usage("<input>")
      .flag_int("count", 7, "a count")
      .flag_double("rate", 0.5, "a rate")
      .flag_string("name", "x", "a name")
      .flag_bool("fast", false, "a switch");
  cfg = parse(std::move(cfg), {"in.fa", "--count", "3", "--rate=2.25", "--name", "y", "--fast"});
  EXPECT_EQ(cfg.positional(), std::vector<std::string>{"in.fa"});
  EXPECT_EQ(cfg.get_int("count"), 3);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate"), 2.25);
  EXPECT_EQ(cfg.get_string("name"), "y");
  EXPECT_TRUE(cfg.get_bool("fast"));
  EXPECT_TRUE(cfg.is_set("count"));
}

TEST(ConfigCli, DefaultsApplyWhenUnset) {
  Config cfg("t", "t");
  cfg.flag_int("count", 7, "a count").flag_bool("fast", true, "a switch");
  cfg = parse(std::move(cfg), {});
  EXPECT_EQ(cfg.get_int("count"), 7);
  EXPECT_TRUE(cfg.get_bool("fast"));
  EXPECT_FALSE(cfg.is_set("count"));
}

TEST(ConfigCli, UnderscoreSpellingIsTheDashFlag) {
  auto cfg = parse(pipeline_cfg(), {"--work_dir", "/tmp/x", "--threads_per_rank", "4"});
  EXPECT_EQ(cfg.get_string("work-dir"), "/tmp/x");
  EXPECT_EQ(cfg.get_int("threads-per-rank"), 4);
  // Getter lookups normalize too.
  EXPECT_EQ(cfg.get_string("work_dir"), "/tmp/x");
}

TEST(ConfigCli, NoPrefixClearsBooleans) {
  auto cfg = parse(pipeline_cfg(), {"--no-checkpoint", "--no-overlap"});
  EXPECT_FALSE(cfg.get_bool("checkpoint"));
  EXPECT_FALSE(cfg.get_bool("overlap"));
  // --no-X on a non-bool is unknown, not a negation.
  EXPECT_CONFIG_ERROR(parse(pipeline_cfg(), {"--no-work-dir", "x"}), "no-work-dir");
}

TEST(ConfigCli, UnknownFlagIsATypedError) {
  EXPECT_CONFIG_ERROR(parse(pipeline_cfg(), {"--bogus-flag", "1"}), "bogus-flag");
}

TEST(ConfigCli, MissingAndMalformedValues) {
  EXPECT_CONFIG_ERROR(parse(pipeline_cfg(), {"--ranks"}), "ranks");
  EXPECT_CONFIG_ERROR(parse(pipeline_cfg(), {"--ranks", "many"}), "ranks");
  EXPECT_CONFIG_ERROR(parse(pipeline_cfg(), {"--checkpoint=maybe"}), "checkpoint");
}

TEST(ConfigCli, WhatNamesTheField) {
  try {
    (void)parse(pipeline_cfg(), {"--ranks", "many"});
    FAIL();
  } catch (const ConfigError& e) {
    EXPECT_EQ(std::string(e.what()),
              "config error: --ranks: expected an integer, got 'many'");
  }
}

TEST(ConfigCli, HelpShortCircuitsParsing) {
  auto cfg = parse(pipeline_cfg(), {"--help", "--bogus-flag"});
  EXPECT_TRUE(cfg.help_requested());
  const std::string help = cfg.help_text();
  EXPECT_NE(help.find("--ranks"), std::string::npos);
  EXPECT_NE(help.find("deprecated spellings"), std::string::npos);
  EXPECT_NE(help.find("--nprocs -> use --ranks"), std::string::npos);
}

TEST(ConfigAliases, DeprecatedSpellingsStillParseAndAnnounce) {
  auto cfg = parse(pipeline_cfg(), {"--nprocs", "6", "--model-threads", "8",
                                    "--trace-file", "t.json"});
  EXPECT_EQ(cfg.get_int("ranks"), 6);
  EXPECT_EQ(cfg.get_int("threads-per-rank"), 8);
  EXPECT_EQ(cfg.get_string("trace-path"), "t.json");
  ASSERT_EQ(cfg.deprecation_notes().size(), 3u);
  EXPECT_EQ(cfg.deprecation_notes()[0], "--nprocs is deprecated; use --ranks");
}

TEST(ConfigSharding, EverySpellingParsesToItsStrategy) {
  using chrysalis::ShardingStrategy;
  const std::vector<std::pair<std::string, ShardingStrategy>> cases = {
      {"pooled", ShardingStrategy::kPooled},
      {"false", ShardingStrategy::kPooled},
      {"0", ShardingStrategy::kPooled},
      {"no", ShardingStrategy::kPooled},
      {"off", ShardingStrategy::kPooled},
      {"overlap", ShardingStrategy::kPooledOverlap},
      {"true", ShardingStrategy::kPooledOverlap},
      {"1", ShardingStrategy::kPooledOverlap},
      {"yes", ShardingStrategy::kPooledOverlap},
      {"on", ShardingStrategy::kPooledOverlap},
      {"owner", ShardingStrategy::kOwner},
  };
  for (const auto& [spelling, want] : cases) {
    const auto options =
        parse(pipeline_cfg(), {"--gff-sharding", spelling}).pipeline_options();
    EXPECT_EQ(options.gff_sharding, want) << "--gff-sharding " << spelling;
  }
  // Default: the overlapped pooled path, as before the flag existed.
  EXPECT_EQ(parse(pipeline_cfg(), {}).pipeline_options().gff_sharding,
            ShardingStrategy::kPooledOverlap);
}

TEST(ConfigSharding, BadValueIsATypedError) {
  EXPECT_CONFIG_ERROR(
      parse(pipeline_cfg(), {"--gff-sharding", "banana"}).pipeline_options(),
      "gff-sharding");
}

TEST(ConfigSharding, DeprecatedOverlapPoolingAliasParsesAndAnnounces) {
  auto cfg = parse(pipeline_cfg(), {"--overlap-pooling", "false"});
  EXPECT_EQ(cfg.get_string("gff-sharding"), "false");
  EXPECT_EQ(cfg.pipeline_options().gff_sharding, chrysalis::ShardingStrategy::kPooled);
  ASSERT_EQ(cfg.deprecation_notes().size(), 1u);
  EXPECT_EQ(cfg.deprecation_notes()[0],
            "--overlap-pooling is deprecated; use --gff-sharding");
  EXPECT_NE(pipeline_cfg().help_text().find("--overlap-pooling -> use --gff-sharding"),
            std::string::npos);
}

TEST(ConfigSharding, RoundTripsThroughToJson) {
  auto cfg = parse(pipeline_cfg(), {"--gff-sharding", "owner"});
  Config reloaded = pipeline_cfg();
  reloaded.parse_json_text(cfg.to_json().dump(), "<round-trip>");
  EXPECT_EQ(reloaded.pipeline_options().gff_sharding,
            chrysalis::ShardingStrategy::kOwner);
}

TEST(ConfigJson, RoundTripsThroughToJson) {
  auto cfg = parse(pipeline_cfg(), {"--ranks", "5", "--k", "21", "--no-checkpoint",
                                    "--gff-distribution", "dynamic", "--trace"});
  const std::string dumped = cfg.to_json().dump();

  Config reloaded = pipeline_cfg();
  reloaded.parse_json_text(dumped, "<round-trip>");
  const auto a = cfg.pipeline_options();
  const auto b = reloaded.pipeline_options();
  EXPECT_EQ(b.nranks, 5);
  EXPECT_EQ(b.k, 21);
  EXPECT_FALSE(b.checkpoint);
  EXPECT_EQ(b.gff_distribution, chrysalis::Distribution::kDynamic);
  EXPECT_EQ(a.trace_path, b.trace_path);
  EXPECT_EQ(a.work_dir, b.work_dir);
  EXPECT_EQ(a.max_mem_reads, b.max_mem_reads);
  EXPECT_EQ(a.overlap, b.overlap);
}

TEST(ConfigJson, AcceptsUnderscoreKeysAndScalarTypes) {
  Config cfg = pipeline_cfg();
  cfg.parse_json_text(R"({"work_dir": "/tmp/j", "ranks": 3, "overlap": false})", "<test>");
  EXPECT_EQ(cfg.get_string("work-dir"), "/tmp/j");
  EXPECT_EQ(cfg.get_int("ranks"), 3);
  EXPECT_FALSE(cfg.get_bool("overlap"));
}

TEST(ConfigJson, RejectsUnknownKeysNonScalarsAndMalformedText) {
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_text(R"({"bogus": 1})", "<t>"), "bogus");
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_text(R"({"ranks": [1, 2]})", "<t>"), "ranks");
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_text(R"({"ranks": 2.5})", "<t>"), "ranks");
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_text("{not json", "<t>"), "config");
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_text("[1,2]", "<t>"), "config");
  EXPECT_CONFIG_ERROR(pipeline_cfg().parse_json_file("/nonexistent/config.json"), "config");
}

TEST(ConfigJson, ConfigFlagPreloadsAndCliOverrides) {
  const std::string path = ::testing::TempDir() + "/config_test_preload.json";
  {
    std::ofstream out(path);
    out << R"({"ranks": 9, "k": 17, "work-dir": "/tmp/from-json"})";
  }
  auto cfg = parse(pipeline_cfg(), {"--config", path, "--ranks", "2"});
  EXPECT_EQ(cfg.get_int("ranks"), 2);               // CLI wins
  EXPECT_EQ(cfg.get_int("k"), 17);                  // JSON value kept
  EXPECT_EQ(cfg.get_string("work-dir"), "/tmp/from-json");
  std::remove(path.c_str());
}

TEST(ConfigPipeline, EveryValidationErrorNamesItsField) {
  const std::vector<std::pair<std::vector<std::string>, std::string>> cases = {
      {{"--ranks", "0"}, "ranks"},
      {{"--threads-per-rank", "0"}, "threads-per-rank"},
      {{"--omp-threads", "-1"}, "omp-threads"},
      {{"--k", "1"}, "k"},
      {{"--k", "33"}, "k"},
      {{"--min-kmer-count", "0"}, "min-kmer-count"},
      {{"--min-weld-support", "0"}, "min-weld-support"},
      {{"--max-mem-reads", "0"}, "max-mem-reads"},
      {{"--run-seed", "-1"}, "run-seed"},
      {{"--trace-sample-interval-ms", "-1"}, "trace-sample-interval-ms"},
      {{"--gff-distribution", "dyn"}, "gff-distribution"},
      {{"--r2t-strategy", "master"}, "r2t-strategy"},
      {{"--r2t-output", "mpiio"}, "r2t-output"},
      {{"--bowtie-split", "contigs"}, "bowtie-split"},
      {{"--min-node-support", "-1"}, "min-node-support"},
      {{"--bowtie-repeats", "0"}, "bowtie-repeats"},
      {{"--gff-repeats", "0"}, "gff-repeats"},
      {{"--r2t-repeats", "0"}, "r2t-repeats"},
      {{"--max-attempts", "0"}, "max-attempts"},
      {{"--parse-policy", "lenient"}, "parse-policy"},
      {{"--fault-op", "sendrecv"}, "fault-op"},
      {{"--fault-op", "bcast", "--fault-at", "0"}, "fault-at"},
  };
  for (const auto& [args, field] : cases) {
    auto cfg = parse(pipeline_cfg(), args);
    EXPECT_CONFIG_ERROR(cfg.pipeline_options(), field);
  }
}

TEST(ConfigPipeline, EnumAndTraceFlagsMapToOptions) {
  const auto options =
      parse(pipeline_cfg(), {"--gff-distribution", "block", "--r2t-strategy",
                             "master-slave", "--r2t-output", "collective",
                             "--bowtie-split", "reads", "--parse-policy", "repair"})
          .pipeline_options();
  EXPECT_EQ(options.gff_distribution, chrysalis::Distribution::kBlock);
  EXPECT_EQ(options.r2t_strategy, chrysalis::R2TStrategy::kMasterSlave);
  EXPECT_EQ(options.r2t_output_mode, chrysalis::R2TOutputMode::kCollective);
  EXPECT_EQ(options.bowtie_split, align::BowtieSplit::kReads);
  EXPECT_EQ(options.parse_policy, seq::ParsePolicy::kRepair);

  // --trace alone turns on the default path; --trace-path implies tracing;
  // neither leaves it empty.
  EXPECT_EQ(parse(pipeline_cfg(), {"--trace"}).pipeline_options().trace_path, "trace.json");
  EXPECT_EQ(parse(pipeline_cfg(), {"--trace-path", "t.json"}).pipeline_options().trace_path,
            "t.json");
  EXPECT_TRUE(parse(pipeline_cfg(), {}).pipeline_options().trace_path.empty());
}

TEST(ConfigPipeline, WithPipelineDefaultsSeedTheOptions) {
  pipeline::PipelineOptions defaults;
  defaults.nranks = 4;
  defaults.work_dir = "/tmp/seeded";
  Config cfg("t", "t");
  cfg.with_pipeline(defaults);
  const auto options = parse(std::move(cfg), {}).pipeline_options();
  EXPECT_EQ(options.nranks, 4);
  EXPECT_EQ(options.work_dir, "/tmp/seeded");
}

TEST(ConfigFault, PlanDisabledByDefaultAndDerivedFromFlags) {
  EXPECT_FALSE(parse(pipeline_cfg(), {}).fault_plan().enabled());

  // A bare --fault-rank triggers on the first communication.
  const auto first_comm = parse(pipeline_cfg(), {"--fault-rank", "1"}).fault_plan();
  EXPECT_TRUE(first_comm.enabled());
  EXPECT_EQ(first_comm.rank, 1);
  EXPECT_DOUBLE_EQ(first_comm.after_virtual_seconds, 0.0);

  const auto at_op = parse(pipeline_cfg(), {"--fault-rank", "0", "--fault-op", "gatherv",
                                            "--fault-at", "2"})
                         .fault_plan();
  EXPECT_TRUE(at_op.enabled());
  EXPECT_EQ(at_op.op, simpi::FaultOp::kGatherv);
  EXPECT_EQ(at_op.at_entry, 2);
}

TEST(ConfigMisuse, WrongTypeAndUndeclaredAccess) {
  auto cfg = parse(pipeline_cfg(), {});
  EXPECT_CONFIG_ERROR(cfg.get_string("ranks"), "ranks");     // int accessed as string
  EXPECT_CONFIG_ERROR(cfg.get_int("undeclared"), "undeclared");
  Config bare("t", "t");
  EXPECT_CONFIG_ERROR(bare.pipeline_options(), "ranks");
  EXPECT_CONFIG_ERROR(bare.fault_plan(), "fault-rank");
  EXPECT_CONFIG_ERROR(bare.flag_int("x", 0, "h").flag_int("x", 1, "h"), "x");
}

}  // namespace
}  // namespace trinity
