// The JSON run report end to end: a hybrid pipeline run must emit a
// document that round-trips through the parser, declares the supported
// schema version, and whose per-stage Allgatherv byte counts and
// max/mean rank-time imbalance agree with the in-memory PipelineResult.
// docs/OBSERVABILITY.md documents every field asserted here.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "checkpoint/manifest.hpp"
#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"

namespace trinity::pipeline {
namespace {

using trinity::testing::TempDir;

PipelineOptions small_options(const std::string& work_dir, int nranks) {
  PipelineOptions o;
  o.k = 15;
  o.nranks = nranks;
  o.work_dir = work_dir;
  o.model_threads_per_rank = 4;
  o.max_mem_reads = 500;
  o.trace_sample_interval_ms = 0;
  return o;
}

sim::Dataset tiny_dataset() {
  auto p = sim::preset("tiny");
  p.reads.error_rate = 0.002;
  p.reads.coverage = 30.0;
  p.reads.expression_sigma = 0.7;
  return sim::simulate_dataset(p);
}

/// One hybrid run shared by the assertions below (the pipeline dominates
/// this binary's runtime, so run it once).
class RunReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("run_report");
    const auto data = tiny_dataset();
    result_ = new PipelineResult(
        run_pipeline(data.reads.reads, small_options(dir_->str(), kRanks)));
    report_ = new util::Json(load_run_report(result_->report_path));
  }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
    delete result_;
    result_ = nullptr;
    delete dir_;
    dir_ = nullptr;
  }

  static constexpr int kRanks = 2;
  static TempDir* dir_;
  static PipelineResult* result_;
  static util::Json* report_;
};

TempDir* RunReportTest::dir_ = nullptr;
PipelineResult* RunReportTest::result_ = nullptr;
util::Json* RunReportTest::report_ = nullptr;

TEST_F(RunReportTest, WritesReportAtDefaultPath) {
  EXPECT_EQ(result_->report_path, dir_->file(kReportFileName));
  EXPECT_TRUE(std::filesystem::exists(result_->report_path));
}

TEST_F(RunReportTest, DeclaresSupportedSchemaVersion) {
  EXPECT_EQ(report_->at("schema_version").as_int(), kReportSchemaVersion);
  EXPECT_EQ(report_->at("generator").as_string(), "trinity_pipeline");
  EXPECT_EQ(report_->at("nranks").as_int(), kRanks);
}

TEST_F(RunReportTest, RoundTripsThroughParser) {
  const std::string text = report_->dump(2);
  const util::Json reparsed = util::Json::parse(text);
  EXPECT_EQ(reparsed.dump(2), text);
}

TEST_F(RunReportTest, CommSectionCoversEveryHybridStage) {
  std::vector<std::string> stages;
  for (const auto& stage : report_->at("comm").items()) {
    stages.push_back(stage.at("stage").as_string());
    EXPECT_EQ(stage.at("nranks").as_int(), kRanks);
    EXPECT_EQ(stage.at("ranks").items().size(), static_cast<std::size_t>(kRanks));
  }
  for (const auto* expected : {"chrysalis.bowtie", "chrysalis.graph_from_fasta",
                               "chrysalis.reads_to_transcripts"}) {
    EXPECT_NE(std::find(stages.begin(), stages.end(), expected), stages.end()) << expected;
  }
}

TEST_F(RunReportTest, ImbalanceFieldsAreConsistent) {
  for (const auto& stage : report_->at("comm").items()) {
    const double max_virtual = stage.at("max_virtual_s").as_double();
    const double mean_virtual = stage.at("mean_virtual_s").as_double();
    const double skew = stage.at("skew_ratio").as_double();
    EXPECT_GT(mean_virtual, 0.0);
    EXPECT_GE(max_virtual, mean_virtual);
    EXPECT_NEAR(skew, max_virtual / mean_virtual, 1e-9);
    EXPECT_GE(skew, 1.0);

    // The per-rank rows must reproduce the stage aggregates.
    double max_seen = 0.0, sum_seen = 0.0;
    for (const auto& rank : stage.at("ranks").items()) {
      const double v = rank.at("virtual_s").as_double();
      max_seen = v > max_seen ? v : max_seen;
      sum_seen += v;
    }
    EXPECT_NEAR(max_seen, max_virtual, 1e-9);
    EXPECT_NEAR(sum_seen / kRanks, mean_virtual, 1e-9);
  }
}

TEST_F(RunReportTest, AllgathervBytesMatchChrysalisPooling) {
  const util::Json* gff_stage = nullptr;
  for (const auto& stage : report_->at("comm").items()) {
    if (stage.at("stage").as_string() == "chrysalis.graph_from_fasta") gff_stage = &stage;
  }
  ASSERT_NE(gff_stage, nullptr);

  const auto& gff = report_->at("chrysalis").at("graph_from_fasta");
  const std::int64_t pooled =
      gff.at("weld_bytes_pooled").as_int() + gff.at("match_bytes_pooled").as_int();
  std::int64_t contributed = 0;
  for (const auto& v : gff.at("weld_bytes_contributed").items()) contributed += v.as_int();
  for (const auto& v : gff.at("match_bytes_contributed").items()) contributed += v.as_int();
  EXPECT_EQ(contributed, pooled);  // a pool is exactly its contributions

  // Every rank logically receives each pooled concatenation; the stage also
  // runs bookkeeping allgathervs (timing, the byte counters themselves), so
  // the recorded volume is at least the two pools.
  for (const auto& rank : gff_stage->at("ranks").items()) {
    const util::Json* ag = rank.at("ops").find("allgatherv");
    ASSERT_NE(ag, nullptr);
    EXPECT_GT(ag->at("calls").as_int(), 0);
    EXPECT_GE(ag->at("bytes_received").as_int(), pooled);
  }

  // The in-memory accessors agree with the document.
  const StageCommMetrics* metrics = result_->find_stage_comm("chrysalis.graph_from_fasta");
  ASSERT_NE(metrics, nullptr);
  std::int64_t json_received = 0;
  for (const auto& rank : gff_stage->at("ranks").items()) {
    json_received += rank.at("ops").at("allgatherv").at("bytes_received").as_int();
  }
  EXPECT_EQ(static_cast<std::int64_t>(
                metrics->total_bytes_received(simpi::CommOp::kAllgatherv)),
            json_received);
  EXPECT_NEAR(metrics->skew_ratio(), gff_stage->at("skew_ratio").as_double(), 1e-9);
}

TEST_F(RunReportTest, GffShardingIsRecordedAdditively) {
  // Default run: the overlap strategy, no owner-mode counters.
  const auto& gff = report_->at("chrysalis").at("graph_from_fasta");
  EXPECT_EQ(gff.at("gff_sharding").as_string(), "overlap");
  EXPECT_EQ(gff.find("weld_bytes_routed"), nullptr);
  EXPECT_EQ(gff.find("dsu_rounds"), nullptr);
}

TEST(RunReportStandalone2, OwnerShardingEmitsRoutedCountersAndAlltoallvRow) {
  const TempDir dir("run_report_owner");
  const auto data = tiny_dataset();
  auto options = small_options(dir.str(), 3);
  options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  const auto result = run_pipeline(data.reads.reads, options);
  const util::Json report = load_run_report(result.report_path);

  const auto& gff = report.at("chrysalis").at("graph_from_fasta");
  EXPECT_EQ(gff.at("gff_sharding").as_string(), "owner");
  EXPECT_GT(gff.at("weld_bytes_routed").as_int(), 0);
  EXPECT_GE(gff.at("dsu_rounds").as_int(), 0);
  ASSERT_NE(gff.find("dsu_edge_bytes_routed"), nullptr);
  // The pooled counters stay zero: nothing was replicated in loop 2.
  EXPECT_EQ(gff.at("weld_bytes_pooled").as_int(), 0);
  EXPECT_EQ(gff.at("match_bytes_pooled").as_int(), 0);

  // The stage comm section carries the new alltoallv row with the routed
  // traffic, and the allgatherv row shrinks to bookkeeping reductions.
  const util::Json* gff_stage = nullptr;
  for (const auto& stage : report.at("comm").items()) {
    if (stage.at("stage").as_string() == "chrysalis.graph_from_fasta") gff_stage = &stage;
  }
  ASSERT_NE(gff_stage, nullptr);
  std::int64_t a2a_received = 0;
  for (const auto& rank : gff_stage->at("ranks").items()) {
    const util::Json* a2a = rank.at("ops").find("alltoallv");
    ASSERT_NE(a2a, nullptr);
    EXPECT_GT(a2a->at("calls").as_int(), 0);
    a2a_received += a2a->at("bytes_received").as_int();
  }
  EXPECT_GT(a2a_received, 0);
}

TEST_F(RunReportTest, ReadsToTranscriptsChunkAccounting) {
  const auto& r2t = report_->at("chrysalis").at("reads_to_transcripts");
  std::int64_t chunks = 0, reads = 0, contributed = 0;
  for (const auto& v : r2t.at("rank_chunks").items()) chunks += v.as_int();
  for (const auto& v : r2t.at("rank_reads").items()) reads += v.as_int();
  for (const auto& v : r2t.at("assignment_bytes_contributed").items()) {
    contributed += v.as_int();
  }
  EXPECT_GT(chunks, 0);
  EXPECT_EQ(reads, static_cast<std::int64_t>(result_->assignments.size()));
  EXPECT_EQ(contributed, r2t.at("assignment_bytes_pooled").as_int());
}

TEST_F(RunReportTest, ManifestRecordsPointAtReport) {
  const auto manifest = checkpoint::RunManifest::load(dir_->file(kManifestFileName));
  ASSERT_FALSE(manifest.records().empty());
  for (const auto& record : manifest.records()) {
    EXPECT_EQ(record.trace, kReportFileName) << record.stage;
  }
}

TEST_F(RunReportTest, SummaryMentionsEveryStage) {
  std::ostringstream out;
  summarize_report(*report_, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("chrysalis.graph_from_fasta"), std::string::npos);
  EXPECT_NE(text.find("skew"), std::string::npos);
  EXPECT_NE(text.find("chunks per rank"), std::string::npos);
}

TEST(RunReportStandalone, EmitReportOffWritesNothing) {
  const TempDir dir("run_report_off");
  const auto data = tiny_dataset();
  auto options = small_options(dir.str(), 2);
  options.emit_report = false;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_TRUE(result.report_path.empty());
  EXPECT_FALSE(std::filesystem::exists(dir.file(kReportFileName)));
  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  ASSERT_FALSE(manifest.records().empty());
  for (const auto& record : manifest.records()) EXPECT_TRUE(record.trace.empty());
}

TEST(RunReportStandalone, LoaderRejectsBadDocuments) {
  const TempDir dir("run_report_bad");
  EXPECT_THROW((void)load_run_report(dir.file("missing.json")), std::runtime_error);

  {
    std::ofstream out(dir.file("no_version.json"));
    out << "{\"generator\": \"trinity_pipeline\"}\n";
  }
  EXPECT_THROW((void)load_run_report(dir.file("no_version.json")), std::runtime_error);

  {
    std::ofstream out(dir.file("future.json"));
    out << "{\"schema_version\": " << (kReportSchemaVersion + 1) << "}\n";
  }
  EXPECT_THROW((void)load_run_report(dir.file("future.json")), std::runtime_error);
}

TEST(RunReportStandalone, BuildIsPureAndWriteRoundTrips) {
  const TempDir dir("run_report_pure");
  PipelineOptions options;
  options.nranks = 2;
  PipelineResult result;
  result.stages_executed = {"jellyfish"};
  StageCommMetrics metrics;
  metrics.stage = "demo";
  metrics.ranks.resize(2);
  metrics.ranks[0].rank = 0;
  metrics.ranks[0].cpu_seconds = 1.0;
  metrics.ranks[0].comm.of(simpi::CommOp::kAllgatherv) = {1, 4, 12, 0.0};
  metrics.ranks[1].rank = 1;
  metrics.ranks[1].cpu_seconds = 3.0;
  result.stage_comm.push_back(metrics);

  const util::Json report = build_run_report(options, result);
  EXPECT_EQ(report.at("schema_version").as_int(), kReportSchemaVersion);
  const auto& stage = report.at("comm").items().at(0);
  EXPECT_EQ(stage.at("skew_ratio").as_double(), 1.5);  // max 3 / mean 2
  // Zero-call ops are omitted from the per-rank rows.
  EXPECT_NE(stage.at("ranks").items().at(0).at("ops").find("allgatherv"), nullptr);
  EXPECT_EQ(stage.at("ranks").items().at(0).at("ops").find("send"), nullptr);

  write_run_report(dir.file("report.json"), report);
  const util::Json loaded = load_run_report(dir.file("report.json"));
  EXPECT_EQ(loaded.dump(2), report.dump(2));
}

TEST_F(RunReportTest, OmitsJobAttributionForDirectRuns) {
  // Schema v3 job attribution is for served jobs only; a direct pipeline
  // invocation must not carry the fields at all (older readers keep working).
  EXPECT_EQ(report_->find("job_id"), nullptr);
  EXPECT_EQ(report_->find("tenant"), nullptr);
  EXPECT_EQ(report_->find("preemptions"), nullptr);
}

TEST(RunReportStandalone, BuildEmitsJobAttributionWhenSet) {
  PipelineOptions options;
  options.nranks = 2;
  PipelineResult result;

  options.job_id = "job-7";
  options.tenant = "alice";
  options.preemptions = 2;
  const util::Json report = build_run_report(options, result);
  EXPECT_EQ(report.at("job_id").as_string(), "job-7");
  EXPECT_EQ(report.at("tenant").as_string(), "alice");
  EXPECT_EQ(report.at("preemptions").as_int(), 2);

  // Either identity field alone is enough to opt in.
  options.tenant.clear();
  const util::Json id_only = build_run_report(options, result);
  EXPECT_EQ(id_only.at("job_id").as_string(), "job-7");
  EXPECT_EQ(id_only.at("tenant").as_string(), "");
}

TEST(RunReportStandalone, LoaderAcceptsEveryOlderSchemaVersion) {
  const TempDir dir("run_report_compat");
  for (int version = 1; version <= kReportSchemaVersion; ++version) {
    const std::string path = dir.file("v" + std::to_string(version) + ".json");
    {
      std::ofstream out(path);
      out << "{\"schema_version\": " << version
          << ", \"generator\": \"trinity_pipeline\", \"nranks\": 2}\n";
    }
    const util::Json loaded = load_run_report(path);
    EXPECT_EQ(loaded.at("schema_version").as_int(), version) << path;
  }
}

/// A minimal synthetic report: one phase, one comm stage with a single
/// rank whose allgatherv row carries the given byte counts.
util::Json synthetic_report(const std::string& tenant, double wall_s,
                            std::int64_t bytes, double skew,
                            std::int64_t preemptions) {
  util::Json report = util::Json::object();
  report.set("schema_version", kReportSchemaVersion);
  if (!tenant.empty()) {
    report.set("job_id", tenant + "-job");
    report.set("tenant", tenant);
    report.set("preemptions", preemptions);
  }
  util::Json phase = util::Json::object();
  phase.set("phase", "total");
  phase.set("wall_s", wall_s);
  phase.set("cpu_s", wall_s * 2.0);
  util::Json phases = util::Json::array();
  phases.push_back(std::move(phase));
  report.set("phases", std::move(phases));

  util::Json op = util::Json::object();
  op.set("calls", 1);
  op.set("bytes_sent", bytes);
  op.set("bytes_received", bytes * 3);
  util::Json ops = util::Json::object();
  ops.set("allgatherv", std::move(op));
  util::Json rank = util::Json::object();
  rank.set("rank", 0);
  rank.set("ops", std::move(ops));
  util::Json ranks = util::Json::array();
  ranks.push_back(std::move(rank));
  util::Json stage = util::Json::object();
  stage.set("stage", "demo");
  stage.set("skew_ratio", skew);
  stage.set("ranks", std::move(ranks));
  util::Json comm = util::Json::array();
  comm.push_back(std::move(stage));
  report.set("comm", std::move(comm));

  report.set("stage_retries", 1);
  return report;
}

TEST(RunReportStandalone, AggregateGroupsReportsByTenant) {
  std::vector<util::Json> reports;
  reports.push_back(synthetic_report("alice", 1.0, 100, 1.5, 1));
  reports.push_back(synthetic_report("alice", 2.0, 50, 1.2, 0));
  reports.push_back(synthetic_report("bob", 4.0, 10, 2.5, 0));
  reports.push_back(synthetic_report("", 8.0, 1, 1.0, 0));  // direct run

  const util::Json aggregate = aggregate_run_reports(reports);
  EXPECT_EQ(aggregate.at("reports").as_int(), 4);
  const auto& tenants = aggregate.at("tenants").items();
  ASSERT_EQ(tenants.size(), 3u);

  const util::Json& alice = tenants.at(0);
  EXPECT_EQ(alice.at("tenant").as_string(), "alice");
  EXPECT_EQ(alice.at("jobs").as_int(), 2);
  EXPECT_DOUBLE_EQ(alice.at("wall_s").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(alice.at("cpu_s").as_double(), 6.0);
  EXPECT_EQ(alice.at("comm_bytes_sent").as_int(), 150);
  EXPECT_EQ(alice.at("comm_bytes_received").as_int(), 450);
  EXPECT_EQ(alice.at("stage_retries").as_int(), 2);
  EXPECT_EQ(alice.at("preemptions").as_int(), 1);
  EXPECT_DOUBLE_EQ(alice.at("max_skew").as_double(), 1.5);

  EXPECT_EQ(tenants.at(1).at("tenant").as_string(), "bob");
  EXPECT_DOUBLE_EQ(tenants.at(1).at("max_skew").as_double(), 2.5);

  // Reports without a tenant land in the "-" bucket.
  EXPECT_EQ(tenants.at(2).at("tenant").as_string(), "-");
  EXPECT_EQ(tenants.at(2).at("jobs").as_int(), 1);

  std::ostringstream table;
  summarize_aggregate(aggregate, table);
  EXPECT_NE(table.str().find("alice"), std::string::npos);
  EXPECT_NE(table.str().find("bob"), std::string::npos);
}

TEST(RunReportStandalone, AggregateOfNothingIsEmpty) {
  const util::Json aggregate = aggregate_run_reports({});
  EXPECT_EQ(aggregate.at("reports").as_int(), 0);
  EXPECT_TRUE(aggregate.at("tenants").items().empty());
}

}  // namespace
}  // namespace trinity::pipeline
