// Tests for the PyFasta substitute: coverage, balance, and file splitting.

#include <gtest/gtest.h>

#include <numeric>

#include "fasplit/fasplit.hpp"
#include "seq/fasta.hpp"
#include "test_helpers.hpp"

namespace trinity::fasplit {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

std::vector<seq::Sequence> varied_contigs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < n; ++i) {
    // Wide length variation, like Inchworm contigs (tens to thousands).
    const auto len = static_cast<std::size_t>(50 + rng.uniform_below(2000));
    out.push_back({"c" + std::to_string(i), random_dna(len, seed + i)});
  }
  return out;
}

class FasplitParts : public ::testing::TestWithParam<int> {};

TEST_P(FasplitParts, EverySequenceAssignedExactlyOnce) {
  const int parts = GetParam();
  const auto seqs = varied_contigs(57, 3);
  const auto partition = partition_balanced(seqs, parts);
  ASSERT_EQ(partition.part_of.size(), seqs.size());
  std::size_t total = 0;
  for (int p = 0; p < parts; ++p) {
    total += extract_part(seqs, partition, p).size();
  }
  EXPECT_EQ(total, seqs.size());
  for (const int p : partition.part_of) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, parts);
  }
}

TEST_P(FasplitParts, PartBasesAccountsAllBases) {
  const int parts = GetParam();
  const auto seqs = varied_contigs(40, 5);
  const auto partition = partition_balanced(seqs, parts);
  const std::size_t total = std::accumulate(partition.part_bases.begin(),
                                            partition.part_bases.end(), std::size_t{0});
  EXPECT_EQ(total, seq::total_bases(seqs));
}

TEST_P(FasplitParts, LptBoundHolds) {
  // Longest-processing-time guarantees max <= mean + longest item.
  const int parts = GetParam();
  const auto seqs = varied_contigs(80, 7);
  const auto partition = partition_balanced(seqs, parts);
  std::size_t longest = 0;
  for (const auto& s : seqs) longest = std::max(longest, s.bases.size());
  const double mean = static_cast<double>(seq::total_bases(seqs)) / parts;
  const std::size_t max_part =
      *std::max_element(partition.part_bases.begin(), partition.part_bases.end());
  EXPECT_LE(static_cast<double>(max_part), mean + static_cast<double>(longest) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, FasplitParts, ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(FasplitTest, SinglePartIsIdentity) {
  const auto seqs = varied_contigs(10, 9);
  const auto partition = partition_balanced(seqs, 1);
  const auto part = extract_part(seqs, partition, 0);
  ASSERT_EQ(part.size(), seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(part[i].name, seqs[i].name);
}

TEST(FasplitTest, MorePartsThanSequences) {
  const auto seqs = varied_contigs(3, 11);
  const auto partition = partition_balanced(seqs, 8);
  std::size_t nonempty = 0;
  for (int p = 0; p < 8; ++p) {
    if (!extract_part(seqs, partition, p).empty()) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3u);
}

TEST(FasplitTest, RejectsZeroParts) {
  EXPECT_THROW(partition_balanced({}, 0), std::invalid_argument);
}

TEST(FasplitTest, EmptyInputOk) {
  const auto partition = partition_balanced({}, 4);
  EXPECT_EQ(partition.part_bases, std::vector<std::size_t>(4, 0));
  EXPECT_EQ(imbalance(partition), 0.0);
}

TEST(FasplitTest, DeterministicAcrossCalls) {
  const auto seqs = varied_contigs(30, 13);
  const auto a = partition_balanced(seqs, 4);
  const auto b = partition_balanced(seqs, 4);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(FasplitTest, ImbalanceNearOneForUniformItems) {
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 64; ++i) seqs.push_back({"u" + std::to_string(i), random_dna(100, 1)});
  const auto partition = partition_balanced(seqs, 8);
  EXPECT_DOUBLE_EQ(imbalance(partition), 1.0);
}

TEST(FasplitTest, SplitFastaFileWritesAllParts) {
  const TempDir dir("split");
  const auto seqs = varied_contigs(23, 17);
  seq::write_fasta(dir.file("in.fa"), seqs);
  const auto paths = split_fasta_file(dir.file("in.fa"), dir.file("part"), 4);
  ASSERT_EQ(paths.size(), 4u);
  std::size_t total = 0;
  std::size_t bases = 0;
  for (const auto& p : paths) {
    const auto part = seq::read_all(p);
    total += part.size();
    bases += seq::total_bases(part);
  }
  EXPECT_EQ(total, seqs.size());
  EXPECT_EQ(bases, seq::total_bases(seqs));
}

TEST(FasplitTest, MissingInputFileThrows) {
  const TempDir dir("badsplit");
  EXPECT_THROW(split_fasta_file("/no/such/input.fa", dir.file("part"), 2),
               std::runtime_error);
}

}  // namespace
}  // namespace trinity::fasplit
