// Tests for the Jellyfish substitute: counting correctness against a brute
// force oracle, canonical semantics, dump formats, and concurrent inserts.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <thread>

#include "kmer/counter.hpp"
#include "seq/dna.hpp"
#include "test_helpers.hpp"

namespace trinity::kmer {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

/// Brute-force canonical k-mer counts over a set of sequences.
std::map<seq::KmerCode, std::uint32_t> oracle_counts(const std::vector<seq::Sequence>& seqs,
                                                     int k, bool canonical) {
  const seq::KmerCodec codec(k);
  std::map<seq::KmerCode, std::uint32_t> out;
  for (const auto& s : seqs) {
    for (std::size_t i = 0; i + static_cast<std::size_t>(k) <= s.bases.size(); ++i) {
      const auto code = codec.encode(std::string_view(s.bases).substr(i));
      if (!code) continue;
      out[canonical ? codec.canonical(*code) : *code] += 1;
    }
  }
  return out;
}

CounterOptions opts(int k, bool canonical = true) {
  CounterOptions o;
  o.k = k;
  o.canonical = canonical;
  return o;
}

TEST(KmerCounterTest, MatchesBruteForceOracle) {
  std::vector<seq::Sequence> seqs;
  for (int i = 0; i < 10; ++i) {
    seqs.push_back({"s" + std::to_string(i), random_dna(300, static_cast<std::uint64_t>(i + 1))});
  }
  for (const int k : {5, 15, 25}) {
    KmerCounter counter(opts(k));
    counter.add_sequences(seqs);
    const auto expected = oracle_counts(seqs, k, true);

    std::uint64_t expected_total = 0;
    for (const auto& [code, count] : expected) expected_total += count;
    EXPECT_EQ(counter.distinct(), expected.size()) << "k=" << k;
    EXPECT_EQ(counter.total(), expected_total) << "k=" << k;
    for (const auto& [code, count] : expected) {
      EXPECT_EQ(counter.count_of(code), count) << "k=" << k;
    }
  }
}

TEST(KmerCounterTest, CanonicalMergesStrands) {
  const std::string fwd = random_dna(100, 44);
  std::vector<seq::Sequence> both{{"f", fwd}, {"r", seq::reverse_complement(fwd)}};
  KmerCounter counter(opts(21));
  counter.add_sequences(both);
  // Every canonical k-mer should have an even count (each window appears on
  // both strands) unless it is its own reverse complement (impossible for
  // odd k).
  for (const auto& kc : counter.dump()) {
    EXPECT_EQ(kc.count % 2, 0u) << "k-mer counted asymmetrically across strands";
  }
}

TEST(KmerCounterTest, NonCanonicalKeepsStrandsApart) {
  KmerCounter counter(opts(4, /*canonical=*/false));
  counter.add_sequence({"s", "AAAA"});
  const seq::KmerCodec codec(4);
  EXPECT_EQ(counter.count_of(*codec.encode("AAAA")), 1u);
  EXPECT_EQ(counter.count_of(*codec.encode("TTTT")), 0u);
}

TEST(KmerCounterTest, CountOfCanonicalizesQueries) {
  KmerCounter counter(opts(5));
  counter.add_sequence({"s", "ACGTC"});
  const seq::KmerCodec codec(5);
  // Query by the reverse complement; the canonical counter must find it.
  EXPECT_EQ(counter.count_of(*codec.encode("GACGT")), 1u);
}

TEST(KmerCounterTest, SequencesWithNsSkipThoseWindows) {
  KmerCounter counter(opts(3));
  counter.add_sequence({"s", "ACGNACG"});
  EXPECT_EQ(counter.total(), 2u);  // "ACG" twice, nothing across the N
}

TEST(KmerCounterTest, AccumulatesAcrossCalls) {
  KmerCounter counter(opts(3));
  counter.add_sequence({"a", "AAAA"});
  counter.add_sequence({"b", "AAAA"});
  const seq::KmerCodec codec(3);
  EXPECT_EQ(counter.count_of(*codec.encode("AAA")), 4u);
}

TEST(KmerCounterTest, MinCountFiltersDump) {
  KmerCounter counter(opts(3));
  counter.add_sequence({"s", "AAAAACG"});  // AAA x3, AAC, ACG once each
  const auto all = counter.dump(1);
  const auto frequent = counter.dump(2);
  EXPECT_GT(all.size(), frequent.size());
  for (const auto& kc : frequent) EXPECT_GE(kc.count, 2u);
}

TEST(KmerCounterTest, RejectsNonPowerOfTwoShards) {
  CounterOptions o;
  o.num_shards = 7;
  EXPECT_THROW(KmerCounter{o}, std::invalid_argument);
}

TEST(KmerCounterTest, ConcurrentInsertsAreExact) {
  // Hammer the striped hash from explicit threads; total must be exact.
  KmerCounter counter(opts(15));
  const std::string seed_seq = random_dna(5000, 321);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &seed_seq] {
      counter.add_sequence({"s", seed_seq});
    });
  }
  for (auto& w : workers) w.join();
  const auto expected = oracle_counts({{"s", seed_seq}}, 15, true);
  std::uint64_t expected_total = 0;
  for (const auto& [code, count] : expected) expected_total += count;
  EXPECT_EQ(counter.total(), expected_total * kThreads);
}

TEST(KmerDumpTest, TextRoundTrip) {
  const TempDir dir("dump");
  KmerCounter counter(opts(7));
  counter.add_sequence({"s", random_dna(200, 9)});
  const auto counts = counter.dump();
  const seq::KmerCodec codec(7);
  write_dump_text(dir.file("k.txt"), counts, codec);
  const auto got = read_dump_text(dir.file("k.txt"), codec);
  ASSERT_EQ(got.size(), counts.size());
  std::map<seq::KmerCode, std::uint32_t> a;
  std::map<seq::KmerCode, std::uint32_t> b;
  for (const auto& kc : counts) a[kc.code] = kc.count;
  for (const auto& kc : got) b[kc.code] = kc.count;
  EXPECT_EQ(a, b);
}

TEST(KmerDumpTest, BinaryRoundTrip) {
  const TempDir dir("bdump");
  KmerCounter counter(opts(25));
  counter.add_sequence({"s", random_dna(400, 10)});
  const auto counts = counter.dump();
  write_dump_binary(dir.file("k.bin"), counts, 25);
  const auto got = read_dump_binary(dir.file("k.bin"), 25);
  ASSERT_EQ(got.size(), counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(got[i].code, counts[i].code);
    EXPECT_EQ(got[i].count, counts[i].count);
  }
}

TEST(KmerDumpTest, BinaryKMismatchThrows) {
  const TempDir dir("kmis");
  write_dump_binary(dir.file("k.bin"), {}, 25);
  EXPECT_THROW(read_dump_binary(dir.file("k.bin"), 21), std::runtime_error);
}

TEST(KmerDumpTest, TruncatedBinaryThrows) {
  const TempDir dir("trunc");
  KmerCounter counter(opts(11));
  counter.add_sequence({"s", random_dna(100, 2)});
  write_dump_binary(dir.file("k.bin"), counter.dump(), 11);
  // Chop the file.
  const auto path = dir.file("k.bin");
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  EXPECT_THROW(read_dump_binary(path, 11), std::runtime_error);
}

TEST(KmerDumpTest, MalformedTextThrows) {
  const TempDir dir("badtext");
  std::ofstream out(dir.file("bad.txt"));
  out << "5\nACGTACG\n";  // missing '>' prefix
  out.close();
  const seq::KmerCodec codec(7);
  EXPECT_THROW(read_dump_text(dir.file("bad.txt"), codec), std::runtime_error);
}

}  // namespace
}  // namespace trinity::kmer
