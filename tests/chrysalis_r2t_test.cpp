// Tests for ReadsToTranscripts: assignment correctness, streaming
// chunking, per-rank output concatenation, and equivalence of the hybrid
// run (both the redundant-streaming scheme and the master/slave ablation)
// with the shared-memory run.

#include <gtest/gtest.h>

#include <fstream>

#include "chrysalis/components.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "seq/dna.hpp"
#include "seq/fasta.hpp"
#include "simpi/context.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

constexpr int kTestK = 15;

struct Fixture {
  std::vector<seq::Sequence> contigs;
  ComponentSet components;
  std::vector<seq::Sequence> reads;
  std::vector<std::int32_t> true_component;  // per read
};

/// Builds `n_components` single-contig bundles and reads sampled from them,
/// plus a few unassignable reads at the end.
Fixture build_fixture(std::size_t n_components, std::size_t reads_per_component,
                      std::uint64_t seed) {
  Fixture f;
  util::Rng rng(seed);
  for (std::size_t c = 0; c < n_components; ++c) {
    f.contigs.push_back({"contig" + std::to_string(c), random_dna(400, rng())});
  }
  f.components = cluster_contigs(f.contigs.size(), {});
  for (std::size_t c = 0; c < n_components; ++c) {
    for (std::size_t r = 0; r < reads_per_component; ++r) {
      const auto pos = rng.uniform_below(400 - 60);
      f.reads.push_back({"r_c" + std::to_string(c) + "_" + std::to_string(r),
                         f.contigs[c].bases.substr(pos, 60)});
      f.true_component.push_back(static_cast<std::int32_t>(c));
    }
  }
  // Unassignable reads.
  for (int i = 0; i < 3; ++i) {
    f.reads.push_back({"noise" + std::to_string(i), random_dna(60, 90000 + i)});
    f.true_component.push_back(-1);
  }
  return f;
}

ReadsToTranscriptsOptions test_options(std::size_t max_mem_reads = 7) {
  ReadsToTranscriptsOptions o;
  o.k = kTestK;
  o.max_mem_reads = max_mem_reads;
  o.model_threads_per_rank = 4;
  return o;
}

TEST(BundleKmerMap, MapsKmersToSmallestComponent) {
  Fixture f = build_fixture(3, 0, 5);
  const auto map = build_bundle_kmer_map(f.contigs, f.components, kTestK);
  const seq::KmerCodec codec(kTestK);
  // Every k-mer of contig 1 maps to component 1 (no sharing across random
  // contigs w.h.p.).
  for (const auto& occ : codec.extract_canonical(f.contigs[1].bases)) {
    const auto it = map.find(occ.code);
    ASSERT_NE(it, map.end());
    EXPECT_EQ(it->second, 1);
  }
}

TEST(AssignRead, PicksComponentWithMostSharedKmers) {
  Fixture f = build_fixture(2, 0, 7);
  const auto map = build_bundle_kmer_map(f.contigs, f.components, kTestK);
  // A chimeric read: 40 bases of contig 0 then 20 of contig 1 -> more
  // k-mers from contig 0.
  seq::Sequence read{"chimera", f.contigs[0].bases.substr(0, 40) + f.contigs[1].bases.substr(0, 20)};
  const auto a = detail::assign_read(read, 0, map, kTestK);
  EXPECT_EQ(a.component, 0);
  EXPECT_GT(a.shared_kmers, 0u);
}

TEST(AssignRead, RegionCoversContributingKmers) {
  Fixture f = build_fixture(1, 0, 9);
  const auto map = build_bundle_kmer_map(f.contigs, f.components, kTestK);
  const seq::Sequence read{"r", f.contigs[0].bases.substr(100, 60)};
  const auto a = detail::assign_read(read, 42, map, kTestK);
  EXPECT_EQ(a.read_index, 42);
  EXPECT_EQ(a.component, 0);
  EXPECT_EQ(a.region_begin, 0u);
  EXPECT_EQ(a.region_end, 60u);  // whole read contributes
  EXPECT_EQ(a.shared_kmers, 60u - kTestK + 1);
}

TEST(AssignRead, UnmatchedReadGetsMinusOne) {
  Fixture f = build_fixture(1, 0, 11);
  const auto map = build_bundle_kmer_map(f.contigs, f.components, kTestK);
  const auto a = detail::assign_read({"noise", random_dna(60, 4242)}, 0, map, kTestK);
  EXPECT_EQ(a.component, -1);
  EXPECT_EQ(a.shared_kmers, 0u);
}

TEST(R2TShared, AssignsReadsToTrueComponents) {
  const TempDir dir("r2t_shared");
  Fixture f = build_fixture(4, 10, 13);
  seq::write_fasta(dir.file("reads.fa"), f.reads);

  const auto result =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options(), dir.str());
  ASSERT_EQ(result.assignments.size(), f.reads.size());
  for (std::size_t i = 0; i < f.reads.size(); ++i) {
    EXPECT_EQ(result.assignments[i].read_index, static_cast<std::int64_t>(i));
    EXPECT_EQ(result.assignments[i].component, f.true_component[i]) << "read " << i;
  }
  EXPECT_FALSE(result.merged_output_path.empty());
  std::ifstream merged(result.merged_output_path);
  EXPECT_TRUE(merged.good());
}

TEST(R2TShared, ChunkSizeDoesNotChangeResult) {
  const TempDir dir("r2t_chunks");
  Fixture f = build_fixture(3, 9, 17);
  seq::write_fasta(dir.file("reads.fa"), f.reads);

  const auto a = run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options(1));
  const auto b = run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options(1000));
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].component, b.assignments[i].component);
    EXPECT_EQ(a.assignments[i].shared_kmers, b.assignments[i].shared_kmers);
  }
}

struct HybridCase {
  int nranks;
  R2TStrategy strategy;
};

class R2THybrid : public ::testing::TestWithParam<HybridCase> {};

TEST_P(R2THybrid, MatchesSharedMemoryRun) {
  const auto [nranks, strategy] = GetParam();
  const TempDir dir("r2t_hybrid");
  Fixture f = build_fixture(4, 12, 19);
  seq::write_fasta(dir.file("reads.fa"), f.reads);

  auto options = test_options();
  const auto expected =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  options.strategy = strategy;

  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result =
        run_hybrid(ctx, f.contigs, f.components, dir.file("reads.fa"), options, dir.str());
    ASSERT_EQ(result.assignments.size(), expected.assignments.size());
    for (std::size_t i = 0; i < expected.assignments.size(); ++i) {
      EXPECT_EQ(result.assignments[i].read_index, expected.assignments[i].read_index);
      EXPECT_EQ(result.assignments[i].component, expected.assignments[i].component);
      EXPECT_EQ(result.assignments[i].shared_kmers, expected.assignments[i].shared_kmers);
    }
    EXPECT_EQ(result.timing.main_loop.seconds.size(), static_cast<std::size_t>(nranks));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, R2THybrid,
    ::testing::Values(HybridCase{1, R2TStrategy::kRedundantStreaming},
                      HybridCase{2, R2TStrategy::kRedundantStreaming},
                      HybridCase{3, R2TStrategy::kRedundantStreaming},
                      HybridCase{5, R2TStrategy::kRedundantStreaming},
                      HybridCase{2, R2TStrategy::kMasterSlave},
                      HybridCase{4, R2TStrategy::kMasterSlave}));

TEST(R2THybrid2, ConcatenatedFileHoldsAllReads) {
  const TempDir dir("r2t_concat");
  Fixture f = build_fixture(3, 8, 23);
  seq::write_fasta(dir.file("reads.fa"), f.reads);

  simpi::run(3, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, f.contigs, f.components, dir.file("reads.fa"),
                                   test_options(), dir.str());
    if (ctx.rank() == 0) {
      std::ifstream in(result.merged_output_path);
      std::size_t lines = 0;
      std::string line;
      while (std::getline(in, line)) ++lines;
      EXPECT_EQ(lines, f.reads.size());
      EXPECT_GE(result.timing.concat_seconds, 0.0);
    }
  });
}

TEST(R2TEdge, EmptyReadsFile) {
  const TempDir dir("r2t_empty");
  Fixture f = build_fixture(2, 0, 29);
  std::ofstream(dir.file("reads.fa")).close();
  const auto result = run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options());
  EXPECT_TRUE(result.assignments.empty());
}

TEST(R2TEdge, MissingReadsFileThrows) {
  Fixture f = build_fixture(1, 0, 31);
  EXPECT_THROW(run_shared(f.contigs, f.components, "/no/such/file.fa", test_options()),
               std::runtime_error);
}

TEST(R2TEdge, MultiContigComponentAttractsReadsFromBothContigs) {
  const TempDir dir("r2t_multi");
  util::Rng rng(37);
  std::vector<seq::Sequence> contigs{{"a", random_dna(300, rng())},
                                     {"b", random_dna(300, rng())}};
  const auto components = cluster_contigs(2, {{0, 1}});  // one bundle
  std::vector<seq::Sequence> reads{{"ra", contigs[0].bases.substr(50, 60)},
                                   {"rb", contigs[1].bases.substr(100, 60)}};
  seq::write_fasta(dir.file("reads.fa"), reads);
  const auto result = run_shared(contigs, components, dir.file("reads.fa"), test_options());
  ASSERT_EQ(result.assignments.size(), 2u);
  EXPECT_EQ(result.assignments[0].component, 0);
  EXPECT_EQ(result.assignments[1].component, 0);
}

}  // namespace
}  // namespace trinity::chrysalis
