// Per-rank communication accounting: exact call/byte counts for every
// costed operation, the layered-collective bookkeeping (allgatherv on top
// of gatherv + bcast), blocked-wait measurement, and the skew ratio the
// run report derives from it. The expected numbers here restate the
// counting semantics documented in simpi/comm_stats.hpp and
// docs/OBSERVABILITY.md — if one of these tests breaks, the docs are
// stale too.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "simpi/context.hpp"

namespace trinity::simpi {
namespace {

const OpStats& op(const std::vector<RankResult>& results, int rank, CommOp which) {
  return results[static_cast<std::size_t>(rank)].comm.of(which);
}

TEST(CommStats, SendRecvCountsBothSides) {
  const auto results = run(2, [](Context& ctx) {
    const std::vector<std::int32_t> payload{1, 2, 3};  // 12 bytes
    if (ctx.rank() == 0) {
      ctx.send(1, 7, payload);
    } else {
      const auto got = ctx.recv<std::int32_t>(0, 7);
      EXPECT_EQ(got, payload);
    }
  });

  EXPECT_EQ(op(results, 0, CommOp::kSend).calls, 1u);
  EXPECT_EQ(op(results, 0, CommOp::kSend).bytes_sent, 12u);
  EXPECT_EQ(op(results, 0, CommOp::kSend).bytes_received, 0u);
  EXPECT_EQ(op(results, 0, CommOp::kRecv).calls, 0u);

  EXPECT_EQ(op(results, 1, CommOp::kRecv).calls, 1u);
  EXPECT_EQ(op(results, 1, CommOp::kRecv).bytes_received, 12u);
  EXPECT_EQ(op(results, 1, CommOp::kRecv).bytes_sent, 0u);
  EXPECT_EQ(op(results, 1, CommOp::kSend).calls, 0u);
}

TEST(CommStats, RecvWaitMeasuresBlockedTime) {
  const auto results = run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      ctx.send_value<std::int32_t>(1, 0, 42);
    } else {
      (void)ctx.recv_value<std::int32_t>(0, 0);
    }
  });
  // Rank 1 sat blocked for the sender's 50 ms nap; allow generous
  // scheduling slack but the wait must be clearly non-trivial.
  EXPECT_GE(op(results, 1, CommOp::kRecv).wait_seconds, 0.03);
  EXPECT_EQ(op(results, 0, CommOp::kRecv).wait_seconds, 0.0);
}

TEST(CommStats, BarrierCountsCallsAndLaggardWait) {
  const auto results = run(2, [](Context& ctx) {
    if (ctx.rank() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ctx.barrier();
    ctx.barrier();
  });
  EXPECT_EQ(op(results, 0, CommOp::kBarrier).calls, 2u);
  EXPECT_EQ(op(results, 1, CommOp::kBarrier).calls, 2u);
  // Rank 1 arrived first and waited out rank 0's nap.
  EXPECT_GE(op(results, 1, CommOp::kBarrier).wait_seconds, 0.03);
}

TEST(CommStats, BcastRootSendsToEveryPeer) {
  const auto results = run(3, [](Context& ctx) {
    std::vector<std::int32_t> data;
    if (ctx.rank() == 1) data = {10, 20, 30, 40, 50};  // 20 bytes
    ctx.bcast(data, 1);
    EXPECT_EQ(data.size(), 5u);
  });
  for (int r = 0; r < 3; ++r) EXPECT_EQ(op(results, r, CommOp::kBcast).calls, 1u) << r;
  EXPECT_EQ(op(results, 1, CommOp::kBcast).bytes_sent, 40u);  // 20 B x 2 peers
  EXPECT_EQ(op(results, 1, CommOp::kBcast).bytes_received, 0u);
  EXPECT_EQ(op(results, 0, CommOp::kBcast).bytes_received, 20u);
  EXPECT_EQ(op(results, 2, CommOp::kBcast).bytes_received, 20u);
}

TEST(CommStats, GathervCountsContributionsAndRootReceipts) {
  const auto results = run(3, [](Context& ctx) {
    // Rank r contributes r+1 int32 elements: 4, 8, 12 bytes.
    std::vector<std::int32_t> local(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    const auto parts = ctx.gatherv(local, 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(parts.size(), 3u);
      EXPECT_EQ(parts[2].size(), 3u);
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
  for (int r = 0; r < 3; ++r) EXPECT_EQ(op(results, r, CommOp::kGatherv).calls, 1u) << r;
  // The root's own contribution moves no bytes; it receives the other two.
  EXPECT_EQ(op(results, 0, CommOp::kGatherv).bytes_sent, 0u);
  EXPECT_EQ(op(results, 0, CommOp::kGatherv).bytes_received, 20u);  // 8 + 12
  EXPECT_EQ(op(results, 1, CommOp::kGatherv).bytes_sent, 8u);
  EXPECT_EQ(op(results, 2, CommOp::kGatherv).bytes_sent, 12u);
}

TEST(CommStats, AllgathervLogicalAndTransportRows) {
  // 2 ranks; rank 0 contributes {1} (4 B), rank 1 contributes {2, 3} (8 B).
  // Pooled result: 3 int32 = 12 B on every rank.
  const auto results = run(2, [](Context& ctx) {
    std::vector<std::int32_t> local;
    if (ctx.rank() == 0) {
      local = {1};
    } else {
      local = {2, 3};
    }
    const auto flat = ctx.allgatherv(local);
    EXPECT_EQ(flat, (std::vector<std::int32_t>{1, 2, 3}));
  });

  // Logical row: contribution sent, pooled concatenation received.
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(op(results, r, CommOp::kAllgatherv).calls, 1u) << r;
    EXPECT_EQ(op(results, r, CommOp::kAllgatherv).bytes_received, 12u) << r;
  }
  EXPECT_EQ(op(results, 0, CommOp::kAllgatherv).bytes_sent, 4u);
  EXPECT_EQ(op(results, 1, CommOp::kAllgatherv).bytes_sent, 8u);

  // Transport rows: the inner gatherv at rank 0 moves rank 1's 8 B...
  EXPECT_EQ(op(results, 0, CommOp::kGatherv).calls, 1u);
  EXPECT_EQ(op(results, 1, CommOp::kGatherv).calls, 1u);
  EXPECT_EQ(op(results, 1, CommOp::kGatherv).bytes_sent, 8u);
  EXPECT_EQ(op(results, 0, CommOp::kGatherv).bytes_received, 8u);
  // ...and the two bcasts (flat 12 B, then the 2 x uint64 counts = 16 B)
  // fan out from rank 0 to the single peer.
  EXPECT_EQ(op(results, 0, CommOp::kBcast).calls, 2u);
  EXPECT_EQ(op(results, 1, CommOp::kBcast).calls, 2u);
  EXPECT_EQ(op(results, 0, CommOp::kBcast).bytes_sent, 28u);  // 12 + 16
  EXPECT_EQ(op(results, 1, CommOp::kBcast).bytes_received, 28u);
}

TEST(CommStats, AllreduceCountsLogicalElements) {
  const auto results = run(3, [](Context& ctx) {
    const auto sum = ctx.allreduce_sum<std::int64_t>(ctx.rank() + 1);
    EXPECT_EQ(sum, 6);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(op(results, r, CommOp::kReduce).calls, 1u) << r;
    EXPECT_EQ(op(results, r, CommOp::kReduce).bytes_sent, sizeof(std::int64_t)) << r;
    EXPECT_EQ(op(results, r, CommOp::kReduce).bytes_received, 3 * sizeof(std::int64_t)) << r;
    // Transport for the inner allgather shows up in its own rows.
    EXPECT_EQ(op(results, r, CommOp::kAllgatherv).calls, 1u) << r;
  }
}

TEST(CommStats, ExtensionTransfersCounted) {
  const auto results = run(2, [](Context& ctx) {
    const std::vector<std::byte> payload(10);
    if (ctx.rank() == 0) {
      ctx.internal_send(1, 3, payload);
    } else {
      const auto msg = ctx.internal_recv(0, 3);
      EXPECT_EQ(msg.payload.size(), 10u);
    }
  });
  EXPECT_EQ(op(results, 0, CommOp::kExtension).calls, 1u);
  EXPECT_EQ(op(results, 0, CommOp::kExtension).bytes_sent, 10u);
  EXPECT_EQ(op(results, 1, CommOp::kExtension).calls, 1u);
  EXPECT_EQ(op(results, 1, CommOp::kExtension).bytes_received, 10u);
}

TEST(CommStats, TotalsSumOverOps) {
  CommStats stats;
  stats.of(CommOp::kSend) = {2, 100, 0, 0.0};
  stats.of(CommOp::kRecv) = {3, 0, 100, 0.5};
  stats.of(CommOp::kBarrier) = {1, 0, 0, 0.25};
  EXPECT_EQ(stats.total_calls(), 6u);
  EXPECT_EQ(stats.total_bytes_sent(), 100u);
  EXPECT_EQ(stats.total_bytes_received(), 100u);
  EXPECT_DOUBLE_EQ(stats.total_wait_seconds(), 0.75);

  CommStats other;
  other.of(CommOp::kSend) = {1, 50, 0, 0.0};
  stats += other;
  EXPECT_EQ(stats.of(CommOp::kSend).calls, 3u);
  EXPECT_EQ(stats.total_bytes_sent(), 150u);
}

TEST(CommStats, ContextExposesLiveCounters) {
  run(2, [](Context& ctx) {
    EXPECT_EQ(ctx.comm_stats().total_calls(), 0u);
    ctx.barrier();
    EXPECT_EQ(ctx.comm_stats().of(CommOp::kBarrier).calls, 1u);
  });
}

TEST(SkewRatio, EdgeCasesAndImbalance) {
  EXPECT_DOUBLE_EQ(skew_ratio({}), 1.0);

  std::vector<RankResult> zero(2);
  EXPECT_DOUBLE_EQ(skew_ratio(zero), 1.0);  // zero mean: defined as balanced

  std::vector<RankResult> uneven(2);
  uneven[0].cpu_seconds = 1.0;
  uneven[1].cpu_seconds = 3.0;
  EXPECT_DOUBLE_EQ(skew_ratio(uneven), 1.5);  // max 3 / mean 2

  std::vector<RankResult> balanced(3);
  for (auto& r : balanced) r.comm_seconds = 2.0;
  EXPECT_DOUBLE_EQ(skew_ratio(balanced), 1.0);
}

}  // namespace
}  // namespace trinity::simpi
