// Unit tests for the fault-injecting I/O layer: the typed error taxonomy,
// glob/plan matching and parsing, the IoFile fault semantics (ENOSPC, EIO,
// short write, torn rename), atomic-commit behavior under injected
// failures, manifest truncation tolerance, DiskCounter spill retries, and
// rank attribution in the collective file writer.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/manifest.hpp"
#include "io/error.hpp"
#include "io/fault_plan.hpp"
#include "io/io_file.hpp"
#include "kmer/disk_counter.hpp"
#include "simpi/context.hpp"
#include "simpi/file_io.hpp"
#include "test_helpers.hpp"

namespace trinity::io {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- taxonomy ---------------------------------------------------------------------

TEST(IoErrorTaxonomy, ClassifiesErrnos) {
  EXPECT_EQ(classify_errno(EIO), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(EINTR), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(EAGAIN), IoErrorKind::kTransient);
  EXPECT_EQ(classify_errno(ENOSPC), IoErrorKind::kPermanent);
  EXPECT_EQ(classify_errno(ENOENT), IoErrorKind::kPermanent);
  EXPECT_EQ(classify_errno(EACCES), IoErrorKind::kPermanent);
  // Unknown codes fail fast rather than retry blindly.
  EXPECT_EQ(classify_errno(0), IoErrorKind::kPermanent);
}

TEST(IoErrorTaxonomy, MessageCarriesOpPathAndKind) {
  const IoError e(IoErrorKind::kTransient, "write", "/tmp/x.bin", EIO, "boom");
  EXPECT_TRUE(e.transient());
  EXPECT_EQ(e.op(), "write");
  EXPECT_EQ(e.path(), "/tmp/x.bin");
  EXPECT_EQ(e.error_code(), EIO);
  const std::string what = e.what();
  EXPECT_NE(what.find("write"), std::string::npos);
  EXPECT_NE(what.find("/tmp/x.bin"), std::string::npos);
  EXPECT_NE(what.find("transient"), std::string::npos);
}

TEST(IoErrorTaxonomy, ParseErrorCarriesLocation) {
  const ParseError e(ParseCategory::kBadSeparator, "reads.fq", 7, 123, "bad '+'");
  EXPECT_EQ(e.category(), ParseCategory::kBadSeparator);
  EXPECT_EQ(e.path(), "reads.fq");
  EXPECT_EQ(e.line(), 7u);
  EXPECT_EQ(e.byte_offset(), 123u);
  const std::string what = e.what();
  EXPECT_NE(what.find("reads.fq:7:"), std::string::npos);
  EXPECT_NE(what.find("byte offset 123"), std::string::npos);
  EXPECT_NE(what.find("bad_separator"), std::string::npos);
}

// --- plan matching ----------------------------------------------------------------

TEST(IoFaultPlan, GlobMatching) {
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_TRUE(glob_match("*.tmp", "/work/run_manifest.jsonl.tmp"));
  EXPECT_FALSE(glob_match("*.tmp", "/work/run_manifest.jsonl"));
  EXPECT_TRUE(glob_match("*kmer_part_*.bin", "/t/kmer_part_3.bin"));
  EXPECT_TRUE(glob_match("ab?", "abc"));
  EXPECT_FALSE(glob_match("ab?", "ab"));
  EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(glob_match("a*b*c", "a-x-c"));
}

TEST(IoFaultPlan, ParsesSpecStrings) {
  const auto plan = IoFaultPlan::parse("write:*run_manifest.jsonl.tmp:1:enospc");
  EXPECT_EQ(plan.op, IoOp::kWrite);
  EXPECT_EQ(plan.path_glob, "*run_manifest.jsonl.tmp");
  EXPECT_EQ(plan.at_op, 1);
  EXPECT_EQ(plan.kind, IoFaultKind::kEnospc);
  EXPECT_EQ(plan.max_fires, 1);

  const auto multi = IoFaultPlan::parse("rename:*.jsonl:3:torn_rename:2");
  EXPECT_EQ(multi.op, IoOp::kRename);
  EXPECT_EQ(multi.at_op, 3);
  EXPECT_EQ(multi.kind, IoFaultKind::kTornRename);
  EXPECT_EQ(multi.max_fires, 2);

  EXPECT_THROW(IoFaultPlan::parse("write:*"), std::invalid_argument);
  EXPECT_THROW(IoFaultPlan::parse("frobnicate:*:1:eio"), std::invalid_argument);
  EXPECT_THROW(IoFaultPlan::parse("write:*:0:eio"), std::invalid_argument);
  EXPECT_THROW(IoFaultPlan::parse("write:*:1:nope"), std::invalid_argument);
}

TEST(IoFaultPlan, FireBudgetIsSharedAcrossCopies) {
  IoFaultPlan plan;
  plan.op = IoOp::kWrite;
  plan.path_glob = "*";
  plan.kind = IoFaultKind::kEio;
  plan.arm();
  IoFaultPlan copy = plan;  // shares the budget atomics
  EXPECT_TRUE(copy.should_fire(IoOp::kWrite, "a"));
  EXPECT_FALSE(plan.should_fire(IoOp::kWrite, "b"));  // budget consumed via the copy
}

TEST(IoFaultPlan, FiresOnTheNthMatchingOpOnly) {
  IoFaultPlan plan;
  plan.op = IoOp::kWrite;
  plan.path_glob = "*target*";
  plan.at_op = 3;
  plan.kind = IoFaultKind::kEio;
  plan.arm();
  EXPECT_FALSE(plan.should_fire(IoOp::kOpen, "target"));     // wrong op
  EXPECT_FALSE(plan.should_fire(IoOp::kWrite, "other"));     // wrong path
  EXPECT_FALSE(plan.should_fire(IoOp::kWrite, "target"));    // match #1
  EXPECT_FALSE(plan.should_fire(IoOp::kWrite, "target"));    // match #2
  EXPECT_TRUE(plan.should_fire(IoOp::kWrite, "target"));     // match #3 fires
  EXPECT_FALSE(plan.should_fire(IoOp::kWrite, "target"));    // budget gone
}

// --- IoFile fault semantics -------------------------------------------------------

TEST(IoFileFaults, NoPlanWritesNormally) {
  const TempDir dir("io_plain");
  const std::string path = dir.file("out.txt");
  write_file(path, "hello");
  EXPECT_EQ(slurp(path), "hello");
  EXPECT_EQ(file_size(path), 5u);
}

TEST(IoFileFaults, EnospcThrowsPermanent) {
  const TempDir dir("io_enospc");
  const std::string path = dir.file("out.txt");
  ScopedFaultInjection fault(IoFaultPlan::parse("write:*out.txt:1:enospc"));
  try {
    write_file(path, "payload");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.error_code(), ENOSPC);
    EXPECT_EQ(e.path(), path);
  }
  // Budget consumed: the retry succeeds.
  write_file(path, "payload");
  EXPECT_EQ(slurp(path), "payload");
}

TEST(IoFileFaults, ShortWriteLandsHalfThenThrowsTransient) {
  const TempDir dir("io_short");
  const std::string path = dir.file("out.bin");
  ScopedFaultInjection fault(IoFaultPlan::parse("write:*out.bin:1:short_write"));
  try {
    write_file(path, "0123456789");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_TRUE(e.transient());
  }
  // The partial prefix is on disk — exactly the hazard a consumer must
  // never read as complete.
  EXPECT_EQ(slurp(path), "01234");
  // A retry rewrites the file whole.
  write_file(path, "0123456789");
  EXPECT_EQ(slurp(path), "0123456789");
}

TEST(IoFileFaults, TornRenameLeavesTruncatedDestination) {
  const TempDir dir("io_torn");
  const std::string path = dir.file("data.txt");
  ScopedFaultInjection fault(IoFaultPlan::parse("rename:*data.txt:1:torn_rename"));
  try {
    write_file_atomic(path, "ABCDEFGHIJ");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.op(), "rename");
  }
  // The crash model: the destination holds only a prefix of the commit.
  EXPECT_EQ(slurp(path), "ABCDE");
}

TEST(IoFileFaults, AtomicWritePreservesOldContentWhenTmpWriteFails) {
  const TempDir dir("io_atomic");
  const std::string path = dir.file("state.txt");
  write_file(path, "old-state");
  ScopedFaultInjection fault(IoFaultPlan::parse("write:*state.txt.tmp:1:enospc"));
  EXPECT_THROW(write_file_atomic(path, "new-state"), IoError);
  EXPECT_EQ(slurp(path), "old-state");  // the commit primitive's guarantee
}

TEST(IoFileFaults, ScopedInjectionRestoresThePreviousPlan) {
  IoFaultPlan outer;
  outer.op = IoOp::kFsync;
  outer.path_glob = "*outer*";
  outer.kind = IoFaultKind::kEio;
  set_fault_plan(outer);
  {
    ScopedFaultInjection inner(IoFaultPlan::parse("write:*inner*:1:enospc"));
    EXPECT_EQ(current_fault_plan().path_glob, "*inner*");
  }
  EXPECT_EQ(current_fault_plan().path_glob, "*outer*");
  clear_fault_plan();
  EXPECT_FALSE(current_fault_plan().enabled());
}

// --- production writers under faults ----------------------------------------------

TEST(ManifestFaults, EnospcOnCommitKeepsThePreviousManifest) {
  const TempDir dir("manifest_enospc");
  const std::string path = dir.file("run_manifest.jsonl");
  checkpoint::RunManifest manifest(path);
  checkpoint::StageRecord rec;
  rec.stage = "alpha";
  rec.fingerprint = 1;
  rec.complete = true;
  manifest.upsert(rec);
  manifest.commit();

  rec.stage = "beta";
  manifest.upsert(rec);
  ScopedFaultInjection fault(IoFaultPlan::parse("write:*run_manifest.jsonl.tmp:1:enospc"));
  EXPECT_THROW(manifest.commit(), IoError);
  const auto reloaded = checkpoint::RunManifest::load(path);
  ASSERT_EQ(reloaded.records().size(), 1u);  // old content intact
  EXPECT_EQ(reloaded.records()[0].stage, "alpha");
}

TEST(ManifestFaults, TornRenameTailIsDroppedByTheLoader) {
  const TempDir dir("manifest_torn");
  const std::string path = dir.file("run_manifest.jsonl");
  checkpoint::RunManifest manifest(path);
  checkpoint::StageRecord rec;
  rec.complete = true;
  rec.fingerprint = 42;
  for (const char* stage : {"alpha", "beta", "gamma"}) {
    rec.stage = stage;
    manifest.upsert(rec);
  }
  ScopedFaultInjection fault(IoFaultPlan::parse("rename:*run_manifest.jsonl:1:torn_rename"));
  EXPECT_THROW(manifest.commit(), IoError);

  // The torn commit left a half-written manifest; the tolerant loader keeps
  // the complete prefix lines and drops the torn tail instead of crashing.
  const auto reloaded = checkpoint::RunManifest::load(path);
  EXPECT_LT(reloaded.records().size(), 3u);
  for (const auto& r : reloaded.records()) EXPECT_EQ(r.fingerprint, 42u);
}

TEST(ManifestFaults, TruncationCorpusNeverCrashesTheLoader) {
  const TempDir dir("manifest_corpus");
  const std::string path = dir.file("run_manifest.jsonl");
  checkpoint::RunManifest manifest(path);
  checkpoint::StageRecord rec;
  rec.complete = true;
  for (const char* stage : {"alpha", "beta", "gamma"}) {
    rec.stage = stage;
    manifest.upsert(rec);
  }
  manifest.commit();
  const std::string full = slurp(path);

  // Truncate at every byte offset: the loader must never throw, and every
  // record it does return must be one of the committed ones.
  std::size_t line_boundaries = 0;
  for (std::size_t len = 0; len <= full.size(); ++len) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << full.substr(0, len);
    const auto loaded = checkpoint::RunManifest::load(path);
    for (const auto& r : loaded.records()) {
      EXPECT_TRUE(r.stage == "alpha" || r.stage == "beta" || r.stage == "gamma") << r.stage;
    }
    if (len > 0 && full[len - 1] == '\n') {
      ++line_boundaries;
      EXPECT_EQ(loaded.dropped_lines(), 0u) << "clean cut at " << len;
    }
  }
  EXPECT_EQ(line_boundaries, 3u);
}

TEST(DiskCounterFaults, EioMidSpillIsTransientAndARetrySucceeds) {
  const TempDir dir("spill_eio");
  std::vector<seq::Sequence> reads;
  for (int i = 0; i < 50; ++i) {
    seq::Sequence r;
    r.name = "r" + std::to_string(i);
    r.bases = trinity::testing::random_dna(60, static_cast<std::uint64_t>(i) + 1);
    reads.push_back(std::move(r));
  }
  kmer::DiskCounterOptions options;
  options.k = 15;
  options.tmp_dir = dir.file("spill");
  options.num_partitions = 4;

  const auto expected = kmer::disk_count_reads(reads, options);

  ScopedFaultInjection fault(IoFaultPlan::parse("write:*kmer_part_*.bin:1:eio"));
  std::vector<kmer::KmerCount> counts;
  int attempts = 0;
  for (;;) {
    ++attempts;
    try {
      counts = kmer::disk_count_reads(reads, options);
      break;
    } catch (const IoError& e) {
      ASSERT_TRUE(e.transient()) << e.what();
      ASSERT_LT(attempts, 3);
    }
  }
  EXPECT_EQ(attempts, 2);  // one injected failure, one clean retry
  ASSERT_EQ(counts.size(), expected.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].code, expected[i].code);
    EXPECT_EQ(counts[i].count, expected[i].count);
  }
}

TEST(CollectiveWriteFaults, FailureNamesTheRankAndSlice) {
  const TempDir dir("ordered_attr");
  const std::string path = dir.file("shared.out");
  ScopedFaultInjection fault(IoFaultPlan::parse("write:*shared.out:1:eio"));
  try {
    simpi::run(3, [&](simpi::Context& ctx) {
      const std::string data(64, static_cast<char>('a' + ctx.rank()));
      simpi::write_file_ordered(ctx, path, data);
    });
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank "), std::string::npos) << what;
    EXPECT_NE(what.find("slice ["), std::string::npos) << what;
    EXPECT_TRUE(e.transient());
  }
}

TEST(CollectiveWriteFaults, CleanCollectiveVerifiesLengthAndOrder) {
  const TempDir dir("ordered_clean");
  const std::string path = dir.file("shared.out");
  simpi::run(4, [&](simpi::Context& ctx) {
    const std::string data(static_cast<std::size_t>(ctx.rank()) + 1,
                           static_cast<char>('a' + ctx.rank()));
    simpi::write_file_ordered(ctx, path, data);
  });
  EXPECT_EQ(slurp(path), "abbcccdddd");
}

}  // namespace
}  // namespace trinity::io
