// Tests for the Chrysalis file-interchange formats (components and read
// assignments), the glue that lets the stages run as separate processes.

#include <gtest/gtest.h>

#include <fstream>

#include "chrysalis/components_io.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::TempDir;

TEST(ComponentsIoTest, RoundTripsClusters) {
  const TempDir dir("cio1");
  const auto original = cluster_contigs(9, {{0, 3}, {3, 7}, {1, 2}, {5, 8}});
  write_components(dir.file("c.txt"), original);
  const auto loaded = read_components(dir.file("c.txt"));

  EXPECT_EQ(loaded.component_of, original.component_of);
  ASSERT_EQ(loaded.num_components(), original.num_components());
  for (std::size_t i = 0; i < original.num_components(); ++i) {
    EXPECT_EQ(loaded.components[i].id, original.components[i].id);
    EXPECT_EQ(loaded.components[i].contig_ids, original.components[i].contig_ids);
  }
}

TEST(ComponentsIoTest, RoundTripsSingletonsOnly) {
  const TempDir dir("cio2");
  const auto original = cluster_contigs(5, {});
  write_components(dir.file("c.txt"), original);
  const auto loaded = read_components(dir.file("c.txt"));
  EXPECT_EQ(loaded.component_of, original.component_of);
}

TEST(ComponentsIoTest, RoundTripsEmptySet) {
  const TempDir dir("cio3");
  write_components(dir.file("c.txt"), cluster_contigs(0, {}));
  const auto loaded = read_components(dir.file("c.txt"));
  EXPECT_EQ(loaded.num_components(), 0u);
  EXPECT_TRUE(loaded.component_of.empty());
}

TEST(ComponentsIoTest, MissingFileThrows) {
  EXPECT_THROW(read_components("/no/such/components.txt"), std::runtime_error);
}

TEST(ComponentsIoTest, BadHeaderThrows) {
  const TempDir dir("cio4");
  std::ofstream(dir.file("c.txt")) << "#something-else 1 1\n0: 0\n";
  EXPECT_THROW(read_components(dir.file("c.txt")), std::runtime_error);
}

TEST(ComponentsIoTest, OutOfRangeContigThrows) {
  const TempDir dir("cio5");
  std::ofstream(dir.file("c.txt")) << "#trinity-components 1 2\n0: 0 5\n";
  EXPECT_THROW(read_components(dir.file("c.txt")), std::runtime_error);
}

TEST(ComponentsIoTest, DuplicateMembershipThrows) {
  const TempDir dir("cio6");
  std::ofstream(dir.file("c.txt")) << "#trinity-components 2 2\n0: 0 1\n1: 1\n";
  EXPECT_THROW(read_components(dir.file("c.txt")), std::runtime_error);
}

TEST(ComponentsIoTest, UnassignedContigThrows) {
  const TempDir dir("cio7");
  std::ofstream(dir.file("c.txt")) << "#trinity-components 1 3\n0: 0 1\n";
  EXPECT_THROW(read_components(dir.file("c.txt")), std::runtime_error);
}

TEST(ComponentsIoTest, CountMismatchThrows) {
  const TempDir dir("cio8");
  std::ofstream(dir.file("c.txt")) << "#trinity-components 2 1\n0: 0\n";
  EXPECT_THROW(read_components(dir.file("c.txt")), std::runtime_error);
}

TEST(AssignmentsIoTest, RoundTripsThroughTsv) {
  const TempDir dir("aio1");
  std::vector<ReadAssignment> original(4);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i].read_index = static_cast<std::int64_t>(i);
    original[i].component = static_cast<std::int32_t>(i % 2 == 0 ? i : -1);
    original[i].shared_kmers = static_cast<std::uint32_t>(10 * i);
    original[i].region_begin = static_cast<std::uint32_t>(i);
    original[i].region_end = static_cast<std::uint32_t>(i + 60);
  }
  detail::write_assignments(dir.file("a.tsv"), original);
  const auto loaded = read_assignments(dir.file("a.tsv"));
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].read_index, original[i].read_index);
    EXPECT_EQ(loaded[i].component, original[i].component);
    EXPECT_EQ(loaded[i].shared_kmers, original[i].shared_kmers);
    EXPECT_EQ(loaded[i].region_begin, original[i].region_begin);
    EXPECT_EQ(loaded[i].region_end, original[i].region_end);
  }
}

TEST(AssignmentsIoTest, MalformedRowThrows) {
  const TempDir dir("aio2");
  std::ofstream(dir.file("a.tsv")) << "0\t1\tnot_a_number\t0\t60\n";
  EXPECT_THROW(read_assignments(dir.file("a.tsv")), std::runtime_error);
}

TEST(AssignmentsIoTest, EmptyFileYieldsEmptyVector) {
  const TempDir dir("aio3");
  std::ofstream(dir.file("a.tsv")).close();
  EXPECT_TRUE(read_assignments(dir.file("a.tsv")).empty());
}

}  // namespace
}  // namespace trinity::chrysalis
