// Tests for Butterfly path reconstruction: linear recovery, isoform
// branching, support-ranked ordering, containment filtering, and cycle
// termination.

#include <gtest/gtest.h>

#include <algorithm>

#include "butterfly/butterfly.hpp"
#include "chrysalis/components.hpp"
#include "test_helpers.hpp"

namespace trinity::butterfly {
namespace {

using trinity::testing::random_dna;
using trinity::testing::tile_reads;

constexpr int kTestK = 8;

ButterflyOptions test_options() {
  ButterflyOptions o;
  o.k = kTestK;
  o.min_transcript_length = 20;
  return o;
}

TEST(ButterflyTest, LinearGraphYieldsOriginalSequence) {
  const std::string transcript = random_dna(150, 1);
  const chrysalis::DeBruijnGraph g({{"c", transcript}}, kTestK);
  const auto out = reconstruct_component(g, 0, test_options());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bases, transcript);
  EXPECT_EQ(out[0].name, "comp0_seq0");
}

TEST(ButterflyTest, ForkYieldsBothIsoforms) {
  const std::string common = random_dna(40, 2);
  const std::string iso_a = common + random_dna(30, 3);
  const std::string iso_b = common + random_dna(30, 4);
  const chrysalis::DeBruijnGraph g({{"a", iso_a}, {"b", iso_b}}, kTestK);
  const auto out = reconstruct_component(g, 3, test_options());
  ASSERT_EQ(out.size(), 2u);
  std::vector<std::string> seqs{out[0].bases, out[1].bases};
  EXPECT_NE(std::find(seqs.begin(), seqs.end(), iso_a), seqs.end());
  EXPECT_NE(std::find(seqs.begin(), seqs.end(), iso_b), seqs.end());
}

TEST(ButterflyTest, PathCapLimitsIsoformExplosion) {
  // Several chained forks: path count grows multiplicatively; the cap must
  // bound the output.
  std::vector<seq::Sequence> contigs;
  std::string base = random_dna(30, 5);
  for (int f = 0; f < 6; ++f) {
    contigs.push_back({"x" + std::to_string(f), base + random_dna(20, 10 + f)});
    contigs.push_back({"y" + std::to_string(f), base + random_dna(20, 20 + f)});
    base = random_dna(30, 30 + f);
  }
  const chrysalis::DeBruijnGraph g(contigs, kTestK);
  auto options = test_options();
  options.max_paths_per_component = 5;
  const auto out = reconstruct_component(g, 0, options);
  EXPECT_LE(out.size(), 5u);
}

TEST(ButterflyTest, ContainedTranscriptDropped) {
  // A short contig fully contained in a longer one adds no second output.
  const std::string transcript = random_dna(120, 6);
  const std::string fragment = transcript.substr(30, 50);
  const chrysalis::DeBruijnGraph g({{"full", transcript}, {"frag", fragment}}, kTestK);
  const auto out = reconstruct_component(g, 0, test_options());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bases, transcript);
}

TEST(ButterflyTest, CyclicComponentTerminates) {
  const std::string unit = "ACGTGTCAAC";
  std::string repeat;
  for (int i = 0; i < 8; ++i) repeat += unit;
  const chrysalis::DeBruijnGraph g({{"r", repeat}}, kTestK);
  auto options = test_options();
  options.min_transcript_length = 5;
  const auto out = reconstruct_component(g, 0, options);
  // Cycle is traversed once (each node at most once per path).
  ASSERT_GE(out.size(), 1u);
  EXPECT_LE(out[0].bases.size(), repeat.size());
}

TEST(ButterflyTest, MinLengthFilters) {
  const chrysalis::DeBruijnGraph g({{"c", random_dna(30, 7)}}, kTestK);
  auto options = test_options();
  options.min_transcript_length = 1000;
  EXPECT_TRUE(reconstruct_component(g, 0, options).empty());
}

TEST(ButterflyTest, EmptyGraphYieldsNothing) {
  const chrysalis::DeBruijnGraph g({}, kTestK);
  EXPECT_TRUE(reconstruct_component(g, 0, test_options()).empty());
}

TEST(ButterflyTest, SupportRanksBranchOrder) {
  // At a fork, the better-supported branch must be explored (and thus
  // reported) first.
  const std::string common = random_dna(40, 8);
  const std::string strong = common + random_dna(30, 9);
  const std::string weak = common + random_dna(30, 10);
  chrysalis::DeBruijnGraph g({{"s", strong}, {"w", weak}}, kTestK);
  for (int i = 0; i < 5; ++i) g.quantify({"r", strong});
  g.quantify({"r", weak});

  auto options = test_options();
  options.max_paths_per_component = 1;  // only the first path survives
  const auto out = reconstruct_component(g, 0, options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bases, strong);
}

TEST(ButterflyTest, RunButterflyEndToEnd) {
  // Two components, reads assigned to each; run_butterfly should emit the
  // originals with component-tagged names.
  const std::string t0 = random_dna(200, 11);
  const std::string t1 = random_dna(200, 12);
  std::vector<seq::Sequence> contigs{{"c0", t0}, {"c1", t1}};
  const auto components = chrysalis::cluster_contigs(2, {});

  std::vector<seq::Sequence> reads = tile_reads(t0, 50, 10, "a");
  const auto more = tile_reads(t1, 50, 10, "b");
  reads.insert(reads.end(), more.begin(), more.end());
  std::vector<chrysalis::ReadAssignment> assignments(reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    assignments[i].read_index = static_cast<std::int64_t>(i);
    assignments[i].component = reads[i].name[0] == 'a' ? 0 : 1;
  }

  const auto transcripts =
      run_butterfly(contigs, components, assignments, reads, test_options());
  ASSERT_EQ(transcripts.size(), 2u);
  EXPECT_EQ(transcripts[0].bases, t0);
  EXPECT_EQ(transcripts[1].bases, t1);
  EXPECT_EQ(transcripts[0].name.rfind("comp0_", 0), 0u);
  EXPECT_EQ(transcripts[1].name.rfind("comp1_", 0), 0u);
}

TEST(ButterflyTest, UnassignedReadsAreIgnored) {
  const std::string t0 = random_dna(150, 13);
  std::vector<seq::Sequence> contigs{{"c0", t0}};
  const auto components = chrysalis::cluster_contigs(1, {});
  std::vector<seq::Sequence> reads{{"r0", t0.substr(0, 50)}};
  std::vector<chrysalis::ReadAssignment> assignments(1);
  assignments[0].read_index = 0;
  assignments[0].component = -1;  // unassigned
  const auto transcripts =
      run_butterfly(contigs, components, assignments, reads, test_options());
  ASSERT_EQ(transcripts.size(), 1u);  // structure still reconstructed
}

TEST(ButterflyReconcile, MinNodeSupportBlocksUnsupportedBranch) {
  // Two isoforms share a prefix; only one branch is covered by reads.
  const std::string common = random_dna(40, 21);
  const std::string covered = common + random_dna(30, 22);
  const std::string uncovered = common + random_dna(30, 23);
  chrysalis::DeBruijnGraph g({{"a", covered}, {"b", uncovered}}, kTestK);
  for (int i = 0; i < 3; ++i) g.quantify({"r", covered});

  auto options = test_options();
  options.min_node_support = 1;
  const auto out = reconstruct_component(g, 0, options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].bases, covered)
      << "paths must not cross edges no read supports";
}

TEST(ButterflyReconcile, MinNodeSupportZeroKeepsAllPaths) {
  const std::string common = random_dna(40, 24);
  const std::string a = common + random_dna(30, 25);
  const std::string b = common + random_dna(30, 26);
  chrysalis::DeBruijnGraph g({{"a", a}, {"b", b}}, kTestK);
  const auto out = reconstruct_component(g, 0, test_options());
  EXPECT_EQ(out.size(), 2u);
}

TEST(ButterflyReconcile, PairedSupportCountsProperPairs) {
  const std::string transcript_bases = random_dna(500, 27);
  const seq::Sequence transcript{"t", transcript_bases};

  const seq::Sequence mate1{"frag0/1", transcript_bases.substr(50, 60)};
  const seq::Sequence mate2{"frag0/2",
                            seq::reverse_complement(transcript_bases.substr(300, 60))};
  const seq::Sequence lonely{"frag1/1", transcript_bases.substr(10, 60)};
  const seq::Sequence foreign1{"frag2/1", random_dna(60, 28)};
  const seq::Sequence foreign2{"frag2/2", random_dna(60, 29)};

  const std::vector<const seq::Sequence*> reads{&mate1, &mate2, &lonely, &foreign1,
                                                &foreign2};
  EXPECT_EQ(paired_support(transcript, reads), 1u);
}

TEST(ButterflyReconcile, PairedSupportSeesOppositeMateAssignment) {
  // Mate 1 reverse, mate 2 forward is also a proper pair.
  const std::string t = random_dna(500, 30);
  const seq::Sequence transcript{"t", t};
  const seq::Sequence mate1{"f/1", seq::reverse_complement(t.substr(250, 60))};
  const seq::Sequence mate2{"f/2", t.substr(40, 60)};
  EXPECT_EQ(paired_support(transcript, {&mate1, &mate2}), 1u);
}

TEST(ButterflyReconcile, SameStrandMatesAreNotProper) {
  const std::string t = random_dna(500, 31);
  const seq::Sequence transcript{"t", t};
  const seq::Sequence mate1{"f/1", t.substr(50, 60)};
  const seq::Sequence mate2{"f/2", t.substr(300, 60)};  // forward too
  EXPECT_EQ(paired_support(transcript, {&mate1, &mate2}), 0u);
}

TEST(ButterflyReconcile, RequirePairedSupportDropsUnspannedLongTranscript) {
  // One genuine transcript with a proper pair; reconstruct_component will
  // emit it, and the paired filter must keep it. Then rerun with reads
  // lacking pairs: the long transcript is dropped.
  // k = 15: a 600-base random sequence would repeat 8-mers by birthday
  // collision and fork the graph, which is not what this test measures.
  const int k = 15;
  const std::string t = random_dna(600, 32);
  std::vector<seq::Sequence> contigs{{"c0", t}};
  const auto components = chrysalis::cluster_contigs(1, {});

  std::vector<seq::Sequence> paired_reads{
      {"f0/1", t.substr(20, 60)},
      {"f0/2", seq::reverse_complement(t.substr(400, 60))}};
  std::vector<chrysalis::ReadAssignment> assignments(paired_reads.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    assignments[i].read_index = static_cast<std::int64_t>(i);
    assignments[i].component = 0;
  }

  auto options = test_options();
  options.k = k;
  options.require_paired_support = true;
  options.paired_check_length = 400;
  const auto kept =
      run_butterfly(contigs, components, assignments, paired_reads, options);
  EXPECT_EQ(kept.size(), 1u);

  // Same component, but only single-end reads named without mate suffixes:
  // no pair can span, so the long transcript is dropped.
  std::vector<seq::Sequence> single_reads{{"read0", t.substr(20, 60)}};
  std::vector<chrysalis::ReadAssignment> single_assignments(1);
  single_assignments[0].read_index = 0;
  single_assignments[0].component = 0;
  const auto dropped =
      run_butterfly(contigs, components, single_assignments, single_reads, options);
  EXPECT_TRUE(dropped.empty());
}

TEST(ButterflyReconcile, ShortTranscriptsExemptFromPairedCheck) {
  const std::string t = random_dna(200, 33);  // below paired_check_length
  std::vector<seq::Sequence> contigs{{"c0", t}};
  const auto components = chrysalis::cluster_contigs(1, {});
  auto options = test_options();
  options.k = 15;  // avoid birthday-collision forks in the random sequence
  options.require_paired_support = true;
  const auto out = run_butterfly(contigs, components, {}, {}, options);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace trinity::butterfly
