// Tests for GraphFromFasta: weld harvesting semantics, read-support
// gating, pair derivation, and — the paper's central claim — equivalence
// of the hybrid (simpi+OpenMP) run with the shared-memory run across rank
// counts and distribution strategies.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chrysalis/graph_from_fasta.hpp"
#include "kmer/counter.hpp"
#include "seq/dna.hpp"
#include "simpi/context.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::random_dna;
using trinity::testing::tile_reads;

constexpr int kTestK = 15;

GraphFromFastaOptions test_options() {
  GraphFromFastaOptions o;
  o.k = kTestK;
  o.min_weld_support = 2;
  o.model_threads_per_rank = 4;
  return o;
}

/// A scenario with `n_pairs` welded contig pairs plus `n_single` loners.
struct Scenario {
  std::vector<seq::Sequence> contigs;
  std::vector<seq::Sequence> reads;
  std::vector<std::pair<int, int>> welded;  // expected same-component pairs
};

Scenario build_scenario(std::size_t n_pairs, std::size_t n_single, std::uint64_t seed) {
  Scenario s;
  util::Rng rng(seed);
  auto add_reads = [&](const std::string& source) {
    // Dense tiling: every k-mer is covered several times, giving the weld
    // support the threshold requires.
    auto reads = tile_reads(source, 50, 4, "r" + std::to_string(s.reads.size()) + "_");
    s.reads.insert(s.reads.end(), reads.begin(), reads.end());
  };

  for (std::size_t p = 0; p < n_pairs; ++p) {
    const std::string shared = random_dna(60, rng());  // > 2k, room for flanks
    seq::Sequence a{"a" + std::to_string(p), random_dna(80, rng()) + shared + random_dna(80, rng())};
    seq::Sequence b{"b" + std::to_string(p), random_dna(80, rng()) + shared + random_dna(80, rng())};
    s.welded.emplace_back(static_cast<int>(s.contigs.size()),
                          static_cast<int>(s.contigs.size()) + 1);
    add_reads(a.bases);
    add_reads(b.bases);
    s.contigs.push_back(std::move(a));
    s.contigs.push_back(std::move(b));
  }
  for (std::size_t i = 0; i < n_single; ++i) {
    seq::Sequence c{"solo" + std::to_string(i), random_dna(220, rng())};
    add_reads(c.bases);
    s.contigs.push_back(std::move(c));
  }
  return s;
}

kmer::KmerCounter make_counter(const std::vector<seq::Sequence>& reads) {
  kmer::CounterOptions o;
  o.k = kTestK;
  kmer::KmerCounter counter(o);
  counter.add_sequences(reads);
  return counter;
}

TEST(GffShared, SharedRegionWeldsContigPair) {
  const auto s = build_scenario(1, 1, 11);
  const auto counter = make_counter(s.reads);
  const auto result = run_shared(s.contigs, counter, test_options());

  EXPECT_FALSE(result.welds.empty()) << "shared region must yield welding sequences";
  // Contigs 0 and 1 share a 60-base region -> same component; contig 2 alone.
  EXPECT_EQ(result.components.component_of[0], result.components.component_of[1]);
  EXPECT_NE(result.components.component_of[2], result.components.component_of[0]);
  EXPECT_EQ(result.components.num_components(), 2u);
  // Pairs must contain (0, 1).
  EXPECT_TRUE(std::any_of(result.pairs.begin(), result.pairs.end(), [](const ContigPair& p) {
    return p.a == 0 && p.b == 1;
  }));
}

TEST(GffShared, DisjointContigsStaySeparate) {
  Scenario s;
  util::Rng rng(13);
  for (int i = 0; i < 4; ++i) {
    seq::Sequence c{"c" + std::to_string(i), random_dna(200, rng())};
    auto reads = tile_reads(c.bases, 50, 4, "r" + std::to_string(i) + "_");
    s.reads.insert(s.reads.end(), reads.begin(), reads.end());
    s.contigs.push_back(std::move(c));
  }
  const auto counter = make_counter(s.reads);
  const auto result = run_shared(s.contigs, counter, test_options());
  EXPECT_TRUE(result.welds.empty());
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.components.num_components(), 4u);
}

TEST(GffShared, WithoutReadSupportNoWeld) {
  auto s = build_scenario(1, 0, 17);
  // Starve the weld of read support: an unrelated read set.
  const std::vector<seq::Sequence> foreign = tile_reads(random_dna(400, 999), 50, 4);
  const auto counter = make_counter(foreign);
  const auto result = run_shared(s.contigs, counter, test_options());
  EXPECT_TRUE(result.welds.empty())
      << "welds require read support (paper: 'welding ... if read support exists')";
  EXPECT_EQ(result.components.num_components(), 2u);
}

TEST(GffShared, SupportThresholdGates) {
  const auto s = build_scenario(1, 0, 19);
  const auto counter = make_counter(s.reads);
  auto options = test_options();
  options.min_weld_support = 1000;  // unreachable
  const auto result = run_shared(s.contigs, counter, options);
  EXPECT_TRUE(result.welds.empty());
}

TEST(GffShared, WeldsHaveBoundedLength) {
  const auto s = build_scenario(2, 0, 23);
  const auto counter = make_counter(s.reads);
  const auto result = run_shared(s.contigs, counter, test_options());
  ASSERT_FALSE(result.welds.empty());
  for (const auto& weld : result.welds) {
    // Seed (k-1) plus up to k/2 flanks each side, clamped at contig ends,
    // never below one full k-mer.
    EXPECT_GE(weld.size(), static_cast<std::size_t>(kTestK));
    EXPECT_LE(weld.size(), static_cast<std::size_t>(kTestK - 1 + 2 * (kTestK / 2)));
  }
}

TEST(GffShared, WeldsAreCanonicalAndUnique) {
  const auto s = build_scenario(2, 1, 29);
  const auto counter = make_counter(s.reads);
  const auto result = run_shared(s.contigs, counter, test_options());
  auto sorted = result.welds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  for (const auto& weld : result.welds) {
    EXPECT_LE(weld, seq::reverse_complement(weld)) << "welds must be stored canonically";
  }
}

TEST(GffShared, ReverseComplementContigStillWelds) {
  // Contig B carries the shared region on the opposite strand; canonical
  // weld matching must still pair them.
  util::Rng rng(31);
  const std::string shared = random_dna(60, rng());
  std::vector<seq::Sequence> contigs{
      {"a", random_dna(80, rng()) + shared + random_dna(80, rng())},
      {"b", random_dna(80, rng()) + seq::reverse_complement(shared) + random_dna(80, rng())}};
  std::vector<seq::Sequence> reads;
  for (const auto& c : contigs) {
    const auto tiles = tile_reads(c.bases, 50, 4, c.name + "_");
    reads.insert(reads.end(), tiles.begin(), tiles.end());
  }
  const auto counter = make_counter(reads);
  const auto result = run_shared(contigs, counter, test_options());
  EXPECT_EQ(result.components.num_components(), 1u);
}

TEST(GffShared, ExtraPairsJoinClustering) {
  const auto s = build_scenario(0, 3, 37);
  const auto counter = make_counter(s.reads);
  const std::vector<ContigPair> scaffold{{0, 2}};
  const auto result = run_shared(s.contigs, counter, test_options(), scaffold);
  EXPECT_EQ(result.components.component_of[0], result.components.component_of[2]);
  EXPECT_EQ(result.components.num_components(), 2u);
}

TEST(GffShared, TimingFieldsPopulated) {
  const auto s = build_scenario(1, 1, 41);
  const auto counter = make_counter(s.reads);
  const auto result = run_shared(s.contigs, counter, test_options());
  EXPECT_EQ(result.timing.loop1.seconds.size(), 1u);
  EXPECT_EQ(result.timing.loop2.seconds.size(), 1u);
  EXPECT_GE(result.timing.total_seconds(), 0.0);
  EXPECT_GE(result.timing.nonparallel_fraction(), 0.0);
  EXPECT_LE(result.timing.nonparallel_fraction(), 1.0);
}

// --- hybrid equivalence --------------------------------------------------------------

class GffHybrid : public ::testing::TestWithParam<int> {};

TEST_P(GffHybrid, MatchesSharedMemoryRun) {
  const int nranks = GetParam();
  const auto s = build_scenario(3, 4, 43);
  const auto counter = make_counter(s.reads);
  const auto options = test_options();
  const auto expected = run_shared(s.contigs, counter, options);

  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    // The pooled welds/pairs/components must be identical on every rank
    // and equal to the shared-memory result.
    EXPECT_EQ(result.welds, expected.welds);
    EXPECT_EQ(result.pairs, expected.pairs);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
    EXPECT_EQ(result.timing.loop1.seconds.size(), static_cast<std::size_t>(nranks));
    EXPECT_EQ(result.timing.loop2.seconds.size(), static_cast<std::size_t>(nranks));
    EXPECT_GE(result.timing.loop1.max(), result.timing.loop1.min());
    if (nranks > 1) {
      EXPECT_GT(result.timing.comm_seconds, 0.0);
    }
  });
}

TEST_P(GffHybrid, BlockDistributionGivesSameComponents) {
  const int nranks = GetParam();
  const auto s = build_scenario(2, 2, 47);
  const auto counter = make_counter(s.reads);
  auto options = test_options();
  const auto expected = run_shared(s.contigs, counter, options);
  options.distribution = Distribution::kBlock;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
  });
}

TEST_P(GffHybrid, OwnerShardingMatchesSharedMemoryRun) {
  const int nranks = GetParam();
  const auto s = build_scenario(3, 4, 43);
  const auto counter = make_counter(s.reads);
  auto options = test_options();
  const auto expected = run_shared(s.contigs, counter, options);
  options.sharding = ShardingStrategy::kOwner;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    // Owner-computes keeps welds/pairs distributed (the result leaves them
    // empty) but the clustering must be byte-identical on every rank.
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
    ASSERT_EQ(result.components.num_components(), expected.components.num_components());
    for (std::size_t c = 0; c < expected.components.components.size(); ++c) {
      EXPECT_EQ(result.components.components[c].contig_ids,
                expected.components.components[c].contig_ids);
    }
    EXPECT_TRUE(result.welds.empty());
    EXPECT_TRUE(result.pairs.empty());
    // Routed-traffic counters replace the pooled ones.
    EXPECT_EQ(result.timing.weld_bytes_pooled, 0u);
    EXPECT_EQ(result.timing.match_bytes_pooled, 0u);
    if (nranks > 1) {
      EXPECT_GT(result.timing.weld_bytes_routed, 0u);
      EXPECT_GE(result.timing.dsu_rounds, 0);
    }
  });
}

TEST_P(GffHybrid, OwnerShardingWorksUnderDynamicDistribution) {
  const int nranks = GetParam();
  const auto s = build_scenario(2, 2, 47);
  const auto counter = make_counter(s.reads);
  auto options = test_options();
  const auto expected = run_shared(s.contigs, counter, options);
  // The pooled-overlap strategy must degrade under dynamic scheduling;
  // owner-computes has no such restriction.
  options.distribution = Distribution::kDynamic;
  options.sharding = ShardingStrategy::kOwner;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
  });
}

TEST_P(GffHybrid, AllThreeStrategiesAgreeWithScaffoldPairs) {
  const int nranks = GetParam();
  const auto s = build_scenario(2, 3, 53);
  const auto counter = make_counter(s.reads);
  // Join the last two loner contigs through an injected scaffold pair, as
  // the pipeline's scaffold stage does.
  const auto n = static_cast<std::int32_t>(s.contigs.size());
  const std::vector<ContigPair> scaffold = {{n - 2, n - 1}};
  const auto expected = run_shared(s.contigs, counter, test_options(), scaffold);
  for (const auto sharding : {ShardingStrategy::kPooled, ShardingStrategy::kPooledOverlap,
                              ShardingStrategy::kOwner}) {
    auto options = test_options();
    options.sharding = sharding;
    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto result = run_hybrid(ctx, s.contigs, counter, options, scaffold);
      EXPECT_EQ(result.components.component_of, expected.components.component_of)
          << "sharding=" << to_string(sharding);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, GffHybrid, ::testing::Values(1, 2, 3, 4, 6));

// --- weld arrival-order independence ----------------------------------------------

TEST(GffDedup, DedupWeldsIsOrderIndependent) {
  // The pooled weld list arrives rank-concatenated, so its order depends on
  // the rank count; dedup_welds must erase that history. Permute a weld
  // multiset every which way and require the identical canonical list.
  std::vector<std::string> welds = {"ACGT", "TTTT", "ACGT", "AAAA",
                                    "CCGG", "TTTT", "ACGT"};
  const std::vector<std::string> want = {"AAAA", "ACGT", "CCGG", "TTTT"};
  std::sort(welds.begin(), welds.end());
  do {
    EXPECT_EQ(detail::dedup_welds(welds), want);
  } while (std::next_permutation(welds.begin(), welds.end()));
}

TEST(GffDedup, PermutedPooledArrivalOrderYieldsIdenticalWeldsAndPairs) {
  // End-to-end version of the same property: run the pooled hybrid at rank
  // counts that pool the same welds in different arrival orders and require
  // the exact weld list, pair list, and clustering of the 1-rank run.
  const auto s = build_scenario(3, 2, 61);
  const auto counter = make_counter(s.reads);
  const auto options = test_options();
  const auto expected = run_shared(s.contigs, counter, options);
  for (const int nranks : {1, 2, 3, 5}) {
    simpi::run(nranks, [&](simpi::Context& ctx) {
      const auto result = run_hybrid(ctx, s.contigs, counter, options);
      EXPECT_EQ(result.welds, expected.welds);
      EXPECT_EQ(result.pairs, expected.pairs);
      EXPECT_EQ(result.components.component_of, expected.components.component_of);
    });
  }
}

TEST(GffOwner, WeldOwnerIsDeterministicAndInRange) {
  util::Rng rng(99);
  for (const int nranks : {1, 2, 5, 8}) {
    for (int i = 0; i < 64; ++i) {
      const std::string weld = random_dna(40, rng());
      const int owner = detail::weld_owner(weld, kTestK, nranks);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, nranks);
      EXPECT_EQ(owner, detail::weld_owner(weld, kTestK, nranks));
      // Strand symmetry: identical welds reach the same owner however the
      // contributing contig was oriented.
      EXPECT_EQ(owner, detail::weld_owner(seq::reverse_complement(weld), kTestK, nranks));
    }
  }
}

TEST(GffHybrid2, ExplicitChunkSizeRespected) {
  const auto s = build_scenario(2, 3, 53);
  const auto counter = make_counter(s.reads);
  auto options = test_options();
  options.chunk_size = 1;  // extreme: one contig per chunk
  const auto expected = run_shared(s.contigs, counter, test_options());
  simpi::run(3, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
  });
}

TEST(GffOracle, ComponentsMatchBruteForceOverlapClustering) {
  // Independent oracle: two contigs belong together iff they share a
  // canonical (k-1)-mer whose weld window has full read support. Compute
  // that directly (no GraphFromFasta code) and compare the resulting
  // connected components against run_shared on a randomized scenario.
  const auto s = build_scenario(4, 5, 101);
  const auto counter = make_counter(s.reads);
  const auto options = test_options();
  const auto result = run_shared(s.contigs, counter, options);

  // Oracle edge test between contigs a and b.
  const seq::KmerCodec seed_codec(kTestK - 1);
  const seq::KmerCodec kmer_codec(kTestK);
  auto canonical_set = [&](const std::string& bases) {
    std::set<seq::KmerCode> out;
    for (const auto& occ : seed_codec.extract_canonical(bases)) out.insert(occ.code);
    return out;
  };
  std::vector<std::set<seq::KmerCode>> seeds;
  for (const auto& c : s.contigs) seeds.push_back(canonical_set(c.bases));

  auto weld_supported = [&](const seq::Sequence& contig, seq::KmerCode shared_seed) {
    // Find the seed's occurrences in this contig and check the clamped
    // window's k-mers against the read counts (same rule as the kernel).
    for (const auto& occ : seed_codec.extract(contig.bases)) {
      if (seed_codec.canonical(occ.code) != shared_seed) continue;
      const std::size_t flank = kTestK / 2;
      const std::size_t begin = occ.position > flank ? occ.position - flank : 0;
      const std::size_t end =
          std::min(contig.bases.size(), occ.position + (kTestK - 1) + flank);
      if (end - begin < static_cast<std::size_t>(kTestK)) continue;
      bool ok = true;
      for (const auto& w :
           kmer_codec.extract(std::string_view(contig.bases).substr(begin, end - begin))) {
        if (counter.count_of(kmer_codec.canonical(w.code)) < options.min_weld_support) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
    return false;
  };

  UnionFind oracle(s.contigs.size());
  for (std::size_t a = 0; a < s.contigs.size(); ++a) {
    for (std::size_t b = a + 1; b < s.contigs.size(); ++b) {
      for (const auto seed : seeds[a]) {
        if (!seeds[b].count(seed)) continue;
        if (weld_supported(s.contigs[a], seed) || weld_supported(s.contigs[b], seed)) {
          oracle.unite(static_cast<std::int32_t>(a), static_cast<std::int32_t>(b));
          break;
        }
      }
    }
  }

  // Same partition: representatives agree pairwise.
  for (std::size_t a = 0; a < s.contigs.size(); ++a) {
    for (std::size_t b = 0; b < s.contigs.size(); ++b) {
      const bool oracle_same = oracle.find(static_cast<std::int32_t>(a)) ==
                               oracle.find(static_cast<std::int32_t>(b));
      const bool gff_same = result.components.component_of[a] ==
                            result.components.component_of[b];
      EXPECT_EQ(gff_same, oracle_same) << "contigs " << a << " and " << b;
    }
  }
}

TEST(GffEdge, EmptyContigSetIsFine) {
  const std::vector<seq::Sequence> none;
  const auto counter = make_counter({});
  const auto result = run_shared(none, counter, test_options());
  EXPECT_EQ(result.components.num_components(), 0u);
  EXPECT_TRUE(result.welds.empty());
}

TEST(GffEdge, ContigShorterThanWeldIgnored) {
  std::vector<seq::Sequence> contigs{{"short", random_dna(kTestK - 1, 3)},
                                     {"other", random_dna(200, 4)}};
  const auto counter = make_counter(tile_reads(contigs[1].bases, 50, 4));
  const auto result = run_shared(contigs, counter, test_options());
  EXPECT_EQ(result.components.num_components(), 2u);
}

}  // namespace
}  // namespace trinity::chrysalis
