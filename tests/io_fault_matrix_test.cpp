// The pipeline-level fault matrix: injected storage failures against the
// real stage writers. Transient faults (EIO mid-spill, a short write on the
// final transcripts) are retried in process; permanent ones (ENOSPC or a
// torn rename at the manifest commit) fail the run with a typed IoError
// whose checkpoints make a `resume` re-launch byte-identical to an
// uninterrupted run. Plus graceful degradation: a tolerant run over a
// corrupted read file completes and reports exact quarantine counts in
// run_report.json (schema v2), while strict mode throws a located
// ParseError.

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "io/fault_plan.hpp"
#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"

namespace trinity::pipeline {
namespace {

using trinity::testing::TempDir;

PipelineOptions small_options(const std::string& work_dir) {
  PipelineOptions o;
  o.k = 15;
  o.nranks = 1;
  o.work_dir = work_dir;
  o.model_threads_per_rank = 4;
  o.max_mem_reads = 500;
  o.trace_sample_interval_ms = 0;
  // Single OpenMP thread keeps stage outputs bit-reproducible across runs,
  // which the byte-identity assertions below rely on.
  o.omp_threads = 1;
  return o;
}

sim::Dataset tiny_dataset() {
  auto p = sim::preset("tiny");
  p.reads.error_rate = 0.002;
  p.reads.coverage = 30.0;
  p.reads.expression_sigma = 0.7;
  return sim::simulate_dataset(p);
}

const sim::Dataset& shared_dataset() {
  static const sim::Dataset data = tiny_dataset();
  return data;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Reference transcripts from one clean run, computed once.
const std::string& baseline_transcripts() {
  static const std::string fasta = [] {
    const TempDir dir("matrix_baseline");
    run_pipeline(shared_dataset().reads.reads, small_options(dir.str()));
    return slurp(dir.file("Trinity.fa"));
  }();
  return fasta;
}

bool trace_has_phase(const PipelineResult& result, const std::string& name) {
  return std::any_of(result.trace.begin(), result.trace.end(),
                     [&](const auto& r) { return r.name == name; });
}

// --- transient faults: retried in process -----------------------------------------

TEST(IoFaultMatrix, EioOnKmerDumpIsRetriedInProcess) {
  const TempDir dir("matrix_eio");
  auto options = small_options(dir.str());
  options.io_fault = io::IoFaultPlan::parse("write:*kmers.bin:1:eio");
  const auto result = run_pipeline(shared_dataset().reads.reads, options);

  EXPECT_EQ(result.io_retries, 1);
  EXPECT_EQ(result.stage_retries, 1);
  EXPECT_TRUE(trace_has_phase(result, "jellyfish.retry2"));
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), baseline_transcripts());
}

TEST(IoFaultMatrix, ShortWriteOnTranscriptsIsRetriedAndRewritesWhole) {
  const TempDir dir("matrix_short");
  auto options = small_options(dir.str());
  options.io_fault = io::IoFaultPlan::parse("write:*Trinity.fa:1:short_write");
  const auto result = run_pipeline(shared_dataset().reads.reads, options);

  EXPECT_EQ(result.io_retries, 1);
  EXPECT_TRUE(trace_has_phase(result, "butterfly.retry2"));
  // The retry must overwrite the torn half, not append to it.
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), baseline_transcripts());
}

TEST(IoFaultMatrix, ExhaustedRetryBudgetSurfacesTheTypedError) {
  const TempDir dir("matrix_budget");
  auto options = small_options(dir.str());
  // No retry budget: even a transient fault must surface as the typed
  // error instead of being swallowed.
  options.retry.max_attempts = 1;
  options.io_fault = io::IoFaultPlan::parse("write:*kmers.bin:1:eio");
  try {
    run_pipeline(shared_dataset().reads.reads, options);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_NE(std::string(e.what()).find("kmers.bin"), std::string::npos);
  }
}

// --- permanent faults: fail fast, recover via resume ------------------------------

TEST(IoFaultMatrix, EnospcOnManifestCommitFailsFastThenResumes) {
  const TempDir dir("matrix_enospc");
  auto options = small_options(dir.str());
  // The third commit (after the inchworm stage) hits a full disk.
  options.io_fault = io::IoFaultPlan::parse("write:*run_manifest.jsonl.tmp:3:enospc");
  try {
    run_pipeline(shared_dataset().reads.reads, options);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.error_code(), ENOSPC);
  }

  // The atomic commit preserved the previous manifest: two stages recorded.
  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  ASSERT_EQ(manifest.records().size(), 2u);
  EXPECT_EQ(manifest.records()[0].stage, "write_input");
  EXPECT_EQ(manifest.records()[1].stage, "jellyfish");

  // Re-launch with resume (the disk "has space again"): the recorded
  // stages are skipped and the result is byte-identical.
  auto resume_options = small_options(dir.str());
  resume_options.resume = true;
  const auto result = run_pipeline(shared_dataset().reads.reads, resume_options);
  EXPECT_EQ(result.stages_resumed, (std::vector<std::string>{"write_input", "jellyfish"}));
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), baseline_transcripts());
}

TEST(IoFaultMatrix, TornManifestRenameIsAbsorbedByResume) {
  const TempDir dir("matrix_torn");
  auto options = small_options(dir.str());
  // The third manifest commit crashes mid-rename: the manifest on disk is
  // a torn half of the three-stage document.
  options.io_fault = io::IoFaultPlan::parse("rename:*run_manifest.jsonl:3:torn_rename");
  try {
    run_pipeline(shared_dataset().reads.reads, options);
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.op(), "rename");
  }

  // The loader drops the torn tail instead of crashing; whatever complete
  // prefix survived is what resume can reuse.
  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  EXPECT_LT(manifest.records().size(), 3u);

  auto resume_options = small_options(dir.str());
  resume_options.resume = true;
  const auto result = run_pipeline(shared_dataset().reads.reads, resume_options);
  EXPECT_FALSE(result.stages_executed.empty());
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), baseline_transcripts());
}

// --- graceful degradation over a corrupted read file ------------------------------

/// Writes the dataset's reads as FASTA with injected corruption: a junk
/// leading line (missing_header) and two records with bad sequence bytes
/// (invalid_character).
std::string write_corrupted_reads(const TempDir& dir) {
  const std::string path = dir.file("corrupted_reads.fa");
  std::ofstream out(path, std::ios::binary);
  out << "junk leading line\n";  // quarantined: missing_header
  for (const auto& r : shared_dataset().reads.reads) {
    out << '>' << r.name << '\n' << r.bases << '\n';
  }
  out << ">bad_record_1\nAC!TACGT\n";  // quarantined: invalid_character
  out << ">bad_record_2\nACGT#CGT\n";  // quarantined: invalid_character
  return path;
}

TEST(IoFaultMatrix, TolerantRunOverCorruptedReadsCompletesAndReportsCounts) {
  const TempDir dir("matrix_tolerant");
  const auto reads_path = write_corrupted_reads(dir);
  auto options = small_options(dir.str());
  options.parse_policy = seq::ParsePolicy::kTolerant;
  const auto result = run_pipeline_from_file(reads_path, options);

  // Quarantining dropped exactly the three corrupt records; the surviving
  // read set is the clean dataset, so the transcripts are byte-identical
  // to the clean baseline.
  const auto n_reads = shared_dataset().reads.reads.size();
  EXPECT_EQ(result.parse.of(io::ParseCategory::kMissingHeader), 1u);
  EXPECT_EQ(result.parse.of(io::ParseCategory::kInvalidCharacter), 2u);
  EXPECT_EQ(result.parse.records_quarantined(), 3u);
  // records_ok covers both the input-file read and the r2t re-stream of
  // the clean rewritten reads.fa.
  EXPECT_GE(result.parse.records_ok, n_reads);
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), baseline_transcripts());

  // The quarantine counts are in the v2 run report, per category.
  const auto report = load_run_report(result.report_path);
  EXPECT_EQ(report.at("schema_version").as_int(), kReportSchemaVersion);
  const auto& parse = report.at("parse");
  EXPECT_EQ(parse.at("policy").as_string(), "tolerant");
  EXPECT_EQ(parse.at("records_quarantined").as_int(), 3);
  EXPECT_EQ(parse.at("quarantined").at("missing_header").as_int(), 1);
  EXPECT_EQ(parse.at("quarantined").at("invalid_character").as_int(), 2);
  EXPECT_EQ(parse.at("quarantined").at("truncated_record").as_int(), 0);
}

TEST(IoFaultMatrix, StrictRunOverCorruptedReadsThrowsLocatedParseError) {
  const TempDir dir("matrix_strict");
  const auto reads_path = write_corrupted_reads(dir);
  auto options = small_options(dir.str());
  try {
    run_pipeline_from_file(reads_path, options);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kMissingHeader);
    EXPECT_EQ(e.path(), reads_path);
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.byte_offset(), 0u);
  }
}

TEST(IoFaultMatrix, RepairRunKeepsTheRepairedRecords) {
  const TempDir dir("matrix_repair");
  const auto reads_path = write_corrupted_reads(dir);
  auto options = small_options(dir.str());
  options.parse_policy = seq::ParsePolicy::kRepair;
  const auto result = run_pipeline_from_file(reads_path, options);

  // The two bad-base records are repaired (kept, with 'N's), so the read
  // set differs from the clean baseline — the run must still complete and
  // account for every record.
  EXPECT_EQ(result.parse.records_repaired, 2u);
  EXPECT_EQ(result.parse.of(io::ParseCategory::kMissingHeader), 1u);
  EXPECT_EQ(result.parse.records_quarantined(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir.file("Trinity.fa")));
}

}  // namespace
}  // namespace trinity::pipeline
