// Tests for the Inchworm greedy assembler: reconstruction of known
// sequences, error-k-mer pruning, the Figure-1 extension rule, and the
// modeled run-to-run nondeterminism.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "inchworm/inchworm.hpp"
#include "seq/dna.hpp"
#include "test_helpers.hpp"

namespace trinity::inchworm {
namespace {

using trinity::testing::random_dna;
using trinity::testing::tile_reads;

InchwormOptions small_opts(int k = 15) {
  InchwormOptions o;
  o.k = k;
  o.min_kmer_count = 1;
  o.min_contig_length = static_cast<std::size_t>(k);
  return o;
}

/// True when `needle` equals `hay` on either strand.
bool matches_either_strand(const std::string& needle, const std::string& hay) {
  return needle == hay || needle == seq::reverse_complement(hay);
}

TEST(InchwormTest, ReconstructsSingleTranscriptFromPerfectReads) {
  const std::string transcript = random_dna(500, 42);
  const auto reads = tile_reads(transcript, 60, 10);

  Inchworm assembler(small_opts());
  assembler.load_reads(reads);
  const auto contigs = assembler.assemble();

  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_TRUE(matches_either_strand(contigs[0].bases, transcript))
      << "greedy extension over unambiguous coverage must recover the transcript";
}

TEST(InchwormTest, ReconstructsMultipleDisjointTranscripts) {
  const std::string t1 = random_dna(400, 1);
  const std::string t2 = random_dna(400, 2);
  auto reads = tile_reads(t1, 60, 10, "a");
  const auto more = tile_reads(t2, 60, 10, "b");
  reads.insert(reads.end(), more.begin(), more.end());

  Inchworm assembler(small_opts());
  assembler.load_reads(reads);
  const auto contigs = assembler.assemble();

  ASSERT_EQ(contigs.size(), 2u);
  const bool found1 = std::any_of(contigs.begin(), contigs.end(), [&](const auto& c) {
    return matches_either_strand(c.bases, t1);
  });
  const bool found2 = std::any_of(contigs.begin(), contigs.end(), [&](const auto& c) {
    return matches_either_strand(c.bases, t2);
  });
  EXPECT_TRUE(found1);
  EXPECT_TRUE(found2);
}

TEST(InchwormTest, ErrorKmersArePruned) {
  const std::string transcript = random_dna(300, 5);
  auto reads = tile_reads(transcript, 60, 5);
  // One read with a single error in the middle: its error k-mers appear
  // once while true k-mers appear many times.
  seq::Sequence bad = reads[3];
  bad.bases[30] = bad.bases[30] == 'A' ? 'C' : 'A';
  reads.push_back(bad);

  auto options = small_opts();
  options.min_kmer_count = 2;  // prune singletons
  Inchworm assembler(options);
  assembler.load_reads(reads);
  const auto contigs = assembler.assemble();

  ASSERT_GE(contigs.size(), 1u);
  // Terminal k-mers covered by only one tiled read are pruned along with
  // the error k-mers, so the contig may be trimmed by up to the tiling
  // stride at each end — but its body must match the transcript exactly.
  std::string contig = contigs[0].bases;
  if (transcript.find(contig) == std::string::npos) {
    contig = seq::reverse_complement(contig);
  }
  EXPECT_NE(transcript.find(contig), std::string::npos)
      << "error k-mers must not divert the greedy extension";
  EXPECT_GE(contig.size() + 12, transcript.size());
}

TEST(InchwormTest, GreedyPrefersMostAbundantExtension) {
  // Two sequences share a (k-1) prefix context and then diverge; the branch
  // seen in more reads must be chosen at the fork (paper Figure 1).
  const int k = 7;
  const std::string common = random_dna(24, 77);
  const std::string high_branch = random_dna(20, 78);
  const std::string low_branch = random_dna(20, 79);

  std::vector<seq::Sequence> reads;
  for (int i = 0; i < 10; ++i) reads.push_back({"h" + std::to_string(i), common + high_branch});
  reads.push_back({"l", common + low_branch});

  auto options = small_opts(k);
  Inchworm assembler(options);
  assembler.load_reads(reads);
  const auto contigs = assembler.assemble();

  ASSERT_GE(contigs.size(), 1u);
  // The first (most abundant seed) contig must follow the high branch.
  const std::string marker = high_branch.substr(0, 10);
  const bool has_high =
      contigs[0].bases.find(marker) != std::string::npos ||
      seq::reverse_complement(contigs[0].bases).find(marker) != std::string::npos;
  EXPECT_TRUE(has_high);
}

TEST(InchwormTest, MinContigLengthFilters) {
  auto options = small_opts(15);
  options.min_contig_length = 1000;
  Inchworm assembler(options);
  assembler.load_reads(tile_reads(random_dna(300, 8), 60, 10));
  EXPECT_TRUE(assembler.assemble().empty());
  EXPECT_GT(assembler.stats().contigs_discarded, 0u);
}

TEST(InchwormTest, StatsAreConsistent) {
  Inchworm assembler(small_opts());
  assembler.load_reads(tile_reads(random_dna(400, 9), 60, 10));
  const auto contigs = assembler.assemble();
  const auto& stats = assembler.stats();
  EXPECT_EQ(stats.contigs_reported, contigs.size());
  std::size_t bases = 0;
  for (const auto& c : contigs) bases += c.bases.size();
  EXPECT_EQ(stats.bases_assembled, bases);
  EXPECT_GT(stats.dictionary_size, 0u);
}

TEST(InchwormTest, HandlesCyclicRepeatWithoutHanging) {
  // A perfect tandem repeat creates a cycle in k-mer space; extension must
  // terminate by consuming each k-mer once.
  const std::string unit = "ACGTGTCA";
  std::string repeat;
  for (int i = 0; i < 20; ++i) repeat += unit;
  Inchworm assembler(small_opts(7));
  assembler.load_reads(tile_reads(repeat, 40, 4));
  const auto contigs = assembler.assemble();
  EXPECT_FALSE(contigs.empty());
}

TEST(InchwormTest, DeterministicWithoutTieSeed) {
  const auto reads = tile_reads(random_dna(600, 11), 60, 7);
  Inchworm a(small_opts());
  a.load_reads(reads);
  Inchworm b(small_opts());
  b.load_reads(reads);
  const auto ca = a.assemble();
  const auto cb = b.assemble();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) EXPECT_EQ(ca[i].bases, cb[i].bases);
}

TEST(InchwormTest, TieSeedModelsRunToRunVariation) {
  // With many equally-abundant k-mers, different salts permute the seed
  // order. The output sets may differ slightly — the property the paper's
  // Section IV is designed around — but total assembled bases stay close.
  std::vector<seq::Sequence> reads;
  for (int t = 0; t < 8; ++t) {
    const auto tiles =
        tile_reads(random_dna(300, static_cast<std::uint64_t>(100 + t)), 60, 10,
                   "t" + std::to_string(t) + "_");
    reads.insert(reads.end(), tiles.begin(), tiles.end());
  }
  auto o1 = small_opts();
  o1.tie_break_seed = 1;
  auto o2 = small_opts();
  o2.tie_break_seed = 2;
  Inchworm a(o1);
  a.load_reads(reads);
  Inchworm b(o2);
  b.load_reads(reads);
  const auto ca = a.assemble();
  const auto cb = b.assemble();
  const double bases_a = static_cast<double>(a.stats().bases_assembled);
  const double bases_b = static_cast<double>(b.stats().bases_assembled);
  EXPECT_NEAR(bases_a / bases_b, 1.0, 0.1);
  EXPECT_FALSE(ca.empty());
  EXPECT_FALSE(cb.empty());
}

TEST(InchwormTest, ContigsNeverReuseAKmer) {
  // Inchworm consumes each canonical k-mer at most once — the invariant
  // GraphFromFasta's (k-1)-overlap welding relies on.
  std::vector<seq::Sequence> reads;
  for (int t = 0; t < 6; ++t) {
    const auto tiles = tile_reads(random_dna(400, static_cast<std::uint64_t>(300 + t)), 60, 8,
                                  "s" + std::to_string(t) + "_");
    reads.insert(reads.end(), tiles.begin(), tiles.end());
  }
  const int k = 15;
  Inchworm assembler(small_opts(k));
  assembler.load_reads(reads);
  const auto contigs = assembler.assemble();

  const seq::KmerCodec codec(k);
  std::set<seq::KmerCode> used;
  for (const auto& contig : contigs) {
    for (const auto& occ : codec.extract_canonical(contig.bases)) {
      EXPECT_TRUE(used.insert(occ.code).second)
          << "canonical k-mer appears in two contigs (or twice in one)";
    }
  }
}

TEST(InchwormTest, EmptyInputYieldsNothing) {
  Inchworm assembler(small_opts());
  assembler.load_reads({});
  EXPECT_TRUE(assembler.assemble().empty());
}

TEST(InchwormTest, LoadCountsMergesDuplicates) {
  // Feeding the same canonical code twice accumulates.
  const seq::KmerCodec codec(15);
  const auto code = codec.canonical(*codec.encode(random_dna(15, 3)));
  Inchworm assembler(small_opts());
  assembler.load_counts({{code, 2}, {code, 3}});
  const auto contigs = assembler.assemble();
  ASSERT_EQ(contigs.size(), 1u);
  EXPECT_EQ(contigs[0].bases.size(), 15u);
}

}  // namespace
}  // namespace trinity::inchworm
