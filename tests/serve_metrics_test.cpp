// Live serve telemetry end to end: one server driven through every terminal
// outcome (completed, rejected, deadline-exceeded, hung, quarantined) must
// leave a final registry snapshot whose totals agree exactly with the
// post-hoc evidence — the terminal run reports on disk and the accounting
// ledger — with no double- or under-counting, and the exporter's on-disk
// snapshot must round-trip to the same numbers.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "io/fault_plan.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace trinity::serve {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::string& shared_reads_path() {
  static const std::string path = [] {
    auto p = sim::preset("tiny");
    p.reads.coverage = 25.0;
    p.reads.expression_sigma = 0.7;
    const auto data = sim::simulate_dataset(p);
    static TempDir dir("serve_metrics_reads");
    const std::string reads = dir.file("reads.fa");
    seq::write_fasta(reads, data.reads.reads);
    return reads;
  }();
  return path;
}

JobSpec make_spec(const std::string& tenant, const std::string& job_id) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.job_id = job_id;
  spec.reads_path = shared_reads_path();
  spec.options.k = 15;
  spec.options.nranks = 2;
  spec.options.omp_threads = 1;
  spec.options.model_threads_per_rank = 4;
  spec.options.trace_sample_interval_ms = 0;
  return spec;
}

/// Outcome counts harvested from the terminal run reports under `root` —
/// the post-hoc evidence the live counters must agree with.
std::map<std::string, int> report_outcomes(const std::string& root) {
  std::map<std::string, int> outcomes;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() ||
        entry.path().filename() != pipeline::kReportFileName) {
      continue;
    }
    const util::Json report = util::Json::parse(slurp(entry.path().string()));
    if (const util::Json* outcome = report.find("outcome")) {
      ++outcomes[outcome->as_string()];
    }
  }
  return outcomes;
}

/// Sum of a counter family across series, optionally restricted to series
/// carrying all the given labels.
double sum_counter(const obs::MetricsSnapshot& snap, const std::string& name,
                   const obs::Labels& want = {}) {
  const obs::FamilySnapshot* family = snap.find_family(name);
  if (family == nullptr) return 0.0;
  double total = 0.0;
  for (const auto& series : family->series) {
    bool match = true;
    for (const auto& [k, v] : want) {
      bool found = false;
      for (const auto& [sk, sv] : series.labels) {
        if (sk == k && sv == v) { found = true; break; }
      }
      if (!found) { match = false; break; }
    }
    if (match) total += series.value;
  }
  return total;
}

TEST(ServeMetrics, SnapshotTotalsMatchRunReportsAndAccounting) {
  const TempDir root("serve_metrics_all");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  options.watchdog_poll_s = 0.02;
  options.hang_timeout_s = 0.4;
  options.job_retry = checkpoint::RetryPolicy{3, 0.01, 2.0, 0.05, 0.2};
  options.metrics_export_period_s = 0.1;
  JobServer server(options);
  ASSERT_NE(server.metrics(), nullptr);
  ASSERT_NE(server.exporter(), nullptr);

  // Two clean completions.
  ASSERT_TRUE(server.submit(make_spec("alice", "ok1")).accepted());
  ASSERT_TRUE(server.submit(make_spec("alice", "ok2")).accepted());
  // A duplicate id: typed invalid-spec reject, charged to the tenant.
  EXPECT_EQ(server.submit(make_spec("alice", "ok1")).code,
            AdmitCode::kInvalidSpec);
  // Deadline kill: wedged well past an already-tight deadline.
  JobSpec overdue = make_spec("bob", "overdue");
  overdue.deadline_s = 0.3;
  overdue.options.hang_stage = "inchworm";
  overdue.options.hang_seconds = 60.0;
  ASSERT_TRUE(server.submit(std::move(overdue)).accepted());
  // Hang kill: no deadline, the progress watchdog has to catch it.
  JobSpec wedged = make_spec("bob", "wedged");
  wedged.options.hang_stage = "inchworm";
  wedged.options.hang_seconds = 60.0;
  ASSERT_TRUE(server.submit(std::move(wedged)).accepted());
  // Quarantine: the unarmed plan re-fires on every dispatch (poison job).
  JobSpec poison = make_spec("carol", "poison");
  poison.options.io_fault =
      io::IoFaultPlan::parse("write:*/carol/poison/kmers.bin:1:eio");
  poison.options.retry.max_attempts = 1;
  poison.max_attempts = 2;
  ASSERT_TRUE(server.submit(std::move(poison)).accepted());

  server.drain();
  server.shutdown();

  const obs::MetricsSnapshot snap = server.metrics_snapshot();

  // --- live totals vs the terminal run reports on disk --------------------
  const std::map<std::string, int> reports = report_outcomes(root.str());
  for (const char* outcome :
       {"completed", "deadline_exceeded", "hung", "quarantined"}) {
    const auto it = reports.find(outcome);
    const int on_disk = it == reports.end() ? 0 : it->second;
    EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total",
                          {{"outcome", outcome}}),
              static_cast<double>(on_disk))
        << outcome;
  }
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total",
                        {{"outcome", "completed"}}),
            2.0);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total",
                        {{"outcome", "deadline_exceeded"}}),
            1.0);
  EXPECT_EQ(
      sum_counter(snap, "trinity_serve_jobs_total", {{"outcome", "hung"}}),
      1.0);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total",
                        {{"outcome", "quarantined"}}),
            1.0);
  // Every terminal job appears exactly once across all outcomes.
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total"), 5.0);

  // --- live totals vs the accounting ledger -------------------------------
  Accounting accounting = server.accounting();
  std::int64_t rejected = 0, retries = 0;
  for (const auto& account : accounting.accounts()) {
    rejected += account.jobs_rejected;
    retries += account.job_retries;
  }
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_rejected_total"),
            static_cast<double>(rejected));
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_rejected_total",
                        {{"tenant", "alice"}}),
            1.0);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_job_retries_total"),
            static_cast<double>(retries));
  EXPECT_EQ(accounting.account("bob").deadline_kills, 1);
  EXPECT_EQ(accounting.account("bob").hung_kills, 1);
  EXPECT_EQ(accounting.account("carol").jobs_quarantined, 1);

  // Admission outcomes: 5 accepted, 1 typed reject.
  EXPECT_EQ(sum_counter(snap, "trinity_serve_admission_total",
                        {{"outcome", "accepted"}}),
            5.0);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_admission_total",
                        {{"outcome", "invalid_spec"}}),
            1.0);

  // --- per-job instrumentation ---------------------------------------------
  // Completed jobs observed a latency sample and left stage durations plus
  // heartbeats behind; active gauges are all back to zero.
  const obs::SeriesSnapshot* latency = snap.find(
      "trinity_serve_job_latency_seconds", {{"tenant", "alice"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->hist.count(), 2u);
  const obs::FamilySnapshot* stages =
      snap.find_family("trinity_stage_duration_seconds");
  ASSERT_NE(stages, nullptr);
  EXPECT_FALSE(stages->series.empty());
  const obs::SeriesSnapshot* heartbeat =
      snap.find("trinity_job_stage_heartbeat",
                {{"job", "ok1"}, {"stage", "jellyfish"}, {"tenant", "alice"}});
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_GT(heartbeat->value, 0.0);
  EXPECT_EQ(sum_counter(snap, "trinity_job_active"), 0.0);
  // Queue wait is sampled exactly once per dispatch. The exact dispatch
  // count is timing-dependent (a queued job can die at its deadline before
  // ever dispatching), so compare against the servers own dispatch totals.
  std::uint64_t dispatches = 0;
  for (const auto& job : server.jobs()) {
    dispatches += static_cast<std::uint64_t>(job.dispatches);
  }
  const obs::SeriesSnapshot* queue_wait =
      snap.find("trinity_serve_queue_wait_seconds", {});
  ASSERT_NE(queue_wait, nullptr);
  EXPECT_EQ(queue_wait->hist.count(), dispatches);

  // --- journal instrumentation ---------------------------------------------
  // Every durable append is one fsync-latency sample and one counted event,
  // and the journal on disk replays to exactly that many events.
  const obs::SeriesSnapshot* appends =
      snap.find("trinity_serve_journal_append_seconds", {});
  ASSERT_NE(appends, nullptr);
  const std::size_t replayed =
      JobJournal::replay(root.str() + "/journal.jsonl").events.size();
  EXPECT_EQ(appends->hist.count(), replayed);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_journal_events_total"),
            static_cast<double>(replayed));

  // --- the exporter's terminal snapshot ------------------------------------
  // shutdown() flushes a final export: both files parse and agree with the
  // in-memory totals.
  const obs::MetricsSnapshot prom =
      obs::parse_prometheus_text(slurp(server.exporter()->prom_path()));
  EXPECT_EQ(sum_counter(prom, "trinity_serve_jobs_total"), 5.0);
  const obs::MetricsSnapshot json = obs::snapshot_from_json(
      util::Json::parse(slurp(server.exporter()->json_path())));
  EXPECT_EQ(sum_counter(json, "trinity_serve_jobs_total"), 5.0);
  EXPECT_EQ(sum_counter(json, "trinity_serve_jobs_rejected_total"),
            static_cast<double>(rejected));
}

TEST(ServeMetrics, DisabledMetricsMeansNoRegistryAndNoExporter) {
  const TempDir root("serve_metrics_off");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  options.metrics = false;
  JobServer server(options);
  EXPECT_EQ(server.metrics(), nullptr);
  EXPECT_EQ(server.exporter(), nullptr);
  ASSERT_TRUE(server.submit(make_spec("t", "plain")).accepted());
  server.drain();
  server.shutdown();
  EXPECT_EQ(server.jobs().front().state, JobState::kCompleted);
  EXPECT_FALSE(std::filesystem::exists(root.str() + "/metrics.json"));
  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_TRUE(snap.families.empty());
}

TEST(ServeMetrics, QueueGaugesRecoverAndPeakPersists) {
  const TempDir root("serve_metrics_queue");
  ServerOptions options;
  options.total_ranks = 2;  // force queueing: only one 2-rank job at a time
  options.root_dir = root.str();
  options.watchdog_poll_s = 0.02;
  options.metrics_export_period_s = 0.0;  // registry only, no exporter thread
  JobServer server(options);
  EXPECT_EQ(server.exporter(), nullptr);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        server.submit(make_spec("t", "q" + std::to_string(i))).accepted());
  }
  server.drain();
  server.shutdown();
  const obs::MetricsSnapshot snap = server.metrics_snapshot();
  EXPECT_EQ(snap.value_or("trinity_serve_queue_depth", {}), 0.0);
  EXPECT_EQ(snap.value_or("trinity_serve_jobs_inflight", {}), 0.0);
  EXPECT_GE(snap.value_or("trinity_serve_queue_depth_peak", {}), 2.0);
  EXPECT_EQ(snap.value_or("trinity_serve_ranks_available", {}), 2.0);
  EXPECT_EQ(snap.value_or("trinity_serve_ranks_total", {}), 2.0);
  EXPECT_EQ(sum_counter(snap, "trinity_serve_jobs_total",
                        {{"outcome", "completed"}}),
            3.0);
}

}  // namespace
}  // namespace trinity::serve
