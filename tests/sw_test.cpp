// Tests for the Smith–Waterman validator kernel: known alignments, affine
// gap behaviour, coverage/identity statistics, banded consistency, and
// strand selection.

#include <gtest/gtest.h>

#include "seq/dna.hpp"
#include "sw/smith_waterman.hpp"
#include "test_helpers.hpp"

namespace trinity::sw {
namespace {

using trinity::testing::random_dna;

TEST(SwTest, IdenticalSequencesScorePerfect) {
  const std::string s = random_dna(120, 1);
  const auto aln = align(s, s);
  EXPECT_EQ(aln.score, static_cast<int>(s.size()) * Scoring{}.match);
  EXPECT_EQ(aln.matches, s.size());
  EXPECT_EQ(aln.alignment_columns, s.size());
  EXPECT_DOUBLE_EQ(aln.identity(), 1.0);
  EXPECT_DOUBLE_EQ(aln.query_coverage(s.size()), 1.0);
  EXPECT_EQ(aln.query_begin, 0u);
  EXPECT_EQ(aln.query_end, s.size());
}

TEST(SwTest, EmptyInputsYieldEmptyAlignment) {
  EXPECT_EQ(align("", "ACGT").score, 0);
  EXPECT_EQ(align("ACGT", "").score, 0);
  EXPECT_EQ(align("", "").score, 0);
}

TEST(SwTest, DisjointAlphabetsDoNotAlign) {
  const auto aln = align("AAAAAAAA", "TTTTTTTT");
  // Local alignment of all-mismatch pairs is empty (score clamped at 0).
  EXPECT_EQ(aln.score, 0);
  EXPECT_EQ(aln.alignment_columns, 0u);
}

TEST(SwTest, SubstringIsFoundExactly) {
  const std::string target = random_dna(200, 2);
  const std::string query = target.substr(50, 40);
  const auto aln = align(query, target);
  EXPECT_EQ(aln.matches, 40u);
  EXPECT_EQ(aln.target_begin, 50u);
  EXPECT_EQ(aln.target_end, 90u);
  EXPECT_DOUBLE_EQ(aln.query_coverage(query.size()), 1.0);
}

TEST(SwTest, SingleMismatchCounted) {
  std::string a = random_dna(60, 3);
  std::string b = a;
  b[30] = b[30] == 'A' ? 'C' : 'A';
  const auto aln = align(a, b);
  EXPECT_EQ(aln.alignment_columns, 60u);
  EXPECT_EQ(aln.matches, 59u);
  EXPECT_NEAR(aln.identity(), 59.0 / 60.0, 1e-12);
}

TEST(SwTest, GapAlignmentBeatsTruncationForLongFlanks) {
  // Query = target with a 3-base deletion in the middle; the affine model
  // should bridge the gap rather than truncate the alignment.
  const std::string target = random_dna(100, 4);
  std::string query = target;
  query.erase(50, 3);
  const auto aln = align(query, target);
  EXPECT_EQ(aln.matches, query.size());
  EXPECT_EQ(aln.alignment_columns, query.size() + 3);  // 3 gap columns
  EXPECT_DOUBLE_EQ(aln.query_coverage(query.size()), 1.0);
}

TEST(SwTest, AffineGapPrefersOneLongGapOverManyShort) {
  // One 4-gap scores open + 3*extend = -24, better than four 1-gaps at
  // 4*open = -48.
  const Scoring s;
  EXPECT_GT(s.gap_open + 3 * s.gap_extend, 4 * s.gap_open);
  const std::string target = random_dna(80, 5);
  std::string query = target;
  query.erase(40, 4);
  const auto aln = align(query, target);
  // Full-length match with exactly 4 gap columns proves a single gap run.
  EXPECT_EQ(aln.matches, query.size());
  EXPECT_EQ(aln.alignment_columns, query.size() + 4);
}

TEST(SwTest, ScoreSymmetricUnderSwap) {
  const std::string a = random_dna(70, 6);
  const std::string b = random_dna(90, 7);
  EXPECT_EQ(align(a, b).score, align(b, a).score);
}

TEST(SwTest, ScoreNeverExceedsPerfect) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string a = random_dna(50, seed);
    const std::string b = random_dna(60, seed + 100);
    const auto aln = align(a, b);
    EXPECT_LE(aln.score, static_cast<int>(std::min(a.size(), b.size())) * Scoring{}.match);
    EXPECT_GE(aln.score, 0);
    EXPECT_LE(aln.matches, aln.alignment_columns);
  }
}

TEST(SwTest, TracebackBoundsAreConsistent) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    std::string a = random_dna(80, seed);
    std::string b = a;
    // sprinkle mutations
    b[10] = 'A';
    b[55] = 'T';
    b.erase(30, 2);
    const auto aln = align(a, b);
    EXPECT_LE(aln.query_begin, aln.query_end);
    EXPECT_LE(aln.target_begin, aln.target_end);
    EXPECT_LE(aln.query_end, a.size());
    EXPECT_LE(aln.target_end, b.size());
    // Columns cover at least the longer of the two spans.
    EXPECT_GE(aln.alignment_columns,
              std::max(aln.query_end - aln.query_begin, aln.target_end - aln.target_begin));
  }
}

class SwBandTest : public ::testing::TestWithParam<int> {};

TEST_P(SwBandTest, BandedMatchesFullWhenBandCoversAlignment) {
  const int band = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::string a = random_dna(120, seed);
    std::string b = a;
    b[40] = 'C';
    b[90] = 'G';  // mutations only: optimal path stays on the diagonal
    const auto full = align(a, b);
    const auto banded = align_banded(a, b, band);
    EXPECT_EQ(banded.score, full.score) << "band=" << band << " seed=" << seed;
    EXPECT_EQ(banded.matches, full.matches);
  }
}

INSTANTIATE_TEST_SUITE_P(Bands, SwBandTest, ::testing::Values(4, 16, 64));

TEST(SwBandTest2, NegativeBandFallsBackToFull) {
  const std::string a = random_dna(50, 8);
  const std::string b = random_dna(70, 9);
  EXPECT_EQ(align_banded(a, b, -1).score, align(a, b).score);
}

TEST(SwTest, BestStrandPicksReverseComplement) {
  const std::string target = random_dna(100, 10);
  const std::string query = seq::reverse_complement(target);
  const auto fwd_only = align(query, target);
  const auto best = align_best_strand(query, target);
  EXPECT_GT(best.score, fwd_only.score);
  EXPECT_EQ(best.matches, target.size());
}

TEST(SwTest, BestStrandPrefersForwardOnTies) {
  // A strand-symmetric palindrome scores equally both ways; forward wins.
  const std::string target = random_dna(60, 11);
  const auto best = align_best_strand(target, target);
  EXPECT_EQ(best.matches, target.size());
}

TEST(SwTest, EmptyAlignmentStatisticsAreZero) {
  const Alignment empty;
  EXPECT_DOUBLE_EQ(empty.identity(), 0.0);
  EXPECT_DOUBLE_EQ(empty.query_coverage(100), 0.0);
  EXPECT_DOUBLE_EQ(empty.query_coverage(0), 0.0);
}

TEST(SwTest, CustomScoringRespected) {
  Scoring s;
  s.match = 1;
  s.mismatch = -10;
  s.gap_open = -10;
  s.gap_extend = -10;
  const std::string a = "ACGTACGT";
  const auto aln = align(a, a, s);
  EXPECT_EQ(aln.score, 8);
}

}  // namespace
}  // namespace trinity::sw
