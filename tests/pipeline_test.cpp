// Integration tests: the full Trinity pipeline on simulated data, in both
// the original (shared-memory) and hybrid configurations, checked for
// reconstruction quality and for the paper's central equivalence claim.

#include <gtest/gtest.h>

#include <filesystem>

#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "sim/transcriptome.hpp"
#include "validate/validate.hpp"
#include "test_helpers.hpp"

namespace trinity::pipeline {
namespace {

using trinity::testing::TempDir;

PipelineOptions small_options(const std::string& work_dir, int nranks = 1) {
  PipelineOptions o;
  o.k = 15;  // small k keeps the test fast while exercising every stage
  o.nranks = nranks;
  o.work_dir = work_dir;
  o.model_threads_per_rank = 4;
  o.max_mem_reads = 500;
  o.trace_sample_interval_ms = 0;  // no background sampler in tests
  return o;
}

sim::Dataset tiny_dataset() {
  auto p = sim::preset("tiny");
  p.reads.error_rate = 0.002;
  // Generous coverage and a modest expression spread: with the default
  // log-normal sigma some genes draw almost no reads and are genuinely
  // unassemblable, which is realistic but not what this test measures.
  p.reads.coverage = 30.0;
  p.reads.expression_sigma = 0.7;
  return sim::simulate_dataset(p);
}

TEST(PipelineIntegration, SharedRunReconstructsMostTranscripts) {
  const TempDir dir("pipe_shared");
  const auto data = tiny_dataset();
  const auto result = run_pipeline(data.reads.reads, small_options(dir.str()));

  EXPECT_FALSE(result.contigs.empty());
  EXPECT_GT(result.components.num_components(), 0u);
  EXPECT_FALSE(result.transcripts.empty());
  EXPECT_EQ(result.assignments.size(), data.reads.reads.size());

  // Reconstruction quality: most reference genes recovered full length.
  validate::ValidationOptions vo;
  vo.prefilter_k = 15;
  const auto cmp = validate::compare_to_reference(
      result.transcripts, data.transcriptome.transcripts,
      data.transcriptome.gene_of_transcript, vo);
  const double gene_rate = static_cast<double>(cmp.full_length_genes) /
                           static_cast<double>(data.transcriptome.genes.size());
  EXPECT_GT(gene_rate, 0.6) << "recovered " << cmp.full_length_genes << " of "
                            << data.transcriptome.genes.size() << " genes full-length";
}

TEST(PipelineIntegration, StageFilesAreWritten) {
  const TempDir dir("pipe_files");
  const auto data = tiny_dataset();
  run_pipeline(data.reads.reads, small_options(dir.str()));
  for (const auto* name :
       {"reads.fa", "kmers.bin", "inchworm.fa", "bowtie.sam", "readsToComponents.out.tsv",
        "Trinity.fa"}) {
    EXPECT_TRUE(std::filesystem::exists(dir.file(name))) << name;
  }
}

TEST(PipelineIntegration, TraceCoversEveryStage) {
  const TempDir dir("pipe_trace");
  const auto data = tiny_dataset();
  const auto result = run_pipeline(data.reads.reads, small_options(dir.str()));
  std::vector<std::string> phases;
  for (const auto& r : result.trace) phases.push_back(r.name);
  for (const auto* expected :
       {"jellyfish", "inchworm", "chrysalis.bowtie", "chrysalis.graph_from_fasta",
        "chrysalis.reads_to_transcripts", "butterfly"}) {
    EXPECT_NE(std::find(phases.begin(), phases.end(), expected), phases.end()) << expected;
  }
  EXPECT_GT(result.chrysalis_virtual_seconds(), 0.0);
}

class PipelineHybrid : public ::testing::TestWithParam<int> {};

TEST_P(PipelineHybrid, HybridOutputMatchesSharedQuality) {
  const int nranks = GetParam();
  const TempDir dir_shared("pipe_h_shared");
  const TempDir dir_hybrid("pipe_h_hybrid");
  const auto data = tiny_dataset();

  const auto shared = run_pipeline(data.reads.reads, small_options(dir_shared.str(), 1));
  const auto hybrid = run_pipeline(data.reads.reads, small_options(dir_hybrid.str(), nranks));

  // Same seed and same algorithm: contigs are identical, so components and
  // transcripts must be identical too — the strongest form of the paper's
  // "equal quality" claim for our deterministic substrate.
  ASSERT_EQ(hybrid.contigs.size(), shared.contigs.size());
  for (std::size_t i = 0; i < shared.contigs.size(); ++i) {
    EXPECT_EQ(hybrid.contigs[i].bases, shared.contigs[i].bases);
  }
  EXPECT_EQ(hybrid.components.component_of, shared.components.component_of);
  ASSERT_EQ(hybrid.transcripts.size(), shared.transcripts.size());
  for (std::size_t i = 0; i < shared.transcripts.size(); ++i) {
    EXPECT_EQ(hybrid.transcripts[i].bases, shared.transcripts[i].bases);
  }
  // Hybrid timing populated per rank.
  EXPECT_EQ(hybrid.gff_timing.loop1.seconds.size(), static_cast<std::size_t>(nranks));
  EXPECT_EQ(hybrid.r2t_timing.main_loop.seconds.size(), static_cast<std::size_t>(nranks));
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, PipelineHybrid, ::testing::Values(2, 4));

TEST(PipelineIntegration, RunSeedPerturbsOutputSlightly) {
  // Models the paper's repeated-run validation: different seeds give
  // slightly different but comparable outputs.
  const TempDir dir_a("pipe_seed_a");
  const TempDir dir_b("pipe_seed_b");
  const auto data = tiny_dataset();

  auto oa = small_options(dir_a.str());
  oa.run_seed = 1;
  auto ob = small_options(dir_b.str());
  ob.run_seed = 2;
  const auto a = run_pipeline(data.reads.reads, oa);
  const auto b = run_pipeline(data.reads.reads, ob);

  ASSERT_FALSE(a.transcripts.empty());
  ASSERT_FALSE(b.transcripts.empty());
  const double ratio = static_cast<double>(a.transcripts.size()) /
                       static_cast<double>(b.transcripts.size());
  EXPECT_NEAR(ratio, 1.0, 0.5);
}

TEST(PipelineIntegration, RejectsBadRankCount) {
  const TempDir dir("pipe_bad");
  EXPECT_THROW(run_pipeline({}, [&] {
                 auto o = small_options(dir.str());
                 o.nranks = 0;
                 return o;
               }()),
               std::invalid_argument);
}

TEST(PipelineIntegration, AlternativeStrategiesMatchDefaultOutput) {
  // Full pipeline with every future-work / alternative knob enabled must
  // reconstruct exactly the same transcripts as the published design —
  // strategies change scheduling and I/O, never results.
  const TempDir dir_default("pipe_strat_a");
  const TempDir dir_variant("pipe_strat_b");
  const auto data = tiny_dataset();

  const auto base = run_pipeline(data.reads.reads, small_options(dir_default.str(), 3));

  auto variant_options = small_options(dir_variant.str(), 3);
  variant_options.gff_distribution = chrysalis::Distribution::kDynamic;
  variant_options.gff_hybrid_setup = true;
  variant_options.r2t_strategy = chrysalis::R2TStrategy::kMasterSlave;
  variant_options.r2t_output_mode = chrysalis::R2TOutputMode::kCollective;
  variant_options.bowtie_split = align::BowtieSplit::kReads;
  const auto variant = run_pipeline(data.reads.reads, variant_options);

  EXPECT_EQ(variant.components.component_of, base.components.component_of);
  ASSERT_EQ(variant.transcripts.size(), base.transcripts.size());
  for (std::size_t i = 0; i < base.transcripts.size(); ++i) {
    EXPECT_EQ(variant.transcripts[i].bases, base.transcripts[i].bases);
  }
}

TEST(PipelineIntegration, ButterflyReconciliationKnobsApply) {
  const TempDir dir("pipe_reconcile");
  const auto data = tiny_dataset();
  auto options = small_options(dir.str());
  options.butterfly_min_node_support = 1;
  options.butterfly_require_paired_support = true;
  const auto result = run_pipeline(data.reads.reads, options);
  // Reconciliation can only drop transcripts, never corrupt them; quality
  // must stay high on clean simulated data.
  EXPECT_FALSE(result.transcripts.empty());
  validate::ValidationOptions vo;
  vo.prefilter_k = 15;
  const auto cmp = validate::compare_to_reference(
      result.transcripts, data.transcriptome.transcripts,
      data.transcriptome.gene_of_transcript, vo);
  EXPECT_GT(cmp.full_length_genes, data.transcriptome.genes.size() / 2);
}

TEST(PipelineIntegration, RunFromFileMatchesInMemory) {
  const TempDir dir_a("pipe_file_a");
  const TempDir dir_b("pipe_file_b");
  const auto data = tiny_dataset();
  seq::write_fasta(dir_a.file("input.fa"), data.reads.reads);

  const auto from_file =
      run_pipeline_from_file(dir_a.file("input.fa"), small_options(dir_a.str()));
  const auto in_memory = run_pipeline(data.reads.reads, small_options(dir_b.str()));
  ASSERT_EQ(from_file.transcripts.size(), in_memory.transcripts.size());
  for (std::size_t i = 0; i < in_memory.transcripts.size(); ++i) {
    EXPECT_EQ(from_file.transcripts[i].bases, in_memory.transcripts[i].bases);
  }
}

}  // namespace
}  // namespace trinity::pipeline
