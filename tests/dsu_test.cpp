// Tests for the distributed union-find behind owner-computes
// GraphFromFasta: MinUnionFind invariants, the hash ownership map, and the
// core property — distributed_components over scattered edge sets is
// byte-identical to the sequential cluster_contigs at every rank count.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "chrysalis/components.hpp"
#include "chrysalis/dsu.hpp"
#include "simpi/context.hpp"

namespace trinity::chrysalis {
namespace {

TEST(MinUnionFindTest, SingletonsAreTheirOwnRoots) {
  MinUnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(MinUnionFindTest, RootIsAlwaysTheSmallestElement) {
  MinUnionFind uf(8);
  EXPECT_TRUE(uf.unite(7, 3));
  EXPECT_EQ(uf.find(7), 3);
  EXPECT_TRUE(uf.unite(3, 5));
  EXPECT_EQ(uf.find(5), 3);
  // Joining through the larger side must still surface the global minimum.
  EXPECT_TRUE(uf.unite(5, 1));
  for (const std::int32_t v : {1, 3, 5, 7}) EXPECT_EQ(uf.find(v), 1);
  EXPECT_FALSE(uf.unite(7, 1));  // already one set
  EXPECT_EQ(uf.num_sets(), 5u);  // {1,3,5,7} + four singletons
}

TEST(MinUnionFindTest, ChainCompressesToTheMinimum) {
  constexpr std::int32_t kN = 300;
  MinUnionFind uf(kN);
  for (std::int32_t i = kN - 1; i > 0; --i) EXPECT_TRUE(uf.unite(i, i - 1));
  EXPECT_EQ(uf.num_sets(), 1u);
  for (std::int32_t i = 0; i < kN; ++i) EXPECT_EQ(uf.find(i), 0);
}

TEST(DsuOwnerTest, OwnersAreInRangeAndSpreadAcrossRanks) {
  for (const int nranks : {1, 2, 3, 5, 8}) {
    std::vector<int> hits(static_cast<std::size_t>(nranks), 0);
    for (std::int32_t v = 0; v < 512; ++v) {
      const int owner = dsu_owner(v, nranks);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, nranks);
      EXPECT_EQ(owner, dsu_owner(v, nranks));  // deterministic
      ++hits[static_cast<std::size_t>(owner)];
    }
    // splitmix64 over 512 consecutive ids must not starve any rank.
    for (const int h : hits) EXPECT_GT(h, 0);
  }
}

/// component_of plus the component list must agree exactly.
void expect_identical(const ComponentSet& got, const ComponentSet& want) {
  ASSERT_EQ(got.component_of, want.component_of);
  ASSERT_EQ(got.num_components(), want.num_components());
  for (std::size_t c = 0; c < want.components.size(); ++c) {
    EXPECT_EQ(got.components[c].id, want.components[c].id);
    EXPECT_EQ(got.components[c].contig_ids, want.components[c].contig_ids);
  }
}

/// Runs distributed_components at `nranks` with `all` scattered round-robin
/// and asserts every rank returned the sequential cluster_contigs answer.
void check_matches_sequential(int nranks, std::size_t num_contigs,
                              const std::vector<ContigPair>& all) {
  const auto want = cluster_contigs(num_contigs, all);
  std::vector<ComponentSet> per_rank(static_cast<std::size_t>(nranks));
  simpi::run(nranks, [&](simpi::Context& ctx) {
    std::vector<ContigPair> mine;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(nranks)) == ctx.rank()) {
        mine.push_back(all[i]);
      }
    }
    per_rank[static_cast<std::size_t>(ctx.rank())] =
        distributed_components(ctx, num_contigs, mine);
  });
  for (const auto& got : per_rank) expect_identical(got, want);
}

TEST(DistributedComponentsTest, EmptyEdgeSetYieldsSingletons) {
  for (const int nranks : {1, 2, 4, 7}) check_matches_sequential(nranks, 9, {});
}

TEST(DistributedComponentsTest, NoContigsAtAll) {
  for (const int nranks : {1, 3}) check_matches_sequential(nranks, 0, {});
}

TEST(DistributedComponentsTest, ChainSpanningEveryRank) {
  std::vector<ContigPair> chain;
  for (std::int32_t i = 0; i + 1 < 64; ++i) chain.push_back({i, i + 1});
  for (int nranks = 1; nranks <= 8; ++nranks) {
    check_matches_sequential(nranks, 64, chain);
  }
}

TEST(DistributedComponentsTest, StarsDuplicatesAndSelfLoops) {
  std::vector<ContigPair> pairs;
  for (std::int32_t i = 1; i < 20; ++i) pairs.push_back({0, i});   // star at 0
  for (std::int32_t i = 41; i < 50; ++i) pairs.push_back({40, i});  // star at 40
  pairs.push_back({0, 5});    // duplicate
  pairs.push_back({5, 0});    // reversed duplicate
  pairs.push_back({33, 33});  // self loop
  for (int nranks = 1; nranks <= 8; ++nranks) {
    check_matches_sequential(nranks, 55, pairs);
  }
}

TEST(DistributedComponentsTest, RandomEdgeSetsMatchSequentialAtEveryRankCount) {
  std::mt19937 rng(20260808);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 40 + static_cast<std::size_t>(round) * 37;
    std::uniform_int_distribution<std::int32_t> vertex(0, static_cast<std::int32_t>(n) - 1);
    std::vector<ContigPair> pairs(n * 2);
    for (auto& p : pairs) p = {vertex(rng), vertex(rng)};
    for (int nranks = 1; nranks <= 8; ++nranks) {
      check_matches_sequential(nranks, n, pairs);
    }
  }
}

TEST(DistributedComponentsTest, ResultIsIndependentOfEdgePlacement) {
  // The same global edge set, dealt to ranks three different ways, must
  // produce the same clustering (owner routing makes placement irrelevant).
  std::mt19937 rng(7);
  constexpr std::size_t kN = 120;
  std::uniform_int_distribution<std::int32_t> vertex(0, kN - 1);
  std::vector<ContigPair> all(180);
  for (auto& p : all) p = {vertex(rng), vertex(rng)};
  const auto want = cluster_contigs(kN, all);
  for (const int scheme : {0, 1, 2}) {
    std::vector<ComponentSet> per_rank(4);
    simpi::run(4, [&](simpi::Context& ctx) {
      std::vector<ContigPair> mine;
      for (std::size_t i = 0; i < all.size(); ++i) {
        const int home = scheme == 0 ? static_cast<int>(i % 4)
                         : scheme == 1
                             ? static_cast<int>(i * 4 / all.size())  // contiguous blocks
                             : 2;                                    // all on one rank
        if (home == ctx.rank()) mine.push_back(all[i]);
      }
      per_rank[static_cast<std::size_t>(ctx.rank())] =
          distributed_components(ctx, kN, mine);
    });
    for (const auto& got : per_rank) expect_identical(got, want);
  }
}

TEST(DistributedComponentsTest, StatsCountRoutedEdges) {
  std::vector<ContigPair> chain;
  for (std::int32_t i = 0; i + 1 < 32; ++i) chain.push_back({i, i + 1});
  std::vector<DsuStats> stats(4);
  simpi::run(4, [&](simpi::Context& ctx) {
    std::vector<ContigPair> mine;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (static_cast<int>(i % 4) == ctx.rank()) mine.push_back(chain[i]);
    }
    distributed_components(ctx, 32, mine, &stats[static_cast<std::size_t>(ctx.rank())]);
  });
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
  int rounds = 0;
  for (const auto& s : stats) {
    edges += s.edges_routed;
    bytes += s.edge_bytes_routed;
    rounds = std::max(rounds, s.rounds);
  }
  // A 4-rank chain cannot resolve without at least one boundary exchange,
  // and the byte counter is defined as sizeof(ContigPair) per routed edge.
  EXPECT_GE(rounds, 1);
  EXPECT_GT(edges, 0u);
  EXPECT_EQ(bytes, edges * sizeof(ContigPair));
}

TEST(DistributedComponentsTest, OutOfRangePairThrows) {
  simpi::run(1, [&](simpi::Context& ctx) {
    EXPECT_THROW(distributed_components(ctx, 4, {{0, 4}}), std::out_of_range);
    EXPECT_THROW(distributed_components(ctx, 4, {{-1, 2}}), std::out_of_range);
  });
}

}  // namespace
}  // namespace trinity::chrysalis
