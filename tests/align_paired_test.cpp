// Tests for SAM parsing and paired-end alignment.

#include <gtest/gtest.h>

#include <fstream>

#include "align/aligner.hpp"
#include "align/paired.hpp"
#include "align/sam_io.hpp"
#include "seq/dna.hpp"
#include "test_helpers.hpp"

namespace trinity::align {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

std::vector<seq::Sequence> make_contigs(std::size_t n, std::size_t len, std::uint64_t seed) {
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({"contig" + std::to_string(i), random_dna(len, seed + i)});
  }
  return out;
}

// --- SAM round trip ------------------------------------------------------------------

TEST(SamIoTest, RoundTripsThroughWriteSam) {
  const TempDir dir("samio");
  const auto contigs = make_contigs(3, 400, 50);
  const ContigIndex index(contigs, AlignerOptions{});
  const SeedExtendAligner aligner(index);

  std::vector<seq::Sequence> reads{
      {"hit1", contigs[0].bases.substr(10, 70)},
      {"hit2", seq::reverse_complement(contigs[2].bases.substr(100, 70))},
      {"miss", random_dna(70, 777)}};
  const auto records = aligner.align_all(reads);
  write_sam(dir.file("x.sam"), records, contigs);

  const auto parsed = read_sam(dir.file("x.sam"));
  ASSERT_EQ(parsed.references.size(), 3u);
  EXPECT_EQ(parsed.references[1].name, "contig1");
  ASSERT_EQ(parsed.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed.records[i].read_name, records[i].read_name);
    EXPECT_EQ(parsed.records[i].aligned(), records[i].aligned());
    if (!records[i].aligned()) continue;
    EXPECT_EQ(parsed.records[i].target_name, records[i].target_name);
    EXPECT_EQ(parsed.records[i].pos, records[i].pos);
    EXPECT_EQ(parsed.records[i].reverse_strand, records[i].reverse_strand);
    EXPECT_EQ(parsed.records[i].mismatches, records[i].mismatches);
    EXPECT_EQ(parsed.records[i].read_length, records[i].read_length);
  }
}

TEST(SamIoTest, UnknownReferenceThrows) {
  const TempDir dir("sambad");
  std::ofstream(dir.file("bad.sam"))
      << "@HD\tVN:1.6\n@SQ\tSN:known\tLN:100\nr1\t0\tmystery\t1\t255\t50M\t*\t0\t0\t*\t*\n";
  EXPECT_THROW(read_sam(dir.file("bad.sam")), std::runtime_error);
}

TEST(SamIoTest, AlignmentBeyondReferenceEndThrows) {
  const TempDir dir("samlong");
  std::ofstream(dir.file("bad.sam"))
      << "@SQ\tSN:c\tLN:60\nr1\t0\tc\t40\t255\t50M\t*\t0\t0\t*\t*\n";
  EXPECT_THROW(read_sam(dir.file("bad.sam")), std::runtime_error);
}

TEST(SamIoTest, MalformedRowThrows) {
  const TempDir dir("samrow");
  std::ofstream(dir.file("bad.sam")) << "@SQ\tSN:c\tLN:60\nr1\tnot_a_flag\n";
  EXPECT_THROW(read_sam(dir.file("bad.sam")), std::runtime_error);
}

TEST(SamIoTest, MissingFileThrows) {
  EXPECT_THROW(read_sam("/no/such/file.sam"), std::runtime_error);
}

// --- paired alignment ------------------------------------------------------------------

struct PairedFixture {
  std::vector<seq::Sequence> contigs = make_contigs(2, 600, 90);
  ContigIndex index{contigs, AlignerOptions{}};
  SeedExtendAligner aligner{index};
};

TEST(PairedTest, ProperPairDetected) {
  PairedFixture f;
  // FR fragment of span 300 on contig 0.
  const seq::Sequence mate1{"f/1", f.contigs[0].bases.substr(100, 70)};
  const seq::Sequence mate2{"f/2",
                            seq::reverse_complement(f.contigs[0].bases.substr(330, 70))};
  const auto pair = align_pair(f.aligner, mate1, mate2);
  EXPECT_TRUE(pair.proper);
  EXPECT_EQ(pair.insert, 300u);
  EXPECT_EQ(pair.mate1.target_name, "contig0");
}

TEST(PairedTest, SameStrandIsNotProper) {
  PairedFixture f;
  const seq::Sequence mate1{"f/1", f.contigs[0].bases.substr(100, 70)};
  const seq::Sequence mate2{"f/2", f.contigs[0].bases.substr(330, 70)};  // forward too
  const auto pair = align_pair(f.aligner, mate1, mate2);
  EXPECT_FALSE(pair.proper);
  EXPECT_TRUE(pair.mate1.aligned());
  EXPECT_TRUE(pair.mate2.aligned());
}

TEST(PairedTest, DifferentTargetsAreNotProper) {
  PairedFixture f;
  const seq::Sequence mate1{"f/1", f.contigs[0].bases.substr(100, 70)};
  const seq::Sequence mate2{"f/2",
                            seq::reverse_complement(f.contigs[1].bases.substr(330, 70))};
  EXPECT_FALSE(align_pair(f.aligner, mate1, mate2).proper);
}

TEST(PairedTest, InsertWindowEnforced) {
  PairedFixture f;
  const seq::Sequence mate1{"f/1", f.contigs[0].bases.substr(0, 70)};
  const seq::Sequence mate2{"f/2",
                            seq::reverse_complement(f.contigs[0].bases.substr(520, 70))};
  PairingOptions tight;
  tight.max_insert = 300;  // the real span is ~590
  EXPECT_FALSE(align_pair(f.aligner, mate1, mate2, tight).proper);
  PairingOptions loose;
  loose.max_insert = 700;
  EXPECT_TRUE(align_pair(f.aligner, mate1, mate2, loose).proper);
}

TEST(PairedTest, RfOrientationRejected) {
  PairedFixture f;
  // Reverse mate UPSTREAM of forward mate: an RF (outward-facing) pair.
  const seq::Sequence mate1{"f/1",
                            seq::reverse_complement(f.contigs[0].bases.substr(100, 70))};
  const seq::Sequence mate2{"f/2", f.contigs[0].bases.substr(330, 70)};
  EXPECT_FALSE(align_pair(f.aligner, mate1, mate2).proper);
}

TEST(PairedTest, AlignPairsGroupsByFragmentName) {
  PairedFixture f;
  std::vector<seq::Sequence> reads{
      {"a/1", f.contigs[0].bases.substr(50, 70)},
      {"a/2", seq::reverse_complement(f.contigs[0].bases.substr(300, 70))},
      {"b/1", f.contigs[1].bases.substr(10, 70)},  // mate 2 missing
      {"loner", f.contigs[1].bases.substr(200, 70)}};
  const auto pairs = align_pairs(f.aligner, reads);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_TRUE(pairs[0].proper);
  EXPECT_FALSE(pairs[1].proper);  // half pair
  EXPECT_TRUE(pairs[1].mate1.aligned());
  EXPECT_FALSE(pairs[2].proper);  // unpaired name
  EXPECT_TRUE(pairs[2].mate1.aligned());
  EXPECT_NEAR(proper_pair_rate(pairs), 1.0 / 3.0, 1e-12);
}

TEST(PairedTest, ProperPairRateEmptyIsZero) {
  EXPECT_EQ(proper_pair_rate({}), 0.0);
}

}  // namespace
}  // namespace trinity::align
