// Tests for the future-work extensions of Chrysalis: dynamic
// (self-scheduled) distribution, cooperative hybrid setup, collective R2T
// output, and the read-split Bowtie mode.

#include <gtest/gtest.h>

#include <fstream>

#include "align/mpi_bowtie.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "kmer/counter.hpp"
#include "seq/fasta.hpp"
#include "simpi/context.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;
using trinity::testing::tile_reads;

constexpr int kTestK = 15;

struct Scenario {
  std::vector<seq::Sequence> contigs;
  std::vector<seq::Sequence> reads;
};

Scenario build_scenario(std::size_t n_pairs, std::size_t n_single, std::uint64_t seed) {
  Scenario s;
  util::Rng rng(seed);
  auto add_reads = [&](const std::string& source) {
    auto reads = tile_reads(source, 50, 4, "r" + std::to_string(s.reads.size()) + "_");
    s.reads.insert(s.reads.end(), reads.begin(), reads.end());
  };
  for (std::size_t p = 0; p < n_pairs; ++p) {
    const std::string shared = random_dna(60, rng());
    seq::Sequence a{"a" + std::to_string(p),
                    random_dna(80, rng()) + shared + random_dna(80, rng())};
    seq::Sequence b{"b" + std::to_string(p),
                    random_dna(80, rng()) + shared + random_dna(80, rng())};
    add_reads(a.bases);
    add_reads(b.bases);
    s.contigs.push_back(std::move(a));
    s.contigs.push_back(std::move(b));
  }
  for (std::size_t i = 0; i < n_single; ++i) {
    seq::Sequence c{"solo" + std::to_string(i), random_dna(220, rng())};
    add_reads(c.bases);
    s.contigs.push_back(std::move(c));
  }
  return s;
}

kmer::KmerCounter make_counter(const std::vector<seq::Sequence>& reads) {
  kmer::CounterOptions o;
  o.k = kTestK;
  kmer::KmerCounter counter(o);
  counter.add_sequences(reads);
  return counter;
}

GraphFromFastaOptions gff_options() {
  GraphFromFastaOptions o;
  o.k = kTestK;
  o.model_threads_per_rank = 4;
  return o;
}

// --- dynamic distribution ----------------------------------------------------------

class GffDynamic : public ::testing::TestWithParam<int> {};

TEST_P(GffDynamic, MatchesSharedMemoryRun) {
  const int nranks = GetParam();
  const auto s = build_scenario(3, 4, 71);
  const auto counter = make_counter(s.reads);
  const auto expected = run_shared(s.contigs, counter, gff_options());

  auto options = gff_options();
  options.distribution = Distribution::kDynamic;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_EQ(result.welds, expected.welds);
    EXPECT_EQ(result.pairs, expected.pairs);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
    EXPECT_EQ(result.timing.loop1.seconds.size(), static_cast<std::size_t>(nranks));
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, GffDynamic, ::testing::Values(1, 2, 3, 4, 6));

TEST(GffDynamic2, RepeatedRunsInOneWorldAreConsistent) {
  // The dynamic counters must reset correctly between run_hybrid calls in
  // the same world.
  const auto s = build_scenario(2, 2, 73);
  const auto counter = make_counter(s.reads);
  const auto expected = run_shared(s.contigs, counter, gff_options());
  auto options = gff_options();
  options.distribution = Distribution::kDynamic;
  simpi::run(3, [&](simpi::Context& ctx) {
    for (int round = 0; round < 3; ++round) {
      const auto result = run_hybrid(ctx, s.contigs, counter, options);
      EXPECT_EQ(result.components.component_of, expected.components.component_of)
          << "round " << round;
    }
  });
}

TEST(GffDynamic2, ChargesRmaCommunication) {
  const auto s = build_scenario(1, 2, 79);
  const auto counter = make_counter(s.reads);
  auto options = gff_options();
  options.distribution = Distribution::kDynamic;
  options.chunk_size = 1;  // many claims -> visible RMA cost
  simpi::run(2, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_GT(result.timing.comm_seconds, 0.0);
  });
}

// --- cooperative hybrid setup --------------------------------------------------------

class GffHybridSetup : public ::testing::TestWithParam<int> {};

TEST_P(GffHybridSetup, ProducesIdenticalComponents) {
  const int nranks = GetParam();
  const auto s = build_scenario(3, 3, 83);
  const auto counter = make_counter(s.reads);
  const auto expected = run_shared(s.contigs, counter, gff_options());
  auto options = gff_options();
  options.hybrid_setup = true;
  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result = run_hybrid(ctx, s.contigs, counter, options);
    EXPECT_EQ(result.welds, expected.welds);
    EXPECT_EQ(result.components.component_of, expected.components.component_of);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, GffHybridSetup, ::testing::Values(1, 2, 4, 6));

TEST(GffHybridSetupDetail, PartialMapsMergeToSerialMap) {
  const auto s = build_scenario(2, 3, 89);
  const auto serial = detail::contig_kmer_multiplicity(s.contigs, kTestK);
  simpi::run(4, [&](simpi::Context& ctx) {
    const auto merged = detail::hybrid_contig_kmer_multiplicity(ctx, s.contigs, kTestK);
    EXPECT_EQ(merged.size(), serial.size());
    for (const auto& [code, count] : serial) {
      const auto it = merged.find(code);
      ASSERT_NE(it, merged.end());
      EXPECT_EQ(it->second, count);
    }
  });
}

// --- collective R2T output ------------------------------------------------------------

TEST(R2TCollectiveOutput, FileMatchesConcatScheme) {
  const TempDir dir_a("r2t_coll_a");
  const TempDir dir_b("r2t_coll_b");
  util::Rng rng(97);
  std::vector<seq::Sequence> contigs;
  std::vector<seq::Sequence> reads;
  for (int c = 0; c < 4; ++c) {
    contigs.push_back({"c" + std::to_string(c), random_dna(300, rng())});
    for (int r = 0; r < 10; ++r) {
      const auto pos = rng.uniform_below(240);
      reads.push_back({"r" + std::to_string(c * 10 + r),
                       contigs.back().bases.substr(pos, 60)});
    }
  }
  const auto components = cluster_contigs(contigs.size(), {});
  seq::write_fasta(dir_a.file("reads.fa"), reads);
  seq::write_fasta(dir_b.file("reads.fa"), reads);

  ReadsToTranscriptsOptions options;
  options.k = kTestK;
  options.max_mem_reads = 7;
  options.model_threads_per_rank = 4;

  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  std::string concat_content;
  std::string collective_content;
  simpi::run(3, [&](simpi::Context& ctx) {
    auto concat_opts = options;
    concat_opts.output_mode = R2TOutputMode::kPerRankConcat;
    const auto a =
        run_hybrid(ctx, contigs, components, dir_a.file("reads.fa"), concat_opts, dir_a.str());
    auto coll_opts = options;
    coll_opts.output_mode = R2TOutputMode::kCollective;
    const auto b =
        run_hybrid(ctx, contigs, components, dir_b.file("reads.fa"), coll_opts, dir_b.str());
    if (ctx.rank() == 0) {
      concat_content = read_file(a.merged_output_path);
      collective_content = read_file(b.merged_output_path);
    }
    // Assignments identical regardless of output mode.
    ASSERT_EQ(a.assignments.size(), b.assignments.size());
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
      EXPECT_EQ(a.assignments[i].component, b.assignments[i].component);
    }
  });
  EXPECT_FALSE(concat_content.empty());
  EXPECT_EQ(collective_content, concat_content);
}

}  // namespace
}  // namespace trinity::chrysalis

// --- read-split Bowtie -------------------------------------------------------------------

namespace trinity::align {
namespace {

using trinity::testing::random_dna;

class BowtieReadSplit : public ::testing::TestWithParam<int> {};

TEST_P(BowtieReadSplit, MatchesSerialAligner) {
  const int nranks = GetParam();
  util::Rng rng(7);
  std::vector<seq::Sequence> contigs;
  for (int i = 0; i < 10; ++i) {
    contigs.push_back({"contig" + std::to_string(i), random_dna(400, rng())});
  }
  std::vector<seq::Sequence> reads;
  for (int i = 0; i < 90; ++i) {
    const auto c = rng.uniform_below(contigs.size());
    const auto pos = rng.uniform_below(contigs[c].bases.size() - 80);
    reads.push_back({"r" + std::to_string(i), contigs[c].bases.substr(pos, 80)});
  }
  reads.push_back({"alien", random_dna(80, 424242)});

  const AlignerOptions options;
  const ContigIndex index(contigs, options);
  const SeedExtendAligner serial(index);
  const auto expected = serial.align_all(reads);

  simpi::run(nranks, [&](simpi::Context& ctx) {
    const auto result =
        distributed_bowtie(ctx, contigs, reads, options, BowtieSplit::kReads);
    if (ctx.rank() != 0) return;
    ASSERT_EQ(result.records.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.records[i].aligned(), expected[i].aligned()) << "read " << i;
      if (!expected[i].aligned()) continue;
      EXPECT_EQ(result.records[i].target_name, expected[i].target_name) << "read " << i;
      EXPECT_EQ(result.records[i].pos, expected[i].pos) << "read " << i;
      EXPECT_EQ(result.records[i].mismatches, expected[i].mismatches) << "read " << i;
    }
    // No serial split phase in read-split mode.
    EXPECT_EQ(result.timing.split_seconds, 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, BowtieReadSplit, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace trinity::align
