// Deadlines, the watchdog, and job-level retry/quarantine: unsatisfiable
// deadlines are rejected at submission with a typed reason, running jobs
// past their deadline (or making no checkpoint progress) are cancelled
// with typed outcomes, transient failures that escape the in-run retry
// driver requeue with backoff, and a poison job is quarantined after
// exactly its attempt budget — all of it visible in the journal, the
// terminal run reports, the accounting ledger and the aggregate view.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/fault_plan.hpp"
#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "serve/journal.hpp"
#include "serve/server.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace trinity::serve {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::string& shared_reads_path() {
  static const std::string path = [] {
    auto p = sim::preset("tiny");
    p.reads.coverage = 25.0;
    p.reads.expression_sigma = 0.7;
    const auto data = sim::simulate_dataset(p);
    static TempDir dir("serve_wd_reads");
    const std::string reads = dir.file("reads.fa");
    seq::write_fasta(reads, data.reads.reads);
    return reads;
  }();
  return path;
}

JobSpec make_spec(const std::string& tenant, const std::string& job_id) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.job_id = job_id;
  spec.reads_path = shared_reads_path();
  spec.options.k = 15;
  spec.options.nranks = 2;
  spec.options.omp_threads = 1;
  spec.options.model_threads_per_rank = 4;
  spec.options.trace_sample_interval_ms = 0;
  return spec;
}

JobStatus status_of(const JobServer& server, const std::string& job_id) {
  for (const auto& job : server.jobs()) {
    if (job.job_id == job_id) return job;
  }
  ADD_FAILURE() << "no job " << job_id;
  return {};
}

int count_events(const std::string& journal_path, const std::string& type,
                 const std::string& job_id) {
  int n = 0;
  for (const JournalEvent& ev : JobJournal::replay(journal_path).events) {
    if (ev.event == type && ev.job_id == job_id) ++n;
  }
  return n;
}

/// Server options with a fast watchdog and near-zero retry backoff, so the
/// tests measure behavior rather than sleeps.
ServerOptions fast_server(const std::string& root) {
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root;
  options.watchdog_poll_s = 0.02;
  options.job_retry = checkpoint::RetryPolicy{3, 0.01, 2.0, 0.05, 0.2};
  return options;
}

// --- deadline admission -----------------------------------------------------------

TEST(Deadline, NegativeDeadlineIsPermanentReject) {
  const TempDir root("serve_wd_neg");
  JobServer server(fast_server(root.str()));
  JobSpec spec = make_spec("t", "past-due");
  spec.deadline_s = -1.0;
  const AdmitResult result = server.submit(std::move(spec));
  EXPECT_EQ(result.code, AdmitCode::kInvalidSpec);
  EXPECT_NE(result.detail.find("deadline-s"), std::string::npos);
  EXPECT_NE(result.detail.find("past"), std::string::npos);
}

TEST(Deadline, BelowPlausibleMinimumIsPermanentReject) {
  const TempDir root("serve_wd_implausible");
  ServerOptions options = fast_server(root.str());
  options.min_plausible_runtime_s = 0.05;
  JobServer server(options);
  JobSpec spec = make_spec("t", "blink");
  spec.deadline_s = 0.001;  // no assembly finishes in a millisecond
  const AdmitResult result = server.submit(std::move(spec));
  EXPECT_EQ(result.code, AdmitCode::kInvalidSpec);
  EXPECT_NE(result.detail.find("minimum plausible runtime"), std::string::npos);

  // A plausible deadline with the same spec is admitted and completes.
  JobSpec ok = make_spec("t", "plausible");
  ok.deadline_s = 120.0;
  ASSERT_TRUE(server.submit(std::move(ok)).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "plausible").state, JobState::kCompleted);
}

// --- watchdog kills ---------------------------------------------------------------

TEST(Watchdog, DeadlineExceededKillsRunningJob) {
  const TempDir root("serve_wd_deadline");
  JobServer server(fast_server(root.str()));

  JobSpec spec = make_spec("t", "overdue");
  spec.deadline_s = 0.3;
  spec.options.hang_stage = "inchworm";  // wedge well past the deadline
  spec.options.hang_seconds = 60.0;
  ASSERT_TRUE(server.submit(std::move(spec)).accepted());
  server.drain();

  const JobStatus status = status_of(server, "overdue");
  EXPECT_EQ(status.state, JobState::kKilled);
  EXPECT_EQ(status.outcome, JobOutcome::kDeadlineExceeded);
  EXPECT_EQ(status.attempts, 1);
  // Cancelled via the deadline token, not by waiting out the 60 s wedge.
  EXPECT_LT(status.run_seconds, 10.0);
  EXPECT_EQ(server.accounting().account("t").deadline_kills, 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "kill", "overdue"), 1);

  // The terminal report makes the kill visible to trinity_report.
  const util::Json report = util::Json::parse(
      slurp(status.work_dir + "/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("outcome").as_string(), "deadline_exceeded");
}

TEST(Watchdog, QueuedJobPastDeadlineDiesInQueue) {
  const TempDir root("serve_wd_queued");
  ServerOptions options = fast_server(root.str());
  options.total_ranks = 2;  // hog + waiter cannot run together
  JobServer server(options);

  JobSpec hog = make_spec("t-hog", "hog");
  hog.options.hang_stage = "inchworm";
  hog.options.hang_seconds = 1.2;  // holds the whole pool past the deadline
  ASSERT_TRUE(server.submit(std::move(hog)).accepted());

  JobSpec waiter = make_spec("t-wait", "waiter");
  waiter.deadline_s = 0.15;
  ASSERT_TRUE(server.submit(std::move(waiter)).accepted());
  server.drain();

  EXPECT_EQ(status_of(server, "hog").state, JobState::kCompleted);
  const JobStatus status = status_of(server, "waiter");
  EXPECT_EQ(status.state, JobState::kKilled);
  EXPECT_EQ(status.outcome, JobOutcome::kDeadlineExceeded);
  EXPECT_EQ(status.dispatches, 0);  // never wasted a lease
  EXPECT_NE(status.error.find("queued"), std::string::npos);
  EXPECT_EQ(server.accounting().account("t-wait").deadline_kills, 1);
}

TEST(Watchdog, HungJobIsCancelledWithinTimeoutBudget) {
  const TempDir root("serve_wd_hang");
  ServerOptions options = fast_server(root.str());
  options.hang_timeout_s = 0.4;
  JobServer server(options);

  JobSpec spec = make_spec("t", "wedged");
  spec.options.hang_stage = "inchworm";  // manifest stops advancing here
  spec.options.hang_seconds = 60.0;
  ASSERT_TRUE(server.submit(std::move(spec)).accepted());
  server.drain();

  const JobStatus status = status_of(server, "wedged");
  EXPECT_EQ(status.state, JobState::kKilled);
  EXPECT_EQ(status.outcome, JobOutcome::kHung);
  // Killed within ~2x hang_timeout_s (plus the pre-hang stages), not
  // after the 60 s wedge.
  EXPECT_LT(status.run_seconds, 10.0);
  EXPECT_EQ(server.accounting().account("t").hung_kills, 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "kill", "wedged"), 1);
  const util::Json report = util::Json::parse(
      slurp(status.work_dir + "/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("outcome").as_string(), "hung");
}

TEST(Watchdog, HealthyJobOutlivesHangDetection) {
  // A normal run commits stages faster than the timeout: no false kills.
  const TempDir root("serve_wd_healthy");
  ServerOptions options = fast_server(root.str());
  options.hang_timeout_s = 30.0;
  JobServer server(options);
  ASSERT_TRUE(server.submit(make_spec("t", "fine")).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "fine").state, JobState::kCompleted);
  EXPECT_EQ(server.accounting().account("t").hung_kills, 0);
}

// --- job-level retry and quarantine -----------------------------------------------

/// Transcript baseline from a fault-free server over the same spec.
const std::string& baseline_transcripts() {
  static const std::string baseline = [] {
    static TempDir root("serve_wd_ctl");
    ServerOptions options;
    options.total_ranks = 4;
    options.root_dir = root.str();
    JobServer server(options);
    EXPECT_TRUE(server.submit(make_spec("t", "ctl")).accepted());
    server.drain();
    return slurp(root.str() + "/t/ctl/Trinity.fa");
  }();
  return baseline;
}

TEST(JobRetry, TransientFailureRequeuesThenCompletes) {
  const std::string baseline = baseline_transcripts();
  ASSERT_FALSE(baseline.empty());

  const TempDir root("serve_wd_flaky");
  JobServer server(fast_server(root.str()));

  JobSpec spec = make_spec("t", "flaky");
  // One EIO on the job's own k-mer dump. Pre-arming shares the fire budget
  // across dispatches: the fault fires exactly once in the job's lifetime,
  // so the first dispatch fails and the second runs clean.
  spec.options.io_fault = io::IoFaultPlan::parse("write:*/t/flaky/kmers.bin:1:eio");
  spec.options.io_fault.arm();
  spec.options.retry.max_attempts = 1;  // the fault escapes the in-run driver
  ASSERT_TRUE(server.submit(std::move(spec)).accepted());
  server.drain();

  const JobStatus status = status_of(server, "flaky");
  EXPECT_EQ(status.state, JobState::kCompleted);
  EXPECT_EQ(status.attempts, 2);
  EXPECT_EQ(status.dispatches, 2);
  EXPECT_EQ(server.accounting().account("t").job_retries, 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "requeue", "flaky"), 1);
  EXPECT_EQ(count_events(root.str() + "/journal.jsonl", "complete", "flaky"), 1);

  // The retried job's transcripts are byte-identical to a fault-free run.
  EXPECT_EQ(slurp(root.str() + "/t/flaky/Trinity.fa"), baseline);
  const util::Json report = util::Json::parse(
      slurp(root.str() + "/t/flaky/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("attempts").as_int(), 2);
  EXPECT_EQ(report.at("outcome").as_string(), "completed");
}

TEST(JobRetry, PoisonJobQuarantinedAfterExactBudget) {
  const TempDir root("serve_wd_poison");
  JobServer server(fast_server(root.str()));

  JobSpec spec = make_spec("t", "poison");
  // Left unarmed, the plan re-arms fresh on every dispatch: the EIO fires
  // on each attempt — a genuinely poisonous job, not a flaky one.
  spec.options.io_fault = io::IoFaultPlan::parse("write:*/t/poison/kmers.bin:1:eio");
  spec.options.retry.max_attempts = 1;
  spec.max_attempts = 3;  // the "job-attempts" budget
  ASSERT_TRUE(server.submit(std::move(spec)).accepted());
  server.drain();

  const JobStatus status = status_of(server, "poison");
  EXPECT_EQ(status.state, JobState::kQuarantined);
  EXPECT_EQ(status.outcome, JobOutcome::kQuarantined);
  EXPECT_EQ(status.attempts, 3);    // exactly the budget, no more
  EXPECT_EQ(status.dispatches, 3);
  EXPECT_NE(status.error.find("kmers.bin"), std::string::npos);

  Accounting accounting = server.accounting();
  EXPECT_EQ(accounting.account("t").jobs_quarantined, 1);
  EXPECT_EQ(accounting.account("t").job_retries, 2);
  const std::string journal = root.str() + "/journal.jsonl";
  EXPECT_EQ(count_events(journal, "dispatch", "poison"), 3);
  EXPECT_EQ(count_events(journal, "requeue", "poison"), 2);
  EXPECT_EQ(count_events(journal, "quarantine", "poison"), 1);

  // Work dir preserved for diagnosis, terminal report written, and the id
  // permanently rejected on resubmission.
  EXPECT_TRUE(std::filesystem::exists(status.work_dir));
  const util::Json report = util::Json::parse(
      slurp(status.work_dir + "/" + pipeline::kReportFileName));
  EXPECT_EQ(report.at("outcome").as_string(), "quarantined");
  EXPECT_EQ(report.at("attempts").as_int(), 3);
  const AdmitResult again = server.submit(make_spec("t", "poison"));
  EXPECT_EQ(again.code, AdmitCode::kInvalidSpec);
  EXPECT_NE(again.detail.find("quarantined"), std::string::npos);
}

// --- admission feedback from measured RSS -----------------------------------------

TEST(AdmissionFeedback, MeasuredPeakReplacesDeclaredEstimate) {
  AdmissionController admission(8, 16, TenantQuota{}, {}, 0.0);
  JobSpec spec = make_spec("t", "j1");
  spec.rss_estimate_bytes = 1 << 20;  // declares 1 MiB

  // No history: the declared estimate is the charge.
  EXPECT_EQ(admission.effective_rss(spec), std::uint64_t{1} << 20);

  // The tenant's runs actually peak at 64 MiB: the EWMA takes over.
  admission.note_measured("t", std::uint64_t{64} << 20);
  EXPECT_EQ(admission.measured_rss_ewma("t"), std::uint64_t{64} << 20);
  EXPECT_GT(admission.effective_rss(spec), std::uint64_t{32} << 20);

  // New samples move the average smoothly, not in jumps.
  admission.note_measured("t", std::uint64_t{16} << 20);
  const std::uint64_t ewma = admission.measured_rss_ewma("t");
  EXPECT_LT(ewma, std::uint64_t{64} << 20);
  EXPECT_GT(ewma, std::uint64_t{16} << 20);

  // Zero samples (sampler off) teach nothing.
  admission.note_measured("t", 0);
  EXPECT_EQ(admission.measured_rss_ewma("t"), ewma);
}

TEST(AdmissionFeedback, EwmaIsClampedToTenantBudget) {
  // A history of oversized runs serializes the tenant (full-budget charge)
  // instead of starving it with an uncharitable > budget charge.
  TenantQuota quota;
  quota.rss_budget_bytes = std::uint64_t{32} << 20;
  AdmissionController admission(8, 16, quota, {}, 0.0);
  admission.note_measured("t", std::uint64_t{256} << 20);
  JobSpec spec = make_spec("t", "j1");
  spec.rss_estimate_bytes = 1 << 20;
  EXPECT_EQ(admission.effective_rss(spec), quota.rss_budget_bytes);
  EXPECT_TRUE(admission.has_running_headroom(spec));  // idle tenant still runs
}

// --- aggregate view ---------------------------------------------------------------

TEST(Aggregate, SurfacesRetriesQuarantinesAndKills) {
  // Minimal terminal reports shaped like write_terminal_report_locked's
  // output: the aggregate view must count attempts, retries, quarantines
  // and kills per tenant from artifacts alone.
  auto terminal = [](const std::string& tenant, const std::string& outcome,
                     int attempts, bool recovered) {
    util::Json report = util::Json::object();
    report.set("schema_version", pipeline::kReportSchemaVersion);
    report.set("generator", "trinity_serve");
    report.set("nranks", 2);
    report.set("model_threads_per_rank", 4);
    report.set("job_id", "j-" + outcome);
    report.set("tenant", tenant);
    report.set("preemptions", 0);
    report.set("attempts", attempts);
    report.set("outcome", outcome);
    report.set("recovered", recovered);
    report.set("stages_executed", util::Json::array());
    report.set("stages_resumed", util::Json::array());
    report.set("stage_retries", 0);
    report.set("io_retries", 0);
    report.set("phases", util::Json::array());
    report.set("comm", util::Json::array());
    return report;
  };
  const std::vector<util::Json> reports = {
      terminal("alice", "quarantined", 3, false),
      terminal("alice", "deadline_exceeded", 1, false),
      terminal("bob", "hung", 1, true),
  };
  const util::Json aggregate = pipeline::aggregate_run_reports(reports);
  ASSERT_EQ(aggregate.at("reports").as_int(), 3);
  for (const util::Json& row : aggregate.at("tenants").items()) {
    if (row.at("tenant").as_string() == "alice") {
      EXPECT_EQ(row.at("attempts").as_int(), 4);
      EXPECT_EQ(row.at("job_retries").as_int(), 2);
      EXPECT_EQ(row.at("quarantined").as_int(), 1);
      EXPECT_EQ(row.at("deadline_kills").as_int(), 1);
      EXPECT_EQ(row.at("hung_kills").as_int(), 0);
    } else {
      EXPECT_EQ(row.at("tenant").as_string(), "bob");
      EXPECT_EQ(row.at("hung_kills").as_int(), 1);
      EXPECT_EQ(row.at("recovered").as_int(), 1);
    }
  }

  // The table renderer shows the new columns without throwing.
  std::ostringstream table;
  pipeline::summarize_aggregate(aggregate, table);
  EXPECT_NE(table.str().find("quar"), std::string::npos);
}

}  // namespace
}  // namespace trinity::serve
