// Tests for the work-distribution strategies: the paper's chunked
// round-robin (Figure 3 semantics) and the discarded block pre-allocation.

#include <gtest/gtest.h>

#include <set>

#include "chrysalis/distribution.hpp"

namespace trinity::chrysalis {
namespace {

struct DistCase {
  std::size_t items;
  int ranks;
  std::size_t chunk;
};

class ChunkedRoundRobinTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(ChunkedRoundRobinTest, EveryItemOwnedExactlyOnce) {
  const auto [items, ranks, chunk] = GetParam();
  const ChunkedRoundRobin dist(items, ranks, chunk);
  std::vector<int> owner(items, -1);
  for (int r = 0; r < ranks; ++r) {
    for (const auto& range : dist.chunks_for(r)) {
      for (std::size_t i = range.begin; i < range.end; ++i) {
        EXPECT_EQ(owner[i], -1) << "item " << i << " assigned twice";
        owner[i] = r;
      }
    }
  }
  for (std::size_t i = 0; i < items; ++i) {
    EXPECT_NE(owner[i], -1) << "item " << i << " unassigned";
    EXPECT_EQ(owner[i], dist.owner_of(i));
  }
}

TEST_P(ChunkedRoundRobinTest, ChunksHonorSizeAndTailClip) {
  const auto [items, ranks, chunk] = GetParam();
  const ChunkedRoundRobin dist(items, ranks, chunk);
  for (int r = 0; r < ranks; ++r) {
    for (const auto& range : dist.chunks_for(r)) {
      EXPECT_LE(range.size(), chunk);
      EXPECT_GT(range.size(), 0u);
      EXPECT_LE(range.end, items);
      // Only the final chunk may be short — the paper's tail condition.
      if (range.size() < chunk) {
        EXPECT_EQ(range.end, items);
      }
    }
  }
}

TEST_P(ChunkedRoundRobinTest, OwnershipIsRoundRobinByChunkIndex) {
  const auto [items, ranks, chunk] = GetParam();
  const ChunkedRoundRobin dist(items, ranks, chunk);
  for (std::size_t i = 0; i < items; ++i) {
    const std::size_t chunk_index = i / chunk;
    EXPECT_EQ(dist.owner_of(i),
              static_cast<int>(chunk_index % static_cast<std::size_t>(ranks)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChunkedRoundRobinTest,
    ::testing::Values(DistCase{0, 1, 1}, DistCase{1, 1, 1}, DistCase{10, 1, 3},
                      DistCase{10, 3, 3}, DistCase{100, 4, 7}, DistCase{100, 7, 100},
                      DistCase{5, 8, 2},    // fewer chunks than ranks
                      DistCase{64, 4, 16},  // exact division
                      DistCase{65, 4, 16},  // one-item tail
                      DistCase{1000, 16, 1}));

TEST(ChunkedRoundRobinEdge, RejectsBadArguments) {
  EXPECT_THROW(ChunkedRoundRobin(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(ChunkedRoundRobin(10, 2, 0), std::invalid_argument);
}

TEST(ChunkedRoundRobinEdge, DefaultChunkSizeIsPositive) {
  EXPECT_GE(ChunkedRoundRobin::default_chunk_size(0, 4, 16), 1u);
  EXPECT_GE(ChunkedRoundRobin::default_chunk_size(1000000, 16, 16), 1u);
  // Many items over few workers -> chunks hold multiple items.
  EXPECT_GT(ChunkedRoundRobin::default_chunk_size(1000000, 2, 2), 1u);
}

TEST(ChunkedRoundRobinEdge, NumChunksCountsTail) {
  const ChunkedRoundRobin dist(10, 2, 3);
  EXPECT_EQ(dist.num_chunks(), 4u);  // 3+3+3+1
}

class BlockDistributionTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(BlockDistributionTest, BlocksPartitionTheIndexSpace) {
  const auto [items, ranks, chunk] = GetParam();
  (void)chunk;
  const BlockDistribution dist(items, ranks);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto block = dist.block_for(r);
    EXPECT_EQ(block.begin, prev_end) << "blocks must be contiguous";
    prev_end = block.end;
    covered += block.size();
    for (std::size_t i = block.begin; i < block.end; ++i) {
      EXPECT_EQ(dist.owner_of(i), r);
    }
  }
  EXPECT_EQ(prev_end, items);
  EXPECT_EQ(covered, items);
}

TEST_P(BlockDistributionTest, BlockSizesDifferByAtMostOne) {
  const auto [items, ranks, chunk] = GetParam();
  (void)chunk;
  const BlockDistribution dist(items, ranks);
  std::size_t min_size = items + 1;
  std::size_t max_size = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto s = dist.block_for(r).size();
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(Cases, BlockDistributionTest,
                         ::testing::Values(DistCase{0, 3, 0}, DistCase{10, 3, 0},
                                           DistCase{100, 7, 0}, DistCase{5, 8, 0},
                                           DistCase{64, 4, 0}));

TEST(BlockDistributionEdge, RejectsZeroRanks) {
  EXPECT_THROW(BlockDistribution(10, 0), std::invalid_argument);
}

}  // namespace
}  // namespace trinity::chrysalis
