// Tests for the DSK-style disk-partitioned k-mer counter: exact agreement
// with the in-memory counter, memory-bound behaviour, and cleanup.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "kmer/counter.hpp"
#include "kmer/disk_counter.hpp"
#include "seq/fasta.hpp"
#include "test_helpers.hpp"

namespace trinity::kmer {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

std::vector<seq::Sequence> make_reads(std::size_t n, std::uint64_t seed) {
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({"r" + std::to_string(i), random_dna(120, seed + i)});
  }
  return out;
}

std::map<seq::KmerCode, std::uint32_t> as_map(const std::vector<KmerCount>& counts) {
  std::map<seq::KmerCode, std::uint32_t> out;
  for (const auto& kc : counts) out[kc.code] += kc.count;
  return out;
}

DiskCounterOptions opts(const TempDir& dir, int k = 21, int partitions = 8) {
  DiskCounterOptions o;
  o.k = k;
  o.num_partitions = partitions;
  o.tmp_dir = dir.file("parts");
  o.chunk_records = 13;  // deliberately awkward chunking
  return o;
}

TEST(DiskCounterTest, MatchesInMemoryCounter) {
  const TempDir dir("dsk1");
  const auto reads = make_reads(60, 3);
  for (const int k : {5, 21, 31}) {
    CounterOptions copt;
    copt.k = k;
    KmerCounter mem(copt);
    mem.add_sequences(reads);

    const auto disk = disk_count_reads(reads, opts(dir, k));
    EXPECT_EQ(as_map(disk), as_map(mem.dump())) << "k=" << k;
  }
}

class DiskCounterPartitions : public ::testing::TestWithParam<int> {};

TEST_P(DiskCounterPartitions, PartitionCountDoesNotChangeResults) {
  const TempDir dir("dskp");
  const auto reads = make_reads(40, 7);
  const auto reference = disk_count_reads(reads, opts(dir, 21, 1));
  const auto variant = disk_count_reads(reads, opts(dir, 21, GetParam()));
  EXPECT_EQ(as_map(variant), as_map(reference));
}

INSTANTIATE_TEST_SUITE_P(Partitions, DiskCounterPartitions, ::testing::Values(1, 2, 4, 7, 32));

TEST(DiskCounterTest, OutputIsSortedByCode) {
  const TempDir dir("dsk2");
  const auto counts = disk_count_reads(make_reads(30, 11), opts(dir));
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LT(counts[i - 1].code, counts[i].code);
  }
}

TEST(DiskCounterTest, StatsAreConsistent) {
  const TempDir dir("dsk3");
  DiskCounterStats stats;
  const auto reads = make_reads(50, 13);
  const auto counts = disk_count_reads(reads, opts(dir), &stats);

  std::uint64_t total = 0;
  for (const auto& kc : counts) total += kc.count;
  EXPECT_EQ(stats.total_kmers, total);
  EXPECT_EQ(stats.distinct_kmers, counts.size());
  EXPECT_EQ(stats.bytes_spilled, stats.total_kmers * sizeof(seq::KmerCode));
  // The memory bound: the largest partition is far smaller than the whole
  // spectrum (within hashing fluctuation).
  EXPECT_LT(stats.peak_partition_kmers, stats.total_kmers / 4);
  EXPECT_GT(stats.peak_partition_kmers, 0u);
}

TEST(DiskCounterTest, PartitionFilesAreRemoved) {
  const TempDir dir("dsk4");
  const auto o = opts(dir);
  (void)disk_count_reads(make_reads(10, 17), o);
  std::size_t leftover = 0;
  if (std::filesystem::exists(o.tmp_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(o.tmp_dir)) {
      (void)entry;
      ++leftover;
    }
  }
  EXPECT_EQ(leftover, 0u);
}

TEST(DiskCounterTest, CountsFromFileMatchesInMemorySource) {
  const TempDir dir("dsk5");
  const auto reads = make_reads(35, 19);
  seq::write_fasta(dir.file("reads.fa"), reads);
  const auto from_file = disk_count_file(dir.file("reads.fa"), opts(dir));
  const auto from_memory = disk_count_reads(reads, opts(dir));
  EXPECT_EQ(as_map(from_file), as_map(from_memory));
}

TEST(DiskCounterTest, NonCanonicalModeSupported) {
  const TempDir dir("dsk6");
  auto o = opts(dir, 4);
  o.canonical = false;
  const auto counts = disk_count_reads({{"s", "AAAA"}}, o);
  ASSERT_EQ(counts.size(), 1u);
  const seq::KmerCodec codec(4);
  EXPECT_EQ(counts[0].code, *codec.encode("AAAA"));
  EXPECT_EQ(counts[0].count, 1u);
}

TEST(DiskCounterTest, EmptyInputYieldsNothing) {
  const TempDir dir("dsk7");
  DiskCounterStats stats;
  EXPECT_TRUE(disk_count_reads({}, opts(dir), &stats).empty());
  EXPECT_EQ(stats.total_kmers, 0u);
}

TEST(DiskCounterTest, BadOptionsThrow) {
  const TempDir dir("dsk8");
  auto o = opts(dir);
  o.num_partitions = 0;
  EXPECT_THROW(disk_count_reads({}, o), std::invalid_argument);
  o = opts(dir);
  o.tmp_dir.clear();
  EXPECT_THROW(disk_count_reads({}, o), std::invalid_argument);
  o = opts(dir);
  o.k = 33;
  EXPECT_THROW(disk_count_reads({}, o), std::invalid_argument);
}

TEST(DiskCounterTest, MissingInputFileThrows) {
  const TempDir dir("dsk9");
  EXPECT_THROW(disk_count_file("/no/such/reads.fa", opts(dir)), std::runtime_error);
}

}  // namespace
}  // namespace trinity::kmer
