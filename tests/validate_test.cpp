// Tests for the Section-IV validation harness: category bucketing against
// known perturbations and reference full-length / fused counting.

#include <gtest/gtest.h>

#include "seq/dna.hpp"
#include "validate/validate.hpp"
#include "test_helpers.hpp"

namespace trinity::validate {
namespace {

using trinity::testing::random_dna;

std::vector<seq::Sequence> make_set(std::size_t n, std::size_t len, std::uint64_t seed) {
  std::vector<seq::Sequence> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({"t" + std::to_string(i), random_dna(len, seed + i)});
  }
  return out;
}

TEST(AllToAllTest, IdenticalSetsAreAllFullIdentical) {
  const auto set = make_set(10, 300, 1);
  const auto counts = all_to_all_categories(set, set);
  EXPECT_EQ(counts.full_identical, 10u);
  EXPECT_EQ(counts.full_diverged, 0u);
  EXPECT_EQ(counts.partial, 0u);
  EXPECT_EQ(counts.unmatched, 0u);
}

TEST(AllToAllTest, ReverseComplementStillFullIdentical) {
  const auto set = make_set(5, 300, 2);
  auto flipped = set;
  for (auto& s : flipped) s.bases = seq::reverse_complement(s.bases);
  const auto counts = all_to_all_categories(flipped, set);
  EXPECT_EQ(counts.full_identical, 5u);
}

TEST(AllToAllTest, PointMutationsMakeFullDiverged) {
  const auto set = make_set(6, 300, 3);
  auto mutated = set;
  for (auto& s : mutated) {
    s.bases[100] = s.bases[100] == 'A' ? 'C' : 'A';
    s.bases[200] = s.bases[200] == 'G' ? 'T' : 'G';
  }
  const auto counts = all_to_all_categories(mutated, set);
  EXPECT_EQ(counts.full_identical, 0u);
  EXPECT_EQ(counts.full_diverged, 6u);
}

TEST(AllToAllTest, TruncatedQueriesWithExtensionArePartial) {
  const auto set = make_set(4, 400, 4);
  std::vector<seq::Sequence> chimeras;
  for (const auto& s : set) {
    // Half of a real transcript glued to random sequence: only the real
    // half aligns -> partial-length category.
    chimeras.push_back({s.name + "_chimera", s.bases.substr(0, 200) + random_dna(200, 777)});
  }
  const auto counts = all_to_all_categories(chimeras, set);
  EXPECT_EQ(counts.partial, 4u);
  ASSERT_EQ(counts.partial_identities.size(), 4u);
  for (const double ident : counts.partial_identities) {
    // The aligned core is exact, but the local alignment may pick up noisy
    // net-positive extensions into the random half, diluting identity.
    EXPECT_GT(ident, 0.7);
  }
}

TEST(AllToAllTest, ForeignQueriesAreUnmatched) {
  const auto set = make_set(5, 300, 5);
  const auto foreign = make_set(3, 300, 500);
  const auto counts = all_to_all_categories(foreign, set);
  EXPECT_EQ(counts.unmatched, 3u);
  EXPECT_EQ(counts.total(), 3u);
}

TEST(AllToAllTest, EmptyQuerySet) {
  const auto set = make_set(3, 300, 6);
  const auto counts = all_to_all_categories({}, set);
  EXPECT_EQ(counts.total(), 0u);
}

// --- reference comparison -------------------------------------------------------------

TEST(ReferenceTest, ExactReconstructionCountsFullLength) {
  const auto reference = make_set(8, 350, 7);
  // Two isoforms per gene: gene g has refs 2g, 2g+1.
  std::vector<std::int32_t> gene_of;
  for (std::int32_t i = 0; i < 8; ++i) gene_of.push_back(i / 2);

  // Reconstruct isoform 0 of genes 0 and 1 exactly.
  const std::vector<seq::Sequence> reconstructed{reference[0], reference[2]};
  const auto cmp = compare_to_reference(reconstructed, reference, gene_of);
  EXPECT_EQ(cmp.full_length_isoforms, 2u);
  EXPECT_EQ(cmp.full_length_genes, 2u);
  EXPECT_EQ(cmp.fused_isoforms, 0u);
  EXPECT_EQ(cmp.fused_genes, 0u);
}

TEST(ReferenceTest, PartialReconstructionDoesNotCount) {
  const auto reference = make_set(4, 400, 8);
  const std::vector<std::int32_t> gene_of{0, 1, 2, 3};
  // Only half of reference 0.
  const std::vector<seq::Sequence> reconstructed{{"half", reference[0].bases.substr(0, 200)}};
  const auto cmp = compare_to_reference(reconstructed, reference, gene_of);
  EXPECT_EQ(cmp.full_length_isoforms, 0u);
  EXPECT_EQ(cmp.full_length_genes, 0u);
}

TEST(ReferenceTest, FusedTranscriptDetected) {
  const auto reference = make_set(4, 300, 9);
  const std::vector<std::int32_t> gene_of{0, 1, 2, 3};
  // An end-to-end fusion of references 1 and 2 (different genes).
  const std::vector<seq::Sequence> reconstructed{
      {"fusion", reference[1].bases + reference[2].bases}};
  const auto cmp = compare_to_reference(reconstructed, reference, gene_of);
  EXPECT_EQ(cmp.fused_isoforms, 1u);
  EXPECT_EQ(cmp.fused_genes, 2u);
  // Both constituents were recovered at full reference length.
  EXPECT_EQ(cmp.full_length_isoforms, 2u);
}

TEST(ReferenceTest, TwoIsoformsOfSameGeneAreNotAFusion) {
  const auto reference = make_set(2, 300, 10);
  const std::vector<std::int32_t> gene_of{0, 0};  // same gene
  const std::vector<seq::Sequence> reconstructed{
      {"join", reference[0].bases + reference[1].bases}};
  const auto cmp = compare_to_reference(reconstructed, reference, gene_of);
  EXPECT_EQ(cmp.fused_isoforms, 0u);
  EXPECT_EQ(cmp.fused_genes, 0u);
}

TEST(ReferenceTest, NearIdenticalReconstructionStillFullLength) {
  const auto reference = make_set(1, 400, 11);
  auto copy = reference[0];
  copy.bases[200] = copy.bases[200] == 'A' ? 'C' : 'A';  // one mismatch
  const auto cmp =
      compare_to_reference({copy}, reference, std::vector<std::int32_t>{0});
  EXPECT_EQ(cmp.full_length_isoforms, 1u);
}

TEST(AllToAllTest, EmptyTargetSetLeavesQueriesUnmatched) {
  const auto queries = make_set(3, 200, 42);
  const auto counts = all_to_all_categories(queries, {});
  EXPECT_EQ(counts.unmatched, 3u);
}

TEST(ReferenceTest, EmptyInputsYieldZeroCounts) {
  const auto cmp = compare_to_reference({}, {}, {});
  EXPECT_EQ(cmp.full_length_genes, 0u);
  EXPECT_EQ(cmp.fused_isoforms, 0u);
}

TEST(TTestBridge, ForwardsToWelch) {
  const std::vector<double> a{10, 11, 9, 10.5, 9.5};
  const std::vector<double> b{10.2, 10.8, 9.1, 10.4, 9.6};
  EXPECT_FALSE(compare_run_metric(a, b).significant_at_5pct);
}

}  // namespace
}  // namespace trinity::validate
