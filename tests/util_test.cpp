// Tests for trinity::util — RNG, statistics, CLI parsing, timers,
// memory probes, and the ResourceTrace phase recorder.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/resource_trace.hpp"
#include "util/rng.hpp"
#include "util/rss.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace trinity::util {
namespace {

// --- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
}

TEST(RngTest, UniformBelowHitsEveryValue) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01HalfOpen) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sumsq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 2.0), 0.0);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

// --- stats ---------------------------------------------------------------------

TEST(StatsTest, SummarizeEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(StatsTest, SummarizeKnownValues) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, WelchIdenticalSamplesNotSignificant) {
  const std::vector<double> a{5.0, 5.1, 4.9, 5.05};
  const auto r = welch_t_test(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_FALSE(r.significant_at_5pct);
}

TEST(StatsTest, WelchClearlyDifferentSamplesSignificant) {
  const std::vector<double> a{1.0, 1.1, 0.9, 1.05, 0.95};
  const std::vector<double> b{10.0, 10.1, 9.9, 10.05, 9.95};
  const auto r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant_at_5pct);
  EXPECT_LT(r.p_two_sided, 0.001);
}

TEST(StatsTest, WelchOverlappingSamplesNotSignificant) {
  // The paper's criterion: overlapping distributions -> no significant
  // difference between parallel and original outputs.
  const std::vector<double> a{100, 103, 98, 101, 99, 102};
  const std::vector<double> b{101, 99, 102, 100, 98, 103};
  const auto r = welch_t_test(a, b);
  EXPECT_FALSE(r.significant_at_5pct);
}

TEST(StatsTest, WelchTooSmallSampleIsNeutral) {
  const auto r = welch_t_test({1.0}, {2.0, 3.0});
  EXPECT_EQ(r.p_two_sided, 1.0);
  EXPECT_FALSE(r.significant_at_5pct);
}

TEST(StatsTest, ConstantSamplesSameMean) {
  const auto r = welch_t_test({2.0, 2.0, 2.0}, {2.0, 2.0, 2.0});
  EXPECT_FALSE(r.significant_at_5pct);
  EXPECT_EQ(r.p_two_sided, 1.0);
}

TEST(StatsTest, N50KnownValue) {
  // lengths 10,9,8,...: total 10+9+8+7+6 = 40; half = 20; 10+9=19 < 20,
  // 10+9+8=27 >= 20 -> N50 = 8.
  EXPECT_EQ(n50({10, 9, 8, 7, 6}), 8u);
}

TEST(StatsTest, N50SingleContig) { EXPECT_EQ(n50({42}), 42u); }

TEST(StatsTest, N50Empty) { EXPECT_EQ(n50({}), 0u); }

// --- CLI -----------------------------------------------------------------------

CliArgs parse_args(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ParsesEqualsForm) {
  const auto args = parse_args({"--genes=250", "--name=foo"});
  EXPECT_EQ(args.get_int("genes", 0), 250);
  EXPECT_EQ(args.get_string("name", ""), "foo");
}

TEST(CliTest, ParsesSpaceForm) {
  const auto args = parse_args({"--genes", "250"});
  EXPECT_EQ(args.get_int("genes", 0), 250);
}

TEST(CliTest, BareFlagIsTrue) {
  const auto args = parse_args({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(CliTest, MissingOptionFallsBack) {
  const auto args = parse_args({});
  EXPECT_EQ(args.get_int("genes", 7), 7);
  EXPECT_FALSE(args.has("genes"));
}

TEST(CliTest, PositionalArgumentsPreserved) {
  const auto args = parse_args({"input.fa", "--k", "25", "output.fa"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.fa");
  EXPECT_EQ(args.positional()[1], "output.fa");
}

TEST(CliTest, MalformedIntegerThrows) {
  const auto args = parse_args({"--k", "banana"});
  EXPECT_THROW((void)args.get_int("k", 0), std::invalid_argument);
}

TEST(CliTest, MalformedBoolThrows) {
  const auto args = parse_args({"--flag=maybe"});
  EXPECT_THROW((void)args.get_bool("flag", false), std::invalid_argument);
}

TEST(CliTest, BareDoubleDashThrows) {
  std::vector<const char*> argv{"prog", "--"};
  EXPECT_THROW(CliArgs::parse(2, argv.data()), std::invalid_argument);
}

TEST(CliTest, DoubleValueParses) {
  const auto args = parse_args({"--rate", "0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.25);
}

// --- timers & memory -------------------------------------------------------------

TEST(TimerTest, WallTimeAdvances) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_GE(t.seconds(), 0.010);
}

TEST(TimerTest, ThreadCpuTimeCountsOwnWorkOnly) {
  ThreadCpuTimer cpu;
  // Busy loop to accumulate CPU time on this thread.
  // The thread CPU clock can tick as coarsely as 10 ms; burn well past that.
  double sink = 0.0;
  for (int i = 0; i < 40000000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(sink, 0.0);
  const double mine = cpu.seconds();
  EXPECT_GT(mine, 0.0);

  // A sleeping thread accumulates (almost) no CPU time.
  double other = 1.0;
  std::thread sleeper([&] {
    ThreadCpuTimer inner;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    other = inner.seconds();
  });
  sleeper.join();
  EXPECT_LT(other, 0.02);
}

TEST(RssTest, ProbesReturnPlausibleValues) {
  EXPECT_GT(current_rss_bytes(), 1u << 20);  // > 1 MiB resident
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

// --- ResourceTrace ----------------------------------------------------------------

TEST(ResourceTraceTest, RecordsPhasesInOrder) {
  ResourceTrace trace(0);
  trace.phase("alpha", [] {});
  trace.phase("beta", [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_EQ(trace.records()[0].name, "alpha");
  EXPECT_EQ(trace.records()[1].name, "beta");
  EXPECT_GE(trace.records()[1].wall_seconds, 0.004);
  EXPECT_GE(trace.total_wall_seconds(), trace.records()[1].wall_seconds);
}

TEST(ResourceTraceTest, NestedPhaseThrows) {
  ResourceTrace trace(0);
  trace.begin_phase("outer");
  EXPECT_THROW(trace.begin_phase("inner"), std::logic_error);
  trace.end_phase();
}

TEST(ResourceTraceTest, EndWithoutBeginThrows) {
  ResourceTrace trace(0);
  EXPECT_THROW(trace.end_phase(), std::logic_error);
}

TEST(ResourceTraceTest, PeakCoversBeforeAndAfter) {
  ResourceTrace trace(0);
  trace.phase("p", [] {});
  const auto& r = trace.records().front();
  EXPECT_GE(r.rss_peak, r.rss_before);
  EXPECT_GE(r.rss_peak, r.rss_after);
}

TEST(ResourceTraceTest, CsvHasHeaderAndRows) {
  ResourceTrace trace(0);
  trace.phase("x", [] {});
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("phase,start_s"), std::string::npos);
  EXPECT_NE(csv.find("x,"), std::string::npos);
}

TEST(ResourceTraceTest, ZeroIntervalFallsBackToBeforeAfterMax) {
  // With the sampler disabled (interval 0) there are no mid-phase samples,
  // so the documented fallback applies: rss_peak == max(rss_before,
  // rss_after), never 0 and never below either endpoint.
  ResourceTrace trace(0);
  trace.phase("grow", [] {
    // Allocate ~32 MB and keep it live across the phase end so rss_after
    // (and hence the fallback peak) reflects the growth.
    static std::vector<char> keep;
    keep.assign(32 << 20, 1);
    volatile char sink = keep[999];
    (void)sink;
  });
  const auto& r = trace.records().front();
  EXPECT_GT(r.rss_peak, 0u);
  EXPECT_EQ(r.rss_peak, std::max(r.rss_before, r.rss_after));
}

TEST(ResourceTraceTest, BackgroundSamplerCapturesTransientPeak) {
  ResourceTrace trace(5);  // 5 ms sampler
  trace.phase("alloc", [] {
    // Allocate ~64 MB, touch it, then free — the sampler should catch the
    // transient even though rss_after drops back down.
    std::vector<char> big(64 << 20, 1);
    volatile char sink = big[12345];
    (void)sink;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  });
  const auto& r = trace.records().front();
  EXPECT_GE(r.rss_peak, r.rss_before);
}

TEST(ResourceTraceTest, CounterAttachesToOpenPhase) {
  ResourceTrace trace(0);
  trace.phase("stage", [&] {
    trace.counter("skew_ratio", 1.5);
    trace.counter("bytes", 128.0);
    trace.counter("skew_ratio", 2.0);  // same name: last write wins
  });
  const auto& r = trace.records().front();
  ASSERT_EQ(r.counters.size(), 2u);
  const PhaseCounter* skew = r.counter("skew_ratio");
  ASSERT_NE(skew, nullptr);
  EXPECT_DOUBLE_EQ(skew->value, 2.0);
  EXPECT_EQ(r.counter("missing"), nullptr);
}

TEST(ResourceTraceTest, CounterOutsidePhaseThrows) {
  ResourceTrace trace(0);
  EXPECT_THROW(trace.counter("x", 1.0), std::logic_error);
}

TEST(ResourceTraceTest, CsvIncludesCountersColumn) {
  ResourceTrace trace(0);
  trace.phase("x", [&] {
    trace.counter("a", 1.0);
    trace.counter("b", 2.5);
  });
  std::ostringstream out;
  trace.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find(",counters"), std::string::npos);
  EXPECT_NE(csv.find("a=1;b=2.5"), std::string::npos);
}

// --- Json -------------------------------------------------------------------------

TEST(JsonTest, ParseDumpRoundTrip) {
  const std::string text =
      R"({"name":"run","count":3,"ratio":1.5,"ok":true,"none":null,"items":[1,2,3]})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.dump(), text);  // insertion order and value forms preserved
  EXPECT_EQ(doc.at("name").as_string(), "run");
  EXPECT_EQ(doc.at("count").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 1.5);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("items").items().size(), 3u);
}

TEST(JsonTest, LargeIntegersStayExact) {
  // Beyond 2^53: a double round-trip would corrupt this (byte counters in
  // the run report need exact 64-bit integers).
  const std::string text = "[9007199254740993,-9007199254740993]";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.items().at(0).as_int(), 9007199254740993LL);
  EXPECT_EQ(doc.dump(), text);
}

TEST(JsonTest, AsIntRejectsNonIntegralNumbers) {
  const Json doc = Json::parse("1.5");
  EXPECT_THROW((void)doc.as_int(), std::runtime_error);
  EXPECT_DOUBLE_EQ(doc.as_double(), 1.5);
  EXPECT_THROW((void)doc.as_string(), std::runtime_error);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const Json doc = Json::parse(R"(["a\nb","A\t\"q\""])");
  EXPECT_EQ(doc.items().at(0).as_string(), "a\nb");
  EXPECT_EQ(doc.items().at(1).as_string(), "A\t\"q\"");
  EXPECT_EQ(Json::parse(doc.dump()).items().at(0).as_string(), "a\nb");
}

TEST(JsonTest, MalformedDocumentsThrow) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("nul"), std::runtime_error);
}

TEST(JsonTest, BuildersFindAndAt) {
  Json obj = Json::object();
  obj.set("a", 1);
  obj.set("b", "text");
  obj.set("a", 2);  // set replaces in place, keeping position
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members().front().first, "a");
  EXPECT_EQ(obj.at("a").as_int(), 2);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), std::runtime_error);

  Json arr = Json::array();
  arr.push_back(Json(true));
  arr.push_back(std::move(obj));
  EXPECT_EQ(arr.items().size(), 2u);
  EXPECT_EQ(arr.dump(), R"([true,{"a":2,"b":"text"}])");
}

TEST(JsonTest, PrettyDumpIndents) {
  Json obj = Json::object();
  obj.set("k", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"k\": 1\n}");
}

TEST(LogTest, LevelGatesOutput) {
  const LogLevel saved = log_level();
  log_level() = LogLevel::Warn;
  EXPECT_TRUE(log_enabled(LogLevel::Error));
  EXPECT_TRUE(log_enabled(LogLevel::Warn));
  EXPECT_FALSE(log_enabled(LogLevel::Info));
  log_level() = saved;
}

}  // namespace
}  // namespace trinity::util
