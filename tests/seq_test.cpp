// Tests for trinity::seq — DNA primitives, packed k-mers (parameterized
// over k), and FASTA/FASTQ I/O including malformed-input handling.

#include <gtest/gtest.h>

#include <fstream>

#include "seq/dna.hpp"
#include "seq/fasta.hpp"
#include "seq/kmer.hpp"
#include "test_helpers.hpp"

namespace trinity::seq {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

// --- dna ---------------------------------------------------------------------------

TEST(DnaTest, BaseCodesRoundTrip) {
  for (const char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(code_to_base(base_to_code(c)), c);
  }
}

TEST(DnaTest, LowercaseAccepted) {
  EXPECT_EQ(base_to_code('a'), base_to_code('A'));
  EXPECT_EQ(base_to_code('t'), base_to_code('T'));
}

TEST(DnaTest, InvalidBasesFlagged) {
  EXPECT_EQ(base_to_code('N'), kInvalidBase);
  EXPECT_EQ(base_to_code('x'), kInvalidBase);
  EXPECT_EQ(base_to_code(' '), kInvalidBase);
}

TEST(DnaTest, ReverseComplementKnownValue) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AACC"), "GGTT");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(DnaTest, ReverseComplementIsInvolution) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string s = random_dna(137, seed);
    EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
  }
}

TEST(DnaTest, IsAcgtDetectsContamination) {
  EXPECT_TRUE(is_acgt("ACGTacgt"));
  EXPECT_FALSE(is_acgt("ACGNT"));
  EXPECT_TRUE(is_acgt(""));
}

TEST(DnaTest, NormalizeUppercasesAndMasks) {
  std::string s = "acgtNx";
  normalize_sequence(s);
  EXPECT_EQ(s, "ACGTNN");
}

// --- kmer codec, parameterized over k --------------------------------------------------

class KmerCodecTest : public ::testing::TestWithParam<int> {};

TEST_P(KmerCodecTest, EncodeDecodeRoundTrip) {
  const int k = GetParam();
  const KmerCodec codec(k);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::string s = random_dna(static_cast<std::size_t>(k), seed * 31);
    const auto code = codec.encode(s);
    ASSERT_TRUE(code.has_value());
    EXPECT_EQ(codec.decode(*code), s);
  }
}

TEST_P(KmerCodecTest, ReverseComplementMatchesStringForm) {
  const int k = GetParam();
  const KmerCodec codec(k);
  const std::string s = random_dna(static_cast<std::size_t>(k), 99);
  const auto code = codec.encode(s);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(codec.decode(codec.reverse_complement(*code)), reverse_complement(s));
}

TEST_P(KmerCodecTest, CanonicalIsStrandNeutral) {
  const int k = GetParam();
  const KmerCodec codec(k);
  const std::string s = random_dna(static_cast<std::size_t>(k), 7);
  const auto fwd = codec.encode(s);
  const auto rev = codec.encode(reverse_complement(s));
  ASSERT_TRUE(fwd && rev);
  EXPECT_EQ(codec.canonical(*fwd), codec.canonical(*rev));
}

TEST_P(KmerCodecTest, RollRightMatchesReencoding) {
  const int k = GetParam();
  const KmerCodec codec(k);
  const std::string s = random_dna(static_cast<std::size_t>(k) + 1, 55);
  const auto first = codec.encode(s);
  const auto second = codec.encode(std::string_view(s).substr(1));
  ASSERT_TRUE(first && second);
  EXPECT_EQ(codec.roll_right(*first, base_to_code(s.back())), *second);
}

TEST_P(KmerCodecTest, ExtractCountsAllWindows) {
  const int k = GetParam();
  const KmerCodec codec(k);
  const std::string s = random_dna(200, 3);
  const auto occ = codec.extract(s);
  ASSERT_EQ(occ.size(), s.size() - static_cast<std::size_t>(k) + 1);
  for (std::size_t i = 0; i < occ.size(); ++i) {
    EXPECT_EQ(occ[i].position, i);
    EXPECT_EQ(codec.decode(occ[i].code), s.substr(i, static_cast<std::size_t>(k)));
  }
}

TEST_P(KmerCodecTest, PrefixSuffixOverlapInvariant) {
  const int k = GetParam();
  if (k < 2) return;
  const KmerCodec codec(k);
  const std::string s = random_dna(static_cast<std::size_t>(k) + 1, 77);
  const auto a = codec.encode(s);
  const auto b = codec.encode(std::string_view(s).substr(1));
  ASSERT_TRUE(a && b);
  // Consecutive k-mers overlap by k-1: suffix(a) == prefix(b).
  EXPECT_EQ(codec.suffix(*a), codec.prefix(*b));
}

INSTANTIATE_TEST_SUITE_P(AllK, KmerCodecTest, ::testing::Values(1, 2, 5, 15, 16, 25, 31, 32));

TEST(KmerCodecEdge, RejectsBadK) {
  EXPECT_THROW(KmerCodec(0), std::invalid_argument);
  EXPECT_THROW(KmerCodec(33), std::invalid_argument);
  EXPECT_THROW(KmerCodec(-1), std::invalid_argument);
}

TEST(KmerCodecEdge, EncodeRejectsInvalidBase) {
  const KmerCodec codec(4);
  EXPECT_FALSE(codec.encode("ACNT").has_value());
  EXPECT_FALSE(codec.encode("ACG").has_value());  // too short
}

TEST(KmerCodecEdge, ExtractSkipsWindowsWithN) {
  const KmerCodec codec(3);
  // ACGTNACG: windows touching the N (start positions 2, 3, 4) are skipped.
  const auto occ = codec.extract("ACGTNACG");
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_EQ(occ[0].position, 0u);
  EXPECT_EQ(occ[1].position, 1u);
  EXPECT_EQ(occ[2].position, 5u);
}

TEST(KmerCodecEdge, ExtractOnShortStringEmpty) {
  const KmerCodec codec(10);
  EXPECT_TRUE(codec.extract("ACGT").empty());
}

TEST(KmerCodecEdge, K32UsesFullWidth) {
  const KmerCodec codec(32);
  const std::string all_t(32, 'T');
  const auto code = codec.encode(all_t);
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, ~KmerCode{0});
  EXPECT_EQ(codec.decode(*code), all_t);
}

// --- FASTA / FASTQ I/O ------------------------------------------------------------------

TEST(FastaIO, WriteReadRoundTrip) {
  const TempDir dir("fasta");
  std::vector<Sequence> seqs{{"s1", "ACGTACGT"}, {"s2", "TTTT"}, {"s3", ""}};
  write_fasta(dir.file("x.fa"), seqs);
  const auto got = read_all(dir.file("x.fa"));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].name, "s1");
  EXPECT_EQ(got[0].bases, "ACGTACGT");
  EXPECT_EQ(got[2].bases, "");
}

TEST(FastaIO, WrappedOutputReadsBack) {
  const TempDir dir("wrap");
  std::vector<Sequence> seqs{{"long", random_dna(250, 5)}};
  write_fasta(dir.file("w.fa"), seqs, 60);
  const auto got = read_all(dir.file("w.fa"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bases, seqs[0].bases);
}

TEST(FastaIO, HeaderNameStopsAtWhitespace) {
  const TempDir dir("hdr");
  std::ofstream out(dir.file("h.fa"));
  out << ">read42 length=100 extra\nACGT\n";
  out.close();
  const auto got = read_all(dir.file("h.fa"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "read42");
}

TEST(FastaIO, MultiLineRecordsConcatenate) {
  const TempDir dir("ml");
  std::ofstream out(dir.file("m.fa"));
  out << ">a\nACGT\nTTTT\n\n>b\nGG\n";
  out.close();
  const auto got = read_all(dir.file("m.fa"));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].bases, "ACGTTTTT");
  EXPECT_EQ(got[1].bases, "GG");
}

TEST(FastaIO, FastqParses) {
  const TempDir dir("fq");
  std::ofstream out(dir.file("r.fq"));
  out << "@r1\nACGT\n+\nIIII\n@r2\nTT\n+r2\nII\n";
  out.close();
  const auto got = read_all(dir.file("r.fq"));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].name, "r1");
  EXPECT_EQ(got[0].bases, "ACGT");
  EXPECT_EQ(got[1].bases, "TT");
}

TEST(FastaIO, FastqQualityLengthMismatchThrows) {
  const TempDir dir("fqbad");
  std::ofstream out(dir.file("bad.fq"));
  out << "@r1\nACGT\n+\nII\n";
  out.close();
  FastaReader reader(dir.file("bad.fq"));
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(FastaIO, TruncatedFastqThrows) {
  const TempDir dir("fqtrunc");
  std::ofstream out(dir.file("t.fq"));
  out << "@r1\nACGT\n";
  out.close();
  FastaReader reader(dir.file("t.fq"));
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(FastaIO, GarbageLeadingContentThrows) {
  const TempDir dir("garbage");
  std::ofstream out(dir.file("g.fa"));
  out << "not a fasta file\n";
  out.close();
  FastaReader reader(dir.file("g.fa"));
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(FastaIO, MissingFileThrowsOnOpen) {
  EXPECT_THROW(FastaReader("/nonexistent/path/reads.fa"), std::runtime_error);
}

TEST(FastaIO, EmptyFileYieldsNoRecords) {
  const TempDir dir("empty");
  std::ofstream(dir.file("e.fa")).close();
  FastaReader reader(dir.file("e.fa"));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FastaIO, ChunkedReadingMatchesWholeFile) {
  const TempDir dir("chunk");
  std::vector<Sequence> seqs;
  for (int i = 0; i < 25; ++i) {
    seqs.push_back({"r" + std::to_string(i), random_dna(50, static_cast<std::uint64_t>(i + 1))});
  }
  write_fasta(dir.file("c.fa"), seqs);

  FastaReader reader(dir.file("c.fa"));
  std::vector<Sequence> streamed;
  for (;;) {
    auto chunk = reader.read_chunk(7);  // deliberately not a divisor of 25
    if (chunk.empty()) break;
    EXPECT_LE(chunk.size(), 7u);
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(streamed.size(), seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(streamed[i].name, seqs[i].name);
    EXPECT_EQ(streamed[i].bases, seqs[i].bases);
  }
  EXPECT_EQ(reader.records_read(), 25u);
}

TEST(FastaIO, CrlfLineEndingsHandled) {
  const TempDir dir("crlf");
  std::ofstream out(dir.file("c.fa"), std::ios::binary);
  out << ">a\r\nACGT\r\n";
  out.close();
  const auto got = read_all(dir.file("c.fa"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].bases, "ACGT");
}

TEST(FastqIO, QualityRoundTrips) {
  const TempDir dir("fqq");
  std::vector<Sequence> seqs{{"r1", "ACGT", "FF#F"}, {"r2", "TT", "##"}};
  write_fastq(dir.file("q.fq"), seqs);
  const auto got = read_all(dir.file("q.fq"));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].bases, "ACGT");
  EXPECT_EQ(got[0].quality, "FF#F");
  EXPECT_EQ(got[1].quality, "##");
  EXPECT_TRUE(got[0].has_quality());
}

TEST(FastqIO, DefaultQualityFillsMissing) {
  const TempDir dir("fqd");
  std::vector<Sequence> seqs{{"r1", "ACGT"}};  // no quality
  write_fastq(dir.file("d.fq"), seqs, 'I');
  const auto got = read_all(dir.file("d.fq"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].quality, "IIII");
}

TEST(FastqIO, MismatchedQualityLengthThrows) {
  const TempDir dir("fqm");
  std::vector<Sequence> seqs{{"r1", "ACGT", "FF"}};
  EXPECT_THROW(write_fastq(dir.file("m.fq"), seqs), std::runtime_error);
}

TEST(FastaIO, FastaRecordsHaveNoQuality) {
  const TempDir dir("noq");
  write_fasta(dir.file("f.fa"), {{"a", "ACGT"}});
  const auto got = read_all(dir.file("f.fa"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_FALSE(got[0].has_quality());
}

TEST(FastaIO, TotalBasesSums) {
  const std::vector<Sequence> seqs{{"a", "ACGT"}, {"b", "GG"}};
  EXPECT_EQ(total_bases(seqs), 6u);
}

}  // namespace
}  // namespace trinity::seq
