// End-to-end tests for distributed tracing through the pipeline: a traced
// hybrid run must leave a well-formed Chrome trace containing spans from all
// four instrumented layers (simpi, parallel loops, io, pipeline stages),
// the analyzer's stage windows must agree with the run report's phase wall
// times, the report must link the trace, and tracing must stay off (and
// artifact-free) by default.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/span_recorder.hpp"

namespace trinity::pipeline {
namespace {

using trinity::testing::TempDir;

const sim::Dataset& shared_dataset() {
  static const sim::Dataset data = [] {
    auto p = sim::preset("tiny");
    p.reads.error_rate = 0.002;
    p.reads.coverage = 30.0;
    p.reads.expression_sigma = 0.7;
    return sim::simulate_dataset(p);
  }();
  return data;
}

PipelineOptions traced_options(const std::string& work_dir, int nranks) {
  PipelineOptions o;
  o.k = 15;
  o.nranks = nranks;
  o.work_dir = work_dir;
  o.model_threads_per_rank = 4;
  o.max_mem_reads = 500;
  o.trace_sample_interval_ms = 0;
  o.omp_threads = 2;
  // Collective output: every rank pwrites its slice of the shared file, so
  // the trace carries io spans for every rank, not just rank 0.
  o.r2t_output_mode = chrysalis::R2TOutputMode::kCollective;
  o.trace_path = "trace.json";
  return o;
}

TEST(TracePipelineTest, TracedHybridRunEmitsValidTraceFromAllLayers) {
  TempDir dir("trace_e2e");
  const int nranks = 2;
  const auto options = traced_options(dir.str(), nranks);
  const PipelineResult result =
      run_pipeline(shared_dataset().reads.reads, options);

  // The trace landed where trace_path said, and it is a well-formed Chrome
  // trace-event document.
  ASSERT_EQ(result.trace_file, dir.file("trace.json"));
  ASSERT_TRUE(std::filesystem::exists(result.trace_file));
  const trace::TraceShapeReport shape =
      trace::validate_chrome_trace_file(result.trace_file);
  EXPECT_TRUE(shape.ok()) << (shape.errors.empty() ? "" : shape.errors[0]);

  const auto events = trace::read_chrome_trace(result.trace_file);
  ASSERT_FALSE(events.empty());

  // Spans from all four layers, with simpi and loop coverage on every rank.
  std::map<std::string, std::set<int>> span_ranks;
  bool have_pipeline_span = false;
  bool have_rss_counter = false;
  for (const auto& ev : events) {
    if (ev.kind == trace::EventKind::kCounter && ev.name == "rss_bytes") {
      have_rss_counter = true;
    }
    if (ev.kind != trace::EventKind::kSpan) continue;
    if (ev.category == trace::kCatPipeline && ev.rank < 0) {
      have_pipeline_span = true;
    } else {
      span_ranks[ev.category].insert(ev.rank);
    }
  }
  EXPECT_TRUE(have_pipeline_span);
  EXPECT_TRUE(have_rss_counter);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_TRUE(span_ranks["simpi"].count(r)) << "no simpi spans for rank " << r;
    EXPECT_TRUE(span_ranks["loop"].count(r)) << "no loop spans for rank " << r;
    EXPECT_TRUE(span_ranks["io"].count(r)) << "no io spans for rank " << r;
  }

  // The analyzer's stage windows are the run report's phases: same names,
  // wall times within the 5% acceptance bound (by construction they are
  // synthesized from the same PhaseRecords, so this is exact).
  const trace::TraceAnalysis analysis = trace::analyze_trace(events);
  ASSERT_EQ(analysis.stages.size(), result.trace.size());
  std::map<std::string, double> report_wall;
  for (const auto& phase : result.trace) report_wall[phase.name] = phase.wall_seconds;
  for (const auto& stage : analysis.stages) {
    ASSERT_TRUE(report_wall.count(stage.stage)) << stage.stage;
    const double expected = report_wall[stage.stage];
    EXPECT_NEAR(stage.wall_s, expected, 0.05 * expected + 1e-6) << stage.stage;
  }

  // The hybrid Chrysalis stages saw more than one rank working.
  bool saw_multi_rank_stage = false;
  for (const auto& stage : analysis.stages) {
    if (stage.ranks.size() >= 2) saw_multi_rank_stage = true;
  }
  EXPECT_TRUE(saw_multi_rank_stage);

  // The run report links the trace (additive schema-2 field), relative to
  // the work dir as given.
  const util::Json report = load_run_report(result.report_path);
  const util::Json* trace_file = report.find("trace_file");
  ASSERT_NE(trace_file, nullptr);
  EXPECT_EQ(trace_file->as_string(), "trace.json");

  // The recorder is uninstalled once the run is over.
  EXPECT_FALSE(trace::enabled());
}

TEST(TracePipelineTest, AbsoluteTracePathIsRespected) {
  TempDir dir("trace_abs");
  auto options = traced_options(dir.str(), /*nranks=*/1);
  options.trace_path = dir.file("custom_trace.json");
  const PipelineResult result =
      run_pipeline(shared_dataset().reads.reads, options);
  EXPECT_EQ(result.trace_file, dir.file("custom_trace.json"));
  const trace::TraceShapeReport shape =
      trace::validate_chrome_trace_file(result.trace_file);
  EXPECT_TRUE(shape.ok()) << (shape.errors.empty() ? "" : shape.errors[0]);
  // Single-rank runs still carry the stage timeline.
  bool have_pipeline_span = false;
  for (const auto& ev : trace::read_chrome_trace(result.trace_file)) {
    if (ev.kind == trace::EventKind::kSpan &&
        ev.category == trace::kCatPipeline) {
      have_pipeline_span = true;
    }
  }
  EXPECT_TRUE(have_pipeline_span);
  // The report stores the path exactly as the option gave it (absolute).
  const util::Json report = load_run_report(result.report_path);
  const util::Json* trace_file = report.find("trace_file");
  ASSERT_NE(trace_file, nullptr);
  EXPECT_EQ(trace_file->as_string(), options.trace_path);
}

TEST(TracePipelineTest, TracingOffByDefaultLeavesNoArtifacts) {
  TempDir dir("trace_off");
  auto options = traced_options(dir.str(), /*nranks=*/1);
  options.trace_path.clear();
  const PipelineResult result =
      run_pipeline(shared_dataset().reads.reads, options);
  EXPECT_TRUE(result.trace_file.empty());
  EXPECT_FALSE(std::filesystem::exists(dir.file("trace.json")));
  const util::Json report = load_run_report(result.report_path);
  EXPECT_EQ(report.find("trace_file"), nullptr);
}

}  // namespace
}  // namespace trinity::pipeline
