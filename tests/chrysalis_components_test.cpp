// Tests for union-find and the contig clustering that builds Inchworm
// bundles, including the pair-order independence the hybrid run relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "chrysalis/components.hpp"

namespace trinity::chrysalis {
namespace {

TEST(UnionFindTest, SingletonsAreTheirOwnRoots) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::int32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
}

TEST(UnionFindTest, UniteMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.find(0), uf.find(3));
}

TEST(UnionFindTest, TransitivityHoldsOverChains) {
  constexpr std::size_t kN = 200;
  UnionFind uf(kN);
  for (std::size_t i = 0; i + 1 < kN; ++i) {
    uf.unite(static_cast<std::int32_t>(i), static_cast<std::int32_t>(i + 1));
  }
  EXPECT_EQ(uf.num_sets(), 1u);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(uf.find(static_cast<std::int32_t>(i)), uf.find(0));
  }
}

TEST(ClusterTest, NoPairsMeansSingletonComponents) {
  const auto set = cluster_contigs(4, {});
  EXPECT_EQ(set.num_components(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(set.component_of[i], static_cast<std::int32_t>(i));
    EXPECT_EQ(set.components[i].contig_ids, std::vector<std::int32_t>{static_cast<std::int32_t>(i)});
  }
}

TEST(ClusterTest, PairsMergeComponents) {
  const auto set = cluster_contigs(6, {{0, 2}, {2, 4}, {1, 5}});
  EXPECT_EQ(set.num_components(), 3u);  // {0,2,4}, {1,5}, {3}
  EXPECT_EQ(set.component_of[0], set.component_of[2]);
  EXPECT_EQ(set.component_of[0], set.component_of[4]);
  EXPECT_EQ(set.component_of[1], set.component_of[5]);
  EXPECT_NE(set.component_of[0], set.component_of[1]);
  EXPECT_NE(set.component_of[3], set.component_of[0]);
}

TEST(ClusterTest, ComponentMembersSortedAndIdsByMinMember) {
  const auto set = cluster_contigs(5, {{4, 1}, {3, 0}});
  // Components by smallest member: {0,3} -> id 0, {1,4} -> id 1, {2} -> id 2.
  ASSERT_EQ(set.num_components(), 3u);
  EXPECT_EQ(set.components[0].contig_ids, (std::vector<std::int32_t>{0, 3}));
  EXPECT_EQ(set.components[1].contig_ids, (std::vector<std::int32_t>{1, 4}));
  EXPECT_EQ(set.components[2].contig_ids, (std::vector<std::int32_t>{2}));
}

TEST(ClusterTest, ResultIndependentOfPairOrder) {
  // The hybrid run pools pairs in rank-concatenation order, which differs
  // from the shared-memory order; clustering must not care.
  std::vector<ContigPair> pairs{{0, 1}, {2, 3}, {1, 2}, {5, 6}, {8, 9}, {6, 8}};
  const auto reference = cluster_contigs(10, pairs);
  std::mt19937 gen(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(pairs.begin(), pairs.end(), gen);
    const auto shuffled = cluster_contigs(10, pairs);
    EXPECT_EQ(shuffled.component_of, reference.component_of) << "trial " << trial;
    ASSERT_EQ(shuffled.num_components(), reference.num_components());
    for (std::size_t c = 0; c < reference.num_components(); ++c) {
      EXPECT_EQ(shuffled.components[c].contig_ids, reference.components[c].contig_ids);
    }
  }
}

TEST(ClusterTest, SelfPairIsHarmless) {
  const auto set = cluster_contigs(3, {{1, 1}});
  EXPECT_EQ(set.num_components(), 3u);
}

TEST(ClusterTest, DuplicatePairsAreHarmless) {
  const auto set = cluster_contigs(3, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(set.num_components(), 2u);
}

TEST(ClusterTest, OutOfRangePairThrows) {
  EXPECT_THROW(cluster_contigs(3, {{0, 5}}), std::out_of_range);
  EXPECT_THROW(cluster_contigs(3, {{-1, 0}}), std::out_of_range);
}

TEST(ClusterTest, EmptyUniverse) {
  const auto set = cluster_contigs(0, {});
  EXPECT_EQ(set.num_components(), 0u);
  EXPECT_TRUE(set.component_of.empty());
}

TEST(ClusterTest, ComponentOfIsConsistentWithMembership) {
  const auto set = cluster_contigs(8, {{0, 7}, {1, 2}, {2, 3}});
  for (const auto& comp : set.components) {
    for (const auto id : comp.contig_ids) {
      EXPECT_EQ(set.component_of[static_cast<std::size_t>(id)], comp.id);
    }
  }
}

}  // namespace
}  // namespace trinity::chrysalis
