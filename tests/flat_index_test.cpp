// kmer::FlatKmerIndex — the open-addressing replacement for
// std::unordered_map<KmerCode, V> on the Chrysalis hot paths
// (kmer/flat_index.hpp).
//
// Pins exact behavioural parity against unordered_map on random corpora
// (same entries, same values, same lookup results, including misses), the
// linear-probe wraparound at the end of the slot array, growth with and
// without an up-front reserve, and the unordered_map-shaped surface the
// call sites depend on (operator[], emplace, find/end, lookup, range-for
// with structured bindings).

#include "kmer/flat_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

#include "seq/kmer.hpp"

namespace trinity::kmer {
namespace {

using seq::KmerCode;

TEST(FlatKmerIndex, StartsEmpty) {
  FlatKmerIndex<std::uint32_t> index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.find(42), index.end());
  EXPECT_EQ(index.lookup(42), nullptr);
  EXPECT_EQ(index.begin(), index.end());
}

TEST(FlatKmerIndex, OperatorBracketInsertsValueInitialized) {
  FlatKmerIndex<std::uint32_t> index;
  EXPECT_EQ(index[7], 0u);
  ++index[7];
  ++index[7];
  EXPECT_EQ(index.size(), 1u);
  ASSERT_NE(index.lookup(7), nullptr);
  EXPECT_EQ(*index.lookup(7), 2u);
}

TEST(FlatKmerIndex, EmplaceReportsInsertionLikeUnorderedMap) {
  FlatKmerIndex<int> index;
  auto [it1, inserted1] = index.emplace(5, 50);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(it1->first, 5u);
  EXPECT_EQ(it1->second, 50);
  auto [it2, inserted2] = index.emplace(5, 99);
  EXPECT_FALSE(inserted2);       // existing value untouched, like unordered_map
  EXPECT_EQ(it2->second, 50);
  EXPECT_EQ(index.size(), 1u);
}

TEST(FlatKmerIndex, FindAndMutateThroughIterator) {
  FlatKmerIndex<std::vector<int>> index;  // non-trivial V, like WeldCoreIndex
  index[3].push_back(1);
  auto it = index.find(3);
  ASSERT_NE(it, index.end());
  // The find() iterator addresses the live slot; mutations must stick.
  (*it).second.push_back(2);
  EXPECT_EQ(index.lookup(3)->size(), 2u);
}

TEST(FlatKmerIndex, ParityAgainstUnorderedMapOnRandomCorpora) {
  // Keys drawn from the full 64-bit space AND from a dense low-entropy set
  // (packed 2-bit codes are regular in their low bits — the pattern the
  // mixer must spread). Values are occurrence counts, as on the hot paths.
  std::mt19937_64 rng(20260805);
  for (const bool dense : {false, true}) {
    std::vector<KmerCode> keys;
    for (int i = 0; i < 20000; ++i) {
      keys.push_back(dense ? static_cast<KmerCode>(rng() % 4096) * 4 : rng());
    }
    FlatKmerIndex<std::uint32_t> flat;
    std::unordered_map<KmerCode, std::uint32_t> reference;
    for (const KmerCode key : keys) {
      ++flat[key];
      ++reference[key];
    }
    ASSERT_EQ(flat.size(), reference.size());
    for (const auto& [key, count] : reference) {
      const std::uint32_t* hit = flat.lookup(key);
      ASSERT_NE(hit, nullptr) << key;
      EXPECT_EQ(*hit, count) << key;
    }
    // Iteration covers exactly the reference entries.
    std::size_t seen = 0;
    for (const auto& [key, count] : flat) {
      const auto it = reference.find(key);
      ASSERT_NE(it, reference.end()) << key;
      EXPECT_EQ(count, it->second);
      ++seen;
    }
    EXPECT_EQ(seen, reference.size());
    // Misses agree too.
    for (int i = 0; i < 2000; ++i) {
      const KmerCode probe = rng();
      EXPECT_EQ(flat.lookup(probe) != nullptr, reference.count(probe) != 0) << probe;
    }
  }
}

TEST(FlatKmerIndex, ProbeChainsWrapAroundTheSlotArray) {
  // Fill a table past half full so some chains necessarily cross the
  // end of the power-of-two array; every key must remain reachable.
  FlatKmerIndex<std::uint32_t> index;
  index.reserve(64);
  const std::size_t capacity = index.capacity();
  std::vector<KmerCode> keys;
  // Adversarial keys: consecutive integers whose mixed hashes scatter, so
  // with enough of them some land in the final slots and wrap.
  for (KmerCode k = 0; keys.size() < (capacity * 6) / 10; ++k) {
    keys.push_back(k);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    index[keys[i]] = static_cast<std::uint32_t>(i);
  }
  EXPECT_EQ(index.capacity(), capacity) << "reserve() sizing must hold during the build";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(index.lookup(keys[i]), nullptr) << keys[i];
    EXPECT_EQ(*index.lookup(keys[i]), static_cast<std::uint32_t>(i));
  }
}

TEST(FlatKmerIndex, GrowsWithoutReserveAndKeepsEntries) {
  FlatKmerIndex<std::uint32_t> index;  // no reserve: must rehash repeatedly
  const int n = 5000;
  for (int i = 0; i < n; ++i) index[static_cast<KmerCode>(i) * 2654435761u] = i;
  EXPECT_EQ(index.size(), static_cast<std::size_t>(n));
  EXPECT_LE(index.load_factor(), 0.7);
  for (int i = 0; i < n; ++i) {
    const auto* hit = index.lookup(static_cast<KmerCode>(i) * 2654435761u);
    ASSERT_NE(hit, nullptr) << i;
    EXPECT_EQ(*hit, static_cast<std::uint32_t>(i));
  }
}

TEST(FlatKmerIndex, ReserveFromCountPreventsRehash) {
  // total-bases-style upper bound: reserving for n keys then inserting n
  // must never move the slot array (capacity stays put).
  FlatKmerIndex<std::uint32_t> index(10000);
  const std::size_t capacity = index.capacity();
  EXPECT_GE(static_cast<double>(capacity) * 0.7, 10000.0);
  for (int i = 0; i < 10000; ++i) ++index[static_cast<KmerCode>(i) * 0x9e3779b9u];
  EXPECT_EQ(index.capacity(), capacity);
  // A smaller re-reserve is a no-op; shrinking never happens.
  index.reserve(16);
  EXPECT_EQ(index.capacity(), capacity);
}

TEST(FlatKmerIndex, ConstIterationAndFind) {
  FlatKmerIndex<int> index;
  index[1] = 10;
  index[2] = 20;
  const FlatKmerIndex<int>& view = index;
  EXPECT_NE(view.find(1), view.end());
  EXPECT_EQ(view.find(3), view.end());
  int sum = 0;
  for (const auto& [key, value] : view) sum += value;
  EXPECT_EQ(sum, 30);
}

}  // namespace
}  // namespace trinity::kmer
