// Tests for the validation report writers.

#include <gtest/gtest.h>

#include <sstream>

#include "validate/report.hpp"

namespace trinity::validate {
namespace {

CategoryCounts sample_counts() {
  CategoryCounts c;
  c.full_identical = 90;
  c.full_diverged = 5;
  c.partial = 4;
  c.unmatched = 1;
  c.partial_identities = {0.9, 0.95};
  return c;
}

TEST(ReportTest, CategoriesCsvHasHeaderAndRows) {
  std::ostringstream out;
  write_categories_csv(out, {{"parallel", sample_counts()}, {"original", sample_counts()}});
  const std::string csv = out.str();
  EXPECT_NE(csv.find("series,full_identical"), std::string::npos);
  EXPECT_NE(csv.find("parallel,90,5,4,1,"), std::string::npos);
  EXPECT_NE(csv.find("original,90,5,4,1,"), std::string::npos);
  // Mean of the partial identities appears.
  EXPECT_NE(csv.find("0.925"), std::string::npos);
}

TEST(ReportTest, ReferenceCsvHasHeaderAndRows) {
  ReferenceComparison cmp;
  cmp.full_length_genes = 10;
  cmp.full_length_isoforms = 14;
  cmp.fused_genes = 2;
  cmp.fused_isoforms = 1;
  std::ostringstream out;
  write_reference_csv(out, {{"parallel", cmp}});
  EXPECT_NE(out.str().find("parallel,10,14,2,1"), std::string::npos);
}

TEST(ReportTest, MarkdownContainsAllSections) {
  ReferenceComparison cmp;
  cmp.full_length_genes = 7;
  util::TTestResult t;
  t.t = 0.5;
  t.p_two_sided = 0.62;
  std::ostringstream out;
  write_markdown_report(out, "test dataset", {{"parallel vs original", sample_counts()}},
                        {{"parallel", cmp}}, t);
  const std::string md = out.str();
  EXPECT_NE(md.find("# Validation report"), std::string::npos);
  EXPECT_NE(md.find("test dataset"), std::string::npos);
  EXPECT_NE(md.find("Figure 4"), std::string::npos);
  EXPECT_NE(md.find("Figures 5 and 6"), std::string::npos);
  EXPECT_NE(md.find("no significant difference"), std::string::npos);
  EXPECT_NE(md.find("| parallel vs original | 90 | 5 | 4 | 1 |"), std::string::npos);
}

TEST(ReportTest, SignificantVerdictReported) {
  util::TTestResult t;
  t.significant_at_5pct = true;
  t.p_two_sided = 0.01;
  std::ostringstream out;
  write_markdown_report(out, "d", {}, {}, t);
  EXPECT_NE(out.str().find("SIGNIFICANT difference"), std::string::npos);
}

TEST(ReportTest, EmptySectionsOmitted) {
  std::ostringstream out;
  write_markdown_report(out, "d", {}, {}, util::TTestResult{});
  EXPECT_EQ(out.str().find("Figure 4"), std::string::npos);
  EXPECT_EQ(out.str().find("Figures 5 and 6"), std::string::npos);
}

}  // namespace
}  // namespace trinity::validate
