// Tests for the simpi extensions: one-sided shared counters (the
// MPI_Fetch_and_op analogue) and collective ordered file output (the
// MPI-I/O analogue).

#include <gtest/gtest.h>

#include <fstream>
#include <numeric>
#include <set>

#include "simpi/context.hpp"
#include "simpi/file_io.hpp"
#include "simpi/nonblocking.hpp"
#include "simpi/rma.hpp"
#include "simpi/subcomm.hpp"
#include "test_helpers.hpp"

namespace trinity::simpi {
namespace {

using trinity::testing::TempDir;

// --- SharedCounter --------------------------------------------------------------

TEST(SharedCounterTest, StartsAtZero) {
  run(2, [](Context& ctx) {
    SharedCounter counter(ctx, 1);
    ctx.barrier();
    // Neither rank has incremented yet.
    EXPECT_EQ(counter.load(), 0u);
    ctx.barrier();
  });
}

TEST(SharedCounterTest, FetchAddReturnsPreviousValue) {
  run(1, [](Context& ctx) {
    SharedCounter counter(ctx, 2);
    EXPECT_EQ(counter.fetch_add(1), 0u);
    EXPECT_EQ(counter.fetch_add(5), 1u);
    EXPECT_EQ(counter.load(), 6u);
  });
}

class SharedCounterWorlds : public ::testing::TestWithParam<int> {};

TEST_P(SharedCounterWorlds, ClaimsArePairwiseDistinctAndComplete) {
  const int nranks = GetParam();
  constexpr std::uint64_t kClaimsPerRank = 200;
  std::vector<std::vector<std::uint64_t>> claims(static_cast<std::size_t>(nranks));
  run(nranks, [&](Context& ctx) {
    SharedCounter counter(ctx, 3);
    auto& mine = claims[static_cast<std::size_t>(ctx.rank())];
    for (std::uint64_t i = 0; i < kClaimsPerRank; ++i) {
      mine.push_back(counter.fetch_add(1));
    }
  });
  std::set<std::uint64_t> all;
  for (const auto& per_rank : claims) {
    for (const auto v : per_rank) {
      EXPECT_TRUE(all.insert(v).second) << "value " << v << " claimed twice";
    }
  }
  // Exactly [0, nranks * kClaimsPerRank) claimed.
  EXPECT_EQ(all.size(), static_cast<std::size_t>(nranks) * kClaimsPerRank);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(nranks) * kClaimsPerRank - 1);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SharedCounterWorlds, ::testing::Values(1, 2, 4, 8));

TEST(SharedCounterTest, DistinctIdsAreIndependent) {
  run(1, [](Context& ctx) {
    SharedCounter a(ctx, 10);
    SharedCounter b(ctx, 11);
    a.fetch_add(7);
    EXPECT_EQ(a.load(), 7u);
    EXPECT_EQ(b.load(), 0u);
  });
}

TEST(SharedCounterTest, ResetRestartsTheSequence) {
  run(1, [](Context& ctx) {
    SharedCounter counter(ctx, 12);
    counter.fetch_add(100);
    counter.reset(3);
    EXPECT_EQ(counter.fetch_add(1), 3u);
  });
}

TEST(SharedCounterTest, OperationsChargeCommTime) {
  run(2, [](Context& ctx) {
    const double before = ctx.comm_seconds();
    SharedCounter counter(ctx, 13);
    counter.fetch_add(1);
    EXPECT_GT(ctx.comm_seconds(), before);
  });
}

// --- write_file_ordered -----------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

class CollectiveWrite : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveWrite, ConcatenatesInRankOrder) {
  const int nranks = GetParam();
  const TempDir dir("cwrite");
  const std::string path = dir.file("out.bin");
  run(nranks, [&](Context& ctx) {
    const std::string mine = "rank" + std::to_string(ctx.rank()) + ";";
    write_file_ordered(ctx, path, mine);
  });
  std::string expected;
  for (int r = 0; r < nranks; ++r) expected += "rank" + std::to_string(r) + ";";
  EXPECT_EQ(read_file(path), expected);
}

TEST_P(CollectiveWrite, HandlesUnequalAndEmptyContributions) {
  const int nranks = GetParam();
  const TempDir dir("cwrite2");
  const std::string path = dir.file("out.bin");
  run(nranks, [&](Context& ctx) {
    // Odd ranks contribute nothing; even ranks contribute rank+1 bytes.
    std::string mine;
    if (ctx.rank() % 2 == 0) {
      mine.assign(static_cast<std::size_t>(ctx.rank()) + 1, 'a' + static_cast<char>(ctx.rank()));
    }
    write_file_ordered(ctx, path, mine);
  });
  std::string expected;
  for (int r = 0; r < nranks; r += 2) {
    expected.append(static_cast<std::size_t>(r) + 1, 'a' + static_cast<char>(r));
  }
  EXPECT_EQ(read_file(path), expected);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveWrite, ::testing::Values(1, 2, 3, 5, 8));

TEST(CollectiveWriteEdge, OverwritesExistingFile) {
  const TempDir dir("cwrite3");
  const std::string path = dir.file("out.bin");
  {
    std::ofstream out(path);
    out << "previous content that is much longer than the new content";
  }
  run(2, [&](Context& ctx) {
    write_file_ordered(ctx, path, ctx.rank() == 0 ? "ab" : "cd");
  });
  EXPECT_EQ(read_file(path), "abcd");
}

TEST(CollectiveWriteEdge, UnwritableDirectoryThrows) {
  EXPECT_THROW(run(2,
                   [&](Context& ctx) {
                     write_file_ordered(ctx, "/nonexistent_dir_xyz/file.bin", "data");
                   }),
               std::runtime_error);
}

// --- nonblocking p2p ---------------------------------------------------------------

TEST(NonblockingTest, IrecvTestReflectsArrival) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 1) {
      auto req = irecv(ctx, 0, 5);
      // Nothing sent yet (sender waits for our go signal).
      EXPECT_FALSE(req.test());
      ctx.send_value<int>(0, 6, 1);  // go
      const Message msg = req.wait();
      EXPECT_EQ(msg.source, 0);
      ASSERT_EQ(msg.payload.size(), sizeof(int));
    } else {
      ctx.recv_value<int>(1, 6);
      ctx.send_value<int>(1, 5, 99);
    }
  });
}

TEST(NonblockingTest, TestTurnsTrueAfterDelivery) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 7, 42);
      ctx.barrier();
    } else {
      ctx.barrier();  // after this, the message has definitely arrived
      auto req = irecv(ctx, 0, 7);
      EXPECT_TRUE(req.test());
      EXPECT_EQ(req.wait().payload.size(), sizeof(int));
    }
  });
}

TEST(NonblockingTest, WaitTwiceThrows) {
  run(1, [](Context& ctx) {
    ctx.send_value<int>(0, 8, 1);  // self-send
    auto req = irecv(ctx, 0, 8);
    (void)req.wait();
    EXPECT_THROW((void)req.wait(), std::logic_error);
  });
}

TEST(NonblockingTest, OverlappedRequestsCompleteIndependently) {
  run(3, [](Context& ctx) {
    if (ctx.rank() == 0) {
      auto from1 = irecv(ctx, 1, 9);
      auto from2 = irecv(ctx, 2, 9);
      const Message m2 = from2.wait();
      const Message m1 = from1.wait();
      EXPECT_EQ(m1.source, 1);
      EXPECT_EQ(m2.source, 2);
    } else {
      ctx.send_value<int>(0, 9, ctx.rank());
    }
  });
}

// --- scatterv / alltoallv --------------------------------------------------------------

class ScattervWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ScattervWorlds, EachRankGetsItsPart) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<std::vector<int>> parts;
    if (ctx.rank() == 0) {
      for (int r = 0; r < nranks; ++r) {
        parts.push_back(std::vector<int>(static_cast<std::size_t>(r) + 1, r * 11));
      }
    }
    const auto mine = scatterv(ctx, parts, 0);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(ctx.rank()) + 1);
    for (const int v : mine) EXPECT_EQ(v, ctx.rank() * 11);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ScattervWorlds, ::testing::Values(1, 2, 4, 6));

TEST(ScattervTest, RootWithWrongPartCountThrows) {
  EXPECT_THROW(run(2,
                   [](Context& ctx) {
                     std::vector<std::vector<int>> parts(1);  // wrong: need 2
                     (void)scatterv(ctx, parts, 0);
                   }),
               std::invalid_argument);
}

class AlltoallvWorlds : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallvWorlds, TransposesThePartMatrix) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    // send_parts[d][0] encodes (source, dest).
    std::vector<std::vector<int>> send_parts;
    for (int d = 0; d < nranks; ++d) {
      send_parts.push_back({ctx.rank() * 100 + d});
    }
    const auto received = alltoallv(ctx, send_parts);
    ASSERT_EQ(received.size(), static_cast<std::size_t>(nranks));
    for (int src = 0; src < nranks; ++src) {
      ASSERT_EQ(received[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_EQ(received[static_cast<std::size_t>(src)][0], src * 100 + ctx.rank());
    }
  });
}

TEST_P(AlltoallvWorlds, EmptyPartsAreFine) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<std::vector<double>> send_parts(static_cast<std::size_t>(nranks));
    const auto received = alltoallv(ctx, send_parts);
    for (const auto& part : received) EXPECT_TRUE(part.empty());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, AlltoallvWorlds, ::testing::Values(1, 2, 3, 5, 8));

TEST(AlltoallvTest, ChargesCommunication) {
  run(2, [](Context& ctx) {
    const double before = ctx.comm_seconds();
    std::vector<std::vector<int>> parts{{1, 2, 3}, {4, 5, 6}};
    (void)alltoallv(ctx, parts);
    EXPECT_GT(ctx.comm_seconds(), before);
  });
}

// --- Context::alltoallv (first-class collective) -----------------------------------

class ContextAlltoallvWorlds : public ::testing::TestWithParam<int> {};

TEST_P(ContextAlltoallvWorlds, TransposesThePartMatrix) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<std::vector<int>> send_parts;
    for (int d = 0; d < nranks; ++d) {
      // Part lengths vary by (source, dest) so size bookkeeping is exercised.
      send_parts.emplace_back(static_cast<std::size_t>((ctx.rank() + d) % 3 + 1),
                              ctx.rank() * 100 + d);
    }
    const auto received = ctx.alltoallv(send_parts);
    ASSERT_EQ(received.size(), static_cast<std::size_t>(nranks));
    for (int src = 0; src < nranks; ++src) {
      const auto& part = received[static_cast<std::size_t>(src)];
      ASSERT_EQ(part.size(), static_cast<std::size_t>((src + ctx.rank()) % 3 + 1));
      for (const int v : part) EXPECT_EQ(v, src * 100 + ctx.rank());
    }
  });
}

TEST_P(ContextAlltoallvWorlds, EmptyPartsAreFine) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<std::vector<double>> send_parts(static_cast<std::size_t>(nranks));
    const auto received = ctx.alltoallv(send_parts);
    for (const auto& part : received) EXPECT_TRUE(part.empty());
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ContextAlltoallvWorlds, ::testing::Values(1, 2, 3, 5, 8));

TEST(ContextAlltoallvTest, AccountsOnItsOwnRow) {
  const auto ranks = run(3, [](Context& ctx) {
    std::vector<std::vector<int>> parts(3);
    for (auto& p : parts) p.assign(2, ctx.rank());  // 6 ints out per rank
    (void)ctx.alltoallv(parts);
  });
  for (const auto& r : ranks) {
    const auto& row = r.comm.of(CommOp::kAlltoallv);
    EXPECT_EQ(row.calls, 1u);
    // The logical row counts the full send/receive matrix row, own slot
    // included, like the blocking allgatherv counts the pooled result.
    EXPECT_EQ(row.bytes_sent, 6 * sizeof(int));
    EXPECT_EQ(row.bytes_received, 6 * sizeof(int));
    EXPECT_EQ(r.comm.of(CommOp::kExtension).calls, 0u);
  }
}

TEST(ContextAlltoallvTest, WrongPartCountThrows) {
  EXPECT_THROW(run(2,
                   [](Context& ctx) {
                     std::vector<std::vector<int>> parts(1);  // wrong: need 2
                     (void)ctx.alltoallv(parts);
                   }),
               std::invalid_argument);
}

// --- IAlltoallv (nonblocking) ------------------------------------------------------

class IAlltoallvWorlds : public ::testing::TestWithParam<int> {};

TEST_P(IAlltoallvWorlds, WaitMatchesTheBlockingCollective) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<std::vector<int>> send_parts;
    for (int d = 0; d < nranks; ++d) {
      send_parts.emplace_back(static_cast<std::size_t>(d % 2 + 1), ctx.rank() * 10 + d);
    }
    const auto want = ctx.alltoallv(send_parts);
    IAlltoallv<int> pending(ctx, std::move(send_parts));
    EXPECT_EQ(pending.wait(), want);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, IAlltoallvWorlds, ::testing::Values(1, 2, 3, 5, 8));

TEST(IAlltoallvTest, AccountsOnTheAlltoallvRow) {
  const auto ranks = run(2, [](Context& ctx) {
    std::vector<std::vector<std::int64_t>> parts(2);
    for (auto& p : parts) p.assign(4, ctx.rank());  // 8 values out per rank
    IAlltoallv<std::int64_t> pending(ctx, std::move(parts));
    (void)pending.wait();
  });
  for (const auto& r : ranks) {
    const auto& row = r.comm.of(CommOp::kAlltoallv);
    EXPECT_EQ(row.calls, 1u);
    EXPECT_EQ(row.bytes_sent, 8 * sizeof(std::int64_t));
    EXPECT_EQ(row.bytes_received, 8 * sizeof(std::int64_t));
  }
}

TEST(IAlltoallvTest, OverlapCreditReducesTheModeledCost) {
  double charged_plain = 0.0;
  double charged_credited = 0.0;
  run(2, [&](Context& ctx) {
    std::vector<std::vector<int>> parts(2, std::vector<int>(4096, ctx.rank()));
    IAlltoallv<int> a(ctx, parts, 0);
    const double before_a = ctx.comm_seconds();
    (void)a.wait(0.0);
    if (ctx.rank() == 0) charged_plain = ctx.comm_seconds() - before_a;
    IAlltoallv<int> b(ctx, parts, 0);
    const double before_b = ctx.comm_seconds();
    (void)b.wait(1e9);  // fully hidden behind (claimed) compute
    if (ctx.rank() == 0) charged_credited = ctx.comm_seconds() - before_b;
  });
  EXPECT_GT(charged_plain, 0.0);
  EXPECT_LT(charged_credited, charged_plain);
}

TEST(IAlltoallvTest, DistinctChannelsOverlapSafely) {
  run(3, [](Context& ctx) {
    std::vector<std::vector<int>> low(3), high(3);
    for (int d = 0; d < 3; ++d) {
      low[static_cast<std::size_t>(d)].assign(2, ctx.rank());
      high[static_cast<std::size_t>(d)].assign(2, ctx.rank() + 100);
    }
    IAlltoallv<int> a(ctx, low, 0);
    IAlltoallv<int> b(ctx, high, 1);
    const auto got_b = b.wait();  // out of construction order: tags must not cross
    const auto got_a = a.wait();
    for (int src = 0; src < 3; ++src) {
      EXPECT_EQ(got_a[static_cast<std::size_t>(src)], std::vector<int>(2, src));
      EXPECT_EQ(got_b[static_cast<std::size_t>(src)], std::vector<int>(2, src + 100));
    }
  });
}

TEST(IAlltoallvTest, WaitTwiceThrows) {
  run(2, [](Context& ctx) {
    IAlltoallv<int> pending(ctx, std::vector<std::vector<int>>(2));
    (void)pending.wait();
    EXPECT_THROW((void)pending.wait(), std::logic_error);
  });
}

TEST(IAlltoallvTest, WrongPartCountThrows) {
  run(2, [](Context& ctx) {
    EXPECT_THROW(IAlltoallv<int>(ctx, std::vector<std::vector<int>>(3)),
                 std::invalid_argument);
  });
}

// --- SubComm (MPI_Comm_split) -------------------------------------------------------

class SubCommWorlds : public ::testing::TestWithParam<int> {};

TEST_P(SubCommWorlds, SplitByParityPartitionsTheWorld) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    const auto sub = SubComm::split(ctx, ctx.rank() % 2);
    const int expected_size = nranks / 2 + (ctx.rank() % 2 == 0 ? nranks % 2 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.color(), ctx.rank() % 2);
    // Group order by world rank: this rank's position among same-parity ranks.
    EXPECT_EQ(sub.world_rank_of(sub.rank()), ctx.rank());
    EXPECT_EQ(sub.rank(), ctx.rank() / 2);
  });
}

TEST_P(SubCommWorlds, GroupAllgathervStaysWithinTheGroup) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    auto sub = SubComm::split(ctx, ctx.rank() % 2);
    const auto all = sub.allgatherv(std::vector<int>{ctx.rank()});
    ASSERT_EQ(all.size(), static_cast<std::size_t>(sub.size()));
    for (const int r : all) {
      EXPECT_EQ(r % 2, ctx.rank() % 2) << "value leaked across groups";
    }
    // Values appear in group order.
    for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
  });
}

TEST_P(SubCommWorlds, GroupBcastReachesAllMembers) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    auto sub = SubComm::split(ctx, ctx.rank() % 2);
    std::vector<int> data;
    if (sub.rank() == 0) data = {sub.color() * 100};
    sub.bcast(data, 0);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], (ctx.rank() % 2) * 100);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SubCommWorlds, ::testing::Values(1, 2, 3, 5, 8));

TEST(SubCommTest, KeyReordersGroupRanks) {
  run(4, [](Context& ctx) {
    // All ranks in one group; key = -world_rank reverses the order.
    auto sub = SubComm::split(ctx, 0, -ctx.rank());
    EXPECT_EQ(sub.rank(), 3 - ctx.rank());
    EXPECT_EQ(sub.world_rank_of(0), 3);
  });
}

TEST(SubCommTest, SingletonGroupsWork) {
  run(3, [](Context& ctx) {
    auto sub = SubComm::split(ctx, ctx.rank());  // every rank its own group
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    sub.barrier();  // must not deadlock
    const auto all = sub.allgatherv(std::vector<int>{ctx.rank()});
    EXPECT_EQ(all, std::vector<int>{ctx.rank()});
  });
}

TEST(SubCommTest, GroupBarrierSynchronizesMembers) {
  run(4, [](Context& ctx) {
    auto sub = SubComm::split(ctx, ctx.rank() % 2);
    for (int round = 0; round < 5; ++round) {
      sub.barrier();
      const auto all = sub.allgatherv(std::vector<int>{round});
      for (const int v : all) EXPECT_EQ(v, round);
    }
  });
}

}  // namespace
}  // namespace trinity::simpi
