// Tests for the synthetic transcriptome and read simulator — the stand-in
// for the paper's datasets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "seq/dna.hpp"
#include "sim/transcriptome.hpp"

namespace trinity::sim {
namespace {

TranscriptomeOptions small_topts() {
  TranscriptomeOptions o;
  o.num_genes = 20;
  return o;
}

TEST(TranscriptomeTest, ProducesRequestedGenes) {
  util::Rng rng(1);
  const auto t = simulate_transcriptome(small_topts(), rng);
  EXPECT_EQ(t.genes.size(), 20u);
  EXPECT_EQ(t.transcripts.size(), t.gene_of_transcript.size());
  EXPECT_GE(t.transcripts.size(), t.genes.size());  // >= 1 isoform per gene
}

TEST(TranscriptomeTest, IsoformZeroIsFullExonChain) {
  util::Rng rng(2);
  const auto t = simulate_transcriptome(small_topts(), rng);
  for (const auto& gene : t.genes) {
    std::size_t full_length = 0;
    for (const auto& exon : gene.exons) full_length += exon.size();
    ASSERT_FALSE(gene.isoform_ids.empty());
    EXPECT_EQ(t.transcripts[gene.isoform_ids[0]].bases.size(), full_length);
  }
}

TEST(TranscriptomeTest, IsoformsAreSubsequencesOfExonChain) {
  util::Rng rng(3);
  const auto t = simulate_transcriptome(small_topts(), rng);
  for (const auto& gene : t.genes) {
    const std::string& full = t.transcripts[gene.isoform_ids[0]].bases;
    for (const auto iso : gene.isoform_ids) {
      EXPECT_LE(t.transcripts[iso].bases.size(), full.size());
      EXPECT_TRUE(seq::is_acgt(t.transcripts[iso].bases));
    }
  }
}

TEST(TranscriptomeTest, GeneOfTranscriptIsConsistent) {
  util::Rng rng(4);
  const auto t = simulate_transcriptome(small_topts(), rng);
  for (std::size_t g = 0; g < t.genes.size(); ++g) {
    for (const auto iso : t.genes[g].isoform_ids) {
      EXPECT_EQ(t.gene_of_transcript[iso], static_cast<std::int32_t>(g));
    }
  }
}

TEST(TranscriptomeTest, DeterministicForSameSeed) {
  util::Rng r1(7);
  util::Rng r2(7);
  const auto a = simulate_transcriptome(small_topts(), r1);
  const auto b = simulate_transcriptome(small_topts(), r2);
  ASSERT_EQ(a.transcripts.size(), b.transcripts.size());
  for (std::size_t i = 0; i < a.transcripts.size(); ++i) {
    EXPECT_EQ(a.transcripts[i].bases, b.transcripts[i].bases);
  }
}

TEST(TranscriptomeTest, SharedUtrCreatesOverlaps) {
  TranscriptomeOptions o = small_topts();
  o.num_genes = 60;
  o.shared_utr_probability = 1.0;  // force overlaps
  util::Rng rng(9);
  const auto t = simulate_transcriptome(o, rng);
  // Consecutive genes must share their UTR tails: gene g+1's first exon
  // begins with gene g's last-exon tail.
  std::size_t overlaps = 0;
  for (std::size_t g = 0; g + 1 < t.genes.size(); ++g) {
    const std::string& last_exon = t.genes[g].exons.back();
    const std::string tail =
        last_exon.substr(last_exon.size() - std::min<std::size_t>(o.shared_utr_length,
                                                                  last_exon.size()));
    if (t.genes[g + 1].exons.front().rfind(tail, 0) == 0) ++overlaps;
  }
  EXPECT_EQ(overlaps, t.genes.size() - 1);
}

TEST(TranscriptomeTest, BadOptionsThrow) {
  TranscriptomeOptions o = small_topts();
  o.min_exons = 0;
  util::Rng rng(1);
  EXPECT_THROW(simulate_transcriptome(o, rng), std::invalid_argument);
  o = small_topts();
  o.max_exon_length = o.min_exon_length - 1;
  EXPECT_THROW(simulate_transcriptome(o, rng), std::invalid_argument);
}

// --- reads ---------------------------------------------------------------------------

ReadSimOptions read_opts() {
  ReadSimOptions o;
  o.coverage = 10.0;
  o.error_rate = 0.0;
  return o;
}

TEST(ReadSimTest, PairedReadsComeInMatePairs) {
  util::Rng rng(11);
  const auto t = simulate_transcriptome(small_topts(), rng);
  const auto reads = simulate_reads(t, read_opts(), rng);
  ASSERT_GT(reads.reads.size(), 0u);
  EXPECT_EQ(reads.reads.size() % 2, 0u);
  for (std::size_t i = 0; i + 1 < reads.reads.size(); i += 2) {
    EXPECT_EQ(reads.reads[i].name.substr(reads.reads[i].name.size() - 2), "/1");
    EXPECT_EQ(reads.reads[i + 1].name.substr(reads.reads[i + 1].name.size() - 2), "/2");
    EXPECT_EQ(reads.transcript_of_read[i], reads.transcript_of_read[i + 1]);
  }
}

TEST(ReadSimTest, ErrorFreeReadsMatchSourceTranscript) {
  util::Rng rng(13);
  const auto t = simulate_transcriptome(small_topts(), rng);
  const auto reads = simulate_reads(t, read_opts(), rng);
  for (std::size_t i = 0; i < std::min<std::size_t>(reads.reads.size(), 50); ++i) {
    const auto& src = t.transcripts[static_cast<std::size_t>(reads.transcript_of_read[i])].bases;
    const std::string& bases = reads.reads[i].bases;
    const bool fwd = src.find(bases) != std::string::npos;
    const bool rev = src.find(seq::reverse_complement(bases)) != std::string::npos;
    EXPECT_TRUE(fwd || rev) << "read " << i << " not a substring of its source";
  }
}

TEST(ReadSimTest, ReadLengthHonored) {
  util::Rng rng(17);
  const auto t = simulate_transcriptome(small_topts(), rng);
  auto o = read_opts();
  o.read_length = 75;
  const auto reads = simulate_reads(t, o, rng);
  for (const auto& r : reads.reads) EXPECT_LE(r.bases.size(), 75u);
}

TEST(ReadSimTest, CoverageApproximatelyHonored) {
  util::Rng rng(19);
  const auto t = simulate_transcriptome(small_topts(), rng);
  auto o = read_opts();
  o.coverage = 20.0;
  o.expression_sigma = 0.0;  // uniform expression so coverage is exact-ish
  const auto reads = simulate_reads(t, o, rng);
  std::size_t read_bases = 0;
  for (const auto& r : reads.reads) read_bases += r.bases.size();
  std::size_t ref_bases = 0;
  for (const auto& tr : t.transcripts) ref_bases += tr.bases.size();
  const double achieved = static_cast<double>(read_bases) / static_cast<double>(ref_bases);
  EXPECT_NEAR(achieved, 20.0, 4.0);
}

TEST(ReadSimTest, ErrorRateApproximatelyHonored) {
  util::Rng rng(23);
  const auto t = simulate_transcriptome(small_topts(), rng);
  auto o = read_opts();
  o.error_rate = 0.02;
  o.paired = false;
  const auto noisy = simulate_reads(t, o, rng);

  std::size_t mismatches = 0;
  std::size_t bases = 0;
  for (std::size_t i = 0; i < noisy.reads.size(); ++i) {
    const auto& src =
        t.transcripts[static_cast<std::size_t>(noisy.transcript_of_read[i])].bases;
    // Locate by brute force against the error-free source: count the
    // placement with the fewest mismatches.
    const std::string& r = noisy.reads[i].bases;
    std::size_t best = r.size();
    for (std::size_t p = 0; p + r.size() <= src.size(); ++p) {
      std::size_t mm = 0;
      for (std::size_t j = 0; j < r.size() && mm < best; ++j) {
        if (src[p + j] != r[j]) ++mm;
      }
      best = std::min(best, mm);
    }
    mismatches += best;
    bases += r.size();
    if (bases > 50000) break;
  }
  const double rate = static_cast<double>(mismatches) / static_cast<double>(bases);
  EXPECT_NEAR(rate, 0.02, 0.008);
}

TEST(ReadSimTest, ExpressionDynamicRangeIsWide) {
  util::Rng rng(29);
  TranscriptomeOptions to = small_topts();
  to.num_genes = 50;
  const auto t = simulate_transcriptome(to, rng);
  auto o = read_opts();
  o.expression_sigma = 2.0;
  const auto reads = simulate_reads(t, o, rng);
  std::vector<std::size_t> per_transcript(t.transcripts.size(), 0);
  for (const auto tr : reads.transcript_of_read) {
    ++per_transcript[static_cast<std::size_t>(tr)];
  }
  const auto minmax = std::minmax_element(per_transcript.begin(), per_transcript.end());
  // Log-normal sigma=2 produces orders-of-magnitude spread.
  EXPECT_GT(*minmax.second, 10 * std::max<std::size_t>(*minmax.first, 1));
}

TEST(ReadSimTest, QualityStringMarksInjectedErrors) {
  util::Rng rng(31);
  const auto t = simulate_transcriptome(small_topts(), rng);
  auto o = read_opts();
  o.error_rate = 0.03;
  o.paired = false;
  const auto reads = simulate_reads(t, o, rng);
  ASSERT_FALSE(reads.reads.empty());
  std::size_t checked = 0;
  for (std::size_t i = 0; i < reads.reads.size() && checked < 30; ++i, ++checked) {
    const auto& read = reads.reads[i];
    ASSERT_EQ(read.quality.size(), read.bases.size());
    const auto& src =
        t.transcripts[static_cast<std::size_t>(reads.transcript_of_read[i])].bases;
    // Error-free reconstruction: find the placement (single-end reads are
    // forward substrings before errors), then verify mismatches <-> '#'.
    const std::string clean = [&] {
      std::string best;
      std::size_t best_mm = read.bases.size() + 1;
      for (std::size_t p = 0; p + read.bases.size() <= src.size(); ++p) {
        std::size_t mm = 0;
        for (std::size_t j = 0; j < read.bases.size(); ++j) {
          if (src[p + j] != read.bases[j]) ++mm;
        }
        if (mm < best_mm) {
          best_mm = mm;
          best = src.substr(p, read.bases.size());
        }
      }
      return best;
    }();
    ASSERT_FALSE(clean.empty());
    for (std::size_t j = 0; j < read.bases.size(); ++j) {
      if (read.quality[j] == '#') {
        EXPECT_NE(read.bases[j], clean[j]) << "low-quality base should be an error";
      } else {
        EXPECT_EQ(read.bases[j], clean[j]) << "high-quality base should be clean";
      }
    }
  }
}

TEST(PresetTest, KnownPresetsConstruct) {
  for (const auto* name :
       {"tiny", "sugarbeet_like", "whitefly_like", "schizophrenia_like", "drosophila_like"}) {
    const auto p = preset(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.transcriptome.num_genes, 0u);
  }
}

TEST(PresetTest, UnknownPresetThrows) {
  EXPECT_THROW(preset("maize"), std::invalid_argument);
}

TEST(PresetTest, TinyDatasetSimulatesEndToEnd) {
  const auto d = simulate_dataset(preset("tiny"));
  EXPECT_GT(d.transcriptome.transcripts.size(), 0u);
  EXPECT_GT(d.reads.reads.size(), 100u);
}

TEST(PresetTest, SugarbeetIsLargestPreset) {
  // The paper: "Our sugarbeet dataset is larger than a typical test
  // dataset" — the preset hierarchy mirrors that.
  const auto sugarbeet = preset("sugarbeet_like");
  for (const auto* other : {"whitefly_like", "schizophrenia_like", "drosophila_like"}) {
    EXPECT_GT(sugarbeet.transcriptome.num_genes, preset(other).transcriptome.num_genes);
  }
}

}  // namespace
}  // namespace trinity::sim
