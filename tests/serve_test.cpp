// Tests for the serve layer: job-spec parsing/validation, the rank pool,
// typed admission control (quota rejects, bounded-queue backpressure),
// end-to-end scheduling over the shared pool, and priority preemption
// producing byte-identical transcripts after checkpoint -> requeue ->
// resume.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/run_report.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "seq/fasta.hpp"
#include "serve/server.hpp"
#include "sim/transcriptome.hpp"
#include "simpi/rank_pool.hpp"
#include "test_helpers.hpp"

namespace trinity::serve {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Simulated reads written to disk once, shared by every test job.
const std::string& shared_reads_path() {
  static const std::string path = [] {
    auto p = sim::preset("tiny");
    p.reads.coverage = 25.0;
    p.reads.expression_sigma = 0.7;
    const auto data = sim::simulate_dataset(p);
    static TempDir dir("serve_reads");  // outlives every test in the binary
    const std::string reads = dir.file("reads.fa");
    seq::write_fasta(reads, data.reads.reads);
    return reads;
  }();
  return path;
}

/// Byte-reproducible job options (single OpenMP thread, no RSS sampler).
pipeline::PipelineOptions job_options(int nranks = 2) {
  pipeline::PipelineOptions o;
  o.k = 15;
  o.nranks = nranks;
  o.omp_threads = 1;
  o.model_threads_per_rank = 4;
  o.trace_sample_interval_ms = 0;
  return o;
}

JobSpec make_spec(const std::string& tenant, const std::string& job_id, int priority = 0,
                  int nranks = 2) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.job_id = job_id;
  spec.priority = priority;
  spec.reads_path = shared_reads_path();
  spec.options = job_options(nranks);
  return spec;
}

JobStatus status_of(const JobServer& server, const std::string& job_id) {
  for (const auto& job : server.jobs()) {
    if (job.job_id == job_id) return job;
  }
  ADD_FAILURE() << "no job " << job_id;
  return {};
}

// --- job-spec parsing -------------------------------------------------------------

TEST(JobSpec, ParsesFullSpec) {
  const JobSpec spec = parse_job_spec_text(
      R"({"tenant": "alice", "job-id": "j1", "priority": 7, "reads": "/data/reads.fa",
          "rss-estimate-mb": 128, "ranks": 4, "k": 21, "overlap": false})",
      "<test>");
  EXPECT_EQ(spec.tenant, "alice");
  EXPECT_EQ(spec.job_id, "j1");
  EXPECT_EQ(spec.priority, 7);
  EXPECT_EQ(spec.reads_path, "/data/reads.fa");
  EXPECT_EQ(spec.rss_estimate_bytes, 128u * 1024 * 1024);
  EXPECT_EQ(spec.options.nranks, 4);
  EXPECT_EQ(spec.options.k, 21);
  EXPECT_FALSE(spec.options.overlap);
}

TEST(JobSpec, UnderscoreSpellingsWork) {
  const JobSpec spec = parse_job_spec_text(
      R"({"tenant": "t", "reads": "/r.fa", "job_id": "u1", "rss_estimate_mb": 1})",
      "<test>");
  EXPECT_EQ(spec.job_id, "u1");
  EXPECT_EQ(spec.rss_estimate_bytes, 1024u * 1024);
}

TEST(JobSpec, MissingTenantIsTypedError) {
  try {
    parse_job_spec_text(R"({"reads": "/r.fa"})", "<test>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "tenant");
  }
}

TEST(JobSpec, MissingReadsIsTypedError) {
  try {
    parse_job_spec_text(R"({"tenant": "t"})", "<test>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "reads");
  }
}

TEST(JobSpec, UnknownKeyIsTypedError) {
  try {
    parse_job_spec_text(R"({"tenant": "t", "reads": "/r.fa", "walltime": 3})", "<test>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "walltime");
  }
}

TEST(JobSpec, OutOfRangePipelineOptionIsTypedError) {
  try {
    parse_job_spec_text(R"({"tenant": "t", "reads": "/r.fa", "k": 99})", "<test>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "k");
  }
}

TEST(JobSpec, MalformedIoFaultIsTypedError) {
  try {
    parse_job_spec_text(R"({"tenant": "t", "reads": "/r.fa", "io-fault": "bogus"})",
                        "<test>");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.field(), "io-fault");
  }
}

TEST(JobSpec, IoFaultPlanParses) {
  const JobSpec spec = parse_job_spec_text(
      R"({"tenant": "t", "reads": "/r.fa", "io-fault": "write:*kmers.bin:1:enospc"})",
      "<test>");
  EXPECT_TRUE(spec.options.io_fault.enabled());
  EXPECT_EQ(spec.options.io_fault.path_glob, "*kmers.bin");
}

// --- rank pool --------------------------------------------------------------------

TEST(RankPool, LeaseAndRelease) {
  simpi::RankPool pool(4);
  EXPECT_EQ(pool.total(), 4);
  EXPECT_EQ(pool.available(), 4);
  {
    simpi::RankLease lease = pool.try_lease(3);
    EXPECT_TRUE(lease.owns());
    EXPECT_EQ(lease.count(), 3);
    EXPECT_EQ(pool.available(), 1);
    simpi::RankLease denied = pool.try_lease(2);
    EXPECT_FALSE(denied.owns());
    EXPECT_EQ(pool.available(), 1);
  }
  EXPECT_EQ(pool.available(), 4);  // RAII release
}

TEST(RankPool, MoveTransfersOwnership) {
  simpi::RankPool pool(2);
  simpi::RankLease a = pool.try_lease(2);
  simpi::RankLease b = std::move(a);
  EXPECT_FALSE(a.owns());  // NOLINT(bugprone-use-after-move): asserting moved-from state
  EXPECT_TRUE(b.owns());
  EXPECT_EQ(pool.available(), 0);
  b.release();
  EXPECT_EQ(pool.available(), 2);
  b.release();  // idempotent
  EXPECT_EQ(pool.available(), 2);
}

TEST(RankPool, OversizedRequestThrows) {
  simpi::RankPool pool(2);
  EXPECT_THROW((void)pool.try_lease(3), std::invalid_argument);
  EXPECT_THROW((void)pool.try_lease(0), std::invalid_argument);
  EXPECT_THROW(simpi::RankPool(0), std::invalid_argument);
}

TEST(RankPool, BlockingLeaseWaitsForRelease) {
  simpi::RankPool pool(2);
  simpi::RankLease held = pool.try_lease(2);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    simpi::RankLease lease = pool.lease(1);
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.available(), 2);
}

// --- admission --------------------------------------------------------------------

TEST(Admission, TenantQueueQuotaRejects) {
  TenantQuota quota;
  quota.max_queued_jobs = 2;
  AdmissionController admission(8, 64, quota, {});
  const JobSpec spec = make_spec("alice", "a1");
  EXPECT_TRUE(admission.admit(spec).accepted());
  admission.note_queued(spec);
  admission.note_queued(spec);
  const AdmitResult result = admission.admit(spec);
  EXPECT_EQ(result.code, AdmitCode::kTenantQueueFull);
  EXPECT_NE(result.detail.find("alice"), std::string::npos);
  // Another tenant is unaffected.
  EXPECT_TRUE(admission.admit(make_spec("bob", "b1")).accepted());
}

TEST(Admission, BoundedQueueBackpressure) {
  AdmissionController admission(8, 2, TenantQuota{}, {});
  const JobSpec a = make_spec("alice", "a1");
  const JobSpec b = make_spec("bob", "b1");
  admission.note_queued(a);
  admission.note_queued(b);
  const AdmitResult result = admission.admit(make_spec("carol", "c1"));
  EXPECT_EQ(result.code, AdmitCode::kQueueFull);
  // Dispatching one frees a slot.
  admission.note_started(a);
  EXPECT_TRUE(admission.admit(make_spec("carol", "c1")).accepted());
}

TEST(Admission, RankQuotaIsPermanentReject) {
  TenantQuota quota;
  quota.max_concurrent_ranks = 2;
  AdmissionController admission(8, 64, quota, {});
  const AdmitResult result = admission.admit(make_spec("alice", "a1", 0, 4));
  EXPECT_EQ(result.code, AdmitCode::kTenantRankQuota);
}

TEST(Admission, PoolTooSmallIsPermanentReject) {
  TenantQuota quota;
  quota.max_concurrent_ranks = 64;
  AdmissionController admission(4, 64, quota, {});
  EXPECT_EQ(admission.admit(make_spec("alice", "a1", 0, 8)).code,
            AdmitCode::kPoolTooSmall);
}

TEST(Admission, RssBudgetRejects) {
  TenantQuota quota;
  quota.rss_budget_bytes = 100;
  AdmissionController admission(8, 64, quota, {});
  JobSpec spec = make_spec("alice", "a1");
  spec.rss_estimate_bytes = 200;
  EXPECT_EQ(admission.admit(spec).code, AdmitCode::kTenantRssBudget);
  spec.rss_estimate_bytes = 60;
  EXPECT_TRUE(admission.admit(spec).accepted());
  // Headroom accounting: a running 60-byte job leaves no room for another.
  admission.note_queued(spec);
  admission.note_started(spec);
  EXPECT_FALSE(admission.has_running_headroom(spec));
  admission.note_finished(spec);
  EXPECT_TRUE(admission.has_running_headroom(spec));
}

TEST(Admission, PerTenantQuotaOverrides) {
  TenantQuota dflt;
  dflt.max_queued_jobs = 1;
  TenantQuota premium;
  premium.max_queued_jobs = 10;
  AdmissionController admission(8, 64, dflt, {{"premium", premium}});
  EXPECT_EQ(admission.quota_for("premium").max_queued_jobs, 10);
  EXPECT_EQ(admission.quota_for("other").max_queued_jobs, 1);
}

// --- server scheduling ------------------------------------------------------------

TEST(JobServer, RunsConcurrentJobsToCompletion) {
  const TempDir root("serve_sched");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);
  EXPECT_TRUE(server.submit(make_spec("alice", "a1")).accepted());
  EXPECT_TRUE(server.submit(make_spec("bob", "b1")).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "a1").state, JobState::kCompleted);
  EXPECT_EQ(status_of(server, "b1").state, JobState::kCompleted);
  // Isolated work dirs, each with its own transcripts and report.
  EXPECT_FALSE(slurp(root.str() + "/alice/a1/Trinity.fa").empty());
  EXPECT_FALSE(slurp(root.str() + "/bob/b1/Trinity.fa").empty());

  Accounting accounting = server.accounting();
  bool saw_alice = false;
  for (const auto& a : accounting.accounts()) {
    if (a.tenant != "alice") continue;
    saw_alice = true;
    EXPECT_EQ(a.jobs_completed, 1);
    EXPECT_GT(a.rank_seconds, 0.0);
    EXPECT_GT(a.output_bytes, 0);
    EXPECT_GT(a.comm_bytes_sent, 0);
  }
  EXPECT_TRUE(saw_alice);
}

TEST(JobServer, DuplicateJobIdRejected) {
  const TempDir root("serve_dup");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  EXPECT_TRUE(server.submit(make_spec("alice", "same")).accepted());
  const AdmitResult result = server.submit(make_spec("bob", "same"));
  EXPECT_EQ(result.code, AdmitCode::kInvalidSpec);
  server.drain();
}

TEST(JobServer, RejectsAfterShutdown) {
  const TempDir root("serve_shutdown");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  server.shutdown();
  EXPECT_EQ(server.submit(make_spec("alice", "late")).code, AdmitCode::kShutdown);
}

TEST(JobServer, SubmitTextParsesAndRejectsTyped) {
  const TempDir root("serve_text");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  const AdmitResult bad = server.submit_text(R"({"reads": "/r.fa"})", "<test>");
  EXPECT_EQ(bad.code, AdmitCode::kInvalidSpec);
  EXPECT_NE(bad.detail.find("tenant"), std::string::npos);
  const AdmitResult good = server.submit_text(
      R"({"tenant": "alice", "reads": ")" + shared_reads_path() +
          R"(", "ranks": 2, "k": 15, "omp-threads": 1})",
      "<test>");
  EXPECT_TRUE(good.accepted());
  server.drain();
  EXPECT_EQ(server.jobs().size(), 1u);
  EXPECT_EQ(server.jobs()[0].state, JobState::kCompleted);
}

TEST(JobServer, ReportCarriesJobAttribution) {
  const TempDir root("serve_attr");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  EXPECT_TRUE(server.submit(make_spec("alice", "a1")).accepted());
  server.drain();
  const util::Json report =
      pipeline::load_run_report(root.str() + "/alice/a1/run_report.json");
  ASSERT_NE(report.find("job_id"), nullptr);
  EXPECT_EQ(report.at("job_id").as_string(), "a1");
  EXPECT_EQ(report.at("tenant").as_string(), "alice");
  EXPECT_EQ(report.at("preemptions").as_int(), 0);
}

TEST(JobServer, SharedIndexCacheServesWarmJobs) {
  // Two identical index-mode jobs, each needing the whole pool so they run
  // one after the other. The first builds the TranscriptIndex and publishes
  // it to the server's shared cache; the second maps against the cached
  // copy instead of building its own (its work dir has no index file).
  const TempDir root("serve_index_cache");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  JobSpec first = make_spec("alice", "cold");
  first.options.r2t_mode = chrysalis::R2TMode::kIndex;
  JobSpec second = make_spec("alice", "warm");
  second.options.r2t_mode = chrysalis::R2TMode::kIndex;
  ASSERT_TRUE(server.submit(std::move(first)).accepted());
  ASSERT_TRUE(server.submit(std::move(second)).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "cold").state, JobState::kCompleted);
  EXPECT_EQ(status_of(server, "warm").state, JobState::kCompleted);

  const auto index_source = [&](const std::string& job) {
    const util::Json report =
        pipeline::load_run_report(root.str() + "/alice/" + job + "/run_report.json");
    return report.at("chrysalis").at("reads_to_transcripts").at("index_source").as_string();
  };
  EXPECT_EQ(index_source("cold"), "built");
  EXPECT_EQ(index_source("warm"), "shared-cache");

  // Identical transcripts either way — the index is read-only shared state.
  EXPECT_EQ(slurp(root.str() + "/alice/cold/Trinity.fa"),
            slurp(root.str() + "/alice/warm/Trinity.fa"));
}

// --- preemption -------------------------------------------------------------------

TEST(JobServer, PreemptedJobResumesToByteIdenticalTranscripts) {
  // Baseline: the same job, uninterrupted, alone on the pool.
  const TempDir baseline_root("serve_base");
  {
    ServerOptions options;
    options.total_ranks = 2;
    options.root_dir = baseline_root.str();
    JobServer server(options);
    ASSERT_TRUE(server.submit(make_spec("victim", "v1", 0)).accepted());
    server.drain();
    ASSERT_EQ(status_of(server, "v1").state, JobState::kCompleted);
  }
  const std::string baseline = slurp(baseline_root.str() + "/victim/v1/Trinity.fa");
  ASSERT_FALSE(baseline.empty());

  // Scenario: the victim fills the whole pool; a high-priority arrival
  // must preempt it at a stage boundary, run, and let it resume.
  const TempDir root("serve_preempt");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  JobServer server(options);
  ASSERT_TRUE(server.submit(make_spec("victim", "v1", 0)).accepted());
  // Wait until the victim actually holds the pool, then submit the VIP job
  // so the only way it can run is by preempting.
  for (int i = 0; i < 2000 && status_of(server, "v1").state != JobState::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(status_of(server, "v1").state, JobState::kRunning);
  ASSERT_TRUE(server.submit(make_spec("vip", "hi1", 10)).accepted());
  server.drain();

  const JobStatus victim = status_of(server, "v1");
  const JobStatus vip = status_of(server, "hi1");
  EXPECT_EQ(victim.state, JobState::kCompleted);
  EXPECT_EQ(vip.state, JobState::kCompleted);
  EXPECT_GE(victim.preemptions, 1);
  EXPECT_GE(victim.dispatches, 2);

  // The preempted-then-resumed transcripts are byte-identical to the
  // uninterrupted baseline.
  EXPECT_EQ(slurp(root.str() + "/victim/v1/Trinity.fa"), baseline);

  // Attribution flows into the victim's report and the accounting ledger.
  const util::Json report =
      pipeline::load_run_report(root.str() + "/victim/v1/run_report.json");
  ASSERT_NE(report.find("preemptions"), nullptr);
  EXPECT_GE(report.at("preemptions").as_int(), 1);
  Accounting accounting = server.accounting();
  EXPECT_GE(accounting.account("victim").preemptions, 1);
}

TEST(JobServer, NoPreemptionWhenDisabled) {
  const TempDir root("serve_nopreempt");
  ServerOptions options;
  options.total_ranks = 2;
  options.root_dir = root.str();
  options.preemption = false;
  JobServer server(options);
  ASSERT_TRUE(server.submit(make_spec("victim", "v1", 0)).accepted());
  for (int i = 0; i < 2000 && status_of(server, "v1").state != JobState::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.submit(make_spec("vip", "hi1", 10)).accepted());
  server.drain();
  EXPECT_EQ(status_of(server, "v1").preemptions, 0);
  EXPECT_EQ(status_of(server, "v1").state, JobState::kCompleted);
  EXPECT_EQ(status_of(server, "hi1").state, JobState::kCompleted);
}

// --- pipeline-level preemption token (deterministic) ------------------------------

TEST(PreemptToken, SetTokenStopsAtFirstBoundaryAndResumeCompletes) {
  const TempDir dir("preempt_token");
  auto options = job_options(1);
  options.work_dir = dir.str();
  options.preempt = std::make_shared<std::atomic<bool>>(true);  // already set
  EXPECT_THROW(
      { (void)pipeline::run_pipeline_from_file(shared_reads_path(), options); },
      pipeline::PreemptedError);

  // Baseline run in a second dir for the byte comparison.
  const TempDir base("preempt_token_base");
  auto base_options = job_options(1);
  base_options.work_dir = base.str();
  (void)pipeline::run_pipeline_from_file(shared_reads_path(), base_options);

  options.preempt->store(false);
  options.resume = true;
  const auto result = pipeline::run_pipeline_from_file(shared_reads_path(), options);
  EXPECT_FALSE(result.transcripts.empty());
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(base.file("Trinity.fa")));
}

}  // namespace
}  // namespace trinity::serve
