// Corruption-corpus tests for the FASTA/FASTQ parse policies: strict mode
// throws io::ParseError with the exact path/line/byte-offset, tolerant
// mode quarantines per category and keeps going, repair mode fixes what is
// mechanically fixable. Includes exhaustive truncation sweeps (every byte
// offset of a well-formed file) and bit-flipped headers.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "io/error.hpp"
#include "seq/fasta.hpp"
#include "test_helpers.hpp"

namespace trinity::seq {
namespace {

using trinity::testing::TempDir;

std::string write(const TempDir& dir, const std::string& name, const std::string& body) {
  const std::string path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

// --- clean parsing and formatting noise -------------------------------------------

TEST(ParsePolicy, NamesRoundTrip) {
  for (const ParsePolicy p : {ParsePolicy::kStrict, ParsePolicy::kTolerant, ParsePolicy::kRepair}) {
    EXPECT_EQ(parse_policy_from_string(to_string(p)), p);
  }
  EXPECT_THROW(parse_policy_from_string("lenient"), std::invalid_argument);
}

TEST(ParsePolicy, OpenFailureIsATypedIoError) {
  try {
    FastaReader reader("/nonexistent/dir/reads.fa");
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.op(), "open");
    EXPECT_EQ(e.path(), "/nonexistent/dir/reads.fa");
  }
}

TEST(ParsePolicy, CrlfBlankAndTrailingWhitespaceAreAbsorbedEverywhere) {
  const TempDir dir("parse_crlf");
  const auto path = write(dir, "reads.fa", ">r1\r\nAC \t\r\n\r\nGT\r\n\n>r2  \nTTTT\n");
  for (const ParsePolicy p : {ParsePolicy::kStrict, ParsePolicy::kTolerant, ParsePolicy::kRepair}) {
    io::ParseDiagnostics diag;
    const auto seqs = read_all(path, p, &diag);
    ASSERT_EQ(seqs.size(), 2u) << to_string(p);
    EXPECT_EQ(seqs[0].name, "r1");
    EXPECT_EQ(seqs[0].bases, "ACGT");
    EXPECT_EQ(seqs[1].name, "r2");
    EXPECT_EQ(seqs[1].bases, "TTTT");
    EXPECT_EQ(diag.records_ok, 2u);
    EXPECT_EQ(diag.records_quarantined(), 0u);
    EXPECT_EQ(diag.blank_lines, 2u);
    EXPECT_EQ(diag.crlf_lines, 4u);
  }
}

TEST(ParsePolicy, CleanFastqParsesUnderEveryPolicy) {
  const TempDir dir("parse_fq");
  const auto path = write(dir, "reads.fq", "@r1\nACGT\n+\nFFFF\n@r2 desc\nCC\n+r2\nGG\n");
  for (const ParsePolicy p : {ParsePolicy::kStrict, ParsePolicy::kTolerant, ParsePolicy::kRepair}) {
    io::ParseDiagnostics diag;
    const auto seqs = read_all(path, p, &diag);
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0].name, "r1");
    EXPECT_EQ(seqs[0].quality, "FFFF");
    EXPECT_EQ(seqs[1].name, "r2");
    EXPECT_EQ(seqs[1].bases, "CC");
    EXPECT_EQ(diag.records_quarantined(), 0u);
  }
}

// --- strict mode: exact locations -------------------------------------------------

TEST(ParsePolicyStrict, InvalidCharacterReportsLineAndByteOffset) {
  const TempDir dir("strict_invalid");
  // Offsets: line 1 ">r1\n" starts at 0, line 2 "ACGT\n" at 4, line 3 at 9.
  const auto path = write(dir, "reads.fa", ">r1\nACGT\nAC!T\n");
  try {
    read_all(path, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kInvalidCharacter);
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.byte_offset(), 9u);
    EXPECT_NE(std::string(e.what()).find("'!'"), std::string::npos) << e.what();
  }
}

TEST(ParsePolicyStrict, MissingHeaderReportsTheFirstGarbageLine) {
  const TempDir dir("strict_nohdr");
  const auto path = write(dir, "reads.fa", "garbage\n>r1\nACGT\n");
  try {
    read_all(path, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kMissingHeader);
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.byte_offset(), 0u);
  }
}

TEST(ParsePolicyStrict, BadSeparatorReportsTheSeparatorLine) {
  const TempDir dir("strict_sep");
  // Line 3 "X\n" starts at byte 9 ("@r1\n" = 4, "ACGT\n" = 5 more).
  const auto path = write(dir, "reads.fq", "@r1\nACGT\nX\nFFFF\n");
  try {
    read_all(path, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kBadSeparator);
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.byte_offset(), 9u);
  }
}

TEST(ParsePolicyStrict, QualityMismatchReportsTheQualityLine) {
  const TempDir dir("strict_qual");
  const auto path = write(dir, "reads.fq", "@r1\nACGT\n+\nFFF\n");
  try {
    read_all(path, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kQualityLengthMismatch);
    EXPECT_EQ(e.line(), 4u);
    EXPECT_EQ(e.byte_offset(), 11u);  // "@r1\n" + "ACGT\n" + "+\n"
  }
}

TEST(ParsePolicyStrict, TruncatedFastqReportsTheRecordHeader) {
  const TempDir dir("strict_trunc");
  // Record r2's header is line 5; "@r1\nACGT\n+\nFFFF\n" is 16 bytes.
  const auto path = write(dir, "reads.fq", "@r1\nACGT\n+\nFFFF\n@r2\nAC\n");
  try {
    read_all(path, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kTruncatedRecord);
    EXPECT_EQ(e.line(), 5u);
    EXPECT_EQ(e.byte_offset(), 16u);
    EXPECT_NE(std::string(e.what()).find("r2"), std::string::npos);
  }
}

// --- tolerant mode: quarantine and continue ---------------------------------------

TEST(ParsePolicyTolerant, QuarantinesBadFastaRecordAndKeepsGoing) {
  const TempDir dir("tol_fasta");
  const auto path = write(dir, "reads.fa", ">r1\nAC!T\nACGT\n>r2\nGGGG\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
  ASSERT_EQ(seqs.size(), 1u);  // all of r1 is dropped, not just the bad line
  EXPECT_EQ(seqs[0].name, "r2");
  EXPECT_EQ(diag.of(io::ParseCategory::kInvalidCharacter), 1u);
  EXPECT_EQ(diag.records_quarantined(), 1u);
  EXPECT_EQ(diag.records_ok, 1u);
}

TEST(ParsePolicyTolerant, ResynchronizesAfterABadSeparator) {
  const TempDir dir("tol_sep");
  const auto path = write(dir, "reads.fq", "@r1\nACGT\nX\nFFFF\n@r2\nCCCC\n+\nFFFF\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name, "r2");
  EXPECT_EQ(diag.of(io::ParseCategory::kBadSeparator), 1u);
  EXPECT_EQ(diag.records_quarantined(), 1u);
}

TEST(ParsePolicyTolerant, LeadingGarbageCountsOneMissingHeader) {
  const TempDir dir("tol_lead");
  const auto path = write(dir, "reads.fa", "junk1\njunk2\njunk3\n>r1\nACGT\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
  ASSERT_EQ(seqs.size(), 1u);
  // One destroyed leading record, however many lines it spans.
  EXPECT_EQ(diag.of(io::ParseCategory::kMissingHeader), 1u);
}

TEST(ParsePolicyTolerant, BitFlippedFastqHeaderDropsExactlyThatRecord) {
  const TempDir dir("tol_flip");
  // r2's '@' was bit-flipped to 'B': its whole record is one destroyed
  // missing_header run; r1 and r3 survive.
  const auto path = write(dir, "reads.fq",
                          "@r1\nACGT\n+\nFFFF\n"
                          "Br2\nCCCC\n+\nFFFF\n"
                          "@r3\nGGGG\n+\nFFFF\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name, "r1");
  EXPECT_EQ(seqs[1].name, "r3");
  EXPECT_EQ(diag.of(io::ParseCategory::kMissingHeader), 1u);
}

TEST(ParsePolicyTolerant, AllCategoriesAccumulateInOneFile) {
  const TempDir dir("tol_all");
  const auto path = write(dir, "reads.fq",
                          "leading junk\n"                   // missing_header
                          "@r1\nACGT\n+\nFFFF\n"             // ok
                          "@r2\nAC!T\n+\nFFFF\n"             // invalid_character
                          "@r3\nACGT\nX\nFFFF\n"             // bad_separator
                          "@r4\nACGT\n+\nFFF\n"              // quality_length_mismatch
                          "@r5\nACGT\n+\nFFFF\n"             // ok
                          "@r6\nAC\n");                      // truncated_record
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name, "r1");
  EXPECT_EQ(seqs[1].name, "r5");
  EXPECT_EQ(diag.of(io::ParseCategory::kMissingHeader), 1u);
  EXPECT_EQ(diag.of(io::ParseCategory::kInvalidCharacter), 1u);
  EXPECT_EQ(diag.of(io::ParseCategory::kBadSeparator), 1u);
  EXPECT_EQ(diag.of(io::ParseCategory::kQualityLengthMismatch), 1u);
  EXPECT_EQ(diag.of(io::ParseCategory::kTruncatedRecord), 1u);
  EXPECT_EQ(diag.records_quarantined(), 5u);
  EXPECT_EQ(diag.records_ok, 2u);
}

// --- repair mode ------------------------------------------------------------------

TEST(ParsePolicyRepair, RewritesInvalidBasesToN) {
  const TempDir dir("rep_bases");
  const auto path = write(dir, "reads.fa", ">r1\nAC!T\n>r2\nGGGG\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kRepair, &diag);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].bases, "ACNT");
  EXPECT_EQ(seqs[1].bases, "GGGG");
  EXPECT_EQ(diag.records_repaired, 1u);
  EXPECT_EQ(diag.records_quarantined(), 0u);
  EXPECT_EQ(diag.records_ok, 2u);
}

TEST(ParsePolicyRepair, PadsAndTrimsQualityToSequenceLength) {
  const TempDir dir("rep_qual");
  const auto path = write(dir, "reads.fq", "@r1\nACGT\n+\nFF\n@r2\nCC\n+\nFFFF\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kRepair, &diag);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].quality, "FFFF");  // padded with 'F'
  EXPECT_EQ(seqs[1].quality, "FF");    // trimmed
  EXPECT_EQ(diag.records_repaired, 2u);
  EXPECT_EQ(diag.records_quarantined(), 0u);
}

TEST(ParsePolicyRepair, StillQuarantinesTheUnfixable) {
  const TempDir dir("rep_unfix");
  const auto path = write(dir, "reads.fq", "@r1\nACGT\nX\nFFFF\n@r2\nCCCC\n+\nFFFF\n");
  io::ParseDiagnostics diag;
  const auto seqs = read_all(path, ParsePolicy::kRepair, &diag);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name, "r2");
  EXPECT_EQ(diag.of(io::ParseCategory::kBadSeparator), 1u);
}

// --- truncation sweeps ------------------------------------------------------------

TEST(ParsePolicyCorpus, FastqTruncatedAtEveryByteOffset) {
  const TempDir dir("corpus_fq");
  const std::string full =
      "@r1\nACGT\n+\nFFFF\n"
      "@r2\nCCCCCC\n+\nIIIIII\n"
      "@r3\nGG\n+\nHH\n";
  const std::string path = dir.file("reads.fq");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << full.substr(0, len);

    // Tolerant must always finish, never throw, and every record it does
    // return must be an unmangled prefix record of the original file.
    io::ParseDiagnostics diag;
    const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
    ASSERT_LE(seqs.size(), 3u) << "cut at " << len;
    const char* names[] = {"r1", "r2", "r3"};
    const char* bases[] = {"ACGT", "CCCCCC", "GG"};
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i].name, names[i]) << "cut at " << len;
      EXPECT_EQ(seqs[i].bases, bases[i]) << "cut at " << len;
    }
    EXPECT_EQ(diag.records_ok, seqs.size()) << "cut at " << len;

    // Strict must either parse a clean prefix or throw a located ParseError
    // pointing into this file — never a bare exception.
    try {
      const auto strict = read_all(path, ParsePolicy::kStrict);
      EXPECT_LE(strict.size(), 3u) << "cut at " << len;
    } catch (const io::ParseError& e) {
      EXPECT_EQ(e.path(), path);
      EXPECT_GE(e.line(), 1u) << "cut at " << len;
      EXPECT_LT(e.byte_offset(), full.size()) << "cut at " << len;
    }
  }
}

TEST(ParsePolicyCorpus, FastaTruncatedAtEveryByteOffset) {
  const TempDir dir("corpus_fa");
  const std::string full = ">r1\nACGTACGT\nTTTT\n>r2\nCCCC\n>r3\nGGGGGGGG\n";
  const std::string path = dir.file("reads.fa");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << full.substr(0, len);
    // Truncating well-formed FASTA can shorten records but never produces
    // malformed ones: strict must not throw at any cut point.
    const auto seqs = read_all(path, ParsePolicy::kStrict);
    ASSERT_LE(seqs.size(), 3u) << "cut at " << len;
    if (len == full.size()) {
      ASSERT_EQ(seqs.size(), 3u);
      EXPECT_EQ(seqs[0].bases, "ACGTACGTTTTT");
      EXPECT_EQ(seqs[1].bases, "CCCC");
      EXPECT_EQ(seqs[2].bases, "GGGGGGGG");
    }
  }
}

TEST(ParsePolicyCorpus, BitFlippedHeadersNeverCrashTolerantParsing) {
  const TempDir dir("corpus_flip");
  const std::string full = "@r1\nACGT\n+\nFFFF\n@r2\nCCCC\n+\nFFFF\n@r3\nGGGG\n+\nFFFF\n";
  const std::string path = dir.file("reads.fq");
  // Flip every header byte in turn (positions of '@'): each corruption
  // must cost records, not the run.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{16}, std::size_t{32}}) {
    std::string corrupted = full;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x02);  // '@' -> 'B'
    std::ofstream(path, std::ios::binary | std::ios::trunc) << corrupted;
    io::ParseDiagnostics diag;
    const auto seqs = read_all(path, ParsePolicy::kTolerant, &diag);
    EXPECT_EQ(seqs.size(), 2u) << "flip at " << pos;
    EXPECT_GE(diag.of(io::ParseCategory::kMissingHeader), 1u) << "flip at " << pos;
  }
}

}  // namespace
}  // namespace trinity::seq
