// Tests for the assembly summary statistics.

#include <gtest/gtest.h>

#include <sstream>

#include "validate/assembly_stats.hpp"

namespace trinity::validate {
namespace {

TEST(AssemblyStatsTest, EmptySetIsAllZeros) {
  const auto s = assembly_stats({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.total_bases, 0u);
  EXPECT_EQ(s.n50, 0u);
}

TEST(AssemblyStatsTest, KnownValues) {
  const std::vector<seq::Sequence> seqs{
      {"a", "GGGG"},      // 4 bases, all GC
      {"b", "AAAAAAAA"},  // 8 bases, no GC
  };
  const auto s = assembly_stats(seqs);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.total_bases, 12u);
  EXPECT_EQ(s.min_length, 4u);
  EXPECT_EQ(s.max_length, 8u);
  EXPECT_DOUBLE_EQ(s.mean_length, 6.0);
  EXPECT_EQ(s.n50, 8u);
  EXPECT_NEAR(s.gc_fraction, 4.0 / 12.0, 1e-12);
}

TEST(AssemblyStatsTest, NBasesExcludedFromGc) {
  const auto s = assembly_stats({{"a", "GCNN"}});
  EXPECT_DOUBLE_EQ(s.gc_fraction, 1.0);  // N does not dilute GC
}

TEST(AssemblyStatsTest, HistogramBinsAndOverflow) {
  const std::vector<seq::Sequence> seqs{
      {"a", std::string(50, 'A')},
      {"b", std::string(150, 'A')},
      {"c", std::string(10000, 'A')},  // lands in the open-ended last bin
  };
  const auto bins = length_histogram(seqs, 100, 3);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[1], 1u);
  EXPECT_EQ(bins[2], 1u);
}

TEST(AssemblyStatsTest, HistogramDegenerateArgs) {
  EXPECT_TRUE(length_histogram({{"a", "ACGT"}}, 0, 5).size() == 5);
  EXPECT_TRUE(length_histogram({{"a", "ACGT"}}, 10, 0).empty());
}

TEST(AssemblyStatsTest, PrintIncludesHeadlineNumbers) {
  std::ostringstream out;
  print_assembly_stats(out, assembly_stats({{"a", "ACGTACGT"}}));
  const std::string text = out.str();
  EXPECT_NE(text.find("sequences: 1"), std::string::npos);
  EXPECT_NE(text.find("N50: 8"), std::string::npos);
  EXPECT_NE(text.find("GC: 50"), std::string::npos);
}

}  // namespace
}  // namespace trinity::validate
