// Tests for the quasi-mapping TranscriptIndex: vote-parity of index-mode
// assignments, serialize -> mmap-load round-trips (byte-identical files
// and assignments), typed rejection of truncated/corrupted/mismatched
// index files, the build/load/auto lifecycle, fragment equivalence
// classes, and the serve-layer shared cache.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "chrysalis/components.hpp"
#include "chrysalis/reads_to_transcripts.hpp"
#include "chrysalis/transcript_index.hpp"
#include "io/error.hpp"
#include "seq/fasta.hpp"
#include "simpi/context.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::TempDir;
using trinity::testing::random_dna;

constexpr int kTestK = 15;

struct Fixture {
  std::vector<seq::Sequence> contigs;
  ComponentSet components;
  std::vector<seq::Sequence> reads;
};

Fixture build_fixture(std::size_t n_components, std::size_t reads_per_component,
                      std::uint64_t seed) {
  Fixture f;
  util::Rng rng(seed);
  for (std::size_t c = 0; c < n_components; ++c) {
    f.contigs.push_back({"contig" + std::to_string(c), random_dna(400, rng())});
  }
  f.components = cluster_contigs(f.contigs.size(), {});
  for (std::size_t c = 0; c < n_components; ++c) {
    for (std::size_t r = 0; r < reads_per_component; ++r) {
      const auto pos = rng.uniform_below(400 - 60);
      f.reads.push_back({"r_c" + std::to_string(c) + "_" + std::to_string(r),
                         f.contigs[c].bases.substr(pos, 60)});
    }
  }
  for (int i = 0; i < 3; ++i) {
    f.reads.push_back({"noise" + std::to_string(i), random_dna(60, 90000 + i)});
  }
  return f;
}

ReadsToTranscriptsOptions test_options(R2TMode mode = R2TMode::kVote) {
  ReadsToTranscriptsOptions o;
  o.k = kTestK;
  o.max_mem_reads = 7;
  o.model_threads_per_rank = 4;
  o.mode = mode;
  return o;
}

bool same_assignments(const std::vector<ReadAssignment>& a,
                      const std::vector<ReadAssignment>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(ReadAssignment)) == 0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void patch_file(const std::string& path, std::streamoff offset, const void* bytes,
                std::size_t len) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekp(offset);
  f.write(static_cast<const char*>(bytes), static_cast<std::streamsize>(len));
}

TEST(TranscriptIndex, LookupMatchesVotingMap) {
  Fixture f = build_fixture(4, 0, 5);
  const auto map = build_bundle_kmer_map(f.contigs, f.components, kTestK);
  const auto index = TranscriptIndex::build(f.contigs, f.components, kTestK);
  EXPECT_EQ(index.num_kmers(), map.size());
  EXPECT_EQ(index.k(), kTestK);
  EXPECT_GT(index.num_intervals(), 0u);
  const seq::KmerCodec codec(kTestK);
  for (const auto& contig : f.contigs) {
    for (const auto& occ : codec.extract_canonical(contig.bases)) {
      const auto it = map.find(occ.code);
      ASSERT_NE(it, map.end());
      EXPECT_EQ(index.component_of(occ.code), it->second);
    }
  }
}

TEST(TranscriptIndex, IndexModeAssignmentsIdenticalToVote) {
  const TempDir dir("tix_parity");
  Fixture f = build_fixture(4, 10, 13);
  seq::write_fasta(dir.file("reads.fa"), f.reads);

  const auto vote =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options());
  auto options = test_options(R2TMode::kIndex);
  options.index_path = dir.file("transcript_index.bin");
  const auto indexed =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options, dir.str());
  EXPECT_TRUE(same_assignments(vote.assignments, indexed.assignments));
  EXPECT_EQ(indexed.timing.index_source, "built");
  EXPECT_GT(indexed.timing.index_build_seconds, 0.0);
  EXPECT_EQ(indexed.timing.index_load_seconds, 0.0);
  ASSERT_NE(indexed.index, nullptr);
  // Vote mode reports no index accounting and no classes.
  EXPECT_EQ(vote.timing.index_source, "");
  EXPECT_TRUE(vote.eq_classes.empty());
}

TEST(TranscriptIndex, SaveLoadRoundTripIsByteIdentical) {
  const TempDir dir("tix_roundtrip");
  Fixture f = build_fixture(3, 0, 7);
  const auto built = TranscriptIndex::build(f.contigs, f.components, kTestK);
  built.save(dir.file("a.bin"));

  const auto loaded = TranscriptIndex::load(dir.file("a.bin"));
  EXPECT_TRUE(loaded.mmap_backed());
  EXPECT_FALSE(built.mmap_backed());
  EXPECT_EQ(loaded.k(), built.k());
  EXPECT_EQ(loaded.num_kmers(), built.num_kmers());
  EXPECT_EQ(loaded.num_intervals(), built.num_intervals());
  EXPECT_EQ(loaded.image_bytes(), built.image_bytes());

  // save(load(p)) writes a byte-identical file.
  loaded.save(dir.file("b.bin"));
  EXPECT_EQ(read_file(dir.file("a.bin")), read_file(dir.file("b.bin")));

  // Identical lookups over every contig k-mer.
  const seq::KmerCodec codec(kTestK);
  for (const auto& contig : f.contigs) {
    for (const auto& occ : codec.extract_canonical(contig.bases)) {
      EXPECT_EQ(loaded.component_of(occ.code), built.component_of(occ.code));
    }
  }
}

TEST(TranscriptIndex, WarmAutoRunLoadsViaMmapAndSkipsBuild) {
  const TempDir dir("tix_warm");
  Fixture f = build_fixture(3, 8, 17);
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  auto options = test_options(R2TMode::kIndex);
  options.index_path = dir.file("transcript_index.bin");

  const auto cold =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  EXPECT_EQ(cold.timing.index_source, "built");

  const auto warm =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  EXPECT_EQ(warm.timing.index_source, "mmap");
  EXPECT_EQ(warm.timing.index_build_seconds, 0.0);
  EXPECT_GT(warm.timing.index_load_seconds, 0.0);
  EXPECT_TRUE(same_assignments(cold.assignments, warm.assignments));

  // Lifecycle kBuild ignores the existing file and rebuilds.
  options.index_lifecycle = IndexLifecycle::kBuild;
  const auto rebuilt =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  EXPECT_EQ(rebuilt.timing.index_source, "built");
}

TEST(TranscriptIndex, HybridIndexModeMatchesVote) {
  const TempDir dir("tix_hybrid");
  Fixture f = build_fixture(4, 12, 19);
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  const auto vote =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), test_options());

  auto options = test_options(R2TMode::kIndex);
  options.index_path = dir.file("transcript_index.bin");
  simpi::run(3, [&](simpi::Context& ctx) {
    const auto result =
        run_hybrid(ctx, f.contigs, f.components, dir.file("reads.fa"), options, dir.str());
    EXPECT_TRUE(same_assignments(vote.assignments, result.assignments));
    EXPECT_EQ(result.timing.index_source, "built");
    // Equivalence classes pooled over ranks: class counts sum to the
    // number of reads with at least one hit, on every rank.
    std::uint64_t classified = 0;
    for (const auto& eq : result.eq_classes) classified += eq.count;
    std::uint64_t assigned = 0;
    for (const auto& a : result.assignments) assigned += a.component >= 0 ? 1 : 0;
    EXPECT_EQ(classified, assigned);
  });

  // Second hybrid run over the same work dir warm-loads on every rank.
  simpi::run(3, [&](simpi::Context& ctx) {
    const auto result =
        run_hybrid(ctx, f.contigs, f.components, dir.file("reads.fa"), options, dir.str());
    EXPECT_TRUE(same_assignments(vote.assignments, result.assignments));
    EXPECT_EQ(result.timing.index_source, "mmap");
    EXPECT_EQ(result.timing.index_build_seconds, 0.0);
  });
}

TEST(TranscriptIndex, EquivalenceClassesCountClassifiedReads) {
  const TempDir dir("tix_eq");
  Fixture f = build_fixture(3, 10, 23);
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  auto options = test_options(R2TMode::kIndex);
  const auto result =
      run_shared(f.contigs, f.components, dir.file("reads.fa"), options, dir.str());
  ASSERT_FALSE(result.eq_classes.empty());
  std::uint64_t classified = 0;
  for (const auto& eq : result.eq_classes) {
    EXPECT_FALSE(eq.components.empty());
    EXPECT_GT(eq.count, 0u);
    classified += eq.count;
  }
  std::uint64_t assigned = 0;
  for (const auto& a : result.assignments) assigned += a.component >= 0 ? 1 : 0;
  EXPECT_EQ(classified, assigned);
  // The TSV artifact exists and round-trips through the counter.
  const std::string tsv = read_file(dir.str() + "/eq_classes.tsv");
  const auto counter = EquivalenceClassCounter::deserialize(tsv);
  EXPECT_EQ(counter.total_reads(), classified);
  EXPECT_EQ(counter.serialize(), tsv);
}

TEST(EquivalenceClassCounter, MergeAndSerializeRoundTrip) {
  EquivalenceClassCounter a;
  a.add({0});
  a.add({0, 2});
  a.add({0});
  EquivalenceClassCounter b;
  b.add({0, 2});
  b.add({1});
  a.merge(b);
  EXPECT_EQ(a.total_reads(), 5u);
  const auto classes = a.classes();
  ASSERT_EQ(classes.size(), 3u);  // {0}, {0,2}, {1} in label-set order
  EXPECT_EQ(classes[0].components, (std::vector<std::int32_t>{0}));
  EXPECT_EQ(classes[0].count, 2u);
  EXPECT_EQ(classes[1].components, (std::vector<std::int32_t>{0, 2}));
  EXPECT_EQ(classes[1].count, 2u);
  const auto round = EquivalenceClassCounter::deserialize(a.serialize());
  EXPECT_EQ(round.serialize(), a.serialize());
  a.add({});  // no-hit reads are not counted
  EXPECT_EQ(a.total_reads(), 5u);
}

TEST(TranscriptIndexErrors, TruncatedFileIsTypedParseError) {
  const TempDir dir("tix_trunc");
  Fixture f = build_fixture(2, 0, 29);
  TranscriptIndex::build(f.contigs, f.components, kTestK).save(dir.file("ix.bin"));
  const std::string full = read_file(dir.file("ix.bin"));
  std::ofstream(dir.file("ix.bin"), std::ios::binary)
      .write(full.data(), static_cast<std::streamsize>(full.size() - 128));
  try {
    TranscriptIndex::load(dir.file("ix.bin"));
    FAIL() << "truncated index loaded";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kTruncatedRecord);
    EXPECT_EQ(e.byte_offset(), full.size());  // expected size
  }
}

TEST(TranscriptIndexErrors, FileSmallerThanHeaderIsMissingHeader) {
  const TempDir dir("tix_small");
  std::ofstream(dir.file("ix.bin"), std::ios::binary).write("short", 5);
  try {
    TranscriptIndex::load(dir.file("ix.bin"));
    FAIL() << "tiny file loaded";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kMissingHeader);
  }
}

TEST(TranscriptIndexErrors, BadMagicIsMissingHeader) {
  const TempDir dir("tix_magic");
  Fixture f = build_fixture(2, 0, 31);
  TranscriptIndex::build(f.contigs, f.components, kTestK).save(dir.file("ix.bin"));
  const char garbage[8] = {'N', 'O', 'T', 'A', 'N', 'I', 'D', 'X'};
  patch_file(dir.file("ix.bin"), 0, garbage, sizeof(garbage));
  try {
    TranscriptIndex::load(dir.file("ix.bin"));
    FAIL() << "bad-magic file loaded";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kMissingHeader);
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(TranscriptIndexErrors, VersionMismatchNamesBothVersions) {
  const TempDir dir("tix_version");
  Fixture f = build_fixture(2, 0, 37);
  TranscriptIndex::build(f.contigs, f.components, kTestK).save(dir.file("ix.bin"));
  const std::uint32_t future = kTranscriptIndexFormatVersion + 1;
  patch_file(dir.file("ix.bin"), 8, &future, sizeof(future));  // version field
  try {
    TranscriptIndex::load(dir.file("ix.bin"));
    FAIL() << "version-mismatched file loaded";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kMissingHeader);
    const std::string what = e.what();
    EXPECT_NE(what.find("format version " + std::to_string(future)), std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(kTranscriptIndexFormatVersion)), std::string::npos)
        << what;
  }
}

TEST(TranscriptIndexErrors, CorruptedPayloadFailsChecksum) {
  const TempDir dir("tix_corrupt");
  Fixture f = build_fixture(2, 0, 41);
  TranscriptIndex::build(f.contigs, f.components, kTestK).save(dir.file("ix.bin"));
  const std::string full = read_file(dir.file("ix.bin"));
  char flipped = static_cast<char>(full[full.size() / 2] ^ 0x5a);
  patch_file(dir.file("ix.bin"), static_cast<std::streamoff>(full.size() / 2), &flipped, 1);
  try {
    TranscriptIndex::load(dir.file("ix.bin"));
    FAIL() << "corrupted index loaded";
  } catch (const io::ParseError& e) {
    EXPECT_EQ(e.category(), io::ParseCategory::kInvalidCharacter);
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(TranscriptIndexErrors, MissingFileIsTypedIoError) {
  EXPECT_THROW(TranscriptIndex::load("/no/such/transcript_index.bin"), io::IoError);
  // Lifecycle kLoad surfaces the same typed error through the run.
  const TempDir dir("tix_load_missing");
  Fixture f = build_fixture(2, 2, 43);
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  auto options = test_options(R2TMode::kIndex);
  options.index_lifecycle = IndexLifecycle::kLoad;
  options.index_path = dir.file("absent.bin");
  EXPECT_THROW(run_shared(f.contigs, f.components, dir.file("reads.fa"), options),
               io::IoError);
}

TEST(TranscriptIndexErrors, StaleKRebuildsUnderAutoAndRefusesUnderLoad) {
  const TempDir dir("tix_stale_k");
  Fixture f = build_fixture(2, 4, 47);
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  TranscriptIndex::build(f.contigs, f.components, kTestK + 2).save(dir.file("ix.bin"));

  auto options = test_options(R2TMode::kIndex);
  options.index_path = dir.file("ix.bin");
  // kAuto: the k-mismatched index is ignored and rebuilt (then persisted).
  const auto rebuilt = run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  EXPECT_EQ(rebuilt.timing.index_source, "built");
  EXPECT_EQ(TranscriptIndex::load(dir.file("ix.bin")).k(), kTestK);

  // kLoad: a k mismatch is a hard error naming both k values.
  TranscriptIndex::build(f.contigs, f.components, kTestK + 2).save(dir.file("ix.bin"));
  options.index_lifecycle = IndexLifecycle::kLoad;
  try {
    run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
    FAIL() << "k-mismatched index accepted under kLoad";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("k=" + std::to_string(kTestK + 2)), std::string::npos) << what;
    EXPECT_NE(what.find("k=" + std::to_string(kTestK)), std::string::npos) << what;
  }
}

TEST(TranscriptIndexCacheTest, FirstWriterWinsAndSharedCopyIsUsed) {
  Fixture f = build_fixture(2, 4, 53);
  auto first = std::make_shared<const TranscriptIndex>(
      TranscriptIndex::build(f.contigs, f.components, kTestK));
  auto second = std::make_shared<const TranscriptIndex>(
      TranscriptIndex::build(f.contigs, f.components, kTestK));

  TranscriptIndexCache cache;
  EXPECT_EQ(cache.find(1), nullptr);
  EXPECT_EQ(cache.put(1, first), first);
  EXPECT_EQ(cache.put(1, second), first);  // first writer wins
  EXPECT_EQ(cache.find(1), first);
  EXPECT_EQ(cache.size(), 1u);

  // A run handed the shared copy maps against it without building.
  const TempDir dir("tix_cache");
  seq::write_fasta(dir.file("reads.fa"), f.reads);
  auto options = test_options(R2TMode::kIndex);
  options.shared_index = first;
  const auto result = run_shared(f.contigs, f.components, dir.file("reads.fa"), options);
  EXPECT_EQ(result.timing.index_source, "shared-cache");
  EXPECT_EQ(result.timing.index_build_seconds, 0.0);
  EXPECT_EQ(result.index, first);
}

}  // namespace
}  // namespace trinity::chrysalis
