// Tests for the 2-bit PackedSequence (the memory-footprint future work).

#include <gtest/gtest.h>

#include "seq/dna.hpp"
#include "seq/packed_sequence.hpp"
#include "test_helpers.hpp"

namespace trinity::seq {
namespace {

using trinity::testing::random_dna;

TEST(PackedSequenceTest, RoundTripsRandomSequences) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string s = random_dna(1 + (seed * 37) % 300, seed);
    const auto packed = PackedSequence::pack(s);
    ASSERT_TRUE(packed.has_value());
    EXPECT_EQ(packed->unpack(), s);
    EXPECT_EQ(packed->size(), s.size());
  }
}

TEST(PackedSequenceTest, EmptySequence) {
  const auto packed = PackedSequence::pack("");
  ASSERT_TRUE(packed.has_value());
  EXPECT_TRUE(packed->empty());
  EXPECT_EQ(packed->unpack(), "");
  EXPECT_EQ(packed->memory_bytes(), 0u);
}

TEST(PackedSequenceTest, RejectsNonAcgt) {
  EXPECT_FALSE(PackedSequence::pack("ACGNT").has_value());
  EXPECT_THROW(PackedSequence::pack_or_throw("ACGXT"), std::invalid_argument);
}

TEST(PackedSequenceTest, RandomAccessMatchesString) {
  const std::string s = random_dna(100, 9);
  const auto packed = PackedSequence::pack_or_throw(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(packed.at(i), s[i]) << "position " << i;
    EXPECT_EQ(packed.code_at(i), base_to_code(s[i]));
  }
}

TEST(PackedSequenceTest, WordBoundariesHandled) {
  // Lengths straddling the 32-base word boundary.
  for (const std::size_t len : {31u, 32u, 33u, 63u, 64u, 65u}) {
    const std::string s = random_dna(len, len);
    const auto packed = PackedSequence::pack_or_throw(s);
    EXPECT_EQ(packed.unpack(), s) << "length " << len;
  }
}

TEST(PackedSequenceTest, SubstrClampsAtEnd) {
  const std::string s = random_dna(50, 11);
  const auto packed = PackedSequence::pack_or_throw(s);
  EXPECT_EQ(packed.unpack_substr(40, 100), s.substr(40));
  EXPECT_EQ(packed.unpack_substr(10, 5), s.substr(10, 5));
  EXPECT_EQ(packed.unpack_substr(99, 5), "");
}

TEST(PackedSequenceTest, KmerAtMatchesCodec) {
  const std::string s = random_dna(80, 13);
  const auto packed = PackedSequence::pack_or_throw(s);
  for (const int k : {1, 15, 25, 32}) {
    const KmerCodec codec(k);
    for (std::size_t pos = 0; pos + static_cast<std::size_t>(k) <= s.size(); pos += 7) {
      const auto expected = codec.encode(std::string_view(s).substr(pos));
      const auto got = packed.kmer_at(pos, k);
      ASSERT_TRUE(expected && got);
      EXPECT_EQ(*got, *expected) << "k=" << k << " pos=" << pos;
    }
    EXPECT_FALSE(packed.kmer_at(s.size() - static_cast<std::size_t>(k) + 1, k).has_value());
  }
}

TEST(PackedSequenceTest, MemoryIsQuarterOfString) {
  const std::string s = random_dna(4096, 17);
  const auto packed = PackedSequence::pack_or_throw(s);
  EXPECT_LE(packed.memory_bytes(), s.size() / 4 + 8);
}

TEST(PackedSequenceTest, EqualityComparesContent) {
  const std::string s = random_dna(60, 19);
  EXPECT_EQ(PackedSequence::pack_or_throw(s), PackedSequence::pack_or_throw(s));
  std::string other = s;
  other[30] = other[30] == 'A' ? 'C' : 'A';
  EXPECT_NE(PackedSequence::pack_or_throw(s), PackedSequence::pack_or_throw(other));
}

TEST(PackedStoreTest, DropsUnpackableRecords) {
  std::vector<Sequence> seqs{{"good1", "ACGT"}, {"bad", "ACNGT"}, {"good2", "TTTT"}};
  const auto store = pack_store(seqs);
  EXPECT_EQ(store.sequences.size(), 2u);
  EXPECT_EQ(store.dropped, 1u);
  EXPECT_EQ(store.names[0], "good1");
  EXPECT_EQ(store.names[1], "good2");
  EXPECT_EQ(store.sequences[1].unpack(), "TTTT");
  EXPECT_GT(store.memory_bytes(), 0u);
}

}  // namespace
}  // namespace trinity::seq
