#pragma once
// Shared helpers for the test suite: scratch directories and small
// sequence-construction utilities.

#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace trinity::testing {

/// RAII scratch directory under the system temp dir, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("trinity_test_" + tag + "_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

/// Deterministic random DNA string.
inline std::string random_dna(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  std::string out(length, 'A');
  constexpr char kBases[4] = {'A', 'C', 'G', 'T'};
  for (auto& c : out) c = kBases[rng.uniform_below(4)];
  return out;
}

/// Chops `source` into overlapping error-free reads covering it end to end.
inline std::vector<seq::Sequence> tile_reads(const std::string& source,
                                             std::size_t read_length, std::size_t stride,
                                             const std::string& prefix = "read") {
  std::vector<seq::Sequence> reads;
  if (source.size() < read_length) return reads;
  for (std::size_t pos = 0;; pos += stride) {
    if (pos + read_length > source.size()) pos = source.size() - read_length;
    seq::Sequence r;
    r.name = prefix + std::to_string(reads.size());
    r.bases = source.substr(pos, read_length);
    reads.push_back(std::move(r));
    if (pos + read_length >= source.size()) break;
  }
  return reads;
}

}  // namespace trinity::testing
