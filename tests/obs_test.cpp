// The obs subsystem: lock-light registry semantics (identity, type safety,
// exact totals under concurrent writers, monotonic counters across
// snapshots), histogram bucket boundaries and quantiles, snapshot merging,
// the Prometheus/JSON exposition round-trip, and the exporter's atomic
// publication under the io fault matrix — a failed publish cycle must never
// leave a torn or half-written snapshot where a reader would accept it.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/error.hpp"
#include "io/fault_plan.hpp"
#include "io/io_file.hpp"
#include "obs/exporter.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"
#include "util/json.hpp"

namespace trinity::obs {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- registry semantics -----------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry registry;
  Counter& a = registry.counter("trinity_test_total", "help", {{"k", "v"}});
  Counter& b = registry.counter("trinity_test_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  // Label order must not matter: labels are normalized at registration.
  Counter& c = registry.counter("trinity_pair_total", "help",
                                {{"a", "1"}, {"b", "2"}});
  Counter& d = registry.counter("trinity_pair_total", "help",
                                {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c, &d);
  // A different label set is a different series.
  Counter& e = registry.counter("trinity_test_total", "help", {{"k", "other"}});
  EXPECT_NE(&a, &e);
}

TEST(MetricsRegistry, KindAndBucketConflictsThrow) {
  MetricsRegistry registry;
  registry.counter("trinity_conflict", "help");
  EXPECT_THROW(registry.gauge("trinity_conflict", "help"), std::logic_error);
  EXPECT_THROW(registry.histogram("trinity_conflict", "help", {1.0}),
               std::logic_error);
  registry.histogram("trinity_hist", "help", {1.0, 2.0});
  EXPECT_THROW(registry.histogram("trinity_hist", "help", {1.0, 3.0}),
               std::logic_error);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::logic_error);
}

TEST(MetricsRegistry, GaugeSetAddAndPeak) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("trinity_gauge", "help");
  g.set(5.0);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  Gauge& peak = registry.gauge("trinity_peak", "help");
  peak.set_max(3.0);
  peak.set_max(1.0);  // lower value must not regress the peak
  EXPECT_DOUBLE_EQ(peak.value(), 3.0);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram hist({1.0, 2.0});
  hist.observe(0.5);   // bucket 0 (le 1.0)
  hist.observe(1.0);   // bucket 0: le is inclusive
  hist.observe(1.5);   // bucket 1 (le 2.0)
  hist.observe(2.0);   // bucket 1: le is inclusive
  hist.observe(99.0);  // +Inf bucket
  EXPECT_EQ(hist.bucket(0), 2u);
  EXPECT_EQ(hist.bucket(1), 2u);
  EXPECT_EQ(hist.bucket(2), 1u);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 99.0);
}

TEST(MetricsRegistry, ConcurrentWritersLandExactTotals) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("trinity_ops_total", "help");
  Histogram& hist =
      registry.histogram("trinity_lat_seconds", "help", latency_buckets_s());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.inc();
        hist.observe(0.001 * static_cast<double>((t + i) % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(counter.value(), kThreads * kOpsPerThread);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

TEST(MetricsRegistry, CountersMonotonicAcrossSnapshotCycles) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("trinity_mono_total", "help");
  Histogram& hist = registry.histogram("trinity_mono_seconds", "help", {1.0});
  double last_value = -1.0;
  std::uint64_t last_count = 0;
  std::uint64_t last_sequence = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    counter.inc(static_cast<double>(cycle));
    hist.observe(0.5);
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_GT(snap.sequence, last_sequence);
    last_sequence = snap.sequence;
    const SeriesSnapshot* c = snap.find("trinity_mono_total", {});
    ASSERT_NE(c, nullptr);
    EXPECT_GE(c->value, last_value);
    last_value = c->value;
    const SeriesSnapshot* h = snap.find("trinity_mono_seconds", {});
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->hist.count(), last_count);
    last_count = h->hist.count();
  }
  EXPECT_DOUBLE_EQ(last_value, 0.0 + 1.0 + 2.0 + 3.0 + 4.0);
  EXPECT_EQ(last_count, 5u);
}

// --- snapshot merge ---------------------------------------------------------------

TEST(MetricsSnapshot, MergeAddsCountersAndBucketsGaugesLastWriterWins) {
  MetricsRegistry a, b;
  a.counter("trinity_c_total", "help", {{"rank", "0"}}).inc(3.0);
  b.counter("trinity_c_total", "help", {{"rank", "0"}}).inc(4.0);
  b.counter("trinity_c_total", "help", {{"rank", "1"}}).inc(7.0);
  a.gauge("trinity_g", "help").set(1.0);
  b.gauge("trinity_g", "help").set(9.0);
  a.histogram("trinity_h_seconds", "help", {1.0, 2.0}).observe(0.5);
  b.histogram("trinity_h_seconds", "help", {1.0, 2.0}).observe(1.5);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_DOUBLE_EQ(merged.value_or("trinity_c_total", {{"rank", "0"}}), 7.0);
  EXPECT_DOUBLE_EQ(merged.value_or("trinity_c_total", {{"rank", "1"}}), 7.0);
  EXPECT_DOUBLE_EQ(merged.value_or("trinity_g", {}), 9.0);
  const SeriesSnapshot* h = merged.find("trinity_h_seconds", {});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.count(), 2u);
  EXPECT_EQ(h->hist.buckets[0], 1u);
  EXPECT_EQ(h->hist.buckets[1], 1u);
  EXPECT_DOUBLE_EQ(h->hist.sum, 2.0);

  // Kind conflicts and bucket-layout conflicts must refuse to merge.
  MetricsRegistry c;
  c.gauge("trinity_c_total", "help", {{"rank", "0"}});
  EXPECT_THROW(merged.merge(c.snapshot()), std::logic_error);
  MetricsRegistry d;
  d.histogram("trinity_h_seconds", "help", {5.0}).observe(0.1);
  EXPECT_THROW(merged.merge(d.snapshot()), std::logic_error);
}

TEST(HistogramSnapshot, QuantileInterpolatesWithinBucket) {
  Histogram hist({1.0, 2.0, 4.0});
  for (int i = 0; i < 50; ++i) hist.observe(0.5);
  for (int i = 0; i < 50; ++i) hist.observe(1.5);
  HistogramSnapshot snap;
  snap.bounds = hist.bounds();
  snap.buckets = {50, 50, 0, 0};
  snap.sum = hist.sum();
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
  // p50 is the top of the first bucket, p100 the top of the second.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 2.0);
  EXPECT_GT(snap.quantile(0.75), 1.0);
  EXPECT_LT(snap.quantile(0.75), 2.0);
  // Samples in +Inf report the last finite bound (no upper edge to lerp to).
  HistogramSnapshot inf;
  inf.bounds = {1.0};
  inf.buckets = {0, 10};
  EXPECT_DOUBLE_EQ(inf.quantile(0.99), 1.0);
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

// --- exposition round-trip --------------------------------------------------------

MetricsRegistry& exposition_fixture(MetricsRegistry& registry) {
  registry.counter("trinity_jobs_total", "Terminal jobs by outcome.",
                   {{"tenant", "alice"}, {"outcome", "completed"}})
      .inc(3.0);
  registry.counter("trinity_jobs_total", "Terminal jobs by outcome.",
                   {{"tenant", "bo\"b\\x\n"}, {"outcome", "failed"}})
      .inc(1.0);
  registry.gauge("trinity_queue_depth", "Jobs waiting.").set(4.0);
  Histogram& hist = registry.histogram(
      "trinity_latency_seconds", "Completion latency.", {0.1, 1.0, 10.0});
  hist.observe(0.05);
  hist.observe(0.5);
  hist.observe(42.0);
  return registry;
}

void expect_same_families(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  ASSERT_EQ(a.families.size(), b.families.size());
  for (std::size_t i = 0; i < a.families.size(); ++i) {
    const FamilySnapshot& fa = a.families[i];
    const FamilySnapshot& fb = b.families[i];
    EXPECT_EQ(fa.name, fb.name);
    EXPECT_EQ(fa.help, fb.help);
    EXPECT_EQ(fa.kind, fb.kind);
    ASSERT_EQ(fa.series.size(), fb.series.size()) << fa.name;
    for (std::size_t j = 0; j < fa.series.size(); ++j) {
      EXPECT_EQ(fa.series[j].labels, fb.series[j].labels) << fa.name;
      EXPECT_DOUBLE_EQ(fa.series[j].value, fb.series[j].value) << fa.name;
      EXPECT_EQ(fa.series[j].hist.bounds, fb.series[j].hist.bounds) << fa.name;
      EXPECT_EQ(fa.series[j].hist.buckets, fb.series[j].hist.buckets) << fa.name;
      EXPECT_DOUBLE_EQ(fa.series[j].hist.sum, fb.series[j].hist.sum) << fa.name;
    }
  }
}

TEST(Exposition, PrometheusRoundTripPreservesEveryFamily) {
  MetricsRegistry registry;
  const MetricsSnapshot snap = exposition_fixture(registry).snapshot();
  const std::string text = to_prometheus(snap);

  // Every family must carry its HELP and TYPE headers with stable names.
  for (const char* name :
       {"trinity_jobs_total", "trinity_queue_depth", "trinity_latency_seconds"}) {
    EXPECT_NE(text.find("# HELP " + std::string(name)), std::string::npos) << text;
    EXPECT_NE(text.find("# TYPE " + std::string(name)), std::string::npos) << text;
  }
  EXPECT_NE(text.find("# TYPE trinity_latency_seconds histogram"),
            std::string::npos);
  // Histograms expand to cumulative buckets closed by +Inf, _sum and _count.
  EXPECT_NE(text.find("trinity_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("trinity_latency_seconds_count 3"), std::string::npos);
  // Label values with quotes/backslashes/newlines are escaped on the wire.
  EXPECT_NE(text.find("bo\\\"b\\\\x\\n"), std::string::npos) << text;

  const MetricsSnapshot parsed = parse_prometheus_text(text);
  expect_same_families(snap, parsed);
}

TEST(Exposition, PrometheusParserRejectsMalformedDocuments) {
  // A sample without HELP+TYPE headers.
  EXPECT_THROW(parse_prometheus_text("trinity_x_total 1\n"), std::runtime_error);
  // Non-cumulative histogram buckets.
  EXPECT_THROW(parse_prometheus_text(
                   "# HELP trinity_h_seconds h\n"
                   "# TYPE trinity_h_seconds histogram\n"
                   "trinity_h_seconds_bucket{le=\"1\"} 5\n"
                   "trinity_h_seconds_bucket{le=\"+Inf\"} 3\n"
                   "trinity_h_seconds_sum 1\n"
                   "trinity_h_seconds_count 3\n"),
               std::runtime_error);
  // A histogram that never closes with +Inf.
  EXPECT_THROW(parse_prometheus_text(
                   "# HELP trinity_h_seconds h\n"
                   "# TYPE trinity_h_seconds histogram\n"
                   "trinity_h_seconds_bucket{le=\"1\"} 5\n"
                   "trinity_h_seconds_sum 1\n"
                   "trinity_h_seconds_count 5\n"),
               std::runtime_error);
  // Truncation mid-line (what a torn write would leave behind).
  MetricsRegistry registry;
  const std::string text = to_prometheus(exposition_fixture(registry).snapshot());
  EXPECT_THROW(parse_prometheus_text(text.substr(0, text.size() / 2)),
               std::runtime_error);
}

TEST(Exposition, JsonRoundTripAndSchemaVersionGate) {
  MetricsRegistry registry;
  const MetricsSnapshot snap = exposition_fixture(registry).snapshot();
  util::Json doc = to_json(snap);
  EXPECT_EQ(doc.at("schema_version").as_int(), kMetricsSchemaVersion);
  const MetricsSnapshot parsed =
      snapshot_from_json(util::Json::parse(doc.dump(2)));
  EXPECT_EQ(parsed.sequence, snap.sequence);
  expect_same_families(snap, parsed);

  doc.set("schema_version", static_cast<std::int64_t>(kMetricsSchemaVersion + 1));
  EXPECT_THROW(snapshot_from_json(doc), std::runtime_error);
}

// --- exporter under the io fault matrix -------------------------------------------

TEST(MetricsExporter, ExportNowPublishesParseableFiles) {
  TempDir dir("obs_export");
  MetricsRegistry registry;
  registry.counter("trinity_ops_total", "help").inc(5.0);
  MetricsExporter exporter(&registry, {dir.str(), /*period_s=*/60.0});
  ASSERT_TRUE(exporter.export_now());
  const MetricsSnapshot prom = parse_prometheus_text(slurp(exporter.prom_path()));
  EXPECT_DOUBLE_EQ(prom.value_or("trinity_ops_total", {}), 5.0);
  const MetricsSnapshot json =
      snapshot_from_json(util::Json::parse(slurp(exporter.json_path())));
  EXPECT_DOUBLE_EQ(json.value_or("trinity_ops_total", {}), 5.0);
  exporter.stop();
}

TEST(MetricsExporter, TransientFaultSkipsCycleAndKeepsOldSnapshot) {
  TempDir dir("obs_export_eio");
  MetricsRegistry registry;
  Counter& ops = registry.counter("trinity_ops_total", "help");
  ops.inc(1.0);
  MetricsExporter exporter(&registry, {dir.str(), /*period_s=*/60.0});
  ASSERT_TRUE(exporter.export_now());

  ops.inc(1.0);
  {
    io::ScopedFaultInjection fault(
        io::IoFaultPlan::parse("write:*metrics.prom.tmp:1:eio"));
    EXPECT_FALSE(exporter.export_now());
  }
  EXPECT_EQ(exporter.skipped_cycles(), 1u);
  EXPECT_FALSE(exporter.degraded());
  // The published files still hold the previous complete snapshot.
  const MetricsSnapshot old = parse_prometheus_text(slurp(exporter.prom_path()));
  EXPECT_DOUBLE_EQ(old.value_or("trinity_ops_total", {}), 1.0);

  // The next clean cycle catches up.
  ASSERT_TRUE(exporter.export_now());
  const MetricsSnapshot fresh = parse_prometheus_text(slurp(exporter.prom_path()));
  EXPECT_DOUBLE_EQ(fresh.value_or("trinity_ops_total", {}), 2.0);
  exporter.stop();
}

TEST(MetricsExporter, PermanentFaultDegradesWithoutTearingPublishedFiles) {
  TempDir dir("obs_export_enospc");
  MetricsRegistry registry;
  Counter& ops = registry.counter("trinity_ops_total", "help");
  ops.inc(1.0);
  MetricsExporter exporter(&registry, {dir.str(), /*period_s=*/60.0});
  ASSERT_TRUE(exporter.export_now());

  ops.inc(1.0);
  {
    io::ScopedFaultInjection fault(
        io::IoFaultPlan::parse("write:*metrics.prom.tmp:1:enospc"));
    EXPECT_FALSE(exporter.export_now());
  }
  EXPECT_TRUE(exporter.degraded());
  // Degraded means no further publication attempts — telemetry loss, not a
  // serving failure, and the last good snapshot stays parseable on disk.
  EXPECT_FALSE(exporter.export_now());
  const MetricsSnapshot old = parse_prometheus_text(slurp(exporter.prom_path()));
  EXPECT_DOUBLE_EQ(old.value_or("trinity_ops_total", {}), 1.0);
  exporter.stop();
}

TEST(MetricsExporter, TornRenameNeverPassesOffAPartialSnapshot) {
  TempDir dir("obs_export_torn");
  MetricsRegistry registry;
  Counter& ops = registry.counter("trinity_ops_total", "help");
  ops.inc(1.0);
  MetricsExporter exporter(&registry, {dir.str(), /*period_s=*/60.0});
  ASSERT_TRUE(exporter.export_now());

  ops.inc(1.0);
  {
    io::ScopedFaultInjection fault(
        io::IoFaultPlan::parse("rename:*/metrics.prom:1:torn_rename"));
    EXPECT_FALSE(exporter.export_now());
  }
  // A torn rename models a crash mid-commit: the .prom destination holds a
  // truncated document. The strict parser must reject it — a reader can
  // never mistake the torn file for a valid snapshot.
  EXPECT_TRUE(exporter.degraded());
  EXPECT_THROW(parse_prometheus_text(slurp(exporter.prom_path())),
               std::runtime_error);
  // metrics.json is committed after metrics.prom, so the failed cycle never
  // touched it: trinity_top keeps rendering the last complete snapshot.
  const MetricsSnapshot json =
      snapshot_from_json(util::Json::parse(slurp(exporter.json_path())));
  EXPECT_DOUBLE_EQ(json.value_or("trinity_ops_total", {}), 1.0);
  exporter.stop();
}

TEST(MetricsExporter, BackgroundThreadPublishesAndStopFlushesFinalTotals) {
  TempDir dir("obs_export_thread");
  MetricsRegistry registry;
  Counter& ops = registry.counter("trinity_ops_total", "help");
  MetricsExporter exporter(&registry, {dir.str(), /*period_s=*/0.01});
  for (int i = 0; i < 10; ++i) {
    ops.inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  exporter.stop();  // final export lands the terminal totals
  EXPECT_GE(exporter.cycles(), 1u);
  const MetricsSnapshot snap =
      snapshot_from_json(util::Json::parse(slurp(exporter.json_path())));
  EXPECT_DOUBLE_EQ(snap.value_or("trinity_ops_total", {}), 10.0);
}

}  // namespace
}  // namespace trinity::obs
