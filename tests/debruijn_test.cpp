// Tests for the per-component de Bruijn graphs (FastaToDebruijn +
// QuantifyGraph).

#include <gtest/gtest.h>

#include <sstream>

#include "chrysalis/debruijn.hpp"
#include "seq/dna.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::random_dna;

constexpr int kTestK = 8;

TEST(DeBruijnTest, LinearContigMakesChain) {
  const std::string bases = random_dna(100, 1);
  const DeBruijnGraph g({{"c", bases}}, kTestK);
  const std::size_t expected_nodes = bases.size() - kTestK + 1;
  EXPECT_EQ(g.num_nodes(), expected_nodes);
  EXPECT_EQ(g.num_edges(), expected_nodes - 1);
  EXPECT_EQ(g.source_nodes().size(), 1u);
}

TEST(DeBruijnTest, NodeLookupMatchesContigKmers) {
  const std::string bases = random_dna(60, 2);
  const DeBruijnGraph g({{"c", bases}}, kTestK);
  const seq::KmerCodec codec(kTestK);
  for (const auto& occ : codec.extract(bases)) {
    EXPECT_GE(g.node_id(occ.code), 0);
  }
  EXPECT_EQ(g.node_id(*codec.encode(random_dna(kTestK, 777))), -1);
}

TEST(DeBruijnTest, EdgesFollowConsecutiveWindows) {
  const std::string bases = random_dna(40, 3);
  const DeBruijnGraph g({{"c", bases}}, kTestK);
  const seq::KmerCodec codec(kTestK);
  const auto occ = codec.extract(bases);
  for (std::size_t i = 0; i + 1 < occ.size(); ++i) {
    const auto from = g.node_id(occ[i].code);
    const auto to = g.node_id(occ[i + 1].code);
    const auto b = seq::KmerCodec::last_base(occ[i + 1].code);
    EXPECT_EQ(g.successor(from, b), to);
  }
}

TEST(DeBruijnTest, BranchingContigsShareNodes) {
  // Two contigs share a prefix then diverge: a fork in the graph.
  const std::string common = random_dna(30, 4);
  const std::string left = common + random_dna(20, 5);
  const std::string right = common + random_dna(20, 6);
  const DeBruijnGraph g({{"l", left}, {"r", right}}, kTestK);

  // The last k-mer of the common region must have out-degree 2.
  const seq::KmerCodec codec(kTestK);
  const auto fork = g.node_id(*codec.encode(
      std::string_view(common).substr(common.size() - kTestK)));
  ASSERT_GE(fork, 0);
  EXPECT_EQ(g.out_degree(fork), 2);
}

TEST(DeBruijnTest, DuplicateContigAddsNothing) {
  const std::string bases = random_dna(50, 7);
  const DeBruijnGraph once({{"c", bases}}, kTestK);
  const DeBruijnGraph twice({{"c", bases}, {"c2", bases}}, kTestK);
  EXPECT_EQ(once.num_nodes(), twice.num_nodes());
  EXPECT_EQ(once.num_edges(), twice.num_edges());
}

TEST(DeBruijnTest, ShortContigContributesNothing) {
  const DeBruijnGraph g({{"short", random_dna(kTestK - 1, 8)}}, kTestK);
  EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(DeBruijnTest, InvalidBaseBreaksChain) {
  std::string bases = random_dna(40, 9);
  bases[20] = 'N';
  const DeBruijnGraph g({{"c", bases}}, kTestK);
  // Two disjoint chains -> two sources.
  EXPECT_EQ(g.source_nodes().size(), 2u);
}

TEST(DeBruijnTest, QuantifyCountsBothStrands) {
  const std::string bases = random_dna(60, 10);
  DeBruijnGraph g({{"c", bases}}, kTestK);

  const seq::Sequence fwd{"f", bases.substr(10, 30)};
  g.quantify(fwd);
  const seq::KmerCodec codec(kTestK);
  const auto covered = g.node_id(*codec.encode(std::string_view(bases).substr(15)));
  ASSERT_GE(covered, 0);
  EXPECT_EQ(g.support(covered), 1u);

  // The same region as a reverse-complement read adds support too.
  const seq::Sequence rev{"r", seq::reverse_complement(bases.substr(10, 30))};
  g.quantify(rev);
  EXPECT_EQ(g.support(covered), 2u);
}

TEST(DeBruijnTest, QuantifyIgnoresForeignReads) {
  DeBruijnGraph g({{"c", random_dna(60, 11)}}, kTestK);
  g.quantify({"alien", random_dna(60, 99999)});
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.support(static_cast<std::int32_t>(i)), 0u);
  }
}

TEST(DeBruijnTest, CyclicGraphHasNoSources) {
  // A tandem repeat longer than k wraps the chain onto itself.
  const std::string unit = "ACGTGTCAAC";  // 10 > k? no, k=8; unit length 10
  std::string repeat;
  for (int i = 0; i < 6; ++i) repeat += unit;
  const DeBruijnGraph g({{"r", repeat}}, kTestK);
  EXPECT_EQ(g.num_nodes(), 10u);  // one node per rotation of the unit
  EXPECT_TRUE(g.source_nodes().empty());
}

TEST(DeBruijnIoTest, RoundTripsStructureAndSupport) {
  const std::string common = random_dna(30, 20);
  const std::string a = common + random_dna(20, 21);
  const std::string b = common + random_dna(20, 22);
  DeBruijnGraph g({{"a", a}, {"b", b}}, kTestK);
  g.quantify({"r", a});
  g.quantify({"r", a});
  g.quantify({"r", b});

  std::stringstream buffer;
  g.write(buffer);
  const auto loaded = DeBruijnGraph::read(buffer);

  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_EQ(loaded.k(), g.k());
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    EXPECT_EQ(loaded.node_kmer(id), g.node_kmer(id));
    EXPECT_EQ(loaded.support(id), g.support(id));
    EXPECT_EQ(loaded.in_degree(id), g.in_degree(id));
    for (std::uint8_t base = 0; base < 4; ++base) {
      EXPECT_EQ(loaded.successor(id, base), g.successor(id, base));
    }
  }
  EXPECT_EQ(loaded.source_nodes(), g.source_nodes());
}

TEST(DeBruijnIoTest, EmptyGraphRoundTrips) {
  const DeBruijnGraph g({}, kTestK);
  std::stringstream buffer;
  g.write(buffer);
  const auto loaded = DeBruijnGraph::read(buffer);
  EXPECT_EQ(loaded.num_nodes(), 0u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST(DeBruijnIoTest, BadHeaderThrows) {
  std::stringstream buffer("#something k=8 nodes=0 edges=0\n");
  EXPECT_THROW(DeBruijnGraph::read(buffer), std::runtime_error);
}

TEST(DeBruijnIoTest, DanglingEdgeThrows) {
  std::stringstream buffer("#trinity-debruijn k=3 nodes=1 edges=1\nN ACG 0\nE 0 5\n");
  EXPECT_THROW(DeBruijnGraph::read(buffer), std::runtime_error);
}

TEST(DeBruijnIoTest, NonOverlapEdgeThrows) {
  // CGT does not follow TTT by a (k-1) overlap.
  std::stringstream buffer(
      "#trinity-debruijn k=3 nodes=2 edges=1\nN TTT 0\nN CGT 0\nE 0 1\n");
  EXPECT_THROW(DeBruijnGraph::read(buffer), std::runtime_error);
}

TEST(DeBruijnIoTest, CountMismatchThrows) {
  std::stringstream buffer("#trinity-debruijn k=3 nodes=2 edges=0\nN ACG 0\n");
  EXPECT_THROW(DeBruijnGraph::read(buffer), std::runtime_error);
}

}  // namespace
}  // namespace trinity::chrysalis
