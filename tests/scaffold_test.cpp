// Tests for the Bowtie-based scaffolding step: mate-name parsing and
// end-anchored pair derivation.

#include <gtest/gtest.h>

#include "chrysalis/scaffold.hpp"
#include "test_helpers.hpp"

namespace trinity::chrysalis {
namespace {

using trinity::testing::random_dna;

TEST(MateNames, RecognizesCommonConventions) {
  int mate = 0;
  EXPECT_EQ(mate_fragment_name("frag7/1", &mate), "frag7");
  EXPECT_EQ(mate, 1);
  EXPECT_EQ(mate_fragment_name("frag7/2", &mate), "frag7");
  EXPECT_EQ(mate, 2);
  EXPECT_EQ(mate_fragment_name("x_1", &mate), "x");
  EXPECT_EQ(mate_fragment_name("y.2", &mate), "y");
}

TEST(MateNames, RejectsUnpairedNames) {
  EXPECT_EQ(mate_fragment_name("read42", nullptr), "");
  EXPECT_EQ(mate_fragment_name("r/3", nullptr), "");
  EXPECT_EQ(mate_fragment_name("a", nullptr), "");
  EXPECT_EQ(mate_fragment_name("", nullptr), "");
}

align::SamRecord rec(const std::string& name, std::int32_t target, std::size_t pos,
                     std::size_t read_len = 50) {
  align::SamRecord r;
  r.read_name = name;
  r.target_id = target;
  r.target_name = "contig" + std::to_string(target);
  r.pos = pos;
  r.read_length = read_len;
  return r;
}

std::vector<seq::Sequence> contigs3() {
  return {{"contig0", random_dna(1000, 1)},
          {"contig1", random_dna(1000, 2)},
          {"contig2", random_dna(1000, 3)}};
}

TEST(ScaffoldTest, EndAnchoredMatePairsWeld) {
  ScaffoldOptions options;
  options.min_pair_support = 2;
  // Two fragments bridging contig0's tail and contig1's head.
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 0, 940), rec("f1/2", 1, 20),
      rec("f2/1", 0, 930), rec("f2/2", 1, 10),
  };
  const auto pairs = scaffold_pairs(alignments, contigs3(), options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0);
  EXPECT_EQ(pairs[0].b, 1);
}

TEST(ScaffoldTest, SupportThresholdGatesPairs) {
  ScaffoldOptions options;
  options.min_pair_support = 3;
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 0, 940), rec("f1/2", 1, 20),
      rec("f2/1", 0, 930), rec("f2/2", 1, 10),
  };
  EXPECT_TRUE(scaffold_pairs(alignments, contigs3(), options).empty());
}

TEST(ScaffoldTest, MidContigMatesDoNotWeld) {
  ScaffoldOptions options;
  options.min_pair_support = 1;
  options.end_window = 100;
  // Both mates land in the middle of their contigs.
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 0, 500), rec("f1/2", 1, 480),
  };
  EXPECT_TRUE(scaffold_pairs(alignments, contigs3(), options).empty());
}

TEST(ScaffoldTest, SameContigPairIgnored) {
  ScaffoldOptions options;
  options.min_pair_support = 1;
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 0, 10), rec("f1/2", 0, 940),
  };
  EXPECT_TRUE(scaffold_pairs(alignments, contigs3(), options).empty());
}

TEST(ScaffoldTest, UnalignedMatesIgnored) {
  ScaffoldOptions options;
  options.min_pair_support = 1;
  align::SamRecord unaligned;
  unaligned.read_name = "f1/2";
  std::vector<align::SamRecord> alignments{rec("f1/1", 0, 10), unaligned};
  EXPECT_TRUE(scaffold_pairs(alignments, contigs3(), options).empty());
}

TEST(ScaffoldTest, PairOrderIsNormalized) {
  ScaffoldOptions options;
  options.min_pair_support = 1;
  // Mate 1 on the higher contig id: the emitted pair is still (low, high).
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 2, 10), rec("f1/2", 0, 950),
  };
  const auto pairs = scaffold_pairs(alignments, contigs3(), options);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0);
  EXPECT_EQ(pairs[0].b, 2);
}

TEST(ScaffoldTest, MultipleDistinctPairsReported) {
  ScaffoldOptions options;
  options.min_pair_support = 1;
  std::vector<align::SamRecord> alignments{
      rec("f1/1", 0, 950), rec("f1/2", 1, 10),
      rec("f2/1", 1, 960), rec("f2/2", 2, 5),
  };
  const auto pairs = scaffold_pairs(alignments, contigs3(), options);
  ASSERT_EQ(pairs.size(), 2u);
}

}  // namespace
}  // namespace trinity::chrysalis
