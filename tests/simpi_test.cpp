// Tests for the simpi substrate: point-to-point semantics, collectives
// against serial oracles across rank counts, abort propagation, packing,
// and the communication cost model.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

#include "simpi/context.hpp"
#include "simpi/pack.hpp"

namespace trinity::simpi {
namespace {

// --- point-to-point --------------------------------------------------------------

TEST(SimpiP2P, PingPong) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 0, 41);
      EXPECT_EQ(ctx.recv_value<int>(1, 1), 42);
    } else {
      const int v = ctx.recv_value<int>(0, 0);
      ctx.send_value<int>(0, 1, v + 1);
    }
  });
}

TEST(SimpiP2P, MessagesFromOneSourceArriveInOrder) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 50; ++i) ctx.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(ctx.recv_value<int>(0, 3), i);
    }
  });
}

TEST(SimpiP2P, TagsSelectMessages) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value<int>(1, 5, 55);
      ctx.send_value<int>(1, 4, 44);
    } else {
      // Receive in the opposite order of sending: tag matching must hold.
      EXPECT_EQ(ctx.recv_value<int>(0, 4), 44);
      EXPECT_EQ(ctx.recv_value<int>(0, 5), 55);
    }
  });
}

TEST(SimpiP2P, AnySourceReceivesFromEveryRank) {
  run(4, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::set<int> sources;
      for (int i = 0; i < 3; ++i) {
        const Message msg = ctx.recv_bytes(kAnySource, 9);
        sources.insert(msg.source);
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2, 3}));
    } else {
      ctx.send_value<int>(0, 9, ctx.rank());
    }
  });
}

TEST(SimpiP2P, VectorPayloadRoundTrips) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> data(1000);
      std::iota(data.begin(), data.end(), 0.5);
      ctx.send(1, 2, data);
    } else {
      const auto got = ctx.recv<double>(0, 2);
      ASSERT_EQ(got.size(), 1000u);
      EXPECT_DOUBLE_EQ(got[999], 999.5);
    }
  });
}

TEST(SimpiP2P, NegativeUserTagRejected) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      EXPECT_THROW(ctx.send_value<int>(1, -1, 0), std::invalid_argument);
      ctx.send_value<int>(1, 0, 1);  // unblock the peer
    } else {
      ctx.recv_value<int>(0, 0);
    }
  });
}

TEST(SimpiP2P, OutOfRangeDestinationRejected) {
  run(1, [](Context& ctx) {
    EXPECT_THROW(ctx.send_value<int>(5, 0, 0), std::out_of_range);
  });
}

// --- collectives, parameterized over world size -----------------------------------

class SimpiCollectives : public ::testing::TestWithParam<int> {};

TEST_P(SimpiCollectives, BarrierSynchronizesPhases) {
  const int nranks = GetParam();
  std::atomic<int> arrived{0};
  run(nranks, [&](Context& ctx) {
    arrived.fetch_add(1);
    ctx.barrier();
    // After the barrier every rank must have arrived.
    EXPECT_EQ(arrived.load(), nranks);
  });
}

TEST_P(SimpiCollectives, BcastDeliversRootData) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<int> data;
    if (ctx.rank() == 0) data = {10, 20, 30};
    ctx.bcast(data, 0);
    EXPECT_EQ(data, (std::vector<int>{10, 20, 30}));
  });
}

TEST_P(SimpiCollectives, BcastFromNonZeroRoot) {
  const int nranks = GetParam();
  const int root = nranks - 1;
  run(nranks, [&](Context& ctx) {
    std::vector<std::uint64_t> data;
    if (ctx.rank() == root) data = {7ULL};
    ctx.bcast(data, root);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_EQ(data[0], 7ULL);
  });
}

TEST_P(SimpiCollectives, GathervCollectsPerRankVectors) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    // Rank r contributes r+1 copies of its rank id.
    std::vector<int> local(static_cast<std::size_t>(ctx.rank()) + 1, ctx.rank());
    const auto parts = ctx.gatherv(local, 0);
    if (ctx.rank() == 0) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        ASSERT_EQ(parts[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r) + 1);
        for (const int v : parts[static_cast<std::size_t>(r)]) EXPECT_EQ(v, r);
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST_P(SimpiCollectives, AllgathervConcatenatesInRankOrder) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    std::vector<int> local{ctx.rank() * 100, ctx.rank() * 100 + 1};
    std::vector<std::size_t> counts;
    const auto all = ctx.allgatherv(local, &counts);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * nranks));
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      EXPECT_EQ(counts[static_cast<std::size_t>(r)], 2u);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r * 100);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r) + 1], r * 100 + 1);
    }
  });
}

TEST_P(SimpiCollectives, AllgathervHandlesEmptyContributions) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    // Only even ranks contribute.
    std::vector<int> local;
    if (ctx.rank() % 2 == 0) local.push_back(ctx.rank());
    const auto all = ctx.allgatherv(local);
    std::vector<int> expected;
    for (int r = 0; r < nranks; r += 2) expected.push_back(r);
    EXPECT_EQ(all, expected);
  });
}

TEST_P(SimpiCollectives, ReductionsMatchSerialOracle) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    const int sum = ctx.allreduce_sum(ctx.rank() + 1);
    EXPECT_EQ(sum, nranks * (nranks + 1) / 2);
    EXPECT_EQ(ctx.allreduce_max(ctx.rank()), nranks - 1);
    EXPECT_EQ(ctx.allreduce_min(ctx.rank()), 0);
    EXPECT_DOUBLE_EQ(ctx.allreduce_max(static_cast<double>(ctx.rank()) * 0.5),
                     static_cast<double>(nranks - 1) * 0.5);
  });
}

TEST_P(SimpiCollectives, RepeatedCollectivesDoNotCrossTalk) {
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    for (int round = 0; round < 20; ++round) {
      const auto all = ctx.allgather(ctx.rank() * 1000 + round);
      ASSERT_EQ(all.size(), static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 1000 + round);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, SimpiCollectives, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST_P(SimpiCollectives, RandomizedAllPairsTrafficIsExact) {
  // Fuzz: every rank sends a random-length, random-content vector to every
  // other rank; receivers verify content and provenance exactly.
  const int nranks = GetParam();
  run(nranks, [&](Context& ctx) {
    // Deterministic per-(src,dst) payload so receivers can reconstruct it.
    auto payload = [](int src, int dst) {
      std::vector<std::uint32_t> data(static_cast<std::size_t>((src * 7 + dst * 13) % 50) + 1);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint32_t>(src * 1000003 + dst * 1009 + i);
      }
      return data;
    };
    for (int dst = 0; dst < ctx.size(); ++dst) {
      if (dst == ctx.rank()) continue;
      ctx.send(dst, 21, payload(ctx.rank(), dst));
    }
    for (int src = 0; src < ctx.size(); ++src) {
      if (src == ctx.rank()) continue;
      const auto got = ctx.recv<std::uint32_t>(src, 21);
      EXPECT_EQ(got, payload(src, ctx.rank())) << "from rank " << src;
    }
  });
}

// --- error handling ------------------------------------------------------------------

TEST(SimpiAbort, ExceptionInOneRankUnblocksOthers) {
  EXPECT_THROW(
      run(3,
          [](Context& ctx) {
            if (ctx.rank() == 0) {
              throw std::runtime_error("rank0 failed");
            }
            // Other ranks block forever on a message that never comes; the
            // abort must wake them.
            ctx.recv_bytes(0, 17);
          }),
      std::runtime_error);
}

TEST(SimpiAbort, RootCauseExceptionWinsOverAbortedError) {
  try {
    run(3, [](Context& ctx) {
      if (ctx.rank() == 2) throw std::logic_error("root cause");
      ctx.barrier();
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "root cause");
  }
}

TEST(SimpiAbort, BarrierWaitersAreWoken) {
  EXPECT_THROW(run(2,
                   [](Context& ctx) {
                     if (ctx.rank() == 0) throw std::runtime_error("boom");
                     ctx.barrier();
                   }),
               std::runtime_error);
}

TEST(SimpiRun, RejectsZeroRanks) {
  EXPECT_THROW(run(0, [](Context&) {}), std::invalid_argument);
}

TEST(SimpiRun, ReportsPerRankResults) {
  const auto results = run(3, [](Context& ctx) {
    double sink = 0.0;
    for (int i = 0; i < 100000 * (ctx.rank() + 1); ++i) sink += i;
    EXPECT_GE(sink, 0.0);
    ctx.barrier();
  });
  ASSERT_EQ(results.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].rank, r);
    EXPECT_GE(results[static_cast<std::size_t>(r)].cpu_seconds, 0.0);
    EXPECT_GT(results[static_cast<std::size_t>(r)].comm_seconds, 0.0);  // barrier charged
    EXPECT_GE(results[static_cast<std::size_t>(r)].virtual_seconds(),
              results[static_cast<std::size_t>(r)].cpu_seconds);
  }
}

TEST(SimpiP2P, TypedRecvSizeMismatchThrows) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      // 3 bytes cannot be reinterpreted as int32s.
      const std::byte payload[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
      ctx.send_bytes(1, 0, payload);
    } else {
      EXPECT_THROW((void)ctx.recv<std::int32_t>(0, 0), std::runtime_error);
    }
  });
}

TEST(SimpiP2P, RecvValueCountMismatchThrows) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::vector<int>{1, 2, 3});
    } else {
      EXPECT_THROW((void)ctx.recv_value<int>(0, 0), std::runtime_error);
    }
  });
}

TEST(SimpiP2P, SendChargesMoreForBiggerPayloads) {
  run(2, [](Context& ctx) {
    if (ctx.rank() == 0) {
      const double t0 = ctx.comm_seconds();
      ctx.send(1, 0, std::vector<char>(16));
      const double small = ctx.comm_seconds() - t0;
      ctx.send(1, 0, std::vector<char>(1 << 20));
      const double big = ctx.comm_seconds() - t0 - small;
      EXPECT_GT(big, small);
    } else {
      (void)ctx.recv<char>(0, 0);
      (void)ctx.recv<char>(0, 0);
    }
  });
}

// --- pack ------------------------------------------------------------------------------

TEST(SimpiPack, RoundTripsStrings) {
  const std::vector<std::string> in{"ACGT", "", "TTTTTTTT", "A"};
  EXPECT_EQ(unpack_strings(pack_strings(in)), in);
}

TEST(SimpiPack, EmptyVectorRoundTrips) {
  EXPECT_TRUE(unpack_strings(pack_strings({})).empty());
}

TEST(SimpiPack, PoolUnpacksConcatenatedFrames) {
  const std::vector<std::string> a{"AA", "CC"};
  const std::vector<std::string> b{"GG"};
  auto bytes = pack_strings(a);
  const auto more = pack_strings(b);
  bytes.insert(bytes.end(), more.begin(), more.end());
  EXPECT_EQ(unpack_string_pool(bytes), (std::vector<std::string>{"AA", "CC", "GG"}));
}

TEST(SimpiPack, TruncatedBufferThrows) {
  auto bytes = pack_strings({"ACGTACGT"});
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW(unpack_strings(bytes), std::runtime_error);
}

TEST(SimpiPack, TrailingGarbageThrows) {
  auto bytes = pack_strings({"ACGT"});
  bytes.push_back(std::byte{0});
  EXPECT_THROW(unpack_strings(bytes), std::runtime_error);
}

// --- cost model -----------------------------------------------------------------------

TEST(CostModel, P2PCostGrowsWithBytes) {
  const CommCostModel m;
  EXPECT_GT(m.p2p_cost(1 << 20), m.p2p_cost(1));
  EXPECT_GE(m.p2p_cost(0), m.latency_seconds);
}

TEST(CostModel, CollectiveCostIsZeroForSingleRank) {
  const CommCostModel m;
  EXPECT_EQ(m.collective_cost(1, 1 << 20), 0.0);
  EXPECT_EQ(m.barrier_cost(1), 0.0);
}

TEST(CostModel, CollectiveLatencyGrowsLogarithmically) {
  const CommCostModel m;
  const double c2 = m.collective_cost(2, 0);
  const double c16 = m.collective_cost(16, 0);
  EXPECT_NEAR(c16 / c2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(CostModel, CommClockAccumulatesOnSend) {
  run(2, [](Context& ctx) {
    const double before = ctx.comm_seconds();
    if (ctx.rank() == 0) {
      std::vector<std::byte> payload(1 << 16);
      ctx.send_bytes(1, 0, payload);
      EXPECT_GT(ctx.comm_seconds(), before);
    } else {
      ctx.recv_bytes(0, 0);
    }
  });
}

}  // namespace
}  // namespace trinity::simpi
