// Integration tests for pipeline checkpoint/restart: manifest recording,
// stage-level resume, invalidation (corrupt manifest, stale options,
// damaged artifacts), the in-process retry driver, and the paper-style
// fault-then-relaunch scenario producing byte-identical transcripts.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "checkpoint/manifest.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"

namespace trinity::pipeline {
namespace {

using trinity::testing::TempDir;

const std::vector<std::string> kAllStages = {
    "write_input",        "jellyfish",
    "inchworm",           "chrysalis.bowtie",
    "chrysalis.graph_from_fasta", "chrysalis.reads_to_transcripts",
    "butterfly"};

PipelineOptions small_options(const std::string& work_dir, int nranks = 1) {
  PipelineOptions o;
  o.k = 15;
  o.nranks = nranks;
  o.work_dir = work_dir;
  o.model_threads_per_rank = 4;
  o.max_mem_reads = 500;
  o.trace_sample_interval_ms = 0;
  // Single OpenMP thread keeps stage outputs bit-reproducible across runs,
  // which the byte-identity assertions below rely on.
  o.omp_threads = 1;
  return o;
}

sim::Dataset tiny_dataset() {
  auto p = sim::preset("tiny");
  p.reads.error_rate = 0.002;
  p.reads.coverage = 30.0;
  p.reads.expression_sigma = 0.7;
  return sim::simulate_dataset(p);
}

const sim::Dataset& shared_dataset() {
  static const sim::Dataset data = tiny_dataset();
  return data;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A FaultPlan that kills `rank` at its first simpi call of the targeted
/// stage (virtual-time trigger at 0 so it is independent of which
/// collectives the stage happens to use).
simpi::FaultPlan kill_rank(int rank) {
  simpi::FaultPlan plan;
  plan.rank = rank;
  plan.after_virtual_seconds = 0.0;
  return plan;
}

std::vector<std::string> stages_from(const std::vector<std::string>& all, std::size_t first) {
  return {all.begin() + static_cast<std::ptrdiff_t>(first), all.end()};
}

std::vector<std::string> stages_until(const std::vector<std::string>& all, std::size_t end) {
  return {all.begin(), all.begin() + static_cast<std::ptrdiff_t>(end)};
}

// --- recording -------------------------------------------------------------------

TEST(PipelineCheckpoint, FreshRunRecordsEveryStage) {
  const TempDir dir("ckpt_record");
  const auto& data = shared_dataset();
  const auto result = run_pipeline(data.reads.reads, small_options(dir.str()));

  EXPECT_EQ(result.stages_executed, kAllStages);
  EXPECT_TRUE(result.stages_resumed.empty());
  EXPECT_EQ(result.stage_retries, 0);

  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  ASSERT_EQ(manifest.records().size(), kAllStages.size());
  for (std::size_t i = 0; i < kAllStages.size(); ++i) {
    const auto& rec = manifest.records()[i];
    EXPECT_EQ(rec.stage, kAllStages[i]);
    EXPECT_TRUE(rec.complete);
    EXPECT_EQ(rec.fingerprint, result.options_fingerprint);
    EXPECT_EQ(rec.attempt, 1);
    for (const auto& artifact : rec.outputs) {
      EXPECT_EQ(checkpoint::capture_artifact(dir.str(), artifact.path), artifact)
          << rec.stage << " output " << artifact.path << " drifted from its record";
    }
  }

  // Checkpoint overhead is traced per stage.
  std::vector<std::string> phases;
  for (const auto& r : result.trace) phases.push_back(r.name);
  for (const auto& stage : kAllStages) {
    EXPECT_NE(std::find(phases.begin(), phases.end(), stage + ".checkpoint"), phases.end())
        << stage;
  }
}

TEST(PipelineCheckpoint, CheckpointOffWritesNoManifest) {
  const TempDir dir("ckpt_off");
  auto options = small_options(dir.str());
  options.checkpoint = false;
  const auto result = run_pipeline(shared_dataset().reads.reads, options);
  EXPECT_FALSE(std::filesystem::exists(dir.file(kManifestFileName)));
  EXPECT_EQ(result.stages_executed, kAllStages);
  for (const auto& r : result.trace) {
    EXPECT_EQ(r.name.find(".checkpoint"), std::string::npos) << r.name;
  }
}

// --- resume ----------------------------------------------------------------------

TEST(PipelineCheckpoint, ResumeSkipsEveryValidStage) {
  const TempDir dir("ckpt_resume_all");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  const auto first = run_pipeline(data.reads.reads, options);
  const std::string transcripts = slurp(dir.file("Trinity.fa"));

  options.resume = true;
  const auto second = run_pipeline(data.reads.reads, options);
  EXPECT_TRUE(second.stages_executed.empty());
  EXPECT_EQ(second.stages_resumed, kAllStages);

  // The resumed run reconstructs the full in-memory result from artifacts.
  ASSERT_EQ(second.transcripts.size(), first.transcripts.size());
  for (std::size_t i = 0; i < first.transcripts.size(); ++i) {
    EXPECT_EQ(second.transcripts[i].name, first.transcripts[i].name);
    EXPECT_EQ(second.transcripts[i].bases, first.transcripts[i].bases);
  }
  EXPECT_EQ(second.contigs.size(), first.contigs.size());
  EXPECT_EQ(second.assignments.size(), first.assignments.size());
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), transcripts);
}

TEST(PipelineCheckpoint, ResumeWithoutManifestRunsEverything) {
  const TempDir dir("ckpt_resume_cold");
  auto options = small_options(dir.str());
  options.resume = true;  // nothing to resume from: must behave like a fresh run
  const auto result = run_pipeline(shared_dataset().reads.reads, options);
  EXPECT_EQ(result.stages_executed, kAllStages);
  EXPECT_TRUE(result.stages_resumed.empty());
  EXPECT_FALSE(result.transcripts.empty());
}

TEST(PipelineCheckpoint, ModifiedArtifactRerunsFromThatStage) {
  const TempDir dir("ckpt_modified");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  run_pipeline(data.reads.reads, options);
  const std::string transcripts = slurp(dir.file("Trinity.fa"));

  // Same-size corruption of the Inchworm output: only the hash can see it.
  {
    std::fstream f(dir.file("inchworm.fa"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3);
    f.put('X');
  }

  options.resume = true;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_resumed, stages_until(kAllStages, 2));
  EXPECT_EQ(result.stages_executed, stages_from(kAllStages, 2));
  // Recomputation from intact upstream artifacts restores the output.
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), transcripts);
}

TEST(PipelineCheckpoint, MissingArtifactRerunsFromThatStage) {
  const TempDir dir("ckpt_missing");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  run_pipeline(data.reads.reads, options);
  std::filesystem::remove(dir.file("bowtie.sam"));

  options.resume = true;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_resumed, stages_until(kAllStages, 3));
  EXPECT_EQ(result.stages_executed, stages_from(kAllStages, 3));
  EXPECT_TRUE(std::filesystem::exists(dir.file("bowtie.sam")));
}

TEST(PipelineCheckpoint, StaleOptionsFingerprintForcesFullRerun) {
  const TempDir dir("ckpt_stale");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  run_pipeline(data.reads.reads, options);

  options.resume = true;
  options.min_kmer_count = 3;  // output-affecting: every record is stale
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_TRUE(result.stages_resumed.empty());
  EXPECT_EQ(result.stages_executed, kAllStages);
}

TEST(PipelineCheckpoint, SchedulingKnobsDoNotInvalidateCheckpoints) {
  const TempDir dir("ckpt_sched");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  run_pipeline(data.reads.reads, options);

  // Resuming a crashed 1-rank run on 2 ranks (or more model threads) is
  // legitimate: scheduling never changes results.
  options.resume = true;
  options.nranks = 2;
  options.model_threads_per_rank = 8;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_resumed, kAllStages);
  EXPECT_TRUE(result.stages_executed.empty());
}

TEST(PipelineCheckpoint, TruncatedManifestLineRerunsOnlyThatStage) {
  const TempDir dir("ckpt_truncated");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  run_pipeline(data.reads.reads, options);

  // Chop the tail of the manifest: the final line (butterfly) becomes a
  // torn write, exactly what a crash mid-commit leaves behind.
  const std::string path = dir.file(kManifestFileName);
  std::string contents = slurp(path);
  contents.resize(contents.size() - 10);
  std::ofstream(path, std::ios::binary) << contents;

  options.resume = true;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_resumed, stages_until(kAllStages, kAllStages.size() - 1));
  EXPECT_EQ(result.stages_executed,
            std::vector<std::string>{std::string("butterfly")});
}

TEST(PipelineCheckpoint, GarbageManifestNeverCrashes) {
  const TempDir dir("ckpt_garbage");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  std::ofstream(dir.file(kManifestFileName))
      << "this is not json\n{\"stage\":\n\x01\x02\x03\n";
  options.resume = true;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_executed, kAllStages);
  EXPECT_FALSE(result.transcripts.empty());
}

// --- fault injection + retry -----------------------------------------------------

TEST(PipelineCheckpoint, InjectedFaultIsRetriedInProcess) {
  const TempDir dir("ckpt_retry");
  const TempDir baseline_dir("ckpt_retry_baseline");
  const auto& data = shared_dataset();

  auto baseline_options = small_options(baseline_dir.str(), /*nranks=*/3);
  const auto baseline = run_pipeline(data.reads.reads, baseline_options);

  auto options = small_options(dir.str(), /*nranks=*/3);
  options.fault = kill_rank(1);
  options.fault_stage = "chrysalis.graph_from_fasta";
  const auto result = run_pipeline(data.reads.reads, options);

  EXPECT_EQ(result.stage_retries, 1);
  EXPECT_EQ(result.stages_executed, kAllStages);
  // The retried attempt appears in the trace; the manifest records the
  // attempt number that finally succeeded.
  std::vector<std::string> phases;
  for (const auto& r : result.trace) phases.push_back(r.name);
  EXPECT_NE(std::find(phases.begin(), phases.end(),
                      "chrysalis.graph_from_fasta.retry2"),
            phases.end());
  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  ASSERT_NE(manifest.find("chrysalis.graph_from_fasta"), nullptr);
  EXPECT_EQ(manifest.find("chrysalis.graph_from_fasta")->attempt, 2);

  // A transient fault must not change the assembly.
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(baseline_dir.file("Trinity.fa")));
}

TEST(PipelineCheckpoint, RetryExhaustionRethrowsTheFault) {
  const TempDir dir("ckpt_exhausted");
  auto options = small_options(dir.str(), /*nranks=*/3);
  options.fault = kill_rank(1);
  options.fault.max_fires = 100;  // persistent fault
  options.fault_stage = "chrysalis.graph_from_fasta";
  options.retry.max_attempts = 2;
  EXPECT_THROW(run_pipeline(shared_dataset().reads.reads, options),
               simpi::RankFaultError);
}

// The acceptance scenario: a run killed mid-Chrysalis, then re-launched
// with --resume, completes while skipping the stages that had finished,
// and its transcripts are byte-identical to an uninterrupted run.
TEST(PipelineCheckpoint, KilledRunResumesAndMatchesUninterruptedRun) {
  const TempDir dir("ckpt_relaunch");
  const TempDir baseline_dir("ckpt_relaunch_baseline");
  const auto& data = shared_dataset();

  auto baseline_options = small_options(baseline_dir.str(), /*nranks=*/3);
  const auto baseline = run_pipeline(data.reads.reads, baseline_options);

  auto options = small_options(dir.str(), /*nranks=*/3);
  options.fault = kill_rank(1);
  options.fault_stage = "chrysalis.graph_from_fasta";
  options.retry.max_attempts = 1;  // no in-process recovery: the run dies
  EXPECT_THROW(run_pipeline(data.reads.reads, options), simpi::RankFaultError);

  // Everything up to the fault is checkpointed...
  const auto manifest = checkpoint::RunManifest::load(dir.file(kManifestFileName));
  EXPECT_EQ(manifest.records().size(), 4u);
  EXPECT_EQ(manifest.records().back().stage, "chrysalis.bowtie");

  // ...so the relaunch resumes past it and finishes the rest.
  auto relaunch = small_options(dir.str(), /*nranks=*/3);
  relaunch.resume = true;
  const auto result = run_pipeline(data.reads.reads, relaunch);
  EXPECT_EQ(result.stages_resumed, stages_until(kAllStages, 4));
  EXPECT_EQ(result.stages_executed, stages_from(kAllStages, 4));

  ASSERT_EQ(result.transcripts.size(), baseline.transcripts.size());
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(baseline_dir.file("Trinity.fa")));
}

// --- GraphFromFasta sharding strategies ------------------------------------------

TEST(PipelineSharding, EveryStrategyProducesIdenticalTranscripts) {
  const auto& data = shared_dataset();
  const TempDir pooled_dir("shard_pooled");
  auto pooled_options = small_options(pooled_dir.str(), /*nranks=*/3);
  pooled_options.gff_sharding = chrysalis::ShardingStrategy::kPooled;
  run_pipeline(data.reads.reads, pooled_options);
  const std::string want = slurp(pooled_dir.file("Trinity.fa"));

  for (const auto sharding : {chrysalis::ShardingStrategy::kPooledOverlap,
                              chrysalis::ShardingStrategy::kOwner}) {
    const TempDir dir(std::string("shard_") + chrysalis::to_string(sharding));
    auto options = small_options(dir.str(), /*nranks=*/3);
    options.gff_sharding = sharding;
    run_pipeline(data.reads.reads, options);
    EXPECT_EQ(slurp(dir.file("Trinity.fa")), want)
        << "sharding=" << chrysalis::to_string(sharding);
  }
}

TEST(PipelineSharding, ShardingIsSchedulingOnlyForCheckpoints) {
  // A run checkpointed under pooled sharding must resume cleanly under
  // owner sharding: the strategy cannot touch the options fingerprint.
  const TempDir dir("shard_resume");
  const auto& data = shared_dataset();
  auto options = small_options(dir.str());
  options.gff_sharding = chrysalis::ShardingStrategy::kPooled;
  run_pipeline(data.reads.reads, options);

  options.resume = true;
  options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  const auto result = run_pipeline(data.reads.reads, options);
  EXPECT_EQ(result.stages_resumed, kAllStages);
  EXPECT_TRUE(result.stages_executed.empty());
}

TEST(PipelineSharding, OwnerModeFaultIsRetriedToIdenticalTranscripts) {
  const TempDir dir("shard_owner_retry");
  const TempDir baseline_dir("shard_owner_retry_baseline");
  const auto& data = shared_dataset();

  auto baseline_options = small_options(baseline_dir.str(), /*nranks=*/3);
  baseline_options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  run_pipeline(data.reads.reads, baseline_options);

  auto options = small_options(dir.str(), /*nranks=*/3);
  options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  options.fault = kill_rank(1);
  options.fault_stage = "chrysalis.graph_from_fasta";
  const auto result = run_pipeline(data.reads.reads, options);

  EXPECT_EQ(result.stage_retries, 1);
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(baseline_dir.file("Trinity.fa")));
}

TEST(PipelineSharding, OwnerModeKilledRunResumesByteIdentical) {
  // The acceptance scenario of the owner-computes path: a rank killed
  // mid-GraphFromFasta with no in-process retry budget, relaunched with
  // --resume, must finish byte-identical to an uninterrupted owner run.
  const TempDir dir("shard_owner_relaunch");
  const TempDir baseline_dir("shard_owner_relaunch_baseline");
  const auto& data = shared_dataset();

  auto baseline_options = small_options(baseline_dir.str(), /*nranks=*/3);
  baseline_options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  run_pipeline(data.reads.reads, baseline_options);

  auto options = small_options(dir.str(), /*nranks=*/3);
  options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  options.fault = kill_rank(1);
  options.fault_stage = "chrysalis.graph_from_fasta";
  options.retry.max_attempts = 1;
  EXPECT_THROW(run_pipeline(data.reads.reads, options), simpi::RankFaultError);

  auto relaunch = small_options(dir.str(), /*nranks=*/3);
  relaunch.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  relaunch.resume = true;
  const auto result = run_pipeline(data.reads.reads, relaunch);
  EXPECT_EQ(result.stages_resumed, stages_until(kAllStages, 4));
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(baseline_dir.file("Trinity.fa")));
}

TEST(PipelineSharding, FaultInsideAlltoallvIsRetried) {
  // Target the owner path's own collective: the victim dies at its first
  // alltoallv entry (the weld routing), and the retry driver recovers.
  const TempDir dir("shard_a2a_fault");
  const TempDir baseline_dir("shard_a2a_fault_baseline");
  const auto& data = shared_dataset();

  auto baseline_options = small_options(baseline_dir.str(), /*nranks=*/3);
  baseline_options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  run_pipeline(data.reads.reads, baseline_options);

  auto options = small_options(dir.str(), /*nranks=*/3);
  options.gff_sharding = chrysalis::ShardingStrategy::kOwner;
  options.fault.rank = 1;
  options.fault.op = simpi::FaultOp::kAlltoallv;
  options.fault.at_entry = 1;
  options.fault_stage = "chrysalis.graph_from_fasta";
  const auto result = run_pipeline(data.reads.reads, options);

  EXPECT_EQ(result.stage_retries, 1);
  EXPECT_EQ(slurp(dir.file("Trinity.fa")), slurp(baseline_dir.file("Trinity.fa")));
}

}  // namespace
}  // namespace trinity::pipeline
