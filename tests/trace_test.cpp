// Tests for trinity::trace — the span recorder (disabled fast path,
// per-thread buffers, capacity drops, rank attribution), well-formedness of
// the recorded timelines (per-thread nesting, per-track monotonicity), the
// Chrome trace-event export/loader/validator (including a golden-file shape
// check), the critical-path analyzer, and the contract that simpi wait
// sub-spans carry the exact wall time added to CommStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simpi/context.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/span_recorder.hpp"
#include "util/json.hpp"

namespace trinity::trace {
namespace {

TraceEvent make_span(const char* name, const char* cat, int rank, int tid,
                     double start_s, double dur_s) {
  TraceEvent ev;
  ev.kind = EventKind::kSpan;
  ev.name = name;
  ev.category = cat;
  ev.rank = rank;
  ev.tid = tid;
  ev.start_s = start_s;
  ev.dur_s = dur_s;
  return ev;
}

// --- recorder ----------------------------------------------------------------

TEST(SpanRecorderTest, DisabledByDefault) {
  EXPECT_FALSE(enabled());
  EXPECT_EQ(SpanRecorder::active(), nullptr);
  // Every hook must be a safe no-op without a recorder.
  {
    SpanScope span("noop", kCatSimpi);
    EXPECT_FALSE(static_cast<bool>(span));
    span.arg("bytes", 1.0);
  }
  completed_span("noop.wait", kCatSimpi, 0.001);
  instant("noop.instant", kCatIo, "detail");
  counter("noop.counter", kCatPipeline, 42.0);
}

TEST(SpanRecorderTest, RecordsSpansInstantsAndCounters) {
  SpanRecorder recorder;
  {
    ScopedRecording recording(&recorder);
    EXPECT_TRUE(enabled());
    {
      SpanScope span("op", kCatSimpi);
      ASSERT_TRUE(static_cast<bool>(span));
      span.arg("bytes", 128.0);
      span.set_detail("hello");
    }
    instant("fault", kCatIo, "eio", {{"entry", 2.0}});
    counter("rss_bytes", kCatPipeline, 1024.0);
  }
  EXPECT_FALSE(enabled());
  const auto events = recorder.drain();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, const TraceEvent*> by_name;
  for (const auto& ev : events) by_name[ev.name] = &ev;
  ASSERT_TRUE(by_name.count("op"));
  EXPECT_EQ(by_name["op"]->kind, EventKind::kSpan);
  EXPECT_GE(by_name["op"]->dur_s, 0.0);
  ASSERT_EQ(by_name["op"]->args.size(), 1u);
  EXPECT_EQ(by_name["op"]->args[0].name, "bytes");
  EXPECT_DOUBLE_EQ(by_name["op"]->args[0].value, 128.0);
  EXPECT_EQ(by_name["op"]->detail, "hello");
  ASSERT_TRUE(by_name.count("fault"));
  EXPECT_EQ(by_name["fault"]->kind, EventKind::kInstant);
  EXPECT_EQ(by_name["fault"]->detail, "eio");
  ASSERT_TRUE(by_name.count("rss_bytes"));
  EXPECT_EQ(by_name["rss_bytes"]->kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(by_name["rss_bytes"]->value, 1024.0);
  // drain() moved everything out.
  EXPECT_TRUE(recorder.drain().empty());
}

TEST(SpanRecorderTest, SpanOpenAcrossUninstallIsDiscarded) {
  SpanRecorder recorder;
  ScopedRecording* recording = new ScopedRecording(&recorder);
  auto* span = new SpanScope("outlives", kCatSimpi);
  delete recording;  // recorder uninstalled while the span is open
  delete span;       // must not write into the (now inactive) recorder
  EXPECT_TRUE(recorder.drain().empty());
}

TEST(SpanRecorderTest, CapacityBoundsBufferAndCountsDrops) {
  SpanRecorder recorder(/*per_thread_capacity=*/4);
  {
    ScopedRecording recording(&recorder);
    for (int i = 0; i < 10; ++i) instant("tick", kCatPipeline);
  }
  EXPECT_EQ(recorder.drain().size(), 4u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
}

TEST(SpanRecorderTest, ScopedRankAttributesEvents) {
  EXPECT_EQ(current_rank(), -1);
  SpanRecorder recorder;
  {
    ScopedRecording recording(&recorder);
    {
      ScopedRank rank(3);
      EXPECT_EQ(current_rank(), 3);
      SpanScope span("ranked", kCatSimpi);
    }
    EXPECT_EQ(current_rank(), -1);
    SpanScope span("unranked", kCatPipeline);
  }
  const auto events = recorder.drain();
  ASSERT_EQ(events.size(), 2u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.rank, ev.name == "ranked" ? 3 : -1);
  }
}

TEST(SpanRecorderTest, ThreadsRecordIntoSeparateBuffersAndMergeOnDrain) {
  SpanRecorder recorder;
  {
    ScopedRecording recording(&recorder);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([t] {
        ScopedRank rank(t);
        for (int i = 0; i < 8; ++i) {
          SpanScope span("work", kCatLoop, t, /*tid=*/0);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto events = recorder.drain();
  EXPECT_EQ(events.size(), 32u);
  std::map<int, int> per_rank;
  for (const auto& ev : events) ++per_rank[ev.rank];
  for (int t = 0; t < 4; ++t) EXPECT_EQ(per_rank[t], 8);
}

// --- timeline well-formedness -------------------------------------------------

// Spans recorded by one thread must nest: sorted by start, every span lies
// entirely within the enclosing open span (RAII makes this structural; the
// test guards the timestamp arithmetic).
TEST(TimelineTest, SpansNestProperlyPerThread) {
  SpanRecorder recorder;
  {
    ScopedRecording recording(&recorder);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([t] {
        ScopedRank rank(t);
        for (int i = 0; i < 4; ++i) {
          SpanScope outer("outer", kCatSimpi);
          std::this_thread::sleep_for(std::chrono::microseconds(50));
          {
            SpanScope inner("inner", kCatSimpi);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto events = recorder.drain();
  ASSERT_EQ(events.size(), 24u);

  std::map<std::pair<int, int>, std::vector<const TraceEvent*>> tracks;
  for (const auto& ev : events) tracks[{ev.rank, ev.tid}].push_back(&ev);
  EXPECT_EQ(tracks.size(), 3u);
  constexpr double kSlack = 1e-9;
  for (auto& [track, spans] : tracks) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent* a, const TraceEvent* b) {
                if (a->start_s != b->start_s) return a->start_s < b->start_s;
                return a->dur_s > b->dur_s;  // parent before child on ties
              });
    std::vector<const TraceEvent*> open;
    for (const TraceEvent* span : spans) {
      while (!open.empty() &&
             open.back()->start_s + open.back()->dur_s <= span->start_s + kSlack) {
        open.pop_back();
      }
      if (!open.empty()) {
        // Overlapping spans on one thread must nest, not straddle.
        EXPECT_GE(span->start_s, open.back()->start_s - kSlack);
        EXPECT_LE(span->start_s + span->dur_s,
                  open.back()->start_s + open.back()->dur_s + kSlack);
      }
      open.push_back(span);
    }
  }
}

TEST(TimelineTest, ExportedEventsAreMonotonicPerTrack) {
  SpanRecorder recorder;
  {
    ScopedRecording recording(&recorder);
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([t] {
        ScopedRank rank(t);
        for (int i = 0; i < 16; ++i) {
          SpanScope span("op", kCatSimpi);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const util::Json doc = chrome_trace_json(recorder.drain());

  // The document is sorted by ts, so each (pid, tid) track — and in fact
  // the whole file — must be non-decreasing in ts.
  double last_ts = -1.0;
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_per_track;
  for (const util::Json& e : doc.at("traceEvents").items()) {
    if (e.at("ph").as_string() == "M") continue;
    const double ts = e.at("ts").as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    const std::pair<std::int64_t, std::int64_t> track{e.at("pid").as_int(),
                                                      e.at("tid").as_int()};
    auto it = last_per_track.find(track);
    if (it != last_per_track.end()) EXPECT_GE(ts, it->second);
    last_per_track[track] = ts;
  }
}

// --- simpi wait sub-spans ----------------------------------------------------

// The "<op>.wait" spans are recorded from the very double that simpi adds to
// CommStats::wait_seconds, so per rank the two bookkeeping paths must agree
// to floating-point-summation tolerance.
TEST(SimpiWaitSpanTest, WaitSpanTotalsMatchCommStats) {
  SpanRecorder recorder;
  std::vector<simpi::RankResult> results;
  {
    ScopedRecording recording(&recorder);
    results = simpi::run(2, [](simpi::Context& ctx) {
      // Rank 1 arrives late: rank 0 blocks in the barrier.
      if (ctx.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      ctx.barrier();
      // Root delays the payload: rank 1 blocks in the bcast receive.
      std::vector<int> data;
      if (ctx.rank() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        data.assign(256, 7);
      }
      ctx.bcast(data, 0);
      ctx.send_value(ctx.rank() == 0 ? 1 : 0, /*tag=*/5, ctx.rank());
      (void)ctx.recv_value<int>(ctx.rank() == 0 ? 1 : 0, /*tag=*/5);
      ctx.barrier();
    });
  }
  const auto events = recorder.drain();

  std::map<int, double> wait_from_spans;
  for (const auto& ev : events) {
    if (ev.kind != EventKind::kSpan || ev.category != kCatSimpi) continue;
    const std::string& n = ev.name;
    if (n.size() > 5 && n.compare(n.size() - 5, 5, ".wait") == 0) {
      wait_from_spans[ev.rank] += ev.dur_s;
    }
  }
  ASSERT_EQ(results.size(), 2u);
  // Rank 0 measurably blocked on the barrier, so the comparison is not 0 == 0.
  EXPECT_GT(results[0].comm.total_wait_seconds(), 0.01);
  for (const auto& r : results) {
    EXPECT_NEAR(wait_from_spans[r.rank], r.comm.total_wait_seconds(), 1e-9)
        << "rank " << r.rank;
  }
}

// --- Chrome trace export ------------------------------------------------------

// Golden shape test: a deterministic event set must serialize to exactly
// this document (timestamps chosen so the shortest-round-trip float
// formatter prints integers). Any change here is a trace-format change and
// must follow the compatibility rule in docs/OBSERVABILITY.md.
TEST(ChromeTraceTest, GoldenDocument) {
  // Timestamps are binary-exact fractions so ts = start_s * 1e6 is an exact
  // integer and the shortest-round-trip formatter prints it as one.
  std::vector<TraceEvent> events;
  {
    TraceEvent span = make_span("bcast", "simpi", /*rank=*/0, /*tid=*/0,
                                /*start_s=*/0.25, /*dur_s=*/0.125);
    span.args.push_back({"bytes", 64.0});
    events.push_back(std::move(span));
  }
  {
    TraceEvent fault;
    fault.kind = EventKind::kInstant;
    fault.name = "io.fault";
    fault.category = "io";
    fault.rank = 1;
    fault.start_s = 0.5;
    fault.detail = "eio at write /x";
    events.push_back(std::move(fault));
  }
  {
    TraceEvent rss;
    rss.kind = EventKind::kCounter;
    rss.name = "rss_bytes";
    rss.category = "pipeline";
    rss.rank = -1;
    rss.start_s = 0.75;
    rss.value = 1048576.0;
    events.push_back(std::move(rss));
  }

  const std::string expected =
      R"({"traceEvents":[)"
      R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"pipeline"}},)"
      R"({"name":"process_sort_index","ph":"M","pid":0,"tid":0,"args":{"sort_index":0}},)"
      R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 0"}},)"
      R"({"name":"process_sort_index","ph":"M","pid":1,"tid":0,"args":{"sort_index":1}},)"
      R"({"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"rank 1"}},)"
      R"({"name":"process_sort_index","ph":"M","pid":2,"tid":0,"args":{"sort_index":2}},)"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"main"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"main"}},)"
      R"({"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"main"}},)"
      R"({"name":"bcast","cat":"simpi","ph":"X","pid":1,"tid":0,"ts":250000,"dur":125000,"args":{"bytes":64}},)"
      R"({"name":"io.fault","cat":"io","ph":"i","s":"t","pid":2,"tid":0,"ts":500000,"args":{"detail":"eio at write /x"}},)"
      R"({"name":"rss_bytes","cat":"pipeline","ph":"C","pid":0,"tid":0,"ts":750000,"args":{"value":1048576}})"
      R"(],"displayTimeUnit":"ms","otherData":{"generator":"trinity_trace",)"
      R"("clock_domain":"process steady clock, seconds since recorder construction",)"
      R"("dropped_events":0}})";
  EXPECT_EQ(chrome_trace_json(events).dump(), expected);

  const TraceShapeReport shape = validate_chrome_trace(chrome_trace_json(events));
  EXPECT_TRUE(shape.ok()) << (shape.errors.empty() ? "" : shape.errors[0]);
  EXPECT_EQ(shape.num_events, 12u);
}

TEST(ChromeTraceTest, ExportLoadRoundTrip) {
  std::vector<TraceEvent> events;
  {
    TraceEvent span = make_span("gatherv", "simpi", 2, 1, 0.25, 0.125);
    span.args.push_back({"bytes", 4096.0});
    span.args.push_back({"root", 0.0});
    span.detail = "pooling";
    events.push_back(std::move(span));
  }
  {
    TraceEvent c;
    c.kind = EventKind::kCounter;
    c.name = "rss_bytes";
    c.category = "pipeline";
    c.rank = -1;
    c.start_s = 0.5;
    c.value = 123456.0;
    events.push_back(std::move(c));
  }
  const auto loaded = events_from_chrome_trace(chrome_trace_json(events));
  ASSERT_EQ(loaded.size(), events.size());
  const TraceEvent& span = loaded[0];
  EXPECT_EQ(span.kind, EventKind::kSpan);
  EXPECT_EQ(span.name, "gatherv");
  EXPECT_EQ(span.category, "simpi");
  EXPECT_EQ(span.rank, 2);
  EXPECT_EQ(span.tid, 1);
  EXPECT_DOUBLE_EQ(span.start_s, 0.25);
  EXPECT_DOUBLE_EQ(span.dur_s, 0.125);
  ASSERT_EQ(span.args.size(), 2u);
  EXPECT_EQ(span.args[0].name, "bytes");
  EXPECT_DOUBLE_EQ(span.args[0].value, 4096.0);
  EXPECT_EQ(span.detail, "pooling");
  const TraceEvent& c = loaded[1];
  EXPECT_EQ(c.kind, EventKind::kCounter);
  EXPECT_EQ(c.rank, -1);
  EXPECT_DOUBLE_EQ(c.value, 123456.0);
  EXPECT_TRUE(c.args.empty());  // "value" folds back into the value field
}

TEST(ChromeTraceTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(validate_chrome_trace(util::Json::parse("[1,2]")).ok());
  EXPECT_FALSE(validate_chrome_trace(util::Json::parse(R"({"foo":1})")).ok());

  auto doc_with_event = [](const std::string& event_json) {
    return util::Json::parse(R"({"traceEvents":[)" + event_json + "]}");
  };
  // Unknown phase.
  EXPECT_FALSE(validate_chrome_trace(doc_with_event(
                   R"({"name":"x","ph":"Q","pid":0,"tid":0,"ts":0})"))
                   .ok());
  // Complete event without a duration.
  EXPECT_FALSE(validate_chrome_trace(doc_with_event(
                   R"({"name":"x","ph":"X","pid":0,"tid":0,"ts":0})"))
                   .ok());
  // Negative timestamp.
  EXPECT_FALSE(validate_chrome_trace(doc_with_event(
                   R"({"name":"x","ph":"i","pid":0,"tid":0,"ts":-1})"))
                   .ok());
  // Counter without a numeric args member.
  EXPECT_FALSE(validate_chrome_trace(doc_with_event(
                   R"({"name":"x","ph":"C","pid":0,"tid":0,"ts":0})"))
                   .ok());
  // The loader refuses what the validator refuses.
  EXPECT_THROW(events_from_chrome_trace(util::Json::parse(R"({"foo":1})")),
               std::runtime_error);
}

// --- analyzer ----------------------------------------------------------------

TEST(AnalyzeTest, CriticalPathBlockedTimeAndTopSpans) {
  // One pipeline stage [0, 10]; rank 0 computes 8 s then waits 2 s at the
  // closing collective, rank 1 computes 4 s and waits 6 s. Rank 0 is the
  // critical rank; skew = 8 / 4 = 2.
  std::vector<TraceEvent> events;
  events.push_back(make_span("chrysalis.graph_from_fasta", kCatPipeline, -1, 0,
                             0.0, 10.0));
  events.push_back(make_span("compute", kCatLoop, 0, 0, 0.0, 8.0));
  events.push_back(make_span("barrier", kCatSimpi, 0, 0, 8.0, 2.0));
  events.push_back(make_span("barrier.wait", kCatSimpi, 0, 0, 8.0, 2.0));
  events.push_back(make_span("compute", kCatLoop, 1, 0, 0.0, 4.0));
  events.push_back(make_span("barrier", kCatSimpi, 1, 0, 4.0, 6.0));
  events.push_back(make_span("barrier.wait", kCatSimpi, 1, 0, 4.0, 6.0));

  const TraceAnalysis analysis = analyze_trace(events, /*top_n=*/3);
  ASSERT_EQ(analysis.stages.size(), 1u);
  const StageCriticalPath& stage = analysis.stages[0];
  EXPECT_EQ(stage.stage, "chrysalis.graph_from_fasta");
  EXPECT_DOUBLE_EQ(stage.wall_s, 10.0);
  EXPECT_EQ(stage.critical_rank, 0);
  EXPECT_NEAR(stage.critical_busy_s, 8.0, 1e-9);
  EXPECT_NEAR(stage.skew_ratio, 2.0, 1e-9);
  ASSERT_EQ(stage.ranks.size(), 2u);
  EXPECT_NEAR(stage.ranks[0].blocked_s, 2.0, 1e-9);
  EXPECT_NEAR(stage.ranks[1].blocked_s, 6.0, 1e-9);
  EXPECT_NEAR(stage.ranks[1].busy_s, 4.0, 1e-9);

  ASSERT_EQ(analysis.rank_totals.size(), 2u);
  EXPECT_NEAR(analysis.rank_totals[1].blocked_s, 6.0, 1e-9);

  // Top spans exclude the stage span itself; the longest is compute@rank 0.
  ASSERT_EQ(analysis.top_spans.size(), 3u);
  EXPECT_EQ(analysis.top_spans[0].name, "compute");
  EXPECT_EQ(analysis.top_spans[0].rank, 0);
  EXPECT_DOUBLE_EQ(analysis.top_spans[0].dur_s, 8.0);

  const std::string text = format_analysis(analysis);
  EXPECT_NE(text.find("critical"), std::string::npos);
  EXPECT_NE(text.find("top spans"), std::string::npos);
  EXPECT_NE(text.find("chrysalis.graph_from_fasta"), std::string::npos);
}

TEST(AnalyzeTest, OverlappingSpansDoNotDoubleCountCoverage) {
  // Nested op + its wait sub-span: coverage is the union (5 s), blocked is
  // the wait (3 s), busy = 2 s — not 5 + 3.
  std::vector<TraceEvent> events;
  events.push_back(make_span("stage", kCatPipeline, -1, 0, 0.0, 5.0));
  events.push_back(make_span("bcast", kCatSimpi, 0, 0, 0.0, 5.0));
  events.push_back(make_span("bcast.wait", kCatSimpi, 0, 0, 2.0, 3.0));
  const TraceAnalysis analysis = analyze_trace(events);
  ASSERT_EQ(analysis.stages.size(), 1u);
  ASSERT_EQ(analysis.stages[0].ranks.size(), 1u);
  EXPECT_NEAR(analysis.stages[0].ranks[0].busy_s, 2.0, 1e-9);
  EXPECT_NEAR(analysis.stages[0].ranks[0].blocked_s, 3.0, 1e-9);
}

}  // namespace
}  // namespace trinity::trace
