// Cross-tenant fault isolation for the serve layer: one tenant's injected
// rank crash is retried inside its own job, one tenant's permanent ENOSPC
// fails only its own job, and in both cases the other tenant's outputs
// are byte-identical to a fault-free run.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "io/error.hpp"
#include "seq/fasta.hpp"
#include "serve/server.hpp"
#include "sim/transcriptome.hpp"
#include "test_helpers.hpp"

namespace trinity::serve {
namespace {

using trinity::testing::TempDir;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const std::string& shared_reads_path() {
  static const std::string path = [] {
    auto p = sim::preset("tiny");
    p.reads.coverage = 25.0;
    p.reads.expression_sigma = 0.7;
    const auto data = sim::simulate_dataset(p);
    static TempDir dir("serve_fault_reads");
    const std::string reads = dir.file("reads.fa");
    seq::write_fasta(reads, data.reads.reads);
    return reads;
  }();
  return path;
}

JobSpec make_spec(const std::string& tenant, const std::string& job_id) {
  JobSpec spec;
  spec.tenant = tenant;
  spec.job_id = job_id;
  spec.reads_path = shared_reads_path();
  spec.options.k = 15;
  spec.options.nranks = 2;
  spec.options.omp_threads = 1;
  spec.options.model_threads_per_rank = 4;
  spec.options.trace_sample_interval_ms = 0;
  return spec;
}

JobStatus status_of(const JobServer& server, const std::string& job_id) {
  for (const auto& job : server.jobs()) {
    if (job.job_id == job_id) return job;
  }
  ADD_FAILURE() << "no job " << job_id;
  return {};
}

/// Kills `rank` at its first simpi call of the targeted stage.
simpi::FaultPlan kill_rank(int rank) {
  simpi::FaultPlan plan;
  plan.rank = rank;
  plan.after_virtual_seconds = 0.0;
  return plan;
}

/// Tenant B's transcripts from a fault-free control server.
std::string fault_free_baseline() {
  static const std::string baseline = [] {
    static TempDir root("serve_ctl");
    ServerOptions options;
    options.total_ranks = 4;
    options.root_dir = root.str();
    JobServer server(options);
    EXPECT_TRUE(server.submit(make_spec("tenant-b", "clean")).accepted());
    server.drain();
    return slurp(root.str() + "/tenant-b/clean/Trinity.fa");
  }();
  return baseline;
}

TEST(ServeFault, RankCrashIsRetriedInIsolation) {
  const std::string baseline = fault_free_baseline();
  ASSERT_FALSE(baseline.empty());

  const TempDir root("serve_simpi_fault");
  ServerOptions options;
  options.total_ranks = 4;  // both jobs run concurrently
  options.root_dir = root.str();
  JobServer server(options);

  JobSpec faulty = make_spec("tenant-a", "crashy");
  faulty.options.fault = kill_rank(1);
  faulty.options.fault_stage = "chrysalis.graph_from_fasta";
  faulty.options.retry.max_attempts = 3;
  ASSERT_TRUE(server.submit(std::move(faulty)).accepted());
  ASSERT_TRUE(server.submit(make_spec("tenant-b", "clean")).accepted());
  server.drain();

  // The crash was retried inside tenant A's job; both jobs completed.
  EXPECT_EQ(status_of(server, "crashy").state, JobState::kCompleted);
  EXPECT_EQ(status_of(server, "clean").state, JobState::kCompleted);

  // Tenant B's transcripts are byte-identical to the fault-free control.
  EXPECT_EQ(slurp(root.str() + "/tenant-b/clean/Trinity.fa"), baseline);

  // The recovery is attributed to tenant A alone.
  Accounting accounting = server.accounting();
  EXPECT_GE(accounting.account("tenant-a").stage_retries, 1);
  EXPECT_EQ(accounting.account("tenant-b").stage_retries, 0);
}

TEST(ServeFault, PermanentEnospcFailsOnlyItsTenant) {
  const std::string baseline = fault_free_baseline();
  ASSERT_FALSE(baseline.empty());

  const TempDir root("serve_io_fault");
  ServerOptions options;
  options.total_ranks = 4;
  options.root_dir = root.str();
  JobServer server(options);

  // The glob is confined to tenant A's own work dir; ENOSPC is permanent,
  // so the job fails typed instead of being retried. At most one io-faulted
  // job may be in flight (io::ScopedFaultInjection is process-global —
  // see docs/SERVING.md), which this scenario respects.
  JobSpec faulty = make_spec("tenant-a", "diskfull");
  faulty.options.io_fault =
      io::IoFaultPlan::parse("write:*/tenant-a/diskfull/kmers.bin:1:enospc");
  ASSERT_TRUE(server.submit(std::move(faulty)).accepted());
  ASSERT_TRUE(server.submit(make_spec("tenant-b", "clean")).accepted());
  server.drain();

  const JobStatus failed = status_of(server, "diskfull");
  EXPECT_EQ(failed.state, JobState::kFailed);
  // The typed io error surfaces verbatim: operation, path, permanence.
  EXPECT_NE(failed.error.find("injected fault"), std::string::npos) << failed.error;
  EXPECT_NE(failed.error.find("permanent"), std::string::npos) << failed.error;
  EXPECT_NE(failed.error.find("tenant-a/diskfull"), std::string::npos) << failed.error;

  EXPECT_EQ(status_of(server, "clean").state, JobState::kCompleted);
  EXPECT_EQ(slurp(root.str() + "/tenant-b/clean/Trinity.fa"), baseline);

  // The failure lands on tenant A's ledger row; tenant B's is clean.
  Accounting accounting = server.accounting();
  EXPECT_EQ(accounting.account("tenant-a").jobs_failed, 1);
  EXPECT_EQ(accounting.account("tenant-b").jobs_failed, 0);
  EXPECT_EQ(accounting.account("tenant-b").jobs_completed, 1);
}

}  // namespace
}  // namespace trinity::serve
