#pragma once
// Disk-partitioned k-mer counting: the DSK substitute.
//
// The paper (Section II.A): "Jellyfish's output can be extremely voluminous
// ... Another application for k-mer counting that uses less memory than
// Jellyfish is DSK; however this is not part of the Trinity pipeline yet."
// Section VI lists memory-footprint reduction as active work. This module
// implements DSK's core idea: stream the reads once, scattering packed
// k-mer codes into P partition files by hash, then count one partition at
// a time — peak memory is bounded by the largest partition instead of the
// whole k-mer spectrum.

#include <cstdint>
#include <string>
#include <vector>

#include "kmer/counter.hpp"
#include "seq/sequence.hpp"

namespace trinity::kmer {

/// Disk-partitioned counting options.
struct DiskCounterOptions {
  int k = 25;
  bool canonical = true;
  int num_partitions = 16;     ///< partition files; bounds peak memory ~1/P
  std::string tmp_dir;         ///< partition file location (required)
  std::size_t chunk_records = 10000;  ///< reads streamed per chunk
};

/// Statistics of one disk-partitioned run.
struct DiskCounterStats {
  std::uint64_t total_kmers = 0;        ///< occurrences scattered to disk
  std::uint64_t distinct_kmers = 0;     ///< after counting
  std::uint64_t bytes_spilled = 0;      ///< partition file bytes written
  std::uint64_t peak_partition_kmers = 0;  ///< the memory bound: max codes
                                           ///< resident at once in pass 2
};

/// Counts k-mers of a FASTA/FASTQ file with bounded memory. Results match
/// KmerCounter exactly (same k / canonical settings) but arrive sorted by
/// k-mer code. Partition files are removed before returning.
/// Throws std::runtime_error on I/O failure, std::invalid_argument on bad
/// options (k out of range, partitions < 1, empty tmp_dir).
std::vector<KmerCount> disk_count_file(const std::string& fasta_path,
                                       const DiskCounterOptions& options,
                                       DiskCounterStats* stats = nullptr);

/// In-memory-source convenience: identical algorithm, reads from a vector.
std::vector<KmerCount> disk_count_reads(const std::vector<seq::Sequence>& reads,
                                        const DiskCounterOptions& options,
                                        DiskCounterStats* stats = nullptr);

}  // namespace trinity::kmer
