#include "kmer/disk_counter.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "io/io_file.hpp"
#include "seq/fasta.hpp"
#include "seq/kmer.hpp"

namespace trinity::kmer {

namespace {

/// Buffered writer of packed k-mer codes for one partition. Spills go
/// through io::IoFile so injected faults (EIO mid-spill, ENOSPC) surface
/// as typed io::IoError instead of a silently-short partition file.
class PartitionWriter {
 public:
  explicit PartitionWriter(const std::string& path)
      : path_(path), out_(io::IoFile::create(path)) {
    buffer_.reserve(kFlushAt);
  }

  void push(seq::KmerCode code) {
    buffer_.push_back(code);
    if (buffer_.size() >= kFlushAt) flush();
  }

  /// Flushes and returns total bytes written.
  std::uint64_t finish() {
    flush();
    out_.close();
    return out_.bytes_written();
  }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static constexpr std::size_t kFlushAt = 4096;

  void flush() {
    if (buffer_.empty()) return;
    out_.write_all(std::string_view(reinterpret_cast<const char*>(buffer_.data()),
                                    buffer_.size() * sizeof(seq::KmerCode)));
    buffer_.clear();
  }

  std::string path_;
  io::IoFile out_;
  std::vector<seq::KmerCode> buffer_;
};

// Partition selector: mix the code so partitions stay balanced even for
// skewed spectra (the identity hash would put all low codes together).
std::size_t partition_of(seq::KmerCode code, int partitions) {
  std::uint64_t z = code;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % static_cast<std::uint64_t>(partitions));
}

template <typename NextChunk>
std::vector<KmerCount> disk_count_impl(NextChunk&& next_chunk,
                                       const DiskCounterOptions& options,
                                       DiskCounterStats* stats) {
  if (options.num_partitions < 1) {
    throw std::invalid_argument("disk_count: num_partitions must be >= 1");
  }
  if (options.tmp_dir.empty()) {
    throw std::invalid_argument("disk_count: tmp_dir is required");
  }
  const seq::KmerCodec codec(options.k);  // validates k
  std::filesystem::create_directories(options.tmp_dir);

  DiskCounterStats local_stats;

  // Pass 1 — scatter codes to partition files.
  std::vector<PartitionWriter> writers;
  writers.reserve(static_cast<std::size_t>(options.num_partitions));
  for (int p = 0; p < options.num_partitions; ++p) {
    writers.emplace_back(options.tmp_dir + "/kmer_part_" + std::to_string(p) + ".bin");
  }
  for (;;) {
    const std::vector<seq::Sequence> chunk = next_chunk();
    if (chunk.empty()) break;
    for (const auto& read : chunk) {
      for (const auto& occ : codec.extract(read.bases)) {
        const seq::KmerCode code =
            options.canonical ? codec.canonical(occ.code) : occ.code;
        writers[partition_of(code, options.num_partitions)].push(code);
        ++local_stats.total_kmers;
      }
    }
  }
  for (auto& w : writers) local_stats.bytes_spilled += w.finish();

  // Pass 2 — count one partition at a time: load, sort, run-length encode.
  std::vector<KmerCount> counts;
  for (auto& w : writers) {
    std::ifstream in(w.path(), std::ios::binary | std::ios::ate);
    if (!in) throw std::runtime_error("disk_count: cannot reopen '" + w.path() + "'");
    const auto bytes = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<seq::KmerCode> codes(bytes / sizeof(seq::KmerCode));
    in.read(reinterpret_cast<char*>(codes.data()), static_cast<std::streamsize>(bytes));
    if (!in && bytes > 0) {
      throw std::runtime_error("disk_count: truncated partition '" + w.path() + "'");
    }
    local_stats.peak_partition_kmers =
        std::max<std::uint64_t>(local_stats.peak_partition_kmers, codes.size());

    std::sort(codes.begin(), codes.end());
    for (std::size_t i = 0; i < codes.size();) {
      std::size_t j = i;
      while (j < codes.size() && codes[j] == codes[i]) ++j;
      counts.push_back({codes[i], static_cast<std::uint32_t>(j - i)});
      i = j;
    }
    std::error_code ec;
    std::filesystem::remove(w.path(), ec);
  }

  // Partitions are hash-ordered; deliver globally sorted output.
  std::sort(counts.begin(), counts.end(),
            [](const KmerCount& a, const KmerCount& b) { return a.code < b.code; });
  local_stats.distinct_kmers = counts.size();
  if (stats) *stats = local_stats;
  return counts;
}

}  // namespace

std::vector<KmerCount> disk_count_file(const std::string& fasta_path,
                                       const DiskCounterOptions& options,
                                       DiskCounterStats* stats) {
  seq::FastaReader reader(fasta_path);
  return disk_count_impl([&] { return reader.read_chunk(options.chunk_records); }, options,
                         stats);
}

std::vector<KmerCount> disk_count_reads(const std::vector<seq::Sequence>& reads,
                                        const DiskCounterOptions& options,
                                        DiskCounterStats* stats) {
  std::size_t next = 0;
  return disk_count_impl(
      [&] {
        std::vector<seq::Sequence> chunk;
        while (chunk.size() < options.chunk_records && next < reads.size()) {
          chunk.push_back(reads[next++]);
        }
        return chunk;
      },
      options, stats);
}

}  // namespace trinity::kmer
