#pragma once
// FlatKmerIndex: the hot-path replacement for std::unordered_map<KmerCode, V>.
//
// The Chrysalis kernels the paper measures (GraphFromFasta loops 1-2 and the
// ReadsToTranscripts assignment loop) are dominated by k-mer lookups: one
// multiplicity probe per contig (k-1)-mer in the weld harvest and one
// bundle-map probe per read k-mer in assign_read. A node-based unordered_map
// pays a pointer chase plus an allocation per insert on exactly those paths.
// Extreme-scale assemblers (Georganas et al.; Guidi et al.) replace it with a
// flat open-addressing table, which is what this header provides:
//
//  * keys are the 2-bit-packed KmerCodes the KmerCodec's rolling encoder
//    already produces — no re-hashing of base strings, just a 64-bit mix
//    (splitmix64 finalizer) over the packed word;
//  * open addressing with linear probing over a power-of-two capacity —
//    probes stay in one or two cache lines, no per-node allocation;
//  * reserve-from-count: callers size the table once from the known k-mer
//    volume (total bases is an upper bound on distinct k-mers), so the build
//    loop never rehashes.
//
// The iterator surface is deliberately unordered_map-shaped (find()/end(),
// ->first/->second, range-for with structured bindings) so the Chrysalis
// call sites and their tests read identically against either container —
// flat_index_test pins exact parity on random corpora.
//
// Not thread-safe for writes; concurrent read-only lookups are safe, the
// same contract KmerCounter::count_of documents.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "seq/kmer.hpp"

namespace trinity::kmer {

/// 64-bit finalizer (splitmix64) applied to the packed k-mer word. Packed
/// codes are extremely regular in their low bits (2-bit bases), so the
/// identity hash a std::unordered_map would often get away with clusters
/// badly under linear probing; full-width mixing keeps probe chains short.
[[nodiscard]] inline std::uint64_t mix_kmer_code(seq::KmerCode code) {
  std::uint64_t x = code + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Open-addressing k-mer -> V table with linear probing. V must be cheap to
/// move; slots are stored in parallel key/value/occupied arrays so probing
/// touches only the key array until a hit.
template <typename V>
class FlatKmerIndex {
 public:
  FlatKmerIndex() = default;
  /// Sizes the table for `expected` distinct keys up front (see reserve()).
  explicit FlatKmerIndex(std::size_t expected) { reserve(expected); }

  /// Ensures capacity for `expected` distinct keys without rehashing. An
  /// upper bound (e.g. total bases scanned) is fine: capacity is the next
  /// power of two holding `expected` under the max load factor.
  void reserve(std::size_t expected) {
    std::size_t want = 16;
    while (static_cast<double>(expected) >= kMaxLoad * static_cast<double>(want)) want *= 2;
    if (want > keys_.size()) rehash(want);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Number of slots (a power of two once non-empty).
  [[nodiscard]] std::size_t capacity() const { return keys_.size(); }
  [[nodiscard]] double load_factor() const {
    return keys_.empty() ? 0.0 : static_cast<double>(size_) / static_cast<double>(keys_.size());
  }

  /// Value for `code`, inserting a value-initialized V when absent.
  V& operator[](seq::KmerCode code) {
    grow_if_needed();
    const std::size_t slot = locate(code);
    if (!used_[slot]) {
      used_[slot] = 1;
      keys_[slot] = code;
      values_[slot] = V{};
      ++size_;
    }
    return values_[slot];
  }

  /// Inserts (code, value) when absent; unordered_map-shaped return of
  /// {iterator to the slot, inserted}.
  auto emplace(seq::KmerCode code, V value) {
    grow_if_needed();
    const std::size_t slot = locate(code);
    const bool inserted = !used_[slot];
    if (inserted) {
      used_[slot] = 1;
      keys_[slot] = code;
      values_[slot] = std::move(value);
      ++size_;
    }
    return std::pair{Iterator<false>{this, slot}, inserted};
  }

  // --- unordered_map-shaped iteration ------------------------------------------

  /// What dereferencing an iterator yields: a pair-shaped view of one slot.
  template <typename Ref>
  struct Entry {
    seq::KmerCode first;
    Ref second;
  };

  template <bool Const>
  class Iterator {
    using Owner = std::conditional_t<Const, const FlatKmerIndex, FlatKmerIndex>;
    using Ref = std::conditional_t<Const, const V&, V&>;

   public:
    Iterator(Owner* owner, std::size_t slot) : owner_(owner), slot_(slot) { skip_free(); }

    [[nodiscard]] Entry<Ref> operator*() const {
      return {owner_->keys_[slot_], owner_->values_[slot_]};
    }
    /// Proxy so `it->second` works on the by-value Entry.
    struct Arrow {
      Entry<Ref> entry;
      Entry<Ref>* operator->() { return &entry; }
    };
    [[nodiscard]] Arrow operator->() const { return {**this}; }

    Iterator& operator++() {
      ++slot_;
      skip_free();
      return *this;
    }
    [[nodiscard]] bool operator==(const Iterator& other) const { return slot_ == other.slot_; }
    [[nodiscard]] bool operator!=(const Iterator& other) const { return slot_ != other.slot_; }

   private:
    void skip_free() {
      while (slot_ < owner_->keys_.size() && !owner_->used_[slot_]) ++slot_;
    }
    Owner* owner_;
    std::size_t slot_;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  [[nodiscard]] iterator begin() { return {this, 0}; }
  [[nodiscard]] iterator end() { return {this, keys_.size()}; }
  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, keys_.size()}; }

  /// find(): end() when absent, otherwise an iterator whose ->second is the
  /// mapped value — the drop-in for unordered_map::find on the hot paths.
  [[nodiscard]] const_iterator find(seq::KmerCode code) const {
    const std::size_t slot = locate_const(code);
    return {this, slot};
  }
  [[nodiscard]] iterator find(seq::KmerCode code) {
    const std::size_t slot = locate_const(code);
    return {this, slot};
  }

  /// Pointer-returning lookup for the innermost loops (no iterator object).
  [[nodiscard]] const V* lookup(seq::KmerCode code) const {
    const std::size_t slot = locate_const(code);
    return slot < keys_.size() ? &values_[slot] : nullptr;
  }

 private:
  // Load factor ceiling: linear probing degrades sharply past ~0.8; 0.7
  // keeps expected probe chains around two slots.
  static constexpr double kMaxLoad = 0.7;

  void grow_if_needed() {
    if (keys_.empty()) rehash(16);
    else if (static_cast<double>(size_ + 1) > kMaxLoad * static_cast<double>(keys_.size()))
      rehash(keys_.size() * 2);
  }

  /// Slot of `code` or of the free slot where it belongs (table non-empty).
  [[nodiscard]] std::size_t locate(seq::KmerCode code) const {
    std::size_t slot = mix_kmer_code(code) & mask_;
    // Linear probe; wraps around via the power-of-two mask.
    while (used_[slot] && keys_[slot] != code) slot = (slot + 1) & mask_;
    return slot;
  }

  /// Slot of `code`, or keys_.size() (the end() sentinel) when absent.
  [[nodiscard]] std::size_t locate_const(seq::KmerCode code) const {
    if (keys_.empty()) return 0;  // begin()==end() on an empty table
    const std::size_t slot = locate(code);
    return used_[slot] ? slot : keys_.size();
  }

  void rehash(std::size_t new_capacity) {
    std::vector<seq::KmerCode> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    keys_.assign(new_capacity, 0);
    values_.assign(new_capacity, V{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (!old_used[i]) continue;
      const std::size_t slot = locate(old_keys[i]);
      used_[slot] = 1;
      keys_[slot] = old_keys[i];
      values_[slot] = std::move(old_values[i]);
    }
  }

  std::vector<seq::KmerCode> keys_;
  std::vector<V> values_;
  std::vector<std::uint8_t> used_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace trinity::kmer
