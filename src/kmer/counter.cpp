#include "kmer/counter.hpp"

#include "io/io_file.hpp"

#include <omp.h>

#include <fstream>
#include <stdexcept>

namespace trinity::kmer {

namespace {
bool is_power_of_two(int n) { return n > 0 && (n & (n - 1)) == 0; }
}  // namespace

KmerCounter::KmerCounter(CounterOptions options)
    : options_(options), codec_(options.k) {
  if (!is_power_of_two(options_.num_shards)) {
    throw std::invalid_argument("KmerCounter: num_shards must be a power of two");
  }
  shards_ = std::vector<Shard>(static_cast<std::size_t>(options_.num_shards));
  shard_mask_ = static_cast<std::size_t>(options_.num_shards) - 1;
}

void KmerCounter::add_sequence(const seq::Sequence& s) {
  const auto occurrences =
      options_.canonical ? codec_.extract_canonical(s.bases) : codec_.extract(s.bases);
  for (const auto& occ : occurrences) {
    Shard& shard = shard_for(occ.code);
    std::scoped_lock lock(shard.mu);
    ++shard.map[occ.code];
  }
}

void KmerCounter::add_counts(const std::vector<KmerCount>& counts) {
  for (const auto& kc : counts) {
    Shard& shard = shard_for(kc.code);
    std::scoped_lock lock(shard.mu);
    shard.map[kc.code] += kc.count;
  }
}

void KmerCounter::add_sequences(const std::vector<seq::Sequence>& seqs) {
  const int requested = options_.num_threads;
  const auto n = static_cast<std::int64_t>(seqs.size());
#pragma omp parallel for schedule(dynamic, 64) num_threads(requested > 0 ? requested \
                                                                         : omp_get_max_threads())
  for (std::int64_t i = 0; i < n; ++i) {
    add_sequence(seqs[static_cast<std::size_t>(i)]);
  }
}

std::uint32_t KmerCounter::count_of(seq::KmerCode code) const {
  const seq::KmerCode key = options_.canonical ? codec_.canonical(code) : code;
  // Unlocked read; see the header contract (no concurrent inserts).
  const Shard& shard = shard_for(key);
  const auto it = shard.map.find(key);
  return it == shard.map.end() ? 0u : it->second;
}

std::size_t KmerCounter::distinct() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::uint64_t KmerCounter::total() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (const auto& [code, count] : shard.map) total += count;
  }
  return total;
}

std::vector<KmerCount> KmerCounter::dump(std::uint32_t min_count) const {
  std::vector<KmerCount> out;
  out.reserve(distinct());
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (const auto& [code, count] : shard.map) {
      if (count >= min_count) out.push_back({code, count});
    }
  }
  return out;
}

void write_dump_text(const std::string& path, const std::vector<KmerCount>& counts,
                     const seq::KmerCodec& codec) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dump_text: cannot open '" + path + "'");
  for (const auto& kc : counts) {
    out << '>' << kc.count << '\n' << codec.decode(kc.code) << '\n';
  }
  if (!out) throw std::runtime_error("write_dump_text: write failure on '" + path + "'");
}

std::vector<KmerCount> read_dump_text(const std::string& path, const seq::KmerCodec& codec) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_dump_text: cannot open '" + path + "'");
  std::vector<KmerCount> out;
  std::string header;
  std::string bases;
  while (std::getline(in, header)) {
    if (header.empty()) continue;
    if (header[0] != '>') {
      throw std::runtime_error("read_dump_text: malformed record in '" + path + "'");
    }
    if (!std::getline(in, bases)) {
      throw std::runtime_error("read_dump_text: truncated record in '" + path + "'");
    }
    const auto code = codec.encode(bases);
    if (!code || bases.size() != static_cast<std::size_t>(codec.k())) {
      throw std::runtime_error("read_dump_text: bad k-mer '" + bases + "' in '" + path + "'");
    }
    KmerCount kc;
    kc.code = *code;
    kc.count = static_cast<std::uint32_t>(std::stoul(header.substr(1)));
    out.push_back(kc);
  }
  return out;
}

void write_dump_binary(const std::string& path, const std::vector<KmerCount>& counts, int k) {
  const auto k32 = static_cast<std::uint32_t>(k);
  const auto n = static_cast<std::uint64_t>(counts.size());
  std::string body;
  body.reserve(sizeof(k32) + sizeof(n) + counts.size() * (sizeof(seq::KmerCode) + 4));
  body.append(reinterpret_cast<const char*>(&k32), sizeof(k32));
  body.append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& kc : counts) {
    body.append(reinterpret_cast<const char*>(&kc.code), sizeof(kc.code));
    body.append(reinterpret_cast<const char*>(&kc.count), sizeof(kc.count));
  }
  io::write_file(path, body);  // fault-injectable; throws io::IoError
}

std::vector<KmerCount> read_dump_binary(const std::string& path, int expected_k) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_dump_binary: cannot open '" + path + "'");
  std::uint32_t k32 = 0;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&k32), sizeof(k32));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("read_dump_binary: truncated header in '" + path + "'");
  if (static_cast<int>(k32) != expected_k) {
    throw std::runtime_error("read_dump_binary: k mismatch in '" + path + "'");
  }
  std::vector<KmerCount> out(n);
  for (auto& kc : out) {
    in.read(reinterpret_cast<char*>(&kc.code), sizeof(kc.code));
    in.read(reinterpret_cast<char*>(&kc.count), sizeof(kc.count));
  }
  if (!in) throw std::runtime_error("read_dump_binary: truncated records in '" + path + "'");
  return out;
}

}  // namespace trinity::kmer
