#pragma once
// KmerCounter: the Jellyfish substitute.
//
// In the Trinity workflow, `jellyfish count` + `jellyfish dump` produce the
// k-mer/count stream that Inchworm consumes. This module reproduces that
// role: an OpenMP-parallel counter over a lock-striped hash table
// (Jellyfish's own claim to fame is a lock-free hash; striping exercises
// the same concurrent-insert path at our scale), plus text and binary dump
// formats and a loader. Counts are over canonical k-mers by default, with
// a non-canonical mode used by stages that are strand-aware.

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::kmer {

/// One dumped k-mer with its abundance.
struct KmerCount {
  seq::KmerCode code = 0;
  std::uint32_t count = 0;
};

/// Counting options.
struct CounterOptions {
  int k = 25;                 ///< Trinity's default k-mer size
  bool canonical = true;      ///< count strand-neutral (min of kmer, revcomp)
  int num_shards = 64;        ///< lock stripes; must be a power of two
  int num_threads = 0;        ///< 0 = OpenMP default
};

/// Parallel k-mer counter.
class KmerCounter {
 public:
  explicit KmerCounter(CounterOptions options);

  /// Adds every k-mer of every sequence. Thread-safe via shard locks;
  /// callable repeatedly (counts accumulate).
  void add_sequences(const std::vector<seq::Sequence>& seqs);

  /// Adds every k-mer of one sequence (single-threaded helper).
  void add_sequence(const seq::Sequence& s);

  /// Merges pre-counted (k-mer, count) records — rebuilding a counter from
  /// a dump file, e.g. when a checkpointed pipeline resumes past its
  /// counting stage. Codes are taken as stored (a canonical counter's dump
  /// already holds canonical codes).
  void add_counts(const std::vector<KmerCount>& counts);

  /// Count of a specific k-mer (canonicalized when the counter is
  /// canonical); 0 when absent.
  ///
  /// Lock-free: safe to call concurrently with other lookups, but NOT
  /// concurrently with add_sequence(s). The pipeline's phases respect this
  /// (counting completes before Chrysalis starts querying); a locked
  /// lookup here would otherwise serialize the weld-support checks, which
  /// issue tens of lookups per candidate across every rank.
  [[nodiscard]] std::uint32_t count_of(seq::KmerCode code) const;

  /// Number of distinct k-mers seen.
  [[nodiscard]] std::size_t distinct() const;

  /// Sum of all counts (total k-mer occurrences).
  [[nodiscard]] std::uint64_t total() const;

  /// Extracts all (k-mer, count) pairs with count >= min_count, in
  /// unspecified order.
  [[nodiscard]] std::vector<KmerCount> dump(std::uint32_t min_count = 1) const;

  [[nodiscard]] const CounterOptions& options() const { return options_; }
  [[nodiscard]] const seq::KmerCodec& codec() const { return codec_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<seq::KmerCode, std::uint32_t> map;
  };

  Shard& shard_for(seq::KmerCode code) {
    return shards_[static_cast<std::size_t>(code) & shard_mask_];
  }
  const Shard& shard_for(seq::KmerCode code) const {
    return shards_[static_cast<std::size_t>(code) & shard_mask_];
  }

  CounterOptions options_;
  seq::KmerCodec codec_;
  std::vector<Shard> shards_;
  std::size_t shard_mask_;
};

/// Writes counts in the `jellyfish dump` text format: one record per k-mer,
/// a ">count" line followed by the k-mer string.
void write_dump_text(const std::string& path, const std::vector<KmerCount>& counts,
                     const seq::KmerCodec& codec);

/// Reads the text dump format back.
std::vector<KmerCount> read_dump_text(const std::string& path, const seq::KmerCodec& codec);

/// Binary dump: u32 k, u64 record count, then (u64 code, u32 count) pairs.
void write_dump_binary(const std::string& path, const std::vector<KmerCount>& counts, int k);

/// Reads the binary dump; throws std::runtime_error on a k mismatch or a
/// truncated file.
std::vector<KmerCount> read_dump_binary(const std::string& path, int expected_k);

}  // namespace trinity::kmer
