#pragma once
// Low-overhead span recording for the distributed timeline (docs/OBSERVABILITY.md).
//
// The recorder is a process-global singleton installed for the duration of a
// traced pipeline run (ScopedRecording). Every instrumented layer — simpi
// collectives, chrysalis parallel loops, the io layer, the pipeline stage
// driver — funnels events through SpanScope / instant() / counter(), which
// collapse to a single relaxed atomic load when no recorder is installed.
// That disabled fast path is what the <2% overhead guard in
// bench_trace_overhead measures.
//
// Events land in per-thread buffers (one mutex each, never contended: a
// thread only ever appends to its own buffer; the mutex exists for drain())
// with a hard capacity so a runaway loop degrades to counted drops instead
// of unbounded memory. drain() is called at stage boundaries by the pipeline
// driver and moves everything recorded so far into one vector.
//
// Clock domain: all timestamps come from one process-wide steady clock that
// starts when the recorder is constructed. Because simpi ranks are threads
// of this one process, that shared wall clock *is* the merged cluster
// timeline; the per-rank virtual clocks (thread CPU + modeled comm time)
// diverge from each other and are attached as span args / report counters
// instead of being used as timestamps.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/timer.hpp"

namespace trinity::trace {

// Category tags for the four instrumented layers.
inline constexpr const char* kCatSimpi = "simpi";
inline constexpr const char* kCatLoop = "loop";
inline constexpr const char* kCatIo = "io";
inline constexpr const char* kCatPipeline = "pipeline";

enum class EventKind { kSpan, kInstant, kCounter };

/// One numeric argument attached to an event (bytes, items, attempt, ...).
struct TraceArg {
  std::string name;
  double value = 0.0;
};

/// One recorded event. rank -1 means "no rank": the orchestration thread
/// outside simpi::run (mapped to its own track on export).
struct TraceEvent {
  EventKind kind = EventKind::kSpan;
  std::string name;
  std::string category;
  int rank = -1;
  int tid = 0;
  double start_s = 0.0;
  double dur_s = 0.0;    ///< spans only
  double value = 0.0;    ///< counters only
  std::vector<TraceArg> args;
  std::string detail;    ///< free-form string (path, error text, ...)
};

/// Collects events into per-thread capacity-bounded buffers.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit SpanRecorder(std::size_t per_thread_capacity = kDefaultCapacity);
  ~SpanRecorder();
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// The installed recorder, or nullptr when tracing is off.
  [[nodiscard]] static SpanRecorder* active();

  /// Seconds since this recorder was constructed (the trace clock).
  [[nodiscard]] double now() const { return clock_.seconds(); }

  /// Appends to the calling thread's buffer (drops past capacity).
  void record(TraceEvent ev);

  /// Moves all buffered events out, across every thread that recorded.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Events discarded because a thread buffer hit capacity.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Per-thread event storage; public only for the thread_local cache in
  /// the implementation file.
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
  };

 private:
  friend class ScopedRecording;

  ThreadBuffer& thread_buffer();

  util::Timer clock_;
  std::size_t capacity_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// True when a recorder is installed; one relaxed atomic load.
[[nodiscard]] bool enabled();

/// Installs `recorder` as the process-global active recorder for this
/// scope. Nesting is not supported (the pipeline owns the recorder).
class ScopedRecording {
 public:
  explicit ScopedRecording(SpanRecorder* recorder);
  ~ScopedRecording();
  ScopedRecording(const ScopedRecording&) = delete;
  ScopedRecording& operator=(const ScopedRecording&) = delete;
};

/// Rank attribution for the calling thread. simpi::run sets it on each rank
/// thread; -1 everywhere else. OpenMP worker threads do *not* inherit it —
/// parallel loops read it on the master and pass it down explicitly.
[[nodiscard]] int current_rank();

/// Sets current_rank() for the calling thread within a scope.
class ScopedRank {
 public:
  explicit ScopedRank(int rank);
  ~ScopedRank();
  ScopedRank(const ScopedRank&) = delete;
  ScopedRank& operator=(const ScopedRank&) = delete;

 private:
  int previous_;
};

/// RAII span. When no recorder is active, construction is one atomic load
/// and the destructor does nothing; name/category must be string literals
/// (they are not copied until the event is recorded).
class SpanScope {
 public:
  SpanScope(const char* name, const char* category);
  SpanScope(const char* name, const char* category, int rank, int tid);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// True when the span is being recorded (use to skip arg computation).
  explicit operator bool() const { return recorder_ != nullptr; }

  /// Attaches a numeric argument (silently ignored past kMaxArgs).
  void arg(const char* name, double value);
  void set_detail(std::string detail);

 private:
  static constexpr int kMaxArgs = 4;

  SpanRecorder* recorder_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int rank_ = -1;
  int tid_ = 0;
  double start_ = 0.0;
  int num_args_ = 0;
  const char* arg_names_[kMaxArgs] = {};
  double arg_values_[kMaxArgs] = {};
  std::string detail_;
};

/// Records a span that ends now and lasted `duration_s` (used for wait
/// sub-spans, whose duration is the exact double added to CommStats).
void completed_span(const char* name, const char* category, double duration_s);

/// Records an instant event (faults, retries). Cold path; may allocate.
void instant(const char* name, const char* category, std::string detail = {},
             std::vector<TraceArg> args = {});

/// Records a counter-track sample (e.g. rss_bytes per stage boundary).
void counter(const char* name, const char* category, double value,
             int rank = -1);

}  // namespace trinity::trace
