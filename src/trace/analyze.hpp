#pragma once
// Trace mining: per-stage cross-rank critical path, per-rank blocked-gap
// totals, and top-N spans — the paper's Figure 7/9 max-vs-min diagnosis
// computed from the timeline instead of aggregate counters.
//
// Definitions (docs/OBSERVABILITY.md): within a pipeline stage span
// [t0, t1], a rank's *coverage* is the union of its span intervals clipped
// to the window, its *blocked* time is the summed duration of its `*.wait`
// spans (time a collective spent stalled on a peer), and its *busy* time is
// coverage minus blocked. The stage's critical rank is the one with the
// largest busy time — the rank every other rank waits for at the stage's
// closing collective.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/span_recorder.hpp"

namespace trinity::trace {

struct RankStageStats {
  int rank = -1;
  double busy_s = 0.0;
  double blocked_s = 0.0;
};

struct StageCriticalPath {
  std::string stage;
  double start_s = 0.0;
  double wall_s = 0.0;  ///< the pipeline stage span's duration
  int critical_rank = -1;
  double critical_busy_s = 0.0;
  /// max busy / min busy across ranks (the Figure 7/9 imbalance ratio);
  /// 1.0 when fewer than two ranks recorded events in the stage.
  double skew_ratio = 1.0;
  std::vector<RankStageStats> ranks;
};

struct SpanSummary {
  std::string name;
  std::string category;
  int rank = -1;
  int tid = 0;
  double start_s = 0.0;
  double dur_s = 0.0;
};

struct TraceAnalysis {
  std::vector<StageCriticalPath> stages;
  /// Whole-run blocked totals per rank, sorted by rank.
  std::vector<RankStageStats> rank_totals;
  /// Longest spans (pipeline stage spans excluded — they would trivially
  /// dominate), sorted by descending duration.
  std::vector<SpanSummary> top_spans;
  std::size_t num_events = 0;
};

/// Mines `events` (e.g. from read_chrome_trace). `top_n` bounds top_spans.
[[nodiscard]] TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                                          std::size_t top_n = 5);

/// Human-readable report (what `trinity_trace` and `trinity_report --trace`
/// print).
[[nodiscard]] std::string format_analysis(const TraceAnalysis& analysis);

}  // namespace trinity::trace
