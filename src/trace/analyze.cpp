#include "trace/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

namespace trinity::trace {
namespace {

bool is_wait_span(const TraceEvent& ev) {
  const std::string suffix = ".wait";
  return ev.name.size() > suffix.size() &&
         ev.name.compare(ev.name.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
}

// Length of the union of [start, end) intervals clipped to [t0, t1].
double union_coverage(std::vector<std::pair<double, double>>& intervals,
                      double t0, double t1) {
  double covered = 0.0;
  std::sort(intervals.begin(), intervals.end());
  double cur_start = 0.0;
  double cur_end = -1.0;
  for (const auto& [s, e] : intervals) {
    const double start = std::max(s, t0);
    const double end = std::min(e, t1);
    if (end <= start) continue;
    if (cur_end < cur_start || start > cur_end) {
      if (cur_end > cur_start) covered += cur_end - cur_start;
      cur_start = start;
      cur_end = end;
    } else {
      cur_end = std::max(cur_end, end);
    }
  }
  if (cur_end > cur_start) covered += cur_end - cur_start;
  return covered;
}

std::string format_seconds(double s) {
  char buf[32];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  }
  return buf;
}

}  // namespace

TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            std::size_t top_n) {
  TraceAnalysis out;
  out.num_events = events.size();

  // Pipeline stage spans define the windows; everything else is attributed
  // to ranks inside them.
  std::vector<const TraceEvent*> stage_spans;
  std::vector<const TraceEvent*> rank_spans;
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::kSpan) continue;
    if (ev.category == kCatPipeline && ev.rank < 0) {
      stage_spans.push_back(&ev);
    } else {
      rank_spans.push_back(&ev);
    }
  }
  std::sort(stage_spans.begin(), stage_spans.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->start_s < b->start_s;
            });

  std::map<int, RankStageStats> totals;
  for (const TraceEvent* stage : stage_spans) {
    const double t0 = stage->start_s;
    const double t1 = stage->start_s + stage->dur_s;
    StageCriticalPath cp;
    cp.stage = stage->name;
    cp.start_s = t0;
    cp.wall_s = stage->dur_s;

    std::map<int, std::vector<std::pair<double, double>>> by_rank;
    std::map<int, double> blocked;
    for (const TraceEvent* ev : rank_spans) {
      if (ev->rank < 0) continue;
      const double s = ev->start_s;
      const double e = ev->start_s + ev->dur_s;
      if (e <= t0 || s >= t1) continue;
      if (is_wait_span(*ev)) {
        blocked[ev->rank] += std::min(e, t1) - std::max(s, t0);
      } else {
        by_rank[ev->rank].push_back({s, e});
      }
    }
    for (auto& [rank, intervals] : by_rank) {
      RankStageStats stats;
      stats.rank = rank;
      stats.blocked_s = blocked.count(rank) != 0 ? blocked[rank] : 0.0;
      stats.busy_s =
          std::max(0.0, union_coverage(intervals, t0, t1) - stats.blocked_s);
      cp.ranks.push_back(stats);
      auto& total = totals[rank];
      total.rank = rank;
      total.busy_s += stats.busy_s;
      total.blocked_s += stats.blocked_s;
    }
    double max_busy = 0.0;
    double min_busy = -1.0;
    for (const RankStageStats& stats : cp.ranks) {
      if (stats.busy_s > max_busy) {
        max_busy = stats.busy_s;
        cp.critical_rank = stats.rank;
        cp.critical_busy_s = stats.busy_s;
      }
      if (min_busy < 0.0 || stats.busy_s < min_busy) min_busy = stats.busy_s;
    }
    if (cp.ranks.size() >= 2 && min_busy > 0.0) {
      cp.skew_ratio = max_busy / min_busy;
    }
    out.stages.push_back(std::move(cp));
  }
  for (auto& [rank, stats] : totals) out.rank_totals.push_back(stats);

  // Top-N spans by duration (stage spans excluded above).
  std::vector<const TraceEvent*> sorted = rank_spans;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return a->dur_s > b->dur_s;
            });
  for (std::size_t i = 0; i < sorted.size() && i < top_n; ++i) {
    const TraceEvent* ev = sorted[i];
    out.top_spans.push_back(
        {ev->name, ev->category, ev->rank, ev->tid, ev->start_s, ev->dur_s});
  }
  return out;
}

std::string format_analysis(const TraceAnalysis& analysis) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "trace: %zu events, %zu stages\n",
                analysis.num_events, analysis.stages.size());
  out += line;

  out += "\ncritical path per stage\n";
  for (const StageCriticalPath& cp : analysis.stages) {
    std::snprintf(line, sizeof(line), "  %-28s wall %-10s", cp.stage.c_str(),
                  format_seconds(cp.wall_s).c_str());
    out += line;
    if (cp.critical_rank >= 0) {
      std::snprintf(line, sizeof(line),
                    " critical rank %d (busy %s, skew %.2fx)",
                    cp.critical_rank,
                    format_seconds(cp.critical_busy_s).c_str(), cp.skew_ratio);
      out += line;
    }
    out += "\n";
  }

  if (!analysis.rank_totals.empty()) {
    out += "\nper-rank totals (whole run)\n";
    for (const RankStageStats& stats : analysis.rank_totals) {
      std::snprintf(line, sizeof(line), "  rank %-3d busy %-10s blocked %s\n",
                    stats.rank, format_seconds(stats.busy_s).c_str(),
                    format_seconds(stats.blocked_s).c_str());
      out += line;
    }
  }

  if (!analysis.top_spans.empty()) {
    out += "\ntop spans\n";
    for (const SpanSummary& span : analysis.top_spans) {
      std::snprintf(line, sizeof(line), "  %-10s %-28s rank %-3d tid %-3d %s\n",
                    span.category.c_str(), span.name.c_str(), span.rank,
                    span.tid, format_seconds(span.dur_s).c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace trinity::trace
