#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace trinity::trace {
namespace {

constexpr double kMicros = 1e6;

int pid_for_rank(int rank) { return rank < 0 ? 0 : rank + 1; }

// Counters and byte args are integral-valued doubles; emitting them as
// JSON integers keeps the file greppable and round-trips exactly.
util::Json number_json(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.0e15) {
    return util::Json(static_cast<std::int64_t>(value));
  }
  return util::Json(value);
}

util::Json args_json(const TraceEvent& ev) {
  util::Json args = util::Json::object();
  for (const TraceArg& a : ev.args) args.set(a.name, number_json(a.value));
  if (!ev.detail.empty()) args.set("detail", util::Json(ev.detail));
  return args;
}

std::string process_name(int pid) {
  if (pid == 0) return "pipeline";
  return "rank " + std::to_string(pid - 1);
}

}  // namespace

util::Json chrome_trace_json(const std::vector<TraceEvent>& events,
                             const ChromeTraceMeta& meta) {
  // Sort a copy by (ts, pid, tid) so every track is monotonic in the file;
  // Perfetto does not require it but the tests and diffs do.
  std::vector<const TraceEvent*> order;
  order.reserve(events.size());
  for (const TraceEvent& ev : events) order.push_back(&ev);
  std::stable_sort(order.begin(), order.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->start_s != b->start_s) return a->start_s < b->start_s;
                     if (a->rank != b->rank) return a->rank < b->rank;
                     return a->tid < b->tid;
                   });

  util::Json trace_events = util::Json::array();

  // Metadata tracks first: process names per rank, thread names per track.
  std::set<int> pids;
  std::set<std::pair<int, int>> tracks;
  for (const TraceEvent& ev : events) {
    pids.insert(pid_for_rank(ev.rank));
    tracks.insert({pid_for_rank(ev.rank), ev.tid});
  }
  for (int pid : pids) {
    util::Json m = util::Json::object();
    m.set("name", util::Json("process_name"));
    m.set("ph", util::Json("M"));
    m.set("pid", util::Json(pid));
    m.set("tid", util::Json(0));
    util::Json args = util::Json::object();
    args.set("name", util::Json(process_name(pid)));
    m.set("args", std::move(args));
    trace_events.push_back(std::move(m));

    util::Json s = util::Json::object();
    s.set("name", util::Json("process_sort_index"));
    s.set("ph", util::Json("M"));
    s.set("pid", util::Json(pid));
    s.set("tid", util::Json(0));
    util::Json sort_args = util::Json::object();
    sort_args.set("sort_index", util::Json(pid));
    s.set("args", std::move(sort_args));
    trace_events.push_back(std::move(s));
  }
  for (const auto& [pid, tid] : tracks) {
    util::Json m = util::Json::object();
    m.set("name", util::Json("thread_name"));
    m.set("ph", util::Json("M"));
    m.set("pid", util::Json(pid));
    m.set("tid", util::Json(tid));
    util::Json args = util::Json::object();
    args.set("name", util::Json(tid == 0 ? std::string("main")
                                         : "worker " + std::to_string(tid)));
    m.set("args", std::move(args));
    trace_events.push_back(std::move(m));
  }

  for (const TraceEvent* ev : order) {
    util::Json e = util::Json::object();
    e.set("name", util::Json(ev->name));
    e.set("cat", util::Json(ev->category.empty() ? std::string("misc")
                                                 : ev->category));
    switch (ev->kind) {
      case EventKind::kSpan:
        e.set("ph", util::Json("X"));
        break;
      case EventKind::kInstant:
        e.set("ph", util::Json("i"));
        e.set("s", util::Json("t"));
        break;
      case EventKind::kCounter:
        e.set("ph", util::Json("C"));
        break;
    }
    e.set("pid", util::Json(pid_for_rank(ev->rank)));
    e.set("tid", util::Json(ev->tid));
    e.set("ts", util::Json(ev->start_s * kMicros));
    if (ev->kind == EventKind::kSpan) {
      e.set("dur", util::Json(ev->dur_s * kMicros));
    }
    if (ev->kind == EventKind::kCounter) {
      util::Json args = util::Json::object();
      args.set("value", number_json(ev->value));
      e.set("args", std::move(args));
    } else {
      util::Json args = args_json(*ev);
      if (!args.members().empty()) e.set("args", std::move(args));
    }
    trace_events.push_back(std::move(e));
  }

  util::Json doc = util::Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", util::Json("ms"));
  util::Json other = util::Json::object();
  other.set("generator", util::Json(meta.generator));
  other.set("clock_domain", util::Json(meta.clock_domain));
  other.set("dropped_events", util::Json(meta.dropped_events));
  doc.set("otherData", std::move(other));
  return doc;
}

std::string chrome_trace_text(const std::vector<TraceEvent>& events,
                              const ChromeTraceMeta& meta) {
  return chrome_trace_json(events, meta).dump(1) + "\n";
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceMeta& meta) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("trace: cannot open " + path);
  out << chrome_trace_text(events, meta);
  out.flush();
  if (!out) throw std::runtime_error("trace: write failed: " + path);
}

std::vector<TraceEvent> events_from_chrome_trace(const util::Json& doc) {
  TraceShapeReport shape = validate_chrome_trace(doc);
  if (!shape.ok()) {
    throw std::runtime_error("trace: malformed document: " + shape.errors[0]);
  }
  std::vector<TraceEvent> out;
  for (const util::Json& e : doc.at("traceEvents").items()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") continue;
    TraceEvent ev;
    ev.name = e.at("name").as_string();
    if (const util::Json* cat = e.find("cat")) ev.category = cat->as_string();
    ev.rank = static_cast<int>(e.at("pid").as_int()) - 1;
    ev.tid = static_cast<int>(e.at("tid").as_int());
    ev.start_s = e.at("ts").as_double() / kMicros;
    if (ph == "X") {
      ev.kind = EventKind::kSpan;
      ev.dur_s = e.at("dur").as_double() / kMicros;
    } else if (ph == "i") {
      ev.kind = EventKind::kInstant;
    } else {
      ev.kind = EventKind::kCounter;
    }
    if (const util::Json* args = e.find("args")) {
      for (const auto& [key, value] : args->members()) {
        if (value.is_number()) {
          if (ev.kind == EventKind::kCounter && key == "value") {
            ev.value = value.as_double();
          } else {
            ev.args.push_back({key, value.as_double()});
          }
        } else if (value.is_string() && key == "detail") {
          ev.detail = value.as_string();
        }
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::vector<TraceEvent> read_chrome_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return events_from_chrome_trace(util::Json::parse(text.str()));
}

namespace {

void check_event(const util::Json& e, std::size_t index,
                 TraceShapeReport& report) {
  auto fail = [&](const std::string& what) {
    if (report.errors.size() < 32) {
      report.errors.push_back("traceEvents[" + std::to_string(index) +
                              "]: " + what);
    }
  };
  if (!e.is_object()) {
    fail("not an object");
    return;
  }
  const util::Json* name = e.find("name");
  if (name == nullptr || !name->is_string()) fail("missing string 'name'");
  const util::Json* ph = e.find("ph");
  if (ph == nullptr || !ph->is_string()) {
    fail("missing string 'ph'");
    return;
  }
  const std::string& phase = ph->as_string();
  if (phase != "X" && phase != "i" && phase != "C" && phase != "M") {
    fail("unknown ph '" + phase + "'");
    return;
  }
  for (const char* key : {"pid", "tid"}) {
    const util::Json* v = e.find(key);
    if (v == nullptr || !v->is_number()) {
      fail(std::string("missing numeric '") + key + "'");
    }
  }
  if (phase == "M") return;
  const util::Json* ts = e.find("ts");
  if (ts == nullptr || !ts->is_number()) {
    fail("missing numeric 'ts'");
  } else if (ts->as_double() < 0.0) {
    fail("negative ts");
  }
  if (phase == "X") {
    const util::Json* dur = e.find("dur");
    if (dur == nullptr || !dur->is_number()) {
      fail("'X' event missing numeric 'dur'");
    } else if (dur->as_double() < 0.0) {
      fail("negative dur");
    }
  }
  if (phase == "i") {
    const util::Json* s = e.find("s");
    if (s != nullptr && (!s->is_string() || (s->as_string() != "t" &&
                                             s->as_string() != "p" &&
                                             s->as_string() != "g"))) {
      fail("'i' event with invalid scope 's'");
    }
  }
  if (phase == "C") {
    const util::Json* args = e.find("args");
    bool has_numeric = false;
    if (args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->members()) {
        (void)key;
        if (value.is_number()) has_numeric = true;
      }
    }
    if (!has_numeric) fail("'C' event without a numeric args member");
  }
}

}  // namespace

TraceShapeReport validate_chrome_trace(const util::Json& doc) {
  TraceShapeReport report;
  if (!doc.is_object()) {
    report.errors.push_back("document root is not an object");
    return report;
  }
  const util::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    report.errors.push_back("missing 'traceEvents' array");
    return report;
  }
  const util::Json* unit = doc.find("displayTimeUnit");
  if (unit != nullptr &&
      (!unit->is_string() ||
       (unit->as_string() != "ms" && unit->as_string() != "ns"))) {
    report.errors.push_back("'displayTimeUnit' must be \"ms\" or \"ns\"");
  }
  std::size_t index = 0;
  for (const util::Json& e : events->items()) {
    check_event(e, index++, report);
  }
  report.num_events = index;
  return report;
}

TraceShapeReport validate_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceShapeReport report;
    report.errors.push_back("cannot read " + path);
    return report;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return validate_chrome_trace(util::Json::parse(text.str()));
  } catch (const std::exception& e) {
    TraceShapeReport report;
    report.errors.push_back(std::string("JSON parse error: ") + e.what());
    return report;
  }
}

}  // namespace trinity::trace
