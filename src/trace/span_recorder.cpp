#include "trace/span_recorder.hpp"

#include <utility>

namespace trinity::trace {
namespace {

// The active recorder plus an install epoch. Threads cache their buffer
// pointer in a thread_local keyed by the epoch, so a thread that outlives
// one recording session cannot write into a freed buffer of the next.
std::atomic<SpanRecorder*> g_active{nullptr};
std::atomic<std::uint64_t> g_epoch{0};

thread_local SpanRecorder::ThreadBuffer* t_buffer = nullptr;
thread_local std::uint64_t t_buffer_epoch = 0;

thread_local int t_rank = -1;

}  // namespace

SpanRecorder::SpanRecorder(std::size_t per_thread_capacity)
    : capacity_(per_thread_capacity == 0 ? 1 : per_thread_capacity) {}

SpanRecorder::~SpanRecorder() {
  // Must not be destroyed while installed; ScopedRecording enforces the
  // pairing, this is a backstop against misuse in tests.
  if (g_active.load(std::memory_order_relaxed) == this) {
    g_active.store(nullptr, std::memory_order_release);
    g_epoch.fetch_add(1, std::memory_order_release);
  }
}

SpanRecorder* SpanRecorder::active() {
  return g_active.load(std::memory_order_acquire);
}

SpanRecorder::ThreadBuffer& SpanRecorder::thread_buffer() {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (t_buffer != nullptr && t_buffer_epoch == epoch) return *t_buffer;
  std::lock_guard<std::mutex> lock(registry_mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->events.reserve(capacity_ < 1024 ? capacity_ : 1024);
  t_buffer = buffers_.back().get();
  t_buffer_epoch = epoch;
  return *t_buffer;
}

void SpanRecorder::record(TraceEvent ev) {
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= capacity_) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> SpanRecorder::drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (auto& ev : buf->events) out.push_back(std::move(ev));
    buf->events.clear();
  }
  return out;
}

std::uint64_t SpanRecorder::dropped_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> registry_lock(registry_mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

bool enabled() { return g_active.load(std::memory_order_relaxed) != nullptr; }

ScopedRecording::ScopedRecording(SpanRecorder* recorder) {
  g_epoch.fetch_add(1, std::memory_order_release);
  g_active.store(recorder, std::memory_order_release);
}

ScopedRecording::~ScopedRecording() {
  g_active.store(nullptr, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_release);
}

int current_rank() { return t_rank; }

ScopedRank::ScopedRank(int rank) : previous_(t_rank) { t_rank = rank; }

ScopedRank::~ScopedRank() { t_rank = previous_; }

SpanScope::SpanScope(const char* name, const char* category)
    : SpanScope(name, category, t_rank, 0) {}

SpanScope::SpanScope(const char* name, const char* category, int rank, int tid)
    : recorder_(SpanRecorder::active()) {
  if (recorder_ == nullptr) return;
  name_ = name;
  category_ = category;
  rank_ = rank;
  tid_ = tid;
  start_ = recorder_->now();
}

SpanScope::~SpanScope() {
  if (recorder_ == nullptr) return;
  // Re-check: the recorder may have been uninstalled while the span was
  // open (e.g. a fault unwound past the pipeline driver).
  if (SpanRecorder::active() != recorder_) return;
  TraceEvent ev;
  ev.kind = EventKind::kSpan;
  ev.name = name_;
  ev.category = category_;
  ev.rank = rank_;
  ev.tid = tid_;
  ev.start_s = start_;
  ev.dur_s = recorder_->now() - start_;
  for (int i = 0; i < num_args_; ++i) {
    ev.args.push_back({arg_names_[i], arg_values_[i]});
  }
  ev.detail = std::move(detail_);
  recorder_->record(std::move(ev));
}

void SpanScope::arg(const char* name, double value) {
  if (recorder_ == nullptr || num_args_ >= kMaxArgs) return;
  arg_names_[num_args_] = name;
  arg_values_[num_args_] = value;
  ++num_args_;
}

void SpanScope::set_detail(std::string detail) {
  if (recorder_ == nullptr) return;
  detail_ = std::move(detail);
}

void completed_span(const char* name, const char* category,
                    double duration_s) {
  SpanRecorder* rec = SpanRecorder::active();
  if (rec == nullptr) return;
  TraceEvent ev;
  ev.kind = EventKind::kSpan;
  ev.name = name;
  ev.category = category;
  ev.rank = t_rank;
  const double end = rec->now();
  ev.start_s = end - (duration_s > 0.0 ? duration_s : 0.0);
  ev.dur_s = duration_s > 0.0 ? duration_s : 0.0;
  rec->record(std::move(ev));
}

void instant(const char* name, const char* category, std::string detail,
             std::vector<TraceArg> args) {
  SpanRecorder* rec = SpanRecorder::active();
  if (rec == nullptr) return;
  TraceEvent ev;
  ev.kind = EventKind::kInstant;
  ev.name = name;
  ev.category = category;
  ev.rank = t_rank;
  ev.start_s = rec->now();
  ev.args = std::move(args);
  ev.detail = std::move(detail);
  rec->record(std::move(ev));
}

void counter(const char* name, const char* category, double value, int rank) {
  SpanRecorder* rec = SpanRecorder::active();
  if (rec == nullptr) return;
  TraceEvent ev;
  ev.kind = EventKind::kCounter;
  ev.name = name;
  ev.category = category;
  ev.rank = rank;
  ev.start_s = rec->now();
  ev.value = value;
  rec->record(std::move(ev));
}

}  // namespace trinity::trace
