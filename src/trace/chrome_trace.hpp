#pragma once
// Chrome trace-event export for recorded spans, plus the inverse loader and
// a shape checker used by tests and the scripts/check.sh trace gate.
//
// Mapping (docs/OBSERVABILITY.md "Distributed trace"): each simpi rank
// becomes a Chrome *process* (pid = rank + 1) so Perfetto groups its
// threads together; pid 0 is the orchestration thread that runs the
// pipeline stages. tid is the OpenMP thread index within a rank (0 = the
// rank's main thread). Spans are "X" (complete) events with microsecond
// ts/dur, instants are "i", counter samples are "C", and "M" metadata
// events carry the process/thread names.

#include <cstdint>
#include <string>
#include <vector>

#include "trace/span_recorder.hpp"
#include "util/json.hpp"

namespace trinity::trace {

/// Document-level metadata carried under "otherData".
struct ChromeTraceMeta {
  std::string generator = "trinity_trace";
  std::string clock_domain =
      "process steady clock, seconds since recorder construction";
  std::uint64_t dropped_events = 0;
};

/// Builds the full Chrome trace-event document (sorted by timestamp).
[[nodiscard]] util::Json chrome_trace_json(const std::vector<TraceEvent>& events,
                                           const ChromeTraceMeta& meta = {});

/// chrome_trace_json() serialized with a trailing newline.
[[nodiscard]] std::string chrome_trace_text(const std::vector<TraceEvent>& events,
                                            const ChromeTraceMeta& meta = {});

/// Writes the document to `path` (plain ofstream; the pipeline goes through
/// the io layer instead so the write itself is fault-injectable).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceMeta& meta = {});

/// Inverse of chrome_trace_json: reconstructs TraceEvents from a parsed
/// document ("M" metadata events are skipped). Throws std::runtime_error
/// on documents the validator would reject.
[[nodiscard]] std::vector<TraceEvent> events_from_chrome_trace(
    const util::Json& doc);

/// Reads + parses + converts a trace.json file.
[[nodiscard]] std::vector<TraceEvent> read_chrome_trace(const std::string& path);

/// Result of the shape check; `errors` is empty when the document is a
/// well-formed Chrome trace-event JSON by the rules we emit under.
struct TraceShapeReport {
  std::vector<std::string> errors;
  std::size_t num_events = 0;
  [[nodiscard]] bool ok() const { return errors.empty(); }
};

[[nodiscard]] TraceShapeReport validate_chrome_trace(const util::Json& doc);
[[nodiscard]] TraceShapeReport validate_chrome_trace_file(const std::string& path);

}  // namespace trinity::trace
