#include "simpi/subcomm.hpp"

#include <algorithm>

namespace trinity::simpi {

SubComm SubComm::split(Context& ctx, int color, int key) {
  // World-collective exchange of (color, key) per rank.
  struct Entry {
    int color;
    int key;
    int world_rank;
  };
  static_assert(std::is_trivially_copyable_v<Entry>);
  const auto all = ctx.allgather(Entry{color, key, ctx.rank()});

  std::vector<Entry> group;
  for (const auto& e : all) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.world_rank < b.world_rank;
  });

  std::vector<int> members;
  members.reserve(group.size());
  int my_rank = -1;
  for (const auto& e : group) {
    if (e.world_rank == ctx.rank()) my_rank = static_cast<int>(members.size());
    members.push_back(e.world_rank);
  }
  return SubComm(ctx, color, std::move(members), my_rank);
}

void SubComm::barrier() {
  // Gather a token at group rank 0, then broadcast it back.
  std::vector<std::uint8_t> token{1};
  if (rank_ == 0) {
    for (int r = 1; r < size(); ++r) {
      (void)ctx_->internal_recv(world_rank_of(r), kTag);
    }
  } else {
    ctx_->internal_send(world_rank_of(0), kTag,
                        std::as_bytes(std::span<const std::uint8_t>(token)));
  }
  bcast(token, 0);
  ctx_->charge(ctx_->cost_model().barrier_cost(size()));
}

}  // namespace trinity::simpi
