#pragma once
// Per-rank communication counters for the simpi substrate.
//
// The paper's evaluation (Figures 7-11) hinges on quantities the library
// previously computed but never exposed: how many collectives each rank
// entered, how many bytes each Allgatherv pooled, and how long the fast
// ranks sat blocked waiting for the slow ones (load-imbalance "skew").
// Related distributed assemblers attribute most scaling loss to exactly
// those two numbers — communication volume and rank skew — so every costed
// simpi operation now records into a per-rank CommStats, returned alongside
// the virtual-time clocks in RankResult and surfaced by the pipeline's JSON
// run report (docs/OBSERVABILITY.md documents the schema).
//
// Counting semantics (the schema doc repeats these):
//  * Every op records one call per entry on every participating rank.
//  * kSend/kRecv count user point-to-point payload bytes.
//  * kBcast: the root counts payload * (nranks - 1) as sent; every other
//    rank counts payload as received.
//  * kGatherv: non-roots count their contribution as sent; the root counts
//    the sum of the other ranks' contributions as received.
//  * kAllgatherv is LOGICAL accounting: each rank counts its contribution
//    as sent and the pooled concatenation as received. The transport bytes
//    appear in the inner kGatherv/kBcast rows, because simpi layers
//    allgatherv on gatherv + bcast — mirror of the FaultOp layering note.
//  * kAlltoallv counts the full send matrix row as sent (every destination
//    part, own slot included) and the full receive row as received; its
//    transfers are direct point-to-point, so unlike allgatherv there are
//    no inner transport rows — the row is both logical and transport.
//  * kReduce (the allreduce family) likewise counts one element sent and
//    nranks elements received, with transport in the inner ops.
//  * kExtension covers the library-extension transfers (SubComm,
//    simpi/nonblocking.hpp, collective file output), which move raw bytes
//    through Context::internal_send/internal_recv.
//  * wait_seconds is wall-clock time blocked inside the op — waiting on a
//    barrier, or on a peer's data in a receive — and is the direct per-rank
//    measure of skew: the earlier a rank arrives, the longer it waits.

#include <array>
#include <cstddef>
#include <cstdint>

namespace trinity::simpi {

/// Operations whose calls/bytes/wait are counted per rank. Layered
/// collectives advance their inner operations' rows too (see file comment).
enum class CommOp : int {
  kSend = 0,    ///< Context::send_bytes and the typed wrappers
  kRecv,        ///< Context::recv_bytes and the typed wrappers
  kBarrier,     ///< Context::barrier
  kBcast,       ///< Context::bcast
  kGatherv,     ///< Context::gatherv (also inner step of allgatherv)
  kAllgatherv,  ///< Context::allgatherv/allgather, logical payload bytes
  kAlltoallv,   ///< Context::alltoallv, owner-addressed point-to-point routing
  kReduce,      ///< the allreduce family, logical payload bytes
  kExtension,   ///< internal_send/internal_recv (SubComm, nonblocking, I/O)
};

inline constexpr std::size_t kNumCommOps = 9;

/// Lower-case op name ("send", "allgatherv", ...), as used in the JSON
/// run report's per-op keys.
[[nodiscard]] const char* to_string(CommOp op);

/// Counters for one operation on one rank.
struct OpStats {
  std::uint64_t calls = 0;           ///< entries into the op
  std::uint64_t bytes_sent = 0;      ///< payload bytes this rank contributed
  std::uint64_t bytes_received = 0;  ///< payload bytes this rank obtained
  double wait_seconds = 0.0;         ///< wall time blocked waiting on peers

  OpStats& operator+=(const OpStats& other) {
    calls += other.calls;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    wait_seconds += other.wait_seconds;
    return *this;
  }
};

/// The complete per-rank communication profile: one OpStats row per CommOp.
struct CommStats {
  std::array<OpStats, kNumCommOps> ops{};

  [[nodiscard]] OpStats& of(CommOp op) { return ops[static_cast<std::size_t>(op)]; }
  [[nodiscard]] const OpStats& of(CommOp op) const {
    return ops[static_cast<std::size_t>(op)];
  }

  /// Sums over all ops. total_bytes_* mix transport and logical rows (see
  /// the layering note); per-op rows are the precise quantities.
  [[nodiscard]] std::uint64_t total_calls() const;
  [[nodiscard]] std::uint64_t total_bytes_sent() const;
  [[nodiscard]] std::uint64_t total_bytes_received() const;
  /// Total wall time this rank spent blocked on peers — its skew exposure.
  [[nodiscard]] double total_wait_seconds() const;

  /// Element-wise accumulation (e.g. folding several worlds' stats).
  CommStats& operator+=(const CommStats& other);
};

}  // namespace trinity::simpi
