#include "simpi/comm_stats.hpp"

namespace trinity::simpi {

const char* to_string(CommOp op) {
  switch (op) {
    case CommOp::kSend: return "send";
    case CommOp::kRecv: return "recv";
    case CommOp::kBarrier: return "barrier";
    case CommOp::kBcast: return "bcast";
    case CommOp::kGatherv: return "gatherv";
    case CommOp::kAllgatherv: return "allgatherv";
    case CommOp::kAlltoallv: return "alltoallv";
    case CommOp::kReduce: return "reduce";
    case CommOp::kExtension: return "extension";
  }
  return "unknown";
}

std::uint64_t CommStats::total_calls() const {
  std::uint64_t total = 0;
  for (const auto& s : ops) total += s.calls;
  return total;
}

std::uint64_t CommStats::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : ops) total += s.bytes_sent;
  return total;
}

std::uint64_t CommStats::total_bytes_received() const {
  std::uint64_t total = 0;
  for (const auto& s : ops) total += s.bytes_received;
  return total;
}

double CommStats::total_wait_seconds() const {
  double total = 0.0;
  for (const auto& s : ops) total += s.wait_seconds;
  return total;
}

CommStats& CommStats::operator+=(const CommStats& other) {
  for (std::size_t i = 0; i < kNumCommOps; ++i) ops[i] += other.ops[i];
  return *this;
}

}  // namespace trinity::simpi
