#pragma once
// One-sided operations (the MPI-3 RMA analogue).
//
// The paper's future work proposes "a dynamic partitioning strategy to
// reduce this load imbalance" (Section V.A). The canonical MPI
// implementation is a shared work counter advanced with MPI_Fetch_and_op
// on a window exposed by rank 0; simpi models exactly that: named global
// counters living on the world, advanced atomically by any rank, each
// access charged one round trip of the communication cost model.

#include <cstdint>

#include "simpi/context.hpp"

namespace trinity::simpi {

/// A handle to a world-global 64-bit counter (an MPI_Win + MPI_Fetch_and_op
/// stand-in). Counters are created on first use and start at 0; they are
/// identified by a small integer id chosen by the application.
class SharedCounter {
 public:
  /// Binds counter `id` in the context's world. Ids are application-scoped;
  /// reusing an id across algorithm phases requires a reset() in between
  /// (collectively, or by one rank while others are quiescent).
  SharedCounter(Context& ctx, int id);

  /// Atomically adds `delta` and returns the PREVIOUS value
  /// (MPI_Fetch_and_op with MPI_SUM). Charges one RMA round trip.
  std::uint64_t fetch_add(std::uint64_t delta = 1);

  /// Reads the current value without modifying it. Charges one round trip.
  [[nodiscard]] std::uint64_t load();

  /// Resets the counter to `value`. NOT collective; callers must ensure no
  /// concurrent fetch_add is in flight (e.g. reset between barriers).
  void reset(std::uint64_t value = 0);

 private:
  Context& ctx_;
  int id_;
};

}  // namespace trinity::simpi
