#pragma once
// A counting pool of simulated ranks shared between concurrent pipelines.
//
// The paper gets one cluster and runs one assembly on it; the serving layer
// (src/serve) multiplexes many assemblies over the same simulated machine.
// Each simpi world is a burst of `nranks` threads, so the resource being
// rationed is simply "how many ranks may be live at once". RankPool is the
// monitor that enforces that: a job leases its rank count before calling
// simpi::run and releases it when the world finishes, and the serve
// scheduler keys its dispatch decisions off `available()`.
//
// The pool deliberately knows nothing about jobs, tenants, or priorities —
// those live in serve::JobServer. It is a plain counting semaphore with a
// non-blocking probe (the scheduler never blocks inside the pool; it
// re-plans when capacity frees up) plus a blocking lease for simple
// clients, and an RAII lease so worker threads cannot leak ranks on an
// exception path.

#include <condition_variable>
#include <mutex>

namespace trinity::simpi {

class RankPool;

/// RAII ownership of `count()` leased ranks. Movable, not copyable;
/// releases on destruction. A default-constructed (or moved-from) lease
/// owns nothing.
class RankLease {
 public:
  RankLease() = default;
  RankLease(RankPool* pool, int count) : pool_(pool), count_(count) {}
  ~RankLease() { release(); }
  RankLease(const RankLease&) = delete;
  RankLease& operator=(const RankLease&) = delete;
  RankLease(RankLease&& other) noexcept : pool_(other.pool_), count_(other.count_) {
    other.pool_ = nullptr;
    other.count_ = 0;
  }
  RankLease& operator=(RankLease&& other) noexcept;

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] bool owns() const { return pool_ != nullptr && count_ > 0; }

  /// Returns the ranks to the pool early. Idempotent.
  void release();

 private:
  RankPool* pool_ = nullptr;
  int count_ = 0;
};

/// Thread-safe counting pool of `total` ranks.
class RankPool {
 public:
  /// `total` must be >= 1; throws std::invalid_argument otherwise.
  explicit RankPool(int total);

  [[nodiscard]] int total() const { return total_; }
  /// Ranks not currently leased. Advisory under concurrency: another
  /// thread may lease between the read and a subsequent try_lease.
  [[nodiscard]] int available() const;

  /// Non-blocking: leases `count` ranks if they are free right now.
  /// Returns an empty lease when they are not. Requests larger than the
  /// pool can never succeed; throws std::invalid_argument so the caller's
  /// admission layer rejects them instead of spinning forever.
  [[nodiscard]] RankLease try_lease(int count);

  /// Blocks until `count` ranks are free, then leases them.
  /// Same validation as try_lease.
  [[nodiscard]] RankLease lease(int count);

 private:
  friend class RankLease;
  void check_request(int count) const;
  void release(int count);

  const int total_;
  mutable std::mutex mutex_;
  std::condition_variable freed_;
  int leased_ = 0;  // guarded by mutex_
};

}  // namespace trinity::simpi
