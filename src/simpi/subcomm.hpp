#pragma once
// Sub-communicators (the MPI_Comm_split analogue).
//
// Production hybrid codes split the world to localize collectives — e.g.
// pooling welds only among the ranks holding a genome partition. SubComm
// provides that: a collective split by color, then group-local barrier,
// broadcast and allgatherv implemented over the parent context's
// point-to-point layer. Like every simpi collective, group operations must
// be entered by all group members in the same program order.

#include <cstring>
#include <span>
#include <vector>

#include "simpi/context.hpp"

namespace trinity::simpi {

/// A communicator over the subset of world ranks that passed the same
/// color to split(). Sub-ranks are ordered by (key, world rank).
class SubComm {
 public:
  /// Collective over the whole world: every rank must call it. Returns
  /// this rank's group view.
  static SubComm split(Context& ctx, int color, int key = 0);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] int color() const { return color_; }
  /// World rank of group member `subrank`.
  [[nodiscard]] int world_rank_of(int subrank) const {
    return members_.at(static_cast<std::size_t>(subrank));
  }

  /// Group barrier.
  void barrier();

  /// Group broadcast from group-rank `root`.
  template <typename T>
  void bcast(std::vector<T>& data, int root);

  /// Group allgatherv: concatenation in group-rank order on every member.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& local);

 private:
  SubComm(Context& ctx, int color, std::vector<int> members, int rank)
      : ctx_(&ctx), color_(color), members_(std::move(members)), rank_(rank) {}

  static constexpr int kTag = -7;  // reserved; ordering discipline applies

  Context* ctx_;
  int color_;
  std::vector<int> members_;  // world ranks, group order
  int rank_;
};

template <typename T>
void SubComm::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      ctx_->internal_send(world_rank_of(r), kTag, std::as_bytes(std::span<const T>(data)));
    }
  } else {
    const Message msg = ctx_->internal_recv(world_rank_of(root), kTag);
    data.resize(msg.payload.size() / sizeof(T));
    std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
  }
  ctx_->charge(ctx_->cost_model().collective_cost(size(), data.size() * sizeof(T)));
}

template <typename T>
std::vector<T> SubComm::allgatherv(const std::vector<T>& local) {
  static_assert(std::is_trivially_copyable_v<T>);
  // Gather at group rank 0, then group-broadcast the concatenation.
  std::vector<T> flat;
  if (rank_ == 0) {
    flat = local;
    for (int r = 1; r < size(); ++r) {
      const Message msg = ctx_->internal_recv(world_rank_of(r), kTag);
      const std::size_t old = flat.size();
      flat.resize(old + msg.payload.size() / sizeof(T));
      std::memcpy(flat.data() + old, msg.payload.data(), msg.payload.size());
    }
  } else {
    ctx_->internal_send(world_rank_of(0), kTag, std::as_bytes(std::span<const T>(local)));
  }
  bcast(flat, 0);
  return flat;
}

}  // namespace trinity::simpi
