#pragma once
// Nonblocking point-to-point (the MPI_Isend / MPI_Irecv / MPI_Wait subset)
// and scatterv / alltoallv collectives.
//
// The paper's master/slave ReadsToTranscripts prototype is a textbook
// producer/consumer that real codes overlap with nonblocking sends; and
// the weld pooling after loop 1 is an alltoallv in disguise when ranks
// only need the welds matching their own contigs. These primitives round
// out the simpi substrate so such variants can be written and compared.
//
// Simpi sends are buffered (the payload is copied into the destination
// mailbox immediately), so an Isend completes at once; Irecv completion is
// the interesting case and is implemented by polling the mailbox.

#include <memory>
#include <optional>
#include <vector>

#include "simpi/context.hpp"

namespace trinity::simpi {

/// Handle for a pending nonblocking receive (sends complete immediately in
/// the buffered model, so only receives need a handle).
class RecvRequest {
 public:
  RecvRequest(Context& ctx, int source, int tag)
      : ctx_(&ctx), source_(source), tag_(tag) {}

  /// True when a matching message has arrived (does not consume it).
  [[nodiscard]] bool test() const;

  /// Blocks until the message arrives and returns it. May be called once.
  Message wait();

 private:
  Context* ctx_;
  int source_;
  int tag_;
  bool done_ = false;
};

/// Posts a nonblocking receive for (source, tag).
RecvRequest irecv(Context& ctx, int source, int tag);

/// Buffered "nonblocking" send: identical to Context::send_bytes (which
/// already returns after buffering), provided for symmetry so ported MPI
/// code reads naturally.
void isend_bytes(Context& ctx, int dest, int tag, std::span<const std::byte> bytes);

/// Nonblocking allgatherv: the communication/computation-overlap primitive
/// the overlapped weld pooling uses. Construction *starts* the collective —
/// every rank posts its contribution to every peer immediately (sends are
/// buffered, so construction never blocks) — and the caller is free to
/// compute while peers' contributions arrive; wait() then assembles the
/// rank-ordered concatenation, exactly Context::allgatherv's result.
///
/// Accounting matches the blocking collective's logical kAllgatherv row
/// (one call, contribution counted as sent, pooled result as received,
/// residual blocked wall time in wait_seconds with "allgatherv.wait" trace
/// spans); the raw transfers count under kExtension like every nonblocking
/// primitive. The modeled collective cost is charged at wait(), minus
/// `overlapped_seconds` of compute the caller performed while the transfer
/// was in flight (clamped at zero) — that credit is the overlap.
///
/// Collective: every rank must construct and wait in the same program
/// order. Concurrent in-flight requests need distinct channels (each
/// channel reserves one negative tag); two requests on one channel stay
/// correct only if waited in construction order (FIFO mailbox matching).
template <typename T>
class IAllgatherv {
 public:
  IAllgatherv(Context& ctx, std::vector<T> local, int channel = 0);
  IAllgatherv(const IAllgatherv&) = delete;
  IAllgatherv& operator=(const IAllgatherv&) = delete;

  /// Blocks until every peer's contribution has arrived and returns the
  /// concatenation in rank order. May be called once. `counts_out`, when
  /// non-null, receives each rank's element count.
  std::vector<T> wait(double overlapped_seconds = 0.0,
                      std::vector<std::size_t>* counts_out = nullptr);

 private:
  Context* ctx_;
  std::vector<T> local_;
  int tag_;
  bool done_ = false;
};

/// Nonblocking alltoallv, mirroring IAllgatherv: construction posts every
/// destination part immediately (buffered sends, never blocks) and the
/// caller computes while the owner-addressed parts are in flight; wait()
/// assembles the received parts indexed by source rank, exactly
/// Context::alltoallv's result. Accounting matches the blocking
/// collective's kAlltoallv row (one call, the full send matrix row as
/// sent, the receive row as received, residual blocked wall in
/// wait_seconds with "alltoallv.wait" trace spans); the raw transfers
/// count under kExtension like every nonblocking primitive. The modeled
/// collective cost is charged at wait(), minus `overlapped_seconds`
/// (clamped at zero). Collective: every rank must construct and wait in
/// the same program order; concurrent in-flight requests need distinct
/// channels.
template <typename T>
class IAlltoallv {
 public:
  IAlltoallv(Context& ctx, std::vector<std::vector<T>> send_parts, int channel = 0);
  IAlltoallv(const IAlltoallv&) = delete;
  IAlltoallv& operator=(const IAlltoallv&) = delete;

  /// Blocks until every peer's part has arrived and returns the parts
  /// indexed by source rank. May be called once.
  std::vector<std::vector<T>> wait(double overlapped_seconds = 0.0);

 private:
  Context* ctx_;
  std::vector<T> own_part_;
  std::size_t sent_bytes_ = 0;
  int tag_;
  bool done_ = false;
};

/// Scatterv: the root sends parts[r] to each rank r and returns parts[root]
/// locally; every other rank returns its received part. `parts` is ignored
/// at non-roots.
template <typename T>
std::vector<T> scatterv(Context& ctx, const std::vector<std::vector<T>>& parts, int root);

/// Alltoallv: send_parts[r] goes to rank r; returns the size()-long vector
/// of parts received, indexed by source rank. This is the library-extension
/// variant (counted under kExtension, no fault point or dedicated trace
/// span); application code should prefer the first-class
/// Context::alltoallv, which has its own CommStats row, wait attribution,
/// and fault-injection hook.
template <typename T>
std::vector<std::vector<T>> alltoallv(Context& ctx,
                                      const std::vector<std::vector<T>>& send_parts);

// --- template implementations ---------------------------------------------------

namespace detail {
inline constexpr int kTagScatter = -5;
inline constexpr int kTagAlltoall = -6;
/// Channel c of an in-flight IAllgatherv uses tag kTagIallgatherv - c, so
/// the nonblocking channels extend the reserved negative range downward.
inline constexpr int kTagIallgatherv = -7;
}  // namespace detail

template <typename T>
IAllgatherv<T>::IAllgatherv(Context& ctx, std::vector<T> local, int channel)
    : ctx_(&ctx), local_(std::move(local)), tag_(detail::kTagIallgatherv - channel) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (channel < 0) throw std::invalid_argument("IAllgatherv: channel must be >= 0");
  auto& row = ctx.extension_op_stats(CommOp::kAllgatherv);
  ++row.calls;
  row.bytes_sent += local_.size() * sizeof(T);
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    ctx.internal_send(r, tag_, std::as_bytes(std::span<const T>(local_)));
  }
}

template <typename T>
std::vector<T> IAllgatherv<T>::wait(double overlapped_seconds,
                                    std::vector<std::size_t>* counts_out) {
  if (done_) throw std::logic_error("IAllgatherv: wait() called twice");
  done_ = true;
  Context& ctx = *ctx_;
  trace::SpanScope span("iallgatherv.wait", trace::kCatSimpi);
  if (span) span.arg("overlapped_s", overlapped_seconds);
  std::vector<std::vector<T>> parts(static_cast<std::size_t>(ctx.size()));
  parts[static_cast<std::size_t>(ctx.rank())] = std::move(local_);
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    const Message msg = ctx.internal_recv_as(CommOp::kAllgatherv, r, tag_);
    auto& slot = parts[static_cast<std::size_t>(r)];
    slot.resize(msg.payload.size() / sizeof(T));
    std::memcpy(slot.data(), msg.payload.data(), msg.payload.size());
  }
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<T> flat;
  flat.reserve(total);
  if (counts_out) counts_out->clear();
  for (const auto& p : parts) {
    if (counts_out) counts_out->push_back(p.size());
    flat.insert(flat.end(), p.begin(), p.end());
  }
  // The logical row counts the full pooled result as received, like the
  // blocking collective; remote bytes were added by internal_recv_as, so
  // only the local contribution is still missing.
  ctx.extension_op_stats(CommOp::kAllgatherv).bytes_received +=
      parts[static_cast<std::size_t>(ctx.rank())].size() * sizeof(T);
  const double modeled = ctx.cost_model().collective_cost(ctx.size(), total * sizeof(T));
  ctx.charge(modeled > overlapped_seconds ? modeled - overlapped_seconds : 0.0);
  return flat;
}

template <typename T>
IAlltoallv<T>::IAlltoallv(Context& ctx, std::vector<std::vector<T>> send_parts, int channel)
    : ctx_(&ctx), tag_(detail::kTagIalltoallv - channel) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (channel < 0) throw std::invalid_argument("IAlltoallv: channel must be >= 0");
  if (send_parts.size() != static_cast<std::size_t>(ctx.size())) {
    throw std::invalid_argument("IAlltoallv: need one part per destination rank");
  }
  for (const auto& part : send_parts) sent_bytes_ += part.size() * sizeof(T);
  auto& row = ctx.extension_op_stats(CommOp::kAlltoallv);
  ++row.calls;
  row.bytes_sent += sent_bytes_;
  for (int r = 0; r < ctx.size(); ++r) {
    const auto& part = send_parts[static_cast<std::size_t>(r)];
    if (r == ctx.rank()) continue;
    ctx.internal_send(r, tag_, std::as_bytes(std::span<const T>(part)));
  }
  own_part_ = std::move(send_parts[static_cast<std::size_t>(ctx.rank())]);
}

template <typename T>
std::vector<std::vector<T>> IAlltoallv<T>::wait(double overlapped_seconds) {
  if (done_) throw std::logic_error("IAlltoallv: wait() called twice");
  done_ = true;
  Context& ctx = *ctx_;
  trace::SpanScope span("ialltoallv.wait", trace::kCatSimpi);
  if (span) span.arg("overlapped_s", overlapped_seconds);
  std::vector<std::vector<T>> received(static_cast<std::size_t>(ctx.size()));
  received[static_cast<std::size_t>(ctx.rank())] = std::move(own_part_);
  std::size_t recv_bytes =
      received[static_cast<std::size_t>(ctx.rank())].size() * sizeof(T);
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    const Message msg = ctx.internal_recv_as(CommOp::kAlltoallv, r, tag_);
    auto& slot = received[static_cast<std::size_t>(r)];
    slot.resize(msg.payload.size() / sizeof(T));
    if (!msg.payload.empty()) {
      std::memcpy(slot.data(), msg.payload.data(), msg.payload.size());
    }
    recv_bytes += msg.payload.size();
  }
  // Remote bytes were counted by internal_recv_as; add the own part so the
  // logical row matches the blocking collective exactly.
  ctx.extension_op_stats(CommOp::kAlltoallv).bytes_received +=
      received[static_cast<std::size_t>(ctx.rank())].size() * sizeof(T);
  const double modeled =
      ctx.cost_model().collective_cost(ctx.size(), sent_bytes_ + recv_bytes);
  ctx.charge(modeled > overlapped_seconds ? modeled - overlapped_seconds : 0.0);
  return received;
}

template <typename T>
std::vector<T> scatterv(Context& ctx, const std::vector<std::vector<T>>& parts, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<T> mine;
  std::size_t total_bytes = 0;
  if (ctx.rank() == root) {
    if (parts.size() != static_cast<std::size_t>(ctx.size())) {
      throw std::invalid_argument("scatterv: need one part per rank at the root");
    }
    for (int r = 0; r < ctx.size(); ++r) {
      const auto& part = parts[static_cast<std::size_t>(r)];
      total_bytes += part.size() * sizeof(T);
      if (r == root) {
        mine = part;
      } else {
        ctx.internal_send(r, detail::kTagScatter, std::as_bytes(std::span<const T>(part)));
      }
    }
  } else {
    const Message msg = ctx.internal_recv(root, detail::kTagScatter);
    mine.resize(msg.payload.size() / sizeof(T));
    std::memcpy(mine.data(), msg.payload.data(), msg.payload.size());
    total_bytes = msg.payload.size();
  }
  ctx.charge(ctx.cost_model().collective_cost(ctx.size(), total_bytes));
  return mine;
}

template <typename T>
std::vector<std::vector<T>> alltoallv(Context& ctx,
                                      const std::vector<std::vector<T>>& send_parts) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (send_parts.size() != static_cast<std::size_t>(ctx.size())) {
    throw std::invalid_argument("alltoallv: need one part per destination rank");
  }
  std::size_t sent_bytes = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    const auto& part = send_parts[static_cast<std::size_t>(r)];
    sent_bytes += part.size() * sizeof(T);
    if (r == ctx.rank()) continue;
    ctx.internal_send(r, detail::kTagAlltoall, std::as_bytes(std::span<const T>(part)));
  }
  std::vector<std::vector<T>> received(static_cast<std::size_t>(ctx.size()));
  received[static_cast<std::size_t>(ctx.rank())] =
      send_parts[static_cast<std::size_t>(ctx.rank())];
  std::size_t recv_bytes = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    if (r == ctx.rank()) continue;
    const Message msg = ctx.internal_recv(r, detail::kTagAlltoall);
    auto& slot = received[static_cast<std::size_t>(r)];
    slot.resize(msg.payload.size() / sizeof(T));
    std::memcpy(slot.data(), msg.payload.data(), msg.payload.size());
    recv_bytes += msg.payload.size();
  }
  ctx.charge(ctx.cost_model().collective_cost(ctx.size(), sent_bytes + recv_bytes));
  return received;
}

}  // namespace trinity::simpi
