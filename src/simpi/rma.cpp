#include "simpi/rma.hpp"

namespace trinity::simpi {

SharedCounter::SharedCounter(Context& ctx, int id) : ctx_(ctx), id_(id) {
  // Touch the counter so creation cost is paid up front.
  (void)ctx_.world_counter(id_);
}

std::uint64_t SharedCounter::fetch_add(std::uint64_t delta) {
  const std::uint64_t prev =
      ctx_.world_counter(id_).fetch_add(delta, std::memory_order_relaxed);
  // One RMA round trip to the window's host rank.
  ctx_.charge(2.0 * ctx_.cost_model().latency_seconds);
  return prev;
}

std::uint64_t SharedCounter::load() {
  const std::uint64_t v = ctx_.world_counter(id_).load(std::memory_order_relaxed);
  ctx_.charge(2.0 * ctx_.cost_model().latency_seconds);
  return v;
}

void SharedCounter::reset(std::uint64_t value) {
  ctx_.world_counter(id_).store(value, std::memory_order_relaxed);
  ctx_.charge(2.0 * ctx_.cost_model().latency_seconds);
}

}  // namespace trinity::simpi
