#pragma once
// Collective file output (the MPI-I/O analogue).
//
// The paper's conclusions list "exploring MPI-I/O for RNA-Seq data" as an
// active direction; the concrete pain point is ReadsToTranscripts writing
// one file per rank and having the master concatenate them. This helper is
// the MPI_File_write_at_all equivalent: every rank passes its local bytes,
// sizes are allgathered, offsets computed in rank order, and each rank
// writes its slice directly into the shared file.

#include <string>
#include <string_view>

#include "simpi/context.hpp"

namespace trinity::simpi {

/// Collectively writes each rank's `local_data` into `path` in rank order.
/// Must be called by every rank. The resulting file equals the rank-order
/// concatenation of all contributions. Throws io::IoError on I/O failure
/// (which aborts the world, like an MPI-I/O error would); the message names
/// the failing rank and its byte slice, and after the collective every rank
/// verifies the file length matches the summed contributions.
void write_file_ordered(Context& ctx, const std::string& path, std::string_view local_data);

}  // namespace trinity::simpi
