#pragma once
// Per-rank message mailbox: the delivery fabric under simpi's point-to-point
// operations. Each rank owns one Mailbox; deliver() from any thread
// enqueues, receive() blocks until a message matching (source, tag) arrives.
// Messages from a given (source, tag) pair are delivered in send order,
// matching the MPI non-overtaking guarantee.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace trinity::simpi {

/// Wildcard source for receive(), mirroring MPI_ANY_SOURCE.
inline constexpr int kAnySource = -1;

/// A delivered message: its envelope plus the payload bytes.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Thrown out of a blocked receive() when the world is torn down.
class MailboxAborted : public std::runtime_error {
 public:
  MailboxAborted() : std::runtime_error("mailbox aborted") {}
};

/// Thread-safe FIFO mailbox with (source, tag) matching and cooperative
/// abort. `abort_flag` may be null (no abort support) or point at a flag
/// owned by the enclosing world; when it becomes true, wake_for_abort()
/// unblocks all waiting receivers with MailboxAborted.
class Mailbox {
 public:
  explicit Mailbox(const std::atomic<bool>* abort_flag = nullptr)
      : abort_flag_(abort_flag) {}

  /// Enqueues a message; wakes any matching receiver.
  void deliver(Message msg);

  /// Blocks until a message with matching source (or kAnySource) and tag is
  /// available, then removes and returns it. Among matching messages the
  /// earliest-delivered wins. Throws MailboxAborted when the abort flag is
  /// raised while waiting.
  Message receive(int source, int tag);

  /// Non-blocking probe: true when receive(source, tag) would not block.
  [[nodiscard]] bool has_match(int source, int tag);

  /// Number of queued (undelivered) messages; used by shutdown sanity checks.
  [[nodiscard]] std::size_t pending();

  /// Wakes all blocked receivers so they can observe the abort flag.
  void wake_for_abort();

 private:
  bool matches(const Message& m, int source, int tag) const {
    return (source == kAnySource || m.source == source) && m.tag == tag;
  }
  bool aborted() const {
    return abort_flag_ != nullptr && abort_flag_->load(std::memory_order_acquire);
  }

  const std::atomic<bool>* abort_flag_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace trinity::simpi
