#include "simpi/fault.hpp"

namespace trinity::simpi {

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::kNone: return "none";
    case FaultOp::kBarrier: return "barrier";
    case FaultOp::kBcast: return "bcast";
    case FaultOp::kGatherv: return "gatherv";
    case FaultOp::kAllgatherv: return "allgatherv";
    case FaultOp::kAlltoallv: return "alltoallv";
    case FaultOp::kReduce: return "reduce";
    case FaultOp::kSend: return "send";
    case FaultOp::kRecv: return "recv";
  }
  return "unknown";
}

FaultOp fault_op_from_string(std::string_view name) {
  for (const FaultOp op :
       {FaultOp::kBarrier, FaultOp::kBcast, FaultOp::kGatherv, FaultOp::kAllgatherv,
        FaultOp::kAlltoallv, FaultOp::kReduce, FaultOp::kSend, FaultOp::kRecv}) {
    if (name == to_string(op)) return op;
  }
  throw std::invalid_argument("unknown fault op: " + std::string(name));
}

void FaultPlan::arm() {
  if (!fires_remaining) {
    fires_remaining = std::make_shared<std::atomic<int>>(max_fires);
  }
}

bool FaultPlan::consume_fire() const {
  if (!fires_remaining) return false;
  // Decrement-if-positive: concurrent fire attempts (victim rank only, but
  // be safe) never push the budget negative.
  int current = fires_remaining->load(std::memory_order_relaxed);
  while (current > 0) {
    if (fires_remaining->compare_exchange_weak(current, current - 1,
                                               std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

}  // namespace trinity::simpi
