#pragma once
// Communication cost model for the simulated cluster.
//
// The paper ran on the "Blue Wonder" iDataPlex cluster (FDR InfiniBand era).
// Because our ranks are threads in one process, message transfer is a
// memcpy; to reproduce the paper's *distributed* cost shape we charge each
// operation with a classic alpha-beta model: latency per message plus bytes
// over bandwidth, with log2(P) latency factors for tree-style collectives.
// The charged time accumulates on each rank's virtual clock and is reported
// alongside measured per-rank CPU time.

#include <cstddef>

namespace trinity::simpi {

/// Alpha–beta communication cost model.
struct CommCostModel {
  /// Per-message latency (alpha), seconds. Default approximates an
  /// InfiniBand-class interconnect of the paper's vintage.
  double latency_seconds = 2e-6;
  /// Link bandwidth (1/beta), bytes per second.
  double bandwidth_bytes_per_second = 4.0e9;

  /// Cost of one point-to-point message of `bytes`.
  [[nodiscard]] double p2p_cost(std::size_t bytes) const {
    return latency_seconds + static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// Cost of a tree-structured collective over `nranks` ranks moving
  /// `total_bytes` through each rank (e.g. allgatherv result size).
  [[nodiscard]] double collective_cost(int nranks, std::size_t total_bytes) const;

  /// Cost charged to every rank for a barrier over `nranks` ranks.
  [[nodiscard]] double barrier_cost(int nranks) const;
};

}  // namespace trinity::simpi
