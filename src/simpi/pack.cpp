#include "simpi/pack.hpp"

namespace trinity::simpi {

namespace {

void append_u64(std::vector<std::byte>& buf, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(v));
}

std::uint64_t read_u64(const std::vector<std::byte>& buf, std::size_t& pos) {
  if (pos + sizeof(std::uint64_t) > buf.size()) {
    throw std::runtime_error("pack: truncated length prefix");
  }
  std::uint64_t v = 0;
  std::memcpy(&v, buf.data() + pos, sizeof(v));
  pos += sizeof(v);
  return v;
}

// Unpacks one pack_strings() frame starting at `pos`, appending to `out`.
void unpack_frame(const std::vector<std::byte>& buf, std::size_t& pos,
                  std::vector<std::string>& out) {
  const std::uint64_t count = read_u64(buf, pos);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = read_u64(buf, pos);
    if (pos + len > buf.size()) throw std::runtime_error("pack: truncated string payload");
    out.emplace_back(reinterpret_cast<const char*>(buf.data() + pos),
                     static_cast<std::size_t>(len));
    pos += len;
  }
}

}  // namespace

std::vector<std::byte> pack_strings(const std::vector<std::string>& strings) {
  std::size_t total = sizeof(std::uint64_t);
  for (const auto& s : strings) total += sizeof(std::uint64_t) + s.size();
  std::vector<std::byte> buf;
  buf.reserve(total);
  append_u64(buf, strings.size());
  for (const auto& s : strings) {
    append_u64(buf, s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buf.insert(buf.end(), p, p + s.size());
  }
  return buf;
}

std::vector<std::string> unpack_strings(const std::vector<std::byte>& buffer) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  unpack_frame(buffer, pos, out);
  if (pos != buffer.size()) throw std::runtime_error("pack: trailing bytes after frame");
  return out;
}

std::vector<std::string> unpack_string_pool(const std::vector<std::byte>& buffer) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < buffer.size()) unpack_frame(buffer, pos, out);
  return out;
}

}  // namespace trinity::simpi
