#include "simpi/mailbox.hpp"

#include <algorithm>

namespace trinity::simpi {

void Mailbox::deliver(Message msg) {
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

Message Mailbox::receive(int source, int tag) {
  std::unique_lock lock(mu_);
  for (;;) {
    const auto it = std::find_if(queue_.begin(), queue_.end(),
                                 [&](const Message& m) { return matches(m, source, tag); });
    if (it != queue_.end()) {
      Message out = std::move(*it);
      queue_.erase(it);
      return out;
    }
    if (aborted()) throw MailboxAborted();
    cv_.wait(lock);
  }
}

bool Mailbox::has_match(int source, int tag) {
  std::scoped_lock lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [&](const Message& m) { return matches(m, source, tag); });
}

std::size_t Mailbox::pending() {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void Mailbox::wake_for_abort() { cv_.notify_all(); }

}  // namespace trinity::simpi
