#pragma once
// Packing of variable-length data into flat buffers for communication.
//
// Section III.B of the paper: "the vector of the subsequences are packed
// into a single sequence for MPI communication" (loop 1, weld strings) and
// "the integer values for pairing indices are packed into a single integer
// array" (loop 2). These helpers implement exactly that framing: a
// length-prefixed concatenation for strings, and trivially copyable arrays
// pass through Context's typed send/allgatherv directly.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace trinity::simpi {

/// Packs strings into one byte buffer: u64 count, then per string a u64
/// length followed by the raw characters.
std::vector<std::byte> pack_strings(const std::vector<std::string>& strings);

/// Inverse of pack_strings. Throws std::runtime_error on a malformed buffer
/// (truncated length prefix or payload).
std::vector<std::string> unpack_strings(const std::vector<std::byte>& buffer);

/// Unpacks a buffer that is the concatenation of several pack_strings()
/// buffers laid end to end (the shape produced by allgatherv over packed
/// per-rank buffers), appending all strings in order.
std::vector<std::string> unpack_string_pool(const std::vector<std::byte>& buffer);

}  // namespace trinity::simpi
