#include "simpi/cost_model.hpp"

#include <cmath>

namespace trinity::simpi {

namespace {
int ceil_log2(int n) {
  int levels = 0;
  int span = 1;
  while (span < n) {
    span *= 2;
    ++levels;
  }
  return levels;
}
}  // namespace

double CommCostModel::collective_cost(int nranks, std::size_t total_bytes) const {
  if (nranks <= 1) return 0.0;
  const int levels = ceil_log2(nranks);
  return static_cast<double>(levels) * latency_seconds +
         static_cast<double>(total_bytes) / bandwidth_bytes_per_second;
}

double CommCostModel::barrier_cost(int nranks) const {
  if (nranks <= 1) return 0.0;
  return 2.0 * static_cast<double>(ceil_log2(nranks)) * latency_seconds;
}

}  // namespace trinity::simpi
