#pragma once
// Rank fault injection for the simpi substrate.
//
// Validating checkpoint/restart needs a way to make a rank die the way
// real MPI jobs die: mid-collective, while every other rank is blocked on
// it. A FaultPlan designates one victim rank and a trigger — the Nth entry
// into a given operation, or the first simpi call after K virtual seconds
// — and the victim throws RankFaultError at that point. The world then
// aborts exactly as it does for any rank failure: every other rank's
// blocked call raises AbortedError instead of deadlocking, and
// simpi::run() rethrows the RankFaultError as the root cause.
//
// The fire budget (max_fires, default 1) is shared by every copy of the
// plan, so a retry driver that re-launches the stage with the same plan
// sees the fault exactly once — the transient-failure model. Set max_fires
// high to model a persistent fault and exercise retry exhaustion.

#include <atomic>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace trinity::simpi {

/// Operations a fault can be attached to. Collective entries count per
/// operation per rank; note the layered collectives (allgatherv runs on
/// gatherv + bcast, allreduce on allgatherv) also advance their inner
/// operations' counters.
enum class FaultOp : int {
  kNone = 0,
  kBarrier,
  kBcast,
  kGatherv,
  kAllgatherv,
  kAlltoallv,
  kReduce,  ///< the allreduce family
  kSend,
  kRecv,
};

inline constexpr std::size_t kNumFaultOps = 9;

[[nodiscard]] const char* to_string(FaultOp op);

/// Parses a FaultOp name ("barrier", "bcast", "gatherv", "allgatherv",
/// "alltoallv", "reduce", "send", "recv"); throws std::invalid_argument on
/// anything else. Used by the CLI flags of the examples and benches.
[[nodiscard]] FaultOp fault_op_from_string(std::string_view name);

/// Thrown by the victim rank when its fault fires. Deliberately NOT
/// derived from AbortedError: run() must report it as the root cause, not
/// discard it as a secondary wake-up.
class RankFaultError : public std::runtime_error {
 public:
  explicit RankFaultError(const std::string& what) : std::runtime_error(what) {}
};

/// An injected-fault schedule for one world. Default-constructed plans are
/// disabled and cost one predicted branch per simpi call.
struct FaultPlan {
  int rank = -1;                        ///< victim rank; -1 disables the plan
  FaultOp op = FaultOp::kNone;          ///< operation the trigger counts
  int at_entry = 1;                     ///< fire on the Nth entry (1-based)
  double after_virtual_seconds = -1.0;  ///< alternative trigger; < 0 disables
  int max_fires = 1;                    ///< total fires across world launches

  [[nodiscard]] bool enabled() const {
    return rank >= 0 && (op != FaultOp::kNone || after_virtual_seconds >= 0.0);
  }

  /// Allocates the shared fire budget. Idempotent; called automatically
  /// when a World adopts the plan, but a retry driver that wants
  /// once-across-relaunches semantics must arm its own copy first and pass
  /// that same copy to every launch.
  void arm();

  /// Consumes one fire. False when the budget is exhausted (the fault
  /// already happened) or the plan was never armed and is disabled.
  [[nodiscard]] bool consume_fire() const;

  /// Shared across copies so re-launching with the same plan does not
  /// re-fire a transient fault.
  std::shared_ptr<std::atomic<int>> fires_remaining;
};

}  // namespace trinity::simpi
