#pragma once
// simpi: a simulated MPI subset.
//
// The paper's hybrid Chrysalis uses MPI across nodes with OpenMP threads
// inside each node. No MPI implementation is available in this environment,
// so simpi provides the substitution: each rank is a thread with a private
// logical address space (nothing is shared between ranks except through
// simpi calls), point-to-point messages go through per-rank mailboxes with
// MPI matching semantics, and the collectives used by the paper's code
// (Barrier, Bcast, Gatherv, Allgatherv, Reduce/Allreduce) are implemented
// on top of point-to-point transfers.
//
// Because ranks share a 2-core host, wall time cannot demonstrate scaling.
// Instead each rank carries a virtual clock: measured thread-CPU time for
// compute, plus modeled communication time from CommCostModel. Benchmark
// reporters use max/min over per-rank virtual times — exactly the
// "processes with the highest/lowest times" curves of Figures 7 and 9.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "simpi/comm_stats.hpp"
#include "simpi/cost_model.hpp"
#include "simpi/fault.hpp"
#include "simpi/mailbox.hpp"
#include "trace/span_recorder.hpp"
#include "util/timer.hpp"

namespace trinity::simpi {

/// Thrown out of blocked simpi calls when another rank failed and the
/// world was aborted (the simulated analogue of MPI_Abort tearing the
/// job down).
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("simpi world aborted by another rank") {}
  explicit AbortedError(const std::string& what) : std::runtime_error(what) {}
};

class World;

/// Per-rank communication endpoint handed to the rank function.
/// All members must be called from the rank's own thread.
class Context {
 public:
  Context(World& world, int rank);
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// This rank's id in [0, size()).
  [[nodiscard]] int rank() const { return rank_; }
  /// Number of ranks in the world.
  [[nodiscard]] int size() const;

  // --- point-to-point -----------------------------------------------------

  /// Sends `bytes` to rank `dest` with `tag` (>= 0). Buffered send: returns
  /// immediately after the payload is copied into the destination mailbox.
  void send_bytes(int dest, int tag, std::span<const std::byte> bytes);

  /// Blocks until a message from `source` (or kAnySource) with `tag`
  /// arrives and returns it. Throws AbortedError if the world aborts.
  Message recv_bytes(int source, int tag);

  /// Typed send of a contiguous array of trivially copyable elements.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, std::as_bytes(data));
  }

  template <typename T>
  void send(int dest, int tag, const std::vector<T>& data) {
    send(dest, tag, std::span<const T>(data));
  }

  /// Typed receive; the payload size must be a multiple of sizeof(T).
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Message msg = recv_bytes(source, tag);
    if (msg.payload.size() % sizeof(T) != 0) {
      throw std::runtime_error("simpi: typed recv size mismatch");
    }
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!msg.payload.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  /// Sends a single value.
  template <typename T>
  void send_value(int dest, int tag, const T& v) {
    send(dest, tag, std::span<const T>(&v, 1));
  }

  /// Receives a single value.
  template <typename T>
  T recv_value(int source, int tag) {
    auto v = recv<T>(source, tag);
    if (v.size() != 1) throw std::runtime_error("simpi: recv_value count mismatch");
    return v[0];
  }

  // --- collectives ----------------------------------------------------------
  // All collectives must be entered by every rank in the same program order.

  /// Blocks until all ranks have entered the barrier.
  void barrier();

  /// Broadcasts `data` from `root` to all ranks (resizing at non-roots).
  template <typename T>
  void bcast(std::vector<T>& data, int root);

  /// Gathers each rank's local vector at `root`. Returns size()-long vector
  /// of per-rank contributions at root, empty vector elsewhere. The
  /// variable-length analogue of MPI_Gatherv.
  template <typename T>
  std::vector<std::vector<T>> gatherv(const std::vector<T>& local, int root);

  /// Allgatherv: every rank receives all ranks' contributions, concatenated
  /// in rank order. Mirrors the paper's pooling of packed weld sequences and
  /// pair-index arrays after each GraphFromFasta loop. `counts_out`, when
  /// non-null, receives each rank's element count.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& local,
                            std::vector<std::size_t>* counts_out = nullptr);

  /// Allgather of a single value per rank.
  template <typename T>
  std::vector<T> allgather(const T& v);

  /// Alltoallv: `send_parts[r]` (one vector per destination rank, own slot
  /// included) is delivered to rank r; returns the size()-long vector of
  /// parts received, indexed by source rank. The owner-computes exchange
  /// primitive: where allgatherv replicates every rank's contribution onto
  /// every rank, alltoallv routes each candidate only to the rank that owns
  /// its key, so the per-rank volume stays O(total/nranks). Counted on the
  /// kAlltoallv row (see simpi/comm_stats.hpp); transfers are direct
  /// point-to-point, so the row is both logical and transport.
  template <typename T>
  std::vector<std::vector<T>> alltoallv(const std::vector<std::vector<T>>& send_parts);

  /// Reduction over one value per rank; result valid on every rank.
  template <typename T>
  T allreduce_sum(T v);
  template <typename T>
  T allreduce_max(T v);
  template <typename T>
  T allreduce_min(T v);

  // --- virtual time and communication accounting ----------------------------

  /// Modeled communication seconds accumulated by this rank so far.
  [[nodiscard]] double comm_seconds() const { return comm_seconds_; }

  /// Per-op call/byte/wait counters accumulated by this rank so far (see
  /// simpi/comm_stats.hpp for the counting semantics). Also returned per
  /// rank in RankResult after run().
  [[nodiscard]] const CommStats& comm_stats() const { return stats_; }

  /// Adds explicitly modeled time (e.g. a charged I/O estimate) to this
  /// rank's communication clock.
  void charge(double seconds) { comm_seconds_ += seconds; }

  /// The world's communication cost model.
  [[nodiscard]] const CommCostModel& cost_model() const;

  /// Access to a world-global atomic counter (used by simpi/rma.hpp's
  /// SharedCounter; prefer that wrapper, which charges RMA costs).
  std::atomic<std::uint64_t>& world_counter(int id);

  /// Non-blocking probe: true when recv_bytes(source, tag) would return
  /// immediately (the MPI_Iprobe analogue).
  [[nodiscard]] bool has_message(int source, int tag);

  /// Library-extension transfers (simpi/nonblocking.hpp collectives,
  /// SubComm, collective file output): uncosted raw send/recv that may use
  /// reserved negative tags. The extension charges its own modeled
  /// collective cost; the transfers are counted under CommOp::kExtension.
  /// Not for application code.
  void internal_send(int dest, int tag, std::span<const std::byte> bytes) {
    auto& ext = stats_.of(CommOp::kExtension);
    ++ext.calls;
    ext.bytes_sent += bytes.size();
    raw_send(dest, tag, bytes);
  }
  Message internal_recv(int source, int tag) {
    ++stats_.of(CommOp::kExtension).calls;
    return waited_recv(source, tag, CommOp::kExtension);
  }

  /// internal_recv variant for extension collectives that *implement* a
  /// built-in op (e.g. nonblocking allgatherv): the transfer still counts
  /// as an extension call, but the blocked wait, received bytes and
  /// "<op>.wait" trace span are attributed to `op`'s row, so an overlapped
  /// collective reports its residual wait exactly where the blocking one
  /// would. Not for application code.
  Message internal_recv_as(CommOp op, int source, int tag) {
    ++stats_.of(CommOp::kExtension).calls;
    return waited_recv(source, tag, op);
  }

  /// Mutable per-op row for extension collectives' logical accounting
  /// (call count, contributed/pooled bytes), mirroring the layered counting
  /// documented in simpi/comm_stats.hpp. Not for application code.
  OpStats& extension_op_stats(CommOp op) { return stats_.of(op); }

 private:
  friend class World;

  // Internal transfers used by collectives: no cost accrual (the collective
  // charges its own modeled cost once).
  void raw_send(int dest, int tag, std::span<const std::byte> bytes);
  Message raw_recv(int source, int tag);

  /// raw_recv plus accounting: the blocked wall time and the payload size
  /// are added to `op`'s wait_seconds / bytes_received. Callers count the
  /// op's own call and any sent bytes themselves. While a WaitAttribution
  /// guard is active, only the *wait* (row and "<op>.wait" span) is
  /// redirected to the guard's op; bytes stay on `op`'s row.
  Message waited_recv(int source, int tag, CommOp op);

  /// Scoped wait re-attribution for layered collectives: the blocking
  /// allgatherv runs on gatherv + bcast, whose transport rows must keep
  /// their calls/bytes (comm_stats.hpp documents the layering), but the
  /// blocked wall belongs to the collective the caller issued — the same
  /// row the nonblocking IAllgatherv charges its residual wait to, so the
  /// two paths' "<op>.wait" numbers compare directly.
  class WaitAttribution {
   public:
    WaitAttribution(Context& ctx, CommOp op) : ctx_(ctx), saved_(ctx.wait_override_) {
      ctx_.wait_override_ = op;
    }
    ~WaitAttribution() { ctx_.wait_override_ = saved_; }
    WaitAttribution(const WaitAttribution&) = delete;
    WaitAttribution& operator=(const WaitAttribution&) = delete;

   private:
    Context& ctx_;
    std::optional<CommOp> saved_;
  };

  /// Fault-injection hook, called on entry to every costed simpi operation.
  /// Counts the entry and throws RankFaultError when this rank is the
  /// world's FaultPlan victim and the trigger condition is met.
  void fault_point(FaultOp op);

  World& world_;
  int rank_;
  double comm_seconds_ = 0.0;
  CommStats stats_;  ///< per-op calls/bytes/wait, exposed via comm_stats()
  std::optional<CommOp> wait_override_;  ///< active WaitAttribution target
  std::array<int, kNumFaultOps> fault_entries_{};  ///< per-op entry counts
  util::ThreadCpuTimer cpu_clock_;  ///< virtual-time base for FaultPlan triggers
};

/// Outcome of one rank's execution under run().
struct RankResult {
  int rank = 0;
  double cpu_seconds = 0.0;   ///< thread CPU time consumed by the rank fn
  double comm_seconds = 0.0;  ///< modeled communication time
  CommStats comm;             ///< per-op calls/bytes/wait (comm_stats.hpp)
  /// Virtual execution time of this rank on the simulated cluster.
  [[nodiscard]] double virtual_seconds() const { return cpu_seconds + comm_seconds; }
};

/// max(virtual_seconds) / mean(virtual_seconds) over a world's ranks — the
/// load-imbalance ratio the run report and figure benches call "skew".
/// 1.0 for perfectly balanced or empty results.
[[nodiscard]] double skew_ratio(const std::vector<RankResult>& results);

/// The set of ranks plus the shared delivery fabric. Normally used through
/// run(); exposed for tests that need fine-grained control.
class World {
 public:
  explicit World(int nranks, CommCostModel model = {}, FaultPlan fault = {});

  [[nodiscard]] int size() const { return static_cast<int>(mailboxes_.size()); }
  [[nodiscard]] const CommCostModel& cost_model() const { return model_; }
  [[nodiscard]] const FaultPlan& fault_plan() const { return fault_; }
  [[nodiscard]] bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Marks the world aborted and wakes all blocked receivers/barriers.
  void abort();

 private:
  friend class Context;

  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }
  void barrier_wait();
  void check_abort() const {
    if (aborted()) throw AbortedError();
  }

  std::atomic<std::uint64_t>& counter(int id);

  CommCostModel model_;
  FaultPlan fault_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex counters_mu_;
  std::map<int, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::atomic<bool> aborted_{false};
};

/// Runs `fn(ctx)` on `nranks` rank threads and returns per-rank results in
/// rank order. If any rank throws, the world is aborted (waking blocked
/// ranks with AbortedError) and the lowest-rank exception is rethrown after
/// all threads join. `fault`, when enabled, injects a rank failure (see
/// simpi/fault.hpp); the injected RankFaultError is rethrown as root cause.
std::vector<RankResult> run(int nranks, const std::function<void(Context&)>& fn,
                            CommCostModel model = {}, FaultPlan fault = {});

// --- template implementations ------------------------------------------------

namespace detail {
/// Collective message tags live in a reserved negative range so they can
/// never collide with user tags (which must be >= 0).
inline constexpr int kTagBcast = -2;
inline constexpr int kTagGather = -3;
inline constexpr int kTagReduce = -4;
/// -5/-6 belong to the scatterv/alltoallv extensions and -7-and-down to the
/// IAllgatherv channels (simpi/nonblocking.hpp). The first-class alltoallv
/// collective lives far below that range, with the nonblocking IAlltoallv
/// channels extending downward from kTagIalltoallv.
inline constexpr int kTagAlltoallv = -40;
inline constexpr int kTagIalltoallv = -41;
}  // namespace detail

template <typename T>
void Context::bcast(std::vector<T>& data, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  trace::SpanScope span("bcast", trace::kCatSimpi);
  if (span) {
    span.arg("bytes", static_cast<double>(data.size() * sizeof(T)));
    span.arg("root", root);
  }
  fault_point(FaultOp::kBcast);
  ++stats_.of(CommOp::kBcast).calls;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      raw_send(r, detail::kTagBcast, std::as_bytes(std::span<const T>(data)));
    }
    stats_.of(CommOp::kBcast).bytes_sent +=
        data.size() * sizeof(T) * static_cast<std::size_t>(size() - 1);
  } else {
    const Message msg = waited_recv(root, detail::kTagBcast, CommOp::kBcast);
    data.resize(msg.payload.size() / sizeof(T));
    if (!msg.payload.empty()) {
      std::memcpy(data.data(), msg.payload.data(), msg.payload.size());
    }
  }
  comm_seconds_ += cost_model().collective_cost(size(), data.size() * sizeof(T));
}

template <typename T>
std::vector<std::vector<T>> Context::gatherv(const std::vector<T>& local, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  trace::SpanScope span("gatherv", trace::kCatSimpi);
  if (span) {
    span.arg("bytes", static_cast<double>(local.size() * sizeof(T)));
    span.arg("root", root);
  }
  fault_point(FaultOp::kGatherv);
  ++stats_.of(CommOp::kGatherv).calls;
  std::size_t total_bytes = local.size() * sizeof(T);
  std::vector<std::vector<T>> out;
  if (rank_ == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = local;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      const Message msg = waited_recv(r, detail::kTagGather, CommOp::kGatherv);
      auto& slot = out[static_cast<std::size_t>(r)];
      slot.resize(msg.payload.size() / sizeof(T));
      if (!msg.payload.empty()) {
        std::memcpy(slot.data(), msg.payload.data(), msg.payload.size());
      }
      total_bytes += msg.payload.size();
    }
  } else {
    raw_send(root, detail::kTagGather, std::as_bytes(std::span<const T>(local)));
    stats_.of(CommOp::kGatherv).bytes_sent += local.size() * sizeof(T);
  }
  comm_seconds_ += cost_model().collective_cost(size(), total_bytes);
  return out;
}

template <typename T>
std::vector<T> Context::allgatherv(const std::vector<T>& local,
                                   std::vector<std::size_t>* counts_out) {
  // Gather at rank 0, then broadcast the concatenation and the counts.
  // The modeled cost is charged inside gatherv/bcast; the kAllgatherv row
  // records the LOGICAL payload (contribution sent, pooled result
  // received), with transport counted by the inner ops. Blocked wall is
  // re-attributed to the allgatherv row (WaitAttribution) so it compares
  // one-to-one with the nonblocking IAllgatherv's residual wait.
  trace::SpanScope span("allgatherv", trace::kCatSimpi);
  if (span) span.arg("bytes", static_cast<double>(local.size() * sizeof(T)));
  fault_point(FaultOp::kAllgatherv);
  ++stats_.of(CommOp::kAllgatherv).calls;
  stats_.of(CommOp::kAllgatherv).bytes_sent += local.size() * sizeof(T);
  const WaitAttribution wait_as_allgatherv(*this, CommOp::kAllgatherv);
  auto parts = gatherv(local, 0);
  std::vector<T> flat;
  std::vector<std::uint64_t> counts;
  if (rank_ == 0) {
    counts.reserve(parts.size());
    std::size_t total = 0;
    for (const auto& p : parts) total += p.size();
    flat.reserve(total);
    for (const auto& p : parts) {
      counts.push_back(p.size());
      flat.insert(flat.end(), p.begin(), p.end());
    }
  }
  bcast(flat, 0);
  bcast(counts, 0);
  stats_.of(CommOp::kAllgatherv).bytes_received += flat.size() * sizeof(T);
  if (counts_out) counts_out->assign(counts.begin(), counts.end());
  return flat;
}

template <typename T>
std::vector<T> Context::allgather(const T& v) {
  std::vector<T> local{v};
  return allgatherv(local);
}

template <typename T>
std::vector<std::vector<T>> Context::alltoallv(
    const std::vector<std::vector<T>>& send_parts) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (send_parts.size() != static_cast<std::size_t>(size())) {
    throw std::invalid_argument("simpi: alltoallv needs one part per destination rank");
  }
  std::size_t sent_bytes = 0;
  for (const auto& part : send_parts) sent_bytes += part.size() * sizeof(T);
  trace::SpanScope span("alltoallv", trace::kCatSimpi);
  if (span) span.arg("bytes", static_cast<double>(sent_bytes));
  fault_point(FaultOp::kAlltoallv);
  auto& row = stats_.of(CommOp::kAlltoallv);
  ++row.calls;
  row.bytes_sent += sent_bytes;
  // Sends are buffered, so posting the whole row before receiving cannot
  // deadlock; receives in rank order keep the matching deterministic.
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    const auto& part = send_parts[static_cast<std::size_t>(r)];
    raw_send(r, detail::kTagAlltoallv, std::as_bytes(std::span<const T>(part)));
  }
  std::vector<std::vector<T>> received(static_cast<std::size_t>(size()));
  received[static_cast<std::size_t>(rank_)] = send_parts[static_cast<std::size_t>(rank_)];
  std::size_t recv_bytes =
      received[static_cast<std::size_t>(rank_)].size() * sizeof(T);
  row.bytes_received += recv_bytes;  // own part; waited_recv adds the remote ones
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    const Message msg = waited_recv(r, detail::kTagAlltoallv, CommOp::kAlltoallv);
    if (msg.payload.size() % sizeof(T) != 0) {
      throw std::runtime_error("simpi: alltoallv typed size mismatch");
    }
    auto& slot = received[static_cast<std::size_t>(r)];
    slot.resize(msg.payload.size() / sizeof(T));
    if (!msg.payload.empty()) {
      std::memcpy(slot.data(), msg.payload.data(), msg.payload.size());
    }
    recv_bytes += msg.payload.size();
  }
  comm_seconds_ += cost_model().collective_cost(size(), sent_bytes + recv_bytes);
  return received;
}

namespace detail {
/// Logical-payload accounting shared by the allreduce family: one element
/// contributed, nranks elements observed (transport in the inner ops).
template <typename T>
void count_reduce(CommStats& stats, std::size_t nranks) {
  auto& rd = stats.of(CommOp::kReduce);
  ++rd.calls;
  rd.bytes_sent += sizeof(T);
  rd.bytes_received += nranks * sizeof(T);
}
}  // namespace detail

template <typename T>
T Context::allreduce_sum(T v) {
  trace::SpanScope span("allreduce_sum", trace::kCatSimpi);
  fault_point(FaultOp::kReduce);
  detail::count_reduce<T>(stats_, static_cast<std::size_t>(size()));
  const auto all = allgather(v);
  T acc{};
  for (const T& x : all) acc += x;
  return acc;
}

template <typename T>
T Context::allreduce_max(T v) {
  trace::SpanScope span("allreduce_max", trace::kCatSimpi);
  fault_point(FaultOp::kReduce);
  detail::count_reduce<T>(stats_, static_cast<std::size_t>(size()));
  const auto all = allgather(v);
  T best = all.front();
  for (const T& x : all) best = x > best ? x : best;
  return best;
}

template <typename T>
T Context::allreduce_min(T v) {
  trace::SpanScope span("allreduce_min", trace::kCatSimpi);
  fault_point(FaultOp::kReduce);
  detail::count_reduce<T>(stats_, static_cast<std::size_t>(size()));
  const auto all = allgather(v);
  T best = all.front();
  for (const T& x : all) best = x < best ? x : best;
  return best;
}

}  // namespace trinity::simpi
