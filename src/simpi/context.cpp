#include "simpi/context.hpp"

#include <exception>
#include <thread>

#include "trace/span_recorder.hpp"
#include "util/timer.hpp"

namespace trinity::simpi {
namespace {

// Wait sub-span names per op; literals so completed_span never copies on
// the hot path.
const char* wait_span_name(CommOp op) {
  switch (op) {
    case CommOp::kSend: return "send.wait";
    case CommOp::kRecv: return "recv.wait";
    case CommOp::kBarrier: return "barrier.wait";
    case CommOp::kBcast: return "bcast.wait";
    case CommOp::kGatherv: return "gatherv.wait";
    case CommOp::kAllgatherv: return "allgatherv.wait";
    case CommOp::kAlltoallv: return "alltoallv.wait";
    case CommOp::kReduce: return "reduce.wait";
    case CommOp::kExtension: return "extension.wait";
    default: return "comm.wait";
  }
}

}  // namespace

// --- Context -----------------------------------------------------------------

Context::Context(World& world, int rank) : world_(world), rank_(rank) {}

int Context::size() const { return world_.size(); }

const CommCostModel& Context::cost_model() const { return world_.cost_model(); }

void Context::raw_send(int dest, int tag, std::span<const std::byte> bytes) {
  world_.check_abort();
  Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.payload.assign(bytes.begin(), bytes.end());
  world_.mailbox(dest).deliver(std::move(msg));
}

Message Context::raw_recv(int source, int tag) {
  try {
    return world_.mailbox(rank_).receive(source, tag);
  } catch (const MailboxAborted&) {
    throw AbortedError();
  }
}

Message Context::waited_recv(int source, int tag, CommOp op) {
  util::Timer wait;
  Message msg = raw_recv(source, tag);
  // The wait sub-span duration is the *same* measured value added to
  // CommStats.wait_seconds, so per-rank wait-span totals in the trace
  // reconcile with the run report's comm counters exactly.
  const double waited = wait.seconds();
  // An active WaitAttribution redirects the wait (row + span) to the outer
  // collective; payload accounting stays on the transport op's row.
  const CommOp wait_op = wait_override_.value_or(op);
  stats_.of(wait_op).wait_seconds += waited;
  stats_.of(op).bytes_received += msg.payload.size();
  trace::completed_span(wait_span_name(wait_op), trace::kCatSimpi, waited);
  return msg;
}

void Context::send_bytes(int dest, int tag, std::span<const std::byte> bytes) {
  if (tag < 0) throw std::invalid_argument("simpi: user tags must be >= 0");
  if (dest < 0 || dest >= size()) throw std::out_of_range("simpi: send dest out of range");
  trace::SpanScope span("send", trace::kCatSimpi);
  if (span) {
    span.arg("bytes", static_cast<double>(bytes.size()));
    span.arg("dest", dest);
  }
  fault_point(FaultOp::kSend);
  auto& s = stats_.of(CommOp::kSend);
  ++s.calls;
  s.bytes_sent += bytes.size();
  raw_send(dest, tag, bytes);
  comm_seconds_ += cost_model().p2p_cost(bytes.size());
}

Message Context::recv_bytes(int source, int tag) {
  if (tag < 0) throw std::invalid_argument("simpi: user tags must be >= 0");
  if (source != kAnySource && (source < 0 || source >= size())) {
    throw std::out_of_range("simpi: recv source out of range");
  }
  trace::SpanScope span("recv", trace::kCatSimpi);
  if (span) span.arg("source", source);
  fault_point(FaultOp::kRecv);
  ++stats_.of(CommOp::kRecv).calls;
  return waited_recv(source, tag, CommOp::kRecv);
}

void Context::barrier() {
  trace::SpanScope span("barrier", trace::kCatSimpi);
  fault_point(FaultOp::kBarrier);
  auto& s = stats_.of(CommOp::kBarrier);
  ++s.calls;
  util::Timer wait;
  world_.barrier_wait();
  const double waited = wait.seconds();
  s.wait_seconds += waited;
  trace::completed_span("barrier.wait", trace::kCatSimpi, waited);
  comm_seconds_ += cost_model().barrier_cost(size());
}

void Context::fault_point(FaultOp op) {
  const FaultPlan& plan = world_.fault_plan();
  if (!plan.enabled() || rank_ != plan.rank) return;
  const int entry = ++fault_entries_[static_cast<std::size_t>(op)];
  bool fire = plan.op == op && entry == plan.at_entry;
  if (!fire && plan.after_virtual_seconds >= 0.0) {
    fire = cpu_clock_.seconds() + comm_seconds_ >= plan.after_virtual_seconds;
  }
  if (!fire || !plan.consume_fire()) return;
  std::string what = "injected fault: rank " + std::to_string(rank_) + " killed at " +
                     to_string(op) + " entry " + std::to_string(entry);
  trace::instant("simpi.fault", trace::kCatSimpi, what,
                 {{"entry", static_cast<double>(entry)}});
  throw RankFaultError(what);
}

std::atomic<std::uint64_t>& Context::world_counter(int id) { return world_.counter(id); }

bool Context::has_message(int source, int tag) {
  return world_.mailbox(rank_).has_match(source, tag);
}

// --- World ---------------------------------------------------------------------

World::World(int nranks, CommCostModel model, FaultPlan fault)
    : model_(model), fault_(std::move(fault)) {
  if (nranks < 1) throw std::invalid_argument("simpi: world needs at least one rank");
  // Arm here so a plan the caller never armed still fires (fresh budget per
  // world); a pre-armed plan keeps its shared budget across launches.
  if (fault_.enabled()) fault_.arm();
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>(&aborted_));
  }
}

std::atomic<std::uint64_t>& World::counter(int id) {
  std::scoped_lock lock(counters_mu_);
  auto& slot = counters_[id];
  if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  return *slot;
}

void World::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& mb : mailboxes_) mb->wake_for_abort();
  barrier_cv_.notify_all();
}

void World::barrier_wait() {
  std::unique_lock lock(barrier_mu_);
  const std::uint64_t my_generation = barrier_generation_;
  if (++barrier_arrived_ == size()) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != my_generation || aborted(); });
  if (barrier_generation_ == my_generation && aborted()) throw AbortedError();
}

double skew_ratio(const std::vector<RankResult>& results) {
  if (results.empty()) return 1.0;
  double max = 0.0, sum = 0.0;
  for (const auto& r : results) {
    const double v = r.virtual_seconds();
    max = v > max ? v : max;
    sum += v;
  }
  const double mean = sum / static_cast<double>(results.size());
  return mean > 0.0 ? max / mean : 1.0;
}

// --- run -------------------------------------------------------------------------

std::vector<RankResult> run(int nranks, const std::function<void(Context&)>& fn,
                            CommCostModel model, FaultPlan fault) {
  World world(nranks, model, std::move(fault));
  std::vector<RankResult> results(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      // Rank attribution for every span recorded on this thread (collectives,
      // io calls, loop spans read it before forking their OpenMP team).
      trace::ScopedRank rank_scope(r);
      Context ctx(world, r);
      util::ThreadCpuTimer cpu;
      try {
        fn(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        world.abort();
      }
      auto& res = results[static_cast<std::size_t>(r)];
      res.rank = r;
      res.cpu_seconds = cpu.seconds();
      res.comm_seconds = ctx.comm_seconds();
      res.comm = ctx.comm_stats();
    });
  }
  for (auto& t : threads) t.join();

  // Prefer the root-cause exception over secondary AbortedErrors raised in
  // ranks that were merely woken by the teardown.
  std::exception_ptr fallback;
  for (const auto& err : errors) {
    if (!err) continue;
    if (!fallback) fallback = err;
    try {
      std::rethrow_exception(err);
    } catch (const AbortedError&) {
      continue;
    } catch (...) {
      throw;
    }
  }
  if (fallback) std::rethrow_exception(fallback);
  return results;
}

}  // namespace trinity::simpi
