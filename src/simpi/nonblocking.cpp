#include "simpi/nonblocking.hpp"

#include <stdexcept>

namespace trinity::simpi {

bool RecvRequest::test() const {
  if (done_) return true;
  return ctx_->has_message(source_, tag_);
}

Message RecvRequest::wait() {
  if (done_) throw std::logic_error("RecvRequest: wait() called twice");
  done_ = true;
  return ctx_->recv_bytes(source_, tag_);
}

RecvRequest irecv(Context& ctx, int source, int tag) { return RecvRequest(ctx, source, tag); }

void isend_bytes(Context& ctx, int dest, int tag, std::span<const std::byte> bytes) {
  ctx.send_bytes(dest, tag, bytes);
}

}  // namespace trinity::simpi
