#include "simpi/rank_pool.hpp"

#include <stdexcept>
#include <string>

namespace trinity::simpi {

RankLease& RankLease::operator=(RankLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    count_ = other.count_;
    other.pool_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

void RankLease::release() {
  if (pool_ != nullptr && count_ > 0) pool_->release(count_);
  pool_ = nullptr;
  count_ = 0;
}

RankPool::RankPool(int total) : total_(total) {
  if (total < 1) {
    throw std::invalid_argument("RankPool: total must be >= 1, got " + std::to_string(total));
  }
}

int RankPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - leased_;
}

void RankPool::check_request(int count) const {
  if (count < 1 || count > total_) {
    throw std::invalid_argument("RankPool: lease of " + std::to_string(count) +
                                " rank(s) from a pool of " + std::to_string(total_));
  }
}

RankLease RankPool::try_lease(int count) {
  check_request(count);
  std::lock_guard<std::mutex> lock(mutex_);
  if (total_ - leased_ < count) return {};
  leased_ += count;
  return {this, count};
}

RankLease RankPool::lease(int count) {
  check_request(count);
  std::unique_lock<std::mutex> lock(mutex_);
  freed_.wait(lock, [&] { return total_ - leased_ >= count; });
  leased_ += count;
  return {this, count};
}

void RankPool::release(int count) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leased_ -= count;
  }
  freed_.notify_all();
}

}  // namespace trinity::simpi
