#include "simpi/file_io.hpp"

#include <filesystem>

#include "io/error.hpp"
#include "io/io_file.hpp"

namespace trinity::simpi {

void write_file_ordered(Context& ctx, const std::string& path, std::string_view local_data) {
  // Exchange sizes and derive this rank's offset (rank-order prefix sum).
  const auto sizes = ctx.allgather(static_cast<std::uint64_t>(local_data.size()));
  std::uint64_t offset = 0;
  std::uint64_t total = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    if (r < ctx.rank()) offset += sizes[static_cast<std::size_t>(r)];
    total += sizes[static_cast<std::size_t>(r)];
  }

  // Failures carry the rank whose slice failed: with P ranks writing into
  // one file, "write failure on foo.fasta" alone is undebuggable.
  const auto attribute = [&](const io::IoError& e) {
    throw io::IoError(e.kind(), e.op(), path, e.error_code(),
                      "rank " + std::to_string(ctx.rank()) + "/" +
                          std::to_string(ctx.size()) + " slice [" + std::to_string(offset) +
                          ", " + std::to_string(offset + local_data.size()) + "): " + e.what());
  };

  // Rank 0 creates the file at full size, then everyone writes in place.
  if (ctx.rank() == 0) {
    try {
      io::IoFile out = io::IoFile::create(path);
      out.close();
      std::filesystem::resize_file(path, total);
    } catch (const io::IoError& e) {
      attribute(e);
    }
  }
  ctx.barrier();

  if (!local_data.empty()) {
    try {
      io::IoFile out = io::IoFile::open_write(path);
      out.pwrite_all(local_data, offset);
      out.close();
    } catch (const io::IoError& e) {
      attribute(e);
    }
  }
  ctx.barrier();

  // Every rank verifies the collective actually produced `total` bytes; a
  // short file here means some slice silently failed to land.
  const std::uint64_t actual = io::file_size(path);
  if (actual != total) {
    throw io::IoError(io::IoErrorKind::kPermanent, "verify", path, 0,
                      "collective write produced " + std::to_string(actual) +
                          " bytes, expected " + std::to_string(total) + " (rank " +
                          std::to_string(ctx.rank()) + "/" + std::to_string(ctx.size()) + ")");
  }
}

}  // namespace trinity::simpi
