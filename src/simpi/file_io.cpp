#include "simpi/file_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace trinity::simpi {

void write_file_ordered(Context& ctx, const std::string& path, std::string_view local_data) {
  // Exchange sizes and derive this rank's offset (rank-order prefix sum).
  const auto sizes = ctx.allgather(static_cast<std::uint64_t>(local_data.size()));
  std::uint64_t offset = 0;
  std::uint64_t total = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    if (r < ctx.rank()) offset += sizes[static_cast<std::size_t>(r)];
    total += sizes[static_cast<std::size_t>(r)];
  }

  // Rank 0 creates the file at full size, then everyone writes in place.
  if (ctx.rank() == 0) {
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
      throw std::runtime_error("write_file_ordered: cannot create '" + path +
                               "': " + std::strerror(errno));
    }
    ::close(fd);
    std::filesystem::resize_file(path, total);
  }
  ctx.barrier();

  if (!local_data.empty()) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) {
      throw std::runtime_error("write_file_ordered: cannot open '" + path +
                               "': " + std::strerror(errno));
    }
    std::size_t written = 0;
    while (written < local_data.size()) {
      const ssize_t n = ::pwrite(fd, local_data.data() + written, local_data.size() - written,
                                 static_cast<off_t>(offset + written));
      if (n < 0) {
        ::close(fd);
        throw std::runtime_error("write_file_ordered: write failure on '" + path +
                                 "': " + std::strerror(errno));
      }
      written += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
  ctx.barrier();
}

}  // namespace trinity::simpi
