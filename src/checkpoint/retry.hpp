#pragma once
// Bounded retry/backoff policy for the pipeline's fault-recovery driver.
//
// When a simpi world aborts (a rank failure), the stage that was running is
// re-launched up to max_attempts times, sleeping an exponentially growing
// backoff between attempts — the standard transient-fault posture of
// long-running cluster jobs. The defaults keep the backoff at zero so unit
// tests retry instantly; production callers set initial_backoff_seconds.

#include <algorithm>
#include <cstdint>

namespace trinity::checkpoint {

struct RetryPolicy {
  int max_attempts = 3;                ///< total attempts per stage (>= 1)
  double initial_backoff_seconds = 0.0;  ///< sleep after the first failure
  double backoff_multiplier = 2.0;     ///< growth per additional failure
  double max_backoff_seconds = 30.0;   ///< backoff ceiling
  /// Jitter spread as a fraction of the exponential delay: the jittered
  /// backoff lands in [delay * (1 - jitter), delay * (1 + jitter)],
  /// decorrelating retry herds (the serve layer's requeue path uses this;
  /// 0 keeps the stage driver's deterministic schedule).
  double jitter_fraction = 0.0;

  /// Backoff to sleep after `failed_attempts` consecutive failures (>= 1).
  [[nodiscard]] double backoff_for(int failed_attempts) const {
    if (initial_backoff_seconds <= 0.0 || failed_attempts < 1) return 0.0;
    double delay = initial_backoff_seconds;
    for (int i = 1; i < failed_attempts; ++i) delay *= backoff_multiplier;
    return std::min(delay, max_backoff_seconds);
  }

  /// backoff_for with deterministic jitter: `seed` (e.g. a job-id hash
  /// mixed with the attempt number) picks the point inside the jitter
  /// window, so tests replay exactly while distinct jobs decorrelate.
  [[nodiscard]] double jittered_backoff_for(int failed_attempts, std::uint64_t seed) const;
};

/// Sleeps the calling thread; no-op for non-positive durations.
void sleep_seconds(double seconds);

}  // namespace trinity::checkpoint
