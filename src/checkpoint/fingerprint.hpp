#pragma once
// FingerprintBuilder: order-sensitive digest of named configuration fields.
//
// A manifest record is only reusable when the options that produced the
// recorded artifacts still hold. The pipeline folds every output-affecting
// option (and a digest of the input reads) into one 64-bit fingerprint;
// scheduling-only knobs (rank counts, thread counts, cost models) are
// deliberately left out, because the paper's central equivalence claim —
// verified by the pipeline tests — is that they never change results, so
// a crashed 16-rank run may legitimately resume on 8 ranks.

#include <cstdint>
#include <string_view>

#include "util/hash.hpp"

namespace trinity::checkpoint {

/// Accumulates (name, value) pairs into an FNV-1a digest. Both the field
/// name and the order of add() calls are significant: renaming or
/// reordering a field changes the fingerprint, which is the desired
/// invalidation behavior when an option's meaning changes.
class FingerprintBuilder {
 public:
  FingerprintBuilder& add(std::string_view name, std::string_view value);
  FingerprintBuilder& add(std::string_view name, std::uint64_t value);
  FingerprintBuilder& add(std::string_view name, std::int64_t value);
  FingerprintBuilder& add(std::string_view name, bool value);
  /// Doubles are folded via their bit pattern, not a decimal rendering, so
  /// the fingerprint is exact.
  FingerprintBuilder& add(std::string_view name, double value);

  /// The digest of everything added so far (a running value: more fields
  /// can be folded in afterwards).
  [[nodiscard]] std::uint64_t digest() const { return state_; }

 private:
  FingerprintBuilder& fold(std::string_view name, const void* data, std::size_t len);

  std::uint64_t state_ = util::kFnvOffsetBasis;
};

}  // namespace trinity::checkpoint
