#include "checkpoint/fingerprint.hpp"

#include <cstring>

namespace trinity::checkpoint {

FingerprintBuilder& FingerprintBuilder::fold(std::string_view name, const void* data,
                                             std::size_t len) {
  // Field names are part of the digest, so swapping two same-typed values
  // between fields changes the fingerprint; separators keep (ab, c) and
  // (a, bc) distinct.
  state_ = util::fnv1a_append(state_, name.data(), name.size());
  state_ = util::fnv1a_append(state_, "=", 1);
  state_ = util::fnv1a_append(state_, data, len);
  state_ = util::fnv1a_append(state_, ";", 1);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::add(std::string_view name, std::string_view value) {
  return fold(name, value.data(), value.size());
}

FingerprintBuilder& FingerprintBuilder::add(std::string_view name, std::uint64_t value) {
  return fold(name, &value, sizeof(value));
}

FingerprintBuilder& FingerprintBuilder::add(std::string_view name, std::int64_t value) {
  return fold(name, &value, sizeof(value));
}

FingerprintBuilder& FingerprintBuilder::add(std::string_view name, bool value) {
  const unsigned char byte = value ? 1 : 0;
  return fold(name, &byte, 1);
}

FingerprintBuilder& FingerprintBuilder::add(std::string_view name, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return fold(name, &bits, sizeof(bits));
}

}  // namespace trinity::checkpoint
