#include "checkpoint/retry.hpp"

#include <chrono>
#include <thread>

namespace trinity::checkpoint {

double RetryPolicy::jittered_backoff_for(int failed_attempts, std::uint64_t seed) const {
  const double base = backoff_for(failed_attempts);
  if (base <= 0.0 || jitter_fraction <= 0.0) return base;
  // splitmix64 finalizer: a full-avalanche hash of the seed gives a
  // uniform point in [0, 1) without any global RNG state.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  const double spread = std::min(jitter_fraction, 1.0);
  const double factor = 1.0 - spread + 2.0 * spread * unit;
  return std::min(base * factor, max_backoff_seconds);
}

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace trinity::checkpoint
