#include "checkpoint/retry.hpp"

#include <chrono>
#include <thread>

namespace trinity::checkpoint {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace trinity::checkpoint
