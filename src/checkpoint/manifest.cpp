#include "checkpoint/manifest.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/io_file.hpp"
#include "util/hash.hpp"

namespace trinity::checkpoint {

namespace {

// --- JSON writing ------------------------------------------------------------
// The manifest schema is flat (strings, bools, numbers, and arrays of
// artifact objects), so a hand-rolled writer/parser keeps the library
// dependency-free. Hashes are emitted as hex strings: JSON numbers are
// doubles and cannot carry a full 64-bit hash.

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void append_artifacts(std::string& out, const std::vector<ArtifactRecord>& artifacts) {
  out += '[';
  bool first = true;
  for (const auto& a : artifacts) {
    if (!first) out += ',';
    first = false;
    out += "{\"path\":";
    append_escaped(out, a.path);
    out += ",\"bytes\":" + std::to_string(a.bytes);
    out += ",\"hash\":\"" + hex64(a.hash) + "\"}";
  }
  out += ']';
}

// --- JSON parsing ------------------------------------------------------------

/// Recursive-descent parser over the manifest's JSON subset. Any deviation
/// raises std::runtime_error, which parse_json_line maps to std::nullopt.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StageRecord parse_record() {
    StageRecord record;
    bool saw_stage = false, saw_fingerprint = false;
    skip_ws();
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; break; }
      if (!first) { expect(','); skip_ws(); }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "stage") { record.stage = parse_string(); saw_stage = true; }
      else if (key == "fingerprint") { record.fingerprint = parse_hex64(); saw_fingerprint = true; }
      else if (key == "complete") record.complete = parse_bool();
      else if (key == "attempt") record.attempt = static_cast<int>(parse_number());
      else if (key == "wall_seconds") record.wall_seconds = parse_number();
      else if (key == "checkpoint_seconds") record.checkpoint_seconds = parse_number();
      else if (key == "trace") record.trace = parse_string();
      else if (key == "inputs") record.inputs = parse_artifacts();
      else if (key == "outputs") record.outputs = parse_artifacts();
      else fail("unknown key " + key);
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    if (!saw_stage || !saw_fingerprint) fail("missing required field");
    return record;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("manifest line: " + why);
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + '\'');
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c == '\\') {
        const char e = peek();
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            out += static_cast<char>(std::stoi(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  bool parse_bool() {
    if (text_.compare(pos_, 4, "true") == 0) { pos_ += 4; return true; }
    if (text_.compare(pos_, 5, "false") == 0) { pos_ += 5; return false; }
    fail("expected bool");
  }

  double parse_number() {
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) fail("expected number");
    const double v = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::uint64_t parse_hex64() {
    const std::string s = parse_string();
    if (s.empty() || s.size() > 16) fail("bad hash");
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used, 16);
    if (used != s.size()) fail("bad hash");
    return v;
  }

  std::vector<ArtifactRecord> parse_artifacts() {
    std::vector<ArtifactRecord> out;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return out; }
    while (true) {
      skip_ws();
      expect('{');
      ArtifactRecord a;
      bool first = true;
      while (true) {
        skip_ws();
        if (peek() == '}') { ++pos_; break; }
        if (!first) { expect(','); skip_ws(); }
        first = false;
        const std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        if (key == "path") a.path = parse_string();
        else if (key == "bytes") a.bytes = static_cast<std::uint64_t>(parse_number());
        else if (key == "hash") a.hash = parse_hex64();
        else fail("unknown artifact key " + key);
      }
      out.push_back(std::move(a));
      skip_ws();
      if (peek() == ']') { ++pos_; return out; }
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_json_line(const StageRecord& record) {
  std::string out = "{\"stage\":";
  append_escaped(out, record.stage);
  out += ",\"fingerprint\":\"" + hex64(record.fingerprint) + '"';
  out += ",\"complete\":";
  out += record.complete ? "true" : "false";
  out += ",\"attempt\":" + std::to_string(record.attempt);
  std::ostringstream num;
  num << ",\"wall_seconds\":" << record.wall_seconds
      << ",\"checkpoint_seconds\":" << record.checkpoint_seconds;
  out += num.str();
  if (!record.trace.empty()) {
    out += ",\"trace\":";
    append_escaped(out, record.trace);
  }
  out += ",\"inputs\":";
  append_artifacts(out, record.inputs);
  out += ",\"outputs\":";
  append_artifacts(out, record.outputs);
  out += '}';
  return out;
}

std::optional<StageRecord> parse_json_line(const std::string& line) {
  try {
    return Parser(line).parse_record();
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

RunManifest RunManifest::load(const std::string& path) {
  RunManifest manifest(path);
  std::ifstream in(path);
  if (!in) return manifest;  // no manifest yet: nothing to resume
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto record = parse_json_line(line)) {
      manifest.upsert(std::move(*record));
    } else {
      ++manifest.dropped_lines_;
    }
  }
  return manifest;
}

const StageRecord* RunManifest::find(const std::string& stage) const {
  for (const auto& r : records_) {
    if (r.stage == stage) return &r;
  }
  return nullptr;
}

void RunManifest::upsert(StageRecord record) {
  for (auto& r : records_) {
    if (r.stage == record.stage) {
      r = std::move(record);
      return;
    }
  }
  records_.push_back(std::move(record));
}

void RunManifest::commit() const {
  if (path_.empty()) throw std::runtime_error("RunManifest::commit: no path set");
  std::string body;
  for (const auto& r : records_) {
    body += to_json_line(r);
    body += '\n';
  }
  // tmp + fsync + rename through the fault-injectable io layer; failures
  // surface as io::IoError with transient/permanent classification.
  io::write_file_atomic(path_, body);
}

const char* to_string(StageCheck check) {
  switch (check) {
    case StageCheck::kValid: return "valid";
    case StageCheck::kNoRecord: return "no record";
    case StageCheck::kIncomplete: return "incomplete";
    case StageCheck::kFingerprintMismatch: return "options fingerprint mismatch";
    case StageCheck::kArtifactMissing: return "artifact missing";
    case StageCheck::kArtifactModified: return "artifact modified";
  }
  return "unknown";
}

ArtifactRecord capture_artifact(const std::string& work_dir, const std::string& rel_path) {
  const std::string full = work_dir + "/" + rel_path;
  ArtifactRecord a;
  a.path = rel_path;
  a.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(full));
  a.hash = util::fnv1a_file(full);
  return a;
}

namespace {

StageCheck check_artifacts(const std::vector<ArtifactRecord>& artifacts,
                           const std::string& work_dir) {
  for (const auto& a : artifacts) {
    const std::string full = work_dir + "/" + a.path;
    std::error_code ec;
    const auto size = std::filesystem::file_size(full, ec);
    if (ec) return StageCheck::kArtifactMissing;
    if (size != a.bytes) return StageCheck::kArtifactModified;
    try {
      if (util::fnv1a_file(full) != a.hash) return StageCheck::kArtifactModified;
    } catch (const std::exception&) {
      return StageCheck::kArtifactMissing;
    }
  }
  return StageCheck::kValid;
}

}  // namespace

StageCheck validate_stage(const StageRecord& record, const std::string& work_dir,
                          std::uint64_t fingerprint) {
  if (!record.complete) return StageCheck::kIncomplete;
  if (record.fingerprint != fingerprint) return StageCheck::kFingerprintMismatch;
  const StageCheck inputs = check_artifacts(record.inputs, work_dir);
  if (inputs != StageCheck::kValid) return inputs;
  return check_artifacts(record.outputs, work_dir);
}

}  // namespace trinity::checkpoint
