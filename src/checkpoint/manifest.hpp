#pragma once
// RunManifest: the checkpoint record of a pipeline run.
//
// Long hybrid Chrysalis runs are multi-stage jobs where a single rank
// failure used to abort the whole simpi world and discard every completed
// stage. Trinity's stages already exchange their results through files in
// the work directory, so those artifacts are the natural checkpoint
// boundary (the same observation extreme-scale assemblers build on). The
// manifest records, per stage: the options fingerprint the stage ran
// under, the input and output artifacts with content hashes, and
// completion status — one JSON object per line, committed atomically by
// writing a temporary file and renaming it over the manifest path.
//
// Loading is deliberately tolerant: a truncated or corrupt line (the
// signature of a crash mid-write on a filesystem without atomic rename)
// drops that record, which simply forces the affected stage to re-run.
// Validation failures are reported as a StageCheck reason, never an
// exception, so a damaged manifest can only cost recomputation.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace trinity::checkpoint {

/// One stage input or output file, identified by its work-dir-relative
/// path plus size and FNV-1a content hash.
struct ArtifactRecord {
  std::string path;          ///< relative to the work directory
  std::uint64_t bytes = 0;   ///< file size when recorded
  std::uint64_t hash = 0;    ///< FNV-1a 64 of the file contents
  friend bool operator==(const ArtifactRecord&, const ArtifactRecord&) = default;
};

/// One completed (or attempted) pipeline stage.
struct StageRecord {
  std::string stage;                    ///< stage name, e.g. "chrysalis.bowtie"
  std::uint64_t fingerprint = 0;        ///< options fingerprint of the run
  bool complete = false;                ///< stage finished and outputs committed
  int attempt = 1;                      ///< attempt number that succeeded
  double wall_seconds = 0.0;            ///< stage execution wall time
  double checkpoint_seconds = 0.0;      ///< hashing + manifest commit overhead
  /// Work-dir-relative path of the run report carrying this stage's
  /// observability metrics (docs/OBSERVABILITY.md). Optional: empty when
  /// the run emitted no report, and omitted from the JSON line then, so
  /// manifests written before the field existed parse unchanged.
  std::string trace;
  std::vector<ArtifactRecord> inputs;   ///< artifacts the stage consumed
  std::vector<ArtifactRecord> outputs;  ///< artifacts the stage produced
};

/// Serializes one stage record as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_json_line(const StageRecord& record);

/// Parses one manifest line; std::nullopt on any malformed input
/// (truncation, bad escape, missing field, trailing garbage).
[[nodiscard]] std::optional<StageRecord> parse_json_line(const std::string& line);

/// The ordered collection of stage records, persisted as JSON lines.
class RunManifest {
 public:
  RunManifest() = default;
  explicit RunManifest(std::string path) : path_(std::move(path)) {}

  /// Reads the manifest at `path`. A missing file yields an empty
  /// manifest; corrupt lines are dropped (counted in dropped_lines()).
  static RunManifest load(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::vector<StageRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t dropped_lines() const { return dropped_lines_; }

  /// The record for `stage`, or nullptr when absent.
  [[nodiscard]] const StageRecord* find(const std::string& stage) const;

  /// Inserts or replaces the record for record.stage, keeping insertion
  /// order for new stages.
  void upsert(StageRecord record);

  /// Atomically persists all records: writes `path + ".tmp"`, then renames
  /// it over `path`. Throws std::runtime_error when the directory is not
  /// writable.
  void commit() const;

 private:
  std::string path_;
  std::vector<StageRecord> records_;
  std::size_t dropped_lines_ = 0;
};

/// Why a recorded stage can (or cannot) be resumed.
enum class StageCheck {
  kValid,                ///< record matches fingerprint and on-disk artifacts
  kNoRecord,             ///< stage absent from the manifest
  kIncomplete,           ///< recorded but never marked complete
  kFingerprintMismatch,  ///< options changed since the record was written
  kArtifactMissing,      ///< an input/output file disappeared
  kArtifactModified,     ///< an input/output file's size or hash changed
};

[[nodiscard]] const char* to_string(StageCheck check);

/// Stats + hashes one artifact. Throws std::runtime_error when the file
/// cannot be read (recording requires the artifact to exist).
[[nodiscard]] ArtifactRecord capture_artifact(const std::string& work_dir,
                                              const std::string& rel_path);

/// Validates a recorded stage against the current options fingerprint and
/// the on-disk artifacts. Never throws: unreadable or altered files map to
/// the corresponding StageCheck reason.
[[nodiscard]] StageCheck validate_stage(const StageRecord& record,
                                        const std::string& work_dir,
                                        std::uint64_t fingerprint);

}  // namespace trinity::checkpoint
