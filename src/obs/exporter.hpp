// Periodic snapshot publication.
//
// MetricsExporter owns one background thread that every `period_s` renders a
// registry snapshot and publishes it as `<dir>/metrics.prom` (Prometheus
// text) and `<dir>/metrics.json` (versioned JSON, tailed by trinity_top).
// Both files go through io::write_file_atomic — write tmp, fsync, rename —
// so a reader never observes a partial document and the io fault matrix
// (ENOSPC, EIO, short write, torn rename) applies to the publish path.
//
// Failure discipline mirrors the job journal: a transient IoError skips the
// cycle (counted, retried next tick); a permanent IoError marks the exporter
// degraded and stops writing, but the in-memory registry keeps counting —
// telemetry loss never takes down serving.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace trinity::obs {

struct ExporterOptions {
  std::string dir;           ///< directory the snapshot files land in
  double period_s = 1.0;     ///< export cadence
  std::string prom_name = "metrics.prom";
  std::string json_name = "metrics.json";
};

class MetricsExporter {
 public:
  /// The registry must outlive the exporter. Starts the export thread.
  MetricsExporter(const MetricsRegistry* registry, ExporterOptions options);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// One synchronous export cycle (also what the thread runs). Returns true
  /// when both files were published. Safe to call concurrently with the
  /// thread; publication is serialized internally.
  bool export_now();

  /// Stops the thread after one final export, so shutdown always leaves the
  /// terminal totals on disk. Idempotent.
  void stop();

  std::uint64_t cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }
  std::uint64_t skipped_cycles() const {
    return skipped_.load(std::memory_order_relaxed);
  }
  /// True once a permanent IoError disabled publication.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  std::string prom_path() const;
  std::string json_path() const;

 private:
  void loop();

  const MetricsRegistry* registry_;
  ExporterOptions options_;
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> skipped_{0};
  std::atomic<bool> degraded_{false};
  std::mutex publish_mu_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace trinity::obs
