// Lock-light live metrics for the serve layer.
//
// A MetricsRegistry owns named counter/gauge/histogram families, each fanned
// out into label-distinguished series. Registration (name + label lookup) is
// the cold path and takes the registry mutex once; call sites keep the
// returned reference, after which every update is relaxed atomics only — no
// locks, no allocation — mirroring trace::SpanRecorder's discipline that the
// hot path costs a handful of relaxed atomic ops and the disabled path (no
// registry wired up) costs exactly one pointer test.
//
// Snapshots are mergeable: counters and histogram buckets add, gauges are
// last-writer-wins. obs::MetricsExporter (exporter.hpp) periodically renders
// snapshots to <root>/metrics.prom and <root>/metrics.json via atomic
// write+rename; exposition.hpp holds the render/parse round-trip.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace trinity::obs {

/// Sorted (key, value) pairs; the series identity within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind);

/// Monotonic counter. Values are doubles so byte totals and second totals
/// share one type; integral values stay exact below 2^53.
class Counter {
 public:
  void inc(double by = 1.0) { value_.fetch_add(by, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time value; set() overwrites, add() adjusts (e.g. +1/-1 around a
/// region for an in-flight count).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double by) { value_.fetch_add(by, std::memory_order_relaxed); }
  /// Raise the gauge to at least `v` (peak tracking).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds in ascending
/// order; a final +Inf bucket is implicit. observe() is two relaxed atomic
/// RMWs (bucket count + sum); the total count is derived from the buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t count() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Bucket layouts for the serve-layer histograms. Shared here so tests, the
/// exporter round-trip, and docs agree on the exact boundaries.
std::vector<double> latency_buckets_s();   // 1ms .. 512s, powers of two
std::vector<double> fsync_buckets_s();     // 10us .. ~2.6s, powers of four

// --- snapshots ---------------------------------------------------------------

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< per-bucket counts, size bounds+1
  double sum = 0.0;

  std::uint64_t count() const;
  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// containing bucket; returns 0 when empty.
  double quantile(double q) const;
};

struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;        ///< counter/gauge
  HistogramSnapshot hist;    ///< histogram only
};

struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

struct MetricsSnapshot {
  std::uint64_t sequence = 0;  ///< bumped per snapshot() call on one registry
  double uptime_s = 0.0;       ///< seconds since the registry was created
  std::vector<FamilySnapshot> families;

  /// Fold `other` into this snapshot: counters and histogram buckets add,
  /// gauges take the incoming value (last-writer-wins). Kind or bucket-layout
  /// conflicts throw std::logic_error.
  void merge(const MetricsSnapshot& other);

  const FamilySnapshot* find_family(std::string_view name) const;
  const SeriesSnapshot* find(std::string_view name, const Labels& labels) const;
  /// Value of a counter/gauge series, or `fallback` when absent.
  double value_or(std::string_view name, const Labels& labels,
                  double fallback = 0.0) const;
};

// --- registry ----------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  ///< out-of-line: Family is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned references stay valid for the registry's
  /// lifetime (series live in deques). Re-registering an existing name with a
  /// different kind (or a histogram with different bounds) throws
  /// std::logic_error; help text is fixed by the first registration.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       const std::vector<double>& bounds, Labels labels = {});

  /// Consistent point-in-time copy of every series.
  MetricsSnapshot snapshot() const;

  /// Seconds since construction (monotonic clock). Heartbeat gauges publish
  /// this value so readers can compute ages without wall-clock agreement.
  double uptime_s() const;

 private:
  struct Series;
  struct Family;

  Series& series(std::string_view name, std::string_view help, MetricKind kind,
                 const std::vector<double>* bounds, Labels labels);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
  mutable std::atomic<std::uint64_t> sequence_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace trinity::obs
