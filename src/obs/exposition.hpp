// Rendering and parsing of metrics snapshots.
//
// Two on-disk forms, both published atomically by obs::MetricsExporter:
//
//  - Prometheus text exposition (`metrics.prom`): `# HELP` / `# TYPE` per
//    family, then one sample line per series; histograms expand to
//    cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
//  - JSON (`metrics.json`): the full snapshot under a versioned schema
//    (kMetricsSchemaVersion, documented in docs/OBSERVABILITY.md) — this is
//    what `trinity_top` tails.
//
// parse_prometheus_text() is the strict round-trip counterpart used by tests
// and `trinity_top --check-prom`: every sample must belong to a family that
// declared HELP and TYPE, names must match the Prometheus charset, and
// histogram bucket series must be cumulative and close with `+Inf`.

#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace trinity::obs {

/// Version of the metrics.json document layout; bump on breaking change.
inline constexpr int kMetricsSchemaVersion = 1;

/// Prometheus text exposition format (version 0.0.4).
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Versioned JSON document ("schema_version", "sequence", "uptime_s",
/// "families").
util::Json to_json(const MetricsSnapshot& snapshot);

/// Inverse of to_json(); throws std::runtime_error on unknown schema version
/// or malformed documents.
MetricsSnapshot snapshot_from_json(const util::Json& doc);

/// Strict parse of the text exposition emitted by to_prometheus(). Throws
/// std::runtime_error (with a line number) on: samples without a preceding
/// HELP+TYPE pair, invalid metric/label names, non-cumulative histogram
/// buckets, or a histogram missing its `+Inf` bucket / `_sum` / `_count`.
/// Returns a snapshot with per-bucket (de-cumulated) counts, so
/// parse(to_prometheus(s)) compares equal to s family-by-family.
MetricsSnapshot parse_prometheus_text(const std::string& text);

}  // namespace trinity::obs
