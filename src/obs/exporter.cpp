#include "obs/exporter.hpp"

#include <chrono>

#include "io/error.hpp"
#include "io/io_file.hpp"
#include "obs/exposition.hpp"

namespace trinity::obs {

MetricsExporter::MetricsExporter(const MetricsRegistry* registry,
                                 ExporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  thread_ = std::thread([this] { loop(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

std::string MetricsExporter::prom_path() const {
  return options_.dir + "/" + options_.prom_name;
}

std::string MetricsExporter::json_path() const {
  return options_.dir + "/" + options_.json_name;
}

bool MetricsExporter::export_now() {
  if (degraded_.load(std::memory_order_relaxed)) return false;
  const MetricsSnapshot snap = registry_->snapshot();
  const std::string prom = to_prometheus(snap);
  const std::string json = to_json(snap).dump(2) + "\n";
  std::lock_guard<std::mutex> lock(publish_mu_);
  try {
    io::write_file_atomic(prom_path(), prom);
    io::write_file_atomic(json_path(), json);
  } catch (const io::IoError& e) {
    if (!e.transient()) degraded_.store(true, std::memory_order_relaxed);
    skipped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  cycles_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MetricsExporter::loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    const auto period = std::chrono::duration<double>(
        options_.period_s > 0 ? options_.period_s : 1.0);
    if (stop_cv_.wait_for(lock, period, [this] { return stopping_; })) break;
    lock.unlock();
    export_now();
    lock.lock();
  }
}

void MetricsExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopping_ = true;
    stopped_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  export_now();  // terminal totals always land on disk (unless degraded)
}

}  // namespace trinity::obs
