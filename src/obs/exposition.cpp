#include "obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace trinity::obs {
namespace {

/// Shortest-exact formatting: integral values print without an exponent or
/// fraction, everything else round-trips through %.17g.
std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string escape_help(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

void append_labels(std::string& out, const Labels& labels,
                   const char* le = nullptr) {
  if (labels.empty() && le == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(name.front())) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!tail(name[i])) return false;
  }
  return true;
}

bool valid_label_name(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(name.front())) return false;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!head(name[i]) && !std::isdigit(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const FamilySnapshot& family : snapshot.families) {
    out += "# HELP " + family.name + " " + escape_help(family.help) + "\n";
    out += "# TYPE " + family.name + " ";
    out += to_string(family.kind);
    out += "\n";
    for (const SeriesSnapshot& series : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += family.name;
        append_labels(out, series.labels);
        out += ' ';
        out += format_value(series.value);
        out += '\n';
        continue;
      }
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < series.hist.buckets.size(); ++i) {
        cumulative += series.hist.buckets[i];
        const std::string le = i < series.hist.bounds.size()
                                   ? format_value(series.hist.bounds[i])
                                   : std::string("+Inf");
        out += family.name + "_bucket";
        append_labels(out, series.labels, le.c_str());
        out += ' ';
        out += format_value(static_cast<double>(cumulative));
        out += '\n';
      }
      out += family.name + "_sum";
      append_labels(out, series.labels);
      out += ' ';
      out += format_value(series.hist.sum);
      out += '\n';
      out += family.name + "_count";
      append_labels(out, series.labels);
      out += ' ';
      out += format_value(static_cast<double>(cumulative));
      out += '\n';
    }
  }
  return out;
}

util::Json to_json(const MetricsSnapshot& snapshot) {
  util::Json doc = util::Json::object();
  doc.set("schema_version", util::Json(kMetricsSchemaVersion));
  doc.set("sequence", util::Json(snapshot.sequence));
  doc.set("uptime_s", util::Json(snapshot.uptime_s));
  util::Json families = util::Json::array();
  for (const FamilySnapshot& family : snapshot.families) {
    util::Json fj = util::Json::object();
    fj.set("name", util::Json(family.name));
    fj.set("type", util::Json(to_string(family.kind)));
    fj.set("help", util::Json(family.help));
    util::Json series = util::Json::array();
    for (const SeriesSnapshot& s : family.series) {
      util::Json sj = util::Json::object();
      util::Json labels = util::Json::object();
      for (const auto& [k, v] : s.labels) labels.set(k, util::Json(v));
      sj.set("labels", std::move(labels));
      if (family.kind == MetricKind::kHistogram) {
        util::Json bounds = util::Json::array();
        for (const double b : s.hist.bounds) bounds.push_back(util::Json(b));
        util::Json buckets = util::Json::array();
        for (const std::uint64_t b : s.hist.buckets) {
          buckets.push_back(util::Json(b));
        }
        sj.set("bounds", std::move(bounds));
        sj.set("buckets", std::move(buckets));
        sj.set("count", util::Json(s.hist.count()));
        sj.set("sum", util::Json(s.hist.sum));
      } else {
        const double v = s.value;
        if (v == std::floor(v) && std::abs(v) < 9.0e15) {
          sj.set("value", util::Json(static_cast<std::int64_t>(v)));
        } else {
          sj.set("value", util::Json(v));
        }
      }
      series.push_back(std::move(sj));
    }
    fj.set("series", std::move(series));
    families.push_back(std::move(fj));
  }
  doc.set("families", std::move(families));
  return doc;
}

MetricsSnapshot snapshot_from_json(const util::Json& doc) {
  const std::int64_t version = doc.at("schema_version").as_int();
  if (version != kMetricsSchemaVersion) {
    throw std::runtime_error("unsupported metrics schema version " +
                             std::to_string(version));
  }
  MetricsSnapshot snap;
  snap.sequence = static_cast<std::uint64_t>(doc.at("sequence").as_int());
  snap.uptime_s = doc.at("uptime_s").as_double();
  for (const util::Json& fj : doc.at("families").items()) {
    FamilySnapshot family;
    family.name = fj.at("name").as_string();
    family.help = fj.at("help").as_string();
    const std::string& type = fj.at("type").as_string();
    if (type == "counter") family.kind = MetricKind::kCounter;
    else if (type == "gauge") family.kind = MetricKind::kGauge;
    else if (type == "histogram") family.kind = MetricKind::kHistogram;
    else throw std::runtime_error("unknown metric type " + type);
    for (const util::Json& sj : fj.at("series").items()) {
      SeriesSnapshot series;
      for (const auto& [k, v] : sj.at("labels").members()) {
        series.labels.emplace_back(k, v.as_string());
      }
      if (family.kind == MetricKind::kHistogram) {
        for (const util::Json& b : sj.at("bounds").items()) {
          series.hist.bounds.push_back(b.as_double());
        }
        for (const util::Json& b : sj.at("buckets").items()) {
          series.hist.buckets.push_back(
              static_cast<std::uint64_t>(b.as_int()));
        }
        if (series.hist.buckets.size() != series.hist.bounds.size() + 1) {
          throw std::runtime_error("histogram bucket/bound size mismatch in " +
                                   family.name);
        }
        series.hist.sum = sj.at("sum").as_double();
      } else {
        series.value = sj.at("value").as_double();
      }
      family.series.push_back(std::move(series));
    }
    snap.families.push_back(std::move(family));
  }
  return snap;
}

// --- text-format parser ------------------------------------------------------

namespace {

struct ParseCursor {
  const std::string& line;
  std::size_t pos = 0;
  int lineno;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("metrics.prom line " + std::to_string(lineno) +
                             ": " + what);
  }
  bool done() const { return pos >= line.size(); }
  char peek() const { return line[pos]; }
  void skip_spaces() {
    while (!done() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }
};

std::string parse_name_token(ParseCursor& c) {
  const std::size_t start = c.pos;
  while (!c.done() && (std::isalnum(static_cast<unsigned char>(c.peek())) ||
                       c.peek() == '_' || c.peek() == ':')) {
    ++c.pos;
  }
  return c.line.substr(start, c.pos - start);
}

Labels parse_label_set(ParseCursor& c) {
  Labels labels;
  if (c.done() || c.peek() != '{') return labels;
  ++c.pos;  // '{'
  while (true) {
    c.skip_spaces();
    if (!c.done() && c.peek() == '}') { ++c.pos; break; }
    const std::string key = parse_name_token(c);
    if (!valid_label_name(key)) c.fail("invalid label name '" + key + "'");
    if (c.done() || c.peek() != '=') c.fail("expected '=' after label name");
    ++c.pos;
    if (c.done() || c.peek() != '"') c.fail("expected '\"' for label value");
    ++c.pos;
    std::string value;
    while (!c.done() && c.peek() != '"') {
      char ch = c.peek();
      if (ch == '\\') {
        ++c.pos;
        if (c.done()) c.fail("dangling escape in label value");
        const char esc = c.peek();
        if (esc == 'n') ch = '\n';
        else if (esc == '\\') ch = '\\';
        else if (esc == '"') ch = '"';
        else c.fail("unknown escape in label value");
      }
      value += ch;
      ++c.pos;
    }
    if (c.done()) c.fail("unterminated label value");
    ++c.pos;  // closing quote
    labels.emplace_back(key, std::move(value));
    c.skip_spaces();
    if (!c.done() && c.peek() == ',') { ++c.pos; continue; }
    if (!c.done() && c.peek() == '}') { ++c.pos; break; }
    c.fail("expected ',' or '}' in label set");
  }
  return labels;
}

double parse_sample_value(ParseCursor& c) {
  c.skip_spaces();
  if (c.done()) c.fail("missing sample value");
  const std::string rest = c.line.substr(c.pos);
  if (rest == "+Inf") return std::numeric_limits<double>::infinity();
  if (rest == "-Inf") return -std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const double v = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) c.fail("malformed sample value '" + rest + "'");
  for (const char* p = end; *p != '\0'; ++p) {
    if (*p != ' ' && *p != '\t') c.fail("trailing junk after sample value");
  }
  return v;
}

/// Histogram series under assembly: cumulative buckets in emission order.
struct PendingHistogram {
  Labels labels;
  std::vector<double> bounds;            // +Inf excluded
  std::vector<std::uint64_t> cumulative;  // one entry per bucket incl. +Inf
  bool saw_inf = false;
  double sum = 0.0;
  bool saw_sum = false;
  std::uint64_t count = 0;
  bool saw_count = false;
  int first_line = 0;
};

std::string labels_key(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1e';
  }
  return key;
}

}  // namespace

MetricsSnapshot parse_prometheus_text(const std::string& text) {
  MetricsSnapshot snap;
  std::map<std::string, std::size_t> family_index;   // name -> families idx
  std::map<std::string, std::string> pending_help;   // HELP seen, TYPE not yet
  // (family name, labels key) -> pending histogram
  std::map<std::pair<std::string, std::string>, PendingHistogram> histograms;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ParseCursor c{line, 0, lineno};
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, keyword, name;
      meta >> hash >> keyword >> name;
      if (keyword == "HELP") {
        if (!valid_metric_name(name)) c.fail("invalid metric name in HELP");
        std::string help;
        std::getline(meta, help);
        if (!help.empty() && help.front() == ' ') help.erase(0, 1);
        pending_help[name] = help;
      } else if (keyword == "TYPE") {
        if (!valid_metric_name(name)) c.fail("invalid metric name in TYPE");
        const auto help_it = pending_help.find(name);
        if (help_it == pending_help.end()) {
          c.fail("TYPE for '" + name + "' without a preceding HELP");
        }
        if (family_index.count(name) != 0) {
          c.fail("duplicate TYPE for '" + name + "'");
        }
        std::string type;
        meta >> type;
        FamilySnapshot family;
        family.name = name;
        family.help = help_it->second;
        if (type == "counter") family.kind = MetricKind::kCounter;
        else if (type == "gauge") family.kind = MetricKind::kGauge;
        else if (type == "histogram") family.kind = MetricKind::kHistogram;
        else c.fail("unknown TYPE '" + type + "'");
        family_index[name] = snap.families.size();
        snap.families.push_back(std::move(family));
      }
      // Other comment lines are ignored, per the format.
      continue;
    }

    const std::string sample_name = parse_name_token(c);
    if (!valid_metric_name(sample_name)) {
      c.fail("invalid metric name '" + sample_name + "'");
    }
    Labels labels = parse_label_set(c);
    const double value = parse_sample_value(c);

    // Resolve the family: exact name, or a histogram suffix.
    std::string base = sample_name;
    enum { kPlain, kBucket, kSum, kCount } role = kPlain;
    auto it = family_index.find(base);
    if (it == family_index.end()) {
      for (const auto& [suffix, r] :
           {std::pair<const char*, int>{"_bucket", kBucket},
            {"_sum", kSum},
            {"_count", kCount}}) {
        const std::size_t len = std::string(suffix).size();
        if (base.size() > len &&
            base.compare(base.size() - len, len, suffix) == 0) {
          const std::string candidate = base.substr(0, base.size() - len);
          const auto cand_it = family_index.find(candidate);
          if (cand_it != family_index.end() &&
              snap.families[cand_it->second].kind == MetricKind::kHistogram) {
            base = candidate;
            role = static_cast<decltype(role)>(r);
            it = cand_it;
            break;
          }
        }
      }
    }
    if (it == family_index.end()) {
      c.fail("sample '" + sample_name + "' has no declared HELP/TYPE family");
    }
    FamilySnapshot& family = snap.families[it->second];

    if (family.kind != MetricKind::kHistogram) {
      if (role != kPlain) c.fail("suffixed sample for non-histogram family");
      SeriesSnapshot series;
      series.labels = std::move(labels);
      series.value = value;
      family.series.push_back(std::move(series));
      continue;
    }

    if (role == kPlain) {
      c.fail("bare sample for histogram family '" + base + "'");
    }
    // Peel off the `le` label for buckets.
    std::string le;
    if (role == kBucket) {
      bool found = false;
      for (auto l = labels.begin(); l != labels.end(); ++l) {
        if (l->first == "le") {
          le = l->second;
          labels.erase(l);
          found = true;
          break;
        }
      }
      if (!found) c.fail("histogram bucket without an le label");
    }
    PendingHistogram& pending = histograms[{base, labels_key(labels)}];
    if (pending.first_line == 0) {
      pending.first_line = lineno;
      pending.labels = labels;
    }
    switch (role) {
      case kBucket: {
        if (pending.saw_inf) c.fail("bucket after the +Inf bucket");
        if (value < 0 || value != std::floor(value)) {
          c.fail("bucket count must be a non-negative integer");
        }
        const auto cumulative = static_cast<std::uint64_t>(value);
        if (!pending.cumulative.empty() &&
            cumulative < pending.cumulative.back()) {
          c.fail("histogram buckets are not cumulative");
        }
        if (le == "+Inf") {
          pending.saw_inf = true;
        } else {
          char* end = nullptr;
          const double bound = std::strtod(le.c_str(), &end);
          if (end == le.c_str() || *end != '\0') {
            c.fail("malformed le bound '" + le + "'");
          }
          if (!pending.bounds.empty() && bound <= pending.bounds.back()) {
            c.fail("histogram le bounds are not ascending");
          }
          pending.bounds.push_back(bound);
        }
        pending.cumulative.push_back(cumulative);
        break;
      }
      case kSum:
        pending.sum = value;
        pending.saw_sum = true;
        break;
      case kCount:
        if (value < 0 || value != std::floor(value)) {
          c.fail("histogram count must be a non-negative integer");
        }
        pending.count = static_cast<std::uint64_t>(value);
        pending.saw_count = true;
        break;
      case kPlain:
        break;
    }
  }

  // Seal the assembled histograms.
  for (auto& [key, pending] : histograms) {
    const std::string& name = key.first;
    auto fail = [&](const std::string& what) {
      throw std::runtime_error("metrics.prom line " +
                               std::to_string(pending.first_line) +
                               ": histogram " + name + " " + what);
    };
    if (!pending.saw_inf) fail("is missing its +Inf bucket");
    if (!pending.saw_sum) fail("is missing _sum");
    if (!pending.saw_count) fail("is missing _count");
    if (pending.count != pending.cumulative.back()) {
      fail("_count disagrees with the +Inf bucket");
    }
    SeriesSnapshot series;
    series.labels = pending.labels;
    series.hist.bounds = pending.bounds;
    series.hist.sum = pending.sum;
    series.hist.buckets.resize(pending.cumulative.size());
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < pending.cumulative.size(); ++i) {
      series.hist.buckets[i] = pending.cumulative[i] - prev;
      prev = pending.cumulative[i];
    }
    snap.families[family_index.at(name)].series.push_back(std::move(series));
  }
  return snap;
}

}  // namespace trinity::obs
