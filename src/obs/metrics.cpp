#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace trinity::obs {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("histogram bounds must be ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> latency_buckets_s() {
  std::vector<double> bounds;
  for (double b = 0.001; b <= 512.0; b *= 2.0) bounds.push_back(b);
  return bounds;  // 1ms, 2ms, ... 512s (20 bounds)
}

std::vector<double> fsync_buckets_s() {
  std::vector<double> bounds;
  for (double b = 1e-5; b <= 3.0; b *= 4.0) bounds.push_back(b);
  return bounds;  // 10us, 40us, ... ~2.62s (10 bounds)
}

// --- snapshots ---------------------------------------------------------------

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  return total;
}

double HistogramSnapshot::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = (i == 0) ? 0.0 : bounds[i - 1];
      // The +Inf bucket has no upper edge; report its lower edge.
      if (i >= bounds.size()) return lo;
      const double hi = bounds[i];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

namespace {

bool labels_equal(const Labels& a, const Labels& b) { return a == b; }

SeriesSnapshot* find_series(FamilySnapshot& family, const Labels& labels) {
  for (auto& s : family.series) {
    if (labels_equal(s.labels, labels)) return &s;
  }
  return nullptr;
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  sequence = std::max(sequence, other.sequence);
  uptime_s = std::max(uptime_s, other.uptime_s);
  for (const FamilySnapshot& theirs : other.families) {
    FamilySnapshot* mine = nullptr;
    for (auto& f : families) {
      if (f.name == theirs.name) { mine = &f; break; }
    }
    if (mine == nullptr) {
      families.push_back(theirs);
      continue;
    }
    if (mine->kind != theirs.kind) {
      throw std::logic_error("merge kind mismatch for metric " + mine->name);
    }
    for (const SeriesSnapshot& series : theirs.series) {
      SeriesSnapshot* existing = find_series(*mine, series.labels);
      if (existing == nullptr) {
        mine->series.push_back(series);
        continue;
      }
      switch (mine->kind) {
        case MetricKind::kCounter:
          existing->value += series.value;
          break;
        case MetricKind::kGauge:
          existing->value = series.value;  // last-writer-wins
          break;
        case MetricKind::kHistogram: {
          if (existing->hist.bounds != series.hist.bounds) {
            throw std::logic_error("merge bucket-layout mismatch for metric " +
                                   mine->name);
          }
          for (std::size_t i = 0; i < existing->hist.buckets.size(); ++i) {
            existing->hist.buckets[i] += series.hist.buckets[i];
          }
          existing->hist.sum += series.hist.sum;
          break;
        }
      }
    }
  }
}

const FamilySnapshot* MetricsSnapshot::find_family(std::string_view name) const {
  for (const auto& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const SeriesSnapshot* MetricsSnapshot::find(std::string_view name,
                                            const Labels& labels) const {
  const FamilySnapshot* family = find_family(name);
  if (family == nullptr) return nullptr;
  for (const auto& s : family->series) {
    if (labels_equal(s.labels, labels)) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_or(std::string_view name, const Labels& labels,
                                 double fallback) const {
  const SeriesSnapshot* s = find(name, labels);
  return s == nullptr ? fallback : s->value;
}

// --- registry ----------------------------------------------------------------

struct MetricsRegistry::Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct MetricsRegistry::Family {
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> bounds;  // histogram only
  std::deque<Series> series;
};

MetricsRegistry::MetricsRegistry() : start_(std::chrono::steady_clock::now()) {}

MetricsRegistry::~MetricsRegistry() = default;

double MetricsRegistry::uptime_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

MetricsRegistry::Series& MetricsRegistry::series(
    std::string_view name, std::string_view help, MetricKind kind,
    const std::vector<double>* bounds, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.help = std::string(help);
    family.kind = kind;
    if (bounds != nullptr) family.bounds = *bounds;
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else {
    if (it->second.kind != kind) {
      throw std::logic_error("metric " + std::string(name) +
                             " re-registered as a different kind");
    }
    if (bounds != nullptr && it->second.bounds != *bounds) {
      throw std::logic_error("metric " + std::string(name) +
                             " re-registered with different buckets");
    }
  }
  Family& family = it->second;
  for (Series& s : family.series) {
    if (labels_equal(s.labels, labels)) return s;
  }
  Series s;
  s.labels = std::move(labels);
  switch (kind) {
    case MetricKind::kCounter:
      s.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      s.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      s.histogram = std::make_unique<Histogram>(family.bounds);
      break;
  }
  family.series.push_back(std::move(s));
  return family.series.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  return *series(name, help, MetricKind::kCounter, nullptr, std::move(labels))
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *series(name, help, MetricKind::kGauge, nullptr, std::move(labels))
              .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      const std::vector<double>& bounds,
                                      Labels labels) {
  return *series(name, help, MetricKind::kHistogram, &bounds, std::move(labels))
              .histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.uptime_s = uptime_s();
  snap.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(mu_);
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.kind = family.kind;
    fs.series.reserve(family.series.size());
    for (const Series& s : family.series) {
      SeriesSnapshot ss;
      ss.labels = s.labels;
      switch (family.kind) {
        case MetricKind::kCounter:
          ss.value = s.counter->value();
          break;
        case MetricKind::kGauge:
          ss.value = s.gauge->value();
          break;
        case MetricKind::kHistogram: {
          ss.hist.bounds = family.bounds;
          ss.hist.buckets.resize(family.bounds.size() + 1);
          // Read sum first: a concurrent observe() between the two reads then
          // surfaces as bucket-count >= sum coverage rather than a sum with a
          // missing sample, keeping counts monotonic across snapshots.
          ss.hist.sum = s.histogram->sum();
          for (std::size_t i = 0; i <= family.bounds.size(); ++i) {
            ss.hist.buckets[i] = s.histogram->bucket(i);
          }
          break;
        }
      }
      fs.series.push_back(std::move(ss));
    }
    snap.families.push_back(std::move(fs));
  }
  return snap;
}

}  // namespace trinity::obs
