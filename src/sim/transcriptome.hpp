#pragma once
// Synthetic transcriptome generator: the substitute for the paper's
// sugarbeet / whitefly / Schizophrenia / Drosophila datasets, none of which
// are redistributable (the sugarbeet set was a private communication from
// Rothamsted Research).
//
// The generator reproduces the two properties the paper calls out as what
// makes transcriptome assembly hard (Section I): a very large dynamic range
// of expression levels (log-normal weights), and alternative splicing
// (genes are exon chains; isoforms skip internal exons). It also plants the
// failure mode Section IV counts: adjacent genes can share a UTR-like
// overlap, which induces the end-to-end "fused" transcripts of Figure 6.

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.hpp"
#include "util/rng.hpp"

namespace trinity::sim {

/// Gene/isoform structure parameters.
struct TranscriptomeOptions {
  std::size_t num_genes = 100;
  std::size_t min_exons = 3;
  std::size_t max_exons = 7;
  std::size_t min_exon_length = 80;
  std::size_t max_exon_length = 350;
  std::size_t max_isoforms_per_gene = 3;
  double exon_skip_probability = 0.35;   ///< per internal exon, per isoform
  double shared_utr_probability = 0.10;  ///< gene starts with prev gene's tail
  std::size_t shared_utr_length = 60;
};

/// One simulated gene: its exons and the isoforms spliced from them.
struct Gene {
  std::string name;
  std::vector<std::string> exons;
  std::vector<std::size_t> isoform_ids;  ///< indices into Transcriptome::transcripts
};

/// A reference transcriptome: the ground truth assemblies are judged
/// against (the paper's "reference transcripts" of Figures 5 and 6).
struct Transcriptome {
  std::vector<Gene> genes;
  std::vector<seq::Sequence> transcripts;       ///< all isoforms
  std::vector<std::int32_t> gene_of_transcript; ///< parallel to transcripts
};

/// Generates a transcriptome. Deterministic for a given rng state.
Transcriptome simulate_transcriptome(const TranscriptomeOptions& options, util::Rng& rng);

/// Read-sampling parameters.
struct ReadSimOptions {
  std::size_t read_length = 100;
  double coverage = 20.0;           ///< mean fold-coverage over all bases
  double expression_sigma = 1.5;    ///< log-normal sigma (dynamic range)
  double error_rate = 0.005;        ///< per-base substitution probability
  bool paired = true;
  std::size_t fragment_length = 280;
  double fragment_sigma = 30.0;
};

/// Simulated reads plus their provenance (for coverage assertions in tests).
struct SimulatedReads {
  std::vector<seq::Sequence> reads;
  std::vector<std::int32_t> transcript_of_read;  ///< parallel to reads
  std::size_t num_fragments = 0;
};

/// Samples RNA-seq reads from a transcriptome. Paired reads are named
/// "frag<N>/1" and "frag<N>/2" (mate 2 reverse-complemented), single-end
/// reads "read<N>".
SimulatedReads simulate_reads(const Transcriptome& transcriptome,
                              const ReadSimOptions& options, util::Rng& rng);

/// A named dataset configuration standing in for one of the paper's inputs.
struct DatasetPreset {
  std::string name;
  TranscriptomeOptions transcriptome;
  ReadSimOptions reads;
  std::uint64_t seed = 1;
};

/// Presets: "sugarbeet_like" (the benchmarking workload, largest),
/// "whitefly_like" (Figure 4 validation), "schizophrenia_like" and
/// "drosophila_like" (Figures 5/6 reference comparisons), and "tiny"
/// (tests). Throws std::invalid_argument for unknown names.
DatasetPreset preset(const std::string& name);

/// Convenience: simulate a preset end to end.
struct Dataset {
  Transcriptome transcriptome;
  SimulatedReads reads;
};
Dataset simulate_dataset(const DatasetPreset& preset);

}  // namespace trinity::sim
