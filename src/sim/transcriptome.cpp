#include "sim/transcriptome.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "seq/dna.hpp"

namespace trinity::sim {

namespace {

std::string random_exon(std::size_t length, util::Rng& rng) {
  std::string out(length, 'A');
  for (auto& c : out) {
    c = seq::code_to_base(static_cast<std::uint8_t>(rng.uniform_below(4)));
  }
  return out;
}

}  // namespace

Transcriptome simulate_transcriptome(const TranscriptomeOptions& options, util::Rng& rng) {
  if (options.min_exons < 1 || options.max_exons < options.min_exons) {
    throw std::invalid_argument("simulate_transcriptome: bad exon count range");
  }
  if (options.min_exon_length < 1 || options.max_exon_length < options.min_exon_length) {
    throw std::invalid_argument("simulate_transcriptome: bad exon length range");
  }

  Transcriptome t;
  t.genes.reserve(options.num_genes);

  std::string previous_tail;  // for shared-UTR fusions
  for (std::size_t g = 0; g < options.num_genes; ++g) {
    Gene gene;
    gene.name = "gene" + std::to_string(g);

    const auto n_exons = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(options.min_exons),
                        static_cast<std::int64_t>(options.max_exons)));
    for (std::size_t e = 0; e < n_exons; ++e) {
      const auto len = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(options.min_exon_length),
                          static_cast<std::int64_t>(options.max_exon_length)));
      gene.exons.push_back(random_exon(len, rng));
    }

    // Shared UTR: this gene's first exon begins with the previous gene's
    // tail — the overlap that makes Trinity emit fused transcripts.
    if (!previous_tail.empty() && rng.bernoulli(options.shared_utr_probability)) {
      gene.exons.front() = previous_tail + gene.exons.front();
    }
    const std::string& last_exon = gene.exons.back();
    const std::size_t tail_len = std::min(options.shared_utr_length, last_exon.size());
    previous_tail = last_exon.substr(last_exon.size() - tail_len);

    // Isoform 0 keeps every exon; the rest skip internal exons at random.
    std::set<std::vector<bool>> seen_masks;
    const std::size_t n_isoforms =
        1 + (n_exons > 2
                 ? static_cast<std::size_t>(rng.uniform_below(options.max_isoforms_per_gene))
                 : 0);
    for (std::size_t iso = 0; iso < n_isoforms; ++iso) {
      std::vector<bool> keep(n_exons, true);
      if (iso > 0) {
        for (std::size_t e = 1; e + 1 < n_exons; ++e) {
          if (rng.bernoulli(options.exon_skip_probability)) keep[e] = false;
        }
      }
      if (!seen_masks.insert(keep).second) continue;  // identical splicing

      seq::Sequence transcript;
      transcript.name = gene.name + "_iso" + std::to_string(gene.isoform_ids.size());
      for (std::size_t e = 0; e < n_exons; ++e) {
        if (keep[e]) transcript.bases += gene.exons[e];
      }
      gene.isoform_ids.push_back(t.transcripts.size());
      t.gene_of_transcript.push_back(static_cast<std::int32_t>(g));
      t.transcripts.push_back(std::move(transcript));
    }
    t.genes.push_back(std::move(gene));
  }
  return t;
}

SimulatedReads simulate_reads(const Transcriptome& transcriptome,
                              const ReadSimOptions& options, util::Rng& rng) {
  SimulatedReads out;
  if (transcriptome.transcripts.empty()) return out;
  if (options.read_length < 1) {
    throw std::invalid_argument("simulate_reads: read_length must be >= 1");
  }

  // Expression weights: log-normal for the paper's "very large dynamic
  // range"; fragments are apportioned by weight * length.
  std::vector<double> weight(transcriptome.transcripts.size());
  double weighted_bases = 0.0;
  std::size_t total_bases = 0;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    weight[i] = rng.lognormal(0.0, options.expression_sigma);
    weighted_bases += weight[i] * static_cast<double>(transcriptome.transcripts[i].length());
    total_bases += transcriptome.transcripts[i].length();
  }
  const double bases_per_fragment =
      static_cast<double>(options.read_length) * (options.paired ? 2.0 : 1.0);
  const double total_fragments =
      options.coverage * static_cast<double>(total_bases) / bases_per_fragment;

  // Substitution errors plus a Phred+33 quality string that marks them:
  // erroneous bases get Q2 ('#'), clean bases Q37 ('F') — the error/quality
  // correlation downstream QC tools rely on.
  auto add_errors = [&](seq::Sequence& read) {
    read.quality.assign(read.bases.size(), 'F');
    for (std::size_t b = 0; b < read.bases.size(); ++b) {
      if (!rng.bernoulli(options.error_rate)) continue;
      const std::uint8_t original = seq::base_to_code(read.bases[b]);
      std::uint8_t substitute = static_cast<std::uint8_t>(rng.uniform_below(3));
      if (substitute >= original) ++substitute;  // force a real change
      read.bases[b] = seq::code_to_base(substitute);
      read.quality[b] = '#';
    }
  };

  std::size_t frag_id = 0;
  for (std::size_t i = 0; i < transcriptome.transcripts.size(); ++i) {
    const auto& transcript = transcriptome.transcripts[i].bases;
    if (transcript.size() < options.read_length) continue;
    const double share =
        weight[i] * static_cast<double>(transcript.size()) / weighted_bases;
    const auto n_fragments =
        static_cast<std::size_t>(std::llround(total_fragments * share));
    for (std::size_t f = 0; f < n_fragments; ++f) {
      std::size_t frag_len =
          options.paired
              ? static_cast<std::size_t>(std::max(
                    static_cast<double>(options.read_length),
                    static_cast<double>(options.fragment_length) +
                        options.fragment_sigma * rng.normal()))
              : options.read_length;
      frag_len = std::min(frag_len, transcript.size());
      const std::size_t start = rng.uniform_below(transcript.size() - frag_len + 1);
      const std::string fragment = transcript.substr(start, frag_len);

      if (options.paired) {
        seq::Sequence mate1;
        mate1.name = "frag" + std::to_string(frag_id) + "/1";
        mate1.bases = fragment.substr(0, std::min(options.read_length, fragment.size()));
        add_errors(mate1);
        seq::Sequence mate2;
        mate2.name = "frag" + std::to_string(frag_id) + "/2";
        const std::size_t mate2_len = std::min(options.read_length, fragment.size());
        mate2.bases = seq::reverse_complement(
            std::string_view(fragment).substr(fragment.size() - mate2_len));
        add_errors(mate2);
        out.reads.push_back(std::move(mate1));
        out.transcript_of_read.push_back(static_cast<std::int32_t>(i));
        out.reads.push_back(std::move(mate2));
        out.transcript_of_read.push_back(static_cast<std::int32_t>(i));
      } else {
        seq::Sequence read;
        read.name = "read" + std::to_string(frag_id);
        read.bases = fragment;
        add_errors(read);
        out.reads.push_back(std::move(read));
        out.transcript_of_read.push_back(static_cast<std::int32_t>(i));
      }
      ++frag_id;
    }
  }
  out.num_fragments = frag_id;
  return out;
}

DatasetPreset preset(const std::string& name) {
  DatasetPreset p;
  p.name = name;
  if (name == "tiny") {
    p.transcriptome.num_genes = 12;
    p.reads.coverage = 15.0;
    p.seed = 7;
  } else if (name == "sugarbeet_like") {
    // The paper's benchmarking workload: its largest dataset (129.8 M
    // reads). Scaled to stay tractable while keeping the contig-length
    // variance that drives the load imbalance of Figures 7/8.
    p.transcriptome.num_genes = 400;
    p.transcriptome.max_exons = 9;
    p.transcriptome.max_exon_length = 450;
    p.reads.coverage = 20.0;
    p.reads.expression_sigma = 1.8;
    p.seed = 20140519;
  } else if (name == "whitefly_like") {
    // Figure 4's validation dataset (~420 k reads).
    p.transcriptome.num_genes = 120;
    p.reads.coverage = 15.0;
    p.seed = 425;
  } else if (name == "schizophrenia_like") {
    // Figure 5/6 reference-comparison dataset (15.35 M reads).
    p.transcriptome.num_genes = 160;
    p.reads.coverage = 18.0;
    p.seed = 1535;
  } else if (name == "drosophila_like") {
    // Figure 5/6 reference-comparison dataset (50 M reads).
    p.transcriptome.num_genes = 200;
    p.transcriptome.max_isoforms_per_gene = 4;
    p.reads.coverage = 18.0;
    p.seed = 5000;
  } else {
    throw std::invalid_argument("preset: unknown dataset '" + name + "'");
  }
  return p;
}

Dataset simulate_dataset(const DatasetPreset& preset) {
  util::Rng rng(preset.seed);
  Dataset d;
  d.transcriptome = simulate_transcriptome(preset.transcriptome, rng);
  d.reads = simulate_reads(d.transcriptome, preset.reads, rng);
  return d;
}

}  // namespace trinity::sim
