#pragma once
// IoFile / IoFs: the storage shim every durable writer goes through.
//
// Production call sites (simpi::write_file_ordered, checkpoint manifest
// commits, kmer partition spills, the FASTA/FASTQ writers) open, write,
// fsync and rename through this layer instead of raw ofstream/syscalls.
// That buys two things at once:
//
//  1. Real failures become typed: every syscall error surfaces as an
//     io::IoError carrying op, path, errno and a transient/permanent
//     classification the retry driver can act on — instead of a silent
//     short write or a bare runtime_error.
//
//  2. Injected failures become possible: an IoFaultPlan installed via
//     ScopedFaultInjection makes the Nth matching operation fail with
//     ENOSPC/EIO, land only half its bytes (short write), or tear the
//     destination at rename — without touching the call sites.
//
// The write path is deliberately explicit about durability:
// write_file_atomic is the commit primitive (tmp + fsync + rename) whose
// guarantee is "either the old content or the new content, never a mix" —
// except under an injected torn rename, which is exactly the failure the
// manifest loader's corrupt-line tolerance exists to absorb.

#include <cstdint>
#include <string>
#include <string_view>

#include "io/error.hpp"
#include "io/fault_plan.hpp"

namespace trinity::io {

/// Installs `plan` as the process-global storage fault plan (arming it if
/// needed). Passing a disabled plan is equivalent to clear_fault_plan().
void set_fault_plan(IoFaultPlan plan);

/// Removes any installed fault plan.
void clear_fault_plan();

/// Copy of the currently installed plan (disabled when none).
[[nodiscard]] IoFaultPlan current_fault_plan();

/// RAII installation for tests, the fault-matrix gate, and the pipeline:
/// installs an enabled plan on construction (a disabled plan is a no-op,
/// leaving any caller-installed plan in place) and restores the previously
/// installed plan on destruction. The restored copy shares the original's
/// fire budget, so nesting composes.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(IoFaultPlan plan) : previous_(current_fault_plan()) {
    if (plan.enabled()) set_fault_plan(std::move(plan));
  }
  ~ScopedFaultInjection() { set_fault_plan(std::move(previous_)); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  IoFaultPlan previous_;
};

/// A writable file descriptor whose operations report typed errors and
/// honor the installed fault plan. Move-only RAII: the destructor closes
/// silently; call close() to observe close-time errors.
class IoFile {
 public:
  /// O_CREAT|O_WRONLY|O_TRUNC with mode 0644.
  [[nodiscard]] static IoFile create(const std::string& path);
  /// O_WRONLY on an existing file (used for offset writes into a
  /// pre-sized shared file).
  [[nodiscard]] static IoFile open_write(const std::string& path);
  /// O_CREAT|O_WRONLY|O_APPEND with mode 0644: the journal-writer shape.
  /// Every write_all lands at end-of-file in one syscall, so concurrent
  /// appenders interleave at record granularity, never mid-record.
  [[nodiscard]] static IoFile open_append(const std::string& path);

  IoFile(IoFile&& other) noexcept;
  IoFile& operator=(IoFile&& other) noexcept;
  IoFile(const IoFile&) = delete;
  IoFile& operator=(const IoFile&) = delete;
  ~IoFile();

  /// Appends all of `data` at the current offset, looping over partial
  /// syscall writes. Throws IoError on failure (injected short writes
  /// leave the partial prefix on disk, then throw transient).
  void write_all(std::string_view data);

  /// Positioned write of all of `data` at `offset` (pwrite loop); the
  /// collective file output uses this for rank slices.
  void pwrite_all(std::string_view data, std::uint64_t offset);

  void fsync();

  /// Closes the descriptor, reporting errors; idempotent.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  /// Bytes successfully written through this handle (both write paths).
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  IoFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  std::uint64_t bytes_written_ = 0;
};

/// Renames `from` over `to` (atomic on POSIX), honoring rename faults: a
/// torn rename truncates `from` to half before renaming, then throws —
/// modeling a crash after a non-atomic metadata commit.
void rename_file(const std::string& from, const std::string& to);

/// create + write_all + close in one call.
void write_file(const std::string& path, std::string_view contents);

/// The atomic commit primitive: writes `path + ".tmp"`, fsyncs, renames
/// over `path`. On any failure the previous content of `path` is intact
/// (injected torn renames excepted, by design).
void write_file_atomic(const std::string& path, std::string_view contents);

/// Size of `path` in bytes; throws IoError (permanent) when unreadable.
[[nodiscard]] std::uint64_t file_size(const std::string& path);

}  // namespace trinity::io
