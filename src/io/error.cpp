#include "io/error.hpp"

#include <cerrno>
#include <cstring>

namespace trinity::io {

namespace {

std::string io_message(IoErrorKind kind, const std::string& op, const std::string& path,
                       int error_code, const std::string& detail) {
  std::string out = "io: " + op + " '" + path + "': " + detail;
  if (error_code != 0) {
    out += " (";
    out += std::strerror(error_code);
    out += ")";
  }
  out += " [";
  out += to_string(kind);
  out += "]";
  return out;
}

std::string parse_message(ParseCategory category, const std::string& path, std::size_t line,
                          std::uint64_t byte_offset, const std::string& detail) {
  return path + ":" + std::to_string(line) + ": " + detail + " [" + to_string(category) +
         ", byte offset " + std::to_string(byte_offset) + "]";
}

}  // namespace

const char* to_string(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kTransient: return "transient";
    case IoErrorKind::kPermanent: return "permanent";
  }
  return "unknown";
}

IoErrorKind classify_errno(int error_code) {
  switch (error_code) {
    case EIO:
    case EINTR:
    case EAGAIN:
    case EBUSY:
    case ETIMEDOUT:
#ifdef ESTALE
    case ESTALE:  // NFS handle went stale; a re-open can succeed
#endif
      return IoErrorKind::kTransient;
    default:
      return IoErrorKind::kPermanent;
  }
}

IoError::IoError(IoErrorKind kind, std::string op, std::string path, int error_code,
                 const std::string& detail)
    : std::runtime_error(io_message(kind, op, path, error_code, detail)),
      kind_(kind),
      op_(std::move(op)),
      path_(std::move(path)),
      error_code_(error_code) {}

const char* to_string(ParseCategory category) {
  switch (category) {
    case ParseCategory::kMissingHeader: return "missing_header";
    case ParseCategory::kTruncatedRecord: return "truncated_record";
    case ParseCategory::kBadSeparator: return "bad_separator";
    case ParseCategory::kInvalidCharacter: return "invalid_character";
    case ParseCategory::kQualityLengthMismatch: return "quality_length_mismatch";
  }
  return "unknown";
}

ParseError::ParseError(ParseCategory category, std::string path, std::size_t line,
                       std::uint64_t byte_offset, const std::string& detail)
    : std::runtime_error(parse_message(category, path, line, byte_offset, detail)),
      category_(category),
      path_(std::move(path)),
      line_(line),
      byte_offset_(byte_offset) {}

}  // namespace trinity::io
