#pragma once
// Storage fault injection for the io layer.
//
// The simpi FaultPlan (simpi/fault.hpp) makes a *rank* die the way real MPI
// jobs die; an IoFaultPlan makes the *filesystem* fail the way real disks
// fail: ENOSPC on the Nth write to a path, EIO mid-spill, a short write
// that leaves partial bytes behind, or a torn write-then-crash at rename —
// the one failure mode atomic-commit protocols exist to survive.
//
// The API deliberately mirrors simpi::FaultPlan: a trigger (the Nth io
// operation matching an op + path glob), arm() allocating a fire budget
// shared by every copy of the plan, and consume_fire() so a retry driver
// re-running the stage with the same plan sees a transient fault exactly
// once. Plans install process-globally via io::ScopedFaultInjection
// (io/io_file.hpp) so production call sites need no plumbing.

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

namespace trinity::io {

/// Operations a storage fault can be attached to.
enum class IoOp : int {
  kNone = 0,
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kAny,  ///< trigger matches every io operation
};

[[nodiscard]] const char* to_string(IoOp op);

/// Parses an IoOp name ("open", "read", "write", "fsync", "rename",
/// "any"); throws std::invalid_argument on anything else.
[[nodiscard]] IoOp io_op_from_string(std::string_view name);

/// What happens when the trigger fires.
enum class IoFaultKind : int {
  kNone = 0,
  kEnospc,      ///< the op fails with ENOSPC (permanent: disk is full)
  kEio,         ///< the op fails with EIO (transient: flaky device)
  kShortWrite,  ///< half the bytes land on disk, then a transient failure
  kTornRename,  ///< source truncated to half, renamed, then a crash —
                ///< the destination holds a torn tail
};

[[nodiscard]] const char* to_string(IoFaultKind kind);

/// Parses an IoFaultKind name ("enospc", "eio", "short_write",
/// "torn_rename"); throws std::invalid_argument on anything else.
[[nodiscard]] IoFaultKind io_fault_kind_from_string(std::string_view name);

/// Shell-style glob match supporting '*' (any run, including '/') and '?'
/// (any single byte). Matching is over the whole string.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

/// An injected storage-fault schedule. Default-constructed plans are
/// disabled and cost one predicted branch per io operation.
struct IoFaultPlan {
  IoOp op = IoOp::kNone;            ///< operation class the trigger counts
  std::string path_glob;            ///< glob over the op's path; empty disables
  int at_op = 1;                    ///< fire on the Nth matching op (1-based)
  IoFaultKind kind = IoFaultKind::kNone;
  int max_fires = 1;                ///< total fires across stage relaunches

  [[nodiscard]] bool enabled() const {
    return op != IoOp::kNone && kind != IoFaultKind::kNone && !path_glob.empty();
  }

  /// True when `observed_op` on `path` is the kind of operation this plan
  /// counts (trigger-counter match; firing additionally needs the Nth-op
  /// condition and budget).
  [[nodiscard]] bool matches(IoOp observed_op, std::string_view path) const;

  /// Allocates the shared fire budget and op counter. Idempotent; called
  /// automatically when the plan is installed, but a retry driver that
  /// wants once-across-relaunches semantics must arm its own copy first
  /// and install that same copy for every launch.
  void arm();

  /// Advances the matching-op counter and consumes one fire when this is
  /// the at_op-th match with budget remaining. False otherwise.
  [[nodiscard]] bool should_fire(IoOp observed_op, std::string_view path) const;

  /// Parses the colon-separated plan syntax used by tests, benches and
  /// scripts/check.sh:  OP:GLOB:N:KIND[:FIRES]
  /// e.g. "write:*run_manifest.jsonl.tmp:1:enospc" or
  /// "rename:*manifest*:1:torn_rename:2". Throws std::invalid_argument on
  /// malformed specs.
  [[nodiscard]] static IoFaultPlan parse(std::string_view spec);

  /// Shared across copies so a retried stage does not re-fire a transient
  /// fault (the fire budget) and so the Nth-op trigger counts operations
  /// globally, not per plan copy.
  std::shared_ptr<std::atomic<int>> fires_remaining;
  std::shared_ptr<std::atomic<int>> ops_matched;
};

}  // namespace trinity::io
