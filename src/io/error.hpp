#pragma once
// Typed error taxonomy for the storage and input layer.
//
// The paper's ReadsToTranscripts scheme has every rank redundantly stream
// the whole read file, so a single flaky disk or one malformed record used
// to abort all P ranks with an undiagnosable bare runtime_error. This
// header splits that failure domain in two:
//
//  * IoError — a syscall-level storage failure, classified transient
//    (worth retrying: EIO, EINTR, a torn write) or permanent (retrying
//    cannot help: ENOSPC, EACCES, a missing file). The pipeline's retry
//    driver re-launches a stage only for transient errors and fails fast
//    with the full op/path/errno context otherwise.
//
//  * ParseError — malformed *input data*, never retryable, carrying the
//    exact location (path, 1-based line, byte offset of that line) and a
//    category so a strict-mode failure is immediately diagnosable.
//
// ParseDiagnostics is the graceful-degradation side of the same taxonomy:
// tolerant parsers count what they quarantined per category instead of
// throwing, and the counts flow into run_report.json (schema v2).

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace trinity::io {

/// Whether retrying the failed operation can plausibly succeed.
enum class IoErrorKind {
  kTransient,  ///< worth retrying: EIO, EINTR, EAGAIN, a short/torn write
  kPermanent,  ///< retrying cannot help: ENOSPC, EACCES, ENOENT, EROFS
};

[[nodiscard]] const char* to_string(IoErrorKind kind);

/// Maps an errno value to the retry classification above. Unknown codes
/// classify permanent: failing fast beats retrying blindly.
[[nodiscard]] IoErrorKind classify_errno(int error_code);

/// A storage-layer failure: which operation, on which path, with which
/// errno, and whether a retry is worthwhile.
class IoError : public std::runtime_error {
 public:
  IoError(IoErrorKind kind, std::string op, std::string path, int error_code,
          const std::string& detail);

  [[nodiscard]] IoErrorKind kind() const { return kind_; }
  [[nodiscard]] bool transient() const { return kind_ == IoErrorKind::kTransient; }
  [[nodiscard]] const std::string& op() const { return op_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// errno of the failed syscall; 0 for synthetic failures (e.g. a file
  /// shorter than the collective write expected).
  [[nodiscard]] int error_code() const { return error_code_; }

 private:
  IoErrorKind kind_;
  std::string op_;
  std::string path_;
  int error_code_;
};

/// What exactly was wrong with a malformed input record.
enum class ParseCategory : int {
  kMissingHeader = 0,       ///< data before any '>'/'@' header
  kTruncatedRecord,         ///< EOF in the middle of a FASTQ record
  kBadSeparator,            ///< FASTQ '+' separator line missing or wrong
  kInvalidCharacter,        ///< non-alphabetic byte in sequence data
  kQualityLengthMismatch,   ///< FASTQ quality length != sequence length
};

inline constexpr std::size_t kNumParseCategories = 5;

[[nodiscard]] const char* to_string(ParseCategory category);

/// Malformed input data at an exact location. Never retryable: the bytes
/// on disk are wrong, not the read of them.
class ParseError : public std::runtime_error {
 public:
  ParseError(ParseCategory category, std::string path, std::size_t line,
             std::uint64_t byte_offset, const std::string& detail);

  [[nodiscard]] ParseCategory category() const { return category_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// 1-based line number of the offending line.
  [[nodiscard]] std::size_t line() const { return line_; }
  /// Byte offset of the start of the offending line within the file.
  [[nodiscard]] std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  ParseCategory category_;
  std::string path_;
  std::size_t line_;
  std::uint64_t byte_offset_;
};

/// Per-category quarantine counts accumulated by a tolerant parser. A run
/// that degrades gracefully completes *and* reports exactly what it
/// dropped — these counts surface in run_report.json (schema v2) and as
/// ResourceTrace counters.
struct ParseDiagnostics {
  /// Malformed records quarantined (dropped), by category.
  std::array<std::uint64_t, kNumParseCategories> quarantined{};
  /// Records rewritten in repair mode (invalid bases -> 'N', quality
  /// padded/trimmed) instead of quarantined.
  std::uint64_t records_repaired = 0;
  /// Records returned successfully (clean or repaired).
  std::uint64_t records_ok = 0;
  /// Blank / whitespace-only lines skipped (informational, not an error).
  std::uint64_t blank_lines = 0;
  /// Lines that carried a CRLF ending (informational).
  std::uint64_t crlf_lines = 0;

  [[nodiscard]] std::uint64_t& of(ParseCategory category) {
    return quarantined[static_cast<std::size_t>(category)];
  }
  [[nodiscard]] std::uint64_t of(ParseCategory category) const {
    return quarantined[static_cast<std::size_t>(category)];
  }
  /// Total records quarantined across all categories.
  [[nodiscard]] std::uint64_t records_quarantined() const {
    std::uint64_t total = 0;
    for (const auto v : quarantined) total += v;
    return total;
  }
  /// Accumulates `other` into this (e.g. input-file parse + stage parse).
  void merge(const ParseDiagnostics& other) {
    for (std::size_t i = 0; i < kNumParseCategories; ++i) quarantined[i] += other.quarantined[i];
    records_repaired += other.records_repaired;
    records_ok += other.records_ok;
    blank_lines += other.blank_lines;
    crlf_lines += other.crlf_lines;
  }
};

}  // namespace trinity::io
