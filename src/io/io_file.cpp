#include "io/io_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <mutex>

#include "trace/span_recorder.hpp"

namespace trinity::io {

namespace {

// The installed plan. Copies share the trigger/budget atomics, so handing
// out copies under the mutex keeps the hot path short while firing
// decisions stay globally consistent across threads (simpi ranks).
std::mutex g_plan_mu;
IoFaultPlan g_plan;

IoFaultPlan installed_plan() {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  return g_plan;
}

[[noreturn]] void throw_injected(IoOp op, const std::string& path, IoFaultKind kind,
                                 const std::string& detail) {
  switch (kind) {
    case IoFaultKind::kEnospc:
      throw IoError(IoErrorKind::kPermanent, to_string(op), path, ENOSPC,
                    "injected fault: " + detail);
    case IoFaultKind::kEio:
      throw IoError(IoErrorKind::kTransient, to_string(op), path, EIO,
                    "injected fault: " + detail);
    case IoFaultKind::kShortWrite:
      throw IoError(IoErrorKind::kTransient, to_string(op), path, EIO,
                    "injected fault: " + detail);
    case IoFaultKind::kTornRename:
      throw IoError(IoErrorKind::kPermanent, to_string(op), path, EIO,
                    "injected fault: " + detail);
    case IoFaultKind::kNone: break;
  }
  throw IoError(IoErrorKind::kPermanent, to_string(op), path, 0, "injected fault");
}

/// The per-operation injection hook. Returns the fault to act out for ops
/// with non-throw semantics (short write, torn rename); plain failure
/// kinds throw from here.
IoFaultKind fault_point(IoOp op, const std::string& path) {
  const IoFaultPlan plan = installed_plan();
  if (!plan.should_fire(op, path)) return IoFaultKind::kNone;
  // Every injected fault — thrown here or acted out by the caller — leaves
  // an instant event on the firing thread's track.
  trace::instant("io.fault", trace::kCatIo,
                 std::string(to_string(plan.kind)) + " at " + to_string(op) + " " + path);
  switch (plan.kind) {
    case IoFaultKind::kShortWrite:
      // Only a write can land partial bytes; elsewhere degrade to EIO.
      if (op == IoOp::kWrite) return IoFaultKind::kShortWrite;
      throw_injected(op, path, IoFaultKind::kEio, "short_write degraded to eio");
    case IoFaultKind::kTornRename:
      if (op == IoOp::kRename) return IoFaultKind::kTornRename;
      throw_injected(op, path, IoFaultKind::kEio, "torn_rename degraded to eio");
    default:
      throw_injected(op, path, plan.kind, std::string(to_string(plan.kind)) + " on op " +
                                              std::to_string(plan.at_op));
  }
  return IoFaultKind::kNone;
}

[[noreturn]] void throw_errno(const char* op, const std::string& path, int err,
                              const std::string& detail) {
  throw IoError(classify_errno(err), op, path, err, detail);
}

}  // namespace

void set_fault_plan(IoFaultPlan plan) {
  if (plan.enabled()) plan.arm();
  std::lock_guard<std::mutex> lock(g_plan_mu);
  g_plan = std::move(plan);
}

void clear_fault_plan() {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  g_plan = IoFaultPlan{};
}

IoFaultPlan current_fault_plan() { return installed_plan(); }

IoFile IoFile::create(const std::string& path) {
  trace::SpanScope span("io.open", trace::kCatIo);
  if (span) span.set_detail(path);
  fault_point(IoOp::kOpen, path);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", path, errno, "cannot create");
  return IoFile(fd, path);
}

IoFile IoFile::open_write(const std::string& path) {
  trace::SpanScope span("io.open", trace::kCatIo);
  if (span) span.set_detail(path);
  fault_point(IoOp::kOpen, path);
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) throw_errno("open", path, errno, "cannot open for writing");
  return IoFile(fd, path);
}

IoFile IoFile::open_append(const std::string& path) {
  trace::SpanScope span("io.open", trace::kCatIo);
  if (span) span.set_detail(path);
  fault_point(IoOp::kOpen, path);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) throw_errno("open", path, errno, "cannot open for append");
  return IoFile(fd, path);
}

IoFile::IoFile(IoFile&& other) noexcept : fd_(other.fd_), path_(std::move(other.path_)),
                                          bytes_written_(other.bytes_written_) {
  other.fd_ = -1;
}

IoFile& IoFile::operator=(IoFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    bytes_written_ = other.bytes_written_;
    other.fd_ = -1;
  }
  return *this;
}

IoFile::~IoFile() {
  if (fd_ >= 0) ::close(fd_);
}

void IoFile::write_all(std::string_view data) {
  trace::SpanScope span("io.write", trace::kCatIo);
  if (span) {
    span.arg("bytes", static_cast<double>(data.size()));
    span.set_detail(path_);
  }
  const IoFaultKind fault = fault_point(IoOp::kWrite, path_);
  if (fault == IoFaultKind::kShortWrite) {
    // Land half the payload, then fail: the on-disk file now holds a
    // partial record, which the consumer must never read as complete.
    const std::size_t half = data.size() / 2;
    std::size_t written = 0;
    while (written < half) {
      const ssize_t n = ::write(fd_, data.data() + written, half - written);
      if (n < 0) break;
      written += static_cast<std::size_t>(n);
      bytes_written_ += static_cast<std::uint64_t>(n);
    }
    throw IoError(IoErrorKind::kTransient, "write", path_, EIO,
                  "injected fault: short write (" + std::to_string(written) + " of " +
                      std::to_string(data.size()) + " bytes)");
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_, errno,
                  "write failure after " + std::to_string(written) + " of " +
                      std::to_string(data.size()) + " bytes");
    }
    written += static_cast<std::size_t>(n);
    bytes_written_ += static_cast<std::uint64_t>(n);
  }
}

void IoFile::pwrite_all(std::string_view data, std::uint64_t offset) {
  trace::SpanScope span("io.write", trace::kCatIo);
  if (span) {
    span.arg("bytes", static_cast<double>(data.size()));
    span.arg("offset", static_cast<double>(offset));
    span.set_detail(path_);
  }
  const IoFaultKind fault = fault_point(IoOp::kWrite, path_);
  if (fault == IoFaultKind::kShortWrite) {
    const std::size_t half = data.size() / 2;
    std::size_t written = 0;
    while (written < half) {
      const ssize_t n = ::pwrite(fd_, data.data() + written, half - written,
                                 static_cast<off_t>(offset + written));
      if (n < 0) break;
      written += static_cast<std::size_t>(n);
      bytes_written_ += static_cast<std::uint64_t>(n);
    }
    throw IoError(IoErrorKind::kTransient, "write", path_, EIO,
                  "injected fault: short write (" + std::to_string(written) + " of " +
                      std::to_string(data.size()) + " bytes at offset " +
                      std::to_string(offset) + ")");
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + written, data.size() - written,
                               static_cast<off_t>(offset + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_, errno,
                  "positioned write failure at offset " + std::to_string(offset + written));
    }
    written += static_cast<std::size_t>(n);
    bytes_written_ += static_cast<std::uint64_t>(n);
  }
}

void IoFile::fsync() {
  trace::SpanScope span("io.fsync", trace::kCatIo);
  if (span) span.set_detail(path_);
  fault_point(IoOp::kFsync, path_);
  if (::fsync(fd_) < 0) throw_errno("fsync", path_, errno, "fsync failure");
}

void IoFile::close() {
  if (fd_ < 0) return;
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) < 0) throw_errno("close", path_, errno, "close failure");
}

void rename_file(const std::string& from, const std::string& to) {
  trace::SpanScope span("io.rename", trace::kCatIo);
  if (span) span.set_detail(to);
  // The plan may target either side of the rename; count the op once,
  // against the destination first (commit targets name their final path).
  IoFaultKind fault = fault_point(IoOp::kRename, to);
  if (fault == IoFaultKind::kNone) fault = fault_point(IoOp::kRename, from);
  if (fault == IoFaultKind::kTornRename) {
    // Model a crash after a non-atomic commit: the destination ends up
    // with only a prefix of the new content, and the caller sees a
    // permanent failure (the "process died here" signal).
    std::error_code ec;
    const auto size = std::filesystem::file_size(from, ec);
    if (!ec) std::filesystem::resize_file(from, size / 2, ec);
    std::filesystem::rename(from, to, ec);
    throw IoError(IoErrorKind::kPermanent, "rename", to, EIO,
                  "injected fault: torn rename (crash after partial write of '" + from + "')");
  }
  if (::rename(from.c_str(), to.c_str()) < 0) {
    throw_errno("rename", to, errno, "cannot rename '" + from + "' over");
  }
}

void write_file(const std::string& path, std::string_view contents) {
  IoFile out = IoFile::create(path);
  out.write_all(contents);
  out.close();
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  IoFile out = IoFile::create(tmp);
  out.write_all(contents);
  out.fsync();
  out.close();
  rename_file(tmp, path);
}

std::uint64_t file_size(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw IoError(IoErrorKind::kPermanent, "stat", path, ec.value(), "cannot stat");
  }
  return static_cast<std::uint64_t>(size);
}

}  // namespace trinity::io
