#include "io/fault_plan.hpp"

#include <stdexcept>
#include <vector>

namespace trinity::io {

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kNone: return "none";
    case IoOp::kOpen: return "open";
    case IoOp::kRead: return "read";
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kAny: return "any";
  }
  return "unknown";
}

IoOp io_op_from_string(std::string_view name) {
  for (const IoOp op :
       {IoOp::kOpen, IoOp::kRead, IoOp::kWrite, IoOp::kFsync, IoOp::kRename, IoOp::kAny}) {
    if (name == to_string(op)) return op;
  }
  throw std::invalid_argument("unknown io op: " + std::string(name));
}

const char* to_string(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone: return "none";
    case IoFaultKind::kEnospc: return "enospc";
    case IoFaultKind::kEio: return "eio";
    case IoFaultKind::kShortWrite: return "short_write";
    case IoFaultKind::kTornRename: return "torn_rename";
  }
  return "unknown";
}

IoFaultKind io_fault_kind_from_string(std::string_view name) {
  for (const IoFaultKind kind : {IoFaultKind::kEnospc, IoFaultKind::kEio,
                                 IoFaultKind::kShortWrite, IoFaultKind::kTornRename}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown io fault kind: " + std::string(name));
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer match with star backtracking (the classic
  // linear-ish algorithm; patterns here are short path globs).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool IoFaultPlan::matches(IoOp observed_op, std::string_view path) const {
  if (!enabled()) return false;
  if (op != IoOp::kAny && op != observed_op) return false;
  return glob_match(path_glob, path);
}

void IoFaultPlan::arm() {
  if (!fires_remaining) fires_remaining = std::make_shared<std::atomic<int>>(max_fires);
  if (!ops_matched) ops_matched = std::make_shared<std::atomic<int>>(0);
}

bool IoFaultPlan::should_fire(IoOp observed_op, std::string_view path) const {
  if (!fires_remaining || !ops_matched) return false;  // never armed
  if (!matches(observed_op, path)) return false;
  const int seen = ops_matched->fetch_add(1, std::memory_order_acq_rel) + 1;
  if (seen != at_op) return false;
  // Decrement-if-positive, mirroring simpi::FaultPlan::consume_fire.
  int current = fires_remaining->load(std::memory_order_relaxed);
  while (current > 0) {
    if (fires_remaining->compare_exchange_weak(current, current - 1,
                                               std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

IoFaultPlan IoFaultPlan::parse(std::string_view spec) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ':') {
      parts.push_back(spec.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  if (parts.size() < 4 || parts.size() > 5) {
    throw std::invalid_argument("io fault plan: expected OP:GLOB:N:KIND[:FIRES], got '" +
                                std::string(spec) + "'");
  }
  IoFaultPlan plan;
  plan.op = io_op_from_string(parts[0]);
  plan.path_glob = std::string(parts[1]);
  if (plan.path_glob.empty()) {
    throw std::invalid_argument("io fault plan: empty path glob in '" + std::string(spec) + "'");
  }
  const auto parse_int = [&spec](std::string_view s, const char* field) {
    try {
      std::size_t used = 0;
      const int v = std::stoi(std::string(s), &used);
      if (used != s.size() || v < 1) throw std::invalid_argument("range");
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("io fault plan: bad " + std::string(field) + " in '" +
                                  std::string(spec) + "'");
    }
  };
  plan.at_op = parse_int(parts[2], "op index");
  plan.kind = io_fault_kind_from_string(parts[3]);
  if (parts.size() == 5) plan.max_fires = parse_int(parts[4], "fire count");
  return plan;
}

}  // namespace trinity::io
