#include "serve/admission.hpp"

namespace trinity::serve {

const char* to_string(AdmitCode code) {
  switch (code) {
    case AdmitCode::kAccepted: return "accepted";
    case AdmitCode::kQueueFull: return "queue_full";
    case AdmitCode::kTenantQueueFull: return "tenant_queue_full";
    case AdmitCode::kTenantRankQuota: return "tenant_rank_quota";
    case AdmitCode::kTenantRssBudget: return "tenant_rss_budget";
    case AdmitCode::kPoolTooSmall: return "pool_too_small";
    case AdmitCode::kInvalidSpec: return "invalid_spec";
    case AdmitCode::kShutdown: return "shutdown";
  }
  return "?";
}

AdmissionController::AdmissionController(int total_ranks, int max_queue_depth,
                                         TenantQuota default_quota,
                                         std::map<std::string, TenantQuota> tenant_quotas,
                                         double min_plausible_runtime_s)
    : total_ranks_(total_ranks),
      max_queue_depth_(max_queue_depth),
      default_quota_(default_quota),
      tenant_quotas_(std::move(tenant_quotas)),
      min_plausible_runtime_s_(min_plausible_runtime_s) {}

const TenantQuota& AdmissionController::quota_for(const std::string& tenant) const {
  const auto it = tenant_quotas_.find(tenant);
  return it != tenant_quotas_.end() ? it->second : default_quota_;
}

AdmissionController::Usage AdmissionController::usage_of(const std::string& tenant) const {
  const auto it = usage_.find(tenant);
  return it != usage_.end() ? it->second : Usage{};
}

AdmitResult AdmissionController::admit(const JobSpec& spec) const {
  const TenantQuota& quota = quota_for(spec.tenant);
  const int need = spec.options.nranks;

  // Permanent rejects first: these could never run, no matter how long
  // the job waited, so parking them in the queue would wedge it.
  if (need > total_ranks_) {
    return {AdmitCode::kPoolTooSmall,
            "job needs " + std::to_string(need) + " rank(s) but the server pool has " +
                std::to_string(total_ranks_)};
  }
  if (need > quota.max_concurrent_ranks) {
    return {AdmitCode::kTenantRankQuota,
            "job needs " + std::to_string(need) + " rank(s) but tenant '" + spec.tenant +
                "' may hold at most " + std::to_string(quota.max_concurrent_ranks)};
  }
  if (quota.rss_budget_bytes != 0 && spec.rss_estimate_bytes > quota.rss_budget_bytes) {
    return {AdmitCode::kTenantRssBudget,
            "job declares " + std::to_string(spec.rss_estimate_bytes) +
                " B RSS but tenant '" + spec.tenant + "' is budgeted " +
                std::to_string(quota.rss_budget_bytes) + " B"};
  }
  // Unsatisfiable deadlines are permanent too: admitting a job that must
  // be killed the moment it dispatches only wastes a lease. deadline_s is
  // relative to admission, so a negative value is already in the past.
  if (spec.deadline_s < 0.0) {
    return {AdmitCode::kInvalidSpec,
            "deadline-s " + std::to_string(spec.deadline_s) + " is in the past"};
  }
  if (spec.deadline_s > 0.0 && spec.deadline_s < min_plausible_runtime_s_) {
    return {AdmitCode::kInvalidSpec,
            "deadline-s " + std::to_string(spec.deadline_s) +
                " is below the server's minimum plausible runtime of " +
                std::to_string(min_plausible_runtime_s_) + " s"};
  }

  // Transient rejects: backpressure, retry later.
  if (queue_depth_ >= max_queue_depth_) {
    return {AdmitCode::kQueueFull,
            "server queue is at its bound of " + std::to_string(max_queue_depth_)};
  }
  const Usage u = usage_of(spec.tenant);
  if (u.queued >= quota.max_queued_jobs) {
    return {AdmitCode::kTenantQueueFull,
            "tenant '" + spec.tenant + "' already has " + std::to_string(u.queued) +
                " queued job(s) (quota " + std::to_string(quota.max_queued_jobs) + ")"};
  }
  return {};
}

bool AdmissionController::has_running_headroom(const JobSpec& spec) const {
  const TenantQuota& quota = quota_for(spec.tenant);
  const Usage u = usage_of(spec.tenant);
  if (u.running_ranks + spec.options.nranks > quota.max_concurrent_ranks) return false;
  if (quota.rss_budget_bytes != 0 &&
      u.running_rss + effective_rss(spec) > quota.rss_budget_bytes) {
    return false;
  }
  return true;
}

std::uint64_t AdmissionController::effective_rss(const JobSpec& spec) const {
  const Usage u = usage_of(spec.tenant);
  const auto ewma = static_cast<std::uint64_t>(u.measured_rss_ewma);
  std::uint64_t effective = ewma > spec.rss_estimate_bytes ? ewma : spec.rss_estimate_bytes;
  // Never charge above the tenant's whole budget: a history of oversized
  // runs should serialize the tenant's dispatches (one at a time against a
  // full budget), not starve it out of the scheduler entirely.
  const TenantQuota& quota = quota_for(spec.tenant);
  if (quota.rss_budget_bytes != 0 && effective > quota.rss_budget_bytes) {
    effective = quota.rss_budget_bytes;
  }
  return effective;
}

void AdmissionController::note_measured(const std::string& tenant,
                                        std::uint64_t measured_rss_bytes) {
  if (measured_rss_bytes == 0) return;  // no sampler data; nothing learned
  Usage& u = usage(tenant);
  constexpr double kAlpha = 0.3;  // a few jobs of history dominate
  u.measured_rss_ewma =
      u.measured_rss_ewma == 0.0
          ? static_cast<double>(measured_rss_bytes)
          : kAlpha * static_cast<double>(measured_rss_bytes) +
                (1.0 - kAlpha) * u.measured_rss_ewma;
}

std::uint64_t AdmissionController::measured_rss_ewma(const std::string& tenant) const {
  return static_cast<std::uint64_t>(usage_of(tenant).measured_rss_ewma);
}

void AdmissionController::note_queued(const JobSpec& spec) {
  ++usage(spec.tenant).queued;
  ++queue_depth_;
}

void AdmissionController::note_started(const JobSpec& spec) {
  note_started(spec, spec.rss_estimate_bytes);
}

void AdmissionController::note_started(const JobSpec& spec, std::uint64_t rss_charge) {
  Usage& u = usage(spec.tenant);
  --u.queued;
  --queue_depth_;
  u.running_ranks += spec.options.nranks;
  u.running_rss += rss_charge;
}

void AdmissionController::note_requeued(const JobSpec& spec) {
  note_requeued(spec, spec.rss_estimate_bytes);
}

void AdmissionController::note_requeued(const JobSpec& spec, std::uint64_t rss_charge) {
  note_finished(spec, rss_charge);
  note_queued(spec);
}

void AdmissionController::note_finished(const JobSpec& spec) {
  note_finished(spec, spec.rss_estimate_bytes);
}

void AdmissionController::note_finished(const JobSpec& spec, std::uint64_t rss_charge) {
  Usage& u = usage(spec.tenant);
  u.running_ranks -= spec.options.nranks;
  u.running_rss -= rss_charge;
}

void AdmissionController::note_dropped(const JobSpec& spec) {
  --usage(spec.tenant).queued;
  --queue_depth_;
}

}  // namespace trinity::serve
