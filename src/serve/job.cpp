#include "serve/job.hpp"

#include <stdexcept>

#include "io/fault_plan.hpp"

namespace trinity::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempting: return "preempting";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

JobSpec parse_job_spec_text(std::string_view text, const std::string& origin,
                            const pipeline::PipelineOptions& defaults) {
  // The serve-only keys ride on the full pipeline flag set; Config's
  // strict unknown-key handling then covers the whole document.
  Config cfg("trinity_serve", "job spec");
  cfg.with_pipeline(defaults)
      .flag_string("tenant", "", "owning tenant (required)")
      .flag_string("job-id", "", "job id, unique per server (assigned when empty)")
      .flag_int("priority", 0, "scheduling priority; higher preempts lower")
      .flag_string("reads", "", "input reads FASTA/FASTQ path (required)")
      .flag_int("rss-estimate-mb", 64, "declared peak RSS in MiB, for admission")
      .flag_string("io-fault", "",
                   "injected storage fault, OP:GLOB:N:KIND[:FIRES] (testing)");
  cfg.parse_json_text(text, origin);

  JobSpec spec;
  spec.tenant = cfg.get_string("tenant");
  if (spec.tenant.empty()) throw ConfigError("tenant", "required for job submission");
  spec.job_id = cfg.get_string("job-id");
  spec.priority = static_cast<int>(cfg.get_int("priority"));
  spec.reads_path = cfg.get_string("reads");
  if (spec.reads_path.empty()) throw ConfigError("reads", "required for job submission");
  const std::int64_t rss_mb = cfg.get_int("rss-estimate-mb");
  if (rss_mb < 0) {
    throw ConfigError("rss-estimate-mb",
                      "must be >= 0 (got " + std::to_string(rss_mb) + ")");
  }
  spec.rss_estimate_bytes = static_cast<std::uint64_t>(rss_mb) * 1024 * 1024;

  spec.options = cfg.pipeline_options();
  const std::string io_fault = cfg.get_string("io-fault");
  if (!io_fault.empty()) {
    try {
      spec.options.io_fault = io::IoFaultPlan::parse(io_fault);
    } catch (const std::invalid_argument& e) {
      throw ConfigError("io-fault", e.what());
    }
  }
  return spec;
}

}  // namespace trinity::serve
