#include "serve/job.hpp"

#include <stdexcept>

#include "io/fault_plan.hpp"

namespace trinity::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempting: return "preempting";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kQuarantined: return "quarantined";
    case JobState::kKilled: return "killed";
  }
  return "?";
}

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kNone: return "none";
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kFailed: return "failed";
    case JobOutcome::kQuarantined: return "quarantined";
    case JobOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case JobOutcome::kHung: return "hung";
  }
  return "?";
}

namespace {

/// The serve-only keys on top of the full pipeline flag set; shared
/// between parse (defaults from the server) and serialization (defaults
/// from the spec being dumped, so to_json round-trips its values).
void register_serve_flags(Config& cfg, const pipeline::PipelineOptions& pipeline_defaults,
                          const std::string& tenant, const std::string& job_id,
                          std::int64_t priority, const std::string& reads,
                          std::int64_t rss_estimate_mb, double deadline_s,
                          std::int64_t job_attempts, const std::string& io_fault) {
  cfg.with_pipeline(pipeline_defaults)
      .flag_string("tenant", tenant, "owning tenant (required)")
      .flag_string("job-id", job_id, "job id, unique per server (assigned when empty)")
      .flag_int("priority", priority, "scheduling priority; higher preempts lower")
      .flag_string("reads", reads, "input reads FASTA/FASTQ path (required)")
      .flag_int("rss-estimate-mb", rss_estimate_mb,
                "declared peak RSS in MiB, for admission")
      .flag_double("deadline-s", deadline_s,
                   "wall-clock budget from admission; the watchdog cancels the job "
                   "past it (0 = no deadline)")
      .flag_int("job-attempts", job_attempts,
                "transient-failure dispatches before quarantine "
                "(0 = the server's default budget)")
      .flag_string("io-fault", io_fault,
                   "injected storage fault, OP:GLOB:N:KIND[:FIRES] (testing)");
}

/// Renders an IoFaultPlan back into the OP:GLOB:N:KIND:FIRES spec text
/// IoFaultPlan::parse accepts; empty for a disabled plan.
std::string io_fault_spec_text(const io::IoFaultPlan& plan) {
  if (!plan.enabled()) return "";
  return std::string(io::to_string(plan.op)) + ":" + plan.path_glob + ":" +
         std::to_string(plan.at_op) + ":" + io::to_string(plan.kind) + ":" +
         std::to_string(plan.max_fires);
}

}  // namespace

JobSpec parse_job_spec_text(std::string_view text, const std::string& origin,
                            const pipeline::PipelineOptions& defaults) {
  // The serve-only keys ride on the full pipeline flag set; Config's
  // strict unknown-key handling then covers the whole document.
  Config cfg("trinity_serve", "job spec");
  register_serve_flags(cfg, defaults, "", "", 0, "", 64, 0.0, 0, "");
  cfg.parse_json_text(text, origin);

  JobSpec spec;
  spec.tenant = cfg.get_string("tenant");
  if (spec.tenant.empty()) throw ConfigError("tenant", "required for job submission");
  spec.job_id = cfg.get_string("job-id");
  spec.priority = static_cast<int>(cfg.get_int("priority"));
  spec.reads_path = cfg.get_string("reads");
  if (spec.reads_path.empty()) throw ConfigError("reads", "required for job submission");
  const std::int64_t rss_mb = cfg.get_int("rss-estimate-mb");
  if (rss_mb < 0) {
    throw ConfigError("rss-estimate-mb",
                      "must be >= 0 (got " + std::to_string(rss_mb) + ")");
  }
  spec.rss_estimate_bytes = static_cast<std::uint64_t>(rss_mb) * 1024 * 1024;
  spec.deadline_s = cfg.get_double("deadline-s");
  const std::int64_t job_attempts = cfg.get_int("job-attempts");
  if (job_attempts < 0) {
    throw ConfigError("job-attempts",
                      "must be >= 0 (got " + std::to_string(job_attempts) + ")");
  }
  spec.max_attempts = static_cast<int>(job_attempts);

  spec.options = cfg.pipeline_options();
  const std::string io_fault = cfg.get_string("io-fault");
  if (!io_fault.empty()) {
    try {
      spec.options.io_fault = io::IoFaultPlan::parse(io_fault);
    } catch (const std::invalid_argument& e) {
      throw ConfigError("io-fault", e.what());
    }
  }
  return spec;
}

util::Json job_spec_to_json(const JobSpec& spec) {
  // Registering the flag set with this spec's own values as defaults makes
  // Config::to_json dump exactly those values — the same trick a binary's
  // with_pipeline(defaults) uses, run in reverse. The fault flags are the
  // one exception (with_fault_flags hardcodes its defaults), so they are
  // overridden in the dumped document afterwards.
  Config cfg("trinity_serve", "job spec");
  register_serve_flags(cfg, spec.options, spec.tenant, spec.job_id, spec.priority,
                       spec.reads_path,
                       static_cast<std::int64_t>(spec.rss_estimate_bytes / (1024 * 1024)),
                       spec.deadline_s, spec.max_attempts,
                       io_fault_spec_text(spec.options.io_fault));
  util::Json doc = cfg.to_json();
  doc.set("max-attempts", spec.options.retry.max_attempts);
  doc.set("fault-rank", spec.options.fault.rank);
  doc.set("fault-op", spec.options.fault.op == simpi::FaultOp::kNone
                          ? std::string()
                          : std::string(simpi::to_string(spec.options.fault.op)));
  doc.set("fault-at", spec.options.fault.at_entry);
  return doc;
}

}  // namespace trinity::serve
