#pragma once
// Job specs and job lifecycle states for the trinity_serve layer.
//
// A job is one complete assembly run owned by a tenant. Its submission
// format is deliberately NOT a new schema: a spec is a trinity::Config
// JSON object (docs/CONFIG.md) — the same document every pipeline binary
// accepts via `--config` — extended with the serve-only keys declared in
// parse_job_spec_text (tenant, job-id, priority, reads, rss-estimate-mb,
// io-fault). Validation is therefore the PR 5 path end to end: unknown
// keys, mistyped values and out-of-range options all raise the same typed
// ConfigError a CLI user would see, naming the offending field.

#include <cstdint>
#include <string>
#include <string_view>

#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"
#include "util/json.hpp"

namespace trinity::serve {

/// Lifecycle of a submitted job. Preemption cycles a job back from
/// kPreempting to kQueued (checkpoint -> requeue -> resume), and a
/// transient failure cycles it back with a backoff; kCompleted, kFailed,
/// kQuarantined and kKilled are terminal.
enum class JobState : int {
  kQueued = 0,   ///< admitted, waiting for ranks
  kRunning,      ///< dispatched on a rank-pool lease
  kPreempting,   ///< preempt token set; stops at the next stage boundary
  kCompleted,    ///< pipeline finished; transcripts on disk
  kFailed,       ///< pipeline raised a permanent error (recorded)
  kQuarantined,  ///< poison job: transient failures exhausted its attempt
                 ///< budget; work dir preserved for diagnosis
  kKilled,       ///< cancelled by the watchdog (deadline exceeded or hung)
};

[[nodiscard]] const char* to_string(JobState state);

/// Why a job reached a terminal state — the run_report v4 `outcome` field
/// and the journal's terminal-event taxonomy.
enum class JobOutcome : int {
  kNone = 0,           ///< not terminal yet
  kCompleted,
  kFailed,             ///< permanent error (ENOSPC, parse error, bad input)
  kQuarantined,        ///< transient failures exceeded the attempt budget
  kDeadlineExceeded,   ///< watchdog: ran past its deadline-s
  kHung,               ///< watchdog: no checkpoint progress for hang-timeout-s
};

[[nodiscard]] const char* to_string(JobOutcome outcome);

/// A validated submission: who owns it, what it needs, and the full
/// pipeline configuration it runs with. The server overrides
/// `options.work_dir` (every job gets an isolated directory) and the
/// checkpoint/resume/preempt scheduling fields; everything else in
/// `options` is honored as submitted.
struct JobSpec {
  std::string job_id;   ///< unique per server; assigned "job-N" when empty
  std::string tenant;   ///< owning tenant (required, non-empty)
  int priority = 0;     ///< higher preempts lower (see docs/SERVING.md)
  std::string reads_path;              ///< input FASTA/FASTQ (required)
  std::uint64_t rss_estimate_bytes = 0;  ///< declared peak RSS, for admission
  /// Wall-clock budget in seconds, measured from (re-)admission; 0 = none.
  /// The watchdog cancels the job when it is exceeded, and admission
  /// rejects deadlines that are negative or below the server's plausible
  /// minimum runtime outright (typed invalid_spec).
  double deadline_s = 0.0;
  /// Job-level attempt budget before quarantine ("job-attempts" key);
  /// 0 = use the server's ServerOptions::job_retry.max_attempts default.
  int max_attempts = 0;
  pipeline::PipelineOptions options;   ///< validated pipeline configuration
};

/// Parses and validates one job-spec JSON document. `origin` labels
/// errors (a path, or e.g. "jobs.jsonl:3"). `defaults` seeds the pipeline
/// flag set the same way a binary's with_pipeline(defaults) call would —
/// the server passes its serving defaults (small trace interval, etc.).
/// Throws trinity::ConfigError on unknown keys, malformed values,
/// out-of-range pipeline options, a missing tenant, or missing reads.
[[nodiscard]] JobSpec parse_job_spec_text(std::string_view text, const std::string& origin,
                                          const pipeline::PipelineOptions& defaults = {});

/// Serializes a validated spec back into the Config JSON document
/// parse_job_spec_text accepts — the journal's submit-event payload, so a
/// restarted server re-admits jobs from the journal alone. Round-trips
/// every output-affecting option (the fingerprint survives, so recovered
/// jobs resume their checkpoints byte-identically) plus the serve keys and
/// fault-injection state; `fault.max_fires`/virtual-second triggers have
/// no Config spelling and reset to their flag defaults on replay.
[[nodiscard]] util::Json job_spec_to_json(const JobSpec& spec);

}  // namespace trinity::serve
