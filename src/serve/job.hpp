#pragma once
// Job specs and job lifecycle states for the trinity_serve layer.
//
// A job is one complete assembly run owned by a tenant. Its submission
// format is deliberately NOT a new schema: a spec is a trinity::Config
// JSON object (docs/CONFIG.md) — the same document every pipeline binary
// accepts via `--config` — extended with the serve-only keys declared in
// parse_job_spec_text (tenant, job-id, priority, reads, rss-estimate-mb,
// io-fault). Validation is therefore the PR 5 path end to end: unknown
// keys, mistyped values and out-of-range options all raise the same typed
// ConfigError a CLI user would see, naming the offending field.

#include <cstdint>
#include <string>
#include <string_view>

#include "pipeline/config.hpp"
#include "pipeline/trinity_pipeline.hpp"

namespace trinity::serve {

/// Lifecycle of a submitted job. Preemption cycles a job back from
/// kPreempting to kQueued (checkpoint -> requeue -> resume); kCompleted
/// and kFailed are terminal.
enum class JobState : int {
  kQueued = 0,   ///< admitted, waiting for ranks
  kRunning,      ///< dispatched on a rank-pool lease
  kPreempting,   ///< preempt token set; stops at the next stage boundary
  kCompleted,    ///< pipeline finished; transcripts on disk
  kFailed,       ///< pipeline raised a non-preemption error (recorded)
};

[[nodiscard]] const char* to_string(JobState state);

/// A validated submission: who owns it, what it needs, and the full
/// pipeline configuration it runs with. The server overrides
/// `options.work_dir` (every job gets an isolated directory) and the
/// checkpoint/resume/preempt scheduling fields; everything else in
/// `options` is honored as submitted.
struct JobSpec {
  std::string job_id;   ///< unique per server; assigned "job-N" when empty
  std::string tenant;   ///< owning tenant (required, non-empty)
  int priority = 0;     ///< higher preempts lower (see docs/SERVING.md)
  std::string reads_path;              ///< input FASTA/FASTQ (required)
  std::uint64_t rss_estimate_bytes = 0;  ///< declared peak RSS, for admission
  pipeline::PipelineOptions options;   ///< validated pipeline configuration
};

/// Parses and validates one job-spec JSON document. `origin` labels
/// errors (a path, or e.g. "jobs.jsonl:3"). `defaults` seeds the pipeline
/// flag set the same way a binary's with_pipeline(defaults) call would —
/// the server passes its serving defaults (small trace interval, etc.).
/// Throws trinity::ConfigError on unknown keys, malformed values,
/// out-of-range pipeline options, a missing tenant, or missing reads.
[[nodiscard]] JobSpec parse_job_spec_text(std::string_view text, const std::string& origin,
                                          const pipeline::PipelineOptions& defaults = {});

}  // namespace trinity::serve
