#pragma once
// Admission control: typed accept/reject decisions against per-tenant
// quotas and the server's bounded queue.
//
// The serving literature's first rule is that overload must surface as a
// fast typed rejection, not as an unbounded queue or a blocked client —
// so admit() never blocks and every reject carries an AdmitCode plus a
// human-readable detail naming the exhausted limit. Two classes of
// reject are distinguished on purpose: *transient* ones (queue full,
// tenant queue full) where retrying later can succeed, and *permanent*
// ones (a job asking for more ranks or RSS than its tenant's quota, or
// more ranks than the whole pool) that could never be scheduled and must
// be rejected immediately rather than parked forever at the queue head.
//
// The controller also owns the per-tenant usage counters (queued jobs,
// running ranks, running RSS) that both admission and the scheduler's
// dispatch headroom checks read. It is NOT thread-safe: JobServer calls
// it only under its own mutex, which is the single writer of all serve
// state.

#include <cstdint>
#include <map>
#include <string>

#include "serve/job.hpp"

namespace trinity::serve {

/// Per-tenant resource limits. The zero-RSS default means "no RSS cap".
struct TenantQuota {
  int max_queued_jobs = 8;        ///< jobs waiting in the queue at once
  int max_concurrent_ranks = 8;   ///< ranks its running jobs may hold at once
  std::uint64_t rss_budget_bytes = 0;  ///< sum of running rss estimates; 0 = unlimited
};

/// Why a submission was accepted or turned away.
enum class AdmitCode : int {
  kAccepted = 0,
  kQueueFull,        ///< server-wide bounded queue is at max depth (transient)
  kTenantQueueFull,  ///< tenant's queued-job quota exhausted (transient)
  kTenantRankQuota,  ///< job wants more ranks than the tenant may ever hold
  kTenantRssBudget,  ///< job's RSS estimate exceeds the tenant's whole budget
  kPoolTooSmall,     ///< job wants more ranks than the server pool has
  kInvalidSpec,      ///< malformed spec (duplicate job id, parse failure)
  kShutdown,         ///< server no longer accepting submissions
};

[[nodiscard]] const char* to_string(AdmitCode code);

/// The admission decision handed back to the submitter.
struct AdmitResult {
  AdmitCode code = AdmitCode::kAccepted;
  std::string detail;  ///< names the exhausted limit; empty on accept

  [[nodiscard]] bool accepted() const { return code == AdmitCode::kAccepted; }
};

class AdmissionController {
 public:
  /// `min_plausible_runtime_s` is the floor for deadline sanity checks: a
  /// job whose deadline-s is negative (already in the past) or below this
  /// floor could never finish in time, so admit() rejects it outright with
  /// a permanent kInvalidSpec instead of admitting and immediately killing.
  AdmissionController(int total_ranks, int max_queue_depth, TenantQuota default_quota,
                      std::map<std::string, TenantQuota> tenant_quotas,
                      double min_plausible_runtime_s = 0.0);

  /// The quota governing `tenant` (its override, or the default).
  [[nodiscard]] const TenantQuota& quota_for(const std::string& tenant) const;

  /// Decides whether `spec` may join the queue right now. Pure check: the
  /// caller records the accept with note_queued().
  [[nodiscard]] AdmitResult admit(const JobSpec& spec) const;

  /// True when the tenant has rank and RSS headroom to *dispatch* `spec`
  /// on top of its currently running jobs — the scheduler's per-pass
  /// quota gate (distinct from admit(), which gates queue entry).
  [[nodiscard]] bool has_running_headroom(const JobSpec& spec) const;

  /// The RSS a dispatch of `spec` should be charged against its tenant's
  /// running budget: the declared estimate, sanity-checked against the
  /// tenant's EWMA of *measured* peaks (note_measured) — a tenant that
  /// habitually under-declares is charged what it historically uses, not
  /// what it promises (ROADMAP's "measured not declared" quota gap).
  [[nodiscard]] std::uint64_t effective_rss(const JobSpec& spec) const;

  /// Records the measured ResourceTrace rss_peak of a finished run,
  /// folding it into the tenant's EWMA.
  void note_measured(const std::string& tenant, std::uint64_t measured_rss_bytes);

  /// The tenant's current EWMA of measured peaks (0 before any sample).
  [[nodiscard]] std::uint64_t measured_rss_ewma(const std::string& tenant) const;

  // Usage bookkeeping, called by JobServer under its mutex. The *_charged
  // overloads account an explicit RSS charge (the effective_rss value the
  // dispatch was admitted with) so start/finish stay symmetric even as the
  // EWMA moves between them; the plain forms charge the declared estimate.
  void note_queued(const JobSpec& spec);    ///< admitted into the queue
  void note_started(const JobSpec& spec);   ///< dispatched (queued -> running)
  void note_started(const JobSpec& spec, std::uint64_t rss_charge);
  void note_requeued(const JobSpec& spec);  ///< preempted (running -> queued)
  void note_requeued(const JobSpec& spec, std::uint64_t rss_charge);
  void note_finished(const JobSpec& spec);  ///< completed or failed (running ->)
  void note_finished(const JobSpec& spec, std::uint64_t rss_charge);
  void note_dropped(const JobSpec& spec);   ///< left the queue without running

  [[nodiscard]] int queue_depth() const { return queue_depth_; }

  struct Usage {
    int queued = 0;
    int running_ranks = 0;
    std::uint64_t running_rss = 0;
    /// EWMA of measured rss_peak over finished runs; 0 = no sample yet.
    double measured_rss_ewma = 0.0;
  };

  /// Point-in-time usage counters for one tenant (zeroes when unknown) —
  /// what the live per-tenant gauges publish.
  [[nodiscard]] Usage usage_of(const std::string& tenant) const;

 private:
  Usage& usage(const std::string& tenant) { return usage_[tenant]; }

  int total_ranks_;
  int max_queue_depth_;
  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> tenant_quotas_;
  double min_plausible_runtime_s_;
  std::map<std::string, Usage> usage_;
  int queue_depth_ = 0;
};

}  // namespace trinity::serve
