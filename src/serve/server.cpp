#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <utility>

#include "io/error.hpp"
#include "pipeline/run_report.hpp"
#include "simpi/context.hpp"
#include "simpi/fault.hpp"
#include "trace/span_recorder.hpp"

namespace trinity::serve {

namespace {

/// Bytes of the final transcript FASTA, 0 when absent (failed job).
std::int64_t output_file_bytes(const std::string& work_dir) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(work_dir + "/Trinity.fa", ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

/// Progress signature for hang detection: size and mtime of the job's
/// checkpoint manifest folded together. Every committed stage rewrites the
/// manifest, so a changing signature means the run is advancing; 0 when
/// the manifest does not exist yet.
std::uint64_t manifest_signature(const std::string& work_dir) {
  const std::string path = work_dir + "/" + pipeline::kManifestFileName;
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return 0;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  const auto ticks =
      ec ? std::uint64_t{0}
         : static_cast<std::uint64_t>(mtime.time_since_epoch().count());
  return static_cast<std::uint64_t>(size) * 1315423911ULL ^ ticks;
}

/// Peak sampled RSS over a finished run's phase records — the measured
/// value the admission EWMA learns from (0 when the sampler never ran).
std::uint64_t measured_rss_peak(const pipeline::PipelineResult& result) {
  std::uint64_t peak = 0;
  for (const auto& phase : result.trace) peak = std::max(peak, phase.rss_peak);
  return peak;
}

}  // namespace

JobServer::LiveMetrics::LiveMetrics()
    : queue_depth(registry.gauge("trinity_serve_queue_depth",
                                 "Jobs waiting in the admission queue")),
      queue_depth_peak(registry.gauge("trinity_serve_queue_depth_peak",
                                      "High-water mark of the admission queue")),
      oldest_queued_age(registry.gauge("trinity_serve_oldest_queued_age_seconds",
                                       "Age of the oldest queued job")),
      inflight(registry.gauge("trinity_serve_jobs_inflight",
                              "Jobs currently holding a rank lease")),
      ranks_total(registry.gauge("trinity_serve_ranks_total",
                                 "Size of the shared rank pool")),
      ranks_available(registry.gauge("trinity_serve_ranks_available",
                                     "Unleased ranks in the shared pool")),
      queue_wait(registry.histogram(
          "trinity_serve_queue_wait_seconds",
          "Queue wait per dispatch (enqueue or requeue to rank lease)",
          obs::latency_buckets_s())) {}

JobServer::JobServer(ServerOptions options)
    : options_(std::move(options)),
      root_dir_(options_.root_dir.empty()
                    ? (std::filesystem::temp_directory_path() / "trinity_serve").string()
                    : options_.root_dir),
      metrics_(options_.metrics ? std::make_unique<LiveMetrics>() : nullptr),
      pool_(options_.total_ranks),
      index_cache_(options_.share_index_cache
                       ? std::make_shared<chrysalis::TranscriptIndexCache>()
                       : nullptr),
      admission_(options_.total_ranks, options_.max_queue_depth, options_.default_quota,
                 options_.tenant_quotas, options_.min_plausible_runtime_s) {
  std::filesystem::create_directories(root_dir_);
  if (metrics_) {
    metrics_->ranks_total.set(options_.total_ranks);
    metrics_->ranks_available.set(options_.total_ranks);
  }
  if (options_.journal) {
    journal_.emplace(root_dir_ + "/journal.jsonl");
    if (metrics_) journal_->set_metrics(&metrics_->registry);
    recover_from_journal();  // before any thread exists; no locking needed
  }
  if (metrics_ && options_.metrics_export_period_s > 0.0) {
    obs::ExporterOptions exporter_options;
    exporter_options.dir = root_dir_;
    exporter_options.period_s = options_.metrics_export_period_s;
    exporter_ = std::make_unique<obs::MetricsExporter>(&metrics_->registry,
                                                       std::move(exporter_options));
  }
  scheduler_ = std::thread(&JobServer::scheduler_loop, this);
  watchdog_ = std::thread(&JobServer::watchdog_loop, this);
}

JobServer::~JobServer() { shutdown(); }

void JobServer::recover_from_journal() {
  JournalReplay replay = JobJournal::replay(journal_->path());
  if (replay.dropped_lines > 0) {
    // A torn tail from a crash mid-append. Drop it so the next append
    // starts on a clean line; the lost transitions are re-derived below
    // (worst case a lost "complete" re-dispatches the job, whose resume
    // then skips every validated stage — idempotent, never duplicated).
    trace::instant("serve.journal_torn", trace::kCatPipeline,
                   std::to_string(replay.dropped_lines) + " dropped line(s)");
    JobJournal::truncate_to(journal_->path(), replay.valid_bytes);
  }
  if (replay.events.empty()) return;

  struct Replayed {
    JournalEvent submit;  ///< the original spec payload
    JobState state = JobState::kQueued;
    JobOutcome outcome = JobOutcome::kNone;
    int attempts = 0;
    int preemptions = 0;
    std::string error;
    bool seen = false;
  };
  std::vector<std::string> order;  ///< job ids, first-submit order
  std::map<std::string, Replayed> jobs;
  for (const JournalEvent& ev : replay.events) {
    if (ev.seq >= static_cast<std::int64_t>(next_seq_)) {
      next_seq_ = static_cast<std::uint64_t>(ev.seq) + 1;
    }
    if (ev.event == "reject") continue;  // never entered the registry
    Replayed& job = jobs[ev.job_id];
    if (!job.seen) {
      job.seen = true;
      order.push_back(ev.job_id);
    }
    if (ev.event == "submit") {
      job.submit = ev;
    } else if (ev.event == "dispatch") {
      job.state = JobState::kRunning;
      job.attempts = ev.attempts;
    } else if (ev.event == "requeue" || ev.event == "recover") {
      job.state = JobState::kQueued;
      job.attempts = ev.attempts;
      job.preemptions = ev.preemptions;
    } else if (ev.event == "complete") {
      job.state = JobState::kCompleted;
      job.outcome = JobOutcome::kCompleted;
      job.attempts = ev.attempts;
    } else if (ev.event == "fail") {
      job.state = JobState::kFailed;
      job.outcome = JobOutcome::kFailed;
      job.attempts = ev.attempts;
      job.error = ev.detail;
    } else if (ev.event == "quarantine") {
      job.state = JobState::kQuarantined;
      job.outcome = JobOutcome::kQuarantined;
      job.attempts = ev.attempts;
      job.error = ev.detail;
    } else if (ev.event == "kill") {
      job.state = JobState::kKilled;
      job.outcome = ev.detail == to_string(JobOutcome::kHung)
                        ? JobOutcome::kHung
                        : JobOutcome::kDeadlineExceeded;
      job.attempts = ev.attempts;
      job.error = ev.detail;
    }
  }

  const double now = clock_.seconds();
  for (const std::string& job_id : order) {
    Replayed& replayed = jobs[job_id];
    if (replayed.submit.spec.is_null()) continue;  // submit line was lost

    auto job = std::make_unique<Job>();
    job->seq = static_cast<std::uint64_t>(replayed.submit.seq);
    job->attempts = replayed.attempts;
    job->preemptions = replayed.preemptions;
    job->state = replayed.state;
    job->outcome = replayed.outcome;
    job->error = replayed.error;

    JobSpec spec;
    try {
      spec = parse_job_spec_text(replayed.submit.spec.dump(), "journal:" + job_id,
                                 options_.job_defaults);
    } catch (const ConfigError& e) {
      // The payload no longer parses (schema drift, hand-edited journal):
      // register the id as failed so a resubmission is not silently
      // treated as new work over a dirty work dir.
      job->spec.job_id = job_id;
      job->spec.tenant = replayed.submit.tenant;
      job->state = JobState::kFailed;
      job->outcome = JobOutcome::kFailed;
      job->error = std::string("unreplayable journal spec: ") + e.what();
      job->work_dir = root_dir_ + "/" + job->spec.tenant + "/" + job_id;
      journal_locked(event_locked(*job, "fail", job->error));
      registry_.push_back(std::move(job));
      continue;
    }
    job->spec = std::move(spec);
    job->work_dir = root_dir_ + "/" + job->spec.tenant + "/" + job->spec.job_id;

    const bool terminal =
        job->state == JobState::kCompleted || job->state == JobState::kFailed ||
        job->state == JobState::kQuarantined || job->state == JobState::kKilled;
    if (terminal) {
      // Historical: registered for duplicate-id rejection (a quarantined
      // id stays rejected across restarts), not re-run and not counted in
      // this process's ledger — `trinity_report --aggregate` rebuilds
      // history from the on-disk reports.
      registry_.push_back(std::move(job));
      continue;
    }

    // Queued or in-flight at the crash: re-admit. The work dir and its
    // checkpoint manifest are intact, so the next dispatch runs with
    // resume=true and skips every stage that already committed.
    if (job->attempts >= attempt_budget(job->spec)) {
      // Crash-looping poison job: it consumed its whole budget without
      // ever reaching a terminal line. Quarantine instead of re-admitting
      // so a job that kills the server cannot kill it forever.
      job->state = JobState::kQuarantined;
      job->outcome = JobOutcome::kQuarantined;
      job->error = "attempt budget exhausted across restarts";
      journal_locked(event_locked(*job, "quarantine", job->error));
      write_terminal_report_locked(*job);
      metric_terminal_locked(*job);
      registry_.push_back(std::move(job));
      continue;
    }
    job->state = JobState::kQueued;
    job->recovered = true;
    job->submitted_at = now;  // the deadline budget restarts at re-admission
    job->enqueued_at = now;
    TenantAccount& acct = accounting_.account(job->spec.tenant);
    ++acct.jobs_submitted;
    ++acct.jobs_recovered;
    admission_.note_queued(job->spec);
    journal_locked(event_locked(*job, "recover"));
    if (metrics_) {
      metrics_->registry
          .counter("trinity_serve_recovered_jobs_total",
                   "Jobs re-admitted from the journal after a restart",
                   {{"tenant", job->spec.tenant}})
          .inc();
    }
    metric_tenant_gauges_locked(job->spec.tenant);
    queue_.push_back(job.get());
    registry_.push_back(std::move(job));
    dirty_ = true;
  }
  metric_queue_gauges_locked();
}

JournalEvent JobServer::event_locked(const Job& job, std::string type,
                                     std::string detail) const {
  JournalEvent ev;
  ev.event = std::move(type);
  ev.job_id = job.spec.job_id;
  ev.tenant = job.spec.tenant;
  ev.seq = static_cast<std::int64_t>(job.seq);
  ev.attempts = job.attempts;
  ev.preemptions = job.preemptions;
  ev.detail = std::move(detail);
  return ev;
}

void JobServer::journal_locked(const JournalEvent& ev) {
  if (!journal_ || journal_failed_) return;
  try {
    journal_->append(ev);
  } catch (const io::IoError& e) {
    // Durability degrades, availability does not: a permanent journal
    // failure (ENOSPC, torn rename) turns journaling off for the rest of
    // this process; a transient one skips this record and keeps trying.
    if (!e.transient()) journal_failed_ = true;
    trace::instant("serve.journal_error", trace::kCatPipeline, e.what());
  }
}

int JobServer::attempt_budget(const JobSpec& spec) const {
  const int budget =
      spec.max_attempts > 0 ? spec.max_attempts : options_.job_retry.max_attempts;
  return std::max(budget, 1);
}

AdmitResult JobServer::submit(JobSpec spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!accepting_) {
    metric_admission_locked(AdmitCode::kShutdown);
    return {AdmitCode::kShutdown, "server is shutting down"};
  }
  TenantAccount& acct = accounting_.account(spec.tenant);
  ++acct.jobs_submitted;

  if (spec.job_id.empty()) spec.job_id = "job-" + std::to_string(next_seq_);
  for (const auto& existing : registry_) {
    if (existing->spec.job_id == spec.job_id) {
      ++acct.jobs_rejected;
      const bool quarantined = existing->state == JobState::kQuarantined;
      AdmitResult result{AdmitCode::kInvalidSpec,
                         quarantined ? "job id '" + spec.job_id +
                                           "' is quarantined (poison job; work dir "
                                           "preserved for diagnosis)"
                                     : "duplicate job id '" + spec.job_id + "'"};
      JournalEvent ev;
      ev.event = "reject";
      ev.job_id = spec.job_id;
      ev.tenant = spec.tenant;
      ev.detail = result.detail;
      journal_locked(ev);
      metric_admission_locked(AdmitCode::kInvalidSpec);
      metric_rejected_locked(spec.tenant);
      return result;
    }
  }

  AdmitResult result = admission_.admit(spec);
  if (!result.accepted()) {
    ++acct.jobs_rejected;
    JournalEvent ev;
    ev.event = "reject";
    ev.job_id = spec.job_id;
    ev.tenant = spec.tenant;
    ev.detail = std::string(to_string(result.code)) + ": " + result.detail;
    journal_locked(ev);
    metric_admission_locked(result.code);
    metric_rejected_locked(spec.tenant);
    return result;
  }

  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  job->seq = next_seq_++;
  job->work_dir = root_dir_ + "/" + job->spec.tenant + "/" + job->spec.job_id;
  job->submitted_at = clock_.seconds();
  job->enqueued_at = job->submitted_at;
  // WAL discipline: the submit event (with the full re-admittable spec
  // payload) is durable before the job becomes schedulable.
  JournalEvent ev = event_locked(*job, "submit");
  ev.spec = job_spec_to_json(job->spec);
  journal_locked(ev);
  admission_.note_queued(job->spec);
  metric_admission_locked(AdmitCode::kAccepted);
  metric_tenant_gauges_locked(job->spec.tenant);
  queue_.push_back(job.get());
  registry_.push_back(std::move(job));
  metric_queue_gauges_locked();
  dirty_ = true;
  lock.unlock();
  scheduler_cv_.notify_all();
  return result;
}

AdmitResult JobServer::submit_text(std::string_view text, const std::string& origin) {
  JobSpec spec;
  try {
    spec = parse_job_spec_text(text, origin, options_.job_defaults);
  } catch (const ConfigError& e) {
    // The registry is internally synchronized; no server lock needed here.
    metric_admission_locked(AdmitCode::kInvalidSpec);
    return {AdmitCode::kInvalidSpec, e.what()};
  }
  return submit(std::move(spec));
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void JobServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    dirty_ = true;
  }
  scheduler_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  if (watchdog_.joinable()) watchdog_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  // Final export after every worker settled, so the on-disk snapshot holds
  // the terminal totals (what serve_metrics_test reconciles against the
  // run reports).
  if (exporter_) exporter_->stop();
}

obs::MetricsRegistry* JobServer::metrics() const {
  return metrics_ ? &metrics_->registry : nullptr;
}

obs::MetricsSnapshot JobServer::metrics_snapshot() const {
  return metrics_ ? metrics_->registry.snapshot() : obs::MetricsSnapshot{};
}

void JobServer::metric_admission_locked(AdmitCode code) {
  if (!metrics_) return;
  metrics_->registry
      .counter("trinity_serve_admission_total",
               "Admission verdicts by typed outcome",
               {{"outcome", to_string(code)}})
      .inc();
}

void JobServer::metric_rejected_locked(const std::string& tenant) {
  if (!metrics_) return;
  metrics_->registry
      .counter("trinity_serve_jobs_rejected_total",
               "Rejected submissions per tenant (mirrors the ledger)",
               {{"tenant", tenant}})
      .inc();
}

void JobServer::metric_terminal_locked(const Job& job) {
  if (!metrics_) return;
  metrics_->registry
      .counter("trinity_serve_jobs_total", "Terminal job outcomes per tenant",
               {{"tenant", job.spec.tenant}, {"outcome", to_string(job.outcome)}})
      .inc();
  metric_job_active_locked(job, false);
}

void JobServer::metric_queue_gauges_locked() {
  if (!metrics_) return;
  metrics_->queue_depth.set(static_cast<double>(queue_.size()));
  metrics_->queue_depth_peak.set_max(static_cast<double>(queue_.size()));
  const double now = clock_.seconds();
  double oldest = 0.0;
  for (const Job* job : queue_) oldest = std::max(oldest, now - job->enqueued_at);
  metrics_->oldest_queued_age.set(oldest);
  metrics_->inflight.set(running_);
  metrics_->ranks_available.set(pool_.available());
}

void JobServer::metric_tenant_gauges_locked(const std::string& tenant) {
  if (!metrics_) return;
  const AdmissionController::Usage usage = admission_.usage_of(tenant);
  auto& registry = metrics_->registry;
  const obs::Labels labels{{"tenant", tenant}};
  registry.gauge("trinity_serve_tenant_queued_jobs",
                 "Queued jobs per tenant", labels)
      .set(usage.queued);
  registry.gauge("trinity_serve_tenant_running_ranks",
                 "Ranks leased by a tenant's running jobs", labels)
      .set(usage.running_ranks);
  registry.gauge("trinity_serve_tenant_running_rss_bytes",
                 "RSS charged against the tenant's running budget", labels)
      .set(static_cast<double>(usage.running_rss));
  registry.gauge("trinity_serve_tenant_rss_ewma_bytes",
                 "EWMA of measured RSS peaks feeding admission", labels)
      .set(usage.measured_rss_ewma);
}

void JobServer::metric_job_active_locked(const Job& job, bool active) {
  if (!metrics_) return;
  metrics_->registry
      .gauge("trinity_job_active", "1 while the job holds a rank lease",
             {{"tenant", job.spec.tenant}, {"job", job.spec.job_id}})
      .set(active ? 1.0 : 0.0);
}

JobStatus JobServer::status_of_locked(const Job& job) const {
  JobStatus s;
  s.job_id = job.spec.job_id;
  s.tenant = job.spec.tenant;
  s.priority = job.spec.priority;
  s.state = job.state;
  s.preemptions = job.preemptions;
  s.dispatches = job.dispatches;
  s.attempts = job.attempts;
  s.outcome = job.outcome;
  s.recovered = job.recovered;
  s.error = job.error;
  s.queue_wait_seconds = job.queue_wait;
  s.run_seconds = job.run_time;
  s.work_dir = job.work_dir;
  return s;
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(registry_.size());
  for (const auto& job : registry_) out.push_back(status_of_locked(*job));
  return out;
}

Accounting JobServer::accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

void JobServer::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    while (!stop_ && !dirty_) {
      // A job backing off after a transient failure needs a timed wakeup
      // at its not_before; otherwise wait for traffic.
      double next = 0.0;
      const double now = clock_.seconds();
      for (const Job* job : queue_) {
        if (job->not_before > now && (next == 0.0 || job->not_before < next)) {
          next = job->not_before;
        }
      }
      if (next == 0.0) {
        scheduler_cv_.wait(lock);
      } else if (scheduler_cv_.wait_for(lock, std::chrono::duration<double>(
                                                  next - clock_.seconds())) ==
                 std::cv_status::timeout) {
        dirty_ = true;  // the backoff elapsed; run a pass
      }
    }
    if (stop_) return;
    dirty_ = false;
    schedule_locked();
  }
}

void JobServer::watchdog_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    scheduler_cv_.wait_for(lock,
                           std::chrono::duration<double>(options_.watchdog_poll_s),
                           [&] { return stop_; });
    if (stop_) return;
    const double now = clock_.seconds();
    bool state_changed = false;

    // Queued jobs past their deadline die in the queue: they can no longer
    // finish in time, so dispatching them would only waste a lease.
    for (auto it = queue_.begin(); it != queue_.end();) {
      Job* job = *it;
      if (job->spec.deadline_s > 0.0 && now - job->submitted_at > job->spec.deadline_s) {
        it = queue_.erase(it);
        admission_.note_dropped(job->spec);
        job->queue_wait += now - job->enqueued_at;
        job->state = JobState::kKilled;
        job->outcome = JobOutcome::kDeadlineExceeded;
        job->error = "deadline exceeded while queued";
        TenantAccount& acct = accounting_.account(job->spec.tenant);
        ++acct.deadline_kills;
        acct.queue_wait_seconds += job->queue_wait;
        journal_locked(event_locked(*job, "kill", to_string(job->outcome)));
        write_terminal_report_locked(*job);
        metric_terminal_locked(*job);
        metric_tenant_gauges_locked(job->spec.tenant);
        trace::instant("serve.watchdog", trace::kCatPipeline,
                       job->spec.job_id + " deadline_exceeded (queued)");
        state_changed = true;
      } else {
        ++it;
      }
    }

    // In-flight jobs: deadline overruns, and — when hang detection is on —
    // runs whose checkpoint manifest stopped advancing.
    for (const auto& entry : registry_) {
      Job* job = entry.get();
      if (job->state != JobState::kRunning && job->state != JobState::kPreempting) {
        continue;
      }
      if (job->kill_reason != JobOutcome::kNone) continue;  // already told to stop
      if (job->spec.deadline_s > 0.0 && now - job->submitted_at > job->spec.deadline_s) {
        job->kill_reason = JobOutcome::kDeadlineExceeded;
      } else if (options_.hang_timeout_s > 0.0) {
        const std::uint64_t signature = manifest_signature(job->work_dir);
        if (signature != job->progress_signature) {
          job->progress_signature = signature;
          job->last_progress_at = now;
        } else if (now - job->last_progress_at > options_.hang_timeout_s) {
          job->kill_reason = JobOutcome::kHung;
        }
      }
      if (job->kill_reason != JobOutcome::kNone) {
        job->deadline->store(true, std::memory_order_release);
        trace::instant("serve.watchdog", trace::kCatPipeline,
                       job->spec.job_id + " " + to_string(job->kill_reason));
      }
    }

    // Every poll refreshes the age/depth gauges, so a stalled queue is
    // visible even with no job transitions.
    metric_queue_gauges_locked();
    if (state_changed) {
      dirty_ = true;
      drain_cv_.notify_all();
      scheduler_cv_.notify_all();
    }
  }
}

void JobServer::schedule_locked() {
  // (priority desc, submission seq asc) over the current queue.
  std::vector<Job*> order = queue_;
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority > b->spec.priority;
    return a->seq < b->seq;
  });
  const double now = clock_.seconds();
  for (Job* job : order) {
    const int need = job->spec.options.nranks;
    // Backing off after a transient failure: not schedulable yet (the
    // scheduler loop arms a timed wakeup for it).
    if (job->not_before > now) continue;
    // Blocked only by the tenant's own running quota: other tenants'
    // jobs behind it may still dispatch this pass.
    if (!admission_.has_running_headroom(job->spec)) continue;
    simpi::RankLease lease = pool_.try_lease(need);
    if (lease.owns()) {
      dispatch_locked(job, std::move(lease));
      continue;
    }
    // Head-of-line blocking on pool capacity: stop the pass (no backfill,
    // so a wide job cannot be starved by a stream of narrow ones), after
    // possibly asking lower-priority running jobs to yield.
    if (options_.preemption) maybe_preempt_locked(*job, need);
    break;
  }
}

void JobServer::maybe_preempt_locked(const Job& job, int need) {
  // Ranks already on their way back: free now, plus jobs mid-preemption.
  int reclaimable = pool_.available();
  for (const auto& candidate : registry_) {
    if (candidate->state == JobState::kPreempting) reclaimable += candidate->spec.options.nranks;
  }
  if (reclaimable >= need) return;  // enough already in flight; just wait

  // Victims: strictly lower priority, cheapest disruption first — lowest
  // priority, then the most recently submitted (least sunk work).
  std::vector<Job*> victims;
  for (const auto& candidate : registry_) {
    if (candidate->state == JobState::kRunning &&
        candidate->spec.priority < job.spec.priority) {
      victims.push_back(candidate.get());
    }
  }
  std::sort(victims.begin(), victims.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority < b->spec.priority;
    return a->seq > b->seq;
  });
  std::vector<Job*> marked;
  for (Job* victim : victims) {
    if (reclaimable >= need) break;
    reclaimable += victim->spec.options.nranks;
    marked.push_back(victim);
  }
  if (reclaimable < need) return;  // preempting everything still wouldn't fit
  for (Job* victim : marked) {
    victim->state = JobState::kPreempting;
    victim->preempt->store(true, std::memory_order_release);
    trace::instant("serve.preempt", trace::kCatPipeline,
                   victim->spec.job_id + " yields to " + job.spec.job_id);
  }
}

void JobServer::dispatch_locked(Job* job, simpi::RankLease lease) {
  queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  const double now = clock_.seconds();
  if (metrics_) metrics_->queue_wait.observe(now - job->enqueued_at);
  job->queue_wait += now - job->enqueued_at;
  job->state = JobState::kRunning;
  ++job->dispatches;
  job->preempt = std::make_shared<std::atomic<bool>>(false);
  job->deadline = std::make_shared<std::atomic<bool>>(false);
  job->kill_reason = JobOutcome::kNone;
  // Charge the tenant's running budget what the job will plausibly use:
  // the declared estimate sanity-checked against the tenant's measured
  // history. The charge is remembered so finish stays symmetric even as
  // the EWMA moves mid-run.
  job->charged_rss = admission_.effective_rss(job->spec);
  admission_.note_started(job->spec, job->charged_rss);
  TenantAccount& acct = accounting_.account(job->spec.tenant);
  acct.rss_declared_bytes_peak =
      std::max(acct.rss_declared_bytes_peak, job->spec.rss_estimate_bytes);
  job->progress_signature = manifest_signature(job->work_dir);
  job->last_progress_at = now;
  JournalEvent ev = event_locked(*job, "dispatch");
  ev.attempts = job->attempts + 1;  // tentative: this dispatch consumes one
  journal_locked(ev);
  ++running_;
  metric_job_active_locked(*job, true);
  metric_tenant_gauges_locked(job->spec.tenant);
  metric_queue_gauges_locked();
  workers_.emplace_back([this, job, lease = std::move(lease)]() mutable {
    run_job(job, std::move(lease));
  });
}

void JobServer::write_terminal_report_locked(const Job& job) const {
  // Minimal schema-v4 report for a job that ended without a completed
  // pipeline run, so `trinity_report --aggregate` reconstructs the ledger
  // (quarantines, deadline kills, attempts) from artifacts alone. Carries
  // every field the summarizer/aggregator read unconditionally, with empty
  // phases/comm.
  util::Json report = util::Json::object();
  report.set("schema_version", pipeline::kReportSchemaVersion);
  report.set("generator", "trinity_serve");
  report.set("nranks", job.spec.options.nranks);
  report.set("model_threads_per_rank", job.spec.options.model_threads_per_rank);
  report.set("job_id", job.spec.job_id);
  report.set("tenant", job.spec.tenant);
  report.set("preemptions", job.preemptions);
  report.set("attempts", job.attempts);
  report.set("outcome", std::string(to_string(job.outcome)));
  report.set("recovered", job.recovered);
  if (!job.error.empty()) report.set("error", job.error);
  report.set("stages_executed", util::Json::array());
  report.set("stages_resumed", util::Json::array());
  report.set("stage_retries", 0);
  report.set("io_retries", 0);
  report.set("phases", util::Json::array());
  report.set("comm", util::Json::array());
  std::error_code ec;
  std::filesystem::create_directories(job.work_dir, ec);
  try {
    pipeline::write_run_report(job.work_dir + "/" + pipeline::kReportFileName, report);
  } catch (const std::exception& e) {
    trace::instant("serve.report_error", trace::kCatPipeline, e.what());
  }
}

void JobServer::run_job(Job* job, simpi::RankLease lease) {
  // Per-dispatch copy: the server owns placement and the scheduling-only
  // fields; the submitted options own everything else.
  pipeline::PipelineOptions options = job->spec.options;
  options.work_dir = job->work_dir;
  options.checkpoint = true;  // stage files double as preemption checkpoints
  options.resume = true;      // first dispatch resumes nothing; later ones skip
  options.preempt = job->preempt;
  options.deadline = job->deadline;
  options.job_id = job->spec.job_id;
  options.tenant = job->spec.tenant;
  options.preemptions = job->preemptions;
  options.attempts = job->attempts + 1;  // 1-based dispatch count (schema v4)
  options.recovered = job->recovered;
  // Shared read-only index cache: index-mode jobs over identical inputs
  // map against one loaded TranscriptIndex instead of each building or
  // mmapping their own (keyed by the run's options fingerprint).
  options.index_cache = index_cache_;
  // Live metrics: the run publishes stage heartbeats, stage durations and
  // per-rank comm counters into the server's registry.
  options.metrics = metrics_ ? &metrics_->registry : nullptr;

  const int nranks = options.nranks;
  util::Timer dispatch_timer;
  enum class Outcome { kCompleted, kPreempted, kKilled, kTransient, kPermanent };
  Outcome outcome;
  std::string error;
  pipeline::PipelineResult result;
  try {
    result = pipeline::run_pipeline_from_file(job->spec.reads_path, options);
    outcome = Outcome::kCompleted;
  } catch (const pipeline::PreemptedError&) {
    outcome = Outcome::kPreempted;
  } catch (const pipeline::DeadlineExceededError& e) {
    outcome = Outcome::kKilled;
    error = e.what();
  } catch (const io::IoError& e) {
    // Past the in-run stage retry budget. Transient errors are worth a
    // fresh dispatch after a backoff; permanent ones never are.
    outcome = e.transient() ? Outcome::kTransient : Outcome::kPermanent;
    error = e.what();
  } catch (const simpi::RankFaultError& e) {
    outcome = Outcome::kTransient;
    error = e.what();
  } catch (const simpi::AbortedError& e) {
    outcome = Outcome::kTransient;
    error = e.what();
  } catch (const std::exception& e) {
    outcome = Outcome::kPermanent;
    error = e.what();
  }
  const double elapsed = dispatch_timer.seconds();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantAccount& acct = accounting_.account(job->spec.tenant);
    job->run_time += elapsed;
    acct.run_seconds += elapsed;
    acct.rank_seconds += static_cast<double>(nranks) * elapsed;
    const int tentative = job->attempts + 1;
    switch (outcome) {
      case Outcome::kCompleted: {
        job->attempts = tentative;
        job->state = JobState::kCompleted;
        job->outcome = JobOutcome::kCompleted;
        admission_.note_finished(job->spec, job->charged_rss);
        ++acct.jobs_completed;
        acct.stage_retries += result.stage_retries;
        acct.io_retries += result.io_retries;
        for (const auto& stage : result.stage_comm) {
          for (const auto& rank : stage.ranks) {
            acct.comm_bytes_sent += static_cast<std::int64_t>(rank.comm.total_bytes_sent());
            acct.comm_bytes_received +=
                static_cast<std::int64_t>(rank.comm.total_bytes_received());
          }
        }
        acct.output_bytes += output_file_bytes(job->work_dir);
        acct.queue_wait_seconds += job->queue_wait;
        // Admission feedback: fold the run's measured peak into the
        // tenant's EWMA, so habitual under-declaring is charged at the
        // measured level on future dispatches.
        const std::uint64_t measured = measured_rss_peak(result);
        admission_.note_measured(job->spec.tenant, measured);
        acct.rss_measured_bytes_peak = std::max(acct.rss_measured_bytes_peak, measured);
        journal_locked(event_locked(*job, "complete"));
        metric_terminal_locked(*job);
        if (metrics_) {
          metrics_->registry
              .histogram("trinity_serve_job_latency_seconds",
                         "Submission-to-completion latency (queue wait + run "
                         "time) of completed jobs",
                         obs::latency_buckets_s(), {{"tenant", job->spec.tenant}})
              .observe(job->queue_wait + job->run_time);
        }
        break;
      }
      case Outcome::kPreempted:
        // A preemption is scheduling, not failure: the tentative attempt
        // is handed back.
        job->state = JobState::kQueued;
        ++job->preemptions;
        ++acct.preemptions;
        job->enqueued_at = clock_.seconds();
        admission_.note_requeued(job->spec, job->charged_rss);
        queue_.push_back(job);
        journal_locked(event_locked(*job, "requeue", "preempted"));
        if (metrics_) {
          metrics_->registry
              .counter("trinity_serve_preemptions_total",
                       "Checkpoint->requeue preemption cycles per tenant",
                       {{"tenant", job->spec.tenant}})
              .inc();
        }
        metric_job_active_locked(*job, false);
        break;
      case Outcome::kKilled:
        job->attempts = tentative;
        job->state = JobState::kKilled;
        job->outcome = job->kill_reason != JobOutcome::kNone
                           ? job->kill_reason
                           : JobOutcome::kDeadlineExceeded;
        job->error = error;
        admission_.note_finished(job->spec, job->charged_rss);
        if (job->outcome == JobOutcome::kHung) {
          ++acct.hung_kills;
        } else {
          ++acct.deadline_kills;
        }
        acct.queue_wait_seconds += job->queue_wait;
        journal_locked(event_locked(*job, "kill", to_string(job->outcome)));
        write_terminal_report_locked(*job);
        metric_terminal_locked(*job);
        break;
      case Outcome::kTransient:
        job->attempts = tentative;
        if (tentative >= attempt_budget(job->spec)) {
          // Poison job: its transient failures survived both the in-run
          // stage retries and the job-level budget. Quarantine — work dir
          // preserved for diagnosis, id permanently rejected.
          job->state = JobState::kQuarantined;
          job->outcome = JobOutcome::kQuarantined;
          job->error = error;
          admission_.note_finished(job->spec, job->charged_rss);
          ++acct.jobs_quarantined;
          acct.queue_wait_seconds += job->queue_wait;
          journal_locked(event_locked(*job, "quarantine", error));
          write_terminal_report_locked(*job);
          metric_terminal_locked(*job);
        } else {
          job->state = JobState::kQueued;
          ++acct.job_retries;
          const std::uint64_t seed =
              std::hash<std::string>{}(job->spec.job_id) ^
              static_cast<std::uint64_t>(tentative);
          job->not_before = clock_.seconds() +
                            options_.job_retry.jittered_backoff_for(tentative, seed);
          job->enqueued_at = clock_.seconds();
          admission_.note_requeued(job->spec, job->charged_rss);
          queue_.push_back(job);
          journal_locked(event_locked(*job, "requeue", "transient: " + error));
          if (metrics_) {
            metrics_->registry
                .counter("trinity_serve_job_retries_total",
                         "Transient-failure requeues per tenant",
                         {{"tenant", job->spec.tenant}})
                .inc();
          }
          metric_job_active_locked(*job, false);
        }
        break;
      case Outcome::kPermanent:
        job->attempts = tentative;
        job->state = JobState::kFailed;
        job->outcome = JobOutcome::kFailed;
        job->error = error;
        admission_.note_finished(job->spec, job->charged_rss);
        ++acct.jobs_failed;
        acct.queue_wait_seconds += job->queue_wait;
        journal_locked(event_locked(*job, "fail", error));
        write_terminal_report_locked(*job);
        metric_terminal_locked(*job);
        break;
    }
    --running_;
    metric_tenant_gauges_locked(job->spec.tenant);
    metric_queue_gauges_locked();
    dirty_ = true;
  }
  lease.release();  // before waking the scheduler, so available() sees it
  if (metrics_) metrics_->ranks_available.set(pool_.available());
  scheduler_cv_.notify_all();
  drain_cv_.notify_all();
}

}  // namespace trinity::serve
