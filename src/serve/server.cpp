#include "serve/server.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "pipeline/run_report.hpp"
#include "trace/span_recorder.hpp"

namespace trinity::serve {

namespace {

/// Bytes of the final transcript FASTA, 0 when absent (failed job).
std::int64_t output_file_bytes(const std::string& work_dir) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(work_dir + "/Trinity.fa", ec);
  return ec ? 0 : static_cast<std::int64_t>(size);
}

}  // namespace

JobServer::JobServer(ServerOptions options)
    : options_(std::move(options)),
      root_dir_(options_.root_dir.empty()
                    ? (std::filesystem::temp_directory_path() / "trinity_serve").string()
                    : options_.root_dir),
      pool_(options_.total_ranks),
      index_cache_(options_.share_index_cache
                       ? std::make_shared<chrysalis::TranscriptIndexCache>()
                       : nullptr),
      admission_(options_.total_ranks, options_.max_queue_depth, options_.default_quota,
                 options_.tenant_quotas) {
  std::filesystem::create_directories(root_dir_);
  scheduler_ = std::thread(&JobServer::scheduler_loop, this);
}

JobServer::~JobServer() { shutdown(); }

AdmitResult JobServer::submit(JobSpec spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!accepting_) {
    return {AdmitCode::kShutdown, "server is shutting down"};
  }
  TenantAccount& acct = accounting_.account(spec.tenant);
  ++acct.jobs_submitted;

  if (spec.job_id.empty()) spec.job_id = "job-" + std::to_string(next_seq_);
  for (const auto& existing : registry_) {
    if (existing->spec.job_id == spec.job_id) {
      ++acct.jobs_rejected;
      return {AdmitCode::kInvalidSpec, "duplicate job id '" + spec.job_id + "'"};
    }
  }

  AdmitResult result = admission_.admit(spec);
  if (!result.accepted()) {
    ++acct.jobs_rejected;
    return result;
  }

  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  job->seq = next_seq_++;
  job->work_dir = root_dir_ + "/" + job->spec.tenant + "/" + job->spec.job_id;
  job->enqueued_at = clock_.seconds();
  admission_.note_queued(job->spec);
  queue_.push_back(job.get());
  registry_.push_back(std::move(job));
  dirty_ = true;
  lock.unlock();
  scheduler_cv_.notify_all();
  return result;
}

AdmitResult JobServer::submit_text(std::string_view text, const std::string& origin) {
  JobSpec spec;
  try {
    spec = parse_job_spec_text(text, origin, options_.job_defaults);
  } catch (const ConfigError& e) {
    return {AdmitCode::kInvalidSpec, e.what()};
  }
  return submit(std::move(spec));
}

void JobServer::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void JobServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    dirty_ = true;
  }
  scheduler_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

JobStatus JobServer::status_of_locked(const Job& job) const {
  JobStatus s;
  s.job_id = job.spec.job_id;
  s.tenant = job.spec.tenant;
  s.priority = job.spec.priority;
  s.state = job.state;
  s.preemptions = job.preemptions;
  s.dispatches = job.dispatches;
  s.error = job.error;
  s.queue_wait_seconds = job.queue_wait;
  s.run_seconds = job.run_time;
  s.work_dir = job.work_dir;
  return s;
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> out;
  out.reserve(registry_.size());
  for (const auto& job : registry_) out.push_back(status_of_locked(*job));
  return out;
}

Accounting JobServer::accounting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accounting_;
}

void JobServer::scheduler_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    scheduler_cv_.wait(lock, [&] { return stop_ || dirty_; });
    if (stop_) return;
    dirty_ = false;
    schedule_locked();
  }
}

void JobServer::schedule_locked() {
  // (priority desc, submission seq asc) over the current queue.
  std::vector<Job*> order = queue_;
  std::sort(order.begin(), order.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority > b->spec.priority;
    return a->seq < b->seq;
  });
  for (Job* job : order) {
    const int need = job->spec.options.nranks;
    // Blocked only by the tenant's own running quota: other tenants'
    // jobs behind it may still dispatch this pass.
    if (!admission_.has_running_headroom(job->spec)) continue;
    simpi::RankLease lease = pool_.try_lease(need);
    if (lease.owns()) {
      dispatch_locked(job, std::move(lease));
      continue;
    }
    // Head-of-line blocking on pool capacity: stop the pass (no backfill,
    // so a wide job cannot be starved by a stream of narrow ones), after
    // possibly asking lower-priority running jobs to yield.
    if (options_.preemption) maybe_preempt_locked(*job, need);
    break;
  }
}

void JobServer::maybe_preempt_locked(const Job& job, int need) {
  // Ranks already on their way back: free now, plus jobs mid-preemption.
  int reclaimable = pool_.available();
  for (const auto& candidate : registry_) {
    if (candidate->state == JobState::kPreempting) reclaimable += candidate->spec.options.nranks;
  }
  if (reclaimable >= need) return;  // enough already in flight; just wait

  // Victims: strictly lower priority, cheapest disruption first — lowest
  // priority, then the most recently submitted (least sunk work).
  std::vector<Job*> victims;
  for (const auto& candidate : registry_) {
    if (candidate->state == JobState::kRunning &&
        candidate->spec.priority < job.spec.priority) {
      victims.push_back(candidate.get());
    }
  }
  std::sort(victims.begin(), victims.end(), [](const Job* a, const Job* b) {
    if (a->spec.priority != b->spec.priority) return a->spec.priority < b->spec.priority;
    return a->seq > b->seq;
  });
  std::vector<Job*> marked;
  for (Job* victim : victims) {
    if (reclaimable >= need) break;
    reclaimable += victim->spec.options.nranks;
    marked.push_back(victim);
  }
  if (reclaimable < need) return;  // preempting everything still wouldn't fit
  for (Job* victim : marked) {
    victim->state = JobState::kPreempting;
    victim->preempt->store(true, std::memory_order_release);
    trace::instant("serve.preempt", trace::kCatPipeline,
                   victim->spec.job_id + " yields to " + job.spec.job_id);
  }
}

void JobServer::dispatch_locked(Job* job, simpi::RankLease lease) {
  queue_.erase(std::find(queue_.begin(), queue_.end(), job));
  const double now = clock_.seconds();
  job->queue_wait += now - job->enqueued_at;
  job->state = JobState::kRunning;
  ++job->dispatches;
  job->preempt = std::make_shared<std::atomic<bool>>(false);
  admission_.note_started(job->spec);
  ++running_;
  workers_.emplace_back([this, job, lease = std::move(lease)]() mutable {
    run_job(job, std::move(lease));
  });
}

void JobServer::run_job(Job* job, simpi::RankLease lease) {
  // Per-dispatch copy: the server owns placement and the scheduling-only
  // fields; the submitted options own everything else.
  pipeline::PipelineOptions options = job->spec.options;
  options.work_dir = job->work_dir;
  options.checkpoint = true;  // stage files double as preemption checkpoints
  options.resume = true;      // first dispatch resumes nothing; later ones skip
  options.preempt = job->preempt;
  options.job_id = job->spec.job_id;
  options.tenant = job->spec.tenant;
  options.preemptions = job->preemptions;
  // Shared read-only index cache: index-mode jobs over identical inputs
  // map against one loaded TranscriptIndex instead of each building or
  // mmapping their own (keyed by the run's options fingerprint).
  options.index_cache = index_cache_;

  const int nranks = options.nranks;
  util::Timer dispatch_timer;
  enum class Outcome { kCompleted, kPreempted, kFailed } outcome;
  std::string error;
  pipeline::PipelineResult result;
  try {
    result = pipeline::run_pipeline_from_file(job->spec.reads_path, options);
    outcome = Outcome::kCompleted;
  } catch (const pipeline::PreemptedError&) {
    outcome = Outcome::kPreempted;
  } catch (const std::exception& e) {
    outcome = Outcome::kFailed;
    error = e.what();
  }
  const double elapsed = dispatch_timer.seconds();

  {
    std::lock_guard<std::mutex> lock(mutex_);
    TenantAccount& acct = accounting_.account(job->spec.tenant);
    job->run_time += elapsed;
    acct.run_seconds += elapsed;
    acct.rank_seconds += static_cast<double>(nranks) * elapsed;
    switch (outcome) {
      case Outcome::kCompleted:
        job->state = JobState::kCompleted;
        admission_.note_finished(job->spec);
        ++acct.jobs_completed;
        acct.stage_retries += result.stage_retries;
        acct.io_retries += result.io_retries;
        for (const auto& stage : result.stage_comm) {
          for (const auto& rank : stage.ranks) {
            acct.comm_bytes_sent += static_cast<std::int64_t>(rank.comm.total_bytes_sent());
            acct.comm_bytes_received +=
                static_cast<std::int64_t>(rank.comm.total_bytes_received());
          }
        }
        acct.output_bytes += output_file_bytes(job->work_dir);
        acct.queue_wait_seconds += job->queue_wait;
        break;
      case Outcome::kPreempted:
        job->state = JobState::kQueued;
        ++job->preemptions;
        ++acct.preemptions;
        job->enqueued_at = clock_.seconds();
        admission_.note_requeued(job->spec);
        queue_.push_back(job);
        break;
      case Outcome::kFailed:
        job->state = JobState::kFailed;
        job->error = error;
        admission_.note_finished(job->spec);
        ++acct.jobs_failed;
        acct.queue_wait_seconds += job->queue_wait;
        break;
    }
    --running_;
    dirty_ = true;
  }
  lease.release();  // before waking the scheduler, so available() sees it
  scheduler_cv_.notify_all();
  drain_cv_.notify_all();
}

}  // namespace trinity::serve
