#include "serve/journal.hpp"

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/timer.hpp"

namespace trinity::serve {

std::string JournalEvent::to_line() const {
  util::Json doc = util::Json::object();
  doc.set("event", event);
  doc.set("job_id", job_id);
  doc.set("tenant", tenant);
  doc.set("seq", seq);
  doc.set("attempts", attempts);
  doc.set("preemptions", preemptions);
  if (!detail.empty()) doc.set("detail", detail);
  if (!spec.is_null()) doc.set("spec", spec);
  return doc.dump();
}

JournalEvent JournalEvent::from_line(std::string_view line) {
  const util::Json doc = util::Json::parse(line);
  JournalEvent ev;
  ev.event = doc.at("event").as_string();
  if (ev.event.empty()) throw std::runtime_error("journal: empty event type");
  ev.job_id = doc.at("job_id").as_string();
  ev.tenant = doc.at("tenant").as_string();
  ev.seq = doc.at("seq").as_int();
  ev.attempts = static_cast<int>(doc.at("attempts").as_int());
  ev.preemptions = static_cast<int>(doc.at("preemptions").as_int());
  if (const util::Json* detail = doc.find("detail")) ev.detail = detail->as_string();
  if (const util::Json* spec = doc.find("spec")) ev.spec = *spec;
  return ev;
}

void JobJournal::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    append_latency_ = nullptr;
    append_events_ = nullptr;
    return;
  }
  append_latency_ = &metrics->histogram(
      "trinity_serve_journal_append_seconds",
      "Durable journal append latency (write + fsync)", obs::fsync_buckets_s());
  append_events_ = &metrics->counter("trinity_serve_journal_events_total",
                                     "Journal events appended durably");
}

void JobJournal::append(const JournalEvent& ev) {
  if (!file_ || !file_->is_open()) file_ = io::IoFile::open_append(path_);
  util::Timer timer;
  // write_all + fsync through the fault-injected layer: an injected short
  // write lands a torn half-line and throws transient, which the next
  // append then extends into one unparseable record — replay()'s
  // drop-and-count path, not a crash.
  file_->write_all(ev.to_line() + "\n");
  file_->fsync();
  if (append_latency_ != nullptr) {
    append_latency_->observe(timer.seconds());
    append_events_->inc();
  }
}

JournalReplay JobJournal::replay(const std::string& path) {
  JournalReplay out;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return out;

  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    const int err = errno != 0 ? errno : EIO;
    throw io::IoError(io::classify_errno(err), "open", path, err,
                      "cannot open journal for replay");
  }

  std::string line;
  std::uint64_t offset = 0;
  while (std::getline(in, line)) {
    const bool complete = !in.eof();  // getline hit '\n', not end-of-file
    const std::uint64_t end = offset + line.size() + (complete ? 1 : 0);
    if (!complete) {
      // Trailing bytes with no newline: a torn append. Never trust them.
      ++out.dropped_lines;
      break;
    }
    try {
      out.events.push_back(JournalEvent::from_line(line));
      out.valid_bytes = end;
    } catch (const std::exception&) {
      ++out.dropped_lines;
    }
    offset = end;
  }
  return out;
}

void JobJournal::truncate_to(const std::string& path, std::uint64_t valid_bytes) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == valid_bytes) return;
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    throw io::IoError(io::classify_errno(ec.value()), "truncate", path, ec.value(),
                      "cannot drop torn journal tail");
  }
}

}  // namespace trinity::serve
