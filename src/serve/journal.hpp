#pragma once
// JobJournal: the serve layer's durable write-ahead log.
//
// Every job state transition the server must not forget — submit (with
// the full spec payload), dispatch, requeue, complete, fail, quarantine,
// kill, recover — is appended as one JSON object per line to
// `<serve root>/journal.jsonl` *before* the in-memory transition is
// acted on. The append goes through io::IoFile (O_APPEND + fsync), so it
// is both durable and subject to the same injected-fault machinery as
// every other writer in the tree: an ENOSPC, EIO or short write during an
// append surfaces as a typed io::IoError the server can degrade on, and
// the torn half-line a short write leaves behind is exactly what
// replay()'s corrupt-line tolerance absorbs.
//
// Replay is the recovery half: a restarted server scans the journal,
// drops unparseable lines (torn tails from a crash mid-append) while
// recording how many bytes of prefix are clean, and hands back the event
// sequence from which JobServer rebuilds its registry — terminal jobs
// re-registered for duplicate-id rejection, queued and in-flight jobs
// re-admitted so their checkpoint manifests resume byte-identically.
//
// The class is NOT thread-safe; JobServer appends only under its mutex.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/io_file.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace trinity::serve {

/// One journal line. `spec` carries the job_spec_to_json payload on
/// "submit" events only (null otherwise); `detail` is the human-readable
/// reason on requeue/fail/quarantine/kill/reject events.
struct JournalEvent {
  std::string event;    ///< submit|reject|dispatch|requeue|complete|fail|
                        ///< quarantine|kill|recover
  std::string job_id;
  std::string tenant;
  std::int64_t seq = 0;    ///< server-assigned scheduling sequence number
  int attempts = 0;        ///< attempt budget consumed as of this event
  int preemptions = 0;     ///< preemption count as of this event
  std::string detail;      ///< reason text; empty when not applicable
  util::Json spec;         ///< submit events: full re-admittable spec doc

  /// The single-line JSON form append() writes.
  [[nodiscard]] std::string to_line() const;

  /// Parses one journal line; throws std::runtime_error on malformed
  /// JSON or a missing/mistyped required field.
  [[nodiscard]] static JournalEvent from_line(std::string_view line);
};

/// What replay() recovered from a journal file.
struct JournalReplay {
  std::vector<JournalEvent> events;
  /// Bytes of prefix ending at the last line that parsed cleanly; a
  /// caller that wants a self-healing journal truncates to this before
  /// appending (JobJournal::truncate_to).
  std::uint64_t valid_bytes = 0;
  /// Lines dropped as unparseable (torn appends, garbage); replay never
  /// throws on them.
  int dropped_lines = 0;
};

class JobJournal {
 public:
  explicit JobJournal(std::string path) : path_(std::move(path)) {}

  /// Wires the journal into a live-metrics registry: every append()
  /// observes its write+fsync latency in the
  /// `trinity_serve_journal_append_seconds` histogram and bumps
  /// `trinity_serve_journal_events_total`. Null detaches. The registry
  /// must outlive the journal.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Appends one event line and fsyncs. The descriptor is opened lazily
  /// on first append and kept across calls (O_APPEND, so each write
  /// lands at end-of-file). Throws io::IoError on open/write/fsync
  /// failure; after a failed partial write the next append continues on
  /// the same torn line, which replay() then drops as one bad record.
  void append(const JournalEvent& ev);

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Scans `path` and parses every complete line. A missing file yields
  /// an empty replay; unparseable lines and a trailing partial line
  /// (no '\n') are counted in dropped_lines, never thrown. Read failures
  /// other than ENOENT throw io::IoError.
  [[nodiscard]] static JournalReplay replay(const std::string& path);

  /// Truncates the journal to `valid_bytes`, discarding a torn tail
  /// found by replay(). No-op when the file is already that size.
  static void truncate_to(const std::string& path, std::uint64_t valid_bytes);

 private:
  std::string path_;
  std::optional<io::IoFile> file_;  ///< lazily opened appender
  obs::Histogram* append_latency_ = nullptr;  ///< null when metrics are off
  obs::Counter* append_events_ = nullptr;
};

}  // namespace trinity::serve
