#include "serve/accounting.hpp"

#include <iomanip>

namespace trinity::serve {

TenantAccount& Accounting::account(const std::string& tenant) {
  for (auto& a : accounts_) {
    if (a.tenant == tenant) return a;
  }
  accounts_.emplace_back();
  accounts_.back().tenant = tenant;
  return accounts_.back();
}

util::Json Accounting::to_json() const {
  util::Json rows = util::Json::array();
  for (const auto& a : accounts_) {
    util::Json row = util::Json::object();
    row.set("tenant", a.tenant);
    row.set("jobs_submitted", a.jobs_submitted);
    row.set("jobs_completed", a.jobs_completed);
    row.set("jobs_failed", a.jobs_failed);
    row.set("jobs_rejected", a.jobs_rejected);
    row.set("jobs_quarantined", a.jobs_quarantined);
    row.set("jobs_recovered", a.jobs_recovered);
    row.set("deadline_kills", a.deadline_kills);
    row.set("hung_kills", a.hung_kills);
    row.set("job_retries", a.job_retries);
    row.set("preemptions", a.preemptions);
    row.set("stage_retries", a.stage_retries);
    row.set("io_retries", a.io_retries);
    row.set("rank_seconds", a.rank_seconds);
    row.set("queue_wait_seconds", a.queue_wait_seconds);
    row.set("run_seconds", a.run_seconds);
    row.set("comm_bytes_sent", a.comm_bytes_sent);
    row.set("comm_bytes_received", a.comm_bytes_received);
    row.set("output_bytes", a.output_bytes);
    row.set("rss_declared_bytes_peak", static_cast<std::int64_t>(a.rss_declared_bytes_peak));
    row.set("rss_measured_bytes_peak", static_cast<std::int64_t>(a.rss_measured_bytes_peak));
    rows.push_back(std::move(row));
  }
  util::Json out = util::Json::object();
  out.set("tenants", std::move(rows));
  return out;
}

void Accounting::summarize(std::ostream& out) const {
  out << std::left << std::setw(14) << "tenant" << std::right << std::setw(5) << "sub"
      << std::setw(5) << "done" << std::setw(5) << "fail" << std::setw(5) << "rej"
      << std::setw(5) << "quar" << std::setw(6) << "recov" << std::setw(5) << "ddl"
      << std::setw(5) << "hung" << std::setw(6) << "j-rtr" << std::setw(6) << "preem"
      << std::setw(6) << "retry" << std::setw(11) << "rank-s" << std::setw(10)
      << "wait-s" << std::setw(13) << "comm(B)" << std::setw(11) << "out(B)" << '\n';
  for (const auto& a : accounts_) {
    out << std::left << std::setw(14) << a.tenant << std::right << std::setw(5)
        << a.jobs_submitted << std::setw(5) << a.jobs_completed << std::setw(5)
        << a.jobs_failed << std::setw(5) << a.jobs_rejected << std::setw(5)
        << a.jobs_quarantined << std::setw(6) << a.jobs_recovered << std::setw(5)
        << a.deadline_kills << std::setw(5) << a.hung_kills << std::setw(6)
        << a.job_retries << std::setw(6) << a.preemptions << std::setw(6)
        << a.stage_retries << std::fixed << std::setprecision(2) << std::setw(11)
        << a.rank_seconds << std::setw(10) << a.queue_wait_seconds << std::setw(13)
        << a.comm_bytes_sent + a.comm_bytes_received << std::setw(11)
        << a.output_bytes << '\n';
  }
}

}  // namespace trinity::serve
