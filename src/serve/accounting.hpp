#pragma once
// Per-tenant usage accounting for the serve layer.
//
// Multi-tenancy without metering is a free-for-all: the ledger records,
// per tenant, how many jobs it submitted and how they ended, how much of
// the shared machine it actually held (rank-seconds = ranks x wall time
// leased, summed over dispatches), how many bytes its jobs moved through
// the simulated interconnect, what it wrote, and how often the fault
// machinery worked on its behalf (stage/io retries, preemptions). The
// numbers come from each job's PipelineResult at completion — the same
// source its run_report.json is built from — so `trinity_report
// --aggregate` over the server root reproduces this view from artifacts
// alone.
//
// Not thread-safe; JobServer mutates it under its mutex and hands out
// snapshot copies.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace trinity::serve {

/// One tenant's ledger row. All counters are cumulative over the server's
/// lifetime; a preempted dispatch accrues rank-seconds and run-seconds
/// for the time it actually held ranks.
struct TenantAccount {
  std::string tenant;
  std::int64_t jobs_submitted = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_failed = 0;
  std::int64_t jobs_rejected = 0;   ///< typed admission rejects
  std::int64_t jobs_quarantined = 0;  ///< poison jobs: attempt budget exhausted
  std::int64_t jobs_recovered = 0;  ///< re-admitted from the journal on restart
  std::int64_t deadline_kills = 0;  ///< watchdog cancellations: past deadline-s
  std::int64_t hung_kills = 0;      ///< watchdog cancellations: no progress
  std::int64_t job_retries = 0;     ///< transient-failure requeues (backoff)
  std::int64_t preemptions = 0;     ///< checkpoint -> requeue cycles
  std::int64_t stage_retries = 0;   ///< in-process stage re-launches
  std::int64_t io_retries = 0;      ///< subset caused by transient io faults
  double rank_seconds = 0.0;        ///< ranks held x wall seconds, all dispatches
  double queue_wait_seconds = 0.0;  ///< time spent waiting for dispatch
  double run_seconds = 0.0;         ///< wall time dispatched
  std::int64_t comm_bytes_sent = 0;      ///< simulated interconnect, all ops
  std::int64_t comm_bytes_received = 0;
  std::int64_t output_bytes = 0;    ///< final transcript FASTA bytes
  /// Peak declared and peak measured RSS over this tenant's dispatches —
  /// the admission-feedback pair (declared is what jobs promised,
  /// measured is what ResourceTrace actually sampled).
  std::uint64_t rss_declared_bytes_peak = 0;
  std::uint64_t rss_measured_bytes_peak = 0;
};

/// The server-wide ledger: one row per tenant, insertion order.
class Accounting {
 public:
  /// The row for `tenant`, created on first touch.
  TenantAccount& account(const std::string& tenant);

  [[nodiscard]] const std::vector<TenantAccount>& accounts() const { return accounts_; }

  /// {"tenants": [row, ...]} with every TenantAccount field.
  [[nodiscard]] util::Json to_json() const;

  /// Fixed-width per-tenant table (the trinity_serve exit summary).
  void summarize(std::ostream& out) const;

 private:
  std::vector<TenantAccount> accounts_;
};

}  // namespace trinity::serve
