#pragma once
// JobServer: the long-lived multi-tenant assembly service.
//
// The paper's pipeline is one batch run on a dedicated allocation; the
// ROADMAP north star is the opposite regime — many concurrent assemblies
// multiplexed over one shared machine. JobServer is that regime built
// from the parts the previous PRs left behind:
//
//  * submissions are trinity::Config JSON (serve/job.hpp) — PR 5's schema
//    is the wire format, and its typed ConfigError is the reject path;
//  * admission is quota-gated and the queue is bounded (serve/admission.hpp)
//    — overload produces a typed AdmitResult, never a blocked caller;
//  * the machine is a simpi::RankPool; a job leases its ranks for each
//    dispatch and a scheduler thread multiplexes queued jobs over the
//    pool by (priority desc, submission order asc);
//  * preemption is checkpoint -> requeue -> resume: a higher-priority
//    arrival sets lower-priority jobs' preempt tokens, each victim stops
//    at its next stage boundary (PipelineOptions::preempt, throwing
//    PreemptedError after the completed stages committed their manifest
//    records), returns its ranks, and re-enters the queue; its next
//    dispatch runs with resume=true and PR 1's manifest validation skips
//    the finished stages — transcripts are byte-identical to an
//    uninterrupted run (serve_test asserts this);
//  * every job runs in an isolated work dir <root>/<tenant>/<job_id> and
//    emits its own run_report.json stamped with job/tenant attribution
//    (schema v3), so one tenant's injected rank crash or ENOSPC is
//    retried/failed inside its own directory with no cross-tenant blast
//    radius (serve_fault_test), and `trinity_report --aggregate <root>`
//    rebuilds the accounting from artifacts alone.
//
// Scheduling policy, deliberately simple and starvation-free: queued jobs
// are scanned in (priority desc, seq asc) order; a job blocked only by
// its tenant's running quota is skipped (other tenants proceed); the
// first job blocked by pool capacity ends the pass — no backfill past it,
// so a big job cannot be starved by a stream of small ones — after
// optionally marking the cheapest set of strictly-lower-priority victims
// for preemption.
//
// PR 8 makes the server crash-safe and hang-safe:
//
//  * every job state transition is appended to a durable JSONL journal
//    (<root>/journal.jsonl, serve/journal.hpp) *before* it takes effect;
//    a restarted server replays the journal, re-registers terminal jobs
//    (duplicate-id rejection survives restarts) and re-admits queued and
//    in-flight jobs, whose next dispatch resumes from the per-job
//    checkpoint manifest — kill -9 mid-run, restart, byte-identical
//    transcripts with zero duplicated stage work;
//  * a watchdog thread cancels jobs past their per-job deadline-s, and —
//    when hang_timeout_s is set — jobs whose checkpoint manifest stops
//    making progress, via the cooperative deadline token
//    (PipelineOptions::deadline -> DeadlineExceededError), recording
//    typed DeadlineExceeded/Hung outcomes;
//  * a transient job failure (io::IoError transient, simpi aborts) that
//    escapes the in-run retry driver requeues the job with jittered
//    exponential backoff until its attempt budget ("job-attempts", or the
//    server's job_retry default) is exhausted — then the job is
//    quarantined: journaled, terminal-reported, work dir preserved, and
//    its id permanently rejected on resubmission.
//
// Caveat (io fault injection): io::ScopedFaultInjection is process-global,
// so at most one *io-faulted* job should be in flight at a time and its
// path glob must be confined to that job's own work dir. simpi fault
// plans are per-world and need no such care. See docs/SERVING.md.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "checkpoint/retry.hpp"
#include "chrysalis/transcript_index.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "serve/accounting.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "simpi/rank_pool.hpp"
#include "util/timer.hpp"

namespace trinity::serve {

struct ServerOptions {
  int total_ranks = 8;       ///< size of the shared rank pool
  int max_queue_depth = 64;  ///< server-wide bounded queue
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> tenant_quotas;  ///< per-tenant overrides
  std::string root_dir;  ///< job work dirs live at <root>/<tenant>/<job_id>;
                         ///< empty = <tmp>/trinity_serve
  bool preemption = true;  ///< priority preemption (off = strict FIFO by priority)
  /// Share one read-only TranscriptIndex across jobs whose runs have the
  /// same options fingerprint (same reads + output-affecting options):
  /// the first index-mode job builds or mmaps it, later ones map against
  /// the cached copy (run reports show index_source "shared-cache"). See
  /// docs/INDEXING.md. Only affects jobs running --r2t-mode index.
  bool share_index_cache = true;
  /// Defaults seeded into submit_text's job-spec parse, exactly like a
  /// binary's with_pipeline(defaults).
  pipeline::PipelineOptions job_defaults;
  /// Durable job journal at <root>/journal.jsonl: every state transition
  /// is appended (and fsynced) before it takes effect, and the constructor
  /// replays an existing journal to recover jobs across a crash/restart.
  /// Off = PR 7 behavior (no durability, no recovery).
  bool journal = true;
  /// Watchdog hang detection: a running job whose checkpoint manifest
  /// makes no progress for this long is cancelled with outcome "hung".
  /// 0 (default) disables hang detection; per-job deadlines always apply.
  double hang_timeout_s = 0.0;
  /// Watchdog poll period.
  double watchdog_poll_s = 0.05;
  /// Job-level retry budget and backoff for transient failures that escape
  /// the in-run stage retry driver: max_attempts dispatches total, with
  /// jittered exponential backoff between them; past the budget the job is
  /// quarantined. A job's "job-attempts" key overrides max_attempts.
  checkpoint::RetryPolicy job_retry{3, 0.25, 2.0, 10.0, 0.2};
  /// Floor for deadline sanity at admission: a deadline-s below this (or
  /// negative) is rejected as a permanent invalid_spec.
  double min_plausible_runtime_s = 0.01;
  /// Live metrics (docs/OBSERVABILITY.md "Live metrics"): an in-process
  /// obs::MetricsRegistry instrumenting admission, the queue, dispatches,
  /// watchdog kills, retries/quarantines, the journal and — through
  /// PipelineOptions::metrics — per-job stage heartbeats and per-rank
  /// comm counters. Off removes every hook (a pipeline hook then costs
  /// one pointer test); on, each update is a few relaxed atomics.
  bool metrics = true;
  /// Exporter cadence: every period the registry snapshot is published
  /// atomically as <root>/metrics.prom (Prometheus text) and
  /// <root>/metrics.json (versioned schema, tailed by trinity_top), with
  /// one final export at shutdown. 0 disables the exporter thread;
  /// metrics_snapshot() stays available either way.
  double metrics_export_period_s = 1.0;
};

/// Point-in-time snapshot of one job, for status displays and tests.
struct JobStatus {
  std::string job_id;
  std::string tenant;
  int priority = 0;
  JobState state = JobState::kQueued;
  int preemptions = 0;  ///< completed checkpoint->requeue cycles
  int dispatches = 0;   ///< times the job held a rank lease
  int attempts = 0;     ///< retry-budget attempts consumed (v4 semantics)
  JobOutcome outcome = JobOutcome::kNone;  ///< why the job is terminal
  bool recovered = false;  ///< re-admitted from the journal on restart
  std::string error;    ///< failure message for failed/quarantined/killed
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
  std::string work_dir;
};

class JobServer {
 public:
  explicit JobServer(ServerOptions options);
  ~JobServer();  ///< shutdown()
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Admission-checks `spec` and, on accept, enqueues it. Never blocks on
  /// a full queue: overload returns a typed reject immediately. An empty
  /// spec.job_id is assigned "job-<seq>"; a duplicate id is kInvalidSpec.
  AdmitResult submit(JobSpec spec);

  /// Parses one job-spec JSON document (serve/job.hpp, seeded with
  /// ServerOptions::job_defaults) and submits it. A ConfigError becomes a
  /// kInvalidSpec reject carrying the error text — submitters get typed
  /// validation, not an exception.
  AdmitResult submit_text(std::string_view text, const std::string& origin);

  /// Blocks until the queue is empty and no job is running.
  void drain();

  /// Stops accepting, drains, and joins every thread. Idempotent.
  void shutdown();

  [[nodiscard]] std::vector<JobStatus> jobs() const;
  /// Ledger snapshot (copy; safe to read after the server is gone).
  [[nodiscard]] Accounting accounting() const;
  [[nodiscard]] int total_ranks() const { return pool_.total(); }
  [[nodiscard]] const std::string& root_dir() const { return root_dir_; }

  /// The live registry; nullptr when ServerOptions::metrics is off.
  [[nodiscard]] obs::MetricsRegistry* metrics() const;
  /// Point-in-time snapshot of every live metric (empty when metrics are
  /// off). Safe from any thread.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  /// The exporter; nullptr when metrics are off or the period is 0.
  [[nodiscard]] obs::MetricsExporter* exporter() const { return exporter_.get(); }

 private:
  struct Job {
    JobSpec spec;
    std::uint64_t seq = 0;  ///< submission order (tie-break, FIFO)
    JobState state = JobState::kQueued;
    int preemptions = 0;
    int dispatches = 0;
    /// Retry-budget attempts consumed. A dispatch tentatively consumes
    /// one; a preemption hands it back (preemption is scheduling, not
    /// failure), every other outcome keeps it.
    int attempts = 0;
    bool recovered = false;  ///< re-admitted from the journal on restart
    JobOutcome outcome = JobOutcome::kNone;  ///< set when terminal
    /// Watchdog verdict for the in-flight dispatch (kNone = not killed);
    /// read by run_job when DeadlineExceededError surfaces.
    JobOutcome kill_reason = JobOutcome::kNone;
    std::string error;
    std::string work_dir;
    double submitted_at = 0.0;  ///< (re-)admission time: the deadline epoch
    double enqueued_at = 0.0;  ///< server-clock time of last queue entry
    double not_before = 0.0;   ///< backoff: earliest next dispatch time
    double queue_wait = 0.0;
    double run_time = 0.0;
    /// RSS this dispatch was charged against its tenant's running budget
    /// (admission_.effective_rss at dispatch), kept so start/finish stay
    /// symmetric while the measured EWMA moves.
    std::uint64_t charged_rss = 0;
    /// Hang detection: manifest size+mtime signature and when it last
    /// changed.
    std::uint64_t progress_signature = 0;
    double last_progress_at = 0.0;
    /// Fresh tokens per dispatch so a stale preempt/kill request cannot
    /// cancel a later dispatch of the same job.
    std::shared_ptr<std::atomic<bool>> preempt;
    std::shared_ptr<std::atomic<bool>> deadline;
  };

  void scheduler_loop();
  void watchdog_loop();
  /// One scheduling pass over the queue; see the policy note above.
  void schedule_locked();
  void dispatch_locked(Job* job, simpi::RankLease lease);
  /// Marks the cheapest set of strictly-lower-priority running jobs for
  /// preemption if that would free enough ranks for `job`.
  void maybe_preempt_locked(const Job& job, int need);
  void run_job(Job* job, simpi::RankLease lease);
  [[nodiscard]] JobStatus status_of_locked(const Job& job) const;

  /// Best-effort durable append: a transient journal IoError is logged and
  /// skipped, a permanent one degrades the server to journal-less serving
  /// (it keeps scheduling; durability is lost, not availability).
  void journal_locked(const JournalEvent& ev);
  [[nodiscard]] JournalEvent event_locked(const Job& job, std::string type,
                                          std::string detail = {}) const;
  /// Replays <root>/journal.jsonl into the registry/queue; constructor
  /// only, before any thread starts.
  void recover_from_journal();
  /// The job's effective attempt budget ("job-attempts", or the server
  /// job_retry default), never below 1.
  [[nodiscard]] int attempt_budget(const JobSpec& spec) const;
  /// Writes the minimal schema-v4 run_report.json for a job that reached a
  /// terminal state without a completed pipeline run.
  void write_terminal_report_locked(const Job& job) const;

  // --- live metrics (no-ops when options_.metrics is off) --------------------
  /// Counts one admission verdict under its typed outcome label.
  void metric_admission_locked(AdmitCode code);
  /// Counts one tenant-attributed reject (mirrors acct.jobs_rejected).
  void metric_rejected_locked(const std::string& tenant);
  /// Counts one terminal outcome under {tenant, outcome} and clears the
  /// job's active flag (mirrors the v4 report/ledger totals exactly).
  void metric_terminal_locked(const Job& job);
  /// Refreshes queue depth/peak/age, in-flight and rank gauges.
  void metric_queue_gauges_locked();
  /// Refreshes one tenant's queued/running-ranks/RSS/EWMA gauges.
  void metric_tenant_gauges_locked(const std::string& tenant);
  /// Sets the job's in-flight marker gauge (1 running, 0 otherwise).
  void metric_job_active_locked(const Job& job, bool active);

  ServerOptions options_;
  std::string root_dir_;
  /// Pre-registered hot-path handles over the owned registry, so the
  /// per-event cost is relaxed atomics (per-tenant/per-outcome series are
  /// looked up at event time — job transitions, a cold path).
  struct LiveMetrics {
    obs::MetricsRegistry registry;
    obs::Gauge& queue_depth;
    obs::Gauge& queue_depth_peak;
    obs::Gauge& oldest_queued_age;
    obs::Gauge& inflight;
    obs::Gauge& ranks_total;
    obs::Gauge& ranks_available;
    obs::Histogram& queue_wait;
    LiveMetrics();
  };
  std::unique_ptr<LiveMetrics> metrics_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  simpi::RankPool pool_;
  /// Process-wide read-only index cache handed to every dispatch (null
  /// when share_index_cache is off). Entries are immutable shared_ptrs,
  /// so concurrent jobs map against one loaded copy safely.
  std::shared_ptr<chrysalis::TranscriptIndexCache> index_cache_;

  mutable std::mutex mutex_;
  std::condition_variable scheduler_cv_;
  std::condition_variable drain_cv_;
  AdmissionController admission_;
  Accounting accounting_;
  std::optional<JobJournal> journal_;  ///< absent when options_.journal off
  bool journal_failed_ = false;  ///< permanent journal IoError: degraded
  std::vector<std::unique_ptr<Job>> registry_;  ///< every job ever submitted
  std::vector<Job*> queue_;                     ///< queued jobs, FIFO order
  int running_ = 0;
  std::uint64_t next_seq_ = 1;
  bool accepting_ = true;
  bool stop_ = false;
  bool dirty_ = false;  ///< schedule state changed since the last pass
  util::Timer clock_;

  std::vector<std::thread> workers_;  ///< one per dispatch, joined at shutdown
  std::thread scheduler_;
  std::thread watchdog_;
};

}  // namespace trinity::serve
