#include "butterfly/butterfly.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "chrysalis/scaffold.hpp"
#include "seq/dna.hpp"
#include "seq/kmer.hpp"

namespace trinity::butterfly {

namespace {

/// Turns a node-id path into its base sequence.
std::string path_to_sequence(const chrysalis::DeBruijnGraph& graph,
                             const std::vector<std::int32_t>& path) {
  const seq::KmerCodec codec(graph.k());
  std::string out = codec.decode(graph.node_kmer(path.front()));
  for (std::size_t i = 1; i < path.size(); ++i) {
    out.push_back(seq::code_to_base(seq::KmerCodec::last_base(graph.node_kmer(path[i]))));
  }
  return out;
}

std::uint64_t mix_tie(std::int32_t node, std::uint64_t salt) {
  std::uint64_t z = static_cast<std::uint64_t>(node) ^ (salt * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Depth-first enumeration of support-ranked linear paths from `start`.
/// Branches explore higher-support successors first; a per-path visited
/// set breaks cycles; enumeration stops once `paths` reaches the cap.
void enumerate_paths(const chrysalis::DeBruijnGraph& graph, std::int32_t start,
                     const ButterflyOptions& options,
                     std::vector<std::vector<std::int32_t>>& paths) {
  struct Frame {
    std::int32_t node;
    std::vector<std::int32_t> successors;  // remaining, best first
  };

  std::vector<std::int32_t> path{start};
  std::unordered_set<std::int32_t> on_path{start};

  auto ranked_successors = [&](std::int32_t node) {
    std::vector<std::int32_t> succ;
    for (std::uint8_t b = 0; b < 4; ++b) {
      const std::int32_t s = graph.successor(node, b);
      if (s < 0 || on_path.count(s)) continue;
      // Read reconciliation: never walk into a node no read supports.
      if (options.min_node_support > 0 && graph.support(s) < options.min_node_support) {
        continue;
      }
      succ.push_back(s);
    }
    std::sort(succ.begin(), succ.end(), [&](std::int32_t a, std::int32_t c) {
      if (graph.support(a) != graph.support(c)) return graph.support(a) > graph.support(c);
      if (options.tie_break_seed != 0) {
        // Salted tie: models Trinity's run-to-run variation in path order.
        return mix_tie(a, options.tie_break_seed) < mix_tie(c, options.tie_break_seed);
      }
      return a < c;  // canonical deterministic tiebreak
    });
    // Reverse so pop_back() yields the best-supported successor first.
    std::reverse(succ.begin(), succ.end());
    return succ;
  };

  std::vector<Frame> stack;
  stack.push_back({start, ranked_successors(start)});
  // A path is emitted exactly when it becomes maximal: its tip has no
  // unexplored-in-path successors, or the length guard fires.
  if (stack.back().successors.empty() || path.size() >= options.max_path_nodes) {
    paths.push_back(path);
  }

  while (!stack.empty()) {
    if (paths.size() >= options.max_paths_per_component) return;
    Frame& top = stack.back();
    if (top.successors.empty() || path.size() >= options.max_path_nodes) {
      on_path.erase(top.node);
      path.pop_back();
      stack.pop_back();
      continue;
    }
    const std::int32_t next = top.successors.back();
    top.successors.pop_back();
    path.push_back(next);
    on_path.insert(next);
    stack.push_back({next, ranked_successors(next)});
    if (stack.back().successors.empty() || path.size() >= options.max_path_nodes) {
      paths.push_back(path);
    }
  }
}

/// Drops transcripts that are exact substrings of a longer sibling.
std::vector<std::string> drop_contained(std::vector<std::string> seqs) {
  std::sort(seqs.begin(), seqs.end(), [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  std::vector<std::string> kept;
  for (const auto& s : seqs) {
    const bool contained = std::any_of(kept.begin(), kept.end(), [&](const std::string& t) {
      return t.find(s) != std::string::npos;
    });
    if (!contained) kept.push_back(s);
  }
  return kept;
}

}  // namespace

std::vector<seq::Sequence> reconstruct_component(const chrysalis::DeBruijnGraph& graph,
                                                 std::int32_t component_id,
                                                 const ButterflyOptions& options) {
  std::vector<seq::Sequence> out;
  if (graph.num_nodes() == 0) return out;

  auto starts = graph.source_nodes();
  if (starts.empty()) {
    // Fully cyclic graph: start from the best-supported node.
    std::int32_t best = 0;
    for (std::size_t i = 1; i < graph.num_nodes(); ++i) {
      if (graph.support(static_cast<std::int32_t>(i)) > graph.support(best)) {
        best = static_cast<std::int32_t>(i);
      }
    }
    starts.push_back(best);
  }

  std::vector<std::vector<std::int32_t>> paths;
  for (const auto start : starts) {
    if (paths.size() >= options.max_paths_per_component) break;
    enumerate_paths(graph, start, options, paths);
  }

  std::vector<std::string> seqs;
  seqs.reserve(paths.size());
  for (const auto& path : paths) seqs.push_back(path_to_sequence(graph, path));
  seqs = drop_contained(std::move(seqs));

  std::size_t isoform = 0;
  for (auto& s : seqs) {
    if (s.size() < options.min_transcript_length) continue;
    seq::Sequence rec;
    rec.name = "comp" + std::to_string(component_id) + "_seq" + std::to_string(isoform++);
    rec.bases = std::move(s);
    out.push_back(std::move(rec));
  }
  return out;
}

std::size_t paired_support(const seq::Sequence& transcript,
                           const std::vector<const seq::Sequence*>& component_reads) {
  // Group mates by fragment name, then check containment on both strands.
  std::unordered_map<std::string, std::pair<const seq::Sequence*, const seq::Sequence*>>
      fragments;
  for (const auto* read : component_reads) {
    int mate = 0;
    const std::string frag = chrysalis::mate_fragment_name(read->name, &mate);
    if (frag.empty()) continue;
    auto& slot = fragments[frag];
    (mate == 1 ? slot.first : slot.second) = read;
  }

  const std::string rc = seq::reverse_complement(transcript.bases);
  auto contains_fwd = [&](const seq::Sequence& r) {
    return transcript.bases.find(r.bases) != std::string::npos;
  };
  auto contains_rev = [&](const seq::Sequence& r) {
    return rc.find(r.bases) != std::string::npos;
  };

  std::size_t supported = 0;
  for (const auto& [frag, mates] : fragments) {
    if (mates.first == nullptr || mates.second == nullptr) continue;
    // A proper pair: the mates sit on opposite strands of the fragment.
    const bool orientation_a = contains_fwd(*mates.first) && contains_rev(*mates.second);
    const bool orientation_b = contains_rev(*mates.first) && contains_fwd(*mates.second);
    if (orientation_a || orientation_b) ++supported;
  }
  return supported;
}

std::vector<seq::Sequence> run_butterfly(
    const std::vector<seq::Sequence>& contigs, const chrysalis::ComponentSet& components,
    const std::vector<chrysalis::ReadAssignment>& assignments,
    const std::vector<seq::Sequence>& reads, const ButterflyOptions& options) {
  // Bucket assigned reads per component.
  std::vector<std::vector<const seq::Sequence*>> reads_of(components.num_components());
  for (const auto& a : assignments) {
    if (a.component < 0) continue;
    if (a.read_index < 0 || static_cast<std::size_t>(a.read_index) >= reads.size()) continue;
    reads_of[static_cast<std::size_t>(a.component)].push_back(
        &reads[static_cast<std::size_t>(a.read_index)]);
  }

  std::vector<seq::Sequence> transcripts;
  for (const auto& comp : components.components) {
    std::vector<seq::Sequence> comp_contigs;
    comp_contigs.reserve(comp.contig_ids.size());
    for (const auto id : comp.contig_ids) {
      comp_contigs.push_back(contigs.at(static_cast<std::size_t>(id)));
    }
    chrysalis::DeBruijnGraph graph(comp_contigs, options.k);
    for (const auto* read : reads_of[static_cast<std::size_t>(comp.id)]) {
      graph.quantify(*read);
    }
    auto comp_transcripts = reconstruct_component(graph, comp.id, options);
    if (options.require_paired_support) {
      const auto& comp_reads = reads_of[static_cast<std::size_t>(comp.id)];
      std::erase_if(comp_transcripts, [&](const seq::Sequence& t) {
        if (t.bases.size() <= options.paired_check_length) return false;
        return paired_support(t, comp_reads) == 0;
      });
    }
    transcripts.insert(transcripts.end(), std::make_move_iterator(comp_transcripts.begin()),
                       std::make_move_iterator(comp_transcripts.end()));
  }
  return transcripts;
}

}  // namespace trinity::butterfly
