#pragma once
// Inchworm: greedy k-mer extension assembler (Trinity stage 2).
//
// Mirrors the algorithm the paper summarizes in Section II.A:
//   1. build a k-mer dictionary from the Jellyfish-style counts, removing
//      likely error k-mers (count below a threshold);
//   2. sort k-mers by decreasing abundance;
//   3. seed a contig from the most abundant unused k-mer;
//   4. extend the seed in each direction by the highest-count k-mer with a
//      (k-1) overlap (Figure 1 of the paper);
//   5. report the linear contig, mark its k-mers used, repeat until the
//      dictionary is exhausted.
//
// K-mers are canonical (strand-neutral), and extension works on literal
// orientations while consulting canonical counts, matching Trinity's
// double-stranded mode.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kmer/counter.hpp"
#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::inchworm {

/// Assembly options.
struct InchwormOptions {
  int k = 25;                          ///< k-mer size (must match the counts)
  std::uint32_t min_kmer_count = 2;    ///< error-pruning threshold
  std::size_t min_contig_length = 48;  ///< discard shorter contigs
  /// Tie-break salt among equally abundant seeds. Trinity's output is
  /// "slightly indeterministic" between runs (paper, Section IV); varying
  /// this value models that run-to-run variation, while 0 keeps the
  /// canonical deterministic order.
  std::uint64_t tie_break_seed = 0;
};

/// Summary of one assembly run.
struct InchwormStats {
  std::size_t dictionary_size = 0;   ///< k-mers surviving the error prune
  std::size_t contigs_reported = 0;
  std::size_t contigs_discarded = 0; ///< below min_contig_length
  std::size_t bases_assembled = 0;
};

/// Greedy contig assembler over a k-mer count dictionary.
class Inchworm {
 public:
  explicit Inchworm(InchwormOptions options);

  /// Loads the dictionary from dumped counts, pruning error k-mers.
  /// Codes must be canonical for the same k as the options.
  void load_counts(const std::vector<kmer::KmerCount>& counts);

  /// Convenience: counts k-mers of `reads` and loads them.
  void load_reads(const std::vector<seq::Sequence>& reads);

  /// Runs the greedy assembly, returning contigs named "iworm_<n>" in
  /// seed-abundance order.
  std::vector<seq::Sequence> assemble();

  /// Statistics of the most recent assemble() call.
  [[nodiscard]] const InchwormStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint32_t count = 0;
    bool used = false;
  };

  /// Count lookup through canonicalization; 0 when absent or used.
  std::uint32_t available_count(seq::KmerCode literal) const;

  /// Marks the canonical form of `literal` used.
  void mark_used(seq::KmerCode literal);

  /// Extends `contig` to the right by greedy (k-1)-overlap steps.
  void extend_right(std::string& contig);

  InchwormOptions options_;
  seq::KmerCodec codec_;
  std::unordered_map<seq::KmerCode, Entry> dict_;
  InchwormStats stats_;
};

}  // namespace trinity::inchworm
