#include "inchworm/inchworm.hpp"

#include <algorithm>
#include <stdexcept>

#include "seq/dna.hpp"

namespace trinity::inchworm {

Inchworm::Inchworm(InchwormOptions options) : options_(options), codec_(options.k) {}

void Inchworm::load_counts(const std::vector<kmer::KmerCount>& counts) {
  dict_.clear();
  dict_.reserve(counts.size());
  for (const auto& kc : counts) {
    if (kc.count < options_.min_kmer_count) continue;  // error prune
    dict_[kc.code].count += kc.count;
  }
}

void Inchworm::load_reads(const std::vector<seq::Sequence>& reads) {
  kmer::CounterOptions copt;
  copt.k = options_.k;
  copt.canonical = true;
  kmer::KmerCounter counter(copt);
  counter.add_sequences(reads);
  load_counts(counter.dump());
}

std::uint32_t Inchworm::available_count(seq::KmerCode literal) const {
  const auto it = dict_.find(codec_.canonical(literal));
  if (it == dict_.end() || it->second.used) return 0;
  return it->second.count;
}

void Inchworm::mark_used(seq::KmerCode literal) {
  const auto it = dict_.find(codec_.canonical(literal));
  if (it != dict_.end()) it->second.used = true;
}

namespace {
// splitmix64-style mix used for salted tie-breaking; salt 0 never reaches
// this path.
std::uint64_t mix_tie(seq::KmerCode code, std::uint64_t salt) {
  std::uint64_t z = code ^ (salt * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Inchworm::extend_right(std::string& contig) {
  const auto k = static_cast<std::size_t>(options_.k);
  auto tail = codec_.encode(std::string_view(contig).substr(contig.size() - k));
  if (!tail) throw std::logic_error("Inchworm: contig tail is not a valid k-mer");
  seq::KmerCode current = *tail;
  const std::uint64_t salt = options_.tie_break_seed;
  for (;;) {
    std::uint32_t best_count = 0;
    std::uint8_t best_base = 0;
    seq::KmerCode best_code = 0;
    for (std::uint8_t b = 0; b < 4; ++b) {
      const seq::KmerCode candidate = codec_.roll_right(current, b);
      const std::uint32_t c = available_count(candidate);
      // Equal-abundance extension ties are where Trinity's run-to-run
      // nondeterminism lives; a nonzero salt permutes the choice.
      const bool wins =
          c > best_count ||
          (c == best_count && c > 0 && salt != 0 &&
           mix_tie(candidate, salt) < mix_tie(best_code, salt));
      if (wins) {
        best_count = c;
        best_base = b;
        best_code = candidate;
      }
    }
    if (best_count == 0) return;  // no unused supported extension
    contig.push_back(seq::code_to_base(best_base));
    mark_used(best_code);  // consuming immediately also breaks cycles
    current = best_code;
  }
}

std::vector<seq::Sequence> Inchworm::assemble() {
  stats_ = InchwormStats{};
  stats_.dictionary_size = dict_.size();

  // Seed order: decreasing abundance, code as a deterministic tiebreak.
  std::vector<std::pair<seq::KmerCode, std::uint32_t>> seeds;
  seeds.reserve(dict_.size());
  for (const auto& [code, entry] : dict_) seeds.emplace_back(code, entry.count);
  const std::uint64_t salt = options_.tie_break_seed;
  auto tie_key = [salt](seq::KmerCode code) {
    if (salt == 0) return static_cast<std::uint64_t>(code);
    // splitmix64-style mix of (code, salt): a different salt permutes the
    // order of equally abundant seeds, modeling Trinity's run-to-run
    // nondeterminism.
    std::uint64_t z = code ^ (salt * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::sort(seeds.begin(), seeds.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return tie_key(a.first) < tie_key(b.first);
  });

  std::vector<seq::Sequence> contigs;
  for (const auto& [code, count] : seeds) {
    const auto it = dict_.find(code);
    if (it == dict_.end() || it->second.used) continue;
    it->second.used = true;

    std::string contig = codec_.decode(code);
    extend_right(contig);
    // Left extension = right extension of the reverse complement.
    contig = seq::reverse_complement(contig);
    extend_right(contig);
    contig = seq::reverse_complement(contig);

    if (contig.size() < options_.min_contig_length) {
      ++stats_.contigs_discarded;
      continue;
    }
    seq::Sequence rec;
    rec.name = "iworm_" + std::to_string(contigs.size());
    rec.bases = std::move(contig);
    stats_.bases_assembled += rec.bases.size();
    contigs.push_back(std::move(rec));
  }
  stats_.contigs_reported = contigs.size();
  return contigs;
}

}  // namespace trinity::inchworm
