#include "chrysalis/dsu.hpp"

#include <algorithm>
#include <stdexcept>

#include "chrysalis/distribution.hpp"
#include "kmer/flat_index.hpp"

namespace trinity::chrysalis {

MinUnionFind::MinUnionFind(std::size_t n) : parent_(n), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::int32_t>(i);
}

std::int32_t MinUnionFind::find(std::int32_t x) {
  std::int32_t root = x;
  while (parent_[static_cast<std::size_t>(root)] != root) {
    root = parent_[static_cast<std::size_t>(root)];
  }
  while (parent_[static_cast<std::size_t>(x)] != root) {
    std::int32_t next = parent_[static_cast<std::size_t>(x)];
    parent_[static_cast<std::size_t>(x)] = root;
    x = next;
  }
  return root;
}

bool MinUnionFind::unite(std::int32_t a, std::int32_t b) {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra == rb) return false;
  // Union-by-min: the root of every set is its smallest element, so root
  // estimates only ever decrease toward the true component minimum.
  if (rb < ra) std::swap(ra, rb);
  parent_[static_cast<std::size_t>(rb)] = ra;
  --num_sets_;
  return true;
}

int dsu_owner(std::int32_t v, int nranks) {
  return static_cast<int>(kmer::mix_kmer_code(static_cast<std::uint64_t>(v)) %
                          static_cast<std::uint64_t>(nranks));
}

namespace {

/// Unites `edges` (flat a,b pairs) into `uf`, appending every successful
/// union's contracted root pair to `fresh`.
void contract(MinUnionFind& uf, const std::vector<std::int32_t>& edges,
              std::vector<std::int32_t>& fresh) {
  for (std::size_t i = 0; i + 1 < edges.size(); i += 2) {
    const std::int32_t ra = uf.find(edges[i]);
    const std::int32_t rb = uf.find(edges[i + 1]);
    if (ra == rb) continue;
    uf.unite(ra, rb);
    fresh.push_back(std::min(ra, rb));
    fresh.push_back(std::max(ra, rb));
  }
}

}  // namespace

ComponentSet distributed_components(simpi::Context& ctx, std::size_t num_contigs,
                                    const std::vector<ContigPair>& local_pairs,
                                    DsuStats* stats) {
  const int nranks = ctx.size();
  for (const auto& p : local_pairs) {
    if (p.a < 0 || p.b < 0 || static_cast<std::size_t>(p.a) >= num_contigs ||
        static_cast<std::size_t>(p.b) >= num_contigs) {
      throw std::out_of_range("distributed_components: pair index out of range");
    }
  }

  MinUnionFind uf(num_contigs);
  DsuStats local_stats;
  std::vector<std::int32_t> pending;
  pending.reserve(local_pairs.size() * 2);
  for (const auto& p : local_pairs) {
    pending.push_back(p.a);
    pending.push_back(p.b);
  }

  const BlockDistribution blocks(num_contigs, nranks);
  std::vector<std::int32_t> labels;
  for (;;) {
    // Boundary exchange until the global fixed point: unite what arrived,
    // route the fresh contracted edges to the owners of both endpoints
    // (chains sharing a root meet at that root's owner), repeat while any
    // rank still merged something.
    for (;;) {
      std::vector<std::int32_t> fresh;
      contract(uf, pending, fresh);
      const std::uint64_t total_fresh =
          ctx.allreduce_sum(static_cast<std::uint64_t>(fresh.size() / 2));
      if (total_fresh == 0) break;
      ++local_stats.rounds;
      std::vector<std::vector<std::int32_t>> outbox(static_cast<std::size_t>(nranks));
      for (std::size_t i = 0; i + 1 < fresh.size(); i += 2) {
        const int lo_owner = dsu_owner(fresh[i], nranks);
        const int hi_owner = dsu_owner(fresh[i + 1], nranks);
        outbox[static_cast<std::size_t>(lo_owner)].push_back(fresh[i]);
        outbox[static_cast<std::size_t>(lo_owner)].push_back(fresh[i + 1]);
        if (hi_owner != lo_owner) {
          outbox[static_cast<std::size_t>(hi_owner)].push_back(fresh[i]);
          outbox[static_cast<std::size_t>(hi_owner)].push_back(fresh[i + 1]);
        }
      }
      for (const auto& part : outbox) {
        local_stats.edges_routed += part.size() / 2;
        local_stats.edge_bytes_routed += part.size() * sizeof(std::int32_t);
      }
      const auto received = ctx.alltoallv(outbox);
      pending.clear();
      for (const auto& part : received) {
        pending.insert(pending.end(), part.begin(), part.end());
      }
    }

    // Resolution: element-wise minimum of every rank's root estimates.
    // Each estimate is the minimum of that rank's *known* piece of the
    // component, so it is >= the true minimum, and the fixed point put the
    // exact minimum on at least one rank; min over ranks recovers it.
    // Block-partitioned reduce-scatter, then the finished blocks are
    // shared back — both legs on alltoallv, so no pooled collective runs.
    std::vector<std::vector<std::int32_t>> est_parts(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const IndexRange range = blocks.block_for(r);
      auto& part = est_parts[static_cast<std::size_t>(r)];
      part.reserve(range.end - range.begin);
      for (std::size_t v = range.begin; v < range.end; ++v) {
        part.push_back(uf.find(static_cast<std::int32_t>(v)));
      }
    }
    const auto est_received = ctx.alltoallv(est_parts);
    const IndexRange mine = blocks.block_for(ctx.rank());
    std::vector<std::int32_t> my_block(mine.end - mine.begin);
    for (std::size_t i = 0; i < my_block.size(); ++i) {
      my_block[i] = static_cast<std::int32_t>(mine.begin + i);
    }
    for (const auto& part : est_received) {
      for (std::size_t i = 0; i < part.size() && i < my_block.size(); ++i) {
        my_block[i] = std::min(my_block[i], part[i]);
      }
    }
    std::vector<std::vector<std::int32_t>> share(static_cast<std::size_t>(nranks),
                                                 my_block);
    const auto final_blocks = ctx.alltoallv(share);
    labels.clear();
    labels.reserve(num_contigs);
    for (const auto& block : final_blocks) {
      labels.insert(labels.end(), block.begin(), block.end());
    }

    // Verification: the final labels must agree across every original
    // local pair. A violation (possible only if a knowledge chain never
    // met at a common rank) re-enters the exchange as a boundary edge, so
    // correctness does not rest on the fixed point alone.
    pending.clear();
    for (const auto& p : local_pairs) {
      const std::int32_t la = labels[static_cast<std::size_t>(p.a)];
      const std::int32_t lb = labels[static_cast<std::size_t>(p.b)];
      if (la != lb) {
        pending.push_back(la);
        pending.push_back(lb);
      }
    }
    const std::uint64_t violations =
        ctx.allreduce_sum(static_cast<std::uint64_t>(pending.size() / 2));
    if (violations == 0) break;
  }

  if (stats != nullptr) *stats = local_stats;

  // labels[v] is v's component minimum, the anchor cluster_contigs numbers
  // by; rebuilding through it keeps the output byte-identical to the
  // pooled path.
  std::vector<ContigPair> label_pairs;
  for (std::size_t v = 0; v < num_contigs; ++v) {
    const std::int32_t label = labels[v];
    if (label != static_cast<std::int32_t>(v)) {
      label_pairs.push_back({label, static_cast<std::int32_t>(v)});
    }
  }
  return cluster_contigs(num_contigs, label_pairs);
}

}  // namespace trinity::chrysalis
