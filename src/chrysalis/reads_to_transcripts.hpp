#pragma once
// ReadsToTranscripts: the second Chrysalis sub-step the paper parallelizes
// (Sections III.C, V.B; Figure 9).
//
// Assigns every input read to the Inchworm bundle (component) with which it
// shares the largest number of k-mers, and records the region of the read
// contributing those k-mers. The reads file is streamed in chunks of
// `max_mem_reads` — never loaded whole (the opposite of GraphFromFasta, as
// the paper emphasizes).
//
// Hybrid scheme ("redundant streaming"): every rank reads the entire file,
// keeps only chunks whose index is congruent to its rank modulo the world
// size, and processes those with its OpenMP threads. "This approach does
// make every process read redundant data ... but excludes the necessity of
// MPI communication." Each rank writes its own output file; rank 0
// concatenates them at the end (measured: the paper reports this stays
// under 15 seconds through 32 nodes).
//
// The first, discarded design — a master rank reading and distributing
// chunks to slaves — is kept as an ablation (Strategy::kMasterSlave).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chrysalis/components.hpp"
#include "chrysalis/graph_from_fasta.hpp"
#include "chrysalis/transcript_index.hpp"
#include "io/error.hpp"
#include "kmer/flat_index.hpp"
#include "simpi/context.hpp"
#include "seq/fasta.hpp"
#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// Which assignment engine classifies reads. Both produce bit-identical
/// assignments (transcript_index_test pins this); they differ in what the
/// setup region costs and whether it persists across runs.
enum class R2TMode {
  kVote,   ///< per-run k-mer -> bundle voting map (the paper's scheme)
  kIndex,  ///< persistent quasi-mapping TranscriptIndex (+ eq classes)
};

/// Lifecycle of the on-disk index in R2TMode::kIndex.
enum class IndexLifecycle {
  kBuild,  ///< always rebuild (and persist when an index_path is set)
  kLoad,   ///< mmap an existing index file; error when absent
  kAuto,   ///< mmap when present and compatible, otherwise build + persist
};

/// Hybrid chunk-distribution strategy (ablation knob).
enum class R2TStrategy {
  kRedundantStreaming,  ///< the paper's final scheme: every rank reads all
  kMasterSlave,         ///< the discarded attempt: rank 0 reads, sends chunks
};

/// How the hybrid run produces its merged output file.
enum class R2TOutputMode {
  /// The paper's scheme: one file per rank, concatenated by the master
  /// with "a simple cat command".
  kPerRankConcat,
  /// The paper's future work ("exploring MPI-I/O for RNA-Seq data"):
  /// every rank writes its slice directly into the shared output file at
  /// its rank-order offset (MPI_File_write_at_all style), eliminating the
  /// concatenation step entirely.
  kCollective,
};

/// ReadsToTranscripts parameters.
struct ReadsToTranscriptsOptions {
  int k = 25;
  std::size_t max_mem_reads = 10000;  ///< reads held in memory per chunk
  int omp_threads = 0;                ///< real OpenMP threads (0 = auto)
  int model_threads_per_rank = 16;    ///< simulated threads per node
  R2TStrategy strategy = R2TStrategy::kRedundantStreaming;
  /// Cost-model calibration for benchmarks; see
  /// GraphFromFastaOptions::kernel_repeats. Leave at 1 for normal use.
  int kernel_repeats = 1;
  R2TOutputMode output_mode = R2TOutputMode::kPerRankConcat;
  /// How the streaming reader treats malformed records (strict throws
  /// io::ParseError, tolerant/repair quarantine and continue — see
  /// seq/fasta.hpp). All ranks must use the same policy: quarantining
  /// changes read indices, so a mixed world would disagree on assignments.
  seq::ParsePolicy parse_policy = seq::ParsePolicy::kStrict;
  /// Double-buffer the streaming read against classification: a helper
  /// thread parses the next chunk while the OpenMP team classifies the
  /// current one, hiding the redundant-streaming I/O cost. Chunk order and
  /// assignments are unchanged. Applies to run_shared and the
  /// redundant-streaming hybrid strategy; the master/slave ablation keeps
  /// its synchronous producer loop.
  bool overlap_io = true;

  // --- quasi-mapping index (R2TMode::kIndex) ---------------------------------
  // Scheduling-only knobs: assignments are bit-identical across modes, so
  // none of these participate in the pipeline options fingerprint.
  R2TMode mode = R2TMode::kVote;
  IndexLifecycle index_lifecycle = IndexLifecycle::kAuto;
  /// Where the serialized index lives (docs/INDEXING.md). Empty: the index
  /// is built in memory and never persisted (kLoad then errors).
  std::string index_path;
  /// A pre-loaded index to map against (the serve layer's shared cache).
  /// When set (and built with the same k) it wins over every lifecycle.
  std::shared_ptr<const TranscriptIndex> shared_index;
};

/// One read's bundle assignment.
struct ReadAssignment {
  std::int64_t read_index = -1;    ///< position in file order
  std::int32_t component = -1;     ///< -1 when no k-mer matched any bundle
  std::uint32_t shared_kmers = 0;  ///< k-mers shared with the component
  std::uint32_t region_begin = 0;  ///< first base contributing a k-mer
  std::uint32_t region_end = 0;    ///< one past the last contributing base
};
static_assert(std::is_trivially_copyable_v<ReadAssignment>);

/// Timing in the units Figure 9 plots.
struct R2TTiming {
  double setup_seconds = 0.0;   ///< k-mer -> bundle map (OpenMP, not hybrid)
  PerRankTimes main_loop;       ///< the MPI-enabled streaming+assignment loop
  double concat_seconds = 0.0;  ///< per-rank file concatenation at rank 0
  double comm_seconds = 0.0;    ///< max modeled communication over ranks

  // Work distribution and final-pooling volume (size 1 vectors for
  // shared-memory runs). Chunk counts expose the modulo distribution's
  // remainder imbalance directly; byte fields mirror GffTiming's
  // contributed/pooled split for the assignment Allgatherv.
  std::vector<std::uint64_t> rank_chunks;  ///< chunks each rank processed
  std::vector<std::uint64_t> rank_reads;   ///< reads each rank assigned
  std::vector<std::uint64_t> assignment_bytes_contributed;  ///< per rank
  std::uint64_t assignment_bytes_pooled = 0;  ///< full pooled payload, bytes

  // Double-buffered prefetch accounting (zero when overlap_io is off and
  // for the master/slave strategy); max over ranks for hybrid runs. See
  // docs/OBSERVABILITY.md "overlap counters".
  double prefetch_hidden_seconds = 0.0;  ///< chunk-parse CPU hidden behind compute
  double prefetch_wait_seconds = 0.0;    ///< residual wall time blocked on the parser

  // Quasi-mapping index accounting (R2TMode::kIndex only; max over ranks
  // for hybrid runs). In index mode setup_seconds mirrors their sum, so
  // Figure 9's setup column stays comparable across modes; a warm
  // mmap-load reports index_build_seconds == 0.
  double index_build_seconds = 0.0;  ///< wall seconds building (0 when loaded)
  double index_load_seconds = 0.0;   ///< wall seconds mmap-loading (0 when built)
  std::string index_source;          ///< "built" | "mmap" | "shared-cache"; "" in vote mode

  [[nodiscard]] double total_seconds() const {
    return setup_seconds + main_loop.max() + concat_seconds + comm_seconds;
  }
};

/// Result of a run. Assignments are sorted by read_index and identical on
/// every rank after a hybrid run.
struct R2TResult {
  std::vector<ReadAssignment> assignments;
  R2TTiming timing;
  std::string merged_output_path;  ///< empty when no output dir was given
  /// Quarantine/repair counts from this stage's streaming reader (the rank
  /// that read the file; under redundant streaming every rank sees the
  /// same file, so the counts are identical on all readers).
  io::ParseDiagnostics parse;
  /// The index the run mapped against (R2TMode::kIndex only) — callers
  /// publish it to a TranscriptIndexCache so later jobs skip the build.
  std::shared_ptr<const TranscriptIndex> index;
  /// Fragment equivalence classes (R2TMode::kIndex only), pooled over all
  /// ranks and identical on every rank after a hybrid run.
  std::vector<EquivalenceClass> eq_classes;
};

/// Builds the canonical k-mer -> component map from each component's
/// contigs (the "assignment of k-mers to Inchworm bundles" setup region).
/// A k-mer occurring in several components maps to the smallest component
/// id, deterministically.
kmer::FlatKmerIndex<std::int32_t> build_bundle_kmer_map(
    const std::vector<seq::Sequence>& contigs, const ComponentSet& components, int k);

/// Original OpenMP-only ReadsToTranscripts, streaming `reads_path`.
/// `output_dir` may be empty to skip file output.
R2TResult run_shared(const std::vector<seq::Sequence>& contigs, const ComponentSet& components,
                     const std::string& reads_path, const ReadsToTranscriptsOptions& options,
                     const std::string& output_dir = "");

/// Hybrid simpi+OpenMP ReadsToTranscripts. Collective over the world;
/// every rank must see the same file and options.
R2TResult run_hybrid(simpi::Context& ctx, const std::vector<seq::Sequence>& contigs,
                     const ComponentSet& components, const std::string& reads_path,
                     const ReadsToTranscriptsOptions& options,
                     const std::string& output_dir = "");

namespace detail {

/// Assignment kernel for one read.
ReadAssignment assign_read(const seq::Sequence& read, std::int64_t read_index,
                           const kmer::FlatKmerIndex<std::int32_t>& bundle_of, int k);

/// Index-mode assignment kernel: same tally loop over the quasi-mapping
/// index (bit-identical result to assign_read). When `labels_out` is
/// non-null it receives the read's sorted distinct component label set —
/// the fragment-equivalence-class key (empty when nothing matched).
ReadAssignment assign_read_indexed(const seq::Sequence& read, std::int64_t read_index,
                                   const TranscriptIndex& index, int k,
                                   std::vector<std::int32_t>* labels_out = nullptr);

/// Writes assignments as TSV (read_index, component, shared, begin, end).
void write_assignments(const std::string& path, const std::vector<ReadAssignment>& assignments);

}  // namespace detail

}  // namespace trinity::chrysalis
