#pragma once
// Bowtie-based contig scaffolding (paper, Section III.A).
//
// "Based on the output from Bowtie alignment, the subsequent step searches
// pairs of Inchworm contigs of which both ends are to be combined for the
// construction of scaffold, provided that some of input reads are aligned
// onto single end of each contigs. This output is later combined with
// 'welding' pairs of Inchworm contigs from GraphFromFasta for full
// construction of Inchworm bundles."
//
// Given the merged SAM records for paired-end reads, this step pairs
// contigs when enough read pairs have one mate near the end of contig A
// and the other near the end of contig B.

#include <cstdint>
#include <string>
#include <vector>

#include "align/aligner.hpp"
#include "chrysalis/components.hpp"
#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// Scaffolding parameters.
struct ScaffoldOptions {
  std::size_t end_window = 150;     ///< mate must align within this many
                                    ///< bases of a contig end
  std::uint32_t min_pair_support = 2;  ///< read pairs required per contig pair
};

/// Identifies paired mates by read name: "x/1"+"x/2", "x_1"+"x_2", or
/// "x.1"+"x.2". Returns the shared fragment name, or an empty string for an
/// unpaired name.
std::string mate_fragment_name(const std::string& read_name, int* mate_out);

/// Derives scaffold pairs from alignments. `alignments` must cover both
/// mates of each fragment (any order); `contigs` are the alignment targets
/// (indexed by SamRecord::target_id).
std::vector<ContigPair> scaffold_pairs(const std::vector<align::SamRecord>& alignments,
                                       const std::vector<seq::Sequence>& contigs,
                                       const ScaffoldOptions& options);

}  // namespace trinity::chrysalis
