#pragma once
// TranscriptIndex: a persistent quasi-mapping index over all component
// contigs, replacing the per-run k-mer -> bundle voting map.
//
// The voting path (reads_to_transcripts.hpp) rebuilds its FlatKmerIndex on
// every run — the "assignment of k-mers to Inchworm bundles" setup region
// the paper leaves serial and which dominates the high-node end of
// Figure 9. RapMap-style quasi-mapping (Srivastava et al., the fragment
// equivalence-class paper in PAPERS.md) shows the alternative this header
// implements:
//
//  * contig k-mers are chained into *unique-path intervals* — maximal runs
//    of consecutive k-mer starts within one contig that resolve to the
//    same component — so the hash table maps each k-mer to one interval
//    id and the interval table carries the component label once;
//  * a read's hits are resolved by interval intersection: tallying the
//    hit intervals' components reproduces the voting consensus exactly
//    (most shared k-mers, smallest component id on ties), so index-mode
//    assignments are bit-identical to vote-mode assignments;
//  * the label set of each read (the distinct components its k-mers hit)
//    keys a *fragment equivalence class*; per-class read counts are the
//    compact quantification summary docs/INDEXING.md specifies.
//
// The index is serializable with a versioned header and mmap-loadable:
// build() lays the hash slots and interval table out exactly as they are
// stored on disk, save() commits that image atomically through the io
// layer, and load() maps the file read-only and validates magic, version,
// section sizes and a payload checksum — corrupt or truncated files are
// rejected with a typed io::ParseError, never a crash. A loaded index is
// immutable and safe for concurrent lookups, which is what lets
// trinity_serve share one copy across jobs (TranscriptIndexCache below).
//
// On-disk format: docs/INDEXING.md. The format version documented there
// must match kTranscriptIndexFormatVersion (scripts/check.sh enforces it).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "chrysalis/components.hpp"
#include "seq/kmer.hpp"
#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// On-disk format version. Bump on any layout change; load() refuses a
/// mismatched file with a clear message (stale caches rebuild instead of
/// misreading). Documented as "Format version: N" in docs/INDEXING.md.
inline constexpr std::uint32_t kTranscriptIndexFormatVersion = 1;

/// File magic: "TRIR2TIX" as a little-endian u64.
inline constexpr std::uint64_t kTranscriptIndexMagic = 0x5849543252495254ULL;

/// One unique-path interval: a maximal run of consecutive k-mer start
/// positions within one contig whose k-mers all resolve to the same
/// component. The unit a k-mer hit points at.
struct PathInterval {
  std::int32_t component = -1;  ///< owning component (bundle) id
  std::int32_t contig = -1;     ///< contig the run was chained from
  std::uint32_t begin = 0;      ///< first k-mer start offset in the contig
  std::uint32_t length = 0;     ///< number of chained k-mer starts
};
static_assert(std::is_trivially_copyable_v<PathInterval> && sizeof(PathInterval) == 16);

/// One fragment equivalence class: the sorted distinct set of components a
/// read's k-mers hit, plus how many reads produced exactly that set.
struct EquivalenceClass {
  std::vector<std::int32_t> components;
  std::uint64_t count = 0;
};

/// Accumulates equivalence-class counts; mergeable across chunks and ranks
/// (the hybrid run pools per-rank counters over an Allgatherv).
class EquivalenceClassCounter {
 public:
  /// Adds one read whose sorted distinct label set is `labels` (reads with
  /// no hit carry an empty set and are not counted in any class).
  void add(const std::vector<std::int32_t>& labels);

  void merge(const EquivalenceClassCounter& other);

  /// Classes in label-set lexicographic order (deterministic output).
  [[nodiscard]] std::vector<EquivalenceClass> classes() const;

  [[nodiscard]] std::uint64_t total_reads() const;
  [[nodiscard]] bool empty() const { return counts_.empty(); }

  /// TSV wire/file form, one class per line: "count<TAB>c1,c2,...\n" in
  /// label-set order (the schema docs/INDEXING.md documents).
  [[nodiscard]] std::string serialize() const;
  static EquivalenceClassCounter deserialize(const std::string& text);

 private:
  std::map<std::vector<std::int32_t>, std::uint64_t> counts_;
};

/// The persistent quasi-mapping index. Move-only: it owns either the built
/// in-memory image or a read-only mmap of the index file.
class TranscriptIndex {
 public:
  TranscriptIndex() = default;
  TranscriptIndex(TranscriptIndex&& other) noexcept;
  TranscriptIndex& operator=(TranscriptIndex&& other) noexcept;
  TranscriptIndex(const TranscriptIndex&) = delete;
  TranscriptIndex& operator=(const TranscriptIndex&) = delete;
  ~TranscriptIndex();

  /// Builds the index over every component's contigs. A k-mer occurring in
  /// several components resolves to the smallest component id — the same
  /// deterministic collision rule as build_bundle_kmer_map, which is what
  /// makes index-mode assignments bit-identical to vote-mode ones.
  static TranscriptIndex build(const std::vector<seq::Sequence>& contigs,
                               const ComponentSet& components, int k);

  /// Maps `path` read-only and validates it. Throws io::ParseError on a
  /// bad magic (kMissingHeader), a format-version mismatch
  /// (kMissingHeader, message names both versions), truncated sections
  /// (kTruncatedRecord, byte_offset = expected size) or a payload
  /// checksum mismatch (kInvalidCharacter); io::IoError when the file
  /// cannot be opened or mapped.
  static TranscriptIndex load(const std::string& path);

  /// Commits the serialized image to `path` atomically (tmp + fsync +
  /// rename through the io layer). Works for built and loaded indexes;
  /// save(load(p)) writes a byte-identical file.
  void save(const std::string& path) const;

  /// The interval `code` (a canonical k-mer) belongs to, or nullptr.
  [[nodiscard]] const PathInterval* lookup(seq::KmerCode code) const;

  /// Convenience: the component of `code`, or -1 on a miss.
  [[nodiscard]] std::int32_t component_of(seq::KmerCode code) const {
    const PathInterval* hit = lookup(code);
    return hit != nullptr ? hit->component : -1;
  }

  [[nodiscard]] bool empty() const { return entry_count_ == 0; }
  [[nodiscard]] int k() const { return static_cast<int>(k_); }
  [[nodiscard]] std::size_t num_kmers() const { return entry_count_; }
  [[nodiscard]] std::size_t num_intervals() const { return interval_count_; }
  [[nodiscard]] std::size_t num_components() const { return component_count_; }
  /// True when the arrays live in a read-only mmap of the index file.
  [[nodiscard]] bool mmap_backed() const { return map_base_ != nullptr; }
  /// Size of the serialized image in bytes.
  [[nodiscard]] std::size_t image_bytes() const { return image_size_; }

 private:
  void attach_sections();  ///< points keys_/slots_/intervals_ into the image
  [[nodiscard]] const char* image_data() const;

  std::uint32_t k_ = 0;
  std::uint64_t slot_count_ = 0;  ///< hash slots (power of two; 0 when empty)
  std::uint64_t entry_count_ = 0;
  std::uint64_t interval_count_ = 0;
  std::uint64_t component_count_ = 0;

  // The serialized image: exactly one of owned_ / map_base_ holds it.
  // owned_ is u64-backed so every section meets its alignment.
  std::vector<std::uint64_t> owned_;  ///< built in memory (header + sections)
  void* map_base_ = nullptr;     ///< mmap base when loaded from disk
  std::size_t map_length_ = 0;   ///< mapped length (munmap needs it)
  std::size_t image_size_ = 0;

  // Section pointers into the image (null for an empty index).
  const std::uint64_t* keys_ = nullptr;      ///< slot_count_ packed k-mers
  const std::uint32_t* slots_ = nullptr;     ///< interval id + 1; 0 = free
  const PathInterval* intervals_ = nullptr;  ///< interval_count_ entries
};

/// Process-wide read-only index cache for the serve layer: concurrent jobs
/// whose runs share an options fingerprint (same reads, same
/// output-affecting options => same components) map against one loaded
/// copy instead of each building or mapping their own. First writer wins;
/// entries are immutable shared_ptrs, so a job keeps its copy alive even
/// if the cache is cleared under it.
class TranscriptIndexCache {
 public:
  /// The cached index for `key`, or nullptr.
  [[nodiscard]] std::shared_ptr<const TranscriptIndex> find(std::uint64_t key) const;

  /// Publishes `index` under `key` unless one is already resident; returns
  /// the resident copy either way (callers adopt the winner).
  std::shared_ptr<const TranscriptIndex> put(std::uint64_t key,
                                             std::shared_ptr<const TranscriptIndex> index);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const TranscriptIndex>> entries_;
};

}  // namespace trinity::chrysalis
