#pragma once
// Distributed union-find (DSU) over contig ids — the component builder of
// the owner-computes GraphFromFasta path.
//
// The pooled path replicates every weld pair onto every rank and runs the
// sequential UnionFind there; its communication is O(global pairs) per
// rank. Related large-scale assemblers (ELBA's string-graph construction,
// the extreme-scale HipMer line of work in PAPERS.md) merge components
// with a distributed union-find instead: each rank keeps a path-compressed
// local forest over the vertices it has seen, and only *boundary edges* —
// fresh root-pair unions — travel, owner-addressed, until a global fixed
// point. Per-rank traffic is O(spanning edges), never O(pairs).
//
// Algorithm (collective; every rank calls with its own local edge set):
//  1. Local contraction: unite this rank's pairs in a union-by-min,
//     path-compressed forest. Every *successful* union is logged as the
//     contracted boundary edge (lo_root, hi_root).
//  2. Boundary exchange: each fresh edge is routed with Context::alltoallv
//     to the owners of both endpoints (owner(v) = splitmix64(v) % nranks),
//     so edge chains meeting at a shared root meet at that root's owner.
//     Receivers unite the edges, logging any fresh contractions, and the
//     round repeats until allreduce_sum(fresh unions) == 0.
//  3. Resolution: ranks exchange block segments of their root estimates
//     (find(v) for all v) with alltoallv; the block owner takes the
//     element-wise minimum — under union-by-min every estimate is >= the
//     true component minimum, and at the fixed point some rank holds the
//     exact minimum — then the finished blocks are shared back.
//  4. Verification: each rank re-checks its *original* pairs under the
//     final labels. Any violated pair re-enters the exchange as a new
//     boundary edge, so the result is correct by construction, not by a
//     convergence argument; in practice the first fixed point is final.
//
// The labels equal each component's smallest contig id — exactly the
// anchor cluster_contigs numbers components by — so rebuilding the
// ComponentSet from them is byte-identical to the pooled path (dsu_test
// asserts this over random edge sets at every rank count).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "chrysalis/components.hpp"
#include "simpi/context.hpp"

namespace trinity::chrysalis {

/// Union-find specialized for component labeling: union-by-min (the root
/// of every set is its smallest element) with full path compression. The
/// rank-based UnionFind in components.hpp is faster for anonymous sets;
/// this one makes roots meaningful, which the distributed resolution
/// phase depends on.
class MinUnionFind {
 public:
  explicit MinUnionFind(std::size_t n);

  /// Representative of x's set — the smallest element united into it.
  std::int32_t find(std::int32_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::int32_t a, std::int32_t b);

  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::int32_t> parent_;
  std::size_t num_sets_;
};

/// Per-rank observability counters of one distributed_components call.
struct DsuStats {
  int rounds = 0;  ///< boundary-exchange rounds until the global fixed point
  std::uint64_t edges_routed = 0;      ///< contracted edges this rank sent
  std::uint64_t edge_bytes_routed = 0; ///< bytes of those edges
};

/// Hash-partition owner of vertex v among nranks ranks (splitmix64
/// finalizer, the same mix the weld sharding uses).
[[nodiscard]] int dsu_owner(std::int32_t v, int nranks);

/// Distributed component clustering. Collective: every rank of the world
/// must call it with the same `num_contigs` but its *own* `local_pairs`
/// (the global edge set is the union over ranks). All ranks return the
/// same ComponentSet, byte-identical to
/// cluster_contigs(num_contigs, union of all ranks' pairs).
ComponentSet distributed_components(simpi::Context& ctx, std::size_t num_contigs,
                                    const std::vector<ContigPair>& local_pairs,
                                    DsuStats* stats = nullptr);

}  // namespace trinity::chrysalis
