#pragma once
// Component (Inchworm bundle) data model and the union-find clustering that
// turns weld/scaffold pairs into components.
//
// "GraphFromFasta clusters related Inchworm contigs into so-called
// components ... welding pairs of contigs together if read support exists,
// and subsequently clustering Inchworm contigs using these welds" (paper,
// Section II.A). A Component — an "Inchworm bundle" — is the unit Butterfly
// later turns into transcripts.

#include <cstdint>
#include <vector>

#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// A pair of contig indices to be welded into one component.
struct ContigPair {
  std::int32_t a = 0;
  std::int32_t b = 0;
  friend bool operator==(const ContigPair&, const ContigPair&) = default;
};

/// One cluster of Inchworm contigs.
struct Component {
  std::int32_t id = 0;
  std::vector<std::int32_t> contig_ids;  ///< sorted ascending
};

/// The clustering result: components plus the contig -> component map.
struct ComponentSet {
  std::vector<Component> components;
  std::vector<std::int32_t> component_of;  ///< indexed by contig id

  [[nodiscard]] std::size_t num_components() const { return components.size(); }
};

/// Union-find (weighted, path-halving) over n elements.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::int32_t find(std::int32_t x);

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::int32_t a, std::int32_t b);

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> rank_;
  std::size_t num_sets_;
};

/// Clusters `num_contigs` contigs with the given weld pairs. Component ids
/// are assigned in order of each component's smallest contig id, making the
/// result independent of pair order (a determinism property the tests
/// check: the hybrid run pools pairs in a different order than the
/// shared-memory run yet must produce the same components).
ComponentSet cluster_contigs(std::size_t num_contigs, const std::vector<ContigPair>& pairs);

}  // namespace trinity::chrysalis
