#pragma once
// Work-distribution strategies for the hybrid (simpi + OpenMP) loops.
//
// Section III.B of the paper: "Our current implementation uses a 'chunked
// round robin' strategy with each MPI process getting a chunk, distributing
// to its multiple threads, and then working on the next chunk.
// Mathematically, in the outer loop, chunk i ... is allocated to MPI rank p
// if i (modulo) p = 0" — i.e. chunk i belongs to rank (i mod P). The paper
// also notes the care needed at the tail: "the end index of the inner
// thread loop might have to be changed depending on how many Inchworm
// contigs are left".
//
// The first strategy they tried — pre-allocating one contiguous block per
// rank — "did not give us a good speedup"; it is kept here as
// BlockDistribution for the ablation benchmark.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace trinity::chrysalis {

/// A half-open index range [begin, end) of work items.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin >= end; }
  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Chunked round-robin: item space cut into fixed-size chunks; chunk i is
/// owned by rank (i mod nranks). Each returned range is one chunk, clipped
/// at the tail exactly as the paper describes.
class ChunkedRoundRobin {
 public:
  /// @throws std::invalid_argument for nranks < 1 or chunk_size < 1.
  ChunkedRoundRobin(std::size_t num_items, int nranks, std::size_t chunk_size);

  /// The chunks owned by `rank`, in increasing index order.
  [[nodiscard]] std::vector<IndexRange> chunks_for(int rank) const;

  /// Owner rank of item `index`.
  [[nodiscard]] int owner_of(std::size_t index) const;

  /// Total number of chunks (including the possibly short tail chunk).
  [[nodiscard]] std::size_t num_chunks() const;

  /// Chunk size the paper derives: proportional to items / (ranks*threads).
  /// Clamped to at least 1.
  static std::size_t default_chunk_size(std::size_t num_items, int nranks, int threads);

 private:
  std::size_t num_items_;
  int nranks_;
  std::size_t chunk_size_;
};

/// Pre-allocated contiguous blocks: rank p gets the p-th of nranks nearly
/// equal slices. The paper's discarded first attempt, kept for the
/// distribution-strategy ablation.
class BlockDistribution {
 public:
  BlockDistribution(std::size_t num_items, int nranks);

  /// The single contiguous range owned by `rank`.
  [[nodiscard]] IndexRange block_for(int rank) const;

  [[nodiscard]] int owner_of(std::size_t index) const;

 private:
  std::size_t num_items_;
  int nranks_;
};

}  // namespace trinity::chrysalis
