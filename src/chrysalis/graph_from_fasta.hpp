#pragma once
// GraphFromFasta: the first compute-intensive Chrysalis sub-step and the
// paper's main parallelization target (Sections III.B, V.A; Figures 7, 8).
//
// Loop 1 walks every Inchworm contig, finds k-mers shared with other
// contigs, and harvests "welding" subsequences of length 2k (the seed k-mer
// plus k/2 flanks on each side) that have read support. Loop 2 finds pairs
// of contigs sharing any harvested weld. The pairs drive the union-find
// clustering into components (Inchworm bundles).
//
// Two drivers share the per-contig kernels:
//  * run_shared  — the original OpenMP-only code path (dynamic schedule);
//  * run_hybrid  — the paper's hybrid: chunked round-robin over simpi
//    ranks, OpenMP within a rank. How weld data then moves between ranks
//    is the ShardingStrategy: the paper pools weld strings with Allgatherv
//    after loop 1 (packed into a single byte sequence) and pair indices as
//    a packed integer array after loop 2; the owner-computes strategy
//    instead routes each weld to a hash-owner with alltoallv and merges
//    components through the distributed union-find (dsu.hpp).
//
// Virtual-time accounting: each loop measures the CPU work its OpenMP team
// actually performed (per-thread CPU clocks summed), then divides by
// `model_threads_per_rank` — the per-node thread count being simulated (16
// in the paper). Intra-node dynamic scheduling divides work almost evenly
// (the paper's own premise), so the quotient is the modeled per-rank loop
// time; imbalance *across* ranks is preserved exactly because each rank's
// work is measured, not modeled.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chrysalis/components.hpp"
#include "chrysalis/distribution.hpp"
#include "kmer/counter.hpp"
#include "kmer/flat_index.hpp"
#include "simpi/context.hpp"
#include "seq/sequence.hpp"

namespace trinity::chrysalis {

/// Distribution strategy for the hybrid loops (ablation knob).
enum class Distribution {
  kChunkedRoundRobin,  ///< the paper's final scheme
  kBlock,              ///< pre-allocated contiguous blocks (the discarded attempt)
  /// Self-scheduling via a shared RMA work counter — the paper's stated
  /// future work ("in the future, we might experiment with a dynamic
  /// partitioning strategy to reduce this load imbalance"). Each rank
  /// claims the next chunk with an atomic fetch-and-op; chunk claims cost
  /// one modeled RMA round trip each. In this mode the per-rank kernel
  /// runs on the rank thread (intra-node threading is represented by
  /// model_threads_per_rank, as everywhere else).
  kDynamic,
};

/// How the hybrid driver moves weld data between ranks after loop 1.
///
/// The pooled strategies are the paper's scheme: every rank's welds are
/// replicated onto every rank with Allgatherv (O(total welds) received per
/// rank), and loop 2's (weld, contig) matches are pooled the same way.
/// kOwner is the owner-computes redesign: welds are hash-partitioned by
/// their smallest canonical (k-1)-mer code (splitmix64(code) % nranks) and
/// routed point-to-point to their owner with Context::alltoallv
/// (O(total/nranks) per rank); each owner dedups its shard, matches ALL
/// contigs against only its own welds, derives contig pairs locally, and
/// the component labels are agreed through the distributed union-find in
/// dsu.hpp — no pooled collective carries weld or match payloads.
/// All three produce byte-identical components.
enum class ShardingStrategy {
  kPooled,         ///< blocking Allgatherv replication (paper, Section III.B)
  kPooledOverlap,  ///< same pool, nonblocking + loop-2 prefix overlapped.
                   ///< Requires each rank to know its loop-2 items up front,
                   ///< so Distribution::kDynamic degrades it to kPooled.
  kOwner,          ///< owner-computes: alltoallv routing + distributed DSU
};

/// "pooled", "overlap" or "owner" — the --gff-sharding spellings.
[[nodiscard]] const char* to_string(ShardingStrategy strategy);

/// Parses a --gff-sharding spelling into *out. Accepts the canonical
/// "pooled"/"overlap"/"owner" plus the boolean spellings the deprecated
/// --overlap-pooling alias used (true/1/yes/on -> overlap,
/// false/0/no/off -> pooled). Returns false on any other text.
[[nodiscard]] bool sharding_from_string(const std::string& text, ShardingStrategy* out);

/// GraphFromFasta parameters.
struct GraphFromFastaOptions {
  int k = 25;                        ///< k-mer size; weld length is 2k
  std::uint32_t min_weld_support = 2;  ///< read count every weld k-mer needs
  std::size_t chunk_size = 0;        ///< 0 = paper's proportional default
  int omp_threads = 0;               ///< real OpenMP threads (0 = auto)
  int model_threads_per_rank = 16;   ///< simulated threads per node
  Distribution distribution = Distribution::kChunkedRoundRobin;
  /// Future-work option ("Our future work will also involve parallelizing
  /// other parts of GraphFromFasta"): build the shared-(k-1)-mer setup map
  /// cooperatively — each rank scans a block of the contigs and the
  /// partial multiplicity tables are pooled with Allgatherv — instead of
  /// every rank redundantly scanning all contigs. Hybrid runs only.
  bool hybrid_setup = false;
  /// Cost-model calibration for benchmarks: repeat each per-contig kernel
  /// this many times. The production GraphFromFasta kernel (full pairwise
  /// contig comparison) is far heavier per contig than this reproduction's
  /// hash-based kernel; repeating restores a realistic per-item cost above
  /// the CPU clock's tick without changing outputs or the *relative* load
  /// imbalance across ranks. Leave at 1 for normal use.
  int kernel_repeats = 1;
  /// How loop-1 welds and loop-2 pairs move between ranks (hybrid runs
  /// only; run_shared ignores it). See ShardingStrategy.
  ShardingStrategy sharding = ShardingStrategy::kPooledOverlap;
};

/// Per-rank loop times (virtual seconds). Size 1 for shared-memory runs.
struct PerRankTimes {
  std::vector<double> seconds;
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;
};

/// Timing of one GraphFromFasta run, in the units Figures 7/8 plot.
struct GffTiming {
  PerRankTimes loop1;
  PerRankTimes loop2;
  double setup_seconds = 0.0;     ///< non-parallel: shared-k-mer map build
  double finalize_seconds = 0.0;  ///< non-parallel: dedup, pairing, clustering
  double comm_seconds = 0.0;      ///< max modeled communication over ranks

  // Communication volume of the two pooling Allgathervs (hybrid runs only;
  // zero / empty for shared-memory runs). "Contributed" is what each rank
  // put in; "pooled" is the flat payload every rank received back — the
  // quantity docs/OBSERVABILITY.md calls pooled bytes. Under
  // ShardingStrategy::kOwner nothing is pooled: weld_bytes_contributed
  // holds each rank's owner-routed bytes instead, and the pooled totals and
  // match counters stay zero (matches never leave their owner).
  std::vector<std::uint64_t> weld_bytes_contributed;   ///< per rank, loop 1
  std::uint64_t weld_bytes_pooled = 0;                 ///< packed weld pool size
  std::vector<std::uint64_t> match_bytes_contributed;  ///< per rank, loop 2
  std::uint64_t match_bytes_pooled = 0;                ///< pooled match-int array size

  // Owner-computes accounting (ShardingStrategy::kOwner only; zero for the
  // pooled strategies and shared-memory runs). docs/OBSERVABILITY.md
  // "sharding counters" documents all three.
  std::uint64_t weld_bytes_routed = 0;     ///< total alltoallv-routed weld bytes
  int dsu_rounds = 0;                      ///< max boundary-exchange rounds over ranks
  std::uint64_t dsu_edge_bytes_routed = 0; ///< total DSU boundary-edge bytes

  // Overlapped-exchange accounting (overlap_compute is zero under
  // ShardingStrategy::kPooled; pool_wait is recorded for EVERY hybrid
  // strategy so sharding modes compare the weld-exchange blocked wall
  // directly; both zero for shared-memory runs). docs/OBSERVABILITY.md
  // "overlap counters" documents both.
  double overlap_compute_seconds = 0.0;  ///< max modeled compute hidden behind the weld pool
  double pool_wait_seconds = 0.0;        ///< max wall time blocked in the weld-pool wait
  /// Total modeled time: serial parts + slowest rank per loop + comm.
  [[nodiscard]] double total_seconds() const {
    return setup_seconds + loop1.max() + loop2.max() + finalize_seconds + comm_seconds;
  }
  /// Fraction of total spent outside the two parallel loops (Figure 8).
  [[nodiscard]] double nonparallel_fraction() const;
};

/// Output of GraphFromFasta.
///
/// Under ShardingStrategy::kOwner, `welds` and `pairs` are empty: the weld
/// shards and their pairs live only on their owner ranks by design, and
/// the pipeline consumes only `components` and `timing`. The pooled
/// strategies (and run_shared) fill both.
struct GffResult {
  ComponentSet components;
  std::vector<std::string> welds;   ///< pooled, deduplicated weld sequences
  std::vector<ContigPair> pairs;    ///< welding pairs fed to clustering
  GffTiming timing;
};

/// Original OpenMP-only GraphFromFasta. `read_counter` supplies the read
/// support evidence (canonical k-mer counts over the input reads, same k).
/// `extra_pairs` lets the pipeline merge in Bowtie-derived scaffold pairs
/// before clustering, as Chrysalis does.
GffResult run_shared(const std::vector<seq::Sequence>& contigs,
                     const kmer::KmerCounter& read_counter,
                     const GraphFromFastaOptions& options,
                     const std::vector<ContigPair>& extra_pairs = {});

/// Hybrid simpi+OpenMP GraphFromFasta. Collective: every rank of the world
/// must call it with identical inputs. All ranks return the same GffResult
/// (the paper pools welds and pairs onto every rank).
GffResult run_hybrid(simpi::Context& ctx, const std::vector<seq::Sequence>& contigs,
                     const kmer::KmerCounter& read_counter,
                     const GraphFromFastaOptions& options,
                     const std::vector<ContigPair>& extra_pairs = {});

namespace detail {

/// Loop-1 kernel for one contig: appends this contig's supported welding
/// sequences (canonical form) to `out`.
///
/// Inchworm consumes every k-mer exactly once, so two contigs never share
/// a full k-mer — what they share at a branch point is the (k-1)-overlap
/// (contig B's first k-1 bases equal an interior (k-1)-mer of contig A).
/// A weld seed is therefore a (k-1)-mer present in >= 2 contigs
/// (`overlap_multiplicity`); the harvested welding subsequence is the seed
/// plus k/2 flanks on each side (clamped at the contig ends), ~2k long as
/// in the paper, and it must have read support: every k-mer across the
/// window occurs at least `min_weld_support` times in the reads.
void harvest_welds(const seq::Sequence& contig,
                   const kmer::FlatKmerIndex<std::uint32_t>& overlap_multiplicity,
                   const kmer::KmerCounter& read_counter, const GraphFromFastaOptions& options,
                   std::vector<std::string>& out);

/// Index over the pooled welds: canonical (k-1)-mer code -> weld ids whose
/// window contains it. Built identically on every rank before loop 2.
using WeldCoreIndex = kmer::FlatKmerIndex<std::vector<std::int32_t>>;
WeldCoreIndex index_weld_cores(const std::vector<std::string>& welds, int k);

/// Loop-2 kernel for one contig: appends (weld_id, contig_id) matches for
/// every weld sharing a (k-1)-mer with the contig (either strand), each
/// weld reported once per contig.
void find_weld_matches(const seq::Sequence& contig, std::int32_t contig_id,
                       const WeldCoreIndex& weld_cores, const GraphFromFastaOptions& options,
                       std::vector<std::pair<std::int32_t, std::int32_t>>& out);

/// Same kernel over a precomputed list of the contig's canonical (k-1)-mer
/// codes — the form the overlap-pooling path uses after caching extraction
/// while the weld Allgatherv is in flight (extraction reads only the contig,
/// never the pooled welds, so it is the legally overlappable prefix of the
/// loop-2 scan).
void find_weld_matches(const std::vector<seq::KmerCode>& contig_codes, std::int32_t contig_id,
                       const WeldCoreIndex& weld_cores,
                       std::vector<std::pair<std::int32_t, std::int32_t>>& out);

/// Builds the canonical-(k-1)-mer -> distinct-contig-count map (the serial
/// setup region of Figure 8).
kmer::FlatKmerIndex<std::uint32_t> contig_kmer_multiplicity(
    const std::vector<seq::Sequence>& contigs, int k);

/// Cooperative (hybrid_setup) variant: block-partitioned scan + Allgatherv
/// pooling. Collective; produces exactly the serial map on every rank.
kmer::FlatKmerIndex<std::uint32_t> hybrid_contig_kmer_multiplicity(
    simpi::Context& ctx, const std::vector<seq::Sequence>& contigs, int k);

/// Canonical form of a weld: lexicographic min of the sequence and its
/// reverse complement, so both strands hash identically.
std::string canonical_weld(const std::string& weld);

/// Sorted, deduplicated copy of `welds`. Exposed so tests can assert the
/// pooled weld set is independent of the order ranks' parts arrived in.
std::vector<std::string> dedup_welds(std::vector<std::string> welds);

/// Owner rank of a canonical weld among nranks: the splitmix64 mix of its
/// smallest canonical (k-1)-mer code, mod nranks. Identical welds share
/// their smallest core, so duplicates from different ranks always meet at
/// one owner — which is what makes the owner-side dedup global.
[[nodiscard]] int weld_owner(const std::string& weld, int k, int nranks);

/// Deduplicates welds preserving first-seen order, then derives contig
/// pairs from (weld, contig) matches: contigs sharing a weld are paired
/// against the smallest contig id that carries it.
std::vector<ContigPair> pairs_from_matches(
    std::size_t num_welds, std::vector<std::pair<std::int32_t, std::int32_t>> matches);

}  // namespace detail

}  // namespace trinity::chrysalis
