#include "chrysalis/components_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace trinity::chrysalis {

namespace {
constexpr const char* kHeaderTag = "#trinity-components";
}

void write_components(const std::string& path, const ComponentSet& components) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_components: cannot open '" + path + "'");
  out << kHeaderTag << ' ' << components.components.size() << ' '
      << components.component_of.size() << '\n';
  for (const auto& comp : components.components) {
    out << comp.id << ':';
    for (const auto id : comp.contig_ids) out << ' ' << id;
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_components: write failure on '" + path + "'");
}

ComponentSet read_components(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_components: cannot open '" + path + "'");

  std::string tag;
  std::size_t num_components = 0;
  std::size_t num_contigs = 0;
  in >> tag >> num_components >> num_contigs;
  if (!in || tag != kHeaderTag) {
    throw std::runtime_error("read_components: bad header in '" + path + "'");
  }

  ComponentSet out;
  out.component_of.assign(num_contigs, -1);
  out.components.reserve(num_components);
  std::string line;
  std::getline(in, line);  // consume the header's newline
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("read_components: malformed row in '" + path + "'");
    }
    Component comp;
    comp.id = static_cast<std::int32_t>(std::stol(line.substr(0, colon)));
    std::istringstream members(line.substr(colon + 1));
    std::int32_t contig = 0;
    while (members >> contig) {
      if (contig < 0 || static_cast<std::size_t>(contig) >= num_contigs) {
        throw std::runtime_error("read_components: contig id out of range in '" + path + "'");
      }
      if (out.component_of[static_cast<std::size_t>(contig)] != -1) {
        throw std::runtime_error("read_components: contig assigned twice in '" + path + "'");
      }
      out.component_of[static_cast<std::size_t>(contig)] = comp.id;
      comp.contig_ids.push_back(contig);
    }
    if (comp.contig_ids.empty()) {
      throw std::runtime_error("read_components: empty component in '" + path + "'");
    }
    out.components.push_back(std::move(comp));
  }
  if (out.components.size() != num_components) {
    throw std::runtime_error("read_components: component count mismatch in '" + path + "'");
  }
  for (const auto c : out.component_of) {
    if (c == -1) {
      throw std::runtime_error("read_components: unassigned contig in '" + path + "'");
    }
  }
  return out;
}

std::vector<ReadAssignment> read_assignments(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_assignments: cannot open '" + path + "'");
  std::vector<ReadAssignment> out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    ReadAssignment a;
    if (!(row >> a.read_index >> a.component >> a.shared_kmers >> a.region_begin >>
          a.region_end)) {
      throw std::runtime_error("read_assignments: malformed row in '" + path + "'");
    }
    out.push_back(a);
  }
  return out;
}

}  // namespace trinity::chrysalis
