#pragma once
// File interchange for Chrysalis results.
//
// Trinity is "a modular platform ... The software modules exchange data
// through files; the files being output from one software module are then
// consumed by the following module" (paper, Section II.A). These routines
// give ComponentSet and ReadAssignment that property, so the stages can be
// run as separate processes exactly like Trinity's executables (see the
// trinity_stages example).

#include <string>
#include <vector>

#include "chrysalis/components.hpp"
#include "chrysalis/reads_to_transcripts.hpp"

namespace trinity::chrysalis {

/// Writes a ComponentSet as text:
///   #trinity-components <num_components> <num_contigs>
///   <component_id>: <contig_id> <contig_id> ...
void write_components(const std::string& path, const ComponentSet& components);

/// Reads a ComponentSet written by write_components. Validates the header,
/// membership consistency, and contig-id bounds; throws std::runtime_error
/// on malformed input.
ComponentSet read_components(const std::string& path);

/// Reads assignments written by detail::write_assignments (the
/// readsToComponents.out.tsv format). Throws std::runtime_error on
/// malformed rows.
std::vector<ReadAssignment> read_assignments(const std::string& path);

}  // namespace trinity::chrysalis
