#include "chrysalis/scaffold.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace trinity::chrysalis {

std::string mate_fragment_name(const std::string& read_name, int* mate_out) {
  if (read_name.size() < 2) return "";
  const char sep = read_name[read_name.size() - 2];
  const char digit = read_name.back();
  if ((sep == '/' || sep == '_' || sep == '.') && (digit == '1' || digit == '2')) {
    if (mate_out) *mate_out = digit - '0';
    return read_name.substr(0, read_name.size() - 2);
  }
  return "";
}

std::vector<ContigPair> scaffold_pairs(const std::vector<align::SamRecord>& alignments,
                                       const std::vector<seq::Sequence>& contigs,
                                       const ScaffoldOptions& options) {
  // A mate counts as "end-anchored" when its placement starts within
  // end_window of either contig end.
  auto near_end = [&](const align::SamRecord& r) {
    const auto& target = contigs.at(static_cast<std::size_t>(r.target_id));
    const std::size_t len = target.bases.size();
    const std::size_t begin = r.pos;
    const std::size_t end = r.pos + r.read_length;
    return begin < options.end_window ||
           end + options.end_window > len;
  };

  // fragment name -> (mate1 contig, mate2 contig), -1 until seen.
  std::unordered_map<std::string, std::pair<std::int32_t, std::int32_t>> fragments;
  for (const auto& r : alignments) {
    if (!r.aligned()) continue;
    int mate = 0;
    const std::string frag = mate_fragment_name(r.read_name, &mate);
    if (frag.empty() || !near_end(r)) continue;
    // Slots store target_id + 1 so a default-constructed 0 means "unseen".
    auto& slot = fragments[frag];
    if (mate == 1) {
      slot.first = r.target_id + 1;
    } else {
      slot.second = r.target_id + 1;
    }
  }

  // Count supporting fragments per unordered contig pair.
  std::map<std::pair<std::int32_t, std::int32_t>, std::uint32_t> support;
  for (const auto& [frag, mates] : fragments) {
    if (mates.first == 0 || mates.second == 0) continue;
    std::int32_t a = mates.first - 1;
    std::int32_t b = mates.second - 1;
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    ++support[{a, b}];
  }

  std::vector<ContigPair> out;
  for (const auto& [pair, count] : support) {
    if (count >= options.min_pair_support) out.push_back({pair.first, pair.second});
  }
  return out;
}

}  // namespace trinity::chrysalis
