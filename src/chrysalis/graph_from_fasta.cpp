#include "chrysalis/graph_from_fasta.hpp"

#include <omp.h>

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_set>

#include "chrysalis/dsu.hpp"
#include "chrysalis/parallel_loop.hpp"
#include "seq/dna.hpp"
#include "simpi/nonblocking.hpp"
#include "simpi/rma.hpp"
#include "seq/kmer.hpp"
#include "simpi/pack.hpp"
#include "util/timer.hpp"

namespace trinity::chrysalis {

double PerRankTimes::max() const {
  double best = 0.0;
  for (const double s : seconds) best = std::max(best, s);
  return best;
}

double PerRankTimes::min() const {
  if (seconds.empty()) return 0.0;
  double best = seconds.front();
  for (const double s : seconds) best = std::min(best, s);
  return best;
}

const char* to_string(ShardingStrategy strategy) {
  switch (strategy) {
    case ShardingStrategy::kPooled: return "pooled";
    case ShardingStrategy::kPooledOverlap: return "overlap";
    case ShardingStrategy::kOwner: return "owner";
  }
  return "pooled";
}

bool sharding_from_string(const std::string& text, ShardingStrategy* out) {
  if (text == "pooled" || text == "false" || text == "0" || text == "no" || text == "off") {
    *out = ShardingStrategy::kPooled;
  } else if (text == "overlap" || text == "true" || text == "1" || text == "yes" ||
             text == "on") {
    *out = ShardingStrategy::kPooledOverlap;
  } else if (text == "owner") {
    *out = ShardingStrategy::kOwner;
  } else {
    return false;
  }
  return true;
}

double GffTiming::nonparallel_fraction() const {
  const double total = total_seconds();
  if (total <= 0.0) return 0.0;
  return (setup_seconds + finalize_seconds) / total;
}

namespace detail {

namespace {
// Accumulates one contig's distinct canonical (k-1)-mers into the index.
void accumulate_contig(const seq::Sequence& contig, const seq::KmerCodec& codec,
                       kmer::FlatKmerIndex<std::uint32_t>& multiplicity) {
  std::unordered_set<seq::KmerCode> seen_in_contig;
  for (const auto& occ : codec.extract_canonical(contig.bases)) {
    if (seen_in_contig.insert(occ.code).second) ++multiplicity[occ.code];
  }
}
}  // namespace

kmer::FlatKmerIndex<std::uint32_t> contig_kmer_multiplicity(
    const std::vector<seq::Sequence>& contigs, int k) {
  // (k-1)-mers: the overlap length at Inchworm branch points. Reserve from
  // the total base count — an upper bound on the distinct k-mers the scan
  // can produce — so the build loop never rehashes.
  const seq::KmerCodec codec(k - 1);
  kmer::FlatKmerIndex<std::uint32_t> multiplicity(seq::total_bases(contigs));
  for (const auto& contig : contigs) accumulate_contig(contig, codec, multiplicity);
  return multiplicity;
}

kmer::FlatKmerIndex<std::uint32_t> hybrid_contig_kmer_multiplicity(
    simpi::Context& ctx, const std::vector<seq::Sequence>& contigs, int k) {
  // Each rank scans a contiguous block; since contigs are disjoint across
  // ranks and per-contig dedup is contig-local, summing the pooled partial
  // counts reproduces the serial map exactly.
  const seq::KmerCodec codec(k - 1);
  const BlockDistribution dist(contigs.size(), ctx.size());
  const IndexRange mine = dist.block_for(ctx.rank());
  kmer::FlatKmerIndex<std::uint32_t> partial;
  for (std::size_t i = mine.begin; i < mine.end; ++i) {
    accumulate_contig(contigs[i], codec, partial);
  }

  // Pool (code, count) pairs with Allgatherv, then merge by summation.
  std::vector<std::uint64_t> wire;
  wire.reserve(partial.size() * 2);
  for (const auto& [code, count] : partial) {
    wire.push_back(code);
    wire.push_back(count);
  }
  const auto pooled = ctx.allgatherv(wire);
  kmer::FlatKmerIndex<std::uint32_t> multiplicity(pooled.size() / 2);
  for (std::size_t i = 0; i + 1 < pooled.size(); i += 2) {
    multiplicity[pooled[i]] += static_cast<std::uint32_t>(pooled[i + 1]);
  }
  return multiplicity;
}

std::string canonical_weld(const std::string& weld) {
  std::string rc = seq::reverse_complement(weld);
  return weld <= rc ? weld : std::move(rc);
}

void harvest_welds(const seq::Sequence& contig,
                   const kmer::FlatKmerIndex<std::uint32_t>& overlap_multiplicity,
                   const kmer::KmerCounter& read_counter, const GraphFromFastaOptions& options,
                   std::vector<std::string>& out) {
  const int k = options.k;
  const auto seed_len = static_cast<std::size_t>(k - 1);
  const auto flank = static_cast<std::size_t>(k / 2);
  const seq::KmerCodec seed_codec(k - 1);
  const seq::KmerCodec kmer_codec(k);
  if (contig.bases.size() < static_cast<std::size_t>(k)) return;

  for (const auto& occ : seed_codec.extract(contig.bases)) {
    // Seed must be a (k-1)-overlap shared with at least one other contig.
    const auto it = overlap_multiplicity.find(seed_codec.canonical(occ.code));
    if (it == overlap_multiplicity.end() || it->second < 2) continue;

    // The weld window is the seed plus k/2 flanks on each side (~2k bases),
    // clamped at the contig ends — branch points often sit at an end.
    const std::size_t begin = occ.position > flank ? occ.position - flank : 0;
    const std::size_t end =
        std::min(contig.bases.size(), occ.position + seed_len + flank);
    if (end - begin < static_cast<std::size_t>(k)) continue;
    const std::string_view weld(contig.bases.data() + begin, end - begin);

    // Read support: every k-mer across the weld must clear the threshold.
    // A window count short of weld_len - k + 1 means an invalid base hid
    // some windows from the check; treat that as unsupported too.
    const auto windows = kmer_codec.extract(weld);
    bool supported = windows.size() == weld.size() - static_cast<std::size_t>(k) + 1;
    for (const auto& window : windows) {
      if (!supported) break;
      if (read_counter.count_of(kmer_codec.canonical(window.code)) <
          options.min_weld_support) {
        supported = false;
      }
    }
    if (!supported) continue;
    out.push_back(canonical_weld(std::string(weld)));
  }
}

WeldCoreIndex index_weld_cores(const std::vector<std::string>& welds, int k) {
  const seq::KmerCodec codec(k - 1);
  WeldCoreIndex index;
  std::size_t bases = 0;
  for (const auto& weld : welds) bases += weld.size();
  index.reserve(bases);
  for (std::size_t w = 0; w < welds.size(); ++w) {
    std::unordered_set<seq::KmerCode> seen;
    for (const auto& occ : codec.extract_canonical(welds[w])) {
      if (seen.insert(occ.code).second) {
        index[occ.code].push_back(static_cast<std::int32_t>(w));
      }
    }
  }
  return index;
}

void find_weld_matches(const seq::Sequence& contig, std::int32_t contig_id,
                       const WeldCoreIndex& weld_cores, const GraphFromFastaOptions& options,
                       std::vector<std::pair<std::int32_t, std::int32_t>>& out) {
  const seq::KmerCodec codec(options.k - 1);
  if (contig.bases.size() < static_cast<std::size_t>(options.k - 1)) return;
  std::vector<seq::KmerCode> codes;
  const auto occurrences = codec.extract_canonical(contig.bases);
  codes.reserve(occurrences.size());
  for (const auto& occ : occurrences) codes.push_back(occ.code);
  find_weld_matches(codes, contig_id, weld_cores, out);
}

void find_weld_matches(const std::vector<seq::KmerCode>& contig_codes, std::int32_t contig_id,
                       const WeldCoreIndex& weld_cores,
                       std::vector<std::pair<std::int32_t, std::int32_t>>& out) {
  std::unordered_set<std::int32_t> hit;  // report each weld once per contig
  for (const seq::KmerCode code : contig_codes) {
    const auto* weld_ids = weld_cores.lookup(code);
    if (weld_ids == nullptr) continue;
    for (const auto weld_id : *weld_ids) {
      if (hit.insert(weld_id).second) out.emplace_back(weld_id, contig_id);
    }
  }
}

std::vector<std::string> dedup_welds(std::vector<std::string> welds) {
  std::sort(welds.begin(), welds.end());
  welds.erase(std::unique(welds.begin(), welds.end()), welds.end());
  return welds;
}

int weld_owner(const std::string& weld, int k, int nranks) {
  // Smallest canonical (k-1)-mer code — a strand-symmetric property of the
  // weld *sequence*, so every copy of a weld hashes to the same owner.
  // Welds always pass the read-support check, which requires every window
  // to be valid, so the extraction below cannot come up empty; the 0
  // fallback is pure defence.
  const seq::KmerCodec codec(k - 1);
  bool found = false;
  seq::KmerCode min_code = 0;
  for (const auto& occ : codec.extract_canonical(weld)) {
    if (!found || occ.code < min_code) {
      min_code = occ.code;
      found = true;
    }
  }
  if (!found) return 0;
  return static_cast<int>(kmer::mix_kmer_code(min_code) % static_cast<std::uint64_t>(nranks));
}

std::vector<ContigPair> pairs_from_matches(
    std::size_t num_welds, std::vector<std::pair<std::int32_t, std::int32_t>> matches) {
  // Anchor each weld's contigs at the smallest contig id carrying it; the
  // result is independent of the order matches were pooled in.
  std::vector<std::int32_t> anchor(num_welds, -1);
  for (const auto& [weld, contig] : matches) {
    auto& a = anchor[static_cast<std::size_t>(weld)];
    if (a < 0 || contig < a) a = contig;
  }
  std::vector<ContigPair> pairs;
  for (const auto& [weld, contig] : matches) {
    const std::int32_t a = anchor[static_cast<std::size_t>(weld)];
    if (contig != a) pairs.push_back({a, contig});
  }
  std::sort(pairs.begin(), pairs.end(), [](const ContigPair& x, const ContigPair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace detail

namespace {

std::size_t effective_chunk_size(const GraphFromFastaOptions& options, std::size_t num_items,
                                 int nranks) {
  return options.chunk_size > 0
             ? options.chunk_size
             : ChunkedRoundRobin::default_chunk_size(num_items, nranks,
                                                     options.model_threads_per_rank);
}

std::vector<IndexRange> ranges_for_rank(const GraphFromFastaOptions& options,
                                        std::size_t num_items, int rank, int nranks) {
  if (options.distribution == Distribution::kBlock) {
    const BlockDistribution dist(num_items, nranks);
    return {dist.block_for(rank)};
  }
  const std::size_t chunk = effective_chunk_size(options, num_items, nranks);
  return ChunkedRoundRobin(num_items, nranks, chunk).chunks_for(rank);
}

/// Dynamic self-scheduling loop: ranks claim chunks from a shared RMA
/// counter until the chunk space is exhausted. Returns this rank's modeled
/// loop seconds. Collective (barriers bracket the counter reset).
template <typename Body>
double timed_dynamic_loop(simpi::Context& ctx, int counter_id,
                          const GraphFromFastaOptions& options, std::size_t num_items,
                          Body&& body, const char* trace_name = nullptr) {
  const std::size_t chunk = effective_chunk_size(options, num_items, ctx.size());
  const std::size_t num_chunks = (num_items + chunk - 1) / chunk;
  ctx.barrier();
  simpi::SharedCounter counter(ctx, counter_id);
  if (ctx.rank() == 0) counter.reset(0);
  ctx.barrier();

  const bool traced = trace_name != nullptr && trace::enabled();
  util::ThreadCpuTimer cpu;
  for (;;) {
    const std::uint64_t c = counter.fetch_add(1);
    if (c >= num_chunks) break;
    const std::size_t begin = static_cast<std::size_t>(c) * chunk;
    const std::size_t end = std::min(begin + chunk, num_items);
    // One span per claimed chunk: the self-scheduling claim pattern is the
    // point of this loop, so make each claim visible on the rank's track.
    std::optional<trace::SpanScope> span;
    if (traced) {
      span.emplace(trace_name, trace::kCatLoop);
      span->arg("chunk", static_cast<double>(c));
      span->arg("items", static_cast<double>(end - begin));
    }
    for (std::size_t i = begin; i < end; ++i) body(i);
  }
  return cpu.seconds() / static_cast<double>(std::max(options.model_threads_per_rank, 1));
}

/// Counter ids for the dynamic loops; reset between uses under barriers.
inline constexpr int kDynamicCounterLoop1 = 9101;
inline constexpr int kDynamicCounterLoop2 = 9102;

/// Runs `kernel` into a throwaway sink (kernel_repeats - 1) times, then
/// into the real sink once — the cost-calibration knob documented on
/// GraphFromFastaOptions::kernel_repeats.
template <typename Sink, typename Kernel>
void run_calibrated(int repeats, Sink& sink, Kernel&& kernel) {
  for (int rep = 1; rep < repeats; ++rep) {
    Sink scratch;
    kernel(scratch);
  }
  kernel(sink);
}

/// What one exchange() moved and what it cost this rank.
template <typename T>
struct ExchangeResult {
  std::vector<T> data;  ///< payload this rank now holds, in source-rank order
  std::vector<std::uint64_t> bytes_contributed;  ///< per-rank bytes entered
  double overlap_compute = 0.0;  ///< modeled compute hidden behind the transfer
  double wait = 0.0;             ///< wall blocked waiting for the transfer
};

/// The one data-movement step of the hybrid drivers, dispatched over the
/// ShardingStrategy (both pooling call sites used to spell this idiom out
/// by hand). `parts[d]` is the payload destined for rank d under kOwner;
/// the pooled strategies replicate, so there `parts` is just an arbitrary
/// partition of this rank's payload (flattened before pooling, every rank
/// receives everything). `overlap_fn`, when given, is compute that is legal
/// to run while the transfer is in flight; it returns its modeled seconds,
/// which are credited against the modeled collective cost. kPooled ignores
/// it by contract (the blocking paper path) — callers run that work inside
/// the consuming loop instead. Channels `channel` and `channel + 1` are
/// used by the nonblocking variants.
template <typename T>
ExchangeResult<T> exchange(simpi::Context& ctx, ShardingStrategy strategy,
                           std::vector<std::vector<T>> parts, int channel,
                           const std::function<double()>& overlap_fn = {}) {
  ExchangeResult<T> out;
  if (strategy == ShardingStrategy::kOwner) {
    if (parts.size() != static_cast<std::size_t>(ctx.size())) {
      throw std::invalid_argument("gff exchange: owner routing needs one part per rank");
    }
    std::uint64_t sent = 0;
    for (const auto& part : parts) sent += part.size() * sizeof(T);
    simpi::IAlltoallv<T> route(ctx, std::move(parts), channel);
    if (overlap_fn) out.overlap_compute = overlap_fn();
    util::Timer wait_wall;
    auto received = route.wait(out.overlap_compute);
    out.wait = wait_wall.seconds();
    for (auto& part : received) {
      out.data.insert(out.data.end(), std::make_move_iterator(part.begin()),
                      std::make_move_iterator(part.end()));
    }
    out.bytes_contributed = ctx.allgatherv(std::vector<std::uint64_t>{sent});
    return out;
  }

  std::vector<T> mine;
  for (auto& part : parts) {
    mine.insert(mine.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  if (strategy == ShardingStrategy::kPooledOverlap) {
    simpi::IAllgatherv<T> pool(ctx, mine, channel);
    simpi::IAllgatherv<std::uint64_t> sizes(ctx, {mine.size() * sizeof(T)}, channel + 1);
    if (overlap_fn) out.overlap_compute = overlap_fn();
    util::Timer wait_wall;
    out.data = pool.wait(out.overlap_compute);
    out.bytes_contributed = sizes.wait();
    out.wait = wait_wall.seconds();
  } else {
    // Blocking path: record the same wall-blocked quantity the overlap path
    // reports, so pool_wait compares the modes directly (the CommStats
    // allgatherv row grows by exactly this delta).
    const double wait_before =
        ctx.comm_stats().of(simpi::CommOp::kAllgatherv).wait_seconds;
    out.data = ctx.allgatherv(mine);
    out.bytes_contributed =
        ctx.allgatherv(std::vector<std::uint64_t>{mine.size() * sizeof(T)});
    out.wait =
        ctx.comm_stats().of(simpi::CommOp::kAllgatherv).wait_seconds - wait_before;
  }
  return out;
}

GffResult finalize(const std::vector<seq::Sequence>& contigs, std::vector<std::string> welds,
                   std::vector<std::pair<std::int32_t, std::int32_t>> matches,
                   const std::vector<ContigPair>& extra_pairs, GffTiming timing) {
  GffResult result;
  util::ThreadCpuTimer cpu;
  result.pairs = detail::pairs_from_matches(welds.size(), std::move(matches));
  std::vector<ContigPair> all_pairs = result.pairs;
  all_pairs.insert(all_pairs.end(), extra_pairs.begin(), extra_pairs.end());
  result.components = cluster_contigs(contigs.size(), all_pairs);
  result.welds = std::move(welds);
  timing.finalize_seconds += cpu.seconds();
  result.timing = std::move(timing);
  return result;
}

}  // namespace

GffResult run_shared(const std::vector<seq::Sequence>& contigs,
                     const kmer::KmerCounter& read_counter,
                     const GraphFromFastaOptions& options,
                     const std::vector<ContigPair>& extra_pairs) {
  const int threads = resolve_omp_threads(options.omp_threads, /*hybrid=*/false);
  GffTiming timing;

  // Setup (serial in the original code): shared-k-mer multiplicity map.
  util::ThreadCpuTimer setup_cpu;
  const auto multiplicity = detail::contig_kmer_multiplicity(contigs, options.k);
  timing.setup_seconds = setup_cpu.seconds();

  // Loop 1 — weld harvest, OpenMP dynamic over all contigs.
  std::vector<std::vector<std::string>> weld_parts(
      static_cast<std::size_t>(std::max(threads, 1)));
  const std::vector<IndexRange> all{IndexRange{0, contigs.size()}};
  const double loop1 = timed_parallel_loop(
      all, threads, options.model_threads_per_rank,
      [&](std::size_t i) {
        auto& sink = weld_parts[static_cast<std::size_t>(omp_get_thread_num())];
        run_calibrated(options.kernel_repeats, sink, [&](std::vector<std::string>& out) {
          detail::harvest_welds(contigs[i], multiplicity, read_counter, options, out);
        });
      },
      "gff.loop1");
  timing.loop1.seconds = {loop1};

  util::ThreadCpuTimer mid_cpu;
  std::vector<std::string> welds;
  for (auto& part : weld_parts) {
    welds.insert(welds.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
  }
  welds = detail::dedup_welds(std::move(welds));
  const auto weld_cores = detail::index_weld_cores(welds, options.k);
  timing.finalize_seconds += mid_cpu.seconds();

  // Loop 2 — weld matching, OpenMP dynamic over all contigs.
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> match_parts(
      static_cast<std::size_t>(std::max(threads, 1)));
  const double loop2 = timed_parallel_loop(
      all, threads, options.model_threads_per_rank,
      [&](std::size_t i) {
        auto& sink = match_parts[static_cast<std::size_t>(omp_get_thread_num())];
        run_calibrated(options.kernel_repeats, sink,
                       [&](std::vector<std::pair<std::int32_t, std::int32_t>>& out) {
                         detail::find_weld_matches(contigs[i], static_cast<std::int32_t>(i),
                                                   weld_cores, options, out);
                       });
      },
      "gff.loop2");
  timing.loop2.seconds = {loop2};

  std::vector<std::pair<std::int32_t, std::int32_t>> matches;
  for (auto& part : match_parts) {
    matches.insert(matches.end(), part.begin(), part.end());
  }
  return finalize(contigs, std::move(welds), std::move(matches), extra_pairs,
                  std::move(timing));
}

GffResult run_hybrid(simpi::Context& ctx, const std::vector<seq::Sequence>& contigs,
                     const kmer::KmerCounter& read_counter,
                     const GraphFromFastaOptions& options,
                     const std::vector<ContigPair>& extra_pairs) {
  const int threads = resolve_omp_threads(options.omp_threads, /*hybrid=*/true);
  const double comm_before = ctx.comm_seconds();
  GffTiming timing;

  // Setup: redundant per-rank scan (the paper's code), or the cooperative
  // future-work variant that block-partitions the scan and pools partial
  // maps with Allgatherv.
  util::ThreadCpuTimer setup_cpu;
  const auto multiplicity =
      options.hybrid_setup
          ? detail::hybrid_contig_kmer_multiplicity(ctx, contigs, options.k)
          : detail::contig_kmer_multiplicity(contigs, options.k);
  const double my_setup = setup_cpu.seconds();

  // Loop 1 over this rank's chunks (chunked round robin or dynamic
  // self-scheduling), OpenMP inside for the static schemes.
  const auto my_ranges = ranges_for_rank(options, contigs.size(), ctx.rank(), ctx.size());
  std::vector<std::vector<std::string>> weld_parts(
      static_cast<std::size_t>(std::max(threads, 1)));
  auto loop1_body = [&](std::size_t i) {
    auto& sink = weld_parts[static_cast<std::size_t>(omp_get_thread_num())];
    run_calibrated(options.kernel_repeats, sink, [&](std::vector<std::string>& out) {
      detail::harvest_welds(contigs[i], multiplicity, read_counter, options, out);
    });
  };
  const double my_loop1 =
      options.distribution == Distribution::kDynamic
          ? timed_dynamic_loop(ctx, kDynamicCounterLoop1, options, contigs.size(), loop1_body,
                               "gff.loop1")
          : timed_parallel_loop(my_ranges, threads, options.model_threads_per_rank,
                                loop1_body, "gff.loop1");

  // Effective strategy. Overlapped pooling needs each rank to know its
  // loop-2 items before the collective starts (to pre-extract their codes),
  // so Distribution::kDynamic degrades it to the blocking pool; so does a
  // single-rank world, which has no transfer to hide compute behind. Owner
  // mode has neither constraint — its loop 2 scans every contig.
  ShardingStrategy sharding = options.sharding;
  if (sharding == ShardingStrategy::kPooledOverlap &&
      (options.distribution == Distribution::kDynamic || ctx.size() <= 1)) {
    sharding = ShardingStrategy::kPooled;
  }

  std::vector<std::string> my_welds;
  for (auto& part : weld_parts) {
    my_welds.insert(my_welds.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
  }

  // The compute that may legally run while the weld exchange is in flight:
  // extracting contigs' canonical (k-1)-mer codes, the part of loop 2's
  // scan that reads only the contigs. Pooled-overlap covers this rank's own
  // loop-2 items; owner mode covers every contig, because the owner scan
  // visits them all. Returns modeled seconds for the overlap credit.
  std::vector<std::vector<seq::KmerCode>> contig_codes;
  const std::vector<IndexRange> all_ranges{IndexRange{0, contigs.size()}};
  const auto extract_codes = [&](const std::vector<IndexRange>& ranges) {
    trace::SpanScope span("gff.overlap_extract", trace::kCatLoop);
    util::ThreadCpuTimer cpu;
    const seq::KmerCodec codec(options.k - 1);
    contig_codes.resize(contigs.size());
    for (const auto& range : ranges) {
      for (std::size_t i = range.begin; i < range.end; ++i) {
        const auto occurrences = codec.extract_canonical(contigs[i].bases);
        auto& codes = contig_codes[i];
        codes.reserve(occurrences.size());
        for (const auto& occ : occurrences) codes.push_back(occ.code);
      }
    }
    return cpu.seconds() /
           static_cast<double>(std::max(options.model_threads_per_rank, 1));
  };

  // Weld exchange (paper Section III.B pools with Allgatherv; owner mode
  // hash-routes each weld to the owner of its smallest core k-mer). The
  // packed-strings wire format survives concatenation, so owner receipts —
  // one packed buffer per source rank — unpack with the same pool reader.
  std::vector<std::vector<std::byte>> dest_parts;
  if (sharding == ShardingStrategy::kOwner) {
    std::vector<std::vector<std::string>> by_owner(static_cast<std::size_t>(ctx.size()));
    for (auto& weld : my_welds) {
      const int owner = detail::weld_owner(weld, options.k, ctx.size());
      by_owner[static_cast<std::size_t>(owner)].push_back(std::move(weld));
    }
    dest_parts.reserve(by_owner.size());
    for (const auto& group : by_owner) dest_parts.push_back(simpi::pack_strings(group));
  } else {
    dest_parts.push_back(simpi::pack_strings(my_welds));
  }
  std::function<double()> overlap_fn;
  if (sharding == ShardingStrategy::kPooledOverlap) {
    overlap_fn = [&] { return extract_codes(my_ranges); };
  } else if (sharding == ShardingStrategy::kOwner) {
    overlap_fn = [&] { return extract_codes(all_ranges); };
  }
  auto weld_moved = exchange(ctx, sharding, std::move(dest_parts), 0, overlap_fn);
  const double my_overlap = weld_moved.overlap_compute;
  const double my_pool_wait = weld_moved.wait;
  timing.weld_bytes_contributed = std::move(weld_moved.bytes_contributed);
  if (sharding == ShardingStrategy::kOwner) {
    for (const std::uint64_t b : timing.weld_bytes_contributed) {
      timing.weld_bytes_routed += b;
    }
  } else {
    timing.weld_bytes_pooled = weld_moved.data.size();
  }

  // Pooled modes: `welds` is the global deduplicated pool, identical on
  // every rank. Owner mode: only this rank's owned shard — the dedup is
  // still global, because identical welds always land on the same owner.
  auto welds = detail::dedup_welds(simpi::unpack_string_pool(weld_moved.data));
  const auto weld_cores = detail::index_weld_cores(welds, options.k);

  // Loop 2. Pooled strategies scan this rank's chunks against the full
  // pool; owner mode scans EVERY contig against only the owned welds (the
  // partition is by weld, not by contig — per-rank work is the owned share
  // of the match volume). The cached-codes kernel runs wherever the
  // extraction already happened behind the exchange.
  const bool cached = sharding != ShardingStrategy::kPooled;
  std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> match_parts(
      static_cast<std::size_t>(std::max(threads, 1)));
  auto loop2_body = [&](std::size_t i) {
    auto& sink = match_parts[static_cast<std::size_t>(omp_get_thread_num())];
    run_calibrated(options.kernel_repeats, sink,
                   [&](std::vector<std::pair<std::int32_t, std::int32_t>>& out) {
                     if (cached) {
                       detail::find_weld_matches(contig_codes[i],
                                                 static_cast<std::int32_t>(i), weld_cores,
                                                 out);
                     } else {
                       detail::find_weld_matches(contigs[i], static_cast<std::int32_t>(i),
                                                 weld_cores, options, out);
                     }
                   });
  };
  double my_loop2 = 0.0;
  if (sharding == ShardingStrategy::kOwner) {
    my_loop2 = timed_parallel_loop(all_ranges, threads, options.model_threads_per_rank,
                                   loop2_body, "gff.loop2");
  } else if (options.distribution == Distribution::kDynamic) {
    my_loop2 = timed_dynamic_loop(ctx, kDynamicCounterLoop2, options, contigs.size(),
                                  loop2_body, "gff.loop2");
  } else {
    my_loop2 = timed_parallel_loop(my_ranges, threads, options.model_threads_per_rank,
                                   loop2_body, "gff.loop2");
  }

  std::vector<std::pair<std::int32_t, std::int32_t>> my_matches;
  for (auto& part : match_parts) {
    my_matches.insert(my_matches.end(), part.begin(), part.end());
  }

  // Per-rank loop times for the Figure 7 min/max curves, plus the shared
  // scalar reductions; runs after the strategy-specific tail has finished
  // communicating so comm_seconds captures everything.
  const auto reduce_timing = [&] {
    timing.loop1.seconds = ctx.allgatherv(std::vector<double>{my_loop1});
    timing.loop2.seconds = ctx.allgatherv(std::vector<double>{my_loop2});
    timing.setup_seconds = ctx.allreduce_max(my_setup);
    timing.overlap_compute_seconds = ctx.allreduce_max(my_overlap);
    timing.pool_wait_seconds = ctx.allreduce_max(my_pool_wait);
    timing.comm_seconds = ctx.allreduce_max(ctx.comm_seconds() - comm_before);
  };

  if (sharding == ShardingStrategy::kOwner) {
    // Matches are complete per owned weld (every contig was scanned here),
    // so pair derivation is purely local, and the pairs never leave their
    // owner: components are agreed through the distributed union-find.
    // Scaffold pairs enter the edge set once, on rank 0 — the DSU takes
    // the union of all ranks' edges.
    GffResult result;
    util::ThreadCpuTimer fin_cpu;
    std::vector<ContigPair> local_pairs =
        detail::pairs_from_matches(welds.size(), std::move(my_matches));
    if (ctx.rank() == 0) {
      local_pairs.insert(local_pairs.end(), extra_pairs.begin(), extra_pairs.end());
    }
    DsuStats dsu;
    result.components = distributed_components(ctx, contigs.size(), local_pairs, &dsu);
    const double my_finalize = fin_cpu.seconds();
    timing.dsu_rounds = ctx.allreduce_max(dsu.rounds);
    timing.dsu_edge_bytes_routed = ctx.allreduce_sum(dsu.edge_bytes_routed);
    timing.finalize_seconds = ctx.allreduce_max(my_finalize);
    reduce_timing();
    result.timing = std::move(timing);
    return result;
  }

  // Pool the pairing indices as a flat integer array (substantially less
  // data than loop 1's strings, as the paper notes). Always the blocking
  // pool: finalize has no overlappable prefix.
  std::vector<std::int32_t> my_match_ints;
  my_match_ints.reserve(my_matches.size() * 2);
  for (const auto& [weld, contig] : my_matches) {
    my_match_ints.push_back(weld);
    my_match_ints.push_back(contig);
  }
  std::vector<std::vector<std::int32_t>> match_part;
  match_part.push_back(std::move(my_match_ints));
  auto match_moved = exchange(ctx, ShardingStrategy::kPooled, std::move(match_part), 0);
  timing.match_bytes_contributed = std::move(match_moved.bytes_contributed);
  timing.match_bytes_pooled = match_moved.data.size() * sizeof(std::int32_t);
  const auto& pooled_ints = match_moved.data;
  if (pooled_ints.size() % 2 != 0) {
    throw std::logic_error("GraphFromFasta: malformed pooled match array");
  }
  std::vector<std::pair<std::int32_t, std::int32_t>> matches;
  matches.reserve(pooled_ints.size() / 2);
  for (std::size_t i = 0; i < pooled_ints.size(); i += 2) {
    matches.emplace_back(pooled_ints[i], pooled_ints[i + 1]);
  }

  reduce_timing();
  return finalize(contigs, std::move(welds), std::move(matches), extra_pairs,
                  std::move(timing));
}

}  // namespace trinity::chrysalis
