#include "chrysalis/components.hpp"

#include <algorithm>
#include <stdexcept>

namespace trinity::chrysalis {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::int32_t>(i);
}

std::int32_t UnionFind::find(std::int32_t x) {
  while (parent_[static_cast<std::size_t>(x)] != x) {
    auto& p = parent_[static_cast<std::size_t>(x)];
    p = parent_[static_cast<std::size_t>(p)];  // path halving
    x = p;
  }
  return x;
}

bool UnionFind::unite(std::int32_t a, std::int32_t b) {
  std::int32_t ra = find(a);
  std::int32_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[static_cast<std::size_t>(ra)] < rank_[static_cast<std::size_t>(rb)]) {
    std::swap(ra, rb);
  }
  parent_[static_cast<std::size_t>(rb)] = ra;
  if (rank_[static_cast<std::size_t>(ra)] == rank_[static_cast<std::size_t>(rb)]) {
    ++rank_[static_cast<std::size_t>(ra)];
  }
  --num_sets_;
  return true;
}

ComponentSet cluster_contigs(std::size_t num_contigs, const std::vector<ContigPair>& pairs) {
  UnionFind uf(num_contigs);
  for (const auto& p : pairs) {
    if (p.a < 0 || p.b < 0 || static_cast<std::size_t>(p.a) >= num_contigs ||
        static_cast<std::size_t>(p.b) >= num_contigs) {
      throw std::out_of_range("cluster_contigs: pair index out of range");
    }
    uf.unite(p.a, p.b);
  }

  // Group members by representative, then number components by their
  // smallest contig id so the labeling is pair-order independent.
  std::vector<std::vector<std::int32_t>> groups(num_contigs);
  for (std::size_t i = 0; i < num_contigs; ++i) {
    groups[static_cast<std::size_t>(uf.find(static_cast<std::int32_t>(i)))].push_back(
        static_cast<std::int32_t>(i));
  }

  ComponentSet out;
  out.component_of.assign(num_contigs, -1);
  for (std::size_t rep = 0; rep < num_contigs; ++rep) {
    auto& members = groups[rep];
    if (members.empty()) continue;
    std::sort(members.begin(), members.end());
    Component comp;
    comp.id = static_cast<std::int32_t>(out.components.size());
    comp.contig_ids = std::move(members);
    for (const auto c : comp.contig_ids) {
      out.component_of[static_cast<std::size_t>(c)] = comp.id;
    }
    out.components.push_back(std::move(comp));
  }
  // groups[] is indexed by representative id, which is the smallest-rank
  // element, not necessarily the smallest id; renumber by smallest member.
  std::sort(out.components.begin(), out.components.end(),
            [](const Component& a, const Component& b) {
              return a.contig_ids.front() < b.contig_ids.front();
            });
  for (std::size_t i = 0; i < out.components.size(); ++i) {
    out.components[i].id = static_cast<std::int32_t>(i);
    for (const auto c : out.components[i].contig_ids) {
      out.component_of[static_cast<std::size_t>(c)] = out.components[i].id;
    }
  }
  return out;
}

}  // namespace trinity::chrysalis
